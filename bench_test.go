// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5), plus micro-benchmarks of the simulator's core structures.
//
// The macro benchmarks run the experiment harness at a reduced workload
// scale so `go test -bench=.` completes in minutes; the cmd/rnuma-experiments
// tool runs the same experiments at full scale. Key outcome numbers are
// attached as benchmark metrics, so regressions in the *results* (not just
// the speed) are visible in benchmark output.
package rnuma_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/blockcache"
	"rnuma/internal/cache"
	"rnuma/internal/config"
	"rnuma/internal/directory"
	"rnuma/internal/harness"
	"rnuma/internal/machine"
	"rnuma/internal/model"
	"rnuma/internal/pagecache"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/trace"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

const benchScale = 0.25

// benchHarness builds a harness whose scheduler fans out across all
// cores: the macro benchmarks measure the full experiment pipeline the
// way the tools run it (concurrent plan execution + serial assembly).
func benchHarness(scale float64) *harness.Harness {
	h := harness.New(scale)
	h.Workers = runtime.GOMAXPROCS(0)
	return h
}

// BenchmarkAnalyticalModel regenerates the Section 3.2 analysis (Table 1,
// Equations 1-3): the competitive ratios and the worst-case bound at the
// optimal threshold.
func BenchmarkAnalyticalModel(b *testing.B) {
	costs := config.BaseCosts()
	var bound float64
	for i := 0; i < b.N; i++ {
		p := model.FromCosts(float64(costs.RemoteFetch),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*32),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*16), 64)
		sweep := p.SweepThreshold(1, 4096, 256)
		if len(sweep) == 0 {
			b.Fatal("empty sweep")
		}
		bound = p.AtOptimum().BoundAtOptimum()
	}
	b.ReportMetric(bound, "worst-case-bound")
}

// BenchmarkTable3Workloads generates all ten applications (Table 3).
func BenchmarkTable3Workloads(b *testing.B) {
	cfg := workloads.DefaultConfig()
	cfg.Scale = benchScale
	for i := 0; i < b.N; i++ {
		for _, app := range workloads.Catalog() {
			w := app.Build(cfg)
			if len(w.Streams) != cfg.Nodes*cfg.CPUsPerNode {
				b.Fatal("bad stream count")
			}
		}
	}
}

// BenchmarkFigure5 regenerates the refetch CDF characterization.
func BenchmarkFigure5(b *testing.B) {
	var skew float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		curves, err := h.Figure5(harness.AllApps())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			if c.App == "barnes" {
				skew = c.At10
			}
		}
	}
	b.ReportMetric(skew, "barnes-refetch%@10%pages")
}

// BenchmarkTable4 regenerates the refetch/replacement characterization.
func BenchmarkTable4(b *testing.B) {
	var rw float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		rows, err := h.Table4(harness.AllApps())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "em3d" {
				rw = r.RWPagePct
			}
		}
	}
	b.ReportMetric(rw, "em3d-rw-page%")
}

// BenchmarkFigure6 regenerates the base-system comparison and reports
// R-NUMA's worst-case gap versus the best of CC-NUMA and S-COMA.
func BenchmarkFigure6(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		rows, err := h.Figure6(harness.AllApps())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.RNUMAOverBest > worst {
				worst = r.RNUMAOverBest
			}
		}
	}
	b.ReportMetric(worst, "rnuma-worst-vs-best")
}

// BenchmarkFigure7 regenerates the cache-size sensitivity study.
func BenchmarkFigure7(b *testing.B) {
	var oceanBigPC float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		rows, err := h.Figure7(harness.AllApps())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "ocean" {
				oceanBigPC = r.R128p40M
			}
		}
	}
	b.ReportMetric(oceanBigPC, "ocean-rnuma-40M")
}

// BenchmarkFigure8 regenerates the threshold sensitivity study.
func BenchmarkFigure8(b *testing.B) {
	var lu1024 float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		rows, err := h.Figure8(harness.AllApps())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "lu" {
				lu1024 = r.ByT[1024]
			}
		}
	}
	b.ReportMetric(lu1024, "lu-T1024-vs-T64")
}

// BenchmarkFigure9 regenerates the overhead sensitivity study.
func BenchmarkFigure9(b *testing.B) {
	var scHit float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		rows, err := h.Figure9(harness.AllApps())
		if err != nil {
			b.Fatal(err)
		}
		scHit = 0
		for _, r := range rows {
			if v := r.SCOMASoft / r.SCOMA; v > scHit {
				scHit = v
			}
		}
	}
	b.ReportMetric(scHit, "scoma-soft-max-slowdown")
}

// BenchmarkAblationCounting regenerates the counting-policy ablation
// (DESIGN.md Section 7): refetch-only counters vs naive all-miss counters
// on a producer-consumer workload.
func BenchmarkAblationCounting(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		res, err := h.AblationCounting("em3d")
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.SlowdownPct
	}
	b.ReportMetric(slowdown, "naive-counting-slowdown%")
}

// BenchmarkAblationPlacement regenerates the placement ablation:
// first-touch vs round-robin page homes.
func BenchmarkAblationPlacement(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		res, err := h.AblationPlacement("em3d")
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.SlowdownPct
	}
	b.ReportMetric(slowdown, "roundrobin-slowdown%")
}

// BenchmarkFullEvaluation regenerates every figure and table from one
// deduplicated plan, comparing serial execution against the concurrent
// scheduler. The workers=1 case is the pre-scheduler behavior; the
// workers=N case is what cmd/rnuma-experiments does by default.
func BenchmarkFullEvaluation(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := harness.New(benchScale)
				h.Workers = workers
				h.Prefetch(h.PlanAll(harness.AllApps()))
				// Assembly after the fan-out is pure cache reads.
				if _, err := h.Figure6(harness.AllApps()); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Figure8(harness.AllApps()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the simulator's hot paths.

// BenchmarkMachineReference measures the per-reference simulation cost on
// the full base machine running a mixed workload.
func BenchmarkMachineReference(b *testing.B) {
	app, _ := workloads.ByName("moldyn")
	cfg := workloads.DefaultConfig()
	cfg.Scale = 0.25
	b.ReportAllocs()
	b.ResetTimer()
	total := int64(0)
	for i := 0; i < b.N; i++ {
		w := app.Build(cfg)
		m, err := machine.New(config.Base(config.RNUMA), machine.WithHomes(w.Homes))
		if err != nil {
			b.Fatal(err)
		}
		run, err := m.Run(w.Streams)
		if err != nil {
			b.Fatal(err)
		}
		total += run.Refs
	}
	b.ReportMetric(float64(total)/float64(b.N), "refs/run")
}

// BenchmarkL1Cache measures lookup+fill on the per-CPU data cache.
func BenchmarkL1Cache(b *testing.B) {
	c := cache.New(8<<10, 32)
	rng := rand.New(rand.NewSource(1))
	blocks := make([]addr.BlockNum, 4096)
	for i := range blocks {
		blocks[i] = addr.BlockNum(rng.Intn(1 << 16))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i&4095]
		idx := c.Index(uint32(blk))
		if st, _ := c.Lookup(idx, blk); st == cache.Invalid {
			c.Fill(idx, blk, cache.Shared, 0)
		}
	}
}

// BenchmarkBlockCache measures the RAD block-cache hot path.
func BenchmarkBlockCache(b *testing.B) {
	c := blockcache.New(1024)
	rng := rand.New(rand.NewSource(2))
	blocks := make([]addr.BlockNum, 4096)
	for i := range blocks {
		blocks[i] = addr.BlockNum(rng.Intn(1 << 14))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i&4095]
		if _, ok := c.Lookup(blk); !ok {
			c.Fill(blk, blockcache.ReadOnly, false, 0)
		}
	}
}

// BenchmarkDirectoryFetch measures the directory transaction path.
func BenchmarkDirectoryFetch(b *testing.B) {
	d := directory.New(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := addr.BlockNum(i & 8191)
		d.Fetch(blk, addr.NodeID(i&7), i&15 == 0)
	}
}

// BenchmarkPageCacheLRM measures allocation with LRM victim selection at
// the base 80-frame size.
func BenchmarkPageCacheLRM(b *testing.B) {
	c := pagecache.New(80, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.FreeFrames() == 0 {
			v, _ := c.PickVictim()
			c.Evict(v)
		}
		c.Allocate(addr.PageNum(i), int64(i))
	}
}

// BenchmarkPageCounter measures the dense per-(node,page) counter table
// against the map accumulation it replaced on the refetch path.
func BenchmarkPageCounter(b *testing.B) {
	b.Run("dense", func(b *testing.B) {
		c := stats.NewPageCounter(8, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(addr.NodeID(i&7), addr.PageNum(i&1023), 1)
		}
	})
	b.Run("map", func(b *testing.B) {
		m := make(map[stats.PageKey]int64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m[stats.PageKey{Node: addr.NodeID(i & 7), Page: addr.PageNum(i & 1023)}]++
		}
	})
}

// BenchmarkTraceEncodeDecode measures the trace-file hot paths: encoding
// a workload's streams to the binary format and decoding them back. The
// bytes/ref metric tracks the format's density (the paper-shaped sweeps
// should stay in the 2-4 byte range against 12-byte in-memory refs).
func BenchmarkTraceEncodeDecode(b *testing.B) {
	cfg := workloads.DefaultConfig()
	cfg.Scale = benchScale
	app, _ := workloads.ByName("moldyn")

	var encoded bytes.Buffer
	refs, _, err := tracefile.WriteWorkload(&encoded, app.Build(cfg), cfg)
	if err != nil {
		b.Fatal(err)
	}
	perRef := float64(encoded.Len()) / float64(refs)

	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(encoded.Len()))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			buf.Grow(encoded.Len())
			if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(perRef, "bytes/ref")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(encoded.Len()))
		for i := 0; i < b.N; i++ {
			d, err := tracefile.NewReader(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			counts, err := d.Drain()
			if err != nil {
				b.Fatal(err)
			}
			var total int64
			for _, c := range counts {
				total += c
			}
			if total != refs {
				b.Fatalf("decoded %d refs, wrote %d", total, refs)
			}
		}
		b.ReportMetric(perRef, "bytes/ref")
	})
}

// BenchmarkReplayVsGenerate compares the two ways to feed the machine:
// building the synthetic generator live versus replaying its recorded
// trace. Replay skips workload construction but adds decode work; the
// pair bounds what recorded-production-traffic ingestion costs.
func BenchmarkReplayVsGenerate(b *testing.B) {
	cfg := workloads.DefaultConfig()
	cfg.Scale = benchScale
	app, _ := workloads.ByName("moldyn")
	sys := config.Base(config.RNUMA)

	var encoded bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&encoded, app.Build(cfg), cfg); err != nil {
		b.Fatal(err)
	}

	b.Run("generate", func(b *testing.B) {
		var refs int64
		for i := 0; i < b.N; i++ {
			w := app.Build(cfg)
			m, err := machine.New(sys, machine.WithHomes(w.Homes), machine.WithPages(w.SharedPages))
			if err != nil {
				b.Fatal(err)
			}
			run, err := m.Run(w.Streams)
			if err != nil {
				b.Fatal(err)
			}
			refs = run.Refs
		}
		b.ReportMetric(float64(refs), "refs/run")
	})
	b.Run("replay", func(b *testing.B) {
		var refs int64
		for i := 0; i < b.N; i++ {
			d, err := tracefile.NewReader(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			h := d.Header()
			m, err := machine.New(sys, machine.WithHomes(h.HomeFunc()), machine.WithPages(h.SharedPages))
			if err != nil {
				b.Fatal(err)
			}
			run, err := m.Run(d.Streams())
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Err(); err != nil {
				b.Fatal(err)
			}
			refs = run.Refs
		}
		b.ReportMetric(float64(refs), "refs/run")
	})
	// The probed replay bounds the telemetry tax at the default 64Ki-ref
	// window: the acceptance bar is within 10% of the plain replay above
	// (the per-reference cost is one int64 compare; the window flush
	// amortizes to noise).
	b.Run("replay-telemetry", func(b *testing.B) {
		var intervals int
		for i := 0; i < b.N; i++ {
			d, err := tracefile.NewReader(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			h := d.Header()
			m, err := machine.New(sys, machine.WithHomes(h.HomeFunc()), machine.WithPages(h.SharedPages),
				machine.WithTelemetry(telemetry.Config{Window: telemetry.DefaultWindow}))
			if err != nil {
				b.Fatal(err)
			}
			run, err := m.Run(d.Streams())
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Err(); err != nil {
				b.Fatal(err)
			}
			if run.Timeline == nil {
				b.Fatal("probed replay captured no timeline")
			}
			intervals = len(run.Timeline.Intervals)
		}
		b.ReportMetric(float64(intervals), "intervals")
	})
}

// BenchmarkSnapshotFork measures the checkpoint/fork sweep machinery:
// "replay-one" is the baseline (a single full R-NUMA replay of the
// capture); "fork-sweep-5" runs a five-point threshold sweep through the
// trunk-and-fork engine, which replays the shared prefix once and forks
// each point from a snapshot. The sweep's wall clock over the baseline's
// is the headline ratio (the acceptance bound is 2x a single replay;
// five independent replays would be 5x). The saving is proportional to
// how deep into the trace the counter watermarks sit — em3d's refetch
// counters climb slowly, so its five points share a long prefix.
func BenchmarkSnapshotFork(b *testing.B) {
	cfg := workloads.DefaultConfig()
	cfg.Scale = benchScale
	app, _ := workloads.ByName("em3d")
	sys := config.Base(config.RNUMA)
	thresholds := []int{8, 16, 64, 256, 1024}

	var encoded bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&encoded, app.Build(cfg), cfg); err != nil {
		b.Fatal(err)
	}
	data := encoded.Bytes()

	b.Run("replay-one", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.Replay(bytes.NewReader(data), sys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fork-sweep-5", func(b *testing.B) {
		var refs int64
		for i := 0; i < b.N; i++ {
			res, err := harness.Replay(bytes.NewReader(data), sys, harness.WithThresholds(thresholds...))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.ByThreshold) != len(thresholds) {
				b.Fatalf("%d runs for %d thresholds", len(res.ByThreshold), len(thresholds))
			}
			refs = res.ByThreshold[64].Refs
		}
		b.ReportMetric(float64(len(thresholds)), "points")
		b.ReportMetric(float64(refs), "refs/point")
	})
}

// BenchmarkGridSweep measures the two-axis grid engine end to end on a
// cold store: a 2x3 block x threshold grid over a recorded em3d capture
// covers the geometry transforms, the trunk-and-fork threshold lines
// (each grid line replays its shared prefix once), and cell assembly.
// A fresh harness per iteration keeps the memo store from turning later
// iterations into cache reads.
func BenchmarkGridSweep(b *testing.B) {
	cfg := workloads.DefaultConfig()
	cfg.Scale = benchScale
	app, _ := workloads.ByName("em3d")
	var encoded bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&encoded, app.Build(cfg), cfg); err != nil {
		b.Fatal(err)
	}
	data := encoded.Bytes()
	blocks := []harness.SweepValue{harness.IntValue(16), harness.IntValue(32)}
	thresholds := []harness.SweepValue{harness.IntValue(16), harness.IntValue(64), harness.IntValue(256)}

	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := benchHarness(benchScale)
		g, err := h.SweepGrid(data, harness.AxisBlockSize, blocks, harness.AxisThreshold, thresholds)
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Cells) != 3 || len(g.Cells[0]) != 2 {
			b.Fatalf("grid is %dx%d, want 2x3", len(g.Cells[0]), len(g.Cells))
		}
		worst = harness.FindKnee(g.Row(0), 0).MaxRatio
		for i := range g.Cells {
			if k := harness.FindKnee(g.Row(i), 0); k.MaxRatio > worst {
				worst = k.MaxRatio
			}
		}
	}
	b.ReportMetric(float64(len(blocks)*len(thresholds)), "cells")
	b.ReportMetric(worst, "worst-rnuma-vs-best")
}

// BenchmarkTraceGeneration measures reference stream production.
func BenchmarkTraceGeneration(b *testing.B) {
	refs := make([]trace.Ref, 1024)
	for i := range refs {
		refs[i] = trace.Ref{Page: addr.PageNum(i), Off: uint16(i % 128)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := trace.Repeat(refs, 4)
		n := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			n++
		}
		if n != 4096 {
			b.Fatal("bad repeat")
		}
	}
}
