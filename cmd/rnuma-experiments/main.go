// Command rnuma-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	rnuma-experiments [-exp all|fig5|table4|fig6|fig7|fig8|fig9|model|lu|sweep|dilate|geometry|timeline|traffic]
//	                  [-apps barnes,lu,...] [-specs a.json,b.json]
//	                  [-traces x.trace,...] [-scale 1.0] [-seed 0]
//	                  [-parallel N] [-v] [-progress] [-window N]
//	                  [-sweep-trace x.trace] [-sweep-app em3d] [-sweep-nodes 4,8,16]
//	                  [-sweep-axis nodes|dilate|block|page|threshold] [-sweep-values ...]
//	                  [-dilate-factors 1/2,1,2,4] [-geometry-axis block|page] [-geometry-values ...]
//	                  [-diff a.trace,b.trace] [-diff-protocol rnuma]
//
// Each experiment prints the corresponding rows/series of the paper's
// evaluation (Section 5); see EXPERIMENTS.md for paper-vs-measured values.
// The selected experiments' (application, system) grids are combined into
// one deduplicated plan and executed across -parallel workers (default
// GOMAXPROCS) before the figures are assembled, so shared configurations
// (the ideal baseline, the base protocols) simulate once.
//
// -specs and -traces register declarative workload files and recorded
// traces as additional applications: their rows appear in every selected
// figure alongside the Table 3 catalog (memoized by file content hash).
// Recorded traces must match the experiments' 8x4 base machine shape.
//
// The sensitivity experiments replay one capture — from -sweep-trace, or
// recorded from -sweep-app at the base shape — transformed along one
// parameter axis and normalized to the same-configuration ideal machine
// at every point:
//
//   - -exp sweep sweeps the node count (-sweep-nodes), or any axis via
//     -sweep-axis/-sweep-values (nodes, dilate, block, page, threshold);
//   - -exp dilate sweeps compute-gap scale factors (-dilate-factors,
//     default 1/2,1,2,4) — the "faster processors" study: x1/2 halves
//     every compute gap, doubling the relative cost of memory;
//   - -exp geometry sweeps the block or page size (-geometry-axis,
//     -geometry-values) through geometry retargeting;
//   - -exp timeline runs a probed threshold fork sweep (-sweep-values,
//     default 16,64) and renders each point's time-resolved telemetry:
//     interval series, relocation bursts, and traffic matrix.
//
// These experiments need a trace, so they run only when selected by
// name, never under -exp all.
//
// -exp traffic -traffic scenario.json compiles a multi-tenant traffic
// scenario (see internal/traffic) at the 8x4 base shape, replays the
// merged mix under every protocol plus the ideal baseline, and prints the
// normalized comparison followed by each protocol's per-client counter
// split — how the tenants share (and steal) the machine. Like the other
// file-driven experiments it runs only when selected by name.
//
// -window N attaches the telemetry sampling probe (window N references)
// to every simulation; -progress reports scheduler throughput to stderr
// while a parallel plan executes.
//
// -diff a.trace,b.trace replays both captures under one configuration
// (-diff-protocol) and prints the per-counter stats delta table — the
// report form of `rnuma-trace diffstats`, without the exit-status gate —
// then exits without running any -exp experiment.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/model"
	"rnuma/internal/report"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: all, fig5, table4, fig6, fig7, fig8, fig9, model, lu, sweep, dilate, geometry, timeline, traffic")
		apps        = flag.String("apps", "", "comma-separated application subset (default: all ten)")
		specs       = flag.String("specs", "", "comma-separated workload spec files to add as applications")
		traces      = flag.String("traces", "", "comma-separated recorded trace files to add as applications")
		scale       = flag.Float64("scale", 1.0, "workload scale (iteration multiplier)")
		seed        = flag.Int64("seed", 0, "workload RNG seed (0 = built-in fixed seeds)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		verbose     = flag.Bool("v", false, "log run progress")
		sweepTrace  = flag.String("sweep-trace", "", "recorded trace to sweep (default: record -sweep-app at the 8x4 base shape)")
		sweepApp    = flag.String("sweep-app", "em3d", "catalog application to record for the sweep when no -sweep-trace is given")
		sweepNodes  = flag.String("sweep-nodes", "4,8,16", "comma-separated node counts for -exp sweep")
		sweepAxis   = flag.String("sweep-axis", "nodes", "-exp sweep axis: nodes, dilate, block, page, threshold")
		sweepVals   = flag.String("sweep-values", "", "comma-separated values for -sweep-axis (default per axis)")
		dilateVals  = flag.String("dilate-factors", "1/2,1,2,4", "comma-separated gap scale factors for -exp dilate")
		geomAxis    = flag.String("geometry-axis", "block", "-exp geometry axis: block or page")
		geomVals    = flag.String("geometry-values", "", "comma-separated sizes in bytes (default 16,32,64,128 for block; 2048,4096,8192 for page)")
		trafficSpec = flag.String("traffic", "", "traffic scenario file for -exp traffic")
		diffPair    = flag.String("diff", "", "two traces \"a.trace,b.trace\" to replay and diff counter-by-counter")
		diffProto   = flag.String("diff-protocol", "rnuma", "protocol for -diff: ccnuma, scoma, rnuma, ideal")
		window      = flag.Int64("window", 0, "telemetry window in references (0 = off; -exp timeline defaults it)")
		progress    = flag.Bool("progress", false, "report scheduler progress (jobs done, refs/s) to stderr")
	)
	flag.Parse()

	list := harness.AllApps()
	if *apps != "" {
		list = strings.Split(*apps, ",")
	}
	h := harness.New(*scale)
	h.Seed = *seed
	h.Workers = *parallel
	if *verbose {
		h.Log = os.Stderr
	}
	if *progress {
		h.Progress = os.Stderr
	}
	// -window attaches the sampling probe to every simulation the harness
	// runs; figures are unaffected (they read counters, not timelines).
	h.Telemetry = telemetry.Config{Window: *window}

	die := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnuma-experiments: %v\n", err)
			os.Exit(1)
		}
	}

	// -diff is a standalone mode: replay the two captures under one
	// configuration, print the per-counter delta table, and exit. Unlike
	// `rnuma-trace diffstats` it always exits 0 on a successful
	// comparison — this is the report form, not the regression gate.
	if *diffPair != "" {
		paths := splitList(*diffPair)
		if len(paths) != 2 {
			die(fmt.Errorf("-diff wants exactly two traces, got %q", *diffPair))
		}
		sys, err := config.SystemByName(*diffProto)
		die(err)
		a, err := harness.ReplayFile(paths[0], sys)
		die(err)
		b, err := harness.ReplayFile(paths[1], sys)
		die(err)
		fmt.Printf("diff %s vs %s (%s)\n\n", paths[0], paths[1], sys.Name)
		report.DeltaTable(os.Stdout, paths[0], paths[1], stats.Diff(a.Run, b.Run), false)
		return
	}

	// Spec and trace files join the application list: every selected
	// figure then carries their rows next to the catalog's. A registered
	// source shadows a same-named catalog generator, so a name already in
	// the list (via -apps) is not appended again — the row would be the
	// source replay twice, never the generator-vs-trace comparison.
	addSource := func(src harness.Source) {
		die(h.Register(src))
		for _, name := range list {
			if name == src.Name() {
				fmt.Fprintf(os.Stderr, "note: %q rows replay the registered source (it shadows the catalog generator)\n", src.Name())
				return
			}
		}
		list = append(list, src.Name())
	}
	for _, path := range splitList(*specs) {
		src, err := harness.SpecFileSource(path)
		die(err)
		addSource(src)
	}
	for _, path := range splitList(*traces) {
		src, err := harness.TraceFileSource(path)
		die(err)
		addSource(src)
	}
	sep := func() { fmt.Println("\n" + strings.Repeat("=", 80) + "\n") }

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Warm the memo cache for the whole evaluation in one deduplicated
	// concurrent fan-out; the per-figure assembly below then reads pure
	// cache hits. Single-figure invocations skip this: each figure's own
	// assembly prefetches exactly its grid.
	if *exp == "all" {
		h.Prefetch(h.PlanAll(list))
	}

	if want("model") {
		costs := config.BaseCosts()
		p := model.FromCosts(float64(costs.RemoteFetch),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*32),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*16), 64)
		report.Model(os.Stdout, p)
		sep()
	}
	if want("fig5") {
		curves, err := h.Figure5(list)
		die(err)
		report.Figure5(os.Stdout, curves)
		sep()
	}
	if want("table4") {
		rows, err := h.Table4(list)
		die(err)
		report.Table4(os.Stdout, rows)
		sep()
	}
	if want("fig6") {
		rows, err := h.Figure6(list)
		die(err)
		report.Figure6(os.Stdout, rows)
		sep()
	}
	if want("fig7") {
		rows, err := h.Figure7(list)
		die(err)
		report.Figure7(os.Stdout, rows)
		sep()
	}
	if want("fig8") {
		rows, err := h.Figure8(list)
		die(err)
		report.Figure8(os.Stdout, rows)
		sep()
	}
	if want("fig9") {
		rows, err := h.Figure9(list)
		die(err)
		report.Figure9(os.Stdout, rows)
		sep()
	}
	if want("lu") {
		share, err := h.LuImbalance()
		die(err)
		fmt.Printf("LU LOAD IMBALANCE (Section 5.5) — top-2 nodes' share of S-COMA page replacements: %.0f%%\n", share*100)
		fmt.Println("(the paper attributes lu's relocation-overhead sensitivity to two overloaded nodes)")
	}

	// The sensitivity experiments replay one capture transformed along a
	// parameter axis via the trace transform layer. They need a trace
	// (recorded here when none is given), so they run only when asked
	// for by name, not under "all".
	record := func() []byte {
		app, ok := workloads.ByName(*sweepApp)
		if !ok {
			die(fmt.Errorf("unknown -sweep-app %q", *sweepApp))
		}
		cfg := workloads.DefaultConfig()
		cfg.Scale, cfg.Seed = *scale, *seed
		var buf bytes.Buffer
		if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
			die(err)
		}
		return buf.Bytes()
	}
	defaultValues := map[harness.Axis]string{
		harness.AxisNodes:     "4,8,16",
		harness.AxisDilate:    "1/2,1,2,4",
		harness.AxisBlockSize: "16,32,64,128",
		harness.AxisPageSize:  "2048,4096,8192",
		harness.AxisThreshold: "16,64,256,1024",
	}
	sensitivity := func(axis harness.Axis, csv string) {
		if csv == "" {
			csv = defaultValues[axis]
		}
		values, err := harness.ParseSweepValues(axis, csv)
		die(err)
		var (
			points []harness.AxisPoint
			name   string
		)
		if *sweepTrace != "" {
			points, name, err = h.SweepFile(*sweepTrace, axis, values)
		} else {
			points, name, err = h.Sweep(record(), axis, values)
		}
		die(err)
		report.Sensitivity(os.Stdout, name, axis, points)
	}

	if *exp == "sweep" {
		axis, err := harness.ParseAxis(*sweepAxis)
		die(err)
		csv := *sweepVals
		if axis == harness.AxisNodes && csv == "" {
			// The original node-count sweep keeps its -sweep-nodes
			// spelling; it now rides the generalized axis engine like
			// every other sweep.
			csv = *sweepNodes
		}
		sensitivity(axis, csv)
	}
	if *exp == "dilate" {
		sensitivity(harness.AxisDilate, *dilateVals)
	}
	if *exp == "geometry" {
		axis, err := harness.ParseAxis(*geomAxis)
		die(err)
		if axis != harness.AxisBlockSize && axis != harness.AxisPageSize {
			die(fmt.Errorf("-geometry-axis must be block or page, got %q", *geomAxis))
		}
		sensitivity(axis, *geomVals)
	}

	// -exp traffic replays a compiled multi-tenant scenario under every
	// protocol (plus the ideal baseline for normalization) and breaks each
	// run out per tenant. The scenario bakes in the scale and seed at
	// compile time, exactly like a recorded trace.
	if *exp == "traffic" {
		if *trafficSpec == "" {
			die(fmt.Errorf("-exp traffic needs -traffic <scenario.json>"))
		}
		data, err := os.ReadFile(*trafficSpec)
		die(err)
		cfg := workloads.DefaultConfig()
		cfg.Scale, cfg.Seed = *scale, *seed
		src, err := harness.TrafficSource(data, filepath.Dir(*trafficSpec), cfg)
		die(err)
		die(h.Register(src))
		sc := src.Scenario()
		systems := []config.System{
			config.Base(config.CCNUMA), config.Base(config.SCOMA), config.Base(config.RNUMA),
		}
		h.Prefetch(harness.NewPlan().AddRuns([]string{src.Name()},
			append(append([]config.System{}, systems...), config.Ideal())...))
		ideal, err := h.Ideal(src.Name())
		die(err)
		fmt.Printf("TRAFFIC — scenario %s: %d tenants (%s), %d refs, %d pages\n\n",
			sc.Name, len(sc.Clients), strings.Join(sc.Clients, ", "), sc.Records(), sc.SharedPages)
		fmt.Printf("%-28s %10s %10s %10s %10s\n", "system", "norm-exec", "remote", "refetch", "reloc")
		fmt.Println(strings.Repeat("-", 72))
		runs := make([]*stats.Run, len(systems))
		for i, sys := range systems {
			run, err := h.Run(src.Name(), sys)
			die(err)
			runs[i] = run
			norm := 0.0
			if ideal.ExecCycles > 0 {
				norm = run.Normalized(ideal)
			}
			fmt.Printf("%-28s %10.3f %10d %10d %10d\n", sys.Name, norm, run.RemoteFetches, run.Refetches, run.Relocations)
		}
		for i, sys := range systems {
			fmt.Printf("\n%s:\n", sys.Name)
			report.ClientTable(os.Stdout, runs[i])
		}
		sep()
	}

	// -exp timeline renders the time-resolved telemetry story: one probed
	// fork sweep over the requested R-NUMA thresholds (-sweep-values,
	// default "16,64"), then each point's interval series, relocation
	// bursts, and traffic matrix — how the same trace's reactive behavior
	// shifts when the threshold moves. Needs a trace, so like the other
	// sensitivity experiments it never runs under -exp all.
	if *exp == "timeline" {
		csv := *sweepVals
		if csv == "" {
			csv = "16,64"
		}
		var thresholds []int
		for _, s := range splitList(csv) {
			T, err := strconv.Atoi(s)
			if err != nil || T < 1 {
				die(fmt.Errorf("bad -sweep-values threshold %q for -exp timeline", s))
			}
			thresholds = append(thresholds, T)
		}
		sort.Ints(thresholds)
		tcfg := h.Telemetry
		if !tcfg.Enabled() {
			tcfg = telemetry.Config{Window: telemetry.DefaultWindow}
		}
		var (
			data []byte
			name string
		)
		if *sweepTrace != "" {
			b, err := os.ReadFile(*sweepTrace)
			die(err)
			data, name = b, *sweepTrace
		} else {
			data, name = record(), *sweepApp
		}
		res, err := harness.Replay(bytes.NewReader(data), config.Base(config.RNUMA),
			harness.WithThresholds(thresholds...), harness.WithTelemetry(tcfg))
		die(err)
		for i, T := range thresholds {
			if i > 0 && T == thresholds[i-1] {
				continue
			}
			report.Timeline(os.Stdout, fmt.Sprintf("%s, R-NUMA T=%d", name, T), res.ByThreshold[T].Timeline)
			sep()
		}
	}
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
