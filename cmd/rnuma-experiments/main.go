// Command rnuma-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	rnuma-experiments [-exp all|fig5|table4|fig6|fig7|fig8|fig9|model|lu|sweep|dilate|geometry|grid|timeline|traffic]
//	                  [-apps barnes,lu,...] [-specs a.json,b.json]
//	                  [-traces x.trace,...] [-scale 1.0] [-seed 0]
//	                  [-parallel N] [-v] [-progress] [-window N]
//	                  [-sweep-trace x.trace] [-sweep-app em3d] [-sweep-nodes 4,8,16]
//	                  [-sweep-axis nodes|dilate|block|page|threshold] [-sweep-values ...]
//	                  [-dilate-factors 1/2,1,2,4] [-geometry-axis block|page] [-geometry-values ...]
//	                  [-grid-axes block,threshold] [-grid-values-a ...] [-grid-values-b ...]
//	                  [-grid-bound 1.10] [-grid-json grid.json]
//	                  [-diff a.trace,b.trace] [-diff-protocol rnuma]
//
// Each experiment prints the corresponding rows/series of the paper's
// evaluation (Section 5); see EXPERIMENTS.md for paper-vs-measured values.
// The selected experiments' (application, system) grids are combined into
// one deduplicated plan and executed across -parallel workers (default
// GOMAXPROCS) before the figures are assembled, so shared configurations
// (the ideal baseline, the base protocols) simulate once.
//
// -specs and -traces register declarative workload files and recorded
// traces as additional applications: their rows appear in every selected
// figure alongside the Table 3 catalog (memoized by file content hash).
// Recorded traces must match the experiments' 8x4 base machine shape.
//
// The sensitivity experiments replay one capture — from -sweep-trace, or
// recorded from -sweep-app at the base shape — transformed along one
// parameter axis and normalized to the same-configuration ideal machine
// at every point:
//
//   - -exp sweep sweeps the node count (-sweep-nodes), or any axis via
//     -sweep-axis/-sweep-values (nodes, dilate, block, page, threshold);
//   - -exp dilate sweeps compute-gap scale factors (-dilate-factors,
//     default 1/2,1,2,4) — the "faster processors" study: x1/2 halves
//     every compute gap, doubling the relative cost of memory;
//   - -exp geometry sweeps the block or page size (-geometry-axis,
//     -geometry-values) through geometry retargeting;
//   - -exp grid sweeps two axes at once (-grid-axes "x,y", values from
//     -grid-values-a/-grid-values-b, defaulting per axis) and renders a
//     heat map of the per-cell R-NUMA/best ratio, the exact numbers, and
//     per-row/column knee conclusions (first point past -grid-bound,
//     default 1.10); -grid-json also writes the machine-readable
//     document. The first axis's transform applies before the second's;
//     when one axis is the threshold, each grid line along it is
//     pre-computed by the snapshot/fork engine at ~1 replay's cost;
//   - -exp timeline runs a probed threshold fork sweep (-sweep-values,
//     default 16,64) and renders each point's time-resolved telemetry:
//     interval series, relocation bursts, and traffic matrix.
//
// These experiments need a trace, so they run only when selected by
// name, never under -exp all.
//
// -exp traffic -traffic scenario.json compiles a multi-tenant traffic
// scenario (see internal/traffic) at the 8x4 base shape, replays the
// merged mix under every protocol plus the ideal baseline, and prints the
// normalized comparison followed by each protocol's per-client counter
// split — how the tenants share (and steal) the machine. Like the other
// file-driven experiments it runs only when selected by name.
//
// -window N attaches the telemetry sampling probe (window N references)
// to every simulation; -progress reports scheduler throughput to stderr
// while a parallel plan executes.
//
// -diff a.trace,b.trace replays both captures under one configuration
// (-diff-protocol) and prints the per-counter stats delta table — the
// report form of `rnuma-trace diffstats`, without the exit-status gate —
// then exits without running any -exp experiment.
//
// Exit status: 0 on success, 1 on runtime errors (bad trace files,
// simulation failures), 2 on usage errors — unknown flags, axes, or
// unparseable -sweep-values/-grid-values-* entries (the offending token
// is named on stderr).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/model"
	"rnuma/internal/report"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitCode carries die/dieUsage's status through panic to run's recover,
// so the deeply nested experiment blocks keep their straight-line error
// handling while run stays testable (no os.Exit mid-flight).
type exitCode int

// run executes the CLI against injectable streams and returns the
// process exit code: 0 success, 1 runtime error, 2 usage error.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("rnuma-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp         = fs.String("exp", "all", "experiment: all, fig5, table4, fig6, fig7, fig8, fig9, model, lu, sweep, dilate, geometry, grid, timeline, traffic")
		apps        = fs.String("apps", "", "comma-separated application subset (default: all ten)")
		specs       = fs.String("specs", "", "comma-separated workload spec files to add as applications")
		traces      = fs.String("traces", "", "comma-separated recorded trace files to add as applications")
		scale       = fs.Float64("scale", 1.0, "workload scale (iteration multiplier)")
		seed        = fs.Int64("seed", 0, "workload RNG seed (0 = built-in fixed seeds)")
		parallel    = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		verbose     = fs.Bool("v", false, "log run progress")
		sweepTrace  = fs.String("sweep-trace", "", "recorded trace to sweep (default: record -sweep-app at the 8x4 base shape)")
		sweepApp    = fs.String("sweep-app", "em3d", "catalog application to record for the sweep when no -sweep-trace is given")
		sweepNodes  = fs.String("sweep-nodes", "4,8,16", "comma-separated node counts for -exp sweep")
		sweepAxis   = fs.String("sweep-axis", "nodes", "-exp sweep axis: nodes, dilate, block, page, threshold")
		sweepVals   = fs.String("sweep-values", "", "comma-separated values for -sweep-axis (default per axis)")
		dilateVals  = fs.String("dilate-factors", "1/2,1,2,4", "comma-separated gap scale factors for -exp dilate")
		geomAxis    = fs.String("geometry-axis", "block", "-exp geometry axis: block or page")
		geomVals    = fs.String("geometry-values", "", "comma-separated sizes in bytes (default 16,32,64,128 for block; 2048,4096,8192 for page)")
		gridAxes    = fs.String("grid-axes", "block,threshold", "-exp grid axes \"x,y\"; the x transform applies first")
		gridValsA   = fs.String("grid-values-a", "", "comma-separated values for the first grid axis (default per axis)")
		gridValsB   = fs.String("grid-values-b", "", "comma-separated values for the second grid axis (default per axis)")
		gridBound   = fs.Float64("grid-bound", 0, "knee bound on R-NUMA/best for -exp grid (0 = default 1.10)")
		gridJSON    = fs.String("grid-json", "", "also write -exp grid's JSON document to this file")
		trafficSpec = fs.String("traffic", "", "traffic scenario file for -exp traffic")
		diffPair    = fs.String("diff", "", "two traces \"a.trace,b.trace\" to replay and diff counter-by-counter")
		diffProto   = fs.String("diff-protocol", "rnuma", "protocol for -diff: ccnuma, scoma, rnuma, ideal")
		window      = fs.Int64("window", 0, "telemetry window in references (0 = off; -exp timeline defaults it)")
		progress    = fs.Bool("progress", false, "report scheduler progress (jobs done, refs/s) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			code = int(c)
		}
	}()
	// die reports a runtime error (exit 1); dieUsage a usage error —
	// unknown axes, unparseable value lists, malformed flag pairs —
	// (exit 2). Both are no-ops on nil.
	fail := func(err error, c exitCode) {
		if err != nil {
			fmt.Fprintf(stderr, "rnuma-experiments: %v\n", err)
			panic(c)
		}
	}
	die := func(err error) { fail(err, 1) }
	dieUsage := func(err error) { fail(err, 2) }

	list := harness.AllApps()
	if *apps != "" {
		list = strings.Split(*apps, ",")
	}
	h := harness.New(*scale)
	h.Seed = *seed
	h.Workers = *parallel
	if *verbose {
		h.Log = stderr
	}
	if *progress {
		h.Progress = stderr
	}
	// -window attaches the sampling probe to every simulation the harness
	// runs; figures are unaffected (they read counters, not timelines).
	h.Telemetry = telemetry.Config{Window: *window}

	// -diff is a standalone mode: replay the two captures under one
	// configuration, print the per-counter delta table, and exit. Unlike
	// `rnuma-trace diffstats` it always exits 0 on a successful
	// comparison — this is the report form, not the regression gate.
	if *diffPair != "" {
		paths := splitList(*diffPair)
		if len(paths) != 2 {
			dieUsage(fmt.Errorf("-diff wants exactly two traces, got %q", *diffPair))
		}
		sys, err := config.SystemByName(*diffProto)
		die(err)
		a, err := harness.ReplayFile(paths[0], sys)
		die(err)
		b, err := harness.ReplayFile(paths[1], sys)
		die(err)
		fmt.Fprintf(stdout, "diff %s vs %s (%s)\n\n", paths[0], paths[1], sys.Name)
		report.DeltaTable(stdout, paths[0], paths[1], stats.Diff(a.Run, b.Run), false)
		return 0
	}

	// Spec and trace files join the application list: every selected
	// figure then carries their rows next to the catalog's. A registered
	// source shadows a same-named catalog generator, so a name already in
	// the list (via -apps) is not appended again — the row would be the
	// source replay twice, never the generator-vs-trace comparison.
	addSource := func(src harness.Source) {
		die(h.Register(src))
		for _, name := range list {
			if name == src.Name() {
				fmt.Fprintf(stderr, "note: %q rows replay the registered source (it shadows the catalog generator)\n", src.Name())
				return
			}
		}
		list = append(list, src.Name())
	}
	for _, path := range splitList(*specs) {
		src, err := harness.SpecFileSource(path)
		die(err)
		addSource(src)
	}
	for _, path := range splitList(*traces) {
		src, err := harness.TraceFileSource(path)
		die(err)
		addSource(src)
	}
	sep := func() { fmt.Fprintln(stdout, "\n"+strings.Repeat("=", 80)+"\n") }

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Warm the memo cache for the whole evaluation in one deduplicated
	// concurrent fan-out; the per-figure assembly below then reads pure
	// cache hits. Single-figure invocations skip this: each figure's own
	// assembly prefetches exactly its grid.
	if *exp == "all" {
		h.Prefetch(h.PlanAll(list))
	}

	if want("model") {
		costs := config.BaseCosts()
		p := model.FromCosts(float64(costs.RemoteFetch),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*32),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*16), 64)
		report.Model(stdout, p)
		sep()
	}
	if want("fig5") {
		curves, err := h.Figure5(list)
		die(err)
		report.Figure5(stdout, curves)
		sep()
	}
	if want("table4") {
		rows, err := h.Table4(list)
		die(err)
		report.Table4(stdout, rows)
		sep()
	}
	if want("fig6") {
		rows, err := h.Figure6(list)
		die(err)
		report.Figure6(stdout, rows)
		sep()
	}
	if want("fig7") {
		rows, err := h.Figure7(list)
		die(err)
		report.Figure7(stdout, rows)
		sep()
	}
	if want("fig8") {
		rows, err := h.Figure8(list)
		die(err)
		report.Figure8(stdout, rows)
		sep()
	}
	if want("fig9") {
		rows, err := h.Figure9(list)
		die(err)
		report.Figure9(stdout, rows)
		sep()
	}
	if want("lu") {
		share, err := h.LuImbalance()
		die(err)
		fmt.Fprintf(stdout, "LU LOAD IMBALANCE (Section 5.5) — top-2 nodes' share of S-COMA page replacements: %.0f%%\n", share*100)
		fmt.Fprintln(stdout, "(the paper attributes lu's relocation-overhead sensitivity to two overloaded nodes)")
	}

	// The sensitivity experiments replay one capture transformed along a
	// parameter axis via the trace transform layer. They need a trace
	// (recorded here when none is given), so they run only when asked
	// for by name, not under "all".
	record := func() []byte {
		app, ok := workloads.ByName(*sweepApp)
		if !ok {
			dieUsage(fmt.Errorf("unknown -sweep-app %q", *sweepApp))
		}
		cfg := workloads.DefaultConfig()
		cfg.Scale, cfg.Seed = *scale, *seed
		var buf bytes.Buffer
		if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
			die(err)
		}
		return buf.Bytes()
	}
	defaultValues := map[harness.Axis]string{
		harness.AxisNodes:     "4,8,16",
		harness.AxisDilate:    "1/2,1,2,4",
		harness.AxisBlockSize: "16,32,64,128",
		harness.AxisPageSize:  "2048,4096,8192",
		harness.AxisThreshold: "16,64,256,1024",
	}
	// parseValues resolves one axis's value list (per-axis default when
	// empty); unparseable entries are usage errors naming the token.
	parseValues := func(axis harness.Axis, csv string) []harness.SweepValue {
		if csv == "" {
			csv = defaultValues[axis]
		}
		values, err := harness.ParseSweepValues(axis, csv)
		dieUsage(err)
		return values
	}
	sensitivity := func(axis harness.Axis, csv string) {
		values := parseValues(axis, csv)
		var (
			points []harness.AxisPoint
			name   string
			err    error
		)
		if *sweepTrace != "" {
			points, name, err = h.SweepFile(*sweepTrace, axis, values)
		} else {
			points, name, err = h.Sweep(record(), axis, values)
		}
		die(err)
		report.Sensitivity(stdout, name, axis, points)
	}

	if *exp == "sweep" {
		axis, err := harness.ParseAxis(*sweepAxis)
		dieUsage(err)
		csv := *sweepVals
		if axis == harness.AxisNodes && csv == "" {
			// The original node-count sweep keeps its -sweep-nodes
			// spelling; it now rides the generalized axis engine like
			// every other sweep.
			csv = *sweepNodes
		}
		sensitivity(axis, csv)
	}
	if *exp == "dilate" {
		sensitivity(harness.AxisDilate, *dilateVals)
	}
	if *exp == "geometry" {
		axis, err := harness.ParseAxis(*geomAxis)
		dieUsage(err)
		if axis != harness.AxisBlockSize && axis != harness.AxisPageSize {
			dieUsage(fmt.Errorf("-geometry-axis must be block or page, got %q", *geomAxis))
		}
		sensitivity(axis, *geomVals)
	}

	// -exp grid sweeps two axes at once and renders the heat map, exact
	// table, and knee conclusions; -grid-json additionally writes the
	// machine-readable document for downstream gating.
	if *exp == "grid" {
		names := splitList(*gridAxes)
		if len(names) != 2 {
			dieUsage(fmt.Errorf("-grid-axes wants exactly two axes \"x,y\", got %q", *gridAxes))
		}
		axisX, err := harness.ParseAxis(names[0])
		dieUsage(err)
		axisY, err := harness.ParseAxis(names[1])
		dieUsage(err)
		if axisX == axisY {
			dieUsage(fmt.Errorf("-grid-axes must name two different axes, got %q", *gridAxes))
		}
		xs := parseValues(axisX, *gridValsA)
		ys := parseValues(axisY, *gridValsB)
		var g *harness.Grid
		if *sweepTrace != "" {
			g, err = h.SweepGridFile(*sweepTrace, axisX, xs, axisY, ys)
		} else {
			g, err = h.SweepGrid(record(), axisX, xs, axisY, ys)
		}
		die(err)
		report.Grid(stdout, g, *gridBound)
		if *gridJSON != "" {
			doc := report.NewGridDoc(g, *gridBound)
			b, err := json.MarshalIndent(doc, "", "  ")
			die(err)
			die(os.WriteFile(*gridJSON, append(b, '\n'), 0o644))
		}
	}

	// -exp traffic replays a compiled multi-tenant scenario under every
	// protocol (plus the ideal baseline for normalization) and breaks each
	// run out per tenant. The scenario bakes in the scale and seed at
	// compile time, exactly like a recorded trace.
	if *exp == "traffic" {
		if *trafficSpec == "" {
			dieUsage(fmt.Errorf("-exp traffic needs -traffic <scenario.json>"))
		}
		data, err := os.ReadFile(*trafficSpec)
		die(err)
		cfg := workloads.DefaultConfig()
		cfg.Scale, cfg.Seed = *scale, *seed
		src, err := harness.TrafficSource(data, filepath.Dir(*trafficSpec), cfg)
		die(err)
		die(h.Register(src))
		sc := src.Scenario()
		systems := []config.System{
			config.Base(config.CCNUMA), config.Base(config.SCOMA), config.Base(config.RNUMA),
		}
		h.Prefetch(harness.NewPlan().AddRuns([]string{src.Name()},
			append(append([]config.System{}, systems...), config.Ideal())...))
		ideal, err := h.Ideal(src.Name())
		die(err)
		fmt.Fprintf(stdout, "TRAFFIC — scenario %s: %d tenants (%s), %d refs, %d pages\n\n",
			sc.Name, len(sc.Clients), strings.Join(sc.Clients, ", "), sc.Records(), sc.SharedPages)
		fmt.Fprintf(stdout, "%-28s %10s %10s %10s %10s\n", "system", "norm-exec", "remote", "refetch", "reloc")
		fmt.Fprintln(stdout, strings.Repeat("-", 72))
		runs := make([]*stats.Run, len(systems))
		for i, sys := range systems {
			run, err := h.Run(src.Name(), sys)
			die(err)
			runs[i] = run
			norm := 0.0
			if ideal.ExecCycles > 0 {
				norm = run.Normalized(ideal)
			}
			fmt.Fprintf(stdout, "%-28s %10.3f %10d %10d %10d\n", sys.Name, norm, run.RemoteFetches, run.Refetches, run.Relocations)
		}
		for i, sys := range systems {
			fmt.Fprintf(stdout, "\n%s:\n", sys.Name)
			report.ClientTable(stdout, runs[i])
		}
		sep()
	}

	// -exp timeline renders the time-resolved telemetry story: one probed
	// fork sweep over the requested R-NUMA thresholds (-sweep-values,
	// default "16,64"), then each point's interval series, relocation
	// bursts, and traffic matrix — how the same trace's reactive behavior
	// shifts when the threshold moves. Needs a trace, so like the other
	// sensitivity experiments it never runs under -exp all.
	if *exp == "timeline" {
		csv := *sweepVals
		if csv == "" {
			csv = "16,64"
		}
		var thresholds []int
		for _, s := range splitList(csv) {
			T, err := strconv.Atoi(s)
			if err != nil || T < 1 {
				dieUsage(fmt.Errorf("bad -sweep-values threshold %q for -exp timeline", s))
			}
			thresholds = append(thresholds, T)
		}
		sort.Ints(thresholds)
		tcfg := h.Telemetry
		if !tcfg.Enabled() {
			tcfg = telemetry.Config{Window: telemetry.DefaultWindow}
		}
		var (
			data []byte
			name string
		)
		if *sweepTrace != "" {
			b, err := os.ReadFile(*sweepTrace)
			die(err)
			data, name = b, *sweepTrace
		} else {
			data, name = record(), *sweepApp
		}
		res, err := harness.Replay(bytes.NewReader(data), config.Base(config.RNUMA),
			harness.WithThresholds(thresholds...), harness.WithTelemetry(tcfg))
		die(err)
		for i, T := range thresholds {
			if i > 0 && T == thresholds[i-1] {
				continue
			}
			report.Timeline(stdout, fmt.Sprintf("%s, R-NUMA T=%d", name, T), res.ByThreshold[T].Timeline)
			sep()
		}
	}
	return 0
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
