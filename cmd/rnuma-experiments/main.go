// Command rnuma-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	rnuma-experiments [-exp all|fig5|table4|fig6|fig7|fig8|fig9|model|lu|sweep]
//	                  [-apps barnes,lu,...] [-specs a.json,b.json]
//	                  [-traces x.trace,...] [-scale 1.0] [-seed 0]
//	                  [-parallel N] [-v]
//	                  [-sweep-trace x.trace] [-sweep-app em3d] [-sweep-nodes 4,8,16]
//
// Each experiment prints the corresponding rows/series of the paper's
// evaluation (Section 5); see EXPERIMENTS.md for paper-vs-measured values.
// The selected experiments' (application, system) grids are combined into
// one deduplicated plan and executed across -parallel workers (default
// GOMAXPROCS) before the figures are assembled, so shared configurations
// (the ideal baseline, the base protocols) simulate once.
//
// -specs and -traces register declarative workload files and recorded
// traces as additional applications: their rows appear in every selected
// figure alongside the Table 3 catalog (memoized by file content hash).
// Recorded traces must match the experiments' 8x4 base machine shape.
//
// -exp sweep replays one capture across machine sizes: the trace (from
// -sweep-trace, or recorded from -sweep-app at the base shape) is
// retargeted onto each -sweep-nodes count via the tracefile transform
// layer (round-robin re-homing, CPU count preserved) and replayed under
// all three protocols, normalized to the same-shape ideal machine. The
// sweep needs a trace, so it runs only when selected by name, never
// under -exp all.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/model"
	"rnuma/internal/report"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, fig5, table4, fig6, fig7, fig8, fig9, model, lu, sweep")
		apps       = flag.String("apps", "", "comma-separated application subset (default: all ten)")
		specs      = flag.String("specs", "", "comma-separated workload spec files to add as applications")
		traces     = flag.String("traces", "", "comma-separated recorded trace files to add as applications")
		scale      = flag.Float64("scale", 1.0, "workload scale (iteration multiplier)")
		seed       = flag.Int64("seed", 0, "workload RNG seed (0 = built-in fixed seeds)")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		verbose    = flag.Bool("v", false, "log run progress")
		sweepTrace = flag.String("sweep-trace", "", "recorded trace to sweep (default: record -sweep-app at the 8x4 base shape)")
		sweepApp   = flag.String("sweep-app", "em3d", "catalog application to record for the sweep when no -sweep-trace is given")
		sweepNodes = flag.String("sweep-nodes", "4,8,16", "comma-separated node counts for -exp sweep")
	)
	flag.Parse()

	list := harness.AllApps()
	if *apps != "" {
		list = strings.Split(*apps, ",")
	}
	h := harness.New(*scale)
	h.Seed = *seed
	h.Workers = *parallel
	if *verbose {
		h.Log = os.Stderr
	}

	die := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnuma-experiments: %v\n", err)
			os.Exit(1)
		}
	}

	// Spec and trace files join the application list: every selected
	// figure then carries their rows next to the catalog's. A registered
	// source shadows a same-named catalog generator, so a name already in
	// the list (via -apps) is not appended again — the row would be the
	// source replay twice, never the generator-vs-trace comparison.
	addSource := func(src harness.Source) {
		die(h.Register(src))
		for _, name := range list {
			if name == src.Name() {
				fmt.Fprintf(os.Stderr, "note: %q rows replay the registered source (it shadows the catalog generator)\n", src.Name())
				return
			}
		}
		list = append(list, src.Name())
	}
	for _, path := range splitList(*specs) {
		src, err := harness.SpecFileSource(path)
		die(err)
		addSource(src)
	}
	for _, path := range splitList(*traces) {
		src, err := harness.TraceFileSource(path)
		die(err)
		addSource(src)
	}
	sep := func() { fmt.Println("\n" + strings.Repeat("=", 80) + "\n") }

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Warm the memo cache for the whole evaluation in one deduplicated
	// concurrent fan-out; the per-figure assembly below then reads pure
	// cache hits. Single-figure invocations skip this: each figure's own
	// assembly prefetches exactly its grid.
	if *exp == "all" {
		h.Prefetch(h.PlanAll(list))
	}

	if want("model") {
		costs := config.BaseCosts()
		p := model.FromCosts(float64(costs.RemoteFetch),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*32),
			float64(costs.PageOpBase()+costs.PageOpPerBlock*16), 64)
		report.Model(os.Stdout, p)
		sep()
	}
	if want("fig5") {
		curves, err := h.Figure5(list)
		die(err)
		report.Figure5(os.Stdout, curves)
		sep()
	}
	if want("table4") {
		rows, err := h.Table4(list)
		die(err)
		report.Table4(os.Stdout, rows)
		sep()
	}
	if want("fig6") {
		rows, err := h.Figure6(list)
		die(err)
		report.Figure6(os.Stdout, rows)
		sep()
	}
	if want("fig7") {
		rows, err := h.Figure7(list)
		die(err)
		report.Figure7(os.Stdout, rows)
		sep()
	}
	if want("fig8") {
		rows, err := h.Figure8(list)
		die(err)
		report.Figure8(os.Stdout, rows)
		sep()
	}
	if want("fig9") {
		rows, err := h.Figure9(list)
		die(err)
		report.Figure9(os.Stdout, rows)
		sep()
	}
	if want("lu") {
		share, err := h.LuImbalance()
		die(err)
		fmt.Printf("LU LOAD IMBALANCE (Section 5.5) — top-2 nodes' share of S-COMA page replacements: %.0f%%\n", share*100)
		fmt.Println("(the paper attributes lu's relocation-overhead sensitivity to two overloaded nodes)")
	}

	// The sweep replays one capture across machine sizes via the trace
	// transform layer. It needs a trace (recorded here when none is
	// given), so it runs only when asked for by name, not under "all".
	if *exp == "sweep" {
		var nodeCounts []int
		for _, s := range splitList(*sweepNodes) {
			n, err := strconv.Atoi(s)
			if err != nil {
				die(fmt.Errorf("bad -sweep-nodes entry %q", s))
			}
			nodeCounts = append(nodeCounts, n)
		}
		var (
			points []harness.SweepPoint
			name   string
			err    error
		)
		if *sweepTrace != "" {
			points, name, err = h.NodeSweepFile(*sweepTrace, nodeCounts)
		} else {
			app, ok := workloads.ByName(*sweepApp)
			if !ok {
				die(fmt.Errorf("unknown -sweep-app %q", *sweepApp))
			}
			cfg := workloads.DefaultConfig()
			cfg.Scale, cfg.Seed = *scale, *seed
			var buf bytes.Buffer
			if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
				die(err)
			}
			points, name, err = h.NodeSweep(buf.Bytes(), nodeCounts)
		}
		die(err)
		report.Sweep(os.Stdout, name, points)
	}
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
