package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rnuma/internal/report"
)

// runCLI drives one in-process invocation, returning the exit code and
// captured stdout/stderr.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

const ciTrace = "../../testdata/ci/fft.trace"

// TestUsageExitCodes pins exit 2 for usage errors — unknown flags and
// axes, malformed flag pairs, unparseable value lists — with the
// offending token named on stderr. None of these reach a simulation.
func TestUsageExitCodes(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		token string
	}{
		{"unknown flag", []string{"-bogus"}, "bogus"},
		{"bad sweep value", []string{"-exp", "sweep", "-sweep-axis", "nodes", "-sweep-values", "4,x"}, `"x"`},
		{"bad sweep axis", []string{"-exp", "sweep", "-sweep-axis", "warp"}, `"warp"`},
		{"bad dilate factor", []string{"-exp", "dilate", "-dilate-factors", "1/0"}, `"1/0"`},
		{"bad geometry axis", []string{"-exp", "geometry", "-geometry-axis", "nodes"}, `"nodes"`},
		{"one grid axis", []string{"-exp", "grid", "-grid-axes", "block"}, `"block"`},
		{"equal grid axes", []string{"-exp", "grid", "-grid-axes", "block,block"}, "different axes"},
		{"bad grid axis", []string{"-exp", "grid", "-grid-axes", "block,warp"}, `"warp"`},
		{"bad grid value", []string{"-exp", "grid", "-grid-axes", "block,threshold", "-grid-values-a", "16,zap"}, `"zap"`},
		{"bad timeline threshold", []string{"-exp", "timeline", "-sweep-values", "16,oops"}, `"oops"`},
		{"one diff trace", []string{"-diff", "only.trace"}, "exactly two"},
		{"unknown sweep app", []string{"-exp", "sweep", "-sweep-app", "nosuch", "-sweep-axis", "nodes"}, `"nosuch"`},
		{"missing traffic scenario", []string{"-exp", "traffic"}, "-traffic"},
	}
	for _, tc := range cases {
		code, _, stderr := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if !strings.Contains(stderr, tc.token) {
			t.Errorf("%s: stderr %q does not name %s", tc.name, stderr, tc.token)
		}
	}

	// Runtime errors stay exit 1: a well-formed request over a missing file.
	if code, _, stderr := runCLI(t, "-exp", "sweep", "-sweep-axis", "nodes", "-sweep-trace", "nosuch.trace"); code != 1 {
		t.Errorf("missing trace: exit %d, want 1 (stderr: %s)", code, stderr)
	}
}

// TestGridExperiment runs -exp grid end to end over the committed CI
// capture: the heat map, knee conclusions, and JSON document all land.
func TestGridExperiment(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "grid.json")
	code, stdout, stderr := runCLI(t,
		"-exp", "grid", "-sweep-trace", ciTrace,
		"-grid-axes", "block,threshold",
		"-grid-values-a", "16,32", "-grid-values-b", "16,64",
		"-grid-json", jsonPath)
	if code != 0 {
		t.Fatalf("grid exited %d: %s", code, stderr)
	}
	for _, want := range []string{"GRID — fft: block (x) x threshold (y), 2x2 cells", "heat map (R-NUMA/best):", "knees (R-NUMA/best bound 1.10):", "worst cell:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("grid output missing %q (output:\n%s)", want, stdout)
		}
	}

	var doc report.GridDoc
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decode -grid-json: %v", err)
	}
	if doc.Workload != "fft" || len(doc.Cells) != 2 || len(doc.Cells[0]) != 2 || len(doc.Knees) != 4 {
		t.Errorf("grid doc = %q %dx%d cells, %d knees", doc.Workload, len(doc.Cells), len(doc.Cells[0]), len(doc.Knees))
	}
}
