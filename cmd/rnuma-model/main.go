// Command rnuma-model explores the paper's analytical worst-case model
// (Section 3.2): the competitive ratios of Equations 1-2, the optimal
// threshold, and the 2x-3x bound of Equation 3.
//
// Usage:
//
//	rnuma-model [-crefetch 376] [-callocate 5000] [-crelocate 5000] [-T 64]
package main

import (
	"flag"
	"os"

	"rnuma/internal/model"
	"rnuma/internal/report"
)

func main() {
	var (
		cref   = flag.Float64("crefetch", 376, "cost of refetching a remote block (cycles)")
		calloc = flag.Float64("callocate", 5000, "cost of allocating/replacing a page (cycles)")
		creloc = flag.Float64("crelocate", 5000, "cost of relocating a page (cycles)")
		thr    = flag.Float64("T", 64, "relocation threshold")
	)
	flag.Parse()

	p := model.Params{Crefetch: *cref, Callocate: *calloc, Crelocate: *creloc, T: *thr}
	if err := p.Validate(); err != nil {
		flag.Usage()
		os.Exit(2)
	}
	report.Model(os.Stdout, p)
}
