// Command rnuma-serve is the long-running experiment daemon: an
// HTTP/JSON service over the harness (internal/serve). Upload traces,
// specs, and traffic scenarios; submit replay, sweep, grid (two-axis
// heat map + knee summary), diffstats, and experiments jobs; poll or
// stream progress; fetch reports as text or JSON.
//
// All jobs share one result store, so repeated and overlapping
// submissions re-simulate nothing; with -store-dir the store persists
// across restarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rnuma/internal/harness"
	"rnuma/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is the whole daemon, injectable for the in-process test suite:
// args stand in for os.Args[1:], and when ready is non-nil the bound
// listener address is sent on it once the server accepts connections.
// Exit codes: 0 clean shutdown, 1 runtime error, 2 usage.
func run(args []string, stderr io.Writer, ready chan<- net.Addr) int {
	fs := flag.NewFlagSet("rnuma-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7415", "listen address")
	scale := fs.Float64("scale", 1.0, "workload scale (iteration multiplier)")
	seed := fs.Int64("seed", 0, "workload RNG seed")
	workers := fs.Int("workers", 0, "simulation fan-out per job (0 = GOMAXPROCS)")
	jobs := fs.Int("jobs", 2, "jobs executing concurrently")
	storeDir := fs.String("store-dir", "", "persist results to this directory (empty = in-memory only)")
	traces := fs.String("traces", "", "comma-separated trace files to preload as artifacts")
	verbose := fs.Bool("v", false, "log server events to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var store harness.Store
	if *storeDir != "" {
		ds, err := harness.NewDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "rnuma-serve: %v\n", err)
			return 1
		}
		store = ds
	}
	opts := serve.Options{
		Scale:   *scale,
		Seed:    *seed,
		Workers: *workers,
		MaxJobs: *jobs,
		Store:   store,
	}
	if *verbose {
		opts.Log = stderr
	}
	s := serve.New(opts)

	for _, path := range strings.Split(*traces, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "rnuma-serve: %v\n", err)
			return 1
		}
		a, _, err := s.AddArtifact(serve.KindTrace, data)
		if err != nil {
			fmt.Fprintf(stderr, "rnuma-serve: %s: %v\n", path, err)
			return 1
		}
		fmt.Fprintf(stderr, "rnuma-serve: preloaded %s as %s (%s)\n", path, a.ID[:12], a.Name)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rnuma-serve: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: s.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "rnuma-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "rnuma-serve: %v\n", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(stderr, "rnuma-serve: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "rnuma-serve: shutdown: %v\n", err)
		return 1
	}
	return 0
}
