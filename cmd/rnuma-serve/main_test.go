package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

// writeTrace records a small catalog capture to a temp file.
func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	app, ok := workloads.ByName("fft")
	if !ok {
		t.Fatal("fft missing from catalog")
	}
	cfg := workloads.DefaultConfig()
	cfg.Scale = 0.05
	var buf bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fft.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeLifecycle drives the real daemon loop: flags, disk store,
// trace preload, listen, serve one request, SIGTERM, clean exit 0.
func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	trace := writeTrace(t, dir)
	var stderr bytes.Buffer
	ready := make(chan net.Addr, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-scale", "0.05",
			"-store-dir", filepath.Join(dir, "store"),
			"-traces", trace,
			"-v",
		}, &stderr, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited early with %d: %s", code, stderr.String())
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/api/v1/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/api/v1/artifacts", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "fft") {
		t.Errorf("preloaded trace missing from artifact list: %s", body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if !strings.Contains(stderr.String(), "preloaded") {
		t.Errorf("missing preload log: %s", stderr.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "plain.txt")
	if err := os.WriteFile(file, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"store dir is a file", []string{"-store-dir", file}, 1},
		{"missing trace", []string{"-traces", filepath.Join(dir, "nope.trace")}, 1},
		{"invalid trace", []string{"-traces", file}, 1},
		{"address in use", []string{"-addr", ln.Addr().String()}, 1},
	} {
		var stderr bytes.Buffer
		if code := run(tc.args, &stderr, nil); code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.code, stderr.String())
		}
	}
}
