// Command rnuma-sim runs one application on one simulated DSM machine and
// prints the run's statistics.
//
// Usage:
//
//	rnuma-sim -app moldyn -protocol rnuma [-bc 128] [-pc 327680] [-T 64]
//	          [-scale 1.0] [-seed 0] [-nodes 8] [-cpus 4] [-soft] [-ideal]
//	          [-record out.rntr] [-parallel N] [-v] [-cpuprofile f] [-memprofile f]
//	rnuma-sim -trace file.trace [...]   (replay a recorded trace; "-" = stdin)
//	rnuma-sim -spec file.json   [...]   (build a declarative spec workload)
//
// Protocols: ccnuma, scoma, rnuma. -ideal runs the normalization baseline
// (CC-NUMA with an infinite block cache) regardless of -protocol. With
// -trace, the machine shape (nodes, CPUs, geometry) comes from the trace
// header and -nodes/-cpus are ignored; -scale and -seed have no effect on
// recorded references.
//
// -record captures the simulated run's reference streams to a trace file
// while it executes (tracefile.Tee, one extra function call per
// reference); the normalization baseline then replays the recorded file,
// so the two runs are guaranteed to see identical references. Recording
// applies to -app and -spec workloads; replaying an existing trace with
// -trace is better served by rnuma-trace cut/cat.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/machine"
	"rnuma/internal/profiling"
	"rnuma/internal/report"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

func main() {
	var (
		appName   = flag.String("app", "moldyn", "application: "+strings.Join(workloads.Names(), ", "))
		tracePath = flag.String("trace", "", `replay a recorded trace file instead of -app ("-" = stdin)`)
		specPath  = flag.String("spec", "", "build a declarative workload spec file instead of -app")
		protocol  = flag.String("protocol", "rnuma", "protocol: ccnuma, scoma, rnuma")
		bc        = flag.Int("bc", -2, "block cache bytes (-1 = infinite, default per protocol)")
		pc        = flag.Int("pc", -2, "page cache bytes (default per protocol)")
		thr       = flag.Int("T", 64, "R-NUMA relocation threshold")
		scale     = flag.Float64("scale", 1.0, "workload scale (iteration multiplier)")
		seed      = flag.Int64("seed", 0, "workload RNG seed (0 = built-in fixed seeds)")
		nodes     = flag.Int("nodes", 8, "SMP nodes")
		cpus      = flag.Int("cpus", 4, "CPUs per node")
		soft      = flag.Bool("soft", false, "use SOFT costs (10-µs traps, 5-µs software shootdowns)")
		ideal     = flag.Bool("ideal", false, "run the infinite-block-cache baseline")
		record    = flag.String("record", "", "record the live run's references to this trace file (tee)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		verbose   = flag.Bool("v", false, "log progress")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	sys, err := config.SystemByName(*protocol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnuma-sim: %v\n", err)
		os.Exit(2)
	}
	if *ideal {
		sys = config.Ideal()
	}
	if *bc != -2 {
		sys.BlockCacheBytes = *bc
	}
	if *pc != -2 {
		sys.PageCacheBytes = *pc
	}
	sys.Threshold = *thr
	sys.Nodes = *nodes
	sys.CPUsPerNode = *cpus
	if *soft {
		sys.Costs = config.SoftCosts()
	}

	h := harness.New(*scale)
	h.Seed = *seed
	h.Workers = *parallel
	if *verbose {
		h.Log = os.Stderr
	}

	stop, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnuma-sim: %v\n", err)
		os.Exit(1)
	}
	if *record != "" {
		err = recordRun(sys, *appName, *specPath, *tracePath, *record, *scale, *seed)
	} else {
		err = run(h, sys, *appName, *tracePath, *specPath)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnuma-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(h *harness.Harness, sys config.System, appName, tracePath, specPath string) error {
	// Resolve the workload: a registered trace/spec source or a catalog
	// application. Sources join the harness's app namespace, so the rest
	// of the pipeline (memoized runs, normalization) is identical.
	name := appName
	var descr string
	switch {
	case tracePath != "" && specPath != "":
		return fmt.Errorf("-trace and -spec are mutually exclusive")
	case tracePath != "":
		path, cleanup, err := materialize(tracePath)
		if err != nil {
			return err
		}
		defer cleanup()
		src, err := harness.TraceFileSource(path)
		if err != nil {
			return err
		}
		// The source already decoded the file once for its content key;
		// its header carries the recorded machine shape.
		hdr := src.(interface{ Header() tracefile.Header }).Header()
		if hdr.CPUs%hdr.Nodes != 0 {
			return fmt.Errorf("trace has %d CPUs on %d nodes (not evenly divided)", hdr.CPUs, hdr.Nodes)
		}
		if err := h.Register(src); err != nil {
			return err
		}
		name = src.Name()
		// The machine must match the recorded shape; the system flags
		// still pick the protocol and cache sizes.
		sys.Geometry = hdr.Geometry
		sys.Nodes = hdr.Nodes
		sys.CPUsPerNode = hdr.CPUs / hdr.Nodes
		descr = fmt.Sprintf("recorded trace %s", tracePath)
	case specPath != "":
		src, err := harness.SpecFileSource(specPath)
		if err != nil {
			return err
		}
		if err := h.Register(src); err != nil {
			return err
		}
		name = src.Name()
		descr = fmt.Sprintf("spec %s", specPath)
	default:
		app, ok := workloads.ByName(name)
		if !ok {
			return fmt.Errorf("unknown application %q", name)
		}
		descr = app.PaperInput
	}
	if err := sys.Validate(); err != nil {
		return err
	}

	// The requested run and its normalization baseline are independent:
	// fan them out together before assembling the report.
	idealSys := config.Ideal()
	idealSys.Geometry = sys.Geometry
	idealSys.Nodes = sys.Nodes
	idealSys.CPUsPerNode = sys.CPUsPerNode
	h.Prefetch(harness.NewPlan().Add(
		harness.NewJob(name, sys),
		harness.NewJob(name, idealSys)))
	run, err := h.Run(name, sys)
	if err != nil {
		return err
	}
	fmt.Printf("application: %s (%s)\n", name, descr)
	fmt.Printf("system: %s, %dx%d CPUs\n", sys.Name, sys.Nodes, sys.CPUsPerNode)
	report.RunSummary(os.Stdout, sys.Name, run)

	base, err := h.Run(name, idealSys)
	if err == nil && base.ExecCycles > 0 {
		fmt.Printf("  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(base))
	}
	return nil
}

// recordRun simulates the workload once with its streams teed into a
// trace file as they are consumed. The run bypasses the harness memo
// cache (a recording must correspond to exactly one simulation), and the
// ideal-machine normalization replays the recorded file — the baseline
// is therefore guaranteed to see the references the recorded run saw.
func recordRun(sys config.System, appName, specPath, tracePath, out string, scale float64, seed int64) error {
	if tracePath != "" {
		return fmt.Errorf("-record re-encodes a replay; slice existing traces with rnuma-trace cut/cat instead")
	}
	// Validate before building: workload construction panics on malformed
	// shapes (it treats them as programmer error), the CLI must not.
	if err := sys.Validate(); err != nil {
		return err
	}
	cfg := workloads.Config{
		Nodes:       sys.Nodes,
		CPUsPerNode: sys.CPUsPerNode,
		Geometry:    sys.Geometry,
		Scale:       scale,
		Seed:        seed,
	}
	var (
		w     *workloads.Workload
		descr string
		err   error
	)
	if specPath != "" {
		src, serr := harness.SpecFileSource(specPath)
		if serr != nil {
			return serr
		}
		if w, err = src.Load(cfg); err != nil {
			return err
		}
		descr = fmt.Sprintf("spec %s", specPath)
	} else {
		app, ok := workloads.ByName(appName)
		if !ok {
			return fmt.Errorf("unknown application %q", appName)
		}
		w = app.Build(cfg)
		descr = app.PaperInput
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := tracefile.NewWriter(f, tracefile.WorkloadHeader(w, cfg))
	if err != nil {
		return err
	}
	m, err := machine.New(sys, machine.WithHomes(w.Homes), machine.WithPages(w.SharedPages))
	if err != nil {
		return err
	}
	run, err := m.Run(tracefile.Tee(tw, w.Streams))
	if err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("application: %s (%s)\n", w.Name, descr)
	fmt.Printf("system: %s, %dx%d CPUs\n", sys.Name, sys.Nodes, sys.CPUsPerNode)
	report.RunSummary(os.Stdout, sys.Name, run)
	fmt.Printf("  recorded:              %d refs, %d bytes to %s (%.2f bytes/ref)\n",
		tw.Refs(), tw.Bytes(), out, float64(tw.Bytes())/float64(tw.Refs()))

	// Normalize against the ideal machine by replaying the recording.
	rf, err := os.Open(out)
	if err != nil {
		return err
	}
	defer rf.Close()
	d, err := tracefile.NewReader(rf)
	if err != nil {
		return err
	}
	idealSys := config.Ideal()
	idealSys.Geometry = sys.Geometry
	idealSys.Nodes = sys.Nodes
	idealSys.CPUsPerNode = sys.CPUsPerNode
	im, err := machine.New(idealSys, machine.WithHomes(w.Homes), machine.WithPages(w.SharedPages))
	if err != nil {
		return err
	}
	base, err := im.Run(d.Streams())
	if err != nil {
		return err
	}
	if err := d.Err(); err != nil {
		return err
	}
	if base.ExecCycles > 0 {
		fmt.Printf("  normalized exec time:  %.3f (vs infinite block cache, replayed from the recording)\n", run.Normalized(base))
	}
	return nil
}

// materialize resolves a trace argument to a real file path: "-" spools
// stdin to a temp file (the harness source re-opens its file once per
// simulated system, and stdin cannot rewind).
func materialize(path string) (string, func(), error) {
	if path != "-" {
		return path, func() {}, nil
	}
	tmp, err := os.CreateTemp("", "rnuma-trace-*.trace")
	if err != nil {
		return "", nil, err
	}
	if _, err := io.Copy(tmp, os.Stdin); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", nil, err
	}
	return tmp.Name(), func() { os.Remove(tmp.Name()) }, nil
}
