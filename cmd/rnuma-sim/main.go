// Command rnuma-sim runs one application on one simulated DSM machine and
// prints the run's statistics.
//
// Usage:
//
//	rnuma-sim -app moldyn -protocol rnuma [-bc 128] [-pc 327680] [-T 64]
//	          [-scale 1.0] [-seed 0] [-nodes 8] [-cpus 4] [-soft] [-ideal]
//	          [-parallel N] [-v]
//	rnuma-sim -trace file.trace [...]   (replay a recorded trace; "-" = stdin)
//	rnuma-sim -spec file.json   [...]   (build a declarative spec workload)
//
// Protocols: ccnuma, scoma, rnuma. -ideal runs the normalization baseline
// (CC-NUMA with an infinite block cache) regardless of -protocol. With
// -trace, the machine shape (nodes, CPUs, geometry) comes from the trace
// header and -nodes/-cpus are ignored; -scale and -seed have no effect on
// recorded references.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/report"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

func main() {
	var (
		appName   = flag.String("app", "moldyn", "application: "+strings.Join(workloads.Names(), ", "))
		tracePath = flag.String("trace", "", `replay a recorded trace file instead of -app ("-" = stdin)`)
		specPath  = flag.String("spec", "", "build a declarative workload spec file instead of -app")
		protocol  = flag.String("protocol", "rnuma", "protocol: ccnuma, scoma, rnuma")
		bc        = flag.Int("bc", -2, "block cache bytes (-1 = infinite, default per protocol)")
		pc        = flag.Int("pc", -2, "page cache bytes (default per protocol)")
		thr       = flag.Int("T", 64, "R-NUMA relocation threshold")
		scale     = flag.Float64("scale", 1.0, "workload scale (iteration multiplier)")
		seed      = flag.Int64("seed", 0, "workload RNG seed (0 = built-in fixed seeds)")
		nodes     = flag.Int("nodes", 8, "SMP nodes")
		cpus      = flag.Int("cpus", 4, "CPUs per node")
		soft      = flag.Bool("soft", false, "use SOFT costs (10-µs traps, 5-µs software shootdowns)")
		ideal     = flag.Bool("ideal", false, "run the infinite-block-cache baseline")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		verbose   = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	var sys config.System
	switch strings.ToLower(*protocol) {
	case "ccnuma", "cc-numa", "cc":
		sys = config.Base(config.CCNUMA)
	case "scoma", "s-coma", "sc":
		sys = config.Base(config.SCOMA)
	case "rnuma", "r-numa", "r":
		sys = config.Base(config.RNUMA)
	default:
		fmt.Fprintf(os.Stderr, "rnuma-sim: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	if *ideal {
		sys = config.Ideal()
	}
	if *bc != -2 {
		sys.BlockCacheBytes = *bc
	}
	if *pc != -2 {
		sys.PageCacheBytes = *pc
	}
	sys.Threshold = *thr
	sys.Nodes = *nodes
	sys.CPUsPerNode = *cpus
	if *soft {
		sys.Costs = config.SoftCosts()
	}

	h := harness.New(*scale)
	h.Seed = *seed
	h.Workers = *parallel
	if *verbose {
		h.Log = os.Stderr
	}

	if err := run(h, sys, *appName, *tracePath, *specPath); err != nil {
		fmt.Fprintf(os.Stderr, "rnuma-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(h *harness.Harness, sys config.System, appName, tracePath, specPath string) error {
	// Resolve the workload: a registered trace/spec source or a catalog
	// application. Sources join the harness's app namespace, so the rest
	// of the pipeline (memoized runs, normalization) is identical.
	name := appName
	var descr string
	switch {
	case tracePath != "" && specPath != "":
		return fmt.Errorf("-trace and -spec are mutually exclusive")
	case tracePath != "":
		path, cleanup, err := materialize(tracePath)
		if err != nil {
			return err
		}
		defer cleanup()
		hdr, err := readHeader(path)
		if err != nil {
			return err
		}
		if hdr.CPUs%hdr.Nodes != 0 {
			return fmt.Errorf("trace has %d CPUs on %d nodes (not evenly divided)", hdr.CPUs, hdr.Nodes)
		}
		src, err := harness.TraceFileSource(path)
		if err != nil {
			return err
		}
		if err := h.Register(src); err != nil {
			return err
		}
		name = src.Name()
		// The machine must match the recorded shape; the system flags
		// still pick the protocol and cache sizes.
		sys.Geometry = hdr.Geometry
		sys.Nodes = hdr.Nodes
		sys.CPUsPerNode = hdr.CPUs / hdr.Nodes
		descr = fmt.Sprintf("recorded trace %s", tracePath)
	case specPath != "":
		src, err := harness.SpecFileSource(specPath)
		if err != nil {
			return err
		}
		if err := h.Register(src); err != nil {
			return err
		}
		name = src.Name()
		descr = fmt.Sprintf("spec %s", specPath)
	default:
		app, ok := workloads.ByName(name)
		if !ok {
			return fmt.Errorf("unknown application %q", name)
		}
		descr = app.PaperInput
	}
	if err := sys.Validate(); err != nil {
		return err
	}

	// The requested run and its normalization baseline are independent:
	// fan them out together before assembling the report.
	idealSys := config.Ideal()
	idealSys.Geometry = sys.Geometry
	idealSys.Nodes = sys.Nodes
	idealSys.CPUsPerNode = sys.CPUsPerNode
	h.Prefetch(harness.NewPlan().Add(
		harness.NewJob(name, sys),
		harness.NewJob(name, idealSys)))
	run, err := h.Run(name, sys)
	if err != nil {
		return err
	}
	fmt.Printf("application: %s (%s)\n", name, descr)
	fmt.Printf("system: %s, %dx%d CPUs\n", sys.Name, sys.Nodes, sys.CPUsPerNode)
	report.RunSummary(os.Stdout, sys.Name, run)

	base, err := h.Run(name, idealSys)
	if err == nil && base.ExecCycles > 0 {
		fmt.Printf("  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(base))
	}
	return nil
}

// materialize resolves a trace argument to a real file path: "-" spools
// stdin to a temp file (the harness source re-opens its file once per
// simulated system, and stdin cannot rewind).
func materialize(path string) (string, func(), error) {
	if path != "-" {
		return path, func() {}, nil
	}
	tmp, err := os.CreateTemp("", "rnuma-trace-*.trace")
	if err != nil {
		return "", nil, err
	}
	if _, err := io.Copy(tmp, os.Stdin); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", nil, err
	}
	return tmp.Name(), func() { os.Remove(tmp.Name()) }, nil
}

// readHeader parses just the trace header (for the machine shape).
func readHeader(path string) (tracefile.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return tracefile.Header{}, err
	}
	defer f.Close()
	d, err := tracefile.NewReader(f)
	if err != nil {
		return tracefile.Header{}, fmt.Errorf("%s: %w", path, err)
	}
	return d.Header(), nil
}
