// Command rnuma-sim runs one application on one simulated DSM machine and
// prints the run's statistics.
//
// Usage:
//
//	rnuma-sim -app moldyn -protocol rnuma [-bc 128] [-pc 327680] [-T 64]
//	          [-scale 1.0] [-nodes 8] [-cpus 4] [-soft] [-ideal]
//	          [-parallel N] [-v]
//
// Protocols: ccnuma, scoma, rnuma. -ideal runs the normalization baseline
// (CC-NUMA with an infinite block cache) regardless of -protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/report"
	"rnuma/internal/workloads"
)

func main() {
	var (
		appName  = flag.String("app", "moldyn", "application: "+strings.Join(workloads.Names(), ", "))
		protocol = flag.String("protocol", "rnuma", "protocol: ccnuma, scoma, rnuma")
		bc       = flag.Int("bc", -2, "block cache bytes (-1 = infinite, default per protocol)")
		pc       = flag.Int("pc", -2, "page cache bytes (default per protocol)")
		thr      = flag.Int("T", 64, "R-NUMA relocation threshold")
		scale    = flag.Float64("scale", 1.0, "workload scale (iteration multiplier)")
		nodes    = flag.Int("nodes", 8, "SMP nodes")
		cpus     = flag.Int("cpus", 4, "CPUs per node")
		soft     = flag.Bool("soft", false, "use SOFT costs (10-µs traps, 5-µs software shootdowns)")
		ideal    = flag.Bool("ideal", false, "run the infinite-block-cache baseline")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		verbose  = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	var sys config.System
	switch strings.ToLower(*protocol) {
	case "ccnuma", "cc-numa", "cc":
		sys = config.Base(config.CCNUMA)
	case "scoma", "s-coma", "sc":
		sys = config.Base(config.SCOMA)
	case "rnuma", "r-numa", "r":
		sys = config.Base(config.RNUMA)
	default:
		fmt.Fprintf(os.Stderr, "rnuma-sim: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	if *ideal {
		sys = config.Ideal()
	}
	if *bc != -2 {
		sys.BlockCacheBytes = *bc
	}
	if *pc != -2 {
		sys.PageCacheBytes = *pc
	}
	sys.Threshold = *thr
	sys.Nodes = *nodes
	sys.CPUsPerNode = *cpus
	if *soft {
		sys.Costs = config.SoftCosts()
	}
	if err := sys.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rnuma-sim: %v\n", err)
		os.Exit(2)
	}

	h := harness.New(*scale)
	h.Workers = *parallel
	if *verbose {
		h.Log = os.Stderr
	}
	// The requested run and its normalization baseline are independent:
	// fan them out together before assembling the report.
	h.Prefetch(harness.NewPlan().Add(
		harness.NewJob(*appName, sys),
		harness.NewJob(*appName, config.Ideal())))
	run, err := h.Run(*appName, sys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnuma-sim: %v\n", err)
		os.Exit(1)
	}
	app, _ := workloads.ByName(*appName)
	fmt.Printf("application: %s (%s)\n", app.Name, app.PaperInput)
	fmt.Printf("system: %s, %dx%d CPUs\n", sys.Name, sys.Nodes, sys.CPUsPerNode)
	report.RunSummary(os.Stdout, sys.Name, run)

	ideal2, err := h.Ideal(*appName)
	if err == nil && ideal2.ExecCycles > 0 {
		fmt.Printf("  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(ideal2))
	}
}
