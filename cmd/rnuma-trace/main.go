// Command rnuma-trace captures, inspects, slices, and replays
// memory-reference traces in the tracefile binary format.
//
// Usage:
//
//	rnuma-trace record -app <name>  [-o out.trace] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
//	rnuma-trace gen    -spec <file> [-o out.trace] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
//	rnuma-trace cut    <file> [-o out.trace] [-cpus 1,3] [-from N] [-to M] [-v1] [-raw]
//	rnuma-trace cat    <a> <b> ... [-o out.trace] [-v1] [-raw]
//	rnuma-trace retarget <file> [-o out.trace] [-nodes N] [-cpus N] [-pages P]
//	                  [-policy identity|roundrobin|modulo] [-map file.json] [-name S] [-v1] [-raw]
//	rnuma-trace dilate <file> [-o out.trace] [-factor N/D] [-clamp N] [-v1] [-raw]
//	rnuma-trace diff   <a> <b>
//	rnuma-trace info   <file>
//	rnuma-trace replay <file> [-protocol ccnuma|scoma|rnuma] [-bc B] [-pc P] [-T N] [-soft] [-ideal]
//
// retarget remaps a trace onto a different machine shape (nodes, CPUs,
// pages) under a page-remapping policy, so one capture becomes a scaling
// sweep; dilate rescales compute gaps by a rational factor to model
// faster or slower processors; diff compares two traces record by record
// and reports the first diverging CPU/record index plus a per-CPU
// summary (exit status 1 when they differ). All three stream, so they
// compose with cut/cat piping.
//
// record captures a built-in application's reference streams; gen does
// the same for a declarative JSON workload spec (see internal/spec). Both
// write to stdout with -o - (the default is <name>.trace), so traces pipe
// straight into `rnuma-sim -trace -`. cut slices a trace by per-CPU
// record range and/or CPU subset, preserving the recorded machine shape
// (dropped CPUs become empty streams, so cuts replay on the recorded
// machine); cat concatenates traces of identical machine shape — cutting
// a trace into range slices and catting them back recomposes it exactly. Writers emit the compressed version-2 format by
// default; -v1 selects the legacy format and -raw keeps version 2 but
// stores chunks uncompressed. info prints a trace's header and per-CPU
// record counts; replay runs one through the simulated machine of the
// recorded shape and prints the run's statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/report"
	"rnuma/internal/spec"
	"rnuma/internal/stats"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "cut":
		err = cmdCut(os.Args[2:])
	case "cat":
		err = cmdCat(os.Args[2:])
	case "retarget":
		err = cmdRetarget(os.Args[2:])
	case "dilate":
		err = cmdDilate(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rnuma-trace: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnuma-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `rnuma-trace — capture, inspect, and replay reference traces

subcommands:
  record -app <name>  [-o file] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
      capture a built-in application's streams (apps: %s)
  gen    -spec <file> [-o file] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
      build a declarative spec workload and capture its streams
  cut    <file> [-o file] [-cpus 1,3] [-from N] [-to M] [-v1] [-raw]
      slice a trace: keep a per-CPU record range and/or a CPU subset
  cat    <a> <b> ... [-o file] [-v1] [-raw]
      concatenate traces of identical machine shape
  retarget <file> [-o file] [-nodes N] [-cpus N] [-pages P] [-policy identity|roundrobin|modulo]
           [-map file.json] [-name S] [-v1] [-raw]
      remap a trace onto a different machine shape (0/omitted keeps the source value)
  dilate <file> [-o file] [-factor N/D] [-clamp N] [-v1] [-raw]
      scale every compute gap by a rational factor (model faster/slower CPUs)
  diff   <a> <b>
      compare two traces record by record; exits 1 when they differ
  info   <file>
      print a trace's header, format version, home histogram, and per-CPU record counts
  replay <file> [-protocol P] [-bc B] [-pc P] [-T N] [-soft] [-ideal] [-v]
      run a trace through the simulated machine of its recorded shape
`, strings.Join(workloads.Names(), ", "))
}

// sizingFlags are the workload-shape flags shared by record and gen.
func sizingFlags(fs *flag.FlagSet) (scale *float64, seed *int64, nodes, cpus *int, out *string) {
	scale = fs.Float64("scale", 1.0, "workload scale (iteration multiplier)")
	seed = fs.Int64("seed", 0, "workload RNG seed (0 = built-in fixed seeds)")
	nodes = fs.Int("nodes", 8, "SMP nodes")
	cpus = fs.Int("cpus", 4, "CPUs per node")
	out = fs.String("o", "", `output file ("-" = stdout; default <name>.trace)`)
	return
}

// formatFlags are the output-encoding flags shared by every writing
// subcommand; resolve them into writer options after fs.Parse.
func formatFlags(fs *flag.FlagSet) func() []tracefile.WriterOption {
	v1 := fs.Bool("v1", false, "write the legacy uncompressed version-1 format")
	raw := fs.Bool("raw", false, "write version 2 with uncompressed chunks")
	return func() []tracefile.WriterOption {
		var opts []tracefile.WriterOption
		if *v1 {
			opts = append(opts, tracefile.FormatVersion(tracefile.VersionV1))
		}
		if *raw {
			opts = append(opts, tracefile.Compression(false))
		}
		return opts
	}
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "", "application to record: "+strings.Join(workloads.Names(), ", "))
	scale, seed, nodes, cpus, out := sizingFlags(fs)
	format := formatFlags(fs)
	fs.Parse(args)
	app, ok := workloads.ByName(*appName)
	if !ok {
		return fmt.Errorf("unknown application %q", *appName)
	}
	cfg := workloads.Config{Nodes: *nodes, CPUsPerNode: *cpus, Geometry: addr.Default, Scale: *scale, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		return err
	}
	return capture(app.Build(cfg), cfg, *out, format()...)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	specPath := fs.String("spec", "", `workload spec file ("-" = stdin)`)
	scale, seed, nodes, cpus, out := sizingFlags(fs)
	format := formatFlags(fs)
	fs.Parse(args)
	if *specPath == "" {
		return fmt.Errorf("gen needs -spec <file>")
	}
	var (
		s   *spec.Spec
		err error
	)
	if *specPath == "-" {
		data, rerr := io.ReadAll(os.Stdin)
		if rerr != nil {
			return rerr
		}
		s, err = spec.Parse(data)
	} else {
		s, err = spec.Load(*specPath)
	}
	if err != nil {
		return err
	}
	cfg := workloads.Config{Nodes: *nodes, CPUsPerNode: *cpus, Geometry: addr.Default, Scale: *scale, Seed: *seed}
	w, err := s.Build(cfg)
	if err != nil {
		return err
	}
	return capture(w, cfg, *out, format()...)
}

// capture drains the workload into a trace file and reports the encoding
// stats on stderr (stdout may be the trace itself).
func capture(w *workloads.Workload, cfg workloads.Config, out string, opts ...tracefile.WriterOption) error {
	if out == "" {
		out = w.Name + ".trace"
	}
	dst, where, cleanup, err := openOut(out)
	if err != nil {
		return err
	}
	refs, bytes, err := tracefile.WriteWorkload(dst, w, cfg, opts...)
	// A close-time write failure (ENOSPC, EIO) means the trace on disk is
	// truncated; it must not report as a successful recording.
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %s: %d refs, %d pages, %d bytes to %s (%.2f bytes/ref)\n",
		w.Name, refs, w.SharedPages, bytes, where, float64(bytes)/float64(refs))
	return nil
}

// openOut resolves an output argument: a path, or "-" for stdout.
func openOut(out string) (io.Writer, string, func() error, error) {
	if out == "-" {
		return os.Stdout, "stdout", func() error { return nil }, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, "", nil, err
	}
	return f, out, f.Close, nil
}

func cmdCut(args []string) error {
	fs := flag.NewFlagSet("cut", flag.ExitOnError)
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	cpuList := fs.String("cpus", "", "comma-separated source CPU indices to keep (default all)")
	from := fs.Int64("from", 0, "first per-CPU record index to keep")
	to := fs.Int64("to", 0, "one past the last record index to keep (0 = end)")
	format := formatFlags(fs)
	target := parseWithTarget(fs, args)

	sel := tracefile.CutSpec{From: *from, To: *to}
	if *cpuList != "" {
		for _, s := range strings.Split(*cpuList, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -cpus entry %q", s)
			}
			sel.CPUs = append(sel.CPUs, c)
		}
	}
	r, name, err := openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	dst, where, cleanup, err := openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Cut(dst, r, sel, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cut %s: kept %d refs to %s\n", name, refs, where)
	return nil
}

func cmdCat(args []string) error {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	format := formatFlags(fs)
	// Accept input files on either side of the flags (cat a b -o out);
	// "-" names stdin, like every other subcommand.
	inputs := parsePositionals(fs, args)
	if len(inputs) == 0 {
		return fmt.Errorf("cat needs at least one input trace")
	}
	srcs := make([]io.Reader, 0, len(inputs))
	stdinUsed := false
	for _, path := range inputs {
		if path == "-" {
			if stdinUsed {
				return fmt.Errorf("stdin (\"-\") can appear only once")
			}
			stdinUsed = true
			srcs = append(srcs, os.Stdin)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		srcs = append(srcs, f)
	}
	dst, where, cleanup, err := openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Cat(dst, srcs, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cat %s: %d refs to %s\n", strings.Join(inputs, "+"), refs, where)
	return nil
}

func cmdRetarget(args []string) error {
	fs := flag.NewFlagSet("retarget", flag.ExitOnError)
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	nodes := fs.Int("nodes", 0, "target node count (0 = keep)")
	cpus := fs.Int("cpus", 0, "target total CPU count (0 = keep)")
	pages := fs.Int("pages", 0, "target shared page count (0 = keep)")
	policyName := fs.String("policy", "identity", "page remap policy: identity, roundrobin, modulo")
	mapPath := fs.String("map", "", "explicit remap file (JSON; overrides -policy)")
	name := fs.String("name", "", "rename the retargeted workload")
	format := formatFlags(fs)
	target := parseWithTarget(fs, args)

	var (
		policy tracefile.RemapPolicy
		err    error
	)
	if *mapPath != "" {
		data, rerr := os.ReadFile(*mapPath)
		if rerr != nil {
			return rerr
		}
		if policy, err = tracefile.MapFilePolicy(data); err != nil {
			return err
		}
	} else if policy, err = tracefile.PolicyByName(*policyName); err != nil {
		return err
	}
	spec := tracefile.RetargetSpec{Nodes: *nodes, CPUs: *cpus, Pages: *pages, Policy: policy, Name: *name}

	r, srcName, err := openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	dst, where, cleanup, err := openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Retarget(dst, r, spec, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "retarget %s (%s): %d refs to %s\n", srcName, policy.Name(), refs, where)
	return nil
}

func cmdDilate(args []string) error {
	fs := flag.NewFlagSet("dilate", flag.ExitOnError)
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	factor := fs.String("factor", "1", "gap scale factor, N or N/D (e.g. 2, 1/2, 3/2)")
	clamp := fs.Int("clamp", 0, "cap scaled gaps at this value (0 = format max 65535)")
	format := formatFlags(fs)
	target := parseWithTarget(fs, args)

	num, den, err := tracefile.ParseRatio(*factor)
	if err != nil {
		return err
	}
	r, srcName, err := openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	dst, where, cleanup, err := openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Dilate(dst, r, tracefile.DilateSpec{Num: num, Den: den, Clamp: *clamp}, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dilate %s x%d/%d: %d refs to %s\n", srcName, num, den, refs, where)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	verbose := fs.Bool("v", false, "list every CPU in the summary, not just differing ones")
	paths := parsePositionals(fs, args)
	if len(paths) != 2 {
		return fmt.Errorf("diff needs exactly two trace files")
	}
	if paths[0] == "-" && paths[1] == "-" {
		return fmt.Errorf("stdin (\"-\") can appear only once")
	}
	a, _, err := openTrace(paths[0], "")
	if err != nil {
		return err
	}
	defer a.Close()
	b, _, err := openTrace(paths[1], "")
	if err != nil {
		return err
	}
	defer b.Close()

	res, err := tracefile.Diff(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("diff %s %s\n", paths[0], paths[1])
	if res.ShapeMismatch != nil {
		fmt.Printf("  shape mismatch: %v\n", res.ShapeMismatch)
		os.Exit(1)
	}
	if res.Identical {
		fmt.Printf("  identical: %d records per side\n", res.ARecords)
		return nil
	}
	fmt.Printf("  first divergence: %s\n", res.First)
	fmt.Printf("  per-cpu summary (%d vs %d records total):\n", res.ARecords, res.BRecords)
	for _, s := range res.PerCPU {
		if s.FirstIndex < 0 && !*verbose {
			continue
		}
		status := "identical"
		if s.FirstIndex >= 0 {
			status = fmt.Sprintf("%d differ, first at %d", s.Differing, s.FirstIndex)
			if s.ARecords != s.BRecords {
				status += fmt.Sprintf(", lengths %d vs %d", s.ARecords, s.BRecords)
			}
		}
		fmt.Printf("    cpu %3d: %s\n", s.CPU, status)
	}
	os.Exit(1)
	return nil
}

// parsePositionals parses a subcommand's flags while lifting positional
// arguments that may appear on either side of (or between) the flags —
// the standard flag package stops at the first positional and would
// silently drop everything after it, including flags like -o. "-"
// (stdin/stdout) counts as a positional.
func parsePositionals(fs *flag.FlagSet, args []string) []string {
	var positionals []string
	for {
		for len(args) > 0 && (args[0] == "-" || !strings.HasPrefix(args[0], "-")) {
			positionals = append(positionals, args[0])
			args = args[1:]
		}
		if len(args) == 0 {
			return positionals
		}
		fs.Parse(args)
		args = fs.Args()
	}
}

// parseWithTarget is parsePositionals for subcommands that take exactly
// one trace argument (`replay file -protocol scoma` and `replay
// -protocol scoma file` both work); extra positionals are an error.
func parseWithTarget(fs *flag.FlagSet, args []string) string {
	positionals := parsePositionals(fs, args)
	if len(positionals) > 1 {
		fmt.Fprintf(os.Stderr, "rnuma-trace: unexpected extra arguments %v\n", positionals[1:])
		os.Exit(2)
	}
	if len(positionals) == 0 {
		return ""
	}
	return positionals[0]
}

// openTrace resolves a trace argument: a path or "-" for stdin. The
// positional form (info/replay) also accepts -trace for symmetry with
// rnuma-sim.
func openTrace(positional, tracePath string) (io.ReadCloser, string, error) {
	path := tracePath
	if path == "" {
		path = positional
	}
	if path == "" {
		return nil, "", fmt.Errorf("no trace file given")
	}
	if path == "-" {
		return io.NopCloser(os.Stdin), "stdin", nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	return f, path, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	target := parseWithTarget(fs, args)
	r, name, err := openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	d, err := tracefile.NewReader(r)
	if err != nil {
		return err
	}
	h := d.Header()
	fmt.Printf("trace: %s\n", name)
	fmt.Printf("  workload:     %s\n", h.Name)
	fmt.Printf("  format:       v%d\n", d.Version())
	fmt.Printf("  geometry:     %s\n", h.Geometry)
	fmt.Printf("  machine:      %d nodes, %d CPUs\n", h.Nodes, h.CPUs)
	fmt.Printf("  shared pages: %d (%d KB)\n", h.SharedPages, h.SharedPages*h.Geometry.PageBytes()/1024)
	// The home histogram is the first thing to sanity-check after a
	// retarget: a round-robin re-homing shows even node counts, a botched
	// one piles pages onto the low nodes.
	perNode := make([]int, h.Nodes)
	for _, n := range h.Homes {
		perNode[n]++
	}
	fmt.Printf("  home map:\n")
	for n, c := range perNode {
		pct := 0.0
		if h.SharedPages > 0 {
			pct = 100 * float64(c) / float64(h.SharedPages)
		}
		fmt.Printf("    node %2d: %6d pages (%5.1f%%)\n", n, c, pct)
	}
	counts, err := d.Drain()
	if err != nil {
		return err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("  references:   %d\n", total)
	for cpu, c := range counts {
		fmt.Printf("    cpu %2d: %d\n", cpu, c)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	protocol := fs.String("protocol", "rnuma", "protocol: ccnuma, scoma, rnuma")
	bc := fs.Int("bc", -2, "block cache bytes (-1 = infinite, default per protocol)")
	pc := fs.Int("pc", -2, "page cache bytes (default per protocol)")
	thr := fs.Int("T", 64, "R-NUMA relocation threshold")
	soft := fs.Bool("soft", false, "use SOFT costs (10-µs traps, 5-µs software shootdowns)")
	ideal := fs.Bool("ideal", false, "replay on the infinite-block-cache baseline")
	target := parseWithTarget(fs, args)

	r, name, err := openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()

	var sys config.System
	switch strings.ToLower(*protocol) {
	case "ccnuma", "cc-numa", "cc":
		sys = config.Base(config.CCNUMA)
	case "scoma", "s-coma", "sc":
		sys = config.Base(config.SCOMA)
	case "rnuma", "r-numa", "r":
		sys = config.Base(config.RNUMA)
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	if *ideal {
		sys = config.Ideal()
	}
	if *bc != -2 {
		sys.BlockCacheBytes = *bc
	}
	if *pc != -2 {
		sys.PageCacheBytes = *pc
	}
	sys.Threshold = *thr

	if *soft {
		sys.Costs = config.SoftCosts()
	}
	run, hdr, err := replayOn(r, sys)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %s (workload %s, %d nodes x %d CPUs)\n", name, hdr.Name, hdr.Nodes, hdr.CPUs/hdr.Nodes)
	report.RunSummary(os.Stdout, sys.Name, run)

	// A file (unlike stdin) can be replayed a second time for the
	// ideal-machine normalization every figure uses.
	if name != "stdin" && !*ideal {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		base, _, err := replayOn(f, config.Ideal())
		if err != nil {
			return err
		}
		if base.ExecCycles > 0 {
			fmt.Printf("  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(base))
		}
	}
	return nil
}

// replayOn runs one trace through a machine shaped like the recording.
func replayOn(r io.Reader, sys config.System) (*stats.Run, tracefile.Header, error) {
	d, err := tracefile.NewReader(r)
	if err != nil {
		return nil, tracefile.Header{}, err
	}
	h := d.Header()
	if h.CPUs%h.Nodes != 0 {
		return nil, h, fmt.Errorf("trace has %d CPUs on %d nodes (not evenly divided)", h.CPUs, h.Nodes)
	}
	sys.Geometry = h.Geometry
	sys.Nodes = h.Nodes
	sys.CPUsPerNode = h.CPUs / h.Nodes
	if err := sys.Validate(); err != nil {
		return nil, h, err
	}
	m, err := machine.New(sys, machine.WithHomes(h.HomeFunc()), machine.WithPages(h.SharedPages))
	if err != nil {
		return nil, h, err
	}
	run, err := m.Run(d.Streams())
	if err != nil {
		return nil, h, err
	}
	if err := d.Err(); err != nil {
		return nil, h, err
	}
	return run, h, nil
}
