// Command rnuma-trace captures, inspects, slices, and replays
// memory-reference traces in the tracefile binary format.
//
// Usage:
//
//	rnuma-trace record -app <name>  [-o out.trace] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
//	rnuma-trace gen    -spec <file> [-o out.trace] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
//	rnuma-trace gen    -traffic <file> [same sizing/format flags]
//	rnuma-trace cut    <file> [-o out.trace] [-cpus 1,3] [-from N] [-to M] [-v1] [-raw]
//	rnuma-trace cat    <a> <b> ... [-o out.trace] [-v1] [-raw]
//	rnuma-trace retarget <file> [-o out.trace] [-nodes N] [-cpus N] [-pages P]
//	                  [-policy identity|roundrobin|modulo] [-cpu-fold modulo|interleave]
//	                  [-map file.json] [-name S] [-v1] [-raw]
//	rnuma-trace retarget-geometry <file> [-o out.trace] [-block N] [-page N] [-name S] [-v1] [-raw]
//	rnuma-trace dilate <file> [-o out.trace] [-factor N/D] [-clamp N] [-name S] [-v1] [-raw]
//	rnuma-trace diff   <a> <b>
//	rnuma-trace diffstats <a> <b> [-protocol ccnuma|scoma|rnuma] [-bc B] [-pc P] [-T N] [-soft] [-ideal] [-v]
//	rnuma-trace info   <file>
//	rnuma-trace replay <file> [-protocol ccnuma|scoma|rnuma] [-bc B] [-pc P] [-T N] [-soft] [-ideal]
//	                  [-window N] [-timeline out.json] [-events out.json] [-cpuprofile f] [-memprofile f]
//	rnuma-trace replay -traffic <file> [-scale S] [-seed N] [-nodes N] [-cpus N] [same system/telemetry flags]
//	rnuma-trace snapshot <file> -refs N [-o snap.rnss] [-window N] [-protocol P] [-bc B] [-pc P] [-T N] [-soft] [-ideal]
//	rnuma-trace resume <file> -snap snap.rnss [-T N] [-timeline out.json] [-events out.json]
//
// snapshot replays a trace up to a reference count, then serializes the
// paused machine's complete state to a checkpoint file; resume restores
// a checkpoint, seeks the trace's streams past the consumed prefix
// (without re-decoding it), and finishes the run — optionally under a
// different R-NUMA relocation threshold, which is sound whenever the
// checkpoint predates the first threshold crossing (the fork primitive
// behind cheap threshold sweeps).
//
// retarget remaps a trace onto a different machine shape (nodes, CPUs,
// pages) under a page-remapping policy, so one capture becomes a scaling
// sweep; retarget-geometry re-splits every address onto a different
// block/page geometry for granularity studies; dilate rescales compute
// gaps by a rational factor to model faster or slower processors; diff
// compares two traces record by record and reports the first diverging
// CPU/record index plus a per-CPU summary (exit status 1 when they
// differ); diffstats replays two traces under the same system
// configuration and prints the per-counter stats delta table (exit
// status 1 when the runs differ) — the one-command regression check. All
// transforms stream, so they compose with cut/cat piping.
//
// record captures a built-in application's reference streams; gen does
// the same for a declarative JSON workload spec (see internal/spec), or —
// with -traffic — for a multi-tenant traffic scenario (see
// internal/traffic), whose clients' streams it interleaves by arrival
// time into one ordinary trace. replay -traffic compiles and runs a
// scenario directly, keeping the per-client attribution the encoded
// trace cannot carry: the report gains a per-client counter table and
// per-client timeline sparklines. Both
// write to stdout with -o - (the default is <name>.trace), so traces pipe
// straight into `rnuma-sim -trace -`. cut slices a trace by per-CPU
// record range and/or CPU subset, preserving the recorded machine shape
// (dropped CPUs become empty streams, so cuts replay on the recorded
// machine); cat concatenates traces of identical machine shape — cutting
// a trace into range slices and catting them back recomposes it exactly.
// Writers emit the compressed version-2 format by default; -v1 selects
// the legacy format and -raw keeps version 2 but stores chunks
// uncompressed. info prints a trace's header and per-CPU record counts;
// replay runs one through the simulated machine of the recorded shape
// and prints the run's statistics.
//
// Exit status: 0 on success, 1 on errors (and on diff/diffstats
// difference), 2 on usage errors.
//
// replay's telemetry flags drive the sampling probe: -window N closes an
// interval every N references and prints the timeline report; -timeline
// and -events export the interval series and the relocation event log as
// JSON (either defaults the window to 64Ki when -window is omitted).
// snapshot -window checkpoints a probed replay — the checkpoint carries
// the probe's cursor, so resume continues the interval series
// bit-identically, even from a mid-window pause. diffstats -tol P loosens
// the exact-match gate into a band: timing counters (cycle totals) may
// drift within ±P percent (warned, exit 0), while any structural counter
// or refetch-distribution change still exits 1. -cpuprofile/-memprofile
// write pprof profiles covering the replay itself.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/machine"
	"rnuma/internal/profiling"
	"rnuma/internal/report"
	"rnuma/internal/spec"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
	"rnuma/internal/tracefile/snapfile"
	"rnuma/internal/traffic"
	"rnuma/internal/workloads"
)

// cli carries the process's streams so the whole command is drivable
// in-process by tests: run() is main() minus os.Exit.
type cli struct {
	stdin          io.Reader
	stdout, stderr io.Writer
}

// errDiffer marks a successful comparison whose inputs differ: diff and
// diffstats report through their table output and exit 1 without an
// error message.
var errDiffer = errors.New("inputs differ")

// errUsage marks a bad invocation (exit 2); the message, if any, has
// already been printed.
var errUsage = errors.New("usage")

func main() {
	os.Exit(run(cli{stdin: os.Stdin, stdout: os.Stdout, stderr: os.Stderr}, os.Args[1:]))
}

// run dispatches one invocation and returns the process exit code.
func run(c cli, args []string) int {
	if len(args) < 1 {
		c.usage()
		return 2
	}
	var err error
	switch args[0] {
	case "record":
		err = c.cmdRecord(args[1:])
	case "gen":
		err = c.cmdGen(args[1:])
	case "cut":
		err = c.cmdCut(args[1:])
	case "cat":
		err = c.cmdCat(args[1:])
	case "retarget":
		err = c.cmdRetarget(args[1:])
	case "retarget-geometry":
		err = c.cmdRetargetGeometry(args[1:])
	case "dilate":
		err = c.cmdDilate(args[1:])
	case "diff":
		err = c.cmdDiff(args[1:])
	case "diffstats":
		err = c.cmdDiffStats(args[1:])
	case "info":
		err = c.cmdInfo(args[1:])
	case "replay":
		err = c.cmdReplay(args[1:])
	case "snapshot":
		err = c.cmdSnapshot(args[1:])
	case "resume":
		err = c.cmdResume(args[1:])
	case "-h", "-help", "--help", "help":
		c.usage()
		return 0
	default:
		fmt.Fprintf(c.stderr, "rnuma-trace: unknown subcommand %q\n\n", args[0])
		c.usage()
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errDiffer):
		return 1
	case errors.Is(err, errUsage):
		return 2
	default:
		fmt.Fprintf(c.stderr, "rnuma-trace: %v\n", err)
		return 1
	}
}

func (c cli) usage() {
	fmt.Fprintf(c.stderr, `rnuma-trace — capture, inspect, and replay reference traces

subcommands:
  record -app <name>  [-o file] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
      capture a built-in application's streams (apps: %s)
  gen    -spec <file> [-o file] [-scale S] [-seed N] [-nodes N] [-cpus N] [-v1] [-raw]
      build a declarative spec workload and capture its streams
  gen    -traffic <file> [same sizing/format flags]
      compile a multi-tenant traffic scenario into one merged trace
  cut    <file> [-o file] [-cpus 1,3] [-from N] [-to M] [-v1] [-raw]
      slice a trace: keep a per-CPU record range and/or a CPU subset
  cat    <a> <b> ... [-o file] [-v1] [-raw]
      concatenate traces of identical machine shape
  retarget <file> [-o file] [-nodes N] [-cpus N] [-pages P] [-policy identity|roundrobin|modulo]
           [-cpu-fold modulo|interleave] [-map file.json] [-name S] [-v1] [-raw]
      remap a trace onto a different machine shape (0/omitted keeps the source value)
  retarget-geometry <file> [-o file] [-block N] [-page N] [-name S] [-v1] [-raw]
      re-split every address onto a different block/page geometry (bytes; 0 keeps)
  dilate <file> [-o file] [-factor N/D] [-clamp N] [-name S] [-v1] [-raw]
      scale every compute gap by a rational factor (model faster/slower CPUs)
  diff   <a> <b>
      compare two traces record by record; exits 1 when they differ
  diffstats <a> <b> [-protocol P] [-bc B] [-pc P] [-T N] [-soft] [-ideal] [-v] [-tol P]
      replay both traces under one system and print the per-counter delta
      table; exits 1 when the runs differ (-tol P tolerates timing-counter
      drift within ±P percent, structural changes still fail)
  info   <file>
      print a trace's header, format version, home histogram, and per-CPU record counts
  replay <file> [-protocol P] [-bc B] [-pc P] [-T N] [-soft] [-ideal]
         [-window N] [-timeline f.json] [-events f.json] [-cpuprofile f] [-memprofile f]
      run a trace through the simulated machine of its recorded shape;
      -window samples telemetry every N refs, -timeline/-events export it
  replay -traffic <file> [-scale S] [-seed N] [-nodes N] [-cpus N] [system/telemetry flags]
      compile and run a traffic scenario with per-client attribution
      (adds the per-client counter table and timeline sparklines)
  snapshot <file> -refs N [-o snap.rnss] [-window N] [-protocol P] [-bc B] [-pc P] [-T N] [-soft] [-ideal]
      replay a trace up to N references and checkpoint the paused machine
      (-window checkpoints a telemetry probe along with it)
  resume <file> -snap snap.rnss [-T N] [-timeline f.json] [-events f.json]
      restore a checkpoint and finish the run (optionally at a new threshold)
`, strings.Join(workloads.Names(), ", "))
}

// flagSet builds a subcommand flag set that reports parse errors through
// the cli's stderr and returns them (never os.Exit).
func (c cli) flagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	return fs
}

// sizingFlags are the workload-shape flags shared by record and gen.
func sizingFlags(fs *flag.FlagSet) (scale *float64, seed *int64, nodes, cpus *int, out *string) {
	scale = fs.Float64("scale", 1.0, "workload scale (iteration multiplier)")
	seed = fs.Int64("seed", 0, "workload RNG seed (0 = built-in fixed seeds)")
	nodes = fs.Int("nodes", 8, "SMP nodes")
	cpus = fs.Int("cpus", 4, "CPUs per node")
	out = fs.String("o", "", `output file ("-" = stdout; default <name>.trace)`)
	return
}

// formatFlags are the output-encoding flags shared by every writing
// subcommand; resolve them into writer options after fs.Parse.
func formatFlags(fs *flag.FlagSet) func() []tracefile.WriterOption {
	v1 := fs.Bool("v1", false, "write the legacy uncompressed version-1 format")
	raw := fs.Bool("raw", false, "write version 2 with uncompressed chunks")
	return func() []tracefile.WriterOption {
		var opts []tracefile.WriterOption
		if *v1 {
			opts = append(opts, tracefile.FormatVersion(tracefile.VersionV1))
		}
		if *raw {
			opts = append(opts, tracefile.Compression(false))
		}
		return opts
	}
}

// systemFlags are the machine-configuration flags shared by replay and
// diffstats; resolve them into a config.System after fs.Parse.
func systemFlags(fs *flag.FlagSet) func() (config.System, error) {
	protocol := fs.String("protocol", "rnuma", "protocol: ccnuma, scoma, rnuma")
	bc := fs.Int("bc", -2, "block cache bytes (-1 = infinite, default per protocol)")
	pc := fs.Int("pc", -2, "page cache bytes (default per protocol)")
	thr := fs.Int("T", 64, "R-NUMA relocation threshold")
	soft := fs.Bool("soft", false, "use SOFT costs (10-µs traps, 5-µs software shootdowns)")
	ideal := fs.Bool("ideal", false, "replay on the infinite-block-cache baseline")
	return func() (config.System, error) {
		sys, err := config.SystemByName(*protocol)
		if err != nil {
			return sys, err
		}
		if *ideal {
			sys = config.Ideal()
		}
		if *bc != -2 {
			sys.BlockCacheBytes = *bc
		}
		if *pc != -2 {
			sys.PageCacheBytes = *pc
		}
		sys.Threshold = *thr
		if *soft {
			sys.Costs = config.SoftCosts()
		}
		return sys, nil
	}
}

// telemetryFlags are replay's sampling-probe flags; resolve the config
// after fs.Parse. Requesting a JSON export without an explicit window
// defaults the window instead of silently exporting an empty capture.
func telemetryFlags(fs *flag.FlagSet) (cfg func() telemetry.Config, timelineOut, eventsOut *string) {
	window := fs.Int64("window", 0,
		fmt.Sprintf("telemetry window in references (0 = off; %d when -timeline/-events is given)", telemetry.DefaultWindow))
	timelineOut = fs.String("timeline", "", `write the telemetry timeline (intervals + events) as JSON ("-" = stdout)`)
	eventsOut = fs.String("events", "", `write the relocation event log as JSON ("-" = stdout)`)
	cfg = func() telemetry.Config {
		w := *window
		if w == 0 && (*timelineOut != "" || *eventsOut != "") {
			w = telemetry.DefaultWindow
		}
		return telemetry.Config{Window: w}
	}
	return
}

// exportTimeline writes the telemetry JSON artifacts: the full timeline
// (intervals + events) to timelinePath, the event log alone to
// eventsPath. Empty paths skip; "-" writes to stdout.
func (c cli) exportTimeline(timelinePath, eventsPath string, tl *telemetry.Timeline) error {
	if timelinePath == "" && eventsPath == "" {
		return nil
	}
	if tl == nil {
		return fmt.Errorf("no telemetry captured (probe disabled)")
	}
	if err := c.writeJSON(timelinePath, tl); err != nil {
		return err
	}
	if eventsPath == "" {
		return nil
	}
	events := tl.Events
	if events == nil {
		events = []telemetry.Event{} // a run with no crossings exports [], not null
	}
	return c.writeJSON(eventsPath, struct {
		Window int64             `json:"window"`
		Nodes  int               `json:"nodes"`
		Events []telemetry.Event `json:"events"`
	}{tl.Window, tl.Nodes, events})
}

// writeJSON marshals v (indented) to path; "" skips, "-" means stdout.
func (c cli) writeJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = c.stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func (c cli) cmdRecord(args []string) error {
	fs := c.flagSet("record")
	appName := fs.String("app", "", "application to record: "+strings.Join(workloads.Names(), ", "))
	scale, seed, nodes, cpus, out := sizingFlags(fs)
	format := formatFlags(fs)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	app, ok := workloads.ByName(*appName)
	if !ok {
		return fmt.Errorf("unknown application %q", *appName)
	}
	cfg := workloads.Config{Nodes: *nodes, CPUsPerNode: *cpus, Geometry: addr.Default, Scale: *scale, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		return err
	}
	return c.capture(app.Build(cfg), cfg, *out, format()...)
}

func (c cli) cmdGen(args []string) error {
	fs := c.flagSet("gen")
	specPath := fs.String("spec", "", `workload spec file ("-" = stdin)`)
	trafficPath := fs.String("traffic", "", "traffic scenario file: compile its multi-tenant mix instead of a single spec")
	scale, seed, nodes, cpus, out := sizingFlags(fs)
	format := formatFlags(fs)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if (*specPath == "") == (*trafficPath == "") {
		return fmt.Errorf("gen needs exactly one of -spec <file> or -traffic <file>")
	}
	if *trafficPath != "" {
		cfg := workloads.Config{Nodes: *nodes, CPUsPerNode: *cpus, Geometry: addr.Default, Scale: *scale, Seed: *seed}
		sc, err := loadTraffic(*trafficPath, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(c.stderr, "traffic %s: %d clients (%s)\n", sc.Name, len(sc.Clients), strings.Join(sc.Clients, ", "))
		return c.capture(sc.Workload(), cfg, *out, format()...)
	}
	var (
		s   *spec.Spec
		err error
	)
	if *specPath == "-" {
		data, rerr := io.ReadAll(c.stdin)
		if rerr != nil {
			return rerr
		}
		s, err = spec.Parse(data)
	} else {
		s, err = spec.Load(*specPath)
	}
	if err != nil {
		return err
	}
	cfg := workloads.Config{Nodes: *nodes, CPUsPerNode: *cpus, Geometry: addr.Default, Scale: *scale, Seed: *seed}
	w, err := s.Build(cfg)
	if err != nil {
		return err
	}
	return c.capture(w, cfg, *out, format()...)
}

// loadTraffic compiles a traffic scenario file for a machine shape; phase
// paths resolve against the scenario file's directory.
func loadTraffic(path string, cfg workloads.Config) (*traffic.Scenario, error) {
	s, err := traffic.Load(path)
	if err != nil {
		return nil, err
	}
	return traffic.Compile(s, cfg, filepath.Dir(path))
}

// capture drains the workload into a trace file and reports the encoding
// stats on stderr (stdout may be the trace itself).
func (c cli) capture(w *workloads.Workload, cfg workloads.Config, out string, opts ...tracefile.WriterOption) error {
	if out == "" {
		out = w.Name + ".trace"
	}
	dst, where, cleanup, err := c.openOut(out)
	if err != nil {
		return err
	}
	refs, bytes, err := tracefile.WriteWorkload(dst, w, cfg, opts...)
	// A close-time write failure (ENOSPC, EIO) means the trace on disk is
	// truncated; it must not report as a successful recording.
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stderr, "recorded %s: %d refs, %d pages, %d bytes to %s (%.2f bytes/ref)\n",
		w.Name, refs, w.SharedPages, bytes, where, float64(bytes)/float64(refs))
	return nil
}

// openOut resolves an output argument: a path, or "-" for stdout.
func (c cli) openOut(out string) (io.Writer, string, func() error, error) {
	if out == "-" {
		return c.stdout, "stdout", func() error { return nil }, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, "", nil, err
	}
	return f, out, f.Close, nil
}

func (c cli) cmdCut(args []string) error {
	fs := c.flagSet("cut")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	cpuList := fs.String("cpus", "", "comma-separated source CPU indices to keep (default all)")
	from := fs.Int64("from", 0, "first per-CPU record index to keep")
	to := fs.Int64("to", 0, "one past the last record index to keep (0 = end)")
	format := formatFlags(fs)
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}

	sel := tracefile.CutSpec{From: *from, To: *to}
	if *cpuList != "" {
		for _, s := range strings.Split(*cpuList, ",") {
			cpu, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -cpus entry %q", s)
			}
			sel.CPUs = append(sel.CPUs, cpu)
		}
	}
	r, name, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	dst, where, cleanup, err := c.openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Cut(dst, r, sel, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stderr, "cut %s: kept %d refs to %s\n", name, refs, where)
	return nil
}

func (c cli) cmdCat(args []string) error {
	fs := c.flagSet("cat")
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	format := formatFlags(fs)
	// Accept input files on either side of the flags (cat a b -o out);
	// "-" names stdin, like every other subcommand.
	inputs, err := c.parsePositionals(fs, args)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("cat needs at least one input trace")
	}
	srcs := make([]io.Reader, 0, len(inputs))
	stdinUsed := false
	for _, path := range inputs {
		if path == "-" {
			if stdinUsed {
				return fmt.Errorf("stdin (\"-\") can appear only once")
			}
			stdinUsed = true
			srcs = append(srcs, c.stdin)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		srcs = append(srcs, f)
	}
	dst, where, cleanup, err := c.openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Cat(dst, srcs, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stderr, "cat %s: %d refs to %s\n", strings.Join(inputs, "+"), refs, where)
	return nil
}

func (c cli) cmdRetarget(args []string) error {
	fs := c.flagSet("retarget")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	nodes := fs.Int("nodes", 0, "target node count (0 = keep)")
	cpus := fs.Int("cpus", 0, "target total CPU count (0 = keep)")
	pages := fs.Int("pages", 0, "target shared page count (0 = keep)")
	policyName := fs.String("policy", "identity", "page remap policy: identity, roundrobin, modulo")
	foldName := fs.String("cpu-fold", "modulo", "cpu fold policy when shrinking: modulo, interleave")
	mapPath := fs.String("map", "", "explicit remap file (JSON; overrides -policy)")
	name := fs.String("name", "", "rename the retargeted workload")
	format := formatFlags(fs)
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}

	var policy tracefile.RemapPolicy
	if *mapPath != "" {
		data, rerr := os.ReadFile(*mapPath)
		if rerr != nil {
			return rerr
		}
		if policy, err = tracefile.MapFilePolicy(data); err != nil {
			return err
		}
	} else if policy, err = tracefile.PolicyByName(*policyName); err != nil {
		return err
	}
	fold, err := tracefile.CPUFoldByName(*foldName)
	if err != nil {
		return err
	}
	spec := tracefile.RetargetSpec{Nodes: *nodes, CPUs: *cpus, Pages: *pages, Policy: policy, CPUFold: fold, Name: *name}

	r, srcName, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	dst, where, cleanup, err := c.openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Retarget(dst, r, spec, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stderr, "retarget %s (%s): %d refs to %s\n", srcName, policy.Name(), refs, where)
	return nil
}

func (c cli) cmdRetargetGeometry(args []string) error {
	fs := c.flagSet("retarget-geometry")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	block := fs.Int("block", 0, "target block size in bytes (0 = keep)")
	page := fs.Int("page", 0, "target page size in bytes (0 = keep)")
	name := fs.String("name", "", "rename the retargeted workload")
	format := formatFlags(fs)
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}
	if *block == 0 && *page == 0 {
		return fmt.Errorf("retarget-geometry needs -block and/or -page")
	}

	r, srcName, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	dst, where, cleanup, err := c.openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.RetargetGeometry(dst, r, tracefile.GeometrySpec{
		BlockBytes: *block, PageBytes: *page, Name: *name,
	}, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stderr, "retarget-geometry %s: %d refs to %s\n", srcName, refs, where)
	return nil
}

func (c cli) cmdDilate(args []string) error {
	fs := c.flagSet("dilate")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	factor := fs.String("factor", "1", "gap scale factor, N or N/D (e.g. 2, 1/2, 3/2)")
	clamp := fs.Int("clamp", 0, "cap scaled gaps at this value (0 = format max 65535)")
	name := fs.String("name", "", "rename the dilated workload")
	format := formatFlags(fs)
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}

	num, den, err := tracefile.ParseRatio(*factor)
	if err != nil {
		return err
	}
	r, srcName, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	dst, where, cleanup, err := c.openOut(*out)
	if err != nil {
		return err
	}
	refs, err := tracefile.Dilate(dst, r, tracefile.DilateSpec{Num: num, Den: den, Clamp: *clamp, Name: *name}, format()...)
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stderr, "dilate %s x%d/%d: %d refs to %s\n", srcName, num, den, refs, where)
	return nil
}

// openPair resolves a two-trace subcommand's inputs (diff, diffstats).
func (c cli) openPair(fs *flag.FlagSet, args []string) (a, b io.ReadCloser, paths []string, err error) {
	paths, err = c.parsePositionals(fs, args)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(paths) != 2 {
		return nil, nil, nil, fmt.Errorf("%s needs exactly two trace files", fs.Name())
	}
	if paths[0] == "-" && paths[1] == "-" {
		return nil, nil, nil, fmt.Errorf("stdin (\"-\") can appear only once")
	}
	if a, _, err = c.openTrace(paths[0], ""); err != nil {
		return nil, nil, nil, err
	}
	if b, _, err = c.openTrace(paths[1], ""); err != nil {
		a.Close()
		return nil, nil, nil, err
	}
	return a, b, paths, nil
}

func (c cli) cmdDiff(args []string) error {
	fs := c.flagSet("diff")
	verbose := fs.Bool("v", false, "list every CPU in the summary, not just differing ones")
	a, b, paths, err := c.openPair(fs, args)
	if err != nil {
		return err
	}
	defer a.Close()
	defer b.Close()

	res, err := tracefile.Diff(a, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stdout, "diff %s %s\n", paths[0], paths[1])
	if res.ShapeMismatch != nil {
		fmt.Fprintf(c.stdout, "  shape mismatch: %v\n", res.ShapeMismatch)
		return errDiffer
	}
	if res.Identical {
		fmt.Fprintf(c.stdout, "  identical: %d records per side\n", res.ARecords)
		return nil
	}
	fmt.Fprintf(c.stdout, "  first divergence: %s\n", res.First)
	fmt.Fprintf(c.stdout, "  per-cpu summary (%d vs %d records total):\n", res.ARecords, res.BRecords)
	for _, s := range res.PerCPU {
		if s.FirstIndex < 0 && !*verbose {
			continue
		}
		status := "identical"
		if s.FirstIndex >= 0 {
			status = fmt.Sprintf("%d differ, first at %d", s.Differing, s.FirstIndex)
			if s.ARecords != s.BRecords {
				status += fmt.Sprintf(", lengths %d vs %d", s.ARecords, s.BRecords)
			}
		}
		fmt.Fprintf(c.stdout, "    cpu %3d: %s\n", s.CPU, status)
	}
	return errDiffer
}

// cmdDiffStats replays two traces under the same system configuration
// and prints the per-counter delta table — the "is this a regression?"
// command. The traces need not share a machine shape (each replays on
// its own recorded shape); what is compared is the resulting runs.
func (c cli) cmdDiffStats(args []string) error {
	fs := c.flagSet("diffstats")
	system := systemFlags(fs)
	verbose := fs.Bool("v", false, "list unchanged counters too")
	tol := fs.Float64("tol", 0, "tolerance band in percent on timing counters (0 = require exact match)")
	a, b, paths, err := c.openPair(fs, args)
	if err != nil {
		return err
	}
	defer a.Close()
	defer b.Close()
	// A negative band is always a mistake (it can never pass), and before
	// this guard it silently meant "exact match" — reject it loudly.
	if *tol < 0 {
		fmt.Fprintf(c.stderr, "rnuma-trace: -tol must be >= 0 percent, got %v\n", *tol)
		return errUsage
	}
	sys, err := system()
	if err != nil {
		return err
	}
	resA, err := harness.Replay(a, sys)
	if err != nil {
		return fmt.Errorf("%s: %w", paths[0], err)
	}
	resB, err := harness.Replay(b, sys)
	if err != nil {
		return fmt.Errorf("%s: %w", paths[1], err)
	}
	d := stats.Diff(resA.Run, resB.Run)
	fmt.Fprintf(c.stdout, "diffstats %s %s (%s)\n\n", paths[0], paths[1], sys.Name)
	report.DeltaTable(c.stdout, paths[0], paths[1], d, *verbose)
	if *tol > 0 {
		res := d.Tolerance(*tol)
		fmt.Fprintln(c.stdout)
		report.ToleranceSummary(c.stdout, &res)
		if !res.OK() {
			return errDiffer
		}
		return nil
	}
	if !d.Identical() {
		return errDiffer
	}
	return nil
}

// parsePositionals parses a subcommand's flags while lifting positional
// arguments that may appear on either side of (or between) the flags —
// the standard flag package stops at the first positional and would
// silently drop everything after it, including flags like -o. "-"
// (stdin/stdout) counts as a positional.
func (c cli) parsePositionals(fs *flag.FlagSet, args []string) ([]string, error) {
	var positionals []string
	for {
		for len(args) > 0 && (args[0] == "-" || !strings.HasPrefix(args[0], "-")) {
			positionals = append(positionals, args[0])
			args = args[1:]
		}
		if len(args) == 0 {
			return positionals, nil
		}
		if err := fs.Parse(args); err != nil {
			return nil, errUsage
		}
		args = fs.Args()
	}
}

// parseWithTarget is parsePositionals for subcommands that take exactly
// one trace argument (`replay file -protocol scoma` and `replay
// -protocol scoma file` both work); extra positionals are an error.
func (c cli) parseWithTarget(fs *flag.FlagSet, args []string) (string, error) {
	positionals, err := c.parsePositionals(fs, args)
	if err != nil {
		return "", err
	}
	if len(positionals) > 1 {
		fmt.Fprintf(c.stderr, "rnuma-trace: unexpected extra arguments %v\n", positionals[1:])
		return "", errUsage
	}
	if len(positionals) == 0 {
		return "", nil
	}
	return positionals[0], nil
}

// openTrace resolves a trace argument: a path or "-" for stdin. The
// positional form (info/replay) also accepts -trace for symmetry with
// rnuma-sim.
func (c cli) openTrace(positional, tracePath string) (io.ReadCloser, string, error) {
	path := tracePath
	if path == "" {
		path = positional
	}
	if path == "" {
		return nil, "", fmt.Errorf("no trace file given")
	}
	if path == "-" {
		return io.NopCloser(c.stdin), "stdin", nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	return f, path, nil
}

func (c cli) cmdInfo(args []string) error {
	fs := c.flagSet("info")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}
	r, name, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	d, err := tracefile.NewReader(r)
	if err != nil {
		return err
	}
	h := d.Header()
	fmt.Fprintf(c.stdout, "trace: %s\n", name)
	fmt.Fprintf(c.stdout, "  workload:     %s\n", h.Name)
	fmt.Fprintf(c.stdout, "  format:       v%d\n", d.Version())
	fmt.Fprintf(c.stdout, "  geometry:     %s\n", h.Geometry)
	fmt.Fprintf(c.stdout, "  machine:      %d nodes, %d CPUs\n", h.Nodes, h.CPUs)
	fmt.Fprintf(c.stdout, "  shared pages: %d (%d KB)\n", h.SharedPages, h.SharedPages*h.Geometry.PageBytes()/1024)
	// The home histogram is the first thing to sanity-check after a
	// retarget: a round-robin re-homing shows even node counts, a botched
	// one piles pages onto the low nodes.
	perNode := make([]int, h.Nodes)
	for _, n := range h.Homes {
		perNode[n]++
	}
	fmt.Fprintf(c.stdout, "  home map:\n")
	for n, cnt := range perNode {
		pct := 0.0
		if h.SharedPages > 0 {
			pct = 100 * float64(cnt) / float64(h.SharedPages)
		}
		fmt.Fprintf(c.stdout, "    node %2d: %6d pages (%5.1f%%)\n", n, cnt, pct)
	}
	counts, err := d.Drain()
	if err != nil {
		return err
	}
	var total int64
	for _, cnt := range counts {
		total += cnt
	}
	fmt.Fprintf(c.stdout, "  references:   %d\n", total)
	for cpu, cnt := range counts {
		fmt.Fprintf(c.stdout, "    cpu %2d: %d\n", cpu, cnt)
	}
	return nil
}

// cmdSnapshot replays a trace until a reference count and writes the
// paused machine's state as a checkpoint file.
func (c cli) cmdSnapshot(args []string) error {
	fs := c.flagSet("snapshot")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	out := fs.String("o", "", "checkpoint output file (default <trace>.rnss)")
	refs := fs.Int64("refs", 0, "pause after this many references (required)")
	window := fs.Int64("window", 0, "telemetry window in references (0 = off); the checkpoint carries the probe cursor")
	system := systemFlags(fs)
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}
	if *refs <= 0 {
		return fmt.Errorf("snapshot needs -refs N (> 0)")
	}
	r, name, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	sys, err := system()
	if err != nil {
		return err
	}
	d, err := tracefile.NewReader(r)
	if err != nil {
		return err
	}
	m, sys, err := harness.NewTraceMachine(d.Header(), sys,
		machine.WithTelemetry(telemetry.Config{Window: *window}))
	if err != nil {
		return err
	}
	if err := m.Start(d.Streams()); err != nil {
		return err
	}
	done, err := m.RunUntilRefs(*refs)
	if err != nil {
		return err
	}
	if err := d.Err(); err != nil {
		return err
	}
	snap, err := m.Snapshot()
	if err != nil {
		return err
	}
	dest := *out
	if dest == "" {
		if name == "stdin" {
			return fmt.Errorf("snapshot of a stdin trace needs -o <file>")
		}
		dest = name + ".rnss"
	}
	if err := snapfile.WriteFile(dest, snap); err != nil {
		return err
	}
	state := "paused"
	if done {
		state = "complete"
	}
	fmt.Fprintf(c.stderr, "snapshot %s (%s): %s at %d refs to %s\n", name, sys.Name, state, snap.Run.Refs, dest)
	return nil
}

// cmdResume restores a checkpoint, seeks the trace streams past the
// consumed prefix, and finishes the run.
func (c cli) cmdResume(args []string) error {
	fs := c.flagSet("resume")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	snapPath := fs.String("snap", "", "checkpoint file written by snapshot (required)")
	thr := fs.Int("T", 0, "override the R-NUMA relocation threshold (0 = keep the checkpoint's)")
	timelineOut := fs.String("timeline", "", `write the continued telemetry timeline as JSON ("-" = stdout)`)
	eventsOut := fs.String("events", "", `write the relocation event log as JSON ("-" = stdout)`)
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}
	if *snapPath == "" {
		return fmt.Errorf("resume needs -snap <file>")
	}
	snap, err := snapfile.ReadFile(*snapPath)
	if err != nil {
		return err
	}
	sys := snap.Sys
	if *thr > 0 {
		sys.Threshold = *thr
	}
	r, name, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	d, err := tracefile.NewReader(r)
	if err != nil {
		return err
	}
	// A probed checkpoint must resume on a probed machine (and vice
	// versa): reconstruct the telemetry configuration from the cursor the
	// checkpoint carries, so the continued series picks up mid-window.
	var tcfg telemetry.Config
	if snap.Probe != nil {
		tcfg.Window = snap.Probe.Window
	}
	m, sys, err := harness.NewTraceMachine(d.Header(), sys, machine.WithTelemetry(tcfg))
	if err != nil {
		return err
	}
	if err := m.Restore(snap); err != nil {
		return err
	}
	if err := m.ResumeWith(d.Streams()); err != nil {
		return err
	}
	run, err := m.Finish()
	if err != nil {
		return err
	}
	if err := d.Err(); err != nil {
		return err
	}
	fmt.Fprintf(c.stdout, "resume %s from %s (workload %s)\n", name, *snapPath, d.Header().Name)
	report.RunSummary(c.stdout, sys.Name, run)
	if run.Timeline != nil {
		fmt.Fprintln(c.stdout)
		report.Timeline(c.stdout, name, run.Timeline)
	}
	if err := c.exportTimeline(*timelineOut, *eventsOut, run.Timeline); err != nil {
		return err
	}

	// Match replay's output: a file trace re-replays on the ideal
	// machine for the normalization line (stdin can't be read twice).
	if name != "stdin" && sys.BlockCacheBytes != config.InfiniteBlockCache {
		base, err := harness.ReplayFile(name, config.Ideal())
		if err != nil {
			return err
		}
		if base.Run.ExecCycles > 0 {
			fmt.Fprintf(c.stdout, "  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(base.Run))
		}
	}
	return nil
}

func (c cli) cmdReplay(args []string) error {
	fs := c.flagSet("replay")
	tracePath := fs.String("trace", "", `trace file ("-" = stdin; also accepted positionally)`)
	trafficPath := fs.String("traffic", "", "traffic scenario file: compile and replay its multi-tenant mix instead of a trace")
	scale := fs.Float64("scale", 1.0, "workload scale (traffic mode only)")
	seed := fs.Int64("seed", 0, "workload RNG seed (traffic mode only)")
	nodes := fs.Int("nodes", 8, "SMP nodes (traffic mode only)")
	cpus := fs.Int("cpus", 4, "CPUs per node (traffic mode only)")
	system := systemFlags(fs)
	tcfg, timelineOut, eventsOut := telemetryFlags(fs)
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	target, err := c.parseWithTarget(fs, args)
	if err != nil {
		return err
	}
	if *trafficPath != "" {
		if target != "" || *tracePath != "" {
			return fmt.Errorf("replay takes a trace or -traffic, not both")
		}
		return c.replayTraffic(*trafficPath,
			workloads.Config{Nodes: *nodes, CPUsPerNode: *cpus, Geometry: addr.Default, Scale: *scale, Seed: *seed},
			system, tcfg, *timelineOut, *eventsOut, *cpuProfile, *memProfile)
	}

	r, name, err := c.openTrace(target, *tracePath)
	if err != nil {
		return err
	}
	defer r.Close()
	sys, err := system()
	if err != nil {
		return err
	}
	stop, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	res, err := harness.Replay(r, sys, harness.WithTelemetry(tcfg()))
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	run, hdr := res.Run, res.Header
	fmt.Fprintf(c.stdout, "trace: %s (workload %s, %d nodes x %d CPUs)\n", name, hdr.Name, hdr.Nodes, hdr.CPUs/hdr.Nodes)
	report.RunSummary(c.stdout, sys.Name, run)
	if run.Timeline != nil {
		fmt.Fprintln(c.stdout)
		report.Timeline(c.stdout, name, run.Timeline)
	}
	if err := c.exportTimeline(*timelineOut, *eventsOut, run.Timeline); err != nil {
		return err
	}

	// A file (unlike stdin) can be replayed a second time for the
	// ideal-machine normalization every figure uses.
	if name != "stdin" && sys.BlockCacheBytes != config.InfiniteBlockCache {
		base, err := harness.ReplayFile(name, config.Ideal())
		if err != nil {
			return err
		}
		if base.Run.ExecCycles > 0 {
			fmt.Fprintf(c.stdout, "  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(base.Run))
		}
	}
	return nil
}

// replayTraffic compiles a traffic scenario and runs its multi-tenant mix
// through the machine, reporting the run summary, the per-client counter
// split, and (when probed) the timeline with per-client sparklines.
func (c cli) replayTraffic(path string, cfg workloads.Config,
	system func() (config.System, error), tcfg func() telemetry.Config,
	timelineOut, eventsOut, cpuProfile, memProfile string) error {
	sc, err := loadTraffic(path, cfg)
	if err != nil {
		return err
	}
	sys, err := system()
	if err != nil {
		return err
	}
	stop, err := profiling.Start(cpuProfile, memProfile)
	if err != nil {
		return err
	}
	run, err := harness.RunWorkload(sc.Workload(), sc.Cfg, sys, harness.WithTelemetry(tcfg()))
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.stdout, "traffic: %s (%d clients, %d nodes x %d CPUs)\n",
		sc.Name, len(sc.Clients), sc.Cfg.Nodes, sc.Cfg.CPUsPerNode)
	report.RunSummary(c.stdout, sys.Name, run)
	fmt.Fprintln(c.stdout)
	report.ClientTable(c.stdout, run)
	if run.Timeline != nil {
		fmt.Fprintln(c.stdout)
		report.Timeline(c.stdout, sc.Name, run.Timeline)
	}
	if err := c.exportTimeline(timelineOut, eventsOut, run.Timeline); err != nil {
		return err
	}
	if sys.BlockCacheBytes != config.InfiniteBlockCache {
		base, err := harness.RunWorkload(sc.Workload(), sc.Cfg, config.Ideal())
		if err != nil {
			return err
		}
		if base.ExecCycles > 0 {
			fmt.Fprintf(c.stdout, "  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(base))
		}
	}
	return nil
}
