package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/tracefile"
)

// runCLI drives one in-process invocation of the command, returning the
// exit code and captured stdout/stderr — the end-to-end harness for exit
// codes and stdin/stdout piping.
func runCLI(t *testing.T, stdin []byte, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(cli{stdin: bytes.NewReader(stdin), stdout: &out, stderr: &errBuf}, args)
	return code, out.String(), errBuf.String()
}

// record captures a tiny trace to an in-memory buffer via -o -.
func record(t *testing.T, args ...string) []byte {
	t.Helper()
	full := append([]string{"record", "-app", "fft", "-scale", "0.02", "-o", "-"}, args...)
	code, stdout, stderr := runCLI(t, nil, full...)
	if code != 0 {
		t.Fatalf("record exited %d: %s", code, stderr)
	}
	if len(stdout) == 0 {
		t.Fatal("record wrote no trace bytes to stdout")
	}
	return []byte(stdout)
}

func TestUsageExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no-args", nil, 2},
		{"unknown-subcommand", []string{"bogus"}, 2},
		{"help", []string{"-h"}, 0},
		{"bad-flag", []string{"info", "-nonsense"}, 2},
		{"record-unknown-app", []string{"record", "-app", "nope", "-o", "-"}, 1},
		{"info-no-file", []string{"info"}, 1},
		{"replay-extra-positionals", []string{"replay", "a.trace", "b.trace"}, 2},
		{"diff-one-file", []string{"diff", "a.trace"}, 1},
		{"diffstats-three-files", []string{"diffstats", "a", "b", "c"}, 1},
		{"diff-double-stdin", []string{"diff", "-", "-"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := runCLI(t, nil, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d", code, tc.want)
			}
		})
	}
}

// TestPipedInfoAndReplay: a trace recorded to stdout pipes into info and
// replay via stdin ("-"), end to end in memory.
func TestPipedInfoAndReplay(t *testing.T) {
	data := record(t)

	code, stdout, stderr := runCLI(t, data, "info", "-")
	if code != 0 {
		t.Fatalf("info exited %d: %s", code, stderr)
	}
	for _, want := range []string{"workload:     fft", "8 nodes, 32 CPUs", "references:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("info output missing %q:\n%s", want, stdout)
		}
	}

	code, stdout, stderr = runCLI(t, data, "replay", "-", "-protocol", "ccnuma")
	if code != 0 {
		t.Fatalf("replay exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "run: CC-NUMA") {
		t.Errorf("replay output missing run summary:\n%s", stdout)
	}
}

// TestPipedCutCat: cut slices via stdin/stdout and cat recomposes; the
// recomposition diffs identical against the original (exit 0).
func TestPipedCutCat(t *testing.T) {
	data := record(t)
	dir := t.TempDir()
	orig := filepath.Join(dir, "fft.trace")
	if err := os.WriteFile(orig, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, head, stderr := runCLI(t, data, "cut", "-", "-to", "100", "-o", "-")
	if code != 0 {
		t.Fatalf("cut exited %d: %s", code, stderr)
	}
	code, tail, stderr := runCLI(t, data, "cut", "-", "-from", "100", "-o", "-")
	if code != 0 {
		t.Fatalf("cut exited %d: %s", code, stderr)
	}
	headPath := filepath.Join(dir, "head.trace")
	if err := os.WriteFile(headPath, []byte(head), 0o644); err != nil {
		t.Fatal(err)
	}
	code, recomposed, stderr := runCLI(t, []byte(tail), "cat", headPath, "-", "-o", "-")
	if code != 0 {
		t.Fatalf("cat exited %d: %s", code, stderr)
	}
	recomposedPath := filepath.Join(dir, "recomposed.trace")
	if err := os.WriteFile(recomposedPath, []byte(recomposed), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, _ := runCLI(t, nil, "diff", orig, recomposedPath)
	if code != 0 {
		t.Fatalf("diff of recomposition exited %d:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "identical") {
		t.Errorf("diff output:\n%s", stdout)
	}
}

// TestDiffExitCodes: differing traces exit 1 with a pinpointed record;
// shape mismatches exit 1 with the mismatch, not an index.
func TestDiffExitCodes(t *testing.T) {
	data := record(t)
	dir := t.TempDir()
	orig := filepath.Join(dir, "a.trace")
	if err := os.WriteFile(orig, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A dilated trace has the same records at different gaps.
	code, dilated, stderr := runCLI(t, data, "dilate", "-", "-factor", "3", "-o", "-")
	if code != 0 {
		t.Fatalf("dilate exited %d: %s", code, stderr)
	}
	dilPath := filepath.Join(dir, "x3.trace")
	if err := os.WriteFile(dilPath, []byte(dilated), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCLI(t, nil, "diff", orig, dilPath)
	if code != 1 {
		t.Fatalf("diff of dilated trace exited %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "first divergence") {
		t.Errorf("diff output missing divergence:\n%s", stdout)
	}

	// A retargeted shape mismatches.
	code, retargeted, stderr := runCLI(t, data, "retarget", "-", "-nodes", "4", "-policy", "roundrobin", "-o", "-")
	if code != 0 {
		t.Fatalf("retarget exited %d: %s", code, stderr)
	}
	rePath := filepath.Join(dir, "4n.trace")
	if err := os.WriteFile(rePath, []byte(retargeted), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, nil, "diff", orig, rePath)
	if code != 1 || !strings.Contains(stdout, "shape mismatch") {
		t.Fatalf("shape-mismatch diff exited %d:\n%s", code, stdout)
	}
}

// TestDiffStats: identical replays exit 0; a dilated replay differs on
// timing counters and exits 1 with a delta table.
func TestDiffStats(t *testing.T) {
	data := record(t)
	dir := t.TempDir()
	orig := filepath.Join(dir, "a.trace")
	if err := os.WriteFile(orig, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runCLI(t, nil, "diffstats", orig, orig)
	if code != 0 {
		t.Fatalf("diffstats of identical traces exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "runs are identical") {
		t.Errorf("diffstats output:\n%s", stdout)
	}

	code, dilated, stderr := runCLI(t, data, "dilate", "-", "-factor", "4", "-o", "-")
	if code != 0 {
		t.Fatalf("dilate exited %d: %s", code, stderr)
	}
	dilPath := filepath.Join(dir, "x4.trace")
	if err := os.WriteFile(dilPath, []byte(dilated), 0o644); err != nil {
		t.Fatal(err)
	}
	// The dilated side pipes in through stdin: diffstats composes with
	// the transform pipeline like every other subcommand.
	code, stdout, stderr = runCLI(t, []byte(dilated), "diffstats", orig, "-", "-protocol", "ccnuma")
	if code != 1 {
		t.Fatalf("diffstats of dilated trace exited %d, want 1: %s", code, stderr)
	}
	for _, want := range []string{"ExecCycles", "runs differ"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("diffstats output missing %q:\n%s", want, stdout)
		}
	}

	// Bad trace bytes surface as errors (exit 1), not panics.
	badPath := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(badPath, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, nil, "diffstats", orig, badPath); code != 1 {
		t.Fatalf("diffstats of corrupt trace exited %d, want 1", code)
	}
}

// TestRetargetGeometryCLI: the happy path re-splits the geometry (info
// confirms it) and the error paths exit 1 with a diagnostic.
func TestRetargetGeometryCLI(t *testing.T) {
	data := record(t)

	code, out, stderr := runCLI(t, data, "retarget-geometry", "-", "-block", "16", "-o", "-")
	if code != 0 {
		t.Fatalf("retarget-geometry exited %d: %s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, []byte(out), "info", "-")
	if code != 0 {
		t.Fatalf("info exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "block=16B") {
		t.Errorf("info after geometry retarget:\n%s", stdout)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no-dimension", []string{"retarget-geometry", "-", "-o", "-"}, "-block and/or -page"},
		{"not-pow2", []string{"retarget-geometry", "-", "-block", "48", "-o", "-"}, "power of two"},
		{"page-below-block", []string{"retarget-geometry", "-", "-page", "16", "-o", "-"}, "must be in"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, data, tc.args...)
			if code != 1 {
				t.Fatalf("exit %d, want 1 (%s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q: %s", tc.want, stderr)
			}
		})
	}
}

// TestRetargetInterleaveFoldCLI: -cpu-fold interleave folds the CPU
// count through the CLI, and unknown fold names are rejected.
func TestRetargetInterleaveFoldCLI(t *testing.T) {
	data := record(t) // 32 CPUs on 8 nodes
	code, out, stderr := runCLI(t, data, "retarget", "-", "-nodes", "4", "-cpus", "16",
		"-policy", "roundrobin", "-cpu-fold", "interleave", "-o", "-")
	if code != 0 {
		t.Fatalf("interleave retarget exited %d: %s", code, stderr)
	}
	code, stdout, _ := runCLI(t, []byte(out), "info", "-")
	if code != 0 || !strings.Contains(stdout, "4 nodes, 16 CPUs") {
		t.Fatalf("info after interleave fold (exit %d):\n%s", code, stdout)
	}

	if code, _, _ := runCLI(t, data, "retarget", "-", "-cpus", "16", "-cpu-fold", "bogus", "-o", "-"); code != 1 {
		t.Fatalf("unknown -cpu-fold exited %d, want 1", code)
	}
	// 32 CPUs onto 12 does not divide evenly: the weighted interleave
	// fold spreads the remainder instead of rejecting the shape.
	code, out, stderr = runCLI(t, data, "retarget", "-", "-nodes", "4", "-cpus", "12", "-cpu-fold", "interleave", "-o", "-")
	if code != 0 {
		t.Fatalf("non-divisible interleave exited %d: %s", code, stderr)
	}
	code, stdout, _ = runCLI(t, []byte(out), "info", "-")
	if code != 0 || !strings.Contains(stdout, "4 nodes, 12 CPUs") {
		t.Fatalf("info after weighted fold (exit %d):\n%s", code, stdout)
	}
}

// TestGenFromStdinSpec: gen builds a spec piped through stdin and the
// result replays.
func TestGenFromStdinSpec(t *testing.T) {
	spec := `{
		"name": "cli-e2e",
		"regions": [{"name": "m", "pages": 16, "placement": "global"}],
		"phases": [{"iters": 2, "steps": [{"op": "sweep", "region": "m"}, {"op": "barrier"}]}]
	}`
	code, out, stderr := runCLI(t, []byte(spec), "gen", "-spec", "-", "-nodes", "2", "-cpus", "2", "-o", "-")
	if code != 0 {
		t.Fatalf("gen exited %d: %s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, []byte(out), "info", "-")
	if code != 0 || !strings.Contains(stdout, "cli-e2e") {
		t.Fatalf("info of generated spec (exit %d): %s\n%s", code, stderr, stdout)
	}
	if code, _, _ := runCLI(t, nil, "gen", "-o", "-"); code != 1 {
		t.Fatal("gen without -spec should exit 1")
	}
}

// TestSnapshotResumeCLI: snapshot parks a replay mid-run in an .rnss
// checkpoint, resume finishes it, and the finished statistics byte-match
// an uninterrupted replay of the same trace; -T forks the checkpoint at
// a different relocation threshold.
func TestSnapshotResumeCLI(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "fft.trace")
	if err := os.WriteFile(tracePath, record(t), 0o644); err != nil {
		t.Fatal(err)
	}
	// Everything after each command's first line is report.RunSummary.
	stats := func(s string) string {
		if i := strings.Index(s, "\n"); i >= 0 {
			return s[i+1:]
		}
		return s
	}

	code, full, stderr := runCLI(t, nil, "replay", tracePath, "-protocol", "rnuma")
	if code != 0 {
		t.Fatalf("replay exited %d: %s", code, stderr)
	}

	snapPath := filepath.Join(dir, "pause.rnss")
	code, _, stderr = runCLI(t, nil, "snapshot", tracePath, "-refs", "15000", "-protocol", "rnuma", "-o", snapPath)
	if code != 0 {
		t.Fatalf("snapshot exited %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "paused at 15000 refs") {
		t.Errorf("snapshot progress line missing pause state: %s", stderr)
	}

	code, resumed, stderr := runCLI(t, nil, "resume", tracePath, "-snap", snapPath)
	if code != 0 {
		t.Fatalf("resume exited %d: %s", code, stderr)
	}
	if stats(resumed) != stats(full) {
		t.Errorf("resumed stats differ from uninterrupted replay:\n--- replay\n%s--- resume\n%s", stats(full), stats(resumed))
	}

	// Forking the checkpoint at a lower threshold matches a full replay
	// at that threshold (the snapshot predates any counter crossing).
	code, forked, stderr := runCLI(t, nil, "resume", tracePath, "-snap", snapPath, "-T", "4")
	if code != 0 {
		t.Fatalf("resume -T exited %d: %s", code, stderr)
	}
	code, fullLo, stderr := runCLI(t, nil, "replay", tracePath, "-protocol", "rnuma", "-T", "4")
	if code != 0 {
		t.Fatalf("replay -T exited %d: %s", code, stderr)
	}
	if stats(forked) != stats(fullLo) {
		t.Errorf("threshold-forked stats differ from full replay at T=4:\n--- replay\n%s--- resume\n%s", stats(fullLo), stats(forked))
	}

	// Default destination: <trace>.rnss next to the trace file.
	code, _, stderr = runCLI(t, nil, "snapshot", tracePath, "-refs", "5000", "-protocol", "ccnuma")
	if code != 0 {
		t.Fatalf("snapshot without -o exited %d: %s", code, stderr)
	}
	if _, err := os.Stat(tracePath + ".rnss"); err != nil {
		t.Errorf("default checkpoint path not written: %v", err)
	}

	// A -refs count past the end of the trace parks a complete machine.
	code, _, stderr = runCLI(t, nil, "snapshot", tracePath, "-refs", "99999999", "-protocol", "rnuma", "-o", snapPath)
	if code != 0 || !strings.Contains(stderr, "complete at") {
		t.Errorf("snapshot past the end (exit %d): %s", code, stderr)
	}

	// Error paths.
	if code, _, _ := runCLI(t, nil, "snapshot", tracePath, "-o", snapPath); code != 1 {
		t.Errorf("snapshot without -refs exited %d, want 1", code)
	}
	if code, _, _ := runCLI(t, record(t), "snapshot", "-", "-refs", "100"); code != 1 {
		t.Errorf("snapshot of stdin without -o exited %d, want 1", code)
	}
	if code, _, _ := runCLI(t, nil, "resume", tracePath); code != 1 {
		t.Errorf("resume without -snap exited %d, want 1", code)
	}
	if code, _, _ := runCLI(t, nil, "resume", tracePath, "-snap", filepath.Join(dir, "absent.rnss")); code != 1 {
		t.Errorf("resume with a missing checkpoint exited %d, want 1", code)
	}
}

// TestTelemetryCLI: replay with a window renders the timeline report and
// exports JSON artifacts; a probed snapshot resumes into the identical
// series (byte-for-byte JSON); -timeline without -window defaults the
// window instead of exporting nothing.
func TestTelemetryCLI(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "fft.trace")
	if err := os.WriteFile(tracePath, record(t), 0o644); err != nil {
		t.Fatal(err)
	}

	tlPath := filepath.Join(dir, "tl.json")
	evPath := filepath.Join(dir, "ev.json")
	code, stdout, stderr := runCLI(t, nil, "replay", tracePath, "-window", "4096", "-timeline", tlPath, "-events", evPath)
	if code != 0 {
		t.Fatalf("probed replay exited %d: %s", code, stderr)
	}
	for _, want := range []string{"TIMELINE —", "window 4096 refs", "traffic"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("replay output missing %q:\n%s", want, stdout)
		}
	}
	tl, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tl), `"intervals"`) {
		t.Errorf("timeline JSON missing intervals:\n%.200s", tl)
	}
	ev, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ev), `"events"`) {
		t.Errorf("events JSON missing events key:\n%.200s", ev)
	}

	// -timeline without -window defaults the window (65536) rather than
	// silently capturing nothing; "-" streams the JSON to stdout.
	code, stdout, stderr = runCLI(t, nil, "replay", tracePath, "-timeline", "-")
	if code != 0 {
		t.Fatalf("defaulted-window replay exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, `"window": 65536`) {
		t.Errorf("defaulted window missing from stdout JSON:\n%.400s", stdout)
	}

	// A probed checkpoint taken mid-window resumes into the exact series
	// the uninterrupted replay produced.
	snapPath := filepath.Join(dir, "probed.rnss")
	code, _, stderr = runCLI(t, nil, "snapshot", tracePath, "-refs", "5000", "-window", "4096", "-o", snapPath)
	if code != 0 {
		t.Fatalf("probed snapshot exited %d: %s", code, stderr)
	}
	resumedPath := filepath.Join(dir, "resumed.json")
	code, stdout, stderr = runCLI(t, nil, "resume", tracePath, "-snap", snapPath, "-timeline", resumedPath)
	if code != 0 {
		t.Fatalf("probed resume exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "TIMELINE —") {
		t.Errorf("probed resume renders no timeline:\n%s", stdout)
	}
	resumed, err := os.ReadFile(resumedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tl, resumed) {
		t.Error("resumed timeline JSON differs from the uninterrupted replay's")
	}

	// An unprobed checkpoint cannot export a timeline.
	plainSnap := filepath.Join(dir, "plain.rnss")
	if code, _, stderr := runCLI(t, nil, "snapshot", tracePath, "-refs", "5000", "-o", plainSnap); code != 0 {
		t.Fatalf("plain snapshot exited %d: %s", code, stderr)
	}
	if code, _, _ := runCLI(t, nil, "resume", tracePath, "-snap", plainSnap, "-timeline", resumedPath); code != 1 {
		t.Errorf("resume of an unprobed checkpoint with -timeline exited %d, want 1", code)
	}
}

// TestDiffStatsTolerance: -tol keeps structural differences fatal while
// tolerating banded timing drift; identical runs pass any band.
func TestDiffStatsTolerance(t *testing.T) {
	data := record(t)
	dir := t.TempDir()
	orig := filepath.Join(dir, "fft.trace")
	if err := os.WriteFile(orig, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runCLI(t, nil, "diffstats", orig, orig, "-tol", "5")
	if code != 0 {
		t.Fatalf("identical diffstats -tol exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "tolerance ±5%") || !strings.Contains(stdout, "ok: runs identical") {
		t.Errorf("tolerance summary missing:\n%s", stdout)
	}

	// A structurally different trace (a prefix cut) fails even under an
	// absurdly wide band.
	code, cut, stderr := runCLI(t, data, "cut", "-", "-to", "100", "-o", "-")
	if code != 0 {
		t.Fatalf("cut exited %d: %s", code, stderr)
	}
	cutPath := filepath.Join(dir, "cut.trace")
	if err := os.WriteFile(cutPath, []byte(cut), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, nil, "diffstats", orig, cutPath, "-tol", "99")
	if code != 1 {
		t.Fatalf("structural diffstats -tol exited %d, want 1", code)
	}
	if !strings.Contains(stdout, "structural") || !strings.Contains(stdout, "FAIL") {
		t.Errorf("structural failure not reported:\n%s", stdout)
	}

	// A dilated trace differs only in timing: a generous band passes it
	// (with warnings when anything moved), the default exact mode fails it.
	code, dilated, stderr := runCLI(t, data, "dilate", "-", "-factor", "101/100", "-o", "-")
	if code != 0 {
		t.Fatalf("dilate exited %d: %s", code, stderr)
	}
	dilPath := filepath.Join(dir, "dilated.trace")
	if err := os.WriteFile(dilPath, []byte(dilated), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, stdout, _ = runCLI(t, nil, "diffstats", orig, dilPath, "-tol", "50"); code != 0 {
		t.Fatalf("timing-only diffstats -tol 50 exited %d:\n%s", code, stdout)
	}
}

// TestDiffStatsNegativeTol: a negative tolerance band can never pass and
// used to silently mean "exact match"; it is now a usage error.
func TestDiffStatsNegativeTol(t *testing.T) {
	data := record(t)
	dir := t.TempDir()
	orig := filepath.Join(dir, "fft.trace")
	if err := os.WriteFile(orig, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, nil, "diffstats", orig, orig, "-tol", "-5")
	if code != 2 {
		t.Fatalf("diffstats -tol -5 exited %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr, "-tol") {
		t.Errorf("stderr does not mention -tol:\n%s", stderr)
	}
}

// TestInfoZeroReferenceTrace: info on a structurally valid trace with no
// records and no shared pages must report zeros, not panic or divide by
// zero in the home-map percentages.
func TestInfoZeroReferenceTrace(t *testing.T) {
	var buf bytes.Buffer
	tw, err := tracefile.NewWriter(&buf, tracefile.Header{
		Name: "empty", Geometry: addr.Default, CPUs: 4, Nodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, buf.Bytes(), "info", "-")
	if code != 0 {
		t.Fatalf("info on an empty trace exited %d: %s", code, stderr)
	}
	for _, want := range []string{"references:   0", "shared pages: 0", "2 nodes, 4 CPUs"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("info output missing %q:\n%s", want, stdout)
		}
	}
}

// TestTrafficGenAndReplay drives the committed example scenarios end to
// end: gen -traffic produces an ordinary trace (info-readable), and
// replay -traffic reports the per-client counter table and timeline.
func TestTrafficGenAndReplay(t *testing.T) {
	scenario := filepath.Join("..", "..", "examples", "scenarios", "steady-mix.json")

	code, trc, stderr := runCLI(t, nil,
		"gen", "-traffic", scenario, "-scale", "0.05", "-o", "-")
	if code != 0 {
		t.Fatalf("gen -traffic exited %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "2 clients (halo, hotcold)") {
		t.Errorf("gen stderr missing the client summary:\n%s", stderr)
	}
	code, stdout, stderr := runCLI(t, []byte(trc), "info", "-")
	if code != 0 {
		t.Fatalf("info on a traffic trace exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "workload:     steady-mix") {
		t.Errorf("info output missing the scenario name:\n%s", stdout)
	}

	code, stdout, stderr = runCLI(t, nil,
		"replay", "-traffic", scenario, "-scale", "0.05", "-window", "4096")
	if code != 0 {
		t.Fatalf("replay -traffic exited %d: %s", code, stderr)
	}
	for _, want := range []string{
		"traffic: steady-mix (2 clients",
		"CLIENTS",
		"halo", "hotcold",
		"per-client remote fetches:",
		"normalized exec time:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("replay -traffic output missing %q", want)
		}
	}

	// A trace and -traffic together are ambiguous.
	if code, _, _ := runCLI(t, nil, "replay", "x.trace", "-traffic", scenario); code != 1 {
		t.Errorf("replay with both a trace and -traffic exited %d, want 1", code)
	}
	// gen needs exactly one source.
	if code, _, _ := runCLI(t, nil, "gen", "-spec", "a.json", "-traffic", "b.json"); code != 1 {
		t.Errorf("gen with -spec and -traffic exited %d, want 1", code)
	}
}

func TestTrafficModeErrors(t *testing.T) {
	scenario := filepath.Join("..", "..", "examples", "scenarios", "steady-mix.json")
	if code, _, _ := runCLI(t, nil, "gen", "-traffic", "absent.json", "-o", "-"); code != 1 {
		t.Errorf("gen -traffic on a missing file exited %d, want 1", code)
	}
	if code, _, _ := runCLI(t, nil, "replay", "-traffic", "absent.json"); code != 1 {
		t.Errorf("replay -traffic on a missing file exited %d, want 1", code)
	}
	code, _, stderr := runCLI(t, nil, "replay", "-traffic", scenario, "-scale", "0.02", "-protocol", "doom")
	if code != 1 || !strings.Contains(stderr, "doom") {
		t.Errorf("replay -traffic -protocol doom exited %d (%s), want 1 naming the protocol", code, stderr)
	}
	if code, _, _ := runCLI(t, nil, "replay", "-traffic", scenario, "-scale", "0.02",
		"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "p")); code != 1 {
		t.Errorf("replay -traffic with an unwritable -cpuprofile exited %d, want 1", code)
	}
}
