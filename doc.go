// Package rnuma is a Go reproduction of "Reactive NUMA: A Design for
// Unifying S-COMA and CC-NUMA" (Falsafi & Wood, ISCA 1997).
//
// The library simulates a distributed shared-memory cluster of SMP nodes
// with three remote-data caching designs — CC-NUMA (a per-node SRAM block
// cache), S-COMA (a main-memory page cache with fine-grain access control
// tags), and the paper's contribution, Reactive NUMA, which starts every
// remote page in CC-NUMA mode, counts per-page capacity/conflict refetches
// at the directory, and relocates pages that cross a threshold into the
// S-COMA page cache.
//
// Packages:
//
//   - internal/machine — the whole-machine discrete-event simulator
//   - internal/core — R-NUMA's reactive refetch counters
//   - internal/directory — the full-map coherence directory with refetch
//     detection
//   - internal/cache, internal/blockcache, internal/pagecache — the
//     storage hierarchy
//   - internal/workloads — synthetic versions of the paper's ten
//     applications (Table 3)
//   - internal/harness — drivers that regenerate every table and figure
//   - internal/model — the analytical worst-case model (Section 3.2)
//
// The benchmarks in bench_test.go regenerate each table/figure; see
// EXPERIMENTS.md for paper-versus-measured results and README.md for a
// walkthrough.
package rnuma
