// Package rnuma is a Go reproduction of "Reactive NUMA: A Design for
// Unifying S-COMA and CC-NUMA" (Falsafi & Wood, ISCA 1997).
//
// The library simulates a distributed shared-memory cluster of SMP nodes
// with three remote-data caching designs — CC-NUMA (a per-node SRAM block
// cache), S-COMA (a main-memory page cache with fine-grain access control
// tags), and the paper's contribution, Reactive NUMA, which starts every
// remote page in CC-NUMA mode, counts per-page capacity/conflict refetches
// at the directory, and relocates pages that cross a threshold into the
// S-COMA page cache.
//
// Packages:
//
//   - internal/machine — the whole-machine discrete-event simulator
//   - internal/core — R-NUMA's reactive refetch counters
//   - internal/directory — the full-map coherence directory with refetch
//     detection
//   - internal/cache, internal/blockcache, internal/pagecache — the
//     storage hierarchy
//   - internal/workloads — synthetic versions of the paper's ten
//     applications (Table 3), built on exported access-pattern primitives
//   - internal/spec — declarative JSON workload descriptions composed
//     from the same primitives (new scenarios without code changes),
//     including per-phase node subsets and zipf/explicit page-popularity
//     distributions
//   - internal/traffic — open-loop multi-tenant traffic scenarios
//     layered on specs: named clients with rate fractions, deterministic
//     arrival processes (poisson/gamma/weibull), time-varying load
//     shapes, and an arrival-time merge into one replayable stream set
//     with per-record client attribution (per-tenant stats/telemetry)
//   - internal/tracefile — the binary trace capture/replay format
//     (streaming writer, lazy demuxing reader with record-level seeking
//     that skips whole compressed chunks undecoded, live-simulation tee,
//     per-chunk DEFLATE compression in format v2, stream-level Cut/Cat
//     splicing, and the transform layer: Retarget onto a different
//     machine shape under pluggable page-remapping policies and CPU
//     fold policies (modulo or weighted interleave), RetargetGeometry
//     re-splitting every address onto a different block/page geometry,
//     Dilate of compute gaps by a rational factor, and Diff reporting
//     the first diverging CPU/record plus a per-CPU summary)
//   - internal/tracefile/snapfile — the RNSS checkpoint file format for
//     machine snapshots (versioned gob payload, CRC-32C, strict
//     truncation/corruption rejection) behind rnuma-trace snapshot and
//     resume
//   - internal/stats — the per-run counter set, plus Diff: the
//     per-counter delta table (absolute + relative + refetch-map
//     digest) between two runs that rnuma-trace diffstats and
//     rnuma-experiments -diff render, and its Tolerance classification
//     (timing counters may drift within a band, structural counters
//     must match exactly) behind diffstats -tol
//   - internal/telemetry — the reference-windowed sampling probe: every
//     N references it emits the windowed counter deltas as an interval
//     series, a per-window node-to-node remote-fetch traffic matrix,
//     and a log of relocation events; off by default, free when off,
//     and schedule-independent — serial, parallel, trunk-and-fork, and
//     snapshot-resumed replays produce bit-identical timelines because
//     checkpoints carry the probe cursor
//   - internal/profiling — shared -cpuprofile/-memprofile plumbing for
//     rnuma-sim and rnuma-trace replay
//   - internal/harness — the experiment-plan layer and concurrent
//     scheduler that regenerate every table and figure; spec files and
//     recorded traces register as workload sources whose memo keys hash
//     the decoded streams (CanonicalHash), so re-encodings of one
//     capture share simulations, and Sweep transforms one capture along
//     a parameter axis (nodes, dilate factor, block size, page size,
//     relocation threshold) to replay a whole sensitivity study from a
//     single recording; multi-point threshold sweeps replay the trace
//     once on a trunk machine and fork each point from a mid-run
//     snapshot at the last threshold-independent reference, producing
//     runs bit-identical to independent replays at a fraction of the
//     wall-clock; SweepGrid crosses any two axes into a cell grid whose
//     rows and columns are bit-identical to the one-axis sweeps, and
//     FindKnee locates where on a grid line the R-NUMA-over-best ratio
//     first exceeds a bound
//   - internal/serve — the long-running experiment service behind
//     cmd/rnuma-serve: content-addressed artifact uploads (traces,
//     specs, traffic scenarios), replay/sweep/grid/diffstats/
//     experiments jobs with streamed progress, and text or JSON
//     reports; malformed axis/value requests answer 422 naming the
//     offending token; every job
//     runs on its own harness over the server's one shared result
//     store, so repeated and concurrent submissions re-simulate
//     nothing
//   - internal/model — the analytical worst-case model (Section 3.2)
//
// The harness declares each figure's (application, system) grid as a Plan
// of Jobs, deduplicates shared configurations (every figure divides by the
// same ideal baseline), and executes the plan across a worker pool bounded
// by Harness.Workers (default GOMAXPROCS; the tools expose it as
// -parallel). Results land in a pluggable singleflight store
// (Harness.Store — in-memory by default, persisted across processes by
// NewDiskStore), so concurrent
// requests for one configuration simulate exactly once and figure assembly
// — always serial — produces output byte-identical to a serial run. Each
// simulation owns a fresh Machine whose per-page hot state (homes, sharing
// flags, page tables, refetch counters) lives in dense page-indexed slices
// sized from the workload's segment, keeping map hashing off the
// per-reference path and mutable state off the shared heap.
//
// The benchmarks in bench_test.go regenerate each table/figure; see
// EXPERIMENTS.md for paper-versus-measured results and README.md for a
// walkthrough.
package rnuma
