// dbscan: the paper's introduction motivates R-NUMA with commercial
// databases — Verghese et al. found 90% of user data misses in a
// relational DBMS hit read-write shared pages, which page replication and
// migration cannot help. This example models an OLTP-style workload: every
// node scans a shared buffer pool of read-write pages (index roots and hot
// tables) that all nodes read and update.
//
// CC-NUMA's block cache is too small for the buffer pool; read-only
// replication would not help (the pages are written); S-COMA holds the
// pool but pays for the scan-temp pages too. R-NUMA relocates the hot pool
// and leaves scan temps alone.
//
// Run: go run ./examples/dbscan
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/trace"
)

const (
	poolPages = 48  // hot shared buffer pool (fits the 80-frame page cache)
	tempPages = 150 // per-node scan temporaries streamed once per query
	queries   = 8
)

func buildStreams(sys config.System) ([]trace.Stream, func(addr.PageNum) addr.NodeID) {
	nodes, cpus := sys.Nodes, sys.CPUsPerNode
	// Page layout: pool pages homed round-robin, then per-node temp pages.
	homes := func(p addr.PageNum) addr.NodeID {
		if int(p) < poolPages {
			return addr.NodeID(int(p) % nodes)
		}
		return addr.NodeID((int(p) - poolPages) / tempPages % nodes)
	}
	streams := make([]trace.Stream, nodes*cpus)
	for n := 0; n < nodes; n++ {
		tempBase := poolPages + n*tempPages
		for c := 0; c < cpus; c++ {
			rng := rand.New(rand.NewSource(int64(n*cpus + c)))
			var refs []trace.Ref
			for q := 0; q < queries; q++ {
				// Index lookups: random probes into the shared pool,
				// mostly reads with ~10% updates (read-write sharing).
				for i := 0; i < 2200; i++ {
					page := addr.PageNum(rng.Intn(poolPages))
					off := uint16(rng.Intn(128))
					refs = append(refs, trace.Ref{Page: page, Off: off, Write: rng.Float64() < 0.10, Gap: 60})
				}
				// Sequential scan through this node's temp segment: each
				// block touched once — pure streaming.
				for p := 0; p < tempPages; p++ {
					for off := 0; off < 8; off++ {
						refs = append(refs, trace.Ref{Page: addr.PageNum(tempBase + p), Off: uint16(off * 16), Write: true, Gap: 12})
					}
				}
				refs = append(refs, trace.BarrierRef())
			}
			streams[n*cpus+c] = trace.FromSlice(refs)
		}
	}
	return streams, homes
}

func main() {
	fmt.Println("OLTP-style read-write shared buffer pool (paper Section 1 motivation)")
	fmt.Printf("%d hot shared pages (RW), %d streaming temp pages/node, %d queries\n\n",
		poolPages, tempPages, queries)

	var baseline int64
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		sys := config.Base(p)
		streams, homes := buildStreams(sys)
		m, err := machine.New(sys, machine.WithHomes(homes))
		if err != nil {
			log.Fatal(err)
		}
		run, err := m.Run(streams)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			// Also run the ideal machine for normalization.
			ideal, _ := machine.New(config.Ideal(), machine.WithHomes(homes))
			istreams, _ := buildStreams(config.Ideal())
			irun, err := ideal.Run(istreams)
			if err != nil {
				log.Fatal(err)
			}
			baseline = irun.ExecCycles
		}
		fmt.Printf("%-8v exec=%9d cycles (%.2fx ideal)  remote=%7d refetch=%7d reloc=%4d repl=%4d\n",
			p, run.ExecCycles, float64(run.ExecCycles)/float64(baseline),
			run.RemoteFetches, run.Refetches, run.Relocations, run.Replacements)
	}
	fmt.Println("\nR-NUMA relocates the hot pool (read-write pages that replication")
	fmt.Println("cannot handle) while the streaming temps stay CC-NUMA.")
}
