// halo: an em3d/ocean-style bulk-synchronous halo exchange, showing the
// communication-page case where CC-NUMA is the right answer and S-COMA's
// page cache only thrashes (paper Section 5.2, em3d/fft discussion).
//
// Each node owns a subgrid; every iteration it updates its interior and
// reads boundary blocks from its ring neighbors. The boundary data is
// rewritten every iteration, so every remote miss is a coherence miss —
// R-NUMA's counters never fire, and it correctly behaves like CC-NUMA.
//
// Run: go run ./examples/halo
package main

import (
	"fmt"
	"log"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/trace"
)

const (
	pagesPerNode = 100 // subgrid pages per node (page cache holds only 80)
	haloBlocks   = 6   // boundary blocks read per remote page
	iterations   = 6
)

func main() {
	fmt.Println("Bulk-synchronous halo exchange (communication pages only)")
	fmt.Printf("%d pages/node, %d halo blocks/page, %d iterations\n\n", pagesPerNode, haloBlocks, iterations)

	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		sys := config.Base(p)
		nodes, cpus := sys.Nodes, sys.CPUsPerNode

		homes := func(pg addr.PageNum) addr.NodeID {
			return addr.NodeID(int(pg) / pagesPerNode % nodes)
		}
		streams := make([]trace.Stream, nodes*cpus)
		for n := 0; n < nodes; n++ {
			left := (n + nodes - 1) % nodes
			right := (n + 1) % nodes
			for c := 0; c < cpus; c++ {
				var refs []trace.Ref
				for it := 0; it < iterations; it++ {
					// Interior update: this CPU's slice of the subgrid.
					for p := c; p < pagesPerNode; p += cpus {
						page := addr.PageNum(n*pagesPerNode + p)
						for off := 0; off < 32; off++ {
							refs = append(refs, trace.Ref{Page: page, Off: uint16(off), Write: true, Gap: 20})
						}
					}
					refs = append(refs, trace.BarrierRef())
					// Halo reads from both neighbors.
					for _, nb := range []int{left, right} {
						for p := c; p < pagesPerNode; p += cpus {
							page := addr.PageNum(nb*pagesPerNode + p)
							for k := 0; k < haloBlocks; k++ {
								refs = append(refs, trace.Ref{Page: page, Off: uint16(k), Gap: 25})
							}
						}
					}
					refs = append(refs, trace.BarrierRef())
				}
				streams[n*cpus+c] = trace.FromSlice(refs)
			}
		}

		m, err := machine.New(sys, machine.WithHomes(homes))
		if err != nil {
			log.Fatal(err)
		}
		run, err := m.Run(streams)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v exec=%9d  remote=%6d refetch=%5d faults=%5d repl=%5d reloc=%4d\n",
			p, run.ExecCycles, run.RemoteFetches, run.Refetches,
			run.PageFaults, run.Replacements, run.Relocations)
	}
	fmt.Println("\nEvery remote miss is an invalidation (coherence) miss, so R-NUMA's")
	fmt.Println("refetch counters stay at zero: no relocations, no wasted page ops —")
	fmt.Println("while pure S-COMA churns its page cache for nothing.")
}
