// Quickstart: build a small DSM machine, run a hand-written workload under
// all three protocols, and watch R-NUMA's reactive relocation converge.
//
// The workload is the paper's motivating case in miniature: one node
// repeatedly sweeps remote "reuse" pages (capacity misses), while a second
// page set is pure producer-consumer "communication" (coherence misses).
// CC-NUMA refetches the reuse pages forever; S-COMA wastes page frames on
// the communication pages; R-NUMA relocates exactly the reuse pages.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/report"
	"rnuma/internal/trace"
)

func main() {
	for _, protocol := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		sys := config.Base(protocol)
		sys.Nodes, sys.CPUsPerNode = 2, 1 // keep the example tiny

		// Pages 0..9 live on node 0; node 1 will cache them remotely.
		homes := func(p addr.PageNum) addr.NodeID { return 0 }

		m, err := machine.New(sys, machine.WithHomes(homes))
		if err != nil {
			log.Fatal(err)
		}

		// Node 1's program: 30 dense sweeps over 8 reuse pages (1024
		// blocks — too big for its L1, bigger than R-NUMA's 128-byte
		// block cache), interleaved with reads of a communication page
		// that node 0 keeps rewriting.
		var consumer []trace.Ref
		for sweep := 0; sweep < 30; sweep++ {
			for page := addr.PageNum(0); page < 8; page++ {
				for off := 0; off < 128; off++ {
					consumer = append(consumer, trace.Ref{Page: page, Off: uint16(off), Gap: 10})
				}
			}
			consumer = append(consumer, trace.Ref{Page: 9, Off: 0, Gap: 10})
		}
		var producer []trace.Ref
		for i := 0; i < 30; i++ {
			producer = append(producer, trace.Ref{Page: 9, Off: 0, Write: true, Gap: 35000})
		}

		run, err := m.Run([]trace.Stream{
			trace.FromSlice(producer), // node 0, CPU 0
			trace.FromSlice(consumer), // node 1, CPU 0
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %v ===\n", protocol)
		report.RunSummary(os.Stdout, sys.Name, run)
		fmt.Println()
	}
	fmt.Println("Note how R-NUMA relocates the 8 reuse pages once (8 relocations),")
	fmt.Println("converts their refetches into page-cache hits, and leaves the")
	fmt.Println("communication page in CC-NUMA mode — the paper's Section 3 in action.")
}
