// tuner: sweep R-NUMA's relocation threshold on a workload and compare the
// empirically best value against the analytical optimum of Equation 3
// (T* = Callocate/Crefetch), reproducing the paper's Section 5.4
// observation that the best practical threshold depends on the fraction of
// reuse pages and can sit below the worst-case-optimal one.
//
// The sweep is declared as a harness Plan and executed by the concurrent
// scheduler: all thresholds run in parallel (the T=64 job deduplicates
// with the reference run), and the table is assembled from the result map.
//
// Run: go run ./examples/tuner [app]
package main

import (
	"fmt"
	"log"
	"os"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/model"
)

func main() {
	app := "cholesky" // a reuse-heavy app that favors low thresholds
	if len(os.Args) > 1 {
		app = os.Args[1]
	}

	h := harness.New(0.5)
	fmt.Printf("Threshold sweep for %q (R-NUMA, 128-B block cache, 320-KB page cache)\n\n", app)

	thresholds := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}
	baseJob := harness.NewJob(app, config.Base(config.RNUMA)) // T=64 reference
	plan := harness.NewPlan().Add(baseJob)
	jobs := make(map[int]harness.Job, len(thresholds))
	for _, T := range thresholds {
		sys := config.Base(config.RNUMA)
		sys.Threshold = T
		jobs[T] = harness.NewJob(app, sys)
		plan.Add(jobs[T])
	}

	results, err := h.RunPlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	base := results[baseJob.Key()]

	bestT, bestExec := 0, int64(0)
	fmt.Printf("%6s %14s %12s %12s %12s\n", "T", "exec cycles", "vs T=64", "relocations", "replacements")
	for _, T := range thresholds {
		run := results[jobs[T].Key()]
		fmt.Printf("%6d %14d %12.3f %12d %12d\n",
			T, run.ExecCycles, float64(run.ExecCycles)/float64(base.ExecCycles),
			run.Relocations, run.Replacements)
		if bestT == 0 || run.ExecCycles < bestExec {
			bestT, bestExec = T, run.ExecCycles
		}
	}

	costs := config.BaseCosts()
	p := model.FromCosts(float64(costs.RemoteFetch),
		float64(costs.PageOpBase()+costs.PageOpPerBlock*32),
		float64(costs.PageOpBase()+costs.PageOpPerBlock*16), 64)
	fmt.Printf("\nempirically best threshold: T=%d\n", bestT)
	fmt.Printf("analytical worst-case optimum (EQ3): T* = %.1f (bound %.2fx)\n",
		p.OptimalThreshold(), p.AtOptimum().BoundAtOptimum())
	fmt.Println("\nThe worst-case-optimal T bounds adversarial behavior; the best")
	fmt.Println("average-case T depends on the reuse-page fraction (Section 5.4).")
}
