module rnuma

go 1.24
