// Package addr defines the address arithmetic shared by every component of
// the DSM machine model: global page and block numbering, and the geometry
// (block size, page size) that converts between them.
//
// The simulator models a single global shared segment. Workloads emit
// references as (page, block-offset) pairs in that segment; the per-node
// operating system decides whether a page is mapped CC-NUMA (references go
// to the home node's global physical address) or S-COMA (references go to a
// local page-cache frame). Because the coherence protocol operates on
// global block numbers either way, the simulator carries global numbers
// throughout and keeps the local-physical-address indirection implicit in
// the page-cache frame table, exactly as the S-COMA translation table would.
package addr

import "fmt"

// PageNum identifies a page in the global shared segment.
type PageNum uint32

// BlockNum identifies a coherence block in the global shared segment.
type BlockNum uint32

// NodeID identifies an SMP node of the machine.
type NodeID int32

// NoNode marks the absence of a node (e.g., no exclusive owner).
const NoNode NodeID = -1

// Geometry fixes the block and page sizes of the machine. The paper's base
// system uses 32-byte coherence blocks (Sparc MBus era) and 4-Kbyte pages.
type Geometry struct {
	BlockShift uint // log2(block bytes)
	PageShift  uint // log2(page bytes)
}

// Default is the base geometry used throughout the paper's evaluation.
var Default = Geometry{BlockShift: 5, PageShift: 12}

// BlockBytes returns the coherence block size in bytes.
func (g Geometry) BlockBytes() int { return 1 << g.BlockShift }

// PageBytes returns the page size in bytes.
func (g Geometry) PageBytes() int { return 1 << g.PageShift }

// BlocksPerPage returns the number of coherence blocks per page.
func (g Geometry) BlocksPerPage() int { return 1 << (g.PageShift - g.BlockShift) }

// BlockOf converts a page number and a block offset within that page into a
// global block number.
func (g Geometry) BlockOf(p PageNum, off int) BlockNum {
	return BlockNum(uint32(p)<<(g.PageShift-g.BlockShift) + uint32(off))
}

// PageOf returns the page containing the given block.
func (g Geometry) PageOf(b BlockNum) PageNum {
	return PageNum(uint32(b) >> (g.PageShift - g.BlockShift))
}

// OffsetOf returns the block's index within its page.
func (g Geometry) OffsetOf(b BlockNum) int {
	return int(uint32(b) & uint32(g.BlocksPerPage()-1))
}

// BlocksFor returns the number of blocks in a segment of `pages` pages:
// the size of a dense block-indexed table covering the segment.
func (g Geometry) BlocksFor(pages int) int {
	return pages << (g.PageShift - g.BlockShift)
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.BlockShift < 2 || g.BlockShift > 12 {
		return fmt.Errorf("addr: block shift %d out of range [2,12]", g.BlockShift)
	}
	if g.PageShift <= g.BlockShift || g.PageShift > 24 {
		return fmt.Errorf("addr: page shift %d must be in (%d,24]", g.PageShift, g.BlockShift)
	}
	return nil
}

// String renders the geometry for logs and reports.
func (g Geometry) String() string {
	return fmt.Sprintf("block=%dB page=%dB (%d blocks/page)",
		g.BlockBytes(), g.PageBytes(), g.BlocksPerPage())
}
