package addr

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := Default
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if g.BlockBytes() != 32 {
		t.Errorf("block bytes = %d, want 32", g.BlockBytes())
	}
	if g.PageBytes() != 4096 {
		t.Errorf("page bytes = %d, want 4096", g.PageBytes())
	}
	if g.BlocksPerPage() != 128 {
		t.Errorf("blocks/page = %d, want 128", g.BlocksPerPage())
	}
}

func TestBlockOfRoundTrip(t *testing.T) {
	g := Default
	for _, tc := range []struct {
		page PageNum
		off  int
	}{{0, 0}, {0, 127}, {1, 0}, {17, 42}, {100000, 99}} {
		b := g.BlockOf(tc.page, tc.off)
		if got := g.PageOf(b); got != tc.page {
			t.Errorf("PageOf(BlockOf(%d,%d)) = %d", tc.page, tc.off, got)
		}
		if got := g.OffsetOf(b); got != tc.off {
			t.Errorf("OffsetOf(BlockOf(%d,%d)) = %d", tc.page, tc.off, got)
		}
	}
}

func TestBlockOfRoundTripProperty(t *testing.T) {
	g := Default
	f := func(p uint32, off uint8) bool {
		page := PageNum(p % (1 << 20))
		o := int(off) % g.BlocksPerPage()
		b := g.BlockOf(page, o)
		return g.PageOf(b) == page && g.OffsetOf(b) == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockNumbersContiguous(t *testing.T) {
	g := Default
	// Last block of page p and first block of page p+1 are adjacent.
	last := g.BlockOf(7, g.BlocksPerPage()-1)
	first := g.BlockOf(8, 0)
	if first != last+1 {
		t.Errorf("pages not contiguous: %d then %d", last, first)
	}
}

func TestBlocksFor(t *testing.T) {
	g := Default
	if got := g.BlocksFor(0); got != 0 {
		t.Errorf("BlocksFor(0) = %d, want 0", got)
	}
	if got := g.BlocksFor(3); got != 3*g.BlocksPerPage() {
		t.Errorf("BlocksFor(3) = %d, want %d", got, 3*g.BlocksPerPage())
	}
	// A dense block table sized by BlocksFor covers every block of every
	// page below the bound.
	n := 5
	limit := g.BlocksFor(n)
	b := g.BlockOf(PageNum(n-1), g.BlocksPerPage()-1)
	if int(b) != limit-1 {
		t.Errorf("last block of page %d = %d, want table size %d - 1", n-1, b, limit)
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{BlockShift: 1, PageShift: 12}, // block too small
		{BlockShift: 5, PageShift: 5},  // page == block
		{BlockShift: 5, PageShift: 4},  // page < block
		{BlockShift: 5, PageShift: 30}, // page too large
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v should be invalid", g)
		}
	}
	good := Geometry{BlockShift: 6, PageShift: 13}
	if err := good.Validate(); err != nil {
		t.Errorf("geometry %+v should be valid: %v", good, err)
	}
	if good.BlocksPerPage() != 128 {
		t.Errorf("64B blocks in 8K pages = %d, want 128", good.BlocksPerPage())
	}
}

func TestGeometryString(t *testing.T) {
	if s := Default.String(); s == "" {
		t.Error("empty geometry string")
	}
}
