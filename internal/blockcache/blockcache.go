// Package blockcache implements the CC-NUMA remote access device's block
// cache (paper Section 2.1): a direct-mapped, writeback SRAM cache that
// holds only remote data, acting as another level of the node's cache
// hierarchy.
//
// It tracks node-level coherence state: ReadOnly (the node is a sharer at
// the directory) or ReadWrite (the node is the exclusive owner). Per the
// paper, the cache maintains inclusion with the node's processor caches for
// read-write blocks but not for read-only blocks; enforcing the inclusion
// invalidations is the machine's job, signaled through the eviction result.
//
// A negative size constructs the paper's "infinite block cache" used as the
// normalization baseline: a fully associative, never-evicting cache.
package blockcache

import (
	"fmt"
	"sort"

	"rnuma/internal/addr"
)

// State is the node-level state of a cached remote block.
type State uint8

const (
	// Invalid: frame empty.
	Invalid State = iota
	// ReadOnly: the node is a sharer; silent drop on eviction.
	ReadOnly
	// ReadWrite: the node is the exclusive owner; eviction writes back to
	// the home and must invalidate processor-cache copies (inclusion).
	ReadWrite
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "inv"
	case ReadOnly:
		return "ro"
	case ReadWrite:
		return "rw"
	}
	return "?"
}

// Entry is one block-cache frame.
type Entry struct {
	Block   addr.BlockNum
	State   State
	Dirty   bool
	Version uint32
}

// Cache is the direct-mapped block cache (or the infinite baseline cache).
type Cache struct {
	frames   []Entry
	mask     uint32
	infinite bool
	inf      map[addr.BlockNum]*Entry

	hits   int64
	misses int64
}

// New builds a block cache with the given number of frames; frames < 0
// builds the infinite cache.
func New(frames int) *Cache {
	if frames < 0 {
		return &Cache{infinite: true, inf: make(map[addr.BlockNum]*Entry)}
	}
	if frames < 1 {
		frames = 1
	}
	return &Cache{frames: make([]Entry, frames), mask: uint32(frames - 1)}
}

// Infinite reports whether this is the ideal never-evicting cache.
func (c *Cache) Infinite() bool { return c.infinite }

// Frames returns the frame count (0 for the infinite cache).
func (c *Cache) Frames() int { return len(c.frames) }

func (c *Cache) frameFor(b addr.BlockNum) *Entry {
	return &c.frames[uint32(b)&c.mask]
}

// Lookup returns the entry for the block if resident.
func (c *Cache) Lookup(b addr.BlockNum) (Entry, bool) {
	if c.infinite {
		if e, ok := c.inf[b]; ok {
			c.hits++
			return *e, true
		}
		c.misses++
		return Entry{}, false
	}
	e := c.frameFor(b)
	if e.State != Invalid && e.Block == b {
		c.hits++
		return *e, true
	}
	c.misses++
	return Entry{}, false
}

// Fill installs the block, returning a displaced valid victim if any.
func (c *Cache) Fill(b addr.BlockNum, st State, dirty bool, ver uint32) (victim Entry, evicted bool) {
	if st == Invalid {
		panic("blockcache: fill with Invalid state")
	}
	if c.infinite {
		c.inf[b] = &Entry{Block: b, State: st, Dirty: dirty, Version: ver}
		return Entry{}, false
	}
	e := c.frameFor(b)
	if e.State != Invalid && e.Block != b {
		victim, evicted = *e, true
	}
	*e = Entry{Block: b, State: st, Dirty: dirty, Version: ver}
	return victim, evicted
}

// Update rewrites state/dirty/version of a resident block (e.g., absorbing
// a processor-cache writeback, or an upgrade). It reports whether the block
// was resident.
func (c *Cache) Update(b addr.BlockNum, st State, dirty bool, ver uint32) bool {
	if c.infinite {
		if e, ok := c.inf[b]; ok {
			e.State, e.Dirty, e.Version = st, dirty, ver
			return true
		}
		return false
	}
	e := c.frameFor(b)
	if e.State != Invalid && e.Block == b {
		e.State, e.Dirty, e.Version = st, dirty, ver
		return true
	}
	return false
}

// Invalidate removes the block if resident, returning its prior content.
func (c *Cache) Invalidate(b addr.BlockNum) (Entry, bool) {
	if c.infinite {
		if e, ok := c.inf[b]; ok {
			old := *e
			delete(c.inf, b)
			return old, true
		}
		return Entry{}, false
	}
	e := c.frameFor(b)
	if e.State != Invalid && e.Block == b {
		old := *e
		e.State = Invalid
		return old, true
	}
	return Entry{}, false
}

// Downgrade moves a resident block to ReadOnly after its dirty data was
// written back home on an inter-node read of an exclusive block. The
// cached copy is refreshed to the written-back version: the node's L1 may
// have held data newer than this cache's frame, and after the downgrade
// this frame is an authoritative clean copy.
func (c *Cache) Downgrade(b addr.BlockNum, version uint32) {
	if c.infinite {
		if e, ok := c.inf[b]; ok {
			e.State, e.Dirty, e.Version = ReadOnly, false, version
		}
		return
	}
	e := c.frameFor(b)
	if e.State != Invalid && e.Block == b {
		e.State, e.Dirty, e.Version = ReadOnly, false, version
	}
}

// PageEntries returns copies of all resident entries belonging to a page
// (for R-NUMA relocation, which moves the node's cached blocks into the
// page cache).
func (c *Cache) PageEntries(g addr.Geometry, p addr.PageNum) []Entry {
	return c.AppendPageEntries(g, p, nil)
}

// AppendPageEntries is PageEntries appending into a caller-supplied
// buffer, so relocation can reuse scratch storage.
func (c *Cache) AppendPageEntries(g addr.Geometry, p addr.PageNum, dst []Entry) []Entry {
	if c.infinite {
		for b, e := range c.inf {
			if g.PageOf(b) == p {
				dst = append(dst, *e)
			}
		}
		return dst
	}
	for i := range c.frames {
		e := &c.frames[i]
		if e.State != Invalid && g.PageOf(e.Block) == p {
			dst = append(dst, *e)
		}
	}
	return dst
}

// InvalidatePage removes all resident blocks of the page.
func (c *Cache) InvalidatePage(g addr.Geometry, p addr.PageNum) {
	if c.infinite {
		for b, e := range c.inf {
			if g.PageOf(b) == p {
				_ = e
				delete(c.inf, b)
			}
		}
		return
	}
	for i := range c.frames {
		e := &c.frames[i]
		if e.State != Invalid && g.PageOf(e.Block) == p {
			e.State = Invalid
		}
	}
}

// Hits and Misses report lookup statistics.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// State returns a deep copy of the cache's contents and statistics
// (snapshot support). For the finite cache the slice is the full frame
// array in index order; for the infinite cache it is the resident entries
// sorted by block number, so snapshot bytes are deterministic.
func (c *Cache) State() (entries []Entry, hits, misses int64) {
	if c.infinite {
		entries = make([]Entry, 0, len(c.inf))
		for _, e := range c.inf {
			entries = append(entries, *e)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Block < entries[j].Block })
		return entries, c.hits, c.misses
	}
	entries = make([]Entry, len(c.frames))
	copy(entries, c.frames)
	return entries, c.hits, c.misses
}

// SetState replaces the cache's contents and statistics (snapshot
// restore).
func (c *Cache) SetState(entries []Entry, hits, misses int64) error {
	if c.infinite {
		inf := make(map[addr.BlockNum]*Entry, len(entries))
		for _, e := range entries {
			if e.State == Invalid {
				return fmt.Errorf("blockcache: invalid entry for block %d in infinite-cache snapshot", e.Block)
			}
			if _, dup := inf[e.Block]; dup {
				return fmt.Errorf("blockcache: duplicate entry for block %d", e.Block)
			}
			ec := e
			inf[e.Block] = &ec
		}
		c.inf = inf
		c.hits, c.misses = hits, misses
		return nil
	}
	if len(entries) != len(c.frames) {
		return fmt.Errorf("blockcache: snapshot has %d frames, cache has %d", len(entries), len(c.frames))
	}
	copy(c.frames, entries)
	c.hits, c.misses = hits, misses
	return nil
}
