package blockcache

import (
	"testing"

	"rnuma/internal/addr"
)

func TestFillLookupEvict(t *testing.T) {
	c := New(4) // the R-NUMA base: 128 bytes = 4 frames
	if c.Infinite() {
		t.Fatal("4-frame cache reported infinite")
	}
	if c.Frames() != 4 {
		t.Fatalf("frames = %d", c.Frames())
	}
	b := addr.BlockNum(10)
	if _, ok := c.Lookup(b); ok {
		t.Fatal("empty cache hit")
	}
	c.Fill(b, ReadOnly, false, 3)
	e, ok := c.Lookup(b)
	if !ok || e.State != ReadOnly || e.Version != 3 {
		t.Errorf("lookup = %+v, %v", e, ok)
	}
	// Conflicting fill (same frame: 10 % 4 == 14 % 4).
	victim, ev := c.Fill(addr.BlockNum(14), ReadWrite, true, 9)
	if !ev || victim.Block != b {
		t.Errorf("victim = %+v, evicted=%v", victim, ev)
	}
	if _, ok := c.Lookup(b); ok {
		t.Error("evicted block still resident")
	}
}

func TestUpdate(t *testing.T) {
	c := New(8)
	b := addr.BlockNum(5)
	if c.Update(b, ReadWrite, true, 1) {
		t.Error("update of absent block should fail")
	}
	c.Fill(b, ReadOnly, false, 1)
	if !c.Update(b, ReadWrite, true, 2) {
		t.Error("update of resident block should succeed")
	}
	e, _ := c.Lookup(b)
	if e.State != ReadWrite || !e.Dirty || e.Version != 2 {
		t.Errorf("after update: %+v", e)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := New(8)
	b := addr.BlockNum(2)
	c.Fill(b, ReadWrite, true, 5)
	c.Downgrade(b, 8) // the node's L1 held newer data (version 8)
	e, _ := c.Lookup(b)
	if e.State != ReadOnly || e.Dirty || e.Version != 8 {
		t.Errorf("after downgrade: %+v", e)
	}
	old, found := c.Invalidate(b)
	if !found || old.Block != b {
		t.Errorf("invalidate = %+v, %v", old, found)
	}
	if _, ok := c.Lookup(b); ok {
		t.Error("block resident after invalidate")
	}
	if _, found := c.Invalidate(b); found {
		t.Error("double invalidate found the block")
	}
}

func TestInfiniteNeverEvicts(t *testing.T) {
	c := New(-1)
	if !c.Infinite() {
		t.Fatal("not infinite")
	}
	for i := 0; i < 10000; i++ {
		if _, ev := c.Fill(addr.BlockNum(i), ReadOnly, false, uint32(i)); ev {
			t.Fatal("infinite cache evicted")
		}
	}
	for i := 0; i < 10000; i++ {
		e, ok := c.Lookup(addr.BlockNum(i))
		if !ok || e.Version != uint32(i) {
			t.Fatalf("block %d lost from infinite cache", i)
		}
	}
}

func TestInfiniteUpdateInvalidate(t *testing.T) {
	c := New(-1)
	b := addr.BlockNum(42)
	c.Fill(b, ReadOnly, false, 1)
	if !c.Update(b, ReadWrite, true, 2) {
		t.Error("infinite update failed")
	}
	c.Downgrade(b, 3)
	if e, _ := c.Lookup(b); e.State != ReadOnly || e.Version != 3 {
		t.Error("infinite downgrade failed")
	}
	if _, found := c.Invalidate(b); !found {
		t.Error("infinite invalidate failed")
	}
	if _, ok := c.Lookup(b); ok {
		t.Error("block survived invalidate")
	}
}

func TestPageEntriesAndInvalidatePage(t *testing.T) {
	g := addr.Default
	c := New(1024) // the CC-NUMA base: 32 KB
	page := addr.PageNum(2)
	for off := 0; off < 6; off++ {
		c.Fill(g.BlockOf(page, off), ReadWrite, true, uint32(off))
	}
	other := g.BlockOf(addr.PageNum(5), 1)
	c.Fill(other, ReadOnly, false, 9)
	got := c.PageEntries(g, page)
	if len(got) != 6 {
		t.Fatalf("PageEntries = %d, want 6", len(got))
	}
	c.InvalidatePage(g, page)
	if len(c.PageEntries(g, page)) != 0 {
		t.Error("page entries survive InvalidatePage")
	}
	if _, ok := c.Lookup(other); !ok {
		t.Error("InvalidatePage disturbed another page")
	}
}

func TestPageEntriesInfinite(t *testing.T) {
	g := addr.Default
	c := New(-1)
	page := addr.PageNum(7)
	for off := 0; off < 3; off++ {
		c.Fill(g.BlockOf(page, off), ReadOnly, false, 0)
	}
	if got := c.PageEntries(g, page); len(got) != 3 {
		t.Errorf("infinite PageEntries = %d, want 3", len(got))
	}
	c.InvalidatePage(g, page)
	if got := c.PageEntries(g, page); len(got) != 0 {
		t.Error("infinite InvalidatePage failed")
	}
}

func TestFillInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fill with Invalid state should panic")
		}
	}()
	New(4).Fill(addr.BlockNum(0), Invalid, false, 0)
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Invalid, ReadOnly, ReadWrite} {
		if s.String() == "?" {
			t.Errorf("state %d lacks a name", s)
		}
	}
}

func TestStats(t *testing.T) {
	c := New(4)
	c.Lookup(addr.BlockNum(1))
	c.Fill(addr.BlockNum(1), ReadOnly, false, 0)
	c.Lookup(addr.BlockNum(1))
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}
