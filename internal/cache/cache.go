// Package cache models the per-CPU direct-mapped writeback data caches of
// the simulated SMP nodes, with MOESI-style states (Modified, Owned,
// Shared, Invalid; Exclusive is folded into Modified-on-write as in the
// paper's MBus-like protocol, which supplies cache-to-cache data only for
// owned blocks).
//
// Lines are indexed by an externally supplied index key because the
// physical address a CPU uses depends on the page's mapping: CC-NUMA pages
// index by global physical address, S-COMA pages by their page-cache frame
// address. All CPUs of a node share one mapping, so a node computes the
// index once and applies it to every peer cache during snooping.
package cache

import (
	"fmt"

	"rnuma/internal/addr"
)

// State is a cache line's MOESI-style state.
type State uint8

const (
	// Invalid: the line holds no block.
	Invalid State = iota
	// Shared: clean, possibly held by other caches.
	Shared
	// Owned: dirty but shared within the node; this cache supplies
	// cache-to-cache transfers and writes back on eviction.
	Owned
	// Modified: dirty and exclusive within the node.
	Modified
)

// Dirty reports whether the state obliges a writeback on eviction.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// Valid reports whether the line holds data.
func (s State) Valid() bool { return s != Invalid }

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return "?"
}

// Line is one direct-mapped cache line.
type Line struct {
	Block   addr.BlockNum
	State   State
	Version uint32
}

// L1 is a direct-mapped writeback data cache.
type L1 struct {
	lines []Line
	mask  uint32

	hits   int64
	misses int64
}

// New builds an L1 of the given total size and block size (both bytes,
// both powers of two).
func New(bytes, blockBytes int) *L1 {
	n := bytes / blockBytes
	if n < 1 {
		n = 1
	}
	return &L1{lines: make([]Line, n), mask: uint32(n - 1)}
}

// Lines returns the number of lines.
func (c *L1) Lines() int { return len(c.lines) }

// Index maps an index key (a physical block address) to a set index.
func (c *L1) Index(key uint32) int { return int(key & c.mask) }

// Lookup returns the line's state and version if the block is resident at
// the given index, or Invalid otherwise.
func (c *L1) Lookup(idx int, b addr.BlockNum) (State, uint32) {
	ln := &c.lines[idx]
	if ln.State != Invalid && ln.Block == b {
		c.hits++
		return ln.State, ln.Version
	}
	c.misses++
	return Invalid, 0
}

// Probe is Lookup without touching hit/miss statistics (used by snooping).
func (c *L1) Probe(idx int, b addr.BlockNum) (State, uint32) {
	ln := &c.lines[idx]
	if ln.State != Invalid && ln.Block == b {
		return ln.State, ln.Version
	}
	return Invalid, 0
}

// Fill installs a block at idx with the given state and version, returning
// the victim line if a valid different block was displaced.
func (c *L1) Fill(idx int, b addr.BlockNum, st State, ver uint32) (victim Line, evicted bool) {
	ln := &c.lines[idx]
	if ln.State != Invalid && ln.Block != b {
		victim, evicted = *ln, true
	}
	ln.Block = b
	ln.State = st
	ln.Version = ver
	return victim, evicted
}

// SetState rewrites the state of a resident block; it is a no-op if the
// block is not resident at idx.
func (c *L1) SetState(idx int, b addr.BlockNum, st State) {
	ln := &c.lines[idx]
	if ln.State != Invalid && ln.Block == b {
		ln.State = st
	}
}

// SetVersion updates the version of a resident block (a write hit).
func (c *L1) SetVersion(idx int, b addr.BlockNum, ver uint32) {
	ln := &c.lines[idx]
	if ln.State != Invalid && ln.Block == b {
		ln.Version = ver
	}
}

// Invalidate removes the block if resident at idx, returning its prior
// line content.
func (c *L1) Invalidate(idx int, b addr.BlockNum) (Line, bool) {
	ln := &c.lines[idx]
	if ln.State != Invalid && ln.Block == b {
		old := *ln
		ln.State = Invalid
		return old, true
	}
	return Line{}, false
}

// FindPage scans for resident blocks of the given page and returns copies
// of their lines (used for page flushes, where the mapping — and hence the
// index key — is being destroyed).
func (c *L1) FindPage(g addr.Geometry, p addr.PageNum) []Line {
	return c.AppendFindPage(g, p, nil)
}

// AppendFindPage is FindPage appending into a caller-supplied buffer, so
// page operations on the simulator's hot path can reuse scratch storage.
func (c *L1) AppendFindPage(g addr.Geometry, p addr.PageNum, dst []Line) []Line {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.State != Invalid && g.PageOf(ln.Block) == p {
			dst = append(dst, *ln)
		}
	}
	return dst
}

// InvalidatePage removes all resident blocks of the page.
func (c *L1) InvalidatePage(g addr.Geometry, p addr.PageNum) {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.State != Invalid && g.PageOf(ln.Block) == p {
			ln.State = Invalid
		}
	}
}

// Hits and Misses report the lookup statistics.
func (c *L1) Hits() int64   { return c.hits }
func (c *L1) Misses() int64 { return c.misses }

// Reset clears all lines and statistics.
func (c *L1) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	c.hits, c.misses = 0, 0
}

// Snapshot returns a deep copy of the cache's lines and statistics
// (snapshot support).
func (c *L1) Snapshot() (lines []Line, hits, misses int64) {
	lines = make([]Line, len(c.lines))
	copy(lines, c.lines)
	return lines, c.hits, c.misses
}

// SetSnapshot replaces the cache's lines and statistics (snapshot
// restore).
func (c *L1) SetSnapshot(lines []Line, hits, misses int64) error {
	if len(lines) != len(c.lines) {
		return fmt.Errorf("cache: snapshot has %d lines, cache has %d", len(lines), len(c.lines))
	}
	copy(c.lines, lines)
	c.hits, c.misses = hits, misses
	return nil
}
