package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnuma/internal/addr"
)

func newTest() *L1 { return New(8<<10, 32) } // paper base: 8-KB, 32-B blocks

func TestSizing(t *testing.T) {
	c := newTest()
	if c.Lines() != 256 {
		t.Errorf("8K/32B = %d lines, want 256", c.Lines())
	}
}

func TestFillLookup(t *testing.T) {
	c := newTest()
	b := addr.BlockNum(1000)
	idx := c.Index(uint32(b))
	if st, _ := c.Lookup(idx, b); st != Invalid {
		t.Fatal("empty cache should miss")
	}
	c.Fill(idx, b, Shared, 7)
	st, ver := c.Lookup(idx, b)
	if st != Shared || ver != 7 {
		t.Errorf("lookup = (%v,%d), want (S,7)", st, ver)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := newTest()
	a := addr.BlockNum(5)
	b := addr.BlockNum(5 + 256) // same set in a 256-line direct-mapped cache
	idx := c.Index(uint32(a))
	if idx != c.Index(uint32(b)) {
		t.Fatal("test blocks should conflict")
	}
	c.Fill(idx, a, Modified, 1)
	victim, ev := c.Fill(idx, b, Shared, 2)
	if !ev {
		t.Fatal("conflicting fill should evict")
	}
	if victim.Block != a || victim.State != Modified || victim.Version != 1 {
		t.Errorf("victim = %+v", victim)
	}
	if st, _ := c.Lookup(idx, a); st != Invalid {
		t.Error("evicted block still resident")
	}
}

func TestFillSameBlockNoEviction(t *testing.T) {
	c := newTest()
	b := addr.BlockNum(9)
	idx := c.Index(uint32(b))
	c.Fill(idx, b, Shared, 1)
	if _, ev := c.Fill(idx, b, Modified, 2); ev {
		t.Error("refilling the same block must not report an eviction")
	}
	st, ver := c.Lookup(idx, b)
	if st != Modified || ver != 2 {
		t.Errorf("after refill: (%v,%d)", st, ver)
	}
}

func TestInvalidate(t *testing.T) {
	c := newTest()
	b := addr.BlockNum(3)
	idx := c.Index(uint32(b))
	c.Fill(idx, b, Owned, 4)
	old, found := c.Invalidate(idx, b)
	if !found || old.State != Owned || old.Version != 4 {
		t.Errorf("invalidate = (%+v,%v)", old, found)
	}
	if _, found := c.Invalidate(idx, b); found {
		t.Error("double invalidate should not find the block")
	}
	// Invalidate of a different block at the same index is a no-op.
	c.Fill(idx, b, Shared, 1)
	if _, found := c.Invalidate(idx, b+256); found {
		t.Error("invalidate must match the block identity")
	}
}

func TestSetStateAndVersion(t *testing.T) {
	c := newTest()
	b := addr.BlockNum(77)
	idx := c.Index(uint32(b))
	c.Fill(idx, b, Modified, 1)
	c.SetState(idx, b, Shared)
	c.SetVersion(idx, b, 9)
	st, ver := c.Probe(idx, b)
	if st != Shared || ver != 9 {
		t.Errorf("after set: (%v,%d)", st, ver)
	}
	// No-ops on absent blocks.
	c.SetState(idx, b+256, Modified)
	c.SetVersion(idx, b+256, 5)
	if st, _ := c.Probe(idx, b); st != Shared {
		t.Error("setting an absent block must not disturb the resident one")
	}
}

func TestStateDirtyValid(t *testing.T) {
	if Invalid.Dirty() || Shared.Dirty() || !Owned.Dirty() || !Modified.Dirty() {
		t.Error("dirty states are O and M")
	}
	if Invalid.Valid() || !Shared.Valid() || !Owned.Valid() || !Modified.Valid() {
		t.Error("valid states are S, O, M")
	}
	for _, s := range []State{Invalid, Shared, Owned, Modified} {
		if s.String() == "?" {
			t.Errorf("state %d lacks a name", s)
		}
	}
}

func TestFindPageAndInvalidatePage(t *testing.T) {
	g := addr.Default
	c := newTest()
	page := addr.PageNum(3)
	for off := 0; off < 5; off++ {
		b := g.BlockOf(page, off)
		c.Fill(c.Index(uint32(b)), b, Shared, uint32(off))
	}
	other := g.BlockOf(addr.PageNum(8), 0) // page 8 block 0 -> index 0, clear of page 3's lines
	c.Fill(c.Index(uint32(other)), other, Modified, 99)
	lines := c.FindPage(g, page)
	if len(lines) != 5 {
		t.Fatalf("FindPage = %d lines, want 5", len(lines))
	}
	c.InvalidatePage(g, page)
	if got := c.FindPage(g, page); len(got) != 0 {
		t.Errorf("page still resident after InvalidatePage: %d lines", len(got))
	}
	if st, _ := c.Probe(c.Index(uint32(other)), other); st != Modified {
		t.Error("InvalidatePage must not disturb other pages")
	}
}

func TestProbeDoesNotCountStats(t *testing.T) {
	c := newTest()
	b := addr.BlockNum(1)
	idx := c.Index(uint32(b))
	c.Probe(idx, b)
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("probe must not touch statistics")
	}
}

func TestReset(t *testing.T) {
	c := newTest()
	b := addr.BlockNum(1)
	idx := c.Index(uint32(b))
	c.Fill(idx, b, Shared, 1)
	c.Lookup(idx, b)
	c.Reset()
	if st, _ := c.Probe(idx, b); st != Invalid {
		t.Error("reset should invalidate lines")
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("reset should clear statistics")
	}
}

// TestIndexCoversAllLines: the index function maps the key space uniformly
// onto all lines.
func TestIndexCoversAllLines(t *testing.T) {
	c := newTest()
	seen := make(map[int]bool)
	for k := uint32(0); k < 1024; k++ {
		seen[c.Index(k)] = true
	}
	if len(seen) != c.Lines() {
		t.Errorf("index covered %d lines, want %d", len(seen), c.Lines())
	}
}

// TestSingleResidencyProperty: after any sequence of fills and
// invalidations, a block is resident in at most one line, and every
// lookup result matches the last fill of that block.
func TestSingleResidencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(1<<10, 32) // 32 lines
		last := make(map[addr.BlockNum]uint32)
		resident := make(map[addr.BlockNum]bool)
		for op := 0; op < 500; op++ {
			b := addr.BlockNum(rng.Intn(128))
			idx := c.Index(uint32(b))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint32()
				victim, ev := c.Fill(idx, b, Shared, v)
				if ev {
					delete(resident, victim.Block)
				}
				last[b] = v
				resident[b] = true
			case 1:
				if _, found := c.Invalidate(idx, b); found {
					delete(resident, b)
				}
			case 2:
				st, ver := c.Probe(idx, b)
				if resident[b] {
					if st == Invalid || ver != last[b] {
						return false
					}
				} else if st != Invalid {
					return false
				}
			}
		}
		// Count residency by scanning all indices.
		count := make(map[addr.BlockNum]int)
		for k := 0; k < 32; k++ {
			for b := range resident {
				if st, _ := c.Probe(k, b); st != Invalid {
					count[b]++
				}
			}
		}
		for b, n := range count {
			if n > 1 {
				_ = b
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
