// Package config holds the machine geometry and the cost parameters of the
// paper's Table 2, plus the per-experiment configurations used in Section 5.
//
// All costs are in 400-MHz processor cycles, as in the paper.
package config

import (
	"fmt"
	"strings"

	"rnuma/internal/addr"
	"rnuma/internal/pagecache"
)

// Protocol selects which remote-caching design a run simulates.
type Protocol int

const (
	// CCNUMA caches remote data in the node's cache hierarchy and a
	// per-node SRAM block cache (paper Section 2.1).
	CCNUMA Protocol = iota
	// SCOMA caches remote data at page granularity in a main-memory page
	// cache guarded by fine-grain access-control tags (paper Section 2.2).
	SCOMA
	// RNUMA starts every remote page as CC-NUMA and reactively relocates
	// pages with many capacity/conflict refetches into the S-COMA page
	// cache (paper Section 3, the contribution).
	RNUMA
)

// String names the protocol as the paper spells it.
func (p Protocol) String() string {
	switch p {
	case CCNUMA:
		return "CC-NUMA"
	case SCOMA:
		return "S-COMA"
	case RNUMA:
		return "R-NUMA"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Costs are the block- and page-operation costs of Table 2 plus the
// occupancy parameters the paper models contention with but does not
// tabulate (bus, network interface, and protocol-controller occupancies).
type Costs struct {
	// Block operations (Table 2).
	SRAMAccess  int64 // block cache, fine-grain tags, translation table, counters
	DRAMAccess  int64 // page cache / main memory array access
	LocalFill   int64 // L1 fill from node memory (includes the DRAM access)
	RemoteFetch int64 // end-to-end remote block fetch (2 network hops + service)

	// Page operations (Table 2). PageOpBase..PageOpBase+PageOpPerBlock*BlocksPerPage
	// spans the paper's 3000~11500 range: the base covers the soft trap,
	// TLB invalidation and bookkeeping, and each flushed block adds a
	// writeback's worth of work.
	SoftTrap       int64 // page fault or relocation interrupt entry/exit
	TLBShootdown   int64 // invalidate local TLBs
	PageOpFixed    int64 // bookkeeping beyond trap+shootdown (base = trap+shootdown+fixed)
	PageOpPerBlock int64 // extra cycles per block flushed back to home

	// Latency adders for directory actions beyond the flat RemoteFetch.
	ThreeHopExtra int64 // dirty block forwarded from a third-node owner
	InvalExtra    int64 // write to a block with remote sharers (ack collection)

	// Occupancies for contention modeling (held, not latency by themselves).
	BusOccupancy int64 // node memory bus per block transaction
	NIOccupancy  int64 // network interface per message
	RADOccupancy int64 // protocol controller per remote transaction

	// Network one-way latency (the paper's constant 100 cycles).
	NetLatency int64

	// L1 behavior.
	L1HitCycles int64 // load-to-use on an L1 hit
}

// BlockCacheHit returns the cycles to service an L1 fill from the SRAM
// block cache: the SRAM lookup replaces the DRAM access in a local fill.
func (c Costs) BlockCacheHit() int64 { return c.SRAMAccess + c.LocalFill - c.DRAMAccess }

// PageOpBase returns the minimum cost of a page allocation/replacement or
// relocation (no blocks flushed): trap + shootdown + fixed bookkeeping.
func (c Costs) PageOpBase() int64 { return c.SoftTrap + c.TLBShootdown + c.PageOpFixed }

// PageOpCost returns the full cost of allocating/replacing or relocating a
// page when `flushed` blocks must be written back or moved.
func (c Costs) PageOpCost(flushed int) int64 {
	return c.PageOpBase() + c.PageOpPerBlock*int64(flushed)
}

// BaseCosts returns the paper's base system assumptions (Table 2): 5-µs
// page fault handling and 0.5-µs hardware TLB invalidation at 400 MHz.
func BaseCosts() Costs {
	return Costs{
		SRAMAccess:     8,
		DRAMAccess:     56,
		LocalFill:      69,
		RemoteFetch:    376,
		SoftTrap:       2000, // 5 µs @ 400 MHz
		TLBShootdown:   200,  // 0.5 µs
		PageOpFixed:    800,  // base 3000 total, matching Table 2's lower bound
		PageOpPerBlock: 66,   // 128 blocks/page -> ~11450, Table 2's upper bound
		ThreeHopExtra:  145,
		InvalExtra:     100,
		BusOccupancy:   12, // 3 bus cycles at the 4:1 CPU:bus clock ratio
		NIOccupancy:    20,
		RADOccupancy:   26,
		NetLatency:     100,
		L1HitCycles:    1,
	}
}

// SoftCosts returns the Figure-9 "SOFT" variant: 10-µs page faults and 5-µs
// software TLB invalidation via inter-processor interrupts, making per-page
// overheads roughly three times higher.
func SoftCosts() Costs {
	c := BaseCosts()
	c.SoftTrap = 4000     // 10 µs
	c.TLBShootdown = 2000 // 5 µs
	return c
}

// System describes one simulated machine configuration.
type System struct {
	Name     string
	Protocol Protocol
	Geometry addr.Geometry
	Costs    Costs

	Nodes       int // SMP nodes in the machine
	CPUsPerNode int // processors per node

	L1Bytes int // per-CPU data cache (direct-mapped)

	// BlockCacheBytes sizes the CC-NUMA/R-NUMA SRAM block cache
	// (direct-mapped, writeback). Zero means the protocol has none
	// (pure S-COMA); InfiniteBlockCache models the paper's ideal machine.
	BlockCacheBytes int

	// PageCacheBytes sizes the S-COMA/R-NUMA main-memory page cache.
	PageCacheBytes int

	// Threshold is R-NUMA's relocation threshold T (refetches per page
	// before the OS relocates the page to the page cache).
	Threshold int

	// DemotionThreshold, when positive, enables the reverse-adaptation
	// extension: an S-COMA page that takes this many consecutive remote
	// (coherence) misses without a single page-cache hit is demoted back
	// to CC-NUMA, freeing its frame. The paper's base design realizes the
	// "reuse page becomes communication page" direction only through LRM
	// replacement; explicit demotion reclaims frames from communication
	// pages that keep missing (and so keep looking fresh to LRM). Zero
	// disables demotion (the paper's design).
	DemotionThreshold int

	// PageReplacement selects the page-cache replacement policy: the
	// paper's Least Recently Missed, or conventional LRU for the
	// replacement-policy ablation.
	PageReplacement pagecache.Policy

	// FirstTouch enables the first-touch page migration directive of
	// Section 2.1: the first node to request a page becomes its home.
	FirstTouch bool
}

// InfiniteBlockCache makes the block cache large enough to hold all remote
// data, modeling the paper's normalization baseline ("ideal" CC-NUMA).
const InfiniteBlockCache = -1

// Base returns the paper's base configuration for the given protocol
// (Section 4): 8 nodes x 4 CPUs, 8-KB L1s, 32-KB CC-NUMA block cache,
// 320-KB page cache, 128-byte R-NUMA block cache, threshold 64.
func Base(p Protocol) System {
	s := System{
		Name:        p.String(),
		Protocol:    p,
		Geometry:    addr.Default,
		Costs:       BaseCosts(),
		Nodes:       8,
		CPUsPerNode: 4,
		L1Bytes:     8 << 10,
		Threshold:   64,
		FirstTouch:  true,
	}
	switch p {
	case CCNUMA:
		s.BlockCacheBytes = 32 << 10
	case SCOMA:
		s.PageCacheBytes = 320 << 10
	case RNUMA:
		s.BlockCacheBytes = 128
		s.PageCacheBytes = 320 << 10
	}
	return s
}

// Ideal returns the normalization baseline used by every figure: a CC-NUMA
// machine whose block cache holds all referenced remote data.
func Ideal() System {
	s := Base(CCNUMA)
	s.Name = "CC-NUMA (infinite block cache)"
	s.BlockCacheBytes = InfiniteBlockCache
	return s
}

// SystemByName resolves a CLI protocol spelling to its base system — the
// one place every tool's -protocol flag goes through, so all CLIs accept
// the same aliases. "ideal" names the normalization baseline.
func SystemByName(name string) (System, error) {
	switch strings.ToLower(name) {
	case "ccnuma", "cc-numa", "cc":
		return Base(CCNUMA), nil
	case "scoma", "s-coma", "sc":
		return Base(SCOMA), nil
	case "rnuma", "r-numa", "r":
		return Base(RNUMA), nil
	case "ideal":
		return Ideal(), nil
	}
	return System{}, fmt.Errorf("config: unknown protocol %q (want ccnuma, scoma, rnuma, or ideal)", name)
}

// Validate reports configuration errors before a run.
func (s System) Validate() error {
	if err := s.Geometry.Validate(); err != nil {
		return err
	}
	if s.Nodes < 1 || s.Nodes > 32 {
		return fmt.Errorf("config: %d nodes out of range [1,32]", s.Nodes)
	}
	if s.CPUsPerNode < 1 || s.CPUsPerNode > 16 {
		return fmt.Errorf("config: %d CPUs/node out of range [1,16]", s.CPUsPerNode)
	}
	if s.L1Bytes < s.Geometry.BlockBytes() {
		return fmt.Errorf("config: L1 (%d B) smaller than a block", s.L1Bytes)
	}
	if s.L1Bytes&(s.L1Bytes-1) != 0 {
		return fmt.Errorf("config: L1 size %d not a power of two", s.L1Bytes)
	}
	switch s.Protocol {
	case CCNUMA:
		if s.BlockCacheBytes == 0 {
			return fmt.Errorf("config: CC-NUMA requires a block cache")
		}
	case SCOMA:
		if s.PageCacheBytes < s.Geometry.PageBytes() {
			return fmt.Errorf("config: S-COMA page cache (%d B) smaller than a page", s.PageCacheBytes)
		}
	case RNUMA:
		if s.BlockCacheBytes == 0 || s.PageCacheBytes < s.Geometry.PageBytes() {
			return fmt.Errorf("config: R-NUMA requires both a block cache and a page cache")
		}
		if s.Threshold < 1 {
			return fmt.Errorf("config: R-NUMA threshold %d must be >= 1", s.Threshold)
		}
	default:
		return fmt.Errorf("config: unknown protocol %d", s.Protocol)
	}
	if s.BlockCacheBytes > 0 && s.BlockCacheBytes%s.Geometry.BlockBytes() != 0 {
		return fmt.Errorf("config: block cache %d B not a multiple of the block size", s.BlockCacheBytes)
	}
	if s.PageCacheBytes > 0 && s.PageCacheBytes%s.Geometry.PageBytes() != 0 {
		return fmt.Errorf("config: page cache %d B not a multiple of the page size", s.PageCacheBytes)
	}
	return nil
}

// TotalCPUs returns the machine's processor count.
func (s System) TotalCPUs() int { return s.Nodes * s.CPUsPerNode }

// BlockCacheBlocks returns the number of block-cache frames, or -1 for the
// infinite (ideal) cache.
func (s System) BlockCacheBlocks() int {
	if s.BlockCacheBytes == InfiniteBlockCache {
		return -1
	}
	return s.BlockCacheBytes / s.Geometry.BlockBytes()
}

// PageCacheFrames returns the number of page-cache frames.
func (s System) PageCacheFrames() int { return s.PageCacheBytes / s.Geometry.PageBytes() }
