package config

import (
	"testing"

	"rnuma/internal/addr"
)

// TestTable2Costs pins the base costs to the paper's Table 2.
func TestTable2Costs(t *testing.T) {
	c := BaseCosts()
	if c.SRAMAccess != 8 {
		t.Errorf("SRAM access = %d, want 8", c.SRAMAccess)
	}
	if c.DRAMAccess != 56 {
		t.Errorf("DRAM access = %d, want 56", c.DRAMAccess)
	}
	if c.LocalFill != 69 {
		t.Errorf("local cache fill = %d, want 69", c.LocalFill)
	}
	if c.RemoteFetch != 376 {
		t.Errorf("remote fetch = %d, want 376", c.RemoteFetch)
	}
	if c.SoftTrap != 2000 {
		t.Errorf("soft trap = %d, want 2000", c.SoftTrap)
	}
	if c.TLBShootdown != 200 {
		t.Errorf("TLB shootdown = %d, want 200", c.TLBShootdown)
	}
}

// TestPageOpRange checks the allocation/replacement cost spans the paper's
// 3000~11500 range across 0..128 flushed blocks.
func TestPageOpRange(t *testing.T) {
	c := BaseCosts()
	if got := c.PageOpCost(0); got != 3000 {
		t.Errorf("page op with 0 flushed = %d, want 3000", got)
	}
	max := c.PageOpCost(addr.Default.BlocksPerPage())
	if max < 11000 || max > 11500 {
		t.Errorf("page op with 128 flushed = %d, want ~11500", max)
	}
}

// TestSoftCosts checks the Figure-9 slow-system variant: 10-µs traps and
// 5-µs software shootdowns, i.e., roughly 3x the base per-page overhead.
func TestSoftCosts(t *testing.T) {
	b, s := BaseCosts(), SoftCosts()
	if s.SoftTrap != 2*b.SoftTrap {
		t.Errorf("soft trap = %d, want %d", s.SoftTrap, 2*b.SoftTrap)
	}
	if s.TLBShootdown != 10*b.TLBShootdown {
		t.Errorf("soft shootdown = %d, want %d", s.TLBShootdown, 10*b.TLBShootdown)
	}
	ratio := float64(s.PageOpBase()) / float64(b.PageOpBase())
	if ratio < 2.0 || ratio > 3.2 {
		t.Errorf("per-page overhead ratio = %.2f, want approximately 3", ratio)
	}
	// Block costs unchanged.
	if s.RemoteFetch != b.RemoteFetch || s.LocalFill != b.LocalFill {
		t.Error("SOFT variant must not change block operation costs")
	}
}

func TestBlockCacheHitCost(t *testing.T) {
	c := BaseCosts()
	// SRAM lookup replaces the DRAM access in a local fill: 8 + 69 - 56.
	if got := c.BlockCacheHit(); got != 21 {
		t.Errorf("block cache hit = %d, want 21", got)
	}
}

// TestBaseConfigs pins the Section-4 base machine for each protocol.
func TestBaseConfigs(t *testing.T) {
	cc := Base(CCNUMA)
	if cc.BlockCacheBytes != 32<<10 || cc.PageCacheBytes != 0 {
		t.Errorf("CC-NUMA base: bc=%d pc=%d", cc.BlockCacheBytes, cc.PageCacheBytes)
	}
	sc := Base(SCOMA)
	if sc.PageCacheBytes != 320<<10 || sc.BlockCacheBytes != 0 {
		t.Errorf("S-COMA base: bc=%d pc=%d", sc.BlockCacheBytes, sc.PageCacheBytes)
	}
	rn := Base(RNUMA)
	if rn.BlockCacheBytes != 128 || rn.PageCacheBytes != 320<<10 || rn.Threshold != 64 {
		t.Errorf("R-NUMA base: bc=%d pc=%d T=%d", rn.BlockCacheBytes, rn.PageCacheBytes, rn.Threshold)
	}
	for _, s := range []System{cc, sc, rn, Ideal()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Nodes != 8 || s.CPUsPerNode != 4 {
			t.Errorf("%s: %dx%d machine, want 8x4", s.Name, s.Nodes, s.CPUsPerNode)
		}
		if s.L1Bytes != 8<<10 {
			t.Errorf("%s: L1=%d, want 8K", s.Name, s.L1Bytes)
		}
	}
	// The page cache is a factor of 10 larger than the CC-NUMA block cache.
	if sc.PageCacheBytes != 10*cc.BlockCacheBytes {
		t.Errorf("page cache %d not 10x block cache %d", sc.PageCacheBytes, cc.BlockCacheBytes)
	}
}

func TestDerivedSizes(t *testing.T) {
	cc := Base(CCNUMA)
	if got := cc.BlockCacheBlocks(); got != 1024 {
		t.Errorf("32-KB block cache = %d blocks, want 1024", got)
	}
	sc := Base(SCOMA)
	if got := sc.PageCacheFrames(); got != 80 {
		t.Errorf("320-KB page cache = %d frames, want 80", got)
	}
	rn := Base(RNUMA)
	if got := rn.BlockCacheBlocks(); got != 4 {
		t.Errorf("128-B block cache = %d blocks, want 4", got)
	}
	if Ideal().BlockCacheBlocks() != -1 {
		t.Error("ideal machine should report an infinite block cache")
	}
	if cc.TotalCPUs() != 32 {
		t.Errorf("total CPUs = %d, want 32", cc.TotalCPUs())
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*System){
		func(s *System) { s.Nodes = 0 },
		func(s *System) { s.Nodes = 33 },
		func(s *System) { s.CPUsPerNode = 0 },
		func(s *System) { s.L1Bytes = 16 },
		func(s *System) { s.L1Bytes = 3000 },
		func(s *System) { s.BlockCacheBytes = 0 },
		func(s *System) { s.BlockCacheBytes = 100 },
	}
	for i, mutate := range cases {
		s := Base(CCNUMA)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	r := Base(RNUMA)
	r.Threshold = 0
	if err := r.Validate(); err == nil {
		t.Error("R-NUMA with threshold 0 should be invalid")
	}
	sc := Base(SCOMA)
	sc.PageCacheBytes = 100
	if err := sc.Validate(); err == nil {
		t.Error("S-COMA with sub-page page cache should be invalid")
	}
}

func TestProtocolString(t *testing.T) {
	if CCNUMA.String() != "CC-NUMA" || SCOMA.String() != "S-COMA" || RNUMA.String() != "R-NUMA" {
		t.Error("protocol names must match the paper")
	}
	if Protocol(9).String() == "" {
		t.Error("unknown protocol should still render")
	}
}

func TestSystemByName(t *testing.T) {
	for name, want := range map[string]Protocol{
		"ccnuma": CCNUMA, "CC-NUMA": CCNUMA, "cc": CCNUMA,
		"scoma": SCOMA, "s-coma": SCOMA, "sc": SCOMA,
		"rnuma": RNUMA, "R-numa": RNUMA, "r": RNUMA,
	} {
		sys, err := SystemByName(name)
		if err != nil || sys.Protocol != want {
			t.Errorf("SystemByName(%q) = %v protocol %v, want %v", name, err, sys.Protocol, want)
		}
	}
	if sys, err := SystemByName("ideal"); err != nil || sys.BlockCacheBytes != InfiniteBlockCache {
		t.Errorf("SystemByName(ideal) = %+v, %v", sys, err)
	}
	if _, err := SystemByName("doom"); err == nil {
		t.Error("unknown protocol accepted")
	}
}
