// Package core implements the paper's primary contribution: the R-NUMA
// reactive machinery (Section 3.1). Each node's remote access device keeps
// a per-page refetch counter; when a page's count of capacity/conflict
// refetches crosses the relocation threshold, the device raises an
// interrupt and the operating system relocates the page from CC-NUMA to
// the S-COMA page cache.
package core

import (
	"rnuma/internal/addr"
	"rnuma/internal/dense"
)

// Counters is the per-node set of per-page refetch counters. Counts live
// in a dense page-indexed slice: the counters sit on the simulator's
// per-remote-fetch path, where map hashing cost and per-entry allocation
// showed up in profiles.
type Counters struct {
	threshold uint32
	counts    []uint32 // page-indexed; 0 = no refetches recorded
	nonzero   int      // pages with a nonzero count

	crossings int64
	total     int64
}

// NewCounters builds a counter set with the given relocation threshold.
// A page is selected for relocation when it accumulates `threshold`
// refetches (paper: "a page is selected for relocation when it incurs 64
// capacity or conflict misses in the block cache").
func NewCounters(threshold int) *Counters {
	if threshold < 1 {
		threshold = 1
	}
	return &Counters{threshold: uint32(threshold)}
}

// Threshold returns the relocation threshold T.
func (c *Counters) Threshold() int { return int(c.threshold) }

// Record counts one refetch against the page. It returns the page's new
// count and whether the count just reached the threshold (the relocation
// interrupt). The count return feeds the machine's snapshot watermark
// logic: runs at different thresholds evolve identical counts until the
// first crossing, so a machine can pause while the high-water count is
// still below a lower threshold and serve as that threshold's prefix.
func (c *Counters) Record(p addr.PageNum) (count uint32, crossed bool) {
	c.total++
	if int(p) >= len(c.counts) {
		c.counts = dense.Grow(c.counts, int(p)+1)
	}
	n := c.counts[p] + 1
	c.counts[p] = n
	if n == 1 {
		c.nonzero++
	}
	if n == c.threshold {
		c.crossings++
		return n, true
	}
	return n, false
}

// Count returns the page's current refetch count.
func (c *Counters) Count(p addr.PageNum) int {
	if int(p) >= len(c.counts) {
		return 0
	}
	return int(c.counts[p])
}

// Reset clears a page's counter (after relocation, or when the page is
// unmapped and its next mapping starts fresh).
func (c *Counters) Reset(p addr.PageNum) {
	if int(p) >= len(c.counts) || c.counts[p] == 0 {
		return
	}
	c.counts[p] = 0
	c.nonzero--
}

// Crossings reports how many relocation interrupts were raised.
func (c *Counters) Crossings() int64 { return c.crossings }

// Total reports all refetches recorded.
func (c *Counters) Total() int64 { return c.total }

// Pages reports how many pages currently have nonzero counters.
func (c *Counters) Pages() int { return c.nonzero }

// State returns a deep copy of the counter set's state (snapshot
// support): the dense count table trimmed of trailing zeros, plus the
// crossing and total tallies.
func (c *Counters) State() (counts []uint32, crossings, total int64) {
	n := len(c.counts)
	for n > 0 && c.counts[n-1] == 0 {
		n--
	}
	counts = make([]uint32, n)
	copy(counts, c.counts[:n])
	return counts, c.crossings, c.total
}

// SetState replaces the counter set's state (snapshot restore). The
// threshold is NOT part of the state: a fork restores a prefix recorded
// under a higher threshold into a machine configured with its own.
func (c *Counters) SetState(counts []uint32, crossings, total int64) {
	c.counts = append(c.counts[:0], counts...)
	c.nonzero = 0
	for _, n := range c.counts {
		if n != 0 {
			c.nonzero++
		}
	}
	c.crossings = crossings
	c.total = total
}
