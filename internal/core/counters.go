// Package core implements the paper's primary contribution: the R-NUMA
// reactive machinery (Section 3.1). Each node's remote access device keeps
// a per-page refetch counter; when a page's count of capacity/conflict
// refetches crosses the relocation threshold, the device raises an
// interrupt and the operating system relocates the page from CC-NUMA to
// the S-COMA page cache.
package core

import "rnuma/internal/addr"

// Counters is the per-node set of per-page refetch counters.
type Counters struct {
	threshold uint32
	counts    map[addr.PageNum]uint32

	crossings int64
	total     int64
}

// NewCounters builds a counter set with the given relocation threshold.
// A page is selected for relocation when it accumulates `threshold`
// refetches (paper: "a page is selected for relocation when it incurs 64
// capacity or conflict misses in the block cache").
func NewCounters(threshold int) *Counters {
	if threshold < 1 {
		threshold = 1
	}
	return &Counters{threshold: uint32(threshold), counts: make(map[addr.PageNum]uint32)}
}

// Threshold returns the relocation threshold T.
func (c *Counters) Threshold() int { return int(c.threshold) }

// Record counts one refetch against the page and reports whether the count
// just reached the threshold (the relocation interrupt).
func (c *Counters) Record(p addr.PageNum) (crossed bool) {
	c.total++
	n := c.counts[p] + 1
	c.counts[p] = n
	if n == c.threshold {
		c.crossings++
		return true
	}
	return false
}

// Count returns the page's current refetch count.
func (c *Counters) Count(p addr.PageNum) int { return int(c.counts[p]) }

// Reset clears a page's counter (after relocation, or when the page is
// unmapped and its next mapping starts fresh).
func (c *Counters) Reset(p addr.PageNum) { delete(c.counts, p) }

// Crossings reports how many relocation interrupts were raised.
func (c *Counters) Crossings() int64 { return c.crossings }

// Total reports all refetches recorded.
func (c *Counters) Total() int64 { return c.total }

// Pages reports how many pages currently have nonzero counters.
func (c *Counters) Pages() int { return len(c.counts) }
