package core

import (
	"testing"
	"testing/quick"

	"rnuma/internal/addr"
)

func TestThresholdCrossing(t *testing.T) {
	c := NewCounters(3)
	p := addr.PageNum(9)
	if c.Record(p) {
		t.Error("crossed at count 1")
	}
	if c.Record(p) {
		t.Error("crossed at count 2")
	}
	if !c.Record(p) {
		t.Error("did not cross at count 3 (threshold)")
	}
	// Counting past the threshold does not re-raise the interrupt: the OS
	// relocates the page (and resets) exactly once per crossing.
	if c.Record(p) {
		t.Error("crossed again at count 4")
	}
	if c.Count(p) != 4 {
		t.Errorf("count = %d, want 4", c.Count(p))
	}
	if c.Crossings() != 1 {
		t.Errorf("crossings = %d, want 1", c.Crossings())
	}
}

func TestResetStartsFresh(t *testing.T) {
	c := NewCounters(2)
	p := addr.PageNum(1)
	c.Record(p)
	c.Record(p) // crossed
	c.Reset(p)
	if c.Count(p) != 0 {
		t.Error("reset did not clear the count")
	}
	if c.Record(p) {
		t.Error("crossed immediately after reset")
	}
	if !c.Record(p) {
		t.Error("second refetch after reset should cross again")
	}
	if c.Crossings() != 2 {
		t.Errorf("crossings = %d, want 2", c.Crossings())
	}
}

func TestPerPageIndependence(t *testing.T) {
	c := NewCounters(2)
	c.Record(1)
	if c.Record(2) {
		t.Error("page 2 crossed from page 1's count")
	}
	if !c.Record(1) {
		t.Error("page 1 should cross at its own 2nd refetch")
	}
	if c.Pages() != 2 {
		t.Errorf("pages tracked = %d, want 2", c.Pages())
	}
	if c.Total() != 3 {
		t.Errorf("total = %d, want 3", c.Total())
	}
}

func TestDefaultThresholdFloor(t *testing.T) {
	c := NewCounters(0) // degenerate: clamp to 1
	if c.Threshold() != 1 {
		t.Errorf("threshold = %d, want 1", c.Threshold())
	}
	if !c.Record(5) {
		t.Error("threshold-1 counters must cross on the first refetch")
	}
}

// TestCrossingExactlyOncePerTReset: for any threshold T, a page crosses
// exactly once per T consecutive refetches when reset after each crossing
// (the machine's relocation discipline).
func TestCrossingExactlyOncePerTReset(t *testing.T) {
	f := func(tRaw uint8, nRaw uint16) bool {
		T := int(tRaw)%64 + 1
		n := int(nRaw) % 2000
		c := NewCounters(T)
		crossings := 0
		for i := 0; i < n; i++ {
			if c.Record(7) {
				crossings++
				c.Reset(7)
			}
		}
		return crossings == n/T
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
