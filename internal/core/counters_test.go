package core

import (
	"testing"
	"testing/quick"

	"rnuma/internal/addr"
)

// crossed records a refetch and reports only the crossing bit (the
// original single-value Record shape, which these tests predate).
func crossed(c *Counters, p addr.PageNum) bool {
	_, x := c.Record(p)
	return x
}

func TestThresholdCrossing(t *testing.T) {
	c := NewCounters(3)
	p := addr.PageNum(9)
	if crossed(c, p) {
		t.Error("crossed at count 1")
	}
	if crossed(c, p) {
		t.Error("crossed at count 2")
	}
	if !crossed(c, p) {
		t.Error("did not cross at count 3 (threshold)")
	}
	// Counting past the threshold does not re-raise the interrupt: the OS
	// relocates the page (and resets) exactly once per crossing.
	if crossed(c, p) {
		t.Error("crossed again at count 4")
	}
	if c.Count(p) != 4 {
		t.Errorf("count = %d, want 4", c.Count(p))
	}
	if c.Crossings() != 1 {
		t.Errorf("crossings = %d, want 1", c.Crossings())
	}
}

func TestResetStartsFresh(t *testing.T) {
	c := NewCounters(2)
	p := addr.PageNum(1)
	c.Record(p)
	c.Record(p) // crossed
	c.Reset(p)
	if c.Count(p) != 0 {
		t.Error("reset did not clear the count")
	}
	if crossed(c, p) {
		t.Error("crossed immediately after reset")
	}
	if !crossed(c, p) {
		t.Error("second refetch after reset should cross again")
	}
	if c.Crossings() != 2 {
		t.Errorf("crossings = %d, want 2", c.Crossings())
	}
}

func TestPerPageIndependence(t *testing.T) {
	c := NewCounters(2)
	c.Record(1)
	if crossed(c, 2) {
		t.Error("page 2 crossed from page 1's count")
	}
	if !crossed(c, 1) {
		t.Error("page 1 should cross at its own 2nd refetch")
	}
	if c.Pages() != 2 {
		t.Errorf("pages tracked = %d, want 2", c.Pages())
	}
	if c.Total() != 3 {
		t.Errorf("total = %d, want 3", c.Total())
	}
}

func TestDefaultThresholdFloor(t *testing.T) {
	c := NewCounters(0) // degenerate: clamp to 1
	if c.Threshold() != 1 {
		t.Errorf("threshold = %d, want 1", c.Threshold())
	}
	if !crossed(c, 5) {
		t.Error("threshold-1 counters must cross on the first refetch")
	}
}

// TestCrossingExactlyOncePerTReset: for any threshold T, a page crosses
// exactly once per T consecutive refetches when reset after each crossing
// (the machine's relocation discipline).
func TestCrossingExactlyOncePerTReset(t *testing.T) {
	f := func(tRaw uint8, nRaw uint16) bool {
		T := int(tRaw)%64 + 1
		n := int(nRaw) % 2000
		c := NewCounters(T)
		crossings := 0
		for i := 0; i < n; i++ {
			if crossed(c, 7) {
				crossings++
				c.Reset(7)
			}
		}
		return crossings == n/T
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCountersStateRoundTrip: State trims trailing zeros, SetState
// rebuilds the nonzero tally, and the threshold stays the restoring
// side's own (the fork-sweep contract).
func TestCountersStateRoundTrip(t *testing.T) {
	c := NewCounters(3)
	for i := 0; i < 4; i++ {
		c.Record(2)
	}
	c.Record(5)
	c.Record(9)
	c.Reset(9) // leaves a trailing zero to trim

	counts, crossings, total := c.State()
	if len(counts) != 6 {
		t.Errorf("State kept %d counts, want 6 (trailing zeros trimmed)", len(counts))
	}

	r := NewCounters(7) // restore under a DIFFERENT threshold
	r.SetState(counts, crossings, total)
	if r.Threshold() != 7 {
		t.Errorf("SetState clobbered the threshold: %d", r.Threshold())
	}
	if r.Count(2) != c.Count(2) || r.Count(5) != c.Count(5) || r.Count(9) != 0 {
		t.Errorf("restored counts differ: %d/%d/%d", r.Count(2), r.Count(5), r.Count(9))
	}
	if r.Pages() != c.Pages() || r.Crossings() != c.Crossings() || r.Total() != c.Total() {
		t.Errorf("restored tallies differ: pages %d/%d crossings %d/%d total %d/%d",
			r.Pages(), c.Pages(), r.Crossings(), c.Crossings(), r.Total(), c.Total())
	}
	// Counts carried across: page 2 is at 4 under threshold 7, so three
	// more touches cross.
	for i := 0; i < 2; i++ {
		if _, crossed := r.Record(2); crossed {
			t.Fatal("crossed before reaching the restoring threshold")
		}
	}
	if _, crossed := r.Record(2); !crossed {
		t.Error("restored counter failed to cross at the new threshold")
	}
}
