// Package dense provides the slice-growth helper shared by the dense,
// index-addressed hot-path tables: the machine's per-page state, the
// per-node page tables, and the stats counter tables all grow with the
// same double-or-need policy.
package dense

// Grow returns s extended to length at least n, doubling the current
// length to amortize repeated growth. The new tail is zero-valued; the
// prefix is preserved. If s already has length n or more it is returned
// unchanged.
func Grow[T any](s []T, n int) []T {
	if len(s) >= n {
		return s
	}
	m := 2 * len(s)
	if m < n {
		m = n
	}
	out := make([]T, m)
	copy(out, s)
	return out
}
