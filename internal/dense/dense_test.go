package dense

import "testing"

func TestGrow(t *testing.T) {
	s := []int{1, 2, 3}
	if got := Grow(s, 2); len(got) != 3 || &got[0] != &s[0] {
		t.Error("Grow shrank or reallocated an already-large slice")
	}
	g := Grow(s, 4)
	if len(g) != 6 { // doubles, not just meets
		t.Errorf("Grow(len 3, 4) has length %d, want 6", len(g))
	}
	for i, v := range []int{1, 2, 3, 0, 0, 0} {
		if g[i] != v {
			t.Errorf("g[%d] = %d, want %d", i, g[i], v)
		}
	}
	// Need far beyond double: jumps straight to need.
	if got := Grow(s, 100); len(got) != 100 {
		t.Errorf("Grow(len 3, 100) has length %d, want 100", len(got))
	}
	// Growing an empty slice.
	if got := Grow([]byte(nil), 5); len(got) != 5 {
		t.Errorf("Grow(nil, 5) has length %d, want 5", len(got))
	}
	// A multiple-of-stride length stays a multiple under doubling (the
	// page-major counter tables rely on this to decode indices).
	stride := 8
	s8 := make([]int64, 4*stride)
	if got := Grow(s8, 4*stride+1); len(got)%stride != 0 {
		t.Errorf("doubled length %d not a multiple of stride %d", len(got), stride)
	}
}
