// Package directory implements the full-map, non-notifying directory
// coherence protocol shared by all three designs (paper Section 2), plus
// the refetch-detection machinery R-NUMA relies on (Section 3.1).
//
// Each block has a home node (derived from its page). The directory entry
// tracks the sharer set, an optional exclusive owner, the version of the
// data held at home memory, and the per-node "previously held" bits that
// make refetch detection work:
//
//   - Read-only copies are dropped silently by nodes (non-notifying), so
//     the sharer bit simply remains set; a later fetch request from a node
//     whose bit is still set is, by definition, a capacity/conflict
//     refetch.
//   - Read-write copies are written back on eviction; the voluntary
//     writeback sets the node's previously-held bit, so a later fetch is
//     again recognized as a refetch.
//   - Coherence invalidations clear both bits, so invalidation misses are
//     never misclassified as refetches. A write by any node clears all
//     previously-held bits: once the data changes, an absent node's next
//     miss is a coherence miss, not a capacity miss.
//
// Directory transactions are atomic: state transitions complete at the
// event instant while the machine accounts their latency, which keeps the
// protocol free of transient states and makes its invariants directly
// checkable (see the Check method).
package directory

import (
	"fmt"

	"rnuma/internal/addr"
)

// Entry is the directory state for one block.
type Entry struct {
	Sharers  uint32      // bitmask of nodes holding (as far as home knows) a copy
	Owner    addr.NodeID // exclusive owner, or addr.NoNode
	PrevHeld uint32      // nodes that voluntarily dropped a copy since the last write
	Version  uint32      // version of the data held at home memory
}

func bit(n addr.NodeID) uint32 { return 1 << uint(n) }

// Dir is the machine-wide directory (logically distributed across homes;
// the home node of a block is a property of its page, held by the machine).
type Dir struct {
	entries map[addr.BlockNum]*Entry
	nodes   int
}

// New builds a directory for a machine with the given node count.
func New(nodes int) *Dir {
	return &Dir{entries: make(map[addr.BlockNum]*Entry), nodes: nodes}
}

// Entry returns the entry for a block, creating it on first touch.
func (d *Dir) Entry(b addr.BlockNum) *Entry {
	e, ok := d.entries[b]
	if !ok {
		e = &Entry{Owner: addr.NoNode}
		d.entries[b] = e
	}
	return e
}

// Peek returns the entry without creating it.
func (d *Dir) Peek(b addr.BlockNum) (*Entry, bool) {
	e, ok := d.entries[b]
	return e, ok
}

// Blocks returns how many blocks have directory state.
func (d *Dir) Blocks() int { return len(d.entries) }

// Each calls fn for every block with directory state, in no particular
// order (invariant checkers and diagnostics).
func (d *Dir) Each(fn func(addr.BlockNum, *Entry)) {
	for b, e := range d.entries {
		fn(b, e)
	}
}

// FetchResult describes the actions a fetch triggered.
type FetchResult struct {
	// Refetch is true when the requester previously held the block and
	// lost it to a capacity/conflict eviction rather than an invalidation.
	Refetch bool
	// FromOwner is the previous exclusive owner that must supply (and, for
	// reads, downgrade; for writes, invalidate) its dirty copy, or NoNode
	// if home memory supplies the data.
	FromOwner addr.NodeID
	// Invalidate lists the other nodes whose copies a write must destroy
	// (excludes FromOwner, which is already being handled).
	Invalidate []addr.NodeID
}

// Fetch processes a data request from a node that does not currently hold
// the block. exclusive requests write permission. The machine must then
// move data/versions according to the result and call SetHomeVersion if
// the owner's dirty data lands at home.
func (d *Dir) Fetch(b addr.BlockNum, requester addr.NodeID, exclusive bool) FetchResult {
	e := d.Entry(b)
	var res FetchResult
	res.FromOwner = addr.NoNode
	res.Refetch = (e.Sharers|e.PrevHeld)&bit(requester) != 0

	if e.Owner != addr.NoNode && e.Owner != requester {
		res.FromOwner = e.Owner
	}

	if exclusive {
		for n := addr.NodeID(0); int(n) < d.nodes; n++ {
			if n == requester || n == res.FromOwner {
				continue
			}
			if e.Sharers&bit(n) != 0 {
				res.Invalidate = append(res.Invalidate, n)
			}
		}
		e.Sharers = bit(requester)
		e.Owner = requester
		// The write makes every absent node's next miss a coherence miss.
		e.PrevHeld = 0
	} else {
		if res.FromOwner != addr.NoNode {
			// Owner downgrades to shared; its dirty data is written home
			// by the machine (SetHomeVersion).
			e.Sharers |= bit(res.FromOwner)
		}
		e.Owner = addr.NoNode
		e.Sharers |= bit(requester)
		e.PrevHeld &^= bit(requester)
	}
	return res
}

// Upgrade processes a write-permission request from a node that still
// holds a read-only copy (no data transfer, never a refetch). It returns
// the nodes to invalidate.
func (d *Dir) Upgrade(b addr.BlockNum, requester addr.NodeID) []addr.NodeID {
	e := d.Entry(b)
	var inval []addr.NodeID
	for n := addr.NodeID(0); int(n) < d.nodes; n++ {
		if n == requester {
			continue
		}
		if e.Sharers&bit(n) != 0 || e.Owner == n {
			inval = append(inval, n)
		}
	}
	e.Sharers = bit(requester)
	e.Owner = requester
	e.PrevHeld = 0
	return inval
}

// WritebackVoluntary records a node's capacity/conflict eviction of a
// dirty block: the data returns home and the node is remembered as having
// previously held the block (enabling refetch detection for read-write
// data, the paper's extra directory state).
func (d *Dir) WritebackVoluntary(b addr.BlockNum, node addr.NodeID, version uint32) {
	e := d.Entry(b)
	if e.Owner == node {
		e.Owner = addr.NoNode
	}
	e.Sharers &^= bit(node)
	e.PrevHeld |= bit(node)
	e.Version = version
}

// DropShared records a node flushing a clean read-only copy during a page
// operation. The protocol is non-notifying for read-only data, so this
// intentionally leaves the sharer bit set: the next fetch from this node
// is a refetch, exactly the semantics Section 3.1 describes.
func (d *Dir) DropShared(b addr.BlockNum, node addr.NodeID) {
	// No state change: non-notifying.
	_ = b
	_ = node
}

// SetHomeVersion records dirty data arriving at home (owner downgrade or
// three-hop forward).
func (d *Dir) SetHomeVersion(b addr.BlockNum, version uint32) {
	d.Entry(b).Version = version
}

// HomeVersion returns the version stored at home memory.
func (d *Dir) HomeVersion(b addr.BlockNum) uint32 {
	if e, ok := d.entries[b]; ok {
		return e.Version
	}
	return 0
}

// ClearNode removes a node from a block's sharer/owner sets without
// setting previously-held state (used when an invalidation and a local
// flush race in page operations; the bits must not fake a refetch).
func (d *Dir) ClearNode(b addr.BlockNum, node addr.NodeID) {
	e := d.Entry(b)
	e.Sharers &^= bit(node)
	e.PrevHeld &^= bit(node)
	if e.Owner == node {
		e.Owner = addr.NoNode
	}
}

// Check verifies the directory invariants for every entry:
//
//  1. an exclusive owner implies the sharer set is exactly the owner,
//  2. previously-held bits are disjoint from the sharer set, except that
//     a sharer bit may persist for silently dropped read-only copies
//     (which is why rule 2 applies only to owned blocks),
//  3. owner ids are within range.
//
// It returns the first violation found.
func (d *Dir) Check() error {
	for b, e := range d.entries {
		if e.Owner != addr.NoNode {
			if int(e.Owner) < 0 || int(e.Owner) >= d.nodes {
				return fmt.Errorf("directory: block %d owner %d out of range", b, e.Owner)
			}
			if e.Sharers != bit(e.Owner) {
				return fmt.Errorf("directory: block %d owned by %d but sharers=%b", b, e.Owner, e.Sharers)
			}
			if e.PrevHeld&bit(e.Owner) != 0 {
				return fmt.Errorf("directory: block %d owner %d also in prevHeld", b, e.Owner)
			}
		}
		if e.Sharers>>uint(d.nodes) != 0 {
			return fmt.Errorf("directory: block %d sharer bits beyond %d nodes: %b", b, d.nodes, e.Sharers)
		}
	}
	return nil
}
