// Package directory implements the full-map, non-notifying directory
// coherence protocol shared by all three designs (paper Section 2), plus
// the refetch-detection machinery R-NUMA relies on (Section 3.1).
//
// Each block has a home node (derived from its page). The directory entry
// tracks the sharer set, an optional exclusive owner, the version of the
// data held at home memory, and the per-node "previously held" bits that
// make refetch detection work:
//
//   - Read-only copies are dropped silently by nodes (non-notifying), so
//     the sharer bit simply remains set; a later fetch request from a node
//     whose bit is still set is, by definition, a capacity/conflict
//     refetch.
//   - Read-write copies are written back on eviction; the voluntary
//     writeback sets the node's previously-held bit, so a later fetch is
//     again recognized as a refetch.
//   - Coherence invalidations clear both bits, so invalidation misses are
//     never misclassified as refetches. A write by any node clears all
//     previously-held bits: once the data changes, an absent node's next
//     miss is a coherence miss, not a capacity miss.
//
// Directory transactions are atomic: state transitions complete at the
// event instant while the machine accounts their latency, which keeps the
// protocol free of transient states and makes its invariants directly
// checkable (see the Check method).
//
// Entries live in a pooled slice indexed by a block map, so creating or
// fetching an entry allocates nothing at steady state. The trade-off is
// aliasing: pointers returned by Entry/Peek/Each, and the Invalidate
// slices returned by Fetch/Upgrade, are valid only until the next call
// that may create an entry or produce another invalidation set. The
// machine consumes both immediately, within the same protocol action.
package directory

import (
	"fmt"
	"math/bits"

	"rnuma/internal/addr"
)

// Entry is the directory state for one block.
type Entry struct {
	Sharers  uint32      // bitmask of nodes holding (as far as home knows) a copy
	Owner    addr.NodeID // exclusive owner, or addr.NoNode
	PrevHeld uint32      // nodes that voluntarily dropped a copy since the last write
	Version  uint32      // version of the data held at home memory
}

func bit(n addr.NodeID) uint32 { return 1 << uint(n) }

// Dir is the machine-wide directory (logically distributed across homes;
// the home node of a block is a property of its page, held by the machine).
type Dir struct {
	index   map[addr.BlockNum]int32
	entries []Entry         // pooled entry storage, one per touched block
	blocks  []addr.BlockNum // parallel to entries: which block each describes
	nodes   int
	scratch []addr.NodeID // reused invalidation-target buffer
}

// New builds a directory for a machine with the given node count.
func New(nodes int) *Dir {
	return &Dir{index: make(map[addr.BlockNum]int32), nodes: nodes}
}

// Entry returns the entry for a block, creating it on first touch. The
// pointer aliases pooled storage: it is valid only until the next call
// that may create an entry.
func (d *Dir) Entry(b addr.BlockNum) *Entry {
	if i, ok := d.index[b]; ok {
		return &d.entries[i]
	}
	d.index[b] = int32(len(d.entries))
	d.entries = append(d.entries, Entry{Owner: addr.NoNode})
	d.blocks = append(d.blocks, b)
	return &d.entries[len(d.entries)-1]
}

// Peek returns the entry without creating it. The pointer aliases pooled
// storage (see Entry).
func (d *Dir) Peek(b addr.BlockNum) (*Entry, bool) {
	if i, ok := d.index[b]; ok {
		return &d.entries[i], true
	}
	return nil, false
}

// Blocks returns how many blocks have directory state.
func (d *Dir) Blocks() int { return len(d.entries) }

// Each calls fn for every block with directory state, in no particular
// order (invariant checkers and diagnostics).
func (d *Dir) Each(fn func(addr.BlockNum, *Entry)) {
	for i := range d.entries {
		fn(d.blocks[i], &d.entries[i])
	}
}

// FetchResult describes the actions a fetch triggered.
type FetchResult struct {
	// Refetch is true when the requester previously held the block and
	// lost it to a capacity/conflict eviction rather than an invalidation.
	Refetch bool
	// FromOwner is the previous exclusive owner that must supply (and, for
	// reads, downgrade; for writes, invalidate) its dirty copy, or NoNode
	// if home memory supplies the data.
	FromOwner addr.NodeID
	// Invalidate lists the other nodes whose copies a write must destroy
	// (excludes FromOwner, which is already being handled). The slice
	// aliases a buffer owned by the Dir and is valid only until the next
	// Fetch or Upgrade call.
	Invalidate []addr.NodeID
}

// targets expands a sharer mask into the reused scratch buffer, ascending
// by node id.
func (d *Dir) targets(mask uint32) []addr.NodeID {
	out := d.scratch[:0]
	for mask != 0 {
		n := bits.TrailingZeros32(mask)
		mask &^= 1 << uint(n)
		out = append(out, addr.NodeID(n))
	}
	d.scratch = out
	return out
}

// Fetch processes a data request from a node that does not currently hold
// the block. exclusive requests write permission. The machine must then
// move data/versions according to the result and call SetHomeVersion if
// the owner's dirty data lands at home.
func (d *Dir) Fetch(b addr.BlockNum, requester addr.NodeID, exclusive bool) FetchResult {
	e := d.Entry(b)
	var res FetchResult
	res.FromOwner = addr.NoNode
	res.Refetch = (e.Sharers|e.PrevHeld)&bit(requester) != 0

	if e.Owner != addr.NoNode && e.Owner != requester {
		res.FromOwner = e.Owner
	}

	if exclusive {
		mask := e.Sharers &^ bit(requester)
		if res.FromOwner != addr.NoNode {
			mask &^= bit(res.FromOwner)
		}
		if mask != 0 {
			res.Invalidate = d.targets(mask)
		}
		e.Sharers = bit(requester)
		e.Owner = requester
		// The write makes every absent node's next miss a coherence miss.
		e.PrevHeld = 0
	} else {
		if res.FromOwner != addr.NoNode {
			// Owner downgrades to shared; its dirty data is written home
			// by the machine (SetHomeVersion).
			e.Sharers |= bit(res.FromOwner)
		}
		e.Owner = addr.NoNode
		e.Sharers |= bit(requester)
		e.PrevHeld &^= bit(requester)
	}
	return res
}

// Upgrade processes a write-permission request from a node that still
// holds a read-only copy (no data transfer, never a refetch). It returns
// the nodes to invalidate; the slice aliases a buffer owned by the Dir
// and is valid only until the next Fetch or Upgrade call.
func (d *Dir) Upgrade(b addr.BlockNum, requester addr.NodeID) []addr.NodeID {
	e := d.Entry(b)
	mask := e.Sharers &^ bit(requester)
	if e.Owner != addr.NoNode && e.Owner != requester {
		mask |= bit(e.Owner)
	}
	var inval []addr.NodeID
	if mask != 0 {
		inval = d.targets(mask)
	}
	e.Sharers = bit(requester)
	e.Owner = requester
	e.PrevHeld = 0
	return inval
}

// WritebackVoluntary records a node's capacity/conflict eviction of a
// dirty block: the data returns home and the node is remembered as having
// previously held the block (enabling refetch detection for read-write
// data, the paper's extra directory state).
func (d *Dir) WritebackVoluntary(b addr.BlockNum, node addr.NodeID, version uint32) {
	e := d.Entry(b)
	if e.Owner == node {
		e.Owner = addr.NoNode
	}
	e.Sharers &^= bit(node)
	e.PrevHeld |= bit(node)
	e.Version = version
}

// DropShared records a node flushing a clean read-only copy during a page
// operation. The protocol is non-notifying for read-only data, so this
// intentionally leaves the sharer bit set: the next fetch from this node
// is a refetch, exactly the semantics Section 3.1 describes.
func (d *Dir) DropShared(b addr.BlockNum, node addr.NodeID) {
	// No state change: non-notifying.
	_ = b
	_ = node
}

// SetHomeVersion records dirty data arriving at home (owner downgrade or
// three-hop forward).
func (d *Dir) SetHomeVersion(b addr.BlockNum, version uint32) {
	d.Entry(b).Version = version
}

// HomeVersion returns the version stored at home memory.
func (d *Dir) HomeVersion(b addr.BlockNum) uint32 {
	if i, ok := d.index[b]; ok {
		return d.entries[i].Version
	}
	return 0
}

// ClearNode removes a node from a block's sharer/owner sets without
// setting previously-held state (used when an invalidation and a local
// flush race in page operations; the bits must not fake a refetch).
func (d *Dir) ClearNode(b addr.BlockNum, node addr.NodeID) {
	e := d.Entry(b)
	e.Sharers &^= bit(node)
	e.PrevHeld &^= bit(node)
	if e.Owner == node {
		e.Owner = addr.NoNode
	}
}

// State returns a deep copy of the directory's entry table as parallel
// block/entry slices in creation order (snapshot support).
func (d *Dir) State() ([]addr.BlockNum, []Entry) {
	blocks := make([]addr.BlockNum, len(d.blocks))
	copy(blocks, d.blocks)
	entries := make([]Entry, len(d.entries))
	copy(entries, d.entries)
	return blocks, entries
}

// SetState replaces the directory's entry table with the given parallel
// slices (snapshot restore). The slices are copied; duplicate blocks are
// rejected so a corrupted snapshot cannot alias two entries.
func (d *Dir) SetState(blocks []addr.BlockNum, entries []Entry) error {
	if len(blocks) != len(entries) {
		return fmt.Errorf("directory: %d blocks for %d entries", len(blocks), len(entries))
	}
	index := make(map[addr.BlockNum]int32, len(blocks))
	for i, b := range blocks {
		if _, dup := index[b]; dup {
			return fmt.Errorf("directory: duplicate entry for block %d", b)
		}
		index[b] = int32(i)
	}
	d.index = index
	d.blocks = append(d.blocks[:0], blocks...)
	d.entries = append(d.entries[:0], entries...)
	return nil
}

// Check verifies the directory invariants for every entry:
//
//  1. an exclusive owner implies the sharer set is exactly the owner,
//  2. previously-held bits are disjoint from the sharer set, except that
//     a sharer bit may persist for silently dropped read-only copies
//     (which is why rule 2 applies only to owned blocks),
//  3. owner ids are within range.
//
// It returns the first violation found.
func (d *Dir) Check() error {
	for i := range d.entries {
		b, e := d.blocks[i], &d.entries[i]
		if e.Owner != addr.NoNode {
			if int(e.Owner) < 0 || int(e.Owner) >= d.nodes {
				return fmt.Errorf("directory: block %d owner %d out of range", b, e.Owner)
			}
			if e.Sharers != bit(e.Owner) {
				return fmt.Errorf("directory: block %d owned by %d but sharers=%b", b, e.Owner, e.Sharers)
			}
			if e.PrevHeld&bit(e.Owner) != 0 {
				return fmt.Errorf("directory: block %d owner %d also in prevHeld", b, e.Owner)
			}
		}
		if e.Sharers>>uint(d.nodes) != 0 {
			return fmt.Errorf("directory: block %d sharer bits beyond %d nodes: %b", b, d.nodes, e.Sharers)
		}
	}
	return nil
}
