package directory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnuma/internal/addr"
)

func TestColdReadNotRefetch(t *testing.T) {
	d := New(8)
	res := d.Fetch(1, 0, false)
	if res.Refetch {
		t.Error("cold miss classified as refetch")
	}
	if res.FromOwner != addr.NoNode || len(res.Invalidate) != 0 {
		t.Errorf("cold read triggered actions: %+v", res)
	}
	e := d.Entry(1)
	if e.Sharers != 1 || e.Owner != addr.NoNode {
		t.Errorf("after read: %+v", e)
	}
}

// TestSilentDropRefetch: the core of Section 3.1 for read-only data — a
// node that silently drops a clean copy and fetches again is refetching.
func TestSilentDropRefetch(t *testing.T) {
	d := New(8)
	d.Fetch(1, 3, false)
	// Node 3 silently drops (non-notifying): no directory call at all.
	res := d.Fetch(1, 3, false)
	if !res.Refetch {
		t.Error("re-fetch after silent drop not classified as refetch")
	}
}

// TestVoluntaryWritebackRefetch: the read-write case — a node that evicted
// a dirty block (voluntary writeback) and fetches again is refetching.
func TestVoluntaryWritebackRefetch(t *testing.T) {
	d := New(8)
	d.Fetch(1, 3, true) // node 3 takes the block exclusive
	d.WritebackVoluntary(1, 3, 7)
	e := d.Entry(1)
	if e.Owner != addr.NoNode || e.Sharers != 0 || e.PrevHeld != 1<<3 || e.Version != 7 {
		t.Fatalf("after voluntary writeback: %+v", e)
	}
	res := d.Fetch(1, 3, false)
	if !res.Refetch {
		t.Error("re-fetch after voluntary writeback not a refetch")
	}
	if d.Entry(1).PrevHeld != 0 {
		t.Error("prevHeld not cleared by the re-fetch")
	}
}

// TestInvalidationClearsRefetchState: a coherence miss must never count
// as a refetch — a write by another node clears both sharer and
// previously-held state.
func TestInvalidationClearsRefetchState(t *testing.T) {
	d := New(8)
	d.Fetch(1, 3, false) // node 3 reads
	d.Fetch(1, 2, true)  // node 2 writes: node 3 invalidated
	res := d.Fetch(1, 3, false)
	if res.Refetch {
		t.Error("invalidation miss misclassified as refetch")
	}
}

// TestWriteClearsAllPrevHeld: after any write, every node's next miss is a
// coherence miss.
func TestWriteClearsAllPrevHeld(t *testing.T) {
	d := New(8)
	d.Fetch(1, 3, true)
	d.WritebackVoluntary(1, 3, 1) // prevHeld{3}
	d.Fetch(1, 2, true)           // write by node 2
	res := d.Fetch(1, 3, false)
	if res.Refetch {
		t.Error("node 3's miss after node 2's write is a coherence miss, not a refetch")
	}
}

func TestReadFromDirtyOwner(t *testing.T) {
	d := New(8)
	d.Fetch(1, 2, true) // node 2 owns
	res := d.Fetch(1, 5, false)
	if res.FromOwner != 2 {
		t.Errorf("FromOwner = %d, want 2", res.FromOwner)
	}
	e := d.Entry(1)
	if e.Owner != addr.NoNode {
		t.Error("owner not cleared by downgrade")
	}
	if e.Sharers != (1<<2)|(1<<5) {
		t.Errorf("sharers = %b, want nodes 2 and 5", e.Sharers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := New(8)
	d.Fetch(1, 0, false)
	d.Fetch(1, 3, false)
	d.Fetch(1, 5, false)
	res := d.Fetch(1, 3, true)
	if len(res.Invalidate) != 2 {
		t.Fatalf("invalidations = %v, want nodes 0 and 5", res.Invalidate)
	}
	got := map[addr.NodeID]bool{}
	for _, n := range res.Invalidate {
		got[n] = true
	}
	if !got[0] || !got[5] || got[3] {
		t.Errorf("invalidate set = %v", res.Invalidate)
	}
	e := d.Entry(1)
	if e.Owner != 3 || e.Sharers != 1<<3 {
		t.Errorf("after write: %+v", e)
	}
}

func TestWriteFromDirtyOwnerForwards(t *testing.T) {
	d := New(8)
	d.Fetch(1, 2, true)
	res := d.Fetch(1, 6, true)
	if res.FromOwner != 2 {
		t.Errorf("FromOwner = %d, want 2", res.FromOwner)
	}
	// Owner is handled by forwarding, not by the invalidation list.
	for _, n := range res.Invalidate {
		if n == 2 {
			t.Error("owner also in invalidate list")
		}
	}
	e := d.Entry(1)
	if e.Owner != 6 || e.Sharers != 1<<6 {
		t.Errorf("after owner-to-owner transfer: %+v", e)
	}
}

func TestUpgrade(t *testing.T) {
	d := New(8)
	d.Fetch(1, 1, false)
	d.Fetch(1, 4, false)
	inval := d.Upgrade(1, 4)
	if len(inval) != 1 || inval[0] != 1 {
		t.Errorf("upgrade invalidations = %v, want [1]", inval)
	}
	e := d.Entry(1)
	if e.Owner != 4 || e.Sharers != 1<<4 || e.PrevHeld != 0 {
		t.Errorf("after upgrade: %+v", e)
	}
}

func TestHomeVersion(t *testing.T) {
	d := New(4)
	if d.HomeVersion(9) != 0 {
		t.Error("untouched block should have version 0")
	}
	d.SetHomeVersion(9, 42)
	if d.HomeVersion(9) != 42 {
		t.Error("version not stored")
	}
}

func TestClearNode(t *testing.T) {
	d := New(4)
	d.Fetch(1, 2, true)
	d.ClearNode(1, 2)
	e := d.Entry(1)
	if e.Owner != addr.NoNode || e.Sharers != 0 || e.PrevHeld != 0 {
		t.Errorf("after clear: %+v", e)
	}
	res := d.Fetch(1, 2, false)
	if res.Refetch {
		t.Error("ClearNode must not arm refetch detection")
	}
}

func TestCheckInvariants(t *testing.T) {
	d := New(4)
	d.Fetch(1, 0, false)
	d.Fetch(1, 1, false)
	d.Fetch(2, 3, true)
	if err := d.Check(); err != nil {
		t.Errorf("legal states flagged: %v", err)
	}
	// Corrupt: owner with extra sharers.
	e := d.Entry(2)
	e.Sharers |= 1 << 1
	if err := d.Check(); err == nil {
		t.Error("owner+extra sharer not flagged")
	}
	e.Sharers = 1 << 3
	e.PrevHeld = 1 << 3
	if err := d.Check(); err == nil {
		t.Error("owner in prevHeld not flagged")
	}
}

func TestPeekAndBlocks(t *testing.T) {
	d := New(4)
	if _, ok := d.Peek(5); ok {
		t.Error("peek created an entry")
	}
	d.Fetch(5, 0, false)
	if _, ok := d.Peek(5); !ok {
		t.Error("peek missed an existing entry")
	}
	if d.Blocks() != 1 {
		t.Errorf("blocks = %d, want 1", d.Blocks())
	}
}

// TestRandomTrafficInvariants drives random protocol traffic and checks
// the directory invariants continuously, plus the refetch-soundness
// property: a fetch is a refetch only if the node previously fetched the
// block and no other node wrote it in between.
func TestRandomTrafficInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 4
		d := New(nodes)
		// holds[b][n]: whether node n fetched b and wasn't invalidated.
		type key struct {
			b addr.BlockNum
			n addr.NodeID
		}
		everHeld := map[key]bool{}
		for op := 0; op < 800; op++ {
			b := addr.BlockNum(rng.Intn(8))
			n := addr.NodeID(rng.Intn(nodes))
			switch rng.Intn(3) {
			case 0: // read
				res := d.Fetch(b, n, false)
				if res.Refetch && !everHeld[key{b, n}] {
					return false // refetch without prior possession
				}
				everHeld[key{b, n}] = true
			case 1: // write
				res := d.Fetch(b, n, true)
				if res.Refetch && !everHeld[key{b, n}] {
					return false
				}
				// All other nodes lose their copies and their history.
				for i := addr.NodeID(0); i < nodes; i++ {
					if i != n {
						everHeld[key{b, i}] = false
					}
				}
				everHeld[key{b, n}] = true
			case 2: // voluntary writeback if owner
				if e := d.Entry(b); e.Owner == n {
					d.WritebackVoluntary(b, n, rng.Uint32())
				}
			}
			if d.Check() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFetchAllocationFree pins the hot-path contract: once a block's
// entry exists, Fetch never allocates — invalidation target lists reuse
// the directory's scratch buffer (which is why FetchResult.Invalidate is
// only valid until the next call).
func TestFetchAllocationFree(t *testing.T) {
	d := New(8)
	for _, n := range []addr.NodeID{0, 1, 2} {
		d.Fetch(5, n, false)
	}
	if n := testing.AllocsPerRun(500, func() {
		d.Fetch(5, 3, true)  // write: invalidates the three sharers
		d.Fetch(5, 0, false) // read: three-hop supply from owner 3
		d.Fetch(5, 1, false)
		d.Fetch(5, 2, false)
	}); n != 0 {
		t.Errorf("steady-state Fetch cycle allocates %.1f times", n)
	}
}

// TestStateRoundTrip: State/SetState (the snapshot path) reproduces the
// directory exactly, and corrupted shapes are rejected.
func TestStateRoundTrip(t *testing.T) {
	d := New(8)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		d.Fetch(addr.BlockNum(rng.Intn(64)), addr.NodeID(rng.Intn(8)), rng.Intn(3) == 0)
	}
	blocks, entries := d.State()

	r := New(8)
	if err := r.SetState(blocks, entries); err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("restored directory violates invariants: %v", err)
	}
	b2, e2 := r.State()
	if len(b2) != len(blocks) || len(e2) != len(entries) {
		t.Fatalf("restored table has %d/%d entries, want %d/%d", len(b2), len(e2), len(blocks), len(entries))
	}
	for i := range blocks {
		if b2[i] != blocks[i] || e2[i] != entries[i] {
			t.Fatalf("entry %d changed across the round trip", i)
		}
	}
	// The restored copy behaves identically going forward.
	if got, want := r.Fetch(blocks[0], 7, true), d.Fetch(blocks[0], 7, true); got.Refetch != want.Refetch || got.FromOwner != want.FromOwner {
		t.Errorf("post-restore fetch diverged: %+v vs %+v", got, want)
	}

	// Corrupted shapes: length mismatch and duplicate blocks.
	if err := New(8).SetState(blocks[:1], entries); err == nil {
		t.Error("length-mismatched state accepted")
	}
	if len(blocks) >= 2 {
		dup := append([]addr.BlockNum(nil), blocks...)
		dup[1] = dup[0]
		if err := New(8).SetState(dup, entries); err == nil {
			t.Error("duplicate block entries accepted")
		}
	}
}
