// Package event provides the discrete-event machinery of the simulator: a
// min-ordered actor queue that always advances the processor with the
// globally smallest clock, and FIFO-server resources that model contention
// at the memory bus, the network interfaces, and the protocol controllers.
//
// Because the engine only ever processes the event with the minimum
// timestamp, resource acquisitions are causally consistent: an actor that
// acquires a resource at time t can never be preempted retroactively by an
// actor whose clock is still behind t.
package event

// Resource is a FIFO server: callers acquire it at some time and hold it
// for an occupancy; later callers queue behind earlier ones. It accumulates
// utilization statistics for contention reporting.
type Resource struct {
	nextFree     int64
	busyCycles   int64
	waitCycles   int64
	acquisitions int64
}

// Acquire requests the resource at time now for occupancy cycles. It
// returns the time service starts (>= now); the resource stays busy until
// start+occupancy.
func (r *Resource) Acquire(now, occupancy int64) (start int64) {
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	r.waitCycles += start - now
	r.busyCycles += occupancy
	r.acquisitions++
	r.nextFree = start + occupancy
	return start
}

// Hold occupies the resource without advancing the caller: it acquires at
// now and returns only the queueing delay the caller observed. Use it for
// pipelined actions (e.g., posting a writeback) where the caller does not
// wait for service completion.
func (r *Resource) Hold(now, occupancy int64) (wait int64) {
	start := r.Acquire(now, occupancy)
	return start - now
}

// NextFree reports when the resource becomes idle.
func (r *Resource) NextFree() int64 { return r.nextFree }

// BusyCycles reports total cycles of occupancy accumulated.
func (r *Resource) BusyCycles() int64 { return r.busyCycles }

// WaitCycles reports total queueing delay callers experienced.
func (r *Resource) WaitCycles() int64 { return r.waitCycles }

// Acquisitions reports how many times the resource was acquired.
func (r *Resource) Acquisitions() int64 { return r.acquisitions }

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() { *r = Resource{} }

// ResourceState is a Resource's complete state in exported form, so
// machine snapshots can capture and restore the in-flight occupancy and
// accumulated contention statistics.
type ResourceState struct {
	NextFree     int64
	BusyCycles   int64
	WaitCycles   int64
	Acquisitions int64
}

// State returns the resource's current state (snapshot support).
func (r *Resource) State() ResourceState {
	return ResourceState{
		NextFree:     r.nextFree,
		BusyCycles:   r.busyCycles,
		WaitCycles:   r.waitCycles,
		Acquisitions: r.acquisitions,
	}
}

// SetState replaces the resource's state (snapshot restore).
func (r *Resource) SetState(s ResourceState) {
	r.nextFree = s.NextFree
	r.busyCycles = s.BusyCycles
	r.waitCycles = s.WaitCycles
	r.acquisitions = s.Acquisitions
}

// Actor is anything with a clock that the engine schedules: in this
// simulator, one per processor.
type Actor struct {
	ID    int
	Clock int64
	index int // heap position; -1 when not queued
}

// Queue is a min-heap of actors ordered by clock (ties broken by ID for
// determinism). The zero value is ready to use.
//
// The heap is hand-rolled rather than layered on container/heap: the
// simulator performs one queue operation per memory reference, and the
// interface dispatch per Less/Swap dominated the event loop's profile.
// The ordering keys (clock, id) are stored inline in the heap slice so
// sift operations compare without dereferencing actors — the pointer
// chase per comparison was the next-largest line item. Update and Remove
// let the hot loop reschedule the current actor in place instead of
// paying a full Pop+Push.
type Queue struct {
	h []entry
}

// entry is one heap slot: the ordering key plus the actor it schedules.
type entry struct {
	clock int64
	id    int32
	a     *Actor
}

func (e *entry) before(o *entry) bool {
	if e.clock != o.clock {
		return e.clock < o.clock
	}
	return e.id < o.id
}

func (q *Queue) up(i int) {
	h := q.h
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].a.index = i
		i = parent
	}
	h[i] = e
	e.a.index = i
}

func (q *Queue) down(i int) {
	h := q.h
	n := len(h)
	e := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].before(&h[child]) {
			child = r
		}
		if !h[child].before(&e) {
			break
		}
		h[i] = h[child]
		h[i].a.index = i
		i = child
	}
	h[i] = e
	e.a.index = i
}

// Push inserts an actor into the queue.
func (q *Queue) Push(a *Actor) {
	a.index = len(q.h)
	q.h = append(q.h, entry{clock: a.Clock, id: int32(a.ID), a: a})
	q.up(a.index)
}

// Pop removes and returns the actor with the smallest clock, or nil if the
// queue is empty.
func (q *Queue) Pop() *Actor {
	if len(q.h) == 0 {
		return nil
	}
	a := q.h[0].a
	q.remove(0)
	return a
}

// Peek returns the actor with the smallest clock without removing it.
func (q *Queue) Peek() *Actor {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0].a
}

// Update restores heap order after the actor's clock advanced in place.
// Clocks only ever move forward, so the actor can only sink.
func (q *Queue) Update(a *Actor) {
	i := a.index
	q.h[i].clock = a.Clock
	q.down(i)
}

// SecondClock returns the smallest clock among actors other than the
// current top, with ok=false when the queue holds at most one actor. The
// event loop uses it to decide whether advancing the top actor's clock
// would overtake anyone — without paying an Update to find out.
func (q *Queue) SecondClock() (int64, bool) {
	if len(q.h) < 2 {
		return 0, false
	}
	s := q.h[1].clock
	if len(q.h) > 2 && q.h[2].before(&q.h[1]) {
		s = q.h[2].clock
	}
	return s, true
}

// Remove deletes a queued actor regardless of its position.
func (q *Queue) Remove(a *Actor) { q.remove(a.index) }

func (q *Queue) remove(i int) {
	h := q.h
	n := len(h) - 1
	a := h[i].a
	if i != n {
		h[i] = h[n]
		h[i].a.index = i
	}
	h[n] = entry{}
	q.h = h[:n]
	if i != n {
		// The displaced actor may need to move either way relative to its
		// new subtree.
		q.down(i)
		q.up(i)
	}
	a.index = -1
}

// Len reports the number of queued actors.
func (q *Queue) Len() int { return len(q.h) }
