// Package event provides the discrete-event machinery of the simulator: a
// min-ordered actor queue that always advances the processor with the
// globally smallest clock, and FIFO-server resources that model contention
// at the memory bus, the network interfaces, and the protocol controllers.
//
// Because the engine only ever processes the event with the minimum
// timestamp, resource acquisitions are causally consistent: an actor that
// acquires a resource at time t can never be preempted retroactively by an
// actor whose clock is still behind t.
package event

import "container/heap"

// Resource is a FIFO server: callers acquire it at some time and hold it
// for an occupancy; later callers queue behind earlier ones. It accumulates
// utilization statistics for contention reporting.
type Resource struct {
	nextFree     int64
	busyCycles   int64
	waitCycles   int64
	acquisitions int64
}

// Acquire requests the resource at time now for occupancy cycles. It
// returns the time service starts (>= now); the resource stays busy until
// start+occupancy.
func (r *Resource) Acquire(now, occupancy int64) (start int64) {
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	r.waitCycles += start - now
	r.busyCycles += occupancy
	r.acquisitions++
	r.nextFree = start + occupancy
	return start
}

// Hold occupies the resource without advancing the caller: it acquires at
// now and returns only the queueing delay the caller observed. Use it for
// pipelined actions (e.g., posting a writeback) where the caller does not
// wait for service completion.
func (r *Resource) Hold(now, occupancy int64) (wait int64) {
	start := r.Acquire(now, occupancy)
	return start - now
}

// NextFree reports when the resource becomes idle.
func (r *Resource) NextFree() int64 { return r.nextFree }

// BusyCycles reports total cycles of occupancy accumulated.
func (r *Resource) BusyCycles() int64 { return r.busyCycles }

// WaitCycles reports total queueing delay callers experienced.
func (r *Resource) WaitCycles() int64 { return r.waitCycles }

// Acquisitions reports how many times the resource was acquired.
func (r *Resource) Acquisitions() int64 { return r.acquisitions }

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() { *r = Resource{} }

// Actor is anything with a clock that the engine schedules: in this
// simulator, one per processor.
type Actor struct {
	ID    int
	Clock int64
	index int // heap position; -1 when not queued
}

// Queue is a min-heap of actors ordered by clock (ties broken by ID for
// determinism). The zero value is ready to use.
type Queue struct {
	h actorHeap
}

type actorHeap []*Actor

func (h actorHeap) Len() int { return len(h) }
func (h actorHeap) Less(i, j int) bool {
	if h[i].Clock != h[j].Clock {
		return h[i].Clock < h[j].Clock
	}
	return h[i].ID < h[j].ID
}
func (h actorHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *actorHeap) Push(x any) {
	a := x.(*Actor)
	a.index = len(*h)
	*h = append(*h, a)
}
func (h *actorHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	a.index = -1
	*h = old[:n-1]
	return a
}

// Push inserts an actor into the queue.
func (q *Queue) Push(a *Actor) { heap.Push(&q.h, a) }

// Pop removes and returns the actor with the smallest clock, or nil if the
// queue is empty.
func (q *Queue) Pop() *Actor {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Actor)
}

// Peek returns the actor with the smallest clock without removing it.
func (q *Queue) Peek() *Actor {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Len reports the number of queued actors.
func (q *Queue) Len() int { return len(q.h) }
