package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourceUncontended(t *testing.T) {
	var r Resource
	if start := r.Acquire(100, 10); start != 100 {
		t.Errorf("uncontended acquire at 100 started at %d", start)
	}
	if r.NextFree() != 110 {
		t.Errorf("next free = %d, want 110", r.NextFree())
	}
	if r.WaitCycles() != 0 {
		t.Errorf("wait = %d, want 0", r.WaitCycles())
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	r.Acquire(100, 10)
	start := r.Acquire(105, 10) // arrives while busy
	if start != 110 {
		t.Errorf("queued acquire started at %d, want 110", start)
	}
	if r.WaitCycles() != 5 {
		t.Errorf("wait = %d, want 5", r.WaitCycles())
	}
	// Arriving after idle: no wait.
	start = r.Acquire(200, 10)
	if start != 200 {
		t.Errorf("idle acquire started at %d, want 200", start)
	}
	if r.Acquisitions() != 3 {
		t.Errorf("acquisitions = %d, want 3", r.Acquisitions())
	}
	if r.BusyCycles() != 30 {
		t.Errorf("busy = %d, want 30", r.BusyCycles())
	}
}

func TestResourceHold(t *testing.T) {
	var r Resource
	if wait := r.Hold(50, 20); wait != 0 {
		t.Errorf("hold wait = %d, want 0", wait)
	}
	if wait := r.Hold(60, 20); wait != 10 {
		t.Errorf("hold wait = %d, want 10", wait)
	}
}

// TestResourceMonotonic: service start times never decrease for
// non-decreasing arrival times (the FIFO-server property).
func TestResourceMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Resource
		now, lastStart := int64(0), int64(-1)
		for i := 0; i < 200; i++ {
			now += rng.Int63n(20)
			occ := rng.Int63n(15) + 1
			start := r.Acquire(now, occ)
			if start < now || start < lastStart {
				return false
			}
			lastStart = start
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	a := &Actor{ID: 0, Clock: 30}
	b := &Actor{ID: 1, Clock: 10}
	c := &Actor{ID: 2, Clock: 20}
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if got := q.Pop(); got != b {
		t.Errorf("first pop = actor %d, want 1", got.ID)
	}
	if got := q.Peek(); got != c {
		t.Errorf("peek = actor %d, want 2", got.ID)
	}
	if got := q.Pop(); got != c {
		t.Errorf("second pop = actor %d, want 2", got.ID)
	}
	if got := q.Pop(); got != a {
		t.Errorf("third pop = actor %d, want 0", got.ID)
	}
	if q.Pop() != nil {
		t.Error("empty queue should pop nil")
	}
}

func TestQueueTieBreakByID(t *testing.T) {
	var q Queue
	a := &Actor{ID: 5, Clock: 10}
	b := &Actor{ID: 2, Clock: 10}
	q.Push(a)
	q.Push(b)
	if got := q.Pop(); got.ID != 2 {
		t.Errorf("tie broken toward %d, want lower ID 2", got.ID)
	}
}

// TestQueueDrainSorted: popping yields a non-decreasing clock sequence.
func TestQueueDrainSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		for i := 0; i < 100; i++ {
			q.Push(&Actor{ID: i, Clock: rng.Int63n(1000)})
		}
		last := int64(-1)
		for q.Len() > 0 {
			a := q.Pop()
			if a.Clock < last {
				return false
			}
			last = a.Clock
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(10, 10)
	r.Reset()
	if r.NextFree() != 0 || r.BusyCycles() != 0 || r.Acquisitions() != 0 {
		t.Error("reset did not clear resource state")
	}
}

// TestReschedulePattern mimics the machine loop: re-pushing an advanced
// actor keeps ordering coherent.
func TestReschedulePattern(t *testing.T) {
	var q Queue
	actors := []*Actor{{ID: 0}, {ID: 1}, {ID: 2}}
	for _, a := range actors {
		q.Push(a)
	}
	steps := map[int]int{}
	for i := 0; i < 30; i++ {
		a := q.Pop()
		steps[a.ID]++
		a.Clock += int64(10 * (a.ID + 1)) // CPU 0 fastest
		q.Push(a)
	}
	if steps[0] <= steps[2] {
		t.Errorf("fast actor stepped %d times, slow %d; want fast > slow", steps[0], steps[2])
	}
}

// TestResourceStateRoundTrip: State/SetState (the snapshot path)
// carries a resource's occupancy and tallies into a fresh resource.
func TestResourceStateRoundTrip(t *testing.T) {
	var r Resource
	r.Acquire(10, 5)
	r.Acquire(12, 3) // queued behind the first occupancy
	s := r.State()

	var fresh Resource
	fresh.SetState(s)
	if fresh.NextFree() != r.NextFree() || fresh.BusyCycles() != r.BusyCycles() || fresh.WaitCycles() != r.WaitCycles() {
		t.Errorf("restored resource differs: %+v vs %+v", fresh.State(), s)
	}
	// Identical behavior going forward: the next acquire waits the same.
	if a, b := fresh.Acquire(13, 2), r.Acquire(13, 2); a != b {
		t.Errorf("post-restore acquire start %d, want %d", a, b)
	}
}
