package harness

import (
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/pagecache"
	"rnuma/internal/stats"
)

// This file implements the ablation studies from DESIGN.md Section 7:
// isolating the design decisions the paper's results rest on.

// ablationJob builds a tagged job carrying extra machine options; the tag
// keys it separately in the memo cache. The round-robin placement ablation
// omits the workload's home map so the machine falls back to round-robin.
func ablationJob(appName string, sys config.System, tag string, opts ...machine.Option) Job {
	return Job{App: appName, Sys: sys, Tag: tag, opts: opts, skipHomes: tag == "roundrobin"}
}

// runWith executes an application with extra machine options through the
// scheduler's singleflight cache.
func (h *Harness) runWith(appName string, sys config.System, tag string, opts ...machine.Option) (*stats.Run, error) {
	return h.runJob(ablationJob(appName, sys, tag, opts...))
}

// CountingAblation compares R-NUMA with the paper's refetch-only counters
// against a naive variant whose counters are fed by every remote miss
// (coherence misses included).
type CountingAblation struct {
	App string
	// Execution cycles and relocation counts under each policy.
	RefetchOnly, Naive             *stats.Run
	SlowdownPct                    float64 // naive vs refetch-only execution time
	ExtraRelocations, ExtraReplace int64
}

// AblationCounting demonstrates why Section 3.1 counts only capacity and
// conflict refetches: on a producer-consumer application, naive counting
// relocates communication pages, buying nothing and paying page-operation
// and page-cache-churn costs. It runs at a deliberately low threshold so
// that a communication page's few coherence misses per run are enough to
// cross naively — its refetch count (zero) never is, at any threshold.
func (h *Harness) AblationCounting(appName string) (*CountingAblation, error) {
	sys := config.Base(config.RNUMA)
	sys.Threshold = 6
	sys.Name = "R-NUMA T=6"
	h.Prefetch(NewPlan().Add(NewJob(appName, sys),
		ablationJob(appName, sys, "naive-counting", machine.WithNaiveCounting())))
	base, err := h.Run(appName, sys)
	if err != nil {
		return nil, err
	}
	naive, err := h.runWith(appName, sys, "naive-counting", machine.WithNaiveCounting())
	if err != nil {
		return nil, err
	}
	return &CountingAblation{
		App:              appName,
		RefetchOnly:      base,
		Naive:            naive,
		SlowdownPct:      100 * (float64(naive.ExecCycles)/float64(base.ExecCycles) - 1),
		ExtraRelocations: naive.Relocations - base.Relocations,
		ExtraReplace:     naive.Replacements - base.Replacements,
	}, nil
}

// DemotionAblation compares the paper's base R-NUMA (reverse adaptation
// only via LRM replacement) against the explicit-demotion extension on the
// phase-shift workload.
type DemotionAblation struct {
	Base, Demoting *stats.Run
	SpeedupPct     float64 // execution time saved by demotion
	Demotions      int64
}

// AblationDemotion exercises the reverse-adaptation extension: after a
// reuse set degenerates into a communication set, its page-cache frames
// keep looking "recently missed" to LRM (coherence misses refresh them),
// squeezing the new reuse set. Demotion reclaims those frames.
func (h *Harness) AblationDemotion() (*DemotionAblation, error) {
	sys := config.Base(config.RNUMA)
	dsys := sys
	dsys.DemotionThreshold = 8
	dsys.Name = "R-NUMA +demotion"
	h.Prefetch(NewPlan().Add(NewJob("phaseshift", sys),
		ablationJob("phaseshift", dsys, "demotion")))
	base, err := h.Run("phaseshift", sys)
	if err != nil {
		return nil, err
	}
	demoting, err := h.runWith("phaseshift", dsys, "demotion")
	if err != nil {
		return nil, err
	}
	return &DemotionAblation{
		Base:       base,
		Demoting:   demoting,
		SpeedupPct: 100 * (1 - float64(demoting.ExecCycles)/float64(base.ExecCycles)),
		Demotions:  demoting.Demotions,
	}, nil
}

// PolicyAblation compares the paper's Least Recently Missed replacement
// against conventional LRU under pure S-COMA.
type PolicyAblation struct {
	App      string
	LRM, LRU *stats.Run
	// LRUEffectPct is the execution-time change from switching to LRU
	// (negative = LRU faster).
	LRUEffectPct float64
}

// AblationReplacementPolicy quantifies the cost of the paper's
// hardware-cheap LRM policy versus LRU, which refreshes frames on hits
// and so protects reuse pages from streaming traffic — at the price of
// per-reference bookkeeping the paper's design avoids (Section 4).
func (h *Harness) AblationReplacementPolicy(appName string) (*PolicyAblation, error) {
	sys := config.Base(config.SCOMA)
	lruSys := sys
	lruSys.PageReplacement = pagecache.LRU
	lruSys.Name = "S-COMA LRU"
	h.Prefetch(NewPlan().Add(NewJob(appName, sys), ablationJob(appName, lruSys, "lru")))
	lrm, err := h.Run(appName, sys)
	if err != nil {
		return nil, err
	}
	lru, err := h.runWith(appName, lruSys, "lru")
	if err != nil {
		return nil, err
	}
	return &PolicyAblation{
		App:          appName,
		LRM:          lrm,
		LRU:          lru,
		LRUEffectPct: 100 * (float64(lru.ExecCycles)/float64(lrm.ExecCycles) - 1),
	}, nil
}

// PlacementAblation compares first-touch page placement (the paper's
// Section 2.1 policy, realized here through the workloads' explicit home
// maps) against naive round-robin placement.
type PlacementAblation struct {
	App                    string
	FirstTouch, RoundRobin *stats.Run
	SlowdownPct            float64
	RemoteFetchMultiplier  float64
}

// AblationPlacement quantifies how much of every protocol's performance
// rests on good initial placement: with round-robin homes, a node's
// "own" data is scattered across the machine and even private sweeps go
// remote.
func (h *Harness) AblationPlacement(appName string) (*PlacementAblation, error) {
	sys := config.Base(config.CCNUMA)
	rrSys := sys
	rrSys.FirstTouch = false // machine falls back to round-robin homes
	rrSys.Name = "CC-NUMA round-robin placement"
	h.Prefetch(NewPlan().Add(NewJob(appName, sys), ablationJob(appName, rrSys, "roundrobin")))
	ft, err := h.Run(appName, sys)
	if err != nil {
		return nil, err
	}
	rr, err := h.runWith(appName, rrSys, "roundrobin")
	if err != nil {
		return nil, err
	}
	return &PlacementAblation{
		App:                   appName,
		FirstTouch:            ft,
		RoundRobin:            rr,
		SlowdownPct:           100 * (float64(rr.ExecCycles)/float64(ft.ExecCycles) - 1),
		RemoteFetchMultiplier: stats.Ratio(rr.RemoteFetches, ft.RemoteFetches),
	}, nil
}
