package harness

import "testing"

// TestAblationCounting: naive all-miss counting must relocate
// communication pages on a producer-consumer workload (em3d), costing
// performance — the justification for Section 3.1's refetch distinction.
func TestAblationCounting(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	res, err := h.AblationCounting("em3d")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraRelocations <= 0 {
		t.Errorf("naive counting caused no extra relocations (%d vs %d); the ablation should fire",
			res.Naive.Relocations, res.RefetchOnly.Relocations)
	}
	if res.SlowdownPct < 1 {
		t.Errorf("naive counting slowdown = %.1f%%; relocating communication pages should cost", res.SlowdownPct)
	}
	// The relocated communication pages keep missing (coherence), so the
	// page cache churns.
	if res.Naive.Replacements < res.RefetchOnly.Replacements {
		t.Errorf("naive counting reduced replacements (%d vs %d)?",
			res.Naive.Replacements, res.RefetchOnly.Replacements)
	}
}

// TestAblationCountingReuseAppUnhurt: on a pure-reuse application, naive
// counting and refetch-only counting behave nearly identically (nearly
// every miss is a refetch anyway) — the distinction only matters where
// coherence misses exist.
func TestAblationCountingReuseAppUnhurt(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	res, err := h.AblationCounting("moldyn")
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowdownPct > 20 {
		t.Errorf("naive counting cost %.1f%% on moldyn; reuse apps should be mostly unaffected", res.SlowdownPct)
	}
}

// TestAblationPlacement: round-robin placement scatters each node's own
// data; remote traffic and execution time climb (Section 2.1's case for
// first-touch).
func TestAblationPlacement(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	// em3d has heavy producer writes to "its own" graph pages: scattering
	// those homes sends every update remote.
	res, err := h.AblationPlacement("em3d")
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowdownPct < 10 {
		t.Errorf("round-robin placement slowdown = %.1f%%; expected substantial", res.SlowdownPct)
	}
	if res.RemoteFetchMultiplier < 1.2 {
		t.Errorf("round-robin remote fetch multiplier = %.2fx; scattering should add remote traffic",
			res.RemoteFetchMultiplier)
	}
}

// TestAblationDemotion: the reverse-adaptation extension reclaims frames
// from pages that degenerated into communication pages, speeding the
// phase-shift workload and firing demotions.
func TestAblationDemotion(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	res, err := h.AblationDemotion()
	if err != nil {
		t.Fatal(err)
	}
	if res.Demotions == 0 {
		t.Fatal("no demotions fired; the extension is inert")
	}
	// At the reduced test scale demotion fires late (few phase-2
	// iterations remain to profit); full scale shows ~6%% (EXPERIMENTS.md).
	if res.SpeedupPct < 0.2 {
		t.Errorf("demotion speedup = %.1f%%; reclaiming stale frames should help", res.SpeedupPct)
	}
	if res.Base.Demotions != 0 {
		t.Error("the base design must not demote")
	}
}

// TestAblationReplacementPolicy: LRU protects reuse pages from streaming
// traffic on raytrace-like mixes; LRM is the paper's hardware-cheap
// choice. The ablation must run both and report a finite effect.
func TestAblationReplacementPolicy(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	res, err := h.AblationReplacementPolicy("raytrace")
	if err != nil {
		t.Fatal(err)
	}
	if res.LRM.ExecCycles == 0 || res.LRU.ExecCycles == 0 {
		t.Fatal("empty runs")
	}
	// The policies must actually behave differently on this mix.
	if res.LRM.Replacements == res.LRU.Replacements {
		t.Errorf("LRM and LRU produced identical replacement counts (%d); the policy switch is inert",
			res.LRM.Replacements)
	}
	if res.LRUEffectPct < -80 || res.LRUEffectPct > 80 {
		t.Errorf("implausible LRU effect: %.1f%%", res.LRUEffectPct)
	}
}
