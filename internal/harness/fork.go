package harness

import (
	"bytes"
	"fmt"
	"sort"

	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
)

// This file implements snapshot/fork replay for threshold sweeps. A
// threshold sweep replays the *same* trace under R-NUMA configurations
// that differ only in the relocation threshold T, and the per-(node,
// page) counters evolve identically under every threshold until the
// hottest counter first reaches the smallest one: the runs share a
// common prefix. Instead of replaying that prefix once per point, a
// single trunk machine at the largest threshold replays it once,
// pausing at each smaller threshold's watermark (counter high-water
// mark T-1, i.e. just before any counter could cross T) to take a
// snapshot; each point then forks from its snapshot and replays only
// its own suffix.
//
// The trunk legitimately stands in for every smaller threshold because
// at the T-1 watermark no counter has reached T yet, so neither the
// trunk (threshold Tmax > T-1) nor a threshold-T machine has relocated
// a page: their states are bit-identical up to the pause.

// thresholdForkRuns replays one recorded trace under R-NUMA at every
// requested relocation threshold, paying for the shared prefix once.
// sys supplies everything but the threshold (protocol, cache sizes,
// costs); the machine shape and geometry come from the trace header,
// exactly as Replay resolves them. The result maps each threshold to
// its completed run and is bit-identical to len(thresholds) independent
// full replays (TestThresholdForkRunsIdentity pins this). It is the
// WithThresholds arm of Replay — the public surface — and the engine
// behind threshold-axis sweeps.
//
// When the probe config is enabled, the trunk and every fork carry it,
// so each point's Run has an interval series and event log
// bit-identical to a full probed replay. Fork points generally fall
// mid-window (the trunk pauses at a counter watermark, not a reference
// count — running it further to reach a window boundary would be
// unsound, since a counter could cross the fork's threshold in
// between). Exactness comes instead from the snapshot carrying the
// probe's cursor: cumulative counters at the last boundary and the
// partial traffic matrix, from which the restored fork closes its next
// window exactly as an uninterrupted replay would.
func thresholdForkRuns(data []byte, sys config.System, thresholds []int, tcfg telemetry.Config) (map[int]*stats.Run, tracefile.Header, error) {
	if len(thresholds) == 0 {
		return nil, tracefile.Header{}, fmt.Errorf("harness: threshold fork over no values")
	}
	ts := append([]int(nil), thresholds...)
	sort.Ints(ts)
	ts = ts[:uniqInts(ts)]
	if ts[0] < 1 {
		return nil, tracefile.Header{}, fmt.Errorf("harness: threshold %d must be positive", ts[0])
	}

	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, tracefile.Header{}, fmt.Errorf("harness: %w", err)
	}
	hdr := d.Header()
	tmax := ts[len(ts)-1]
	sysMax := sys
	sysMax.Threshold = tmax
	trunk, _, err := NewTraceMachine(hdr, sysMax, machine.WithTelemetry(tcfg))
	if err != nil {
		return nil, hdr, err
	}
	if err := trunk.Start(d.Streams()); err != nil {
		return nil, hdr, err
	}

	out := make(map[int]*stats.Run, len(ts))
	trunkDone := false
	for _, T := range ts[:len(ts)-1] {
		if !trunkDone {
			done, err := trunk.RunUntilCounter(uint32(T - 1))
			if err != nil {
				return nil, hdr, err
			}
			trunkDone = done
		}
		if trunkDone {
			// The trace completed without any counter reaching T-1, so no
			// run at threshold >= T ever relocates: every remaining point
			// (including the trunk's own) is the same run.
			break
		}
		snap, err := trunk.Snapshot()
		if err != nil {
			return nil, hdr, err
		}
		fsys := sys
		fsys.Threshold = T
		run, err := forkRun(data, hdr, fsys, snap, tcfg)
		if err != nil {
			return nil, hdr, fmt.Errorf("harness: fork at T=%d: %w", T, err)
		}
		out[T] = run
	}
	runMax, err := trunk.Finish()
	if err != nil {
		return nil, hdr, err
	}
	if err := d.Err(); err != nil {
		return nil, hdr, err
	}
	out[tmax] = runMax
	for _, T := range ts[:len(ts)-1] {
		if out[T] == nil {
			out[T] = runMax.Clone()
		}
	}
	return out, hdr, nil
}

// forkRun completes one sweep point from a trunk snapshot: a fresh
// machine at the point's own threshold restores the snapshot, seeks a
// fresh set of trace streams to the consumed positions (the reader
// skips whole compressed chunks, so the seek is cheap), and replays the
// remaining suffix to completion.
func forkRun(data []byte, hdr tracefile.Header, sys config.System, snap *machine.Snapshot, tcfg telemetry.Config) (*stats.Run, error) {
	m, _, err := NewTraceMachine(hdr, sys, machine.WithTelemetry(tcfg))
	if err != nil {
		return nil, err
	}
	if err := m.Restore(snap); err != nil {
		return nil, err
	}
	fd, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if err := m.ResumeWith(fd.Streams()); err != nil {
		return nil, err
	}
	run, err := m.Finish()
	if err != nil {
		return nil, err
	}
	if err := fd.Err(); err != nil {
		return nil, err
	}
	return run, nil
}

// uniqInts compacts a sorted slice in place and returns the unique
// length.
func uniqInts(ts []int) int {
	n := 0
	for i, v := range ts {
		if i == 0 || v != ts[n-1] {
			ts[n] = v
			n++
		}
	}
	return n
}

// forkThresholdPoints pre-computes a threshold sweep's R-NUMA points
// with thresholdForkRuns and donates them to the store under the
// very job keys the sweep assembly reads, so Prefetch and Run find them
// already done and only the threshold-independent systems (ideal,
// CC-NUMA, S-COMA — one replay each, shared across all points) still
// simulate. Already-cached points are left alone; when every point is
// cached no trunk runs at all.
func (h *Harness) forkThresholdPoints(data []byte, pts []sweepPoint) error {
	missing := false
	for _, p := range pts {
		if !h.cached(NewJob(p.app, p.rn)) {
			missing = true
			break
		}
	}
	if !missing {
		return nil
	}
	thresholds := make([]int, 0, len(pts))
	for _, p := range pts {
		thresholds = append(thresholds, p.rn.Threshold)
	}
	h.logf("forking  %-9s threshold sweep from one trunk at T=%d", pts[0].app, thresholds[len(thresholds)-1])
	runs, _, err := thresholdForkRuns(data, pts[len(pts)-1].rn, thresholds, h.Telemetry)
	if err != nil {
		return err
	}
	for _, p := range pts {
		run := runs[p.rn.Threshold]
		if run == nil {
			return fmt.Errorf("harness: fork sweep produced no run for T=%d", p.rn.Threshold)
		}
		h.memoize(NewJob(p.app, p.rn), run)
		h.logf("  T=%-5d %s", p.rn.Threshold, run.Summary())
	}
	return nil
}

// cached reports whether a job's result is already in the store. An
// in-flight claim by another harness reports false (Get never blocks),
// so a concurrent identical sweep may redundantly recompute a trunk —
// wasted work at worst, never a wrong result, because memoize inserts
// only into unclaimed slots.
func (h *Harness) cached(j Job) bool {
	_, ok, _ := h.store().Get(h.KeyFor(j))
	return ok
}

// memoize donates a pre-computed result to the store, so later
// Run/Prefetch calls for the job read it instead of simulating. An
// existing slot (completed or in flight) wins: the fork engine never
// clobbers a result another path produced.
func (h *Harness) memoize(j Job, run *stats.Run) {
	h.store().Add(h.KeyFor(j), run)
}
