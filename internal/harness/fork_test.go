package harness

import (
	"bytes"
	"reflect"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
)

// TestForkReplayIdentity is the snapshot/fork acceptance proof: for every
// catalog application and every protocol, replaying a recorded trace
// partway, snapshotting, restoring into a fresh machine, and resuming
// over freshly opened (seeked) streams finishes with statistics
// bit-identical to the uninterrupted replay.
func TestForkReplayIdentity(t *testing.T) {
	apps := AllApps()
	if testing.Short() {
		apps = []string{"fft", "em3d"}
	}
	const scale = 0.02
	for _, app := range apps {
		data := recordCatalog(t, app, scale)
		for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
			sys := config.Base(p)
			res, err := Replay(bytes.NewReader(data), sys)
			if err != nil {
				t.Fatalf("%s/%v: full replay: %v", app, p, err)
			}
			full, hdr := res.Run, res.Header

			d, err := tracefile.NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s/%v: %v", app, p, err)
			}
			m, _, err := NewTraceMachine(d.Header(), sys)
			if err != nil {
				t.Fatalf("%s/%v: %v", app, p, err)
			}
			if err := m.Start(d.Streams()); err != nil {
				t.Fatalf("%s/%v: %v", app, p, err)
			}
			// Pause inside the run (two fifths of the way through), deep
			// enough that forks cross compressed-chunk boundaries.
			if _, err := m.RunUntilRefs(full.Refs * 2 / 5); err != nil {
				t.Fatalf("%s/%v: partial replay: %v", app, p, err)
			}
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatalf("%s/%v: snapshot: %v", app, p, err)
			}
			forked, err := forkRun(data, hdr, sys, snap, telemetry.Config{})
			if err != nil {
				t.Fatalf("%s/%v: fork: %v", app, p, err)
			}
			if !reflect.DeepEqual(full, forked) {
				t.Errorf("%s/%v: forked replay diverged from uninterrupted replay:\n full %+v\n fork %+v",
					app, p, full, forked)
			}
		}
	}
}

// TestThresholdForkRunsIdentity: the trunk-and-fork threshold engine
// produces, for every threshold, exactly the run an independent full
// replay at that threshold produces — including thresholds low enough
// to relocate pages and thresholds the trace never reaches.
func TestThresholdForkRunsIdentity(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "em3d", scale)
	sys := config.Base(config.RNUMA)
	thresholds := []int{4, 16, 64, 1 << 20}

	res, err := Replay(bytes.NewReader(data), sys, WithThresholds(thresholds...))
	if err != nil {
		t.Fatal(err)
	}
	runs := res.ByThreshold
	if len(runs) != len(thresholds) {
		t.Fatalf("got %d runs for %d thresholds", len(runs), len(thresholds))
	}
	if res.Run != runs[1<<20] {
		t.Error("Result.Run is not the largest threshold's run")
	}
	var relocated bool
	for _, T := range thresholds {
		s := sys
		s.Threshold = T
		wantRes, err := Replay(bytes.NewReader(data), s)
		if err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
		want := wantRes.Run
		if !reflect.DeepEqual(want, runs[T]) {
			t.Errorf("T=%d: forked sweep run differs from independent replay:\n want %+v\n got  %+v", T, want, runs[T])
		}
		if want.Relocations > 0 {
			relocated = true
		}
	}
	// The low thresholds must actually exercise relocation, or the
	// identity above proves nothing about post-crossing divergence.
	if !relocated {
		t.Error("no threshold relocated a page; pick lower thresholds")
	}

	if _, _, err := thresholdForkRuns(data, sys, nil, telemetry.Config{}); err == nil {
		t.Error("empty threshold list accepted")
	}
	if _, err := Replay(bytes.NewReader(data), sys, WithThresholds(0, 16)); err == nil {
		t.Error("threshold 0 accepted")
	}
}

// TestSweepThresholdForkMatchesPerPoint: a multi-point threshold sweep
// (which forks from one trunk) reports the same points as single-point
// sweeps (which simulate each threshold independently).
func TestSweepThresholdForkMatchesPerPoint(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	values := []SweepValue{IntValue(8), IntValue(128)}

	forkedH := New(scale)
	forked, _, err := forkedH.Sweep(data, AxisThreshold, values)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		h := New(scale)
		single, _, err := h.Sweep(data, AxisThreshold, values[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single[0], forked[i]) {
			t.Errorf("T=%s: forked sweep point %+v differs from independent point %+v", v, forked[i], single[0])
		}
	}
}
