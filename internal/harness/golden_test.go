package harness

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/stats"
	"rnuma/internal/workloads"
)

// update regenerates the golden fixtures instead of diffing against them:
//
//	go test ./internal/harness -run TestGoldenStats -update
var update = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// goldenScale is the fixture scale: small enough that regenerating the
// whole catalog takes seconds, large enough that every protocol mechanism
// (refetches, replacements, relocations) is exercised.
const goldenScale = 0.05

// goldenRun is the JSON-serializable image of a stats.Run. stats.Run
// itself cannot round-trip through encoding/json (RefetchByPage has a
// struct key), so the fixture flattens the maps into sorted slices —
// which also keeps the files diff-stable.
type goldenRun struct {
	ExecCycles     int64 `json:"execCycles"`
	Refs           int64 `json:"refs"`
	L1Hits         int64 `json:"l1Hits"`
	LocalFills     int64 `json:"localFills"`
	C2CTransfers   int64 `json:"c2cTransfers"`
	BlockCacheHits int64 `json:"blockCacheHits"`
	PageCacheHits  int64 `json:"pageCacheHits"`
	RemoteFetches  int64 `json:"remoteFetches"`
	Upgrades       int64 `json:"upgrades"`
	Refetches      int64 `json:"refetches"`
	PageFaults     int64 `json:"pageFaults"`
	Allocations    int64 `json:"allocations"`
	Replacements   int64 `json:"replacements"`
	Relocations    int64 `json:"relocations"`
	Demotions      int64 `json:"demotions"`
	FlushedBlocks  int64 `json:"flushedBlocks"`
	TLBShootdowns  int64 `json:"tlbShootdowns"`
	RemotePages    int64 `json:"remotePages"`
	InvalsSent     int64 `json:"invalsSent"`
	ThreeHopXfers  int64 `json:"threeHopXfers"`
	WritebacksHome int64 `json:"writebacksHome"`
	BusWaitCycles  int64 `json:"busWaitCycles"`
	NIWaitCycles   int64 `json:"niWaitCycles"`
	RADWaitCycles  int64 `json:"radWaitCycles"`
	RWRefetches    int64 `json:"rwRefetches"`

	// RefetchPages counts the (node, page) pairs with refetches and
	// RefetchDigest hashes the full sorted (node, page, count) list, so
	// the per-page distribution is pinned exactly without committing
	// hundreds of kilobytes of pairs per app.
	RefetchPages        int               `json:"refetchPages"`
	RefetchDigest       string            `json:"refetchDigest"`
	PerNodeReplacements []goldenNodeCount `json:"perNodeReplacements,omitempty"`
}

type goldenNodeCount struct {
	Node  int   `json:"node"`
	Count int64 `json:"count"`
}

func goldenFrom(r *stats.Run) goldenRun {
	g := goldenRun{
		ExecCycles: r.ExecCycles, Refs: r.Refs, L1Hits: r.L1Hits,
		LocalFills: r.LocalFills, C2CTransfers: r.C2CTransfers,
		BlockCacheHits: r.BlockCacheHits, PageCacheHits: r.PageCacheHits,
		RemoteFetches: r.RemoteFetches, Upgrades: r.Upgrades,
		Refetches: r.Refetches, PageFaults: r.PageFaults,
		Allocations: r.Allocations, Replacements: r.Replacements,
		Relocations: r.Relocations, Demotions: r.Demotions,
		FlushedBlocks: r.FlushedBlocks, TLBShootdowns: r.TLBShootdowns,
		RemotePages: r.RemotePages, InvalsSent: r.InvalsSent,
		ThreeHopXfers: r.ThreeHopXfers, WritebacksHome: r.WritebacksHome,
		BusWaitCycles: r.BusWaitCycles, NIWaitCycles: r.NIWaitCycles,
		RADWaitCycles: r.RADWaitCycles, RWRefetches: r.RWRefetches,
	}
	keys := make([]stats.PageKey, 0, len(r.RefetchByPage))
	for k := range r.RefetchByPage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Page != keys[j].Page {
			return keys[i].Page < keys[j].Page
		}
		return keys[i].Node < keys[j].Node
	})
	hash := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(hash, "%d/%d:%d\n", k.Node, k.Page, r.RefetchByPage[k])
	}
	g.RefetchPages = len(keys)
	g.RefetchDigest = fmt.Sprintf("%x", hash.Sum(nil)[:12])
	for n, c := range r.PerNodeReplacements {
		g.PerNodeReplacements = append(g.PerNodeReplacements, goldenNodeCount{Node: int(n), Count: c})
	}
	sort.Slice(g.PerNodeReplacements, func(i, j int) bool {
		return g.PerNodeReplacements[i].Node < g.PerNodeReplacements[j].Node
	})
	return g
}

// goldenSystems are the fixture columns, keyed by the JSON field name.
func goldenSystems() map[string]config.System {
	return map[string]config.System{
		"ccnuma": config.Base(config.CCNUMA),
		"scoma":  config.Base(config.SCOMA),
		"rnuma":  config.Base(config.RNUMA),
	}
}

// TestGoldenStats diffs every catalog application's stats.Run under the
// three base protocols against the committed testdata/golden fixtures.
// The simulator is deterministic (fixed seeds, serial event loop), so any
// divergence is a behavior change: either a bug, or an intended change
// that must be re-baselined explicitly with -update — figures can no
// longer shift silently under a refactor.
func TestGoldenStats(t *testing.T) {
	apps := workloads.Names()
	if testing.Short() && !*update {
		apps = []string{"barnes", "lu", "ocean"}
	}
	h := New(goldenScale)
	for _, app := range apps {
		app := app
		t.Run(app, func(t *testing.T) {
			got := make(map[string]goldenRun)
			for proto, sys := range goldenSystems() {
				run, err := h.Run(app, sys)
				if err != nil {
					t.Fatalf("%s on %s: %v", app, proto, err)
				}
				got[proto] = goldenFrom(run)
			}
			path := filepath.Join("testdata", "golden", app+".json")
			if *update {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (regenerate with -update): %v", err)
			}
			var want map[string]goldenRun
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("fixture: %v", err)
			}
			for proto := range goldenSystems() {
				w, ok := want[proto]
				if !ok {
					t.Errorf("%s: fixture lacks protocol %s (regenerate with -update)", app, proto)
					continue
				}
				if g := got[proto]; !reflect.DeepEqual(g, w) {
					t.Errorf("%s on %s: stats diverged from golden fixture.\nIf this change is intended, re-baseline with:\n  go test ./internal/harness -run TestGoldenStats -update\nfirst diff: %s",
						app, proto, firstGoldenDiff(w, g))
				}
			}
		})
	}
}

// firstGoldenDiff names the first field that differs (reflect.DeepEqual
// says only "not equal"; the log should say where).
func firstGoldenDiff(want, got goldenRun) string {
	wv, gv := reflect.ValueOf(want), reflect.ValueOf(got)
	tp := wv.Type()
	for i := 0; i < tp.NumField(); i++ {
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			return tp.Field(i).Name + ": golden=" + jsonish(wv.Field(i).Interface()) + " got=" + jsonish(gv.Field(i).Interface())
		}
	}
	return "(identical?)"
}

func jsonish(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}
