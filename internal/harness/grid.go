package harness

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"rnuma/internal/config"
	"rnuma/internal/tracefile"
)

// This file generalizes the one-axis sweep engine (sweep.go) to
// two-axis grids: one recorded trace transformed along a pair of
// parameter axes and replayed under all three designs at every (x, y)
// cell. The paper's robustness claim is really a claim about parameter
// *pairs* — R-NUMA tracks the better base protocol as machine shape and
// workload knobs move together — and a grid answers where that tracking
// stops (FindKnee, knee.go) instead of eyeballing two separate curves.
//
// Composition is canonical: the X transform applies first, then the Y
// transform, so a cell's trace variant registers under the composed
// name "name@<x>@<y>" and a grid column at fixed x is *by construction*
// the one-axis Y sweep of the X variant — same transforms, same content
// keys, same memo slots. The threshold axis stays a config-only axis
// exactly as in Sweep: cells along it share one registered variant
// source, differ only in sys.Threshold, and are pre-computed by the
// trunk-and-fork engine (fork.go), so a whole threshold line costs
// about one replay instead of one per cell.

// GridCell is one (x, y) configuration's result: the three base
// protocols' execution times normalized to the ideal machine of the
// same shape, geometry, and trace variant.
type GridCell struct {
	// Nodes and CPUsPerNode are the simulated machine shape at this cell.
	Nodes       int
	CPUsPerNode int
	// Normalized execution times.
	CCNUMA, SCOMA, RNUMA float64
}

// RNUMAOverBest reports R-NUMA's time relative to the better base
// protocol at this cell (the paper's bounded-worst-case ratio).
func (c GridCell) RNUMAOverBest() float64 {
	best := c.CCNUMA
	if c.SCOMA < best {
		best = c.SCOMA
	}
	if best == 0 {
		return 0
	}
	return c.RNUMA / best
}

// Grid is a two-axis sensitivity sweep's results. Values along each
// axis come back reduced, sorted, and deduplicated, exactly as Sweep
// returns its points; Cells[i][j] is the cell at (XValues[j],
// YValues[i]) — row index first, so a row shares a Y value and a
// column shares an X value.
type Grid struct {
	// Workload is the capture's embedded name.
	Workload string
	// AxisX applies first in the transform composition, AxisY second.
	AxisX, AxisY Axis
	// XValues/YValues are the swept values; XLabels/YLabels the
	// corresponding point labels ("b=32B", "T=64", ...).
	XValues, YValues []SweepValue
	XLabels, YLabels []string
	// Cells[i][j] is the cell at (XValues[j], YValues[i]).
	Cells [][]GridCell
}

// Row returns row i (YValues[i] held fixed) as one-axis sweep points
// along the X axis — the same shape Sweep returns, so FindKnee and the
// Sensitivity renderer apply to grid lines unchanged.
func (g *Grid) Row(i int) []AxisPoint {
	out := make([]AxisPoint, len(g.XValues))
	for j, c := range g.Cells[i] {
		out[j] = AxisPoint{
			Axis: g.AxisX, Value: g.XValues[j], Label: g.XLabels[j],
			Nodes: c.Nodes, CPUsPerNode: c.CPUsPerNode,
			CCNUMA: c.CCNUMA, SCOMA: c.SCOMA, RNUMA: c.RNUMA,
		}
	}
	return out
}

// Col returns column j (XValues[j] held fixed) as one-axis sweep points
// along the Y axis.
func (g *Grid) Col(j int) []AxisPoint {
	out := make([]AxisPoint, len(g.YValues))
	for i := range g.Cells {
		c := g.Cells[i][j]
		out[i] = AxisPoint{
			Axis: g.AxisY, Value: g.YValues[i], Label: g.YLabels[i],
			Nodes: c.Nodes, CPUsPerNode: c.CPUsPerNode,
			CCNUMA: c.CCNUMA, SCOMA: c.SCOMA, RNUMA: c.RNUMA,
		}
	}
	return out
}

// SweepGrid transforms the in-memory trace encoding along two distinct
// axes and replays every (x, y) cell under CC-NUMA, S-COMA, and R-NUMA
// plus the same-configuration ideal baseline. The X transform applies
// before the Y transform, so each cell's variant registers under the
// composed "<name>@<x>@<y>" source and overlapping grids and one-axis
// sweeps share simulations through the memo store. When one axis is
// the threshold, its cells share the other axis's variant source and
// every threshold line is pre-computed by the trunk-and-fork engine.
func (h *Harness) SweepGrid(data []byte, axisX Axis, valuesX []SweepValue, axisY Axis, valuesY []SweepValue) (*Grid, error) {
	if axisX == axisY {
		return nil, fmt.Errorf("harness: grid axes must differ (both %s)", axisX)
	}
	if len(valuesX) == 0 || len(valuesY) == 0 {
		return nil, fmt.Errorf("harness: %s x %s grid over no values", axisX, axisY)
	}
	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	hdr := d.Header()

	xs := normalizeSweepValues(valuesX)
	ys := normalizeSweepValues(valuesY)

	// The engine walks the transform axis on the outside (each outer
	// value encodes one variant trace) and the inner axis along it. A
	// threshold X axis has no transform of its own, so the axes swap
	// internally and the cells transpose back on assembly.
	swap := axisX == AxisThreshold
	outerAxis, outerVals, innerAxis, innerVals := axisX, xs, axisY, ys
	if swap {
		outerAxis, outerVals, innerAxis, innerVals = axisY, ys, axisX, xs
	}
	pts, outerLabels, innerLabels, err := h.gridPoints(data, hdr, outerAxis, outerVals, innerAxis, innerVals)
	if err != nil {
		return nil, err
	}

	plan := NewPlan()
	for _, line := range pts {
		for _, p := range line {
			plan.AddRuns([]string{p.app}, p.ideal, p.cc, p.scoma, p.rn)
		}
	}
	h.Prefetch(plan)

	g := &Grid{
		Workload: hdr.Name,
		AxisX:    axisX, AxisY: axisY,
		XValues: xs, YValues: ys,
		XLabels: outerLabels, YLabels: innerLabels,
		Cells: make([][]GridCell, len(ys)),
	}
	if swap {
		g.XLabels, g.YLabels = innerLabels, outerLabels
	}
	for i := range g.Cells {
		g.Cells[i] = make([]GridCell, len(xs))
		for j := range g.Cells[i] {
			var p sweepPoint
			if swap {
				p = pts[i][j] // outer = Y, inner = X
			} else {
				p = pts[j][i] // outer = X, inner = Y
			}
			cell, err := h.gridCell(p)
			if err != nil {
				return nil, err
			}
			g.Cells[i][j] = cell
		}
	}
	return g, nil
}

// SweepGridFile is SweepGrid over a trace file on disk.
func (h *Harness) SweepGridFile(path string, axisX Axis, valuesX []SweepValue, axisY Axis, valuesY []SweepValue) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	g, err := h.SweepGrid(data, axisX, valuesX, axisY, valuesY)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// gridPoints resolves every cell of a grid with the transform axis
// outer: pts[oi][ii] is the cell at (outer value oi, inner value ii).
// outerAxis is never the threshold (SweepGrid swaps first); innerAxis
// may be a second transform or the config-only threshold axis.
func (h *Harness) gridPoints(data []byte, hdr tracefile.Header, outerAxis Axis, outerVals []SweepValue, innerAxis Axis, innerVals []SweepValue) (pts [][]sweepPoint, outerLabels, innerLabels []string, err error) {
	pts = make([][]sweepPoint, len(outerVals))
	outerLabels = make([]string, len(outerVals))
	innerLabels = make([]string, len(innerVals))
	for oi, ov := range outerVals {
		encO, labelO, err := variantFor(data, hdr, outerAxis, ov)
		if err != nil {
			return nil, nil, nil, err
		}
		outerLabels[oi] = labelO
		od, err := tracefile.NewReader(bytes.NewReader(encO))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("harness: %s variant %s: %w", outerAxis, ov, err)
		}
		hdrO := od.Header()

		pts[oi] = make([]sweepPoint, len(innerVals))
		sharedApp := "" // the one registered source a threshold line shares
		for ii, iv := range innerVals {
			encI, labelI, err := variantFor(encO, hdrO, innerAxis, iv)
			if err != nil {
				return nil, nil, nil, err
			}
			innerLabels[ii] = labelI
			label := labelO + ", " + labelI
			pt := sweepPoint{value: iv, label: label}
			vh := hdrO
			if encI != nil {
				src, err := TraceSource(encI)
				if err != nil {
					return nil, nil, nil, err
				}
				if err := h.Register(src); err != nil {
					return nil, nil, nil, err
				}
				pt.app = src.Name()
				vh = src.(*traceSource).Header()
			} else {
				// The threshold axis replays the outer variant unchanged;
				// register it once per line under its own transformed name
				// (always "@"-suffixed, so it cannot shadow a catalog app).
				if sharedApp == "" {
					src, err := TraceSource(encO)
					if err != nil {
						return nil, nil, nil, err
					}
					if err := h.Register(src); err != nil {
						return nil, nil, nil, err
					}
					sharedApp = src.Name()
				}
				pt.app = sharedApp
			}
			pt.nodes, pt.cpusPer = vh.Nodes, vh.CPUs/vh.Nodes
			pt.ideal = sweepSystem(config.Ideal(), vh, label)
			pt.cc = sweepSystem(config.Base(config.CCNUMA), vh, label)
			pt.scoma = sweepSystem(config.Base(config.SCOMA), vh, label)
			pt.rn = sweepSystem(config.Base(config.RNUMA), vh, label)
			if innerAxis == AxisThreshold {
				pt.rn.Threshold = int(iv.Num)
			}
			pts[oi][ii] = pt
		}
		// A threshold line shares its whole replay prefix: one trunk at
		// the largest threshold, each cell forked from its watermark.
		if innerAxis == AxisThreshold && len(innerVals) > 1 {
			if err := h.forkThresholdPoints(encO, pts[oi]); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	return pts, outerLabels, innerLabels, nil
}

// gridCell assembles one resolved point's normalized cell from the
// store (Prefetch has already run the plan, so these are cache reads).
func (h *Harness) gridCell(p sweepPoint) (GridCell, error) {
	base, err := h.Run(p.app, p.ideal)
	if err != nil {
		return GridCell{}, err
	}
	cell := GridCell{Nodes: p.nodes, CPUsPerNode: p.cpusPer}
	for _, c := range []struct {
		sys  config.System
		into *float64
	}{
		{p.cc, &cell.CCNUMA},
		{p.scoma, &cell.SCOMA},
		{p.rn, &cell.RNUMA},
	} {
		run, err := h.Run(p.app, c.sys)
		if err != nil {
			return GridCell{}, err
		}
		*c.into = run.Normalized(base)
	}
	return cell, nil
}

// normalizeSweepValues reduces, sorts, and deduplicates axis values
// (2/4 and 1/2 are one point), shared by Sweep and SweepGrid.
func normalizeSweepValues(values []SweepValue) []SweepValue {
	vals := make([]SweepValue, 0, len(values))
	for _, v := range values {
		vals = append(vals, v.reduced())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Float() < vals[j].Float() })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || vals[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
