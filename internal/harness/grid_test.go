package harness

import (
	"bytes"
	"reflect"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/stats"
	"rnuma/internal/tracefile"
)

// TestSweepGridMatchesOneAxisSweeps is the grid engine's differential
// acceptance proof: every column of a block x threshold grid must
// DeepEqual the one-axis threshold Sweep of that column's block
// variant, and the row at the default threshold must DeepEqual the
// one-axis block Sweep of the original capture — same transforms, same
// content keys, bit-identical results.
func TestSweepGridMatchesOneAxisSweeps(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hdr := d.Header()

	blocks := []SweepValue{IntValue(16), IntValue(32)}
	// 64 is the default threshold, so the T=64 row must match a plain
	// block sweep (which leaves the threshold at its default).
	thresholds := []SweepValue{IntValue(16), IntValue(64)}

	h := New(scale)
	g, err := h.SweepGrid(data, AxisBlockSize, blocks, AxisThreshold, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if g.Workload != hdr.Name || g.AxisX != AxisBlockSize || g.AxisY != AxisThreshold {
		t.Fatalf("grid identity = %q %s x %s", g.Workload, g.AxisX, g.AxisY)
	}
	if len(g.Cells) != 2 || len(g.Cells[0]) != 2 {
		t.Fatalf("grid is %dx%d, want 2x2", len(g.Cells[0]), len(g.Cells))
	}

	// Columns: threshold swept at a fixed block size.
	for j, b := range blocks {
		enc, _, err := variantFor(data, hdr, AxisBlockSize, b)
		if err != nil {
			t.Fatal(err)
		}
		fresh := New(scale)
		want, _, err := fresh.Sweep(enc, AxisThreshold, thresholds)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Col(j); !reflect.DeepEqual(got, want) {
			t.Errorf("column b=%s differs from the one-axis threshold sweep:\n got %+v\nwant %+v", b, got, want)
		}
	}

	// Row at T=64: block swept at the default threshold.
	fresh := New(scale)
	want, _, err := fresh.Sweep(data, AxisBlockSize, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Row(1); !reflect.DeepEqual(got, want) {
		t.Errorf("row T=64 differs from the one-axis block sweep:\n got %+v\nwant %+v", got, want)
	}

	// A warm repeat of the same grid must be pure cache reads.
	before := h.Simulations()
	if _, err := h.SweepGrid(data, AxisBlockSize, blocks, AxisThreshold, thresholds); err != nil {
		t.Fatal(err)
	}
	if after := h.Simulations(); after != before {
		t.Errorf("warm grid repeat ran %d new simulations", after-before)
	}

	// Swapping the axes transposes the same cells.
	swapped, err := h.SweepGrid(data, AxisThreshold, thresholds, AxisBlockSize, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if h.Simulations() != before {
		t.Errorf("transposed grid ran %d new simulations", h.Simulations()-before)
	}
	for i := range g.Cells {
		for j := range g.Cells[i] {
			if swapped.Cells[j][i] != g.Cells[i][j] {
				t.Errorf("cell (%d,%d) does not transpose: %+v vs %+v", i, j, g.Cells[i][j], swapped.Cells[j][i])
			}
		}
	}

	// A non-square grid with the threshold on the X axis exercises the
	// internal axis swap where len(xs) != len(ys).
	threshold3 := []SweepValue{IntValue(16), IntValue(64), IntValue(256)}
	wide, err := h.SweepGrid(data, AxisThreshold, threshold3, AxisBlockSize, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Cells) != len(blocks) || len(wide.Cells[0]) != len(threshold3) {
		t.Fatalf("non-square grid is %dx%d cells, want %dx%d",
			len(wide.Cells[0]), len(wide.Cells), len(threshold3), len(blocks))
	}
	tall, err := h.SweepGrid(data, AxisBlockSize, blocks, AxisThreshold, threshold3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wide.XLabels, tall.YLabels) || !reflect.DeepEqual(wide.YLabels, tall.XLabels) {
		t.Errorf("non-square labels do not transpose: %v/%v vs %v/%v",
			wide.XLabels, wide.YLabels, tall.XLabels, tall.YLabels)
	}
	for i := range tall.Cells {
		for j := range tall.Cells[i] {
			if wide.Cells[j][i] != tall.Cells[i][j] {
				t.Errorf("non-square cell (%d,%d) does not transpose: %+v vs %+v",
					i, j, tall.Cells[i][j], wide.Cells[j][i])
			}
		}
	}
}

// TestSweepGridForkMatchesDirectReplay checks the trunk-and-fork path a
// grid's threshold lines ride: each forked cell's R-NUMA run must be
// bit-identical (stats.Diff empty) to an independent full replay of the
// block variant at that threshold.
func TestSweepGridForkMatchesDirectReplay(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hdr := d.Header()

	h := New(scale)
	thresholds := []SweepValue{IntValue(16), IntValue(256)}
	if _, err := h.SweepGrid(data, AxisBlockSize, []SweepValue{IntValue(32)}, AxisThreshold, thresholds); err != nil {
		t.Fatal(err)
	}

	enc, _, err := variantFor(data, hdr, AxisBlockSize, IntValue(32))
	if err != nil {
		t.Fatal(err)
	}
	vd, err := tracefile.NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	vh := vd.Header()
	for _, T := range []int{16, 256} {
		sys := config.Base(config.RNUMA)
		sys.Nodes = vh.Nodes
		sys.CPUsPerNode = vh.CPUs / vh.Nodes
		sys.Geometry = vh.Geometry
		sys.Threshold = T
		// The grid registered the variant under its embedded name; the
		// system name is not part of the memo key, so this reads the
		// forked result straight from the store.
		got, err := h.Run(vh.Name, sys)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Replay(bytes.NewReader(enc), sys)
		if err != nil {
			t.Fatal(err)
		}
		if delta := stats.Diff(got, direct.Run); !delta.Identical() {
			t.Errorf("T=%d: forked grid cell differs from a direct replay in %d counters", T, delta.Differing)
		}
	}
}

// TestSweepGridCommutingRow pins the canonical composition order on a
// two-transform grid: a dilate x block grid applies dilate (X) first,
// and because gap dilation and geometry re-splitting commute on
// content, each row must still DeepEqual the one-axis dilate sweep of
// that row's block variant.
func TestSweepGridCommutingRow(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hdr := d.Header()

	factors, err := ParseSweepValues(AxisDilate, "1/2,2")
	if err != nil {
		t.Fatal(err)
	}
	blocks := []SweepValue{IntValue(32), IntValue(64)}
	h := New(scale)
	g, err := h.SweepGrid(data, AxisDilate, factors, AxisBlockSize, blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		enc, _, err := variantFor(data, hdr, AxisBlockSize, b)
		if err != nil {
			t.Fatal(err)
		}
		fresh := New(scale)
		want, _, err := fresh.Sweep(enc, AxisDilate, factors)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Row(i); !reflect.DeepEqual(got, want) {
			t.Errorf("row b=%s differs from the one-axis dilate sweep of the block variant:\n got %+v\nwant %+v", b, got, want)
		}
	}
}

// TestSweepGridRejections covers the grid engine's argument errors.
func TestSweepGridRejections(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	h := New(scale)
	one := []SweepValue{IntValue(32)}
	if _, err := h.SweepGrid(data, AxisBlockSize, one, AxisBlockSize, one); err == nil {
		t.Error("equal axes accepted")
	}
	if _, err := h.SweepGrid(data, AxisBlockSize, nil, AxisThreshold, one); err == nil {
		t.Error("empty X values accepted")
	}
	if _, err := h.SweepGrid(data, AxisBlockSize, one, AxisThreshold, nil); err == nil {
		t.Error("empty Y values accepted")
	}
	if _, err := h.SweepGrid(data, AxisBlockSize, one, AxisThreshold, []SweepValue{IntValue(0)}); err == nil {
		t.Error("threshold 0 accepted")
	}
}

// kneePoints builds a synthetic sweep line with the given R-NUMA/best
// ratios (CC-NUMA pinned at 1 so RNUMA is the ratio).
func kneePoints(ratios ...float64) []AxisPoint {
	pts := make([]AxisPoint, len(ratios))
	for i, r := range ratios {
		pts[i] = AxisPoint{
			Axis:  AxisThreshold,
			Value: IntValue(1 << i),
			Label: string(rune('a' + i)),
			// SCOMA above CC-NUMA so CC-NUMA (1.0) is "best".
			CCNUMA: 1, SCOMA: 2, RNUMA: r,
		}
	}
	return pts
}

// TestFindKnee covers the knee detector's edge cases: no knee, knee at
// the first point, a non-monotone line (first crossing reported even
// when later points recover), and the empty line.
func TestFindKnee(t *testing.T) {
	// All within the bound: no knee, max reported.
	k := FindKnee(kneePoints(1.0, 1.05, 1.08), 1.10)
	if k.Index != -1 || k.MaxIndex != 2 || k.MaxRatio != 1.08 {
		t.Errorf("no-knee line: %+v", k)
	}
	if got := k.String(); got != "within 1.10x everywhere (max 1.08x at c)" {
		t.Errorf("no-knee summary = %q", got)
	}

	// Knee at the first point.
	k = FindKnee(kneePoints(1.5, 1.2, 1.3), 1.10)
	if k.Index != 0 || k.Ratio != 1.5 || k.MaxIndex != 0 {
		t.Errorf("first-point knee: %+v", k)
	}

	// Non-monotone: the knee is the first crossing, the plateau the max,
	// even though the line dips back under the bound in between.
	k = FindKnee(kneePoints(1.0, 1.2, 1.05, 1.4), 1.10)
	if k.Index != 1 || k.Ratio != 1.2 {
		t.Errorf("non-monotone knee at %d (%v), want 1", k.Index, k.Ratio)
	}
	if k.MaxIndex != 3 || k.MaxRatio != 1.4 {
		t.Errorf("non-monotone max at %d (%v), want 3", k.MaxIndex, k.MaxRatio)
	}
	if got := k.String(); got != "exceeds 1.10x at b (1.20x), worst 1.40x at d" {
		t.Errorf("knee summary = %q", got)
	}

	// bound <= 0 selects the default.
	if k = FindKnee(kneePoints(1.2), 0); k.Bound != DefaultKneeBound || k.Index != 0 {
		t.Errorf("default bound: %+v", k)
	}

	// Empty line.
	if k = FindKnee(nil, 1.10); k.Index != -1 || k.MaxIndex != -1 || k.String() != "no points" {
		t.Errorf("empty line: %+v", k)
	}
}
