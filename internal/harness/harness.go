// Package harness drives the paper's experiments: it instantiates
// machines, executes workloads, and produces the rows of every table and
// figure in the evaluation (Section 5).
//
// The experiment grid is declared as a Plan of Jobs (one per (application,
// system) pair) and executed by a concurrent scheduler: runs are memoized
// in a singleflight cache, so figures that share configurations (e.g., the
// ideal baseline) reuse results and concurrent requests for the same
// configuration run it exactly once. Workers bounds the fan-out; figure
// assembly is serial and reads only the cache, so results are identical to
// a serial run regardless of schedule.
package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/workloads"
)

// Harness runs experiments at a given workload scale.
type Harness struct {
	// Scale multiplies workload iteration counts (1.0 = evaluation size).
	Scale float64
	// Seed perturbs the workload generators' RNGs (workloads.Config.Seed).
	// The default 0 keeps the built-in fixed seeds, so results — and any
	// traces recorded from them — are bit-reproducible run to run.
	// Recorded-trace sources ignore it (their references are baked in).
	Seed int64
	// Log, if non-nil, receives progress lines (serialized across workers).
	Log io.Writer
	// Workers bounds how many simulations run concurrently when a plan is
	// prefetched: 0 means GOMAXPROCS, 1 forces serial execution. Individual
	// Run calls are always synchronous; Workers only governs plan fan-out.
	Workers int
	// Telemetry, when enabled (Window > 0), attaches a sampling probe to
	// every machine the harness builds: each memoized Run then carries a
	// telemetry.Timeline alongside its counters. The memo cache stays
	// keyed on (app, system) alone because the configuration is
	// harness-wide and a probe never changes a run's counters.
	Telemetry telemetry.Config
	// Progress, if non-nil, receives periodic jobs-done/total + refs/sec
	// lines while Prefetch executes a plan (CLIs pass os.Stderr under
	// -progress).
	Progress io.Writer
	// Store memoizes simulation results (singleflight: exactly one run
	// per JobKey, even under concurrent requests). New installs a fresh
	// MemoryStore; replace it before first use to share results across
	// harnesses (the server gives every request its own Harness — own
	// Progress/Log — over one shared Store) or to persist them
	// (DiskStore).
	Store Store

	// srcMu guards the source registry only. It is deliberately separate
	// from the store's internal locking so registering artifacts never
	// contends with result lookups: a server can accept uploads while
	// long simulations are in flight.
	srcMu   sync.Mutex
	logMu   sync.Mutex        // serializes progress lines
	sources map[string]Source // registered spec/trace workloads, by name

	sims atomic.Int64 // simulations this harness executed itself
}

// New builds a harness.
func New(scale float64) *Harness {
	return &Harness{Scale: scale, Store: NewMemoryStore()}
}

// store returns the harness's Store, installing a MemoryStore on first
// use for zero-valued harnesses built without New.
func (h *Harness) store() Store {
	h.srcMu.Lock()
	defer h.srcMu.Unlock()
	if h.Store == nil {
		h.Store = NewMemoryStore()
	}
	return h.Store
}

// Simulations reports how many simulations this harness has executed
// itself. Results served by the store — computed earlier, by another
// harness on the same store, or loaded from disk — are not counted,
// which is exactly what makes it the server's per-job "new work"
// accounting.
func (h *Harness) Simulations() int64 { return h.sims.Load() }

func (h *Harness) logf(format string, args ...any) {
	if h.Log == nil {
		return
	}
	h.logMu.Lock()
	fmt.Fprintf(h.Log, format+"\n", args...)
	h.logMu.Unlock()
}

func sysKey(s config.System) string {
	soft := ""
	if s.Costs.SoftTrap != config.BaseCosts().SoftTrap {
		soft = "-soft"
	}
	// The machine shape and geometry are part of the identity: sweeps run
	// the same protocol at several sizes and block/page geometries and
	// must not share cache slots.
	return fmt.Sprintf("%v-g%d.%d-n%d-c%d-bc%d-pc%d-T%d%s",
		s.Protocol, s.Geometry.BlockShift, s.Geometry.PageShift,
		s.Nodes, s.CPUsPerNode, s.BlockCacheBytes, s.PageCacheBytes, s.Threshold, soft)
}

// Run executes (with memoization) one application under one system.
func (h *Harness) Run(appName string, sys config.System) (*stats.Run, error) {
	return h.runJob(NewJob(appName, sys))
}

// runJob executes a job through the singleflight store: exactly one
// simulation per key ever runs, even under concurrent requests (from
// this harness or any other harness sharing the store).
func (h *Harness) runJob(j Job) (*stats.Run, error) {
	key := h.KeyFor(j)
	st := h.store()
	run, owner, err := st.StartOrWait(key)
	if !owner {
		return run, err
	}
	// The claim MUST resolve: a panic in simulate would otherwise leave
	// every waiter on this key blocked forever. Commit the failure as the
	// result, then let the panic continue to the caller.
	committed := false
	defer func() {
		if committed {
			return
		}
		r := recover()
		st.Commit(key, nil, fmt.Errorf("harness: %s: simulation panicked: %v", key, r))
		if r != nil {
			panic(r)
		}
	}()
	run, err = h.simulate(j)
	h.sims.Add(1)
	st.Commit(key, run, err)
	committed = true
	return run, err
}

// simulate builds the workload and machine for a job and runs it. Each
// call constructs a fresh Machine, so concurrent jobs share no mutable
// state; the workload build is deterministic (fixed seeds), so results do
// not depend on the schedule. Registered sources (spec files, recorded
// traces) take precedence over the built-in catalog.
func (h *Harness) simulate(j Job) (*stats.Run, error) {
	cfg := workloads.Config{
		Nodes:       j.Sys.Nodes,
		CPUsPerNode: j.Sys.CPUsPerNode,
		Geometry:    j.Sys.Geometry,
		Scale:       h.Scale,
		Seed:        h.Seed,
	}
	var w *workloads.Workload
	if src := h.source(j.App); src != nil {
		var err error
		if w, err = src.Load(cfg); err != nil {
			return nil, err
		}
	} else {
		app, ok := workloads.ByName(j.App)
		if !ok {
			return nil, fmt.Errorf("harness: unknown application %q", j.App)
		}
		w = app.Build(cfg)
	}
	// Check also releases the workload's resources (trace sources hold an
	// open file), so it must run on every path once the workload is
	// loaded — not only after a successful simulation.
	checked := false
	check := func() error {
		if w.Check == nil || checked {
			return nil
		}
		checked = true
		return w.Check()
	}
	defer check() //nolint:errcheck // error path below already reported one

	opts := make([]machine.Option, 0, len(j.opts)+3)
	opts = append(opts, j.opts...)
	if !j.skipHomes {
		opts = append(opts, machine.WithHomes(w.Homes))
	}
	opts = append(opts, machine.WithPages(w.SharedPages))
	if h.Telemetry.Enabled() {
		opts = append(opts, machine.WithTelemetry(h.Telemetry))
	}
	if w.Attribution != nil {
		opts = append(opts, machine.WithAttribution(w.Attribution))
	}
	m, err := machine.New(j.Sys, opts...)
	if err != nil {
		return nil, err
	}
	if j.Tag != "" {
		h.logf("running %-9s on %-40s [%s]", j.App, j.Sys.Name, j.Tag)
	} else {
		h.logf("running %-9s on %-40s", j.App, j.Sys.Name)
	}
	run, err := m.Run(w.Streams)
	if err != nil {
		return nil, err
	}
	// Replayed traces cannot report I/O or decode errors through
	// trace.Stream; a failure here means the run saw truncated input.
	if err := check(); err != nil {
		return nil, err
	}
	h.logf("  %s", run.Summary())
	return run, nil
}

// Ideal returns the app's run on the normalization baseline (CC-NUMA with
// an infinite block cache).
func (h *Harness) Ideal(appName string) (*stats.Run, error) {
	return h.Run(appName, config.Ideal())
}

// Normalized returns the app's execution time under sys relative to the
// ideal machine.
func (h *Harness) Normalized(appName string, sys config.System) (float64, error) {
	run, err := h.Run(appName, sys)
	if err != nil {
		return 0, err
	}
	base, err := h.Ideal(appName)
	if err != nil {
		return 0, err
	}
	return run.Normalized(base), nil
}

// ---------------------------------------------------------------------
// Figure 5: cumulative distribution of refetches over remote pages under
// CC-NUMA with a 32-KB block cache.

// Fig5Curve is one application's CDF.
type Fig5Curve struct {
	App    string
	Points []stats.CDFPoint
	// At10/At30 sample the curve at 10% and 30% of remote pages (the
	// paper's headline observations).
	At10, At30 float64
}

// Figure5 computes the refetch CDFs. Applications with no refetches (fft)
// return an empty curve, matching the paper's omission of fft.
func (h *Harness) Figure5(apps []string) ([]Fig5Curve, error) {
	h.Prefetch(h.Figure5Plan(apps))
	out := make([]Fig5Curve, 0, len(apps))
	for _, a := range apps {
		run, err := h.Run(a, config.Base(config.CCNUMA))
		if err != nil {
			return nil, err
		}
		pts := run.RefetchCDF(int(run.RemotePages))
		out = append(out, Fig5Curve{
			App:    a,
			Points: pts,
			At10:   stats.CDFAt(pts, 10),
			At30:   stats.CDFAt(pts, 30),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Table 4: read-write page refetch fraction in CC-NUMA; R-NUMA refetches
// and replacements relative to CC-NUMA and S-COMA.

// Table4Row is one application's row.
type Table4Row struct {
	App string
	// RWPagePct: percent of CC-NUMA refetches due to pages with both read
	// and write sharing traffic.
	RWPagePct float64
	// RefetchPct: R-NUMA refetches as a percentage of CC-NUMA's.
	RefetchPct float64
	// ReplacementPct: R-NUMA page replacements as a percentage of
	// S-COMA's.
	ReplacementPct float64
}

// Table4 computes the characterization table.
func (h *Harness) Table4(apps []string) ([]Table4Row, error) {
	h.Prefetch(h.Table4Plan(apps))
	out := make([]Table4Row, 0, len(apps))
	for _, a := range apps {
		cc, err := h.Run(a, config.Base(config.CCNUMA))
		if err != nil {
			return nil, err
		}
		sc, err := h.Run(a, config.Base(config.SCOMA))
		if err != nil {
			return nil, err
		}
		rn, err := h.Run(a, config.Base(config.RNUMA))
		if err != nil {
			return nil, err
		}
		out = append(out, Table4Row{
			App:            a,
			RWPagePct:      100 * stats.Ratio(cc.RWRefetches, cc.Refetches),
			RefetchPct:     100 * stats.Ratio(rn.Refetches, cc.Refetches),
			ReplacementPct: 100 * stats.Ratio(rn.Replacements, sc.Replacements),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 6: normalized execution time under the base configurations.

// Fig6Row is one application's three bars.
type Fig6Row struct {
	App                       string
	CCNUMA, SCOMA, RNUMA      float64
	BestOfBase, RNUMAOverBest float64
}

// Figure6 computes the base-system comparison.
func (h *Harness) Figure6(apps []string) ([]Fig6Row, error) {
	h.Prefetch(h.Figure6Plan(apps))
	out := make([]Fig6Row, 0, len(apps))
	for _, a := range apps {
		cc, err := h.Normalized(a, config.Base(config.CCNUMA))
		if err != nil {
			return nil, err
		}
		sc, err := h.Normalized(a, config.Base(config.SCOMA))
		if err != nil {
			return nil, err
		}
		rn, err := h.Normalized(a, config.Base(config.RNUMA))
		if err != nil {
			return nil, err
		}
		best := cc
		if sc < best {
			best = sc
		}
		out = append(out, Fig6Row{
			App: a, CCNUMA: cc, SCOMA: sc, RNUMA: rn,
			BestOfBase:    best,
			RNUMAOverBest: rn / best,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 7: cache-size sensitivity.

// Fig7Row holds the five configurations of Figure 7 for one application.
type Fig7Row struct {
	App       string
	CC1K      float64 // CC-NUMA, 1-KB block cache
	CC32K     float64 // CC-NUMA, 32-KB block cache
	R128p320K float64 // R-NUMA, 128-B block cache, 320-KB page cache
	R32Kp320K float64 // R-NUMA, 32-KB block cache, 320-KB page cache
	R128p40M  float64 // R-NUMA, 128-B block cache, 40-MB page cache
}

// fig7Systems are Figure 7's non-base configurations, shared between the
// plan declaration and the assembly so both name identical systems.
type fig7Sys struct {
	cc1k, r32k, r40m config.System
}

func fig7Systems() fig7Sys {
	cc1k := config.Base(config.CCNUMA)
	cc1k.Name = "CC-NUMA b=1K"
	cc1k.BlockCacheBytes = 1 << 10

	r32k := config.Base(config.RNUMA)
	r32k.Name = "R-NUMA b=32K p=320K"
	r32k.BlockCacheBytes = 32 << 10

	r40m := config.Base(config.RNUMA)
	r40m.Name = "R-NUMA b=128 p=40M"
	r40m.PageCacheBytes = 40 << 20
	return fig7Sys{cc1k: cc1k, r32k: r32k, r40m: r40m}
}

// Figure7 computes the cache-size sensitivity study.
func (h *Harness) Figure7(apps []string) ([]Fig7Row, error) {
	h.Prefetch(h.Figure7Plan(apps))
	s := fig7Systems()
	out := make([]Fig7Row, 0, len(apps))
	for _, a := range apps {
		row := Fig7Row{App: a}
		var err error
		if row.CC1K, err = h.Normalized(a, s.cc1k); err != nil {
			return nil, err
		}
		if row.CC32K, err = h.Normalized(a, config.Base(config.CCNUMA)); err != nil {
			return nil, err
		}
		if row.R128p320K, err = h.Normalized(a, config.Base(config.RNUMA)); err != nil {
			return nil, err
		}
		if row.R32Kp320K, err = h.Normalized(a, s.r32k); err != nil {
			return nil, err
		}
		if row.R128p40M, err = h.Normalized(a, s.r40m); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 8: relocation-threshold sensitivity.

// Fig8Thresholds are the paper's threshold values.
var Fig8Thresholds = []int{16, 64, 256, 1024}

// Fig8Row holds execution times at each threshold normalized to T=64.
type Fig8Row struct {
	App string
	ByT map[int]float64
}

// fig8System is R-NUMA at threshold T, as both the plan and the assembly
// name it.
func fig8System(T int) config.System {
	sys := config.Base(config.RNUMA)
	sys.Threshold = T
	sys.Name = fmt.Sprintf("R-NUMA T=%d", T)
	return sys
}

// Figure8 computes the threshold sensitivity study.
func (h *Harness) Figure8(apps []string) ([]Fig8Row, error) {
	h.Prefetch(h.Figure8Plan(apps))
	out := make([]Fig8Row, 0, len(apps))
	for _, a := range apps {
		base, err := h.Run(a, config.Base(config.RNUMA)) // T=64
		if err != nil {
			return nil, err
		}
		row := Fig8Row{App: a, ByT: make(map[int]float64, len(Fig8Thresholds))}
		for _, T := range Fig8Thresholds {
			run, err := h.Run(a, fig8System(T))
			if err != nil {
				return nil, err
			}
			row.ByT[T] = run.Normalized(base)
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 9: page-fault and TLB-invalidation overhead sensitivity.

// Fig9Row holds the four systems of Figure 9 normalized to the ideal
// machine.
type Fig9Row struct {
	App                                string
	SCOMA, SCOMASoft, RNUMA, RNUMASoft float64
}

// fig9Systems are the SOFT-cost variants of Figure 9.
type fig9Sys struct {
	scSoft, rnSoft config.System
}

func fig9Systems() fig9Sys {
	scSoft := config.Base(config.SCOMA)
	scSoft.Name = "S-COMA-SOFT"
	scSoft.Costs = config.SoftCosts()

	rnSoft := config.Base(config.RNUMA)
	rnSoft.Name = "R-NUMA-SOFT"
	rnSoft.Costs = config.SoftCosts()
	return fig9Sys{scSoft: scSoft, rnSoft: rnSoft}
}

// Figure9 computes the overhead sensitivity study (SOFT = 10-µs traps and
// 5-µs software TLB shootdowns).
func (h *Harness) Figure9(apps []string) ([]Fig9Row, error) {
	h.Prefetch(h.Figure9Plan(apps))
	s := fig9Systems()
	out := make([]Fig9Row, 0, len(apps))
	for _, a := range apps {
		row := Fig9Row{App: a}
		var err error
		if row.SCOMA, err = h.Normalized(a, config.Base(config.SCOMA)); err != nil {
			return nil, err
		}
		if row.SCOMASoft, err = h.Normalized(a, s.scSoft); err != nil {
			return nil, err
		}
		if row.RNUMA, err = h.Normalized(a, config.Base(config.RNUMA)); err != nil {
			return nil, err
		}
		if row.RNUMASoft, err = h.Normalized(a, s.rnSoft); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------

// LuImbalance reports the per-node replacement distribution for lu under
// S-COMA (Section 5.5: two nodes perform over half the replacements).
func (h *Harness) LuImbalance() (topTwoShare float64, err error) {
	run, err := h.Run("lu", config.Base(config.SCOMA))
	if err != nil {
		return 0, err
	}
	var counts []int64
	var total int64
	for _, c := range run.PerNodeReplacements {
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return 0, nil
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var top int64
	for i := 0; i < 2 && i < len(counts); i++ {
		top += counts[i]
	}
	return float64(top) / float64(total), nil
}

// AllApps returns the Table 3 application names.
func AllApps() []string { return workloads.Names() }

// HomesOf is a small helper for tests: builds the workload and returns its
// homes function.
func HomesOf(appName string, sys config.System, scale float64) (func(addr.PageNum) addr.NodeID, error) {
	app, ok := workloads.ByName(appName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown application %q", appName)
	}
	w := app.Build(workloads.Config{Nodes: sys.Nodes, CPUsPerNode: sys.CPUsPerNode, Geometry: sys.Geometry, Scale: scale})
	return w.Homes, nil
}
