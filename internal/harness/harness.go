// Package harness drives the paper's experiments: it instantiates
// machines, executes workloads, and produces the rows of every table and
// figure in the evaluation (Section 5). Runs are memoized so figures that
// share configurations (e.g., the ideal baseline) reuse results.
package harness

import (
	"fmt"
	"io"
	"sort"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
	"rnuma/internal/workloads"
)

// Harness runs experiments at a given workload scale.
type Harness struct {
	// Scale multiplies workload iteration counts (1.0 = evaluation size).
	Scale float64
	// Log, if non-nil, receives progress lines.
	Log io.Writer

	cache map[string]cached
}

type cached struct {
	run *stats.Run
	err error
}

// New builds a harness.
func New(scale float64) *Harness {
	return &Harness{Scale: scale, cache: make(map[string]cached)}
}

func (h *Harness) logf(format string, args ...any) {
	if h.Log != nil {
		fmt.Fprintf(h.Log, format+"\n", args...)
	}
}

func sysKey(s config.System) string {
	soft := ""
	if s.Costs.SoftTrap != config.BaseCosts().SoftTrap {
		soft = "-soft"
	}
	return fmt.Sprintf("%v-bc%d-pc%d-T%d%s", s.Protocol, s.BlockCacheBytes, s.PageCacheBytes, s.Threshold, soft)
}

// Run executes (with memoization) one application under one system.
func (h *Harness) Run(appName string, sys config.System) (*stats.Run, error) {
	key := appName + "|" + sysKey(sys)
	if c, ok := h.cache[key]; ok {
		return c.run, c.err
	}
	run, err := h.runOnce(appName, sys)
	h.cache[key] = cached{run, err}
	return run, err
}

func (h *Harness) runOnce(appName string, sys config.System) (*stats.Run, error) {
	app, ok := workloads.ByName(appName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown application %q", appName)
	}
	cfg := workloads.Config{
		Nodes:       sys.Nodes,
		CPUsPerNode: sys.CPUsPerNode,
		Geometry:    sys.Geometry,
		Scale:       h.Scale,
	}
	w := app.Build(cfg)
	m, err := machine.New(sys, machine.WithHomes(w.Homes))
	if err != nil {
		return nil, err
	}
	h.logf("running %-9s on %-40s", appName, sys.Name)
	run, err := m.Run(w.Streams)
	if err != nil {
		return nil, err
	}
	h.logf("  %s", run.Summary())
	return run, nil
}

// Ideal returns the app's run on the normalization baseline (CC-NUMA with
// an infinite block cache).
func (h *Harness) Ideal(appName string) (*stats.Run, error) {
	return h.Run(appName, config.Ideal())
}

// Normalized returns the app's execution time under sys relative to the
// ideal machine.
func (h *Harness) Normalized(appName string, sys config.System) (float64, error) {
	run, err := h.Run(appName, sys)
	if err != nil {
		return 0, err
	}
	base, err := h.Ideal(appName)
	if err != nil {
		return 0, err
	}
	return run.Normalized(base), nil
}

// ---------------------------------------------------------------------
// Figure 5: cumulative distribution of refetches over remote pages under
// CC-NUMA with a 32-KB block cache.

// Fig5Curve is one application's CDF.
type Fig5Curve struct {
	App    string
	Points []stats.CDFPoint
	// At10/At30 sample the curve at 10% and 30% of remote pages (the
	// paper's headline observations).
	At10, At30 float64
}

// Figure5 computes the refetch CDFs. Applications with no refetches (fft)
// return an empty curve, matching the paper's omission of fft.
func (h *Harness) Figure5(apps []string) ([]Fig5Curve, error) {
	out := make([]Fig5Curve, 0, len(apps))
	for _, a := range apps {
		run, err := h.Run(a, config.Base(config.CCNUMA))
		if err != nil {
			return nil, err
		}
		pts := run.RefetchCDF(int(run.RemotePages))
		out = append(out, Fig5Curve{
			App:    a,
			Points: pts,
			At10:   stats.CDFAt(pts, 10),
			At30:   stats.CDFAt(pts, 30),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Table 4: read-write page refetch fraction in CC-NUMA; R-NUMA refetches
// and replacements relative to CC-NUMA and S-COMA.

// Table4Row is one application's row.
type Table4Row struct {
	App string
	// RWPagePct: percent of CC-NUMA refetches due to pages with both read
	// and write sharing traffic.
	RWPagePct float64
	// RefetchPct: R-NUMA refetches as a percentage of CC-NUMA's.
	RefetchPct float64
	// ReplacementPct: R-NUMA page replacements as a percentage of
	// S-COMA's.
	ReplacementPct float64
}

// Table4 computes the characterization table.
func (h *Harness) Table4(apps []string) ([]Table4Row, error) {
	out := make([]Table4Row, 0, len(apps))
	for _, a := range apps {
		cc, err := h.Run(a, config.Base(config.CCNUMA))
		if err != nil {
			return nil, err
		}
		sc, err := h.Run(a, config.Base(config.SCOMA))
		if err != nil {
			return nil, err
		}
		rn, err := h.Run(a, config.Base(config.RNUMA))
		if err != nil {
			return nil, err
		}
		out = append(out, Table4Row{
			App:            a,
			RWPagePct:      100 * stats.Ratio(cc.RWRefetches, cc.Refetches),
			RefetchPct:     100 * stats.Ratio(rn.Refetches, cc.Refetches),
			ReplacementPct: 100 * stats.Ratio(rn.Replacements, sc.Replacements),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 6: normalized execution time under the base configurations.

// Fig6Row is one application's three bars.
type Fig6Row struct {
	App                       string
	CCNUMA, SCOMA, RNUMA      float64
	BestOfBase, RNUMAOverBest float64
}

// Figure6 computes the base-system comparison.
func (h *Harness) Figure6(apps []string) ([]Fig6Row, error) {
	out := make([]Fig6Row, 0, len(apps))
	for _, a := range apps {
		cc, err := h.Normalized(a, config.Base(config.CCNUMA))
		if err != nil {
			return nil, err
		}
		sc, err := h.Normalized(a, config.Base(config.SCOMA))
		if err != nil {
			return nil, err
		}
		rn, err := h.Normalized(a, config.Base(config.RNUMA))
		if err != nil {
			return nil, err
		}
		best := cc
		if sc < best {
			best = sc
		}
		out = append(out, Fig6Row{
			App: a, CCNUMA: cc, SCOMA: sc, RNUMA: rn,
			BestOfBase:    best,
			RNUMAOverBest: rn / best,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 7: cache-size sensitivity.

// Fig7Row holds the five configurations of Figure 7 for one application.
type Fig7Row struct {
	App       string
	CC1K      float64 // CC-NUMA, 1-KB block cache
	CC32K     float64 // CC-NUMA, 32-KB block cache
	R128p320K float64 // R-NUMA, 128-B block cache, 320-KB page cache
	R32Kp320K float64 // R-NUMA, 32-KB block cache, 320-KB page cache
	R128p40M  float64 // R-NUMA, 128-B block cache, 40-MB page cache
}

// Figure7 computes the cache-size sensitivity study.
func (h *Harness) Figure7(apps []string) ([]Fig7Row, error) {
	cc1k := config.Base(config.CCNUMA)
	cc1k.Name = "CC-NUMA b=1K"
	cc1k.BlockCacheBytes = 1 << 10

	r32k := config.Base(config.RNUMA)
	r32k.Name = "R-NUMA b=32K p=320K"
	r32k.BlockCacheBytes = 32 << 10

	r40m := config.Base(config.RNUMA)
	r40m.Name = "R-NUMA b=128 p=40M"
	r40m.PageCacheBytes = 40 << 20

	out := make([]Fig7Row, 0, len(apps))
	for _, a := range apps {
		row := Fig7Row{App: a}
		var err error
		if row.CC1K, err = h.Normalized(a, cc1k); err != nil {
			return nil, err
		}
		if row.CC32K, err = h.Normalized(a, config.Base(config.CCNUMA)); err != nil {
			return nil, err
		}
		if row.R128p320K, err = h.Normalized(a, config.Base(config.RNUMA)); err != nil {
			return nil, err
		}
		if row.R32Kp320K, err = h.Normalized(a, r32k); err != nil {
			return nil, err
		}
		if row.R128p40M, err = h.Normalized(a, r40m); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 8: relocation-threshold sensitivity.

// Fig8Thresholds are the paper's threshold values.
var Fig8Thresholds = []int{16, 64, 256, 1024}

// Fig8Row holds execution times at each threshold normalized to T=64.
type Fig8Row struct {
	App string
	ByT map[int]float64
}

// Figure8 computes the threshold sensitivity study.
func (h *Harness) Figure8(apps []string) ([]Fig8Row, error) {
	out := make([]Fig8Row, 0, len(apps))
	for _, a := range apps {
		base, err := h.Run(a, config.Base(config.RNUMA)) // T=64
		if err != nil {
			return nil, err
		}
		row := Fig8Row{App: a, ByT: make(map[int]float64, len(Fig8Thresholds))}
		for _, T := range Fig8Thresholds {
			sys := config.Base(config.RNUMA)
			sys.Threshold = T
			sys.Name = fmt.Sprintf("R-NUMA T=%d", T)
			run, err := h.Run(a, sys)
			if err != nil {
				return nil, err
			}
			row.ByT[T] = run.Normalized(base)
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 9: page-fault and TLB-invalidation overhead sensitivity.

// Fig9Row holds the four systems of Figure 9 normalized to the ideal
// machine.
type Fig9Row struct {
	App                                string
	SCOMA, SCOMASoft, RNUMA, RNUMASoft float64
}

// Figure9 computes the overhead sensitivity study (SOFT = 10-µs traps and
// 5-µs software TLB shootdowns).
func (h *Harness) Figure9(apps []string) ([]Fig9Row, error) {
	scSoft := config.Base(config.SCOMA)
	scSoft.Name = "S-COMA-SOFT"
	scSoft.Costs = config.SoftCosts()

	rnSoft := config.Base(config.RNUMA)
	rnSoft.Name = "R-NUMA-SOFT"
	rnSoft.Costs = config.SoftCosts()

	out := make([]Fig9Row, 0, len(apps))
	for _, a := range apps {
		row := Fig9Row{App: a}
		var err error
		if row.SCOMA, err = h.Normalized(a, config.Base(config.SCOMA)); err != nil {
			return nil, err
		}
		if row.SCOMASoft, err = h.Normalized(a, scSoft); err != nil {
			return nil, err
		}
		if row.RNUMA, err = h.Normalized(a, config.Base(config.RNUMA)); err != nil {
			return nil, err
		}
		if row.RNUMASoft, err = h.Normalized(a, rnSoft); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------

// LuImbalance reports the per-node replacement distribution for lu under
// S-COMA (Section 5.5: two nodes perform over half the replacements).
func (h *Harness) LuImbalance() (topTwoShare float64, err error) {
	run, err := h.Run("lu", config.Base(config.SCOMA))
	if err != nil {
		return 0, err
	}
	var counts []int64
	var total int64
	for _, c := range run.PerNodeReplacements {
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return 0, nil
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var top int64
	for i := 0; i < 2 && i < len(counts); i++ {
		top += counts[i]
	}
	return float64(top) / float64(total), nil
}

// AllApps returns the Table 3 application names.
func AllApps() []string { return workloads.Names() }

// HomesOf is a small helper for tests: builds the workload and returns its
// homes function.
func HomesOf(appName string, sys config.System, scale float64) (func(addr.PageNum) addr.NodeID, error) {
	app, ok := workloads.ByName(appName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown application %q", appName)
	}
	w := app.Build(workloads.Config{Nodes: sys.Nodes, CPUsPerNode: sys.CPUsPerNode, Geometry: sys.Geometry, Scale: scale})
	return w.Homes, nil
}
