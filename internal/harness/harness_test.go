package harness

import (
	"strings"
	"sync"
	"testing"

	"rnuma/internal/config"
)

// shared harness: runs are memoized in the concurrent cache, so the whole
// suite costs one pass per (app, config) pair, fanned out across workers.
var (
	sharedOnce sync.Once
	shared     *Harness
)

func testHarness() *Harness {
	sharedOnce.Do(func() {
		scale := 0.3
		if testing.Short() {
			scale = 0.12 // reduced sweeps; shape assertions skip via skipShapeInShort
		}
		shared = New(scale)
	})
	return shared
}

// skipShapeInShort skips paper-shape assertion tests under -short: their
// numeric thresholds are calibrated at the full 0.3 test scale, and the
// full-scale sweeps are the slow part of the suite. The smoke test below
// still exercises every pipeline at the reduced scale.
func skipShapeInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-shape thresholds need the full test scale; run without -short")
	}
}

// TestSmoke runs a reduced two-app slice of every figure pipeline. Under
// -short this is the harness's main coverage; with full tests it rides the
// shared cache for free.
func TestSmoke(t *testing.T) {
	h := testHarness()
	apps := []string{"fft", "lu"}
	if _, err := h.Figure5(apps); err != nil {
		t.Fatal(err)
	}
	rows6, err := h.Figure6(apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows6 {
		if r.CCNUMA <= 0 || r.SCOMA <= 0 || r.RNUMA <= 0 {
			t.Errorf("%s: non-positive normalized times %+v", r.App, r)
		}
	}
	rows8, err := h.Figure8(apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows8 {
		if r.ByT[64] != 1.0 {
			t.Errorf("%s: T=64 not normalized to itself (%.2f)", r.App, r.ByT[64])
		}
	}
}

func TestUnknownApp(t *testing.T) {
	h := New(0.3)
	if _, err := h.Run("doom", config.Base(config.CCNUMA)); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := HomesOf("doom", config.Base(config.CCNUMA), 0.3); err == nil {
		t.Error("HomesOf accepted unknown app")
	}
}

func TestMemoization(t *testing.T) {
	h := testHarness()
	r1, err := h.Run("fft", config.Base(config.CCNUMA))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Run("fft", config.Base(config.CCNUMA))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical runs not memoized")
	}
	// Different costs must not collide in the cache.
	soft := config.Base(config.CCNUMA)
	soft.Costs = config.SoftCosts()
	r3, err := h.Run("fft", soft)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("SOFT run collided with base run in the cache")
	}
}

// TestFigure6PaperShape asserts the paper's headline qualitative results
// (Section 5.2): R-NUMA is never the worst protocol, usually best or close
// to best, and each application's winner matches the paper's.
func TestFigure6PaperShape(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	rows, err := h.Figure6(AllApps())
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Fig6Row{}
	for _, r := range rows {
		byApp[r.App] = r
		// (i) R-NUMA never performs worse than both CC-NUMA and S-COMA
		// (3% tolerance at the reduced test scale; full scale shows real
		// margins, see EXPERIMENTS.md).
		if r.RNUMA > r.CCNUMA*1.03 && r.RNUMA > r.SCOMA*1.03 {
			t.Errorf("%s: R-NUMA (%.2f) worse than both CC (%.2f) and SC (%.2f)",
				r.App, r.RNUMA, r.CCNUMA, r.SCOMA)
		}
		// (ii) The analytical competitive bound, with sim-scale slack:
		// R-NUMA within ~3x of the best protocol.
		if r.RNUMAOverBest > 3.0 {
			t.Errorf("%s: R-NUMA %.2fx worse than best protocol (bound ~3x)",
				r.App, r.RNUMAOverBest)
		}
		// All protocols are at least as slow as the ideal machine.
		for name, v := range map[string]float64{"CC": r.CCNUMA, "SC": r.SCOMA, "RN": r.RNUMA} {
			if v < 0.95 {
				t.Errorf("%s: %s normalized %.2f below the ideal baseline", r.App, name, v)
			}
		}
	}
	// Per-application winners, from Section 5.2.
	ccWins := []string{"em3d", "fft", "fmm", "radix"} // block-cache-friendly
	scWins := []string{"cholesky", "lu", "moldyn"}    // page-cache-friendly
	rnWins := []string{"barnes", "ocean", "raytrace"} // R-NUMA beats both
	const slack = 1.05                                // reduced-scale tolerance; see EXPERIMENTS.md for full scale
	for _, a := range ccWins {
		r := byApp[a]
		if r.CCNUMA > r.SCOMA*slack {
			t.Errorf("%s: CC-NUMA (%.2f) should beat S-COMA (%.2f)", a, r.CCNUMA, r.SCOMA)
		}
		if r.RNUMA > r.SCOMA*slack {
			t.Errorf("%s: R-NUMA (%.2f) should stay below S-COMA (%.2f)", a, r.RNUMA, r.SCOMA)
		}
	}
	for _, a := range scWins {
		r := byApp[a]
		if r.SCOMA > r.CCNUMA*slack {
			t.Errorf("%s: S-COMA (%.2f) should beat CC-NUMA (%.2f)", a, r.SCOMA, r.CCNUMA)
		}
		if r.RNUMA > r.CCNUMA*slack {
			t.Errorf("%s: R-NUMA (%.2f) should stay below CC-NUMA (%.2f)", a, r.RNUMA, r.CCNUMA)
		}
	}
	for _, a := range rnWins {
		r := byApp[a]
		// At the reduced test scale the win margins shrink (the
		// full-scale values in EXPERIMENTS.md show clear wins).
		if r.RNUMA > r.CCNUMA*slack || r.RNUMA > r.SCOMA*slack {
			t.Errorf("%s: R-NUMA (%.2f) should beat both CC (%.2f) and SC (%.2f)",
				a, r.RNUMA, r.CCNUMA, r.SCOMA)
		}
	}
}

// TestFigure5PaperShape: fft has no refetches (the paper omits it); the
// tree/scene codes are strongly skewed; radix is spread evenly.
func TestFigure5PaperShape(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	curves, err := h.Figure5(AllApps())
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Fig5Curve{}
	for _, c := range curves {
		byApp[c.App] = c
	}
	if len(byApp["fft"].Points) != 0 {
		t.Error("fft should have no refetches (paper omits it from Figure 5)")
	}
	for _, skewed := range []string{"barnes", "raytrace"} {
		if c := byApp[skewed]; c.At10 < 40 {
			t.Errorf("%s: top 10%% of pages cover only %.0f%% of refetches; expected strong skew", skewed, c.At10)
		}
	}
	// Radix spreads refetches evenly: far from fully concentrated.
	if c := byApp["radix"]; c.At10 > 60 {
		t.Errorf("radix: top 10%% of pages cover %.0f%%; the paper's radix curve is near-diagonal", c.At10)
	}
}

// TestTable4PaperShape: read-write page fractions per the paper's Table 4.
func TestTable4PaperShape(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	rows, err := h.Table4(AllApps())
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table4Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Mostly read-write refetches (paper: 82-100%).
	for _, a := range []string{"barnes", "em3d", "fmm", "lu", "moldyn", "ocean"} {
		if v := byApp[a].RWPagePct; v < 70 {
			t.Errorf("%s: RW refetch share %.0f%%, paper reports >80%%", a, v)
		}
	}
	// Mostly read-only refetches (paper: cholesky 28%, radix 15%, raytrace 5%).
	for _, a := range []string{"cholesky", "radix", "raytrace"} {
		if v := byApp[a].RWPagePct; v > 50 {
			t.Errorf("%s: RW refetch share %.0f%%, paper reports <30%%", a, v)
		}
	}
	// R-NUMA eliminates most refetches for the reuse apps...
	for _, a := range []string{"barnes", "moldyn", "lu"} {
		if v := byApp[a].RefetchPct; v > 60 {
			t.Errorf("%s: R-NUMA keeps %.0f%% of CC-NUMA's refetches; paper shows large reductions", a, v)
		}
	}
	// ...but increases them for the bouncing apps (paper: fmm 142%, radix 125%).
	for _, a := range []string{"fmm", "radix"} {
		if v := byApp[a].RefetchPct; v < 100 {
			t.Errorf("%s: R-NUMA refetches %.0f%% of CC-NUMA's; paper shows an increase", a, v)
		}
	}
	// R-NUMA virtually eliminates replacements for most applications.
	elim := 0
	for _, r := range rows {
		if r.ReplacementPct <= 25 {
			elim++
		}
	}
	if elim < 6 {
		t.Errorf("R-NUMA kept replacements low in only %d/10 apps; paper shows near-elimination for most", elim)
	}
}

// TestFigure7PaperShape: CC-NUMA is highly sensitive to block cache size;
// R-NUMA barely cares unless the reuse set misses the page cache.
func TestFigure7PaperShape(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	rows, err := h.Figure7(AllApps())
	if err != nil {
		t.Fatal(err)
	}
	var ccSens, rnGain40M int
	for _, r := range rows {
		if r.CC1K < r.CC32K-0.02 {
			t.Errorf("%s: shrinking the block cache sped CC-NUMA up (%.2f -> %.2f)", r.App, r.CC32K, r.CC1K)
		}
		if r.CC1K > r.CC32K*1.3 {
			ccSens++
		}
		if r.R128p40M < r.R128p320K-0.02 {
			rnGain40M++
		}
		// A bigger page cache never hurts R-NUMA materially.
		if r.R128p40M > r.R128p320K*1.1 {
			t.Errorf("%s: 40-MB page cache slowed R-NUMA (%.2f -> %.2f)", r.App, r.R128p320K, r.R128p40M)
		}
	}
	if ccSens < 4 {
		t.Errorf("CC-NUMA showed >30%% block-cache sensitivity in only %d apps; paper: seven", ccSens)
	}
	if rnGain40M < 3 {
		t.Errorf("the 40-MB page cache helped R-NUMA in only %d apps; paper: fmm/radix/ocean class", rnGain40M)
	}
}

// TestFigure8PaperShape: threshold sensitivity is modest (paper: within
// 27% for all but three apps), and reuse-heavy apps prefer low thresholds.
func TestFigure8PaperShape(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	rows, err := h.Figure8(AllApps())
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Fig8Row{}
	modest := 0
	for _, r := range rows {
		byApp[r.App] = r
		// T in {16, 256}: the paper reports at most 27% variation for all
		// but three applications. (T=1024 is checked separately: at test
		// scale the shortened runs never accumulate 1024 refetches per
		// page, so the no-relocation penalty is exaggerated relative to
		// the paper's full-length executions.)
		if v := r.ByT[16]; v < 0.73 || v > 1.27 {
			continue
		}
		if v := r.ByT[256]; v < 0.73 || v > 1.27 {
			continue
		}
		modest++
	}
	if modest < 7 {
		t.Errorf("threshold sensitivity modest in only %d/10 apps; paper: all but three within 27%%", modest)
	}
	for _, r := range rows {
		if r.ByT[64] != 1.0 {
			t.Errorf("%s: T=64 not normalized to itself (%.2f)", r.App, r.ByT[64])
		}
	}
	// Section 5.4: reuse-heavy apps benefit from (or are neutral to) a
	// low threshold of 16.
	for _, a := range []string{"cholesky", "lu", "moldyn", "ocean"} {
		if v := byApp[a].ByT[16]; v > 1.15 {
			t.Errorf("%s: T=16 costs %.2f; the paper's reuse apps gain up to 25%% from low thresholds", a, v)
		}
	}
	// A very large threshold effectively disables relocation and hurts
	// the reuse applications.
	hurt := 0
	for _, a := range []string{"barnes", "cholesky", "lu", "moldyn"} {
		if byApp[a].ByT[1024] > 1.2 {
			hurt++
		}
	}
	if hurt < 3 {
		t.Errorf("T=1024 hurt only %d reuse apps; disabling relocation should cost them", hurt)
	}
}

// TestFigure9PaperShape: S-COMA is highly sensitive to page-operation
// overheads; R-NUMA is not (paper Section 5.5).
func TestFigure9PaperShape(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	rows, err := h.Figure9(AllApps())
	if err != nil {
		t.Fatal(err)
	}
	var scHit, rnCalm int
	for _, r := range rows {
		// The cost change perturbs event interleavings, so tiny
		// improvements are simulation noise; flag only real speedups.
		if r.SCOMASoft < r.SCOMA*0.95 || r.RNUMASoft < r.RNUMA*0.95 {
			t.Errorf("%s: tripling page-op overheads sped something up (SC %.2f->%.2f, RN %.2f->%.2f)",
				r.App, r.SCOMA, r.SCOMASoft, r.RNUMA, r.RNUMASoft)
		}
		if r.SCOMASoft > r.SCOMA*1.2 {
			scHit++
		}
		if r.RNUMASoft <= r.RNUMA*1.45 {
			rnCalm++
		}
	}
	if scHit < 4 {
		t.Errorf("S-COMA-SOFT hurt >20%% in only %d apps; paper: half the applications badly hurt", scHit)
	}
	if rnCalm < 8 {
		t.Errorf("R-NUMA-SOFT stayed within ~45%% in only %d apps; paper: all but lu within 25%%", rnCalm)
	}
}

// TestLuImbalance: two nodes perform the majority of lu's page
// replacements (Section 5.5).
func TestLuImbalance(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	share, err := h.LuImbalance()
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.5 {
		t.Errorf("top-2 nodes' replacement share = %.0f%%, paper reports >50%%", share*100)
	}
}

// TestWorstCaseQuotes: the abstract's quantitative claims hold
// qualitatively — CC-NUMA can be far worse than S-COMA (lu), S-COMA far
// worse than CC-NUMA (radix/fmm), while R-NUMA stays near the best.
func TestWorstCaseQuotes(t *testing.T) {
	skipShapeInShort(t)
	h := testHarness()
	rows, err := h.Figure6(AllApps())
	if err != nil {
		t.Fatal(err)
	}
	var ccOverSc, scOverCc, worstRn float64
	for _, r := range rows {
		if v := r.CCNUMA / r.SCOMA; v > ccOverSc {
			ccOverSc = v
		}
		if v := r.SCOMA / r.CCNUMA; v > scOverCc {
			scOverCc = v
		}
		if r.RNUMAOverBest > worstRn {
			worstRn = r.RNUMAOverBest
		}
	}
	// Paper: CC-NUMA up to 179% slower than S-COMA; S-COMA up to 315%
	// slower than CC-NUMA; R-NUMA at most 57% worse than the best. Check
	// the ordering of instability, with slack for the synthetic scale.
	if ccOverSc < 1.5 {
		t.Errorf("max CC/SC = %.2f; expected CC-NUMA to lose badly somewhere (paper: 2.8x)", ccOverSc)
	}
	if scOverCc < 1.5 {
		t.Errorf("max SC/CC = %.2f; expected S-COMA to lose badly somewhere (paper: 4.2x)", scOverCc)
	}
	// R-NUMA's instability is bounded below the static protocols' worst
	// (at test scale the fmm gap approaches S-COMA's, so compare against
	// the larger of the two).
	max := ccOverSc
	if scOverCc > max {
		max = scOverCc
	}
	if worstRn >= max {
		t.Errorf("R-NUMA's worst gap (%.2f) should be smaller than the static protocols' worst (CC %.2f, SC %.2f)",
			worstRn, ccOverSc, scOverCc)
	}
}

func TestSysKeyDistinguishesConfigs(t *testing.T) {
	a := config.Base(config.RNUMA)
	b := config.Base(config.RNUMA)
	b.Threshold = 16
	if sysKey(a) == sysKey(b) {
		t.Error("different thresholds share a cache key")
	}
	c := config.Base(config.RNUMA)
	c.PageCacheBytes = 40 << 20
	if sysKey(a) == sysKey(c) {
		t.Error("different page caches share a cache key")
	}
	if !strings.Contains(sysKey(a), "R-NUMA") {
		t.Errorf("key %q should name the protocol", sysKey(a))
	}
}
