package harness

import "fmt"

// DefaultKneeBound is the robustness bound knee detection uses when the
// caller does not supply one: R-NUMA within 10% of the better base
// protocol, the constant the paper's worst-case argument targets.
const DefaultKneeBound = 1.10

// Knee summarizes where a sweep line stops tracking the better base
// protocol: the first point whose R-NUMA/best ratio exceeds the bound,
// plus the line's saturation plateau (its worst ratio). A line whose
// ratio dips back under the bound after the knee still knees at the
// first crossing — the question is where tracking *first* breaks, not
// whether it recovers.
type Knee struct {
	// Bound is the R-NUMA/best ratio the line is held to.
	Bound float64
	// Index/Label/Value/Ratio identify the first point exceeding Bound;
	// Index is -1 when the whole line stays within the bound.
	Index int
	Label string
	Value SweepValue
	Ratio float64
	// MaxIndex/MaxLabel/MaxRatio identify the line's worst point (the
	// saturation plateau); MaxIndex is -1 only for an empty line.
	MaxIndex int
	MaxLabel string
	MaxRatio float64
}

// FindKnee scans a sweep line in order for the first point whose
// RNUMAOverBest exceeds bound, and tracks the worst point overall.
// bound <= 0 selects DefaultKneeBound. The points are scanned as given
// (Sweep, Grid.Row, and Grid.Col all return them sorted by value).
func FindKnee(points []AxisPoint, bound float64) Knee {
	if bound <= 0 {
		bound = DefaultKneeBound
	}
	k := Knee{Bound: bound, Index: -1, MaxIndex: -1}
	for i, p := range points {
		r := p.RNUMAOverBest()
		if k.Index < 0 && r > bound {
			k.Index, k.Label, k.Value, k.Ratio = i, p.Label, p.Value, r
		}
		if k.MaxIndex < 0 || r > k.MaxRatio {
			k.MaxIndex, k.MaxLabel, k.MaxRatio = i, p.Label, r
		}
	}
	return k
}

// String renders the conclusion the way reports print it.
func (k Knee) String() string {
	if k.MaxIndex < 0 {
		return "no points"
	}
	if k.Index < 0 {
		return fmt.Sprintf("within %.2fx everywhere (max %.2fx at %s)", k.Bound, k.MaxRatio, k.MaxLabel)
	}
	return fmt.Sprintf("exceeds %.2fx at %s (%.2fx), worst %.2fx at %s", k.Bound, k.Label, k.Ratio, k.MaxRatio, k.MaxLabel)
}
