package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
)

// Job identifies one simulation: an application under a system
// configuration, optionally tagged with ablation machine options. Jobs are
// the unit the scheduler deduplicates and fans out; two jobs with the same
// Key share one simulation through the memo cache.
type Job struct {
	App string
	Sys config.System

	// Tag distinguishes ablation variants that share (App, Sys) but run
	// with different machine options; empty for plain runs.
	Tag string

	opts      []machine.Option
	skipHomes bool // round-robin ablation: omit the workload's home map
}

// NewJob builds a plain (untagged) job.
func NewJob(app string, sys config.System) Job {
	return Job{App: app, Sys: sys}
}

// Key is the job's memo-cache identity.
func (j Job) Key() string {
	k := j.App + "|" + sysKey(j.Sys)
	if j.Tag != "" {
		k += "|" + j.Tag
	}
	return k
}

// Plan is a deduplicated set of jobs: each figure/table declares its
// (application, system) pairs into a plan, and shared configurations (for
// example the ideal normalization baseline every figure divides by) appear
// once no matter how many figures request them.
type Plan struct {
	jobs []Job
	seen map[string]struct{}
}

// NewPlan builds an empty plan.
func NewPlan() *Plan {
	return &Plan{seen: make(map[string]struct{})}
}

// Add appends jobs, skipping any already planned.
func (p *Plan) Add(jobs ...Job) *Plan {
	for _, j := range jobs {
		k := j.Key()
		if _, dup := p.seen[k]; dup {
			continue
		}
		p.seen[k] = struct{}{}
		p.jobs = append(p.jobs, j)
	}
	return p
}

// AddRuns appends one job per (app, sys) pair.
func (p *Plan) AddRuns(apps []string, systems ...config.System) *Plan {
	for _, a := range apps {
		for _, s := range systems {
			p.Add(NewJob(a, s))
		}
	}
	return p
}

// Jobs returns the planned jobs in insertion order.
func (p *Plan) Jobs() []Job { return p.jobs }

// Len reports how many distinct jobs are planned.
func (p *Plan) Len() int { return len(p.jobs) }

// ---------------------------------------------------------------------
// Per-figure plans. Each declares exactly the (app, system) grid its
// figure consumes, so callers can batch several figures into one plan and
// execute the union concurrently before serial assembly.

// Figure5Plan declares Figure 5's grid: every app under base CC-NUMA.
func (h *Harness) Figure5Plan(apps []string) *Plan {
	return NewPlan().AddRuns(apps, config.Base(config.CCNUMA))
}

// Table4Plan declares Table 4's grid: every app under all three base
// protocols.
func (h *Harness) Table4Plan(apps []string) *Plan {
	return NewPlan().AddRuns(apps,
		config.Base(config.CCNUMA), config.Base(config.SCOMA), config.Base(config.RNUMA))
}

// Figure6Plan declares Figure 6's grid: the three base protocols plus the
// ideal normalization baseline.
func (h *Harness) Figure6Plan(apps []string) *Plan {
	return NewPlan().AddRuns(apps,
		config.Ideal(), config.Base(config.CCNUMA), config.Base(config.SCOMA), config.Base(config.RNUMA))
}

// Figure7Plan declares Figure 7's grid: the five cache-size
// configurations plus the ideal baseline.
func (h *Harness) Figure7Plan(apps []string) *Plan {
	s := fig7Systems()
	return NewPlan().AddRuns(apps,
		config.Ideal(), s.cc1k, config.Base(config.CCNUMA), config.Base(config.RNUMA), s.r32k, s.r40m)
}

// Figure8Plan declares Figure 8's grid: R-NUMA at every threshold.
func (h *Harness) Figure8Plan(apps []string) *Plan {
	p := NewPlan().AddRuns(apps, config.Base(config.RNUMA))
	for _, T := range Fig8Thresholds {
		p.AddRuns(apps, fig8System(T))
	}
	return p
}

// Figure9Plan declares Figure 9's grid: S-COMA and R-NUMA under base and
// SOFT costs, plus the ideal baseline.
func (h *Harness) Figure9Plan(apps []string) *Plan {
	s := fig9Systems()
	return NewPlan().AddRuns(apps,
		config.Ideal(), config.Base(config.SCOMA), s.scSoft, config.Base(config.RNUMA), s.rnSoft)
}

// LuPlan declares the Section 5.5 lu imbalance run.
func (h *Harness) LuPlan() *Plan {
	return NewPlan().Add(NewJob("lu", config.Base(config.SCOMA)))
}

// PlanAll declares every figure and table of the evaluation at once.
func (h *Harness) PlanAll(apps []string) *Plan {
	p := NewPlan()
	for _, sub := range []*Plan{
		h.Figure5Plan(apps), h.Table4Plan(apps), h.Figure6Plan(apps),
		h.Figure7Plan(apps), h.Figure8Plan(apps), h.Figure9Plan(apps), h.LuPlan(),
	} {
		p.Add(sub.Jobs()...)
	}
	return p
}

// ---------------------------------------------------------------------
// Scheduler.

// workers resolves the concurrency bound: Workers when positive, else
// GOMAXPROCS.
func (h *Harness) workers() int {
	if h.Workers > 0 {
		return h.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// progressPeriod is how often Prefetch reports scheduler progress when
// the harness has a Progress writer.
const progressPeriod = 2 * time.Second

// Prefetch executes the plan's jobs across the harness's worker pool,
// filling the memo cache. Figures assembled afterwards read every result
// from the cache, so their output is byte-identical to a serial run; only
// the wall-clock order of simulations changes. Job errors are left in the
// cache and surface from the (deterministic, serial) assembly instead, so
// a failing configuration reports the same error no matter how the
// schedule interleaved.
func (h *Harness) Prefetch(p *Plan) {
	jobs := p.Jobs()
	w := h.workers()
	if w > len(jobs) {
		w = len(jobs)
	}
	if w <= 1 || len(jobs) < 2 {
		return // serial mode: assembly runs each job on first use
	}
	var done, refs atomic.Int64
	finish := h.progressLoop(len(jobs), &done, &refs)
	ch := make(chan Job)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				run, _ := h.runJob(j) //nolint:errcheck // cached; assembly reports it
				if run != nil {
					refs.Add(run.Refs)
				}
				done.Add(1)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	finish()
}

// progressLoop starts the periodic progress reporter (a no-op without a
// Progress writer) and returns the function that stops it and emits the
// final jobs/refs/throughput summary line.
func (h *Harness) progressLoop(total int, done, refs *atomic.Int64) (finish func()) {
	if h.Progress == nil {
		return func() {}
	}
	start := time.Now()
	line := func() {
		el := time.Since(start).Seconds()
		if el <= 0 {
			el = 1e-9
		}
		r := refs.Load()
		fmt.Fprintf(h.Progress, "progress: %d/%d jobs, %.2fM refs, %.2fM refs/s\n",
			done.Load(), total, float64(r)/1e6, float64(r)/1e6/el)
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(progressPeriod)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				line()
			}
		}
	}()
	return func() {
		close(stop)
		line()
	}
}

// RunPlan executes the plan and returns its results keyed by Job.Key, in
// the plan's declaration order. Unlike Prefetch it propagates the first
// (declaration-order) error.
func (h *Harness) RunPlan(p *Plan) (map[string]*stats.Run, error) {
	h.Prefetch(p)
	out := make(map[string]*stats.Run, p.Len())
	for _, j := range p.Jobs() {
		run, err := h.runJob(j)
		if err != nil {
			return nil, err
		}
		out[j.Key()] = run
	}
	return out, nil
}
