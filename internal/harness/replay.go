package harness

import (
	"fmt"
	"io"
	"os"

	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

// This file is the one-shot execution surface: replaying a recorded
// trace or running a built workload exactly once, outside the memoizing
// store (callers that replay each input once have nothing to memoize).
// One variadic-option family — WithTelemetry, WithThresholds,
// WithMachineOptions — replaced the old ReplayTrace /
// ReplayTraceFile / ThresholdForkRuns / ThresholdForkRunsProbe
// entry points and their probe/no-probe duplicate signatures.

// RunOption configures a one-shot Replay/ReplayFile/RunWorkload
// execution.
type RunOption func(*runOptions)

type runOptions struct {
	tcfg       telemetry.Config
	thresholds []int
	mopts      []machine.Option
}

func buildRunOptions(opts []RunOption) runOptions {
	var o runOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// machineOptions resolves the machine options a run implies: the
// caller's raw options after the probe (matching the old entry points,
// which appended explicit options last).
func (o runOptions) machineOptions() []machine.Option {
	var out []machine.Option
	if o.tcfg.Enabled() {
		out = append(out, machine.WithTelemetry(o.tcfg))
	}
	return append(out, o.mopts...)
}

// WithTelemetry attaches a sampling probe to the run: the resulting
// Run(s) carry a telemetry.Timeline alongside their counters. A probe
// never changes a run's counters.
func WithTelemetry(cfg telemetry.Config) RunOption {
	return func(o *runOptions) { o.tcfg = cfg }
}

// WithThresholds replays the trace at every listed relocation
// threshold through the trunk-and-fork engine (fork.go): the shared
// prefix is paid once, and Result.ByThreshold maps each threshold to a
// run bit-identical to an independent full replay at that threshold.
// Only Replay/ReplayFile accept it (a workload is a consume-once
// stream; the fork engine needs a seekable encoding).
func WithThresholds(thresholds ...int) RunOption {
	return func(o *runOptions) { o.thresholds = append(o.thresholds, thresholds...) }
}

// WithMachineOptions appends raw machine options (ablations like
// machine.WithoutRelocation) after the option-derived ones.
func WithMachineOptions(opts ...machine.Option) RunOption {
	return func(o *runOptions) { o.mopts = append(o.mopts, opts...) }
}

// Result is one one-shot execution's output.
type Result struct {
	// Run is the completed run. Under WithThresholds it is the run at
	// the largest requested threshold (the trunk's own point).
	Run *stats.Run
	// Header is the recorded machine shape for trace replays (zero for
	// workload runs).
	Header tracefile.Header
	// ByThreshold maps each requested threshold to its run; nil unless
	// WithThresholds was given.
	ByThreshold map[int]*stats.Run
}

// Replay runs one recorded trace through a machine of its recorded
// shape: the protocol, cache sizes, threshold, and costs come from sys,
// while the node/CPU counts, geometry, segment size, and page placement
// come from the trace header. This is the one-shot path the CLIs use
// for replay and run-diffing; it bypasses the harness store (no Harness
// receiver) because the callers replay each input exactly once.
func Replay(r io.Reader, sys config.System, opts ...RunOption) (*Result, error) {
	o := buildRunOptions(opts)
	if len(o.thresholds) > 0 {
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		return replayThresholds(data, sys, o)
	}
	d, err := tracefile.NewReader(r)
	if err != nil {
		return nil, err
	}
	hdr := d.Header()
	m, _, err := NewTraceMachine(hdr, sys, o.machineOptions()...)
	if err != nil {
		return nil, err
	}
	run, err := m.Run(d.Streams())
	if err != nil {
		return nil, err
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return &Result{Run: run, Header: hdr}, nil
}

// replayThresholds is the WithThresholds arm of Replay: the
// trunk-and-fork engine over an in-memory encoding.
func replayThresholds(data []byte, sys config.System, o runOptions) (*Result, error) {
	if len(o.mopts) > 0 {
		return nil, fmt.Errorf("harness: WithMachineOptions cannot combine with WithThresholds (forked machines snapshot only probe state)")
	}
	runs, hdr, err := thresholdForkRuns(data, sys, o.thresholds, o.tcfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Header: hdr, ByThreshold: runs}
	max := 0
	for t := range runs {
		if t > max {
			max = t
		}
	}
	res.Run = runs[max]
	return res, nil
}

// ReplayFile is Replay over a trace file on disk.
func ReplayFile(path string, sys config.System, opts ...RunOption) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	res, err := Replay(f, sys, opts...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// NewTraceMachine builds a machine for a recorded trace: the protocol,
// cache sizes, threshold, and costs come from sys, while the node/CPU
// counts, geometry, segment size, and page placement come from the trace
// header. Returns the merged configuration alongside the machine
// (Replay, the snapshot/resume CLI, and fork sweeps all share this
// construction, which is what makes their machines state-compatible).
func NewTraceMachine(h tracefile.Header, sys config.System, opts ...machine.Option) (*machine.Machine, config.System, error) {
	if h.Nodes < 1 || h.CPUs%h.Nodes != 0 {
		return nil, sys, fmt.Errorf("harness: trace has %d CPUs on %d nodes (not evenly divided)", h.CPUs, h.Nodes)
	}
	sys.Geometry = h.Geometry
	sys.Nodes = h.Nodes
	sys.CPUsPerNode = h.CPUs / h.Nodes
	if err := sys.Validate(); err != nil {
		return nil, sys, err
	}
	all := append([]machine.Option{machine.WithHomes(h.HomeFunc()), machine.WithPages(h.SharedPages)}, opts...)
	m, err := machine.New(sys, all...)
	return m, sys, err
}

// RunWorkload runs one built workload through a machine shaped by its
// sizing config: the protocol, cache sizes, threshold, and costs come
// from sys, the shape from cfg, and the page placement and attribution
// from the workload itself. Like Replay it bypasses the store — it is
// the CLIs' one-shot path for compiled scenarios. WithThresholds is not
// supported here (workload streams are consume-once).
func RunWorkload(w *workloads.Workload, cfg workloads.Config, sys config.System, opts ...RunOption) (*stats.Run, error) {
	o := buildRunOptions(opts)
	if len(o.thresholds) > 0 {
		return nil, fmt.Errorf("harness: WithThresholds requires a recorded trace (use Replay)")
	}
	sys.Geometry = cfg.Geometry
	sys.Nodes = cfg.Nodes
	sys.CPUsPerNode = cfg.CPUsPerNode
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	all := make([]machine.Option, 0, len(o.mopts)+4)
	all = append(all, machine.WithHomes(w.Homes), machine.WithPages(w.SharedPages))
	if w.Attribution != nil {
		all = append(all, machine.WithAttribution(w.Attribution))
	}
	all = append(all, o.machineOptions()...)
	m, err := machine.New(sys, all...)
	if err != nil {
		return nil, err
	}
	run, err := m.Run(w.Streams)
	if err != nil {
		return nil, err
	}
	if w.Check != nil {
		if err := w.Check(); err != nil {
			return nil, err
		}
	}
	return run, nil
}
