package harness

import (
	"fmt"
	"io"
	"os"

	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

// ReplayTrace runs one recorded trace through a machine of its recorded
// shape: the protocol, cache sizes, threshold, and costs come from sys,
// while the node/CPU counts, geometry, segment size, and page placement
// come from the trace header. This is the one-shot path the CLIs use for
// replay and run-diffing; it bypasses the harness memo cache (no Harness
// receiver) because the callers replay each input exactly once. Extra
// machine options (e.g. machine.WithTelemetry) apply after the
// header-derived ones.
func ReplayTrace(r io.Reader, sys config.System, opts ...machine.Option) (*stats.Run, tracefile.Header, error) {
	d, err := tracefile.NewReader(r)
	if err != nil {
		return nil, tracefile.Header{}, err
	}
	h := d.Header()
	m, _, err := NewTraceMachine(h, sys, opts...)
	if err != nil {
		return nil, h, err
	}
	run, err := m.Run(d.Streams())
	if err != nil {
		return nil, h, err
	}
	if err := d.Err(); err != nil {
		return nil, h, err
	}
	return run, h, nil
}

// NewTraceMachine builds a machine for a recorded trace: the protocol,
// cache sizes, threshold, and costs come from sys, while the node/CPU
// counts, geometry, segment size, and page placement come from the trace
// header. Returns the merged configuration alongside the machine
// (ReplayTrace, the snapshot/resume CLI, and fork sweeps all share this
// construction, which is what makes their machines state-compatible).
func NewTraceMachine(h tracefile.Header, sys config.System, opts ...machine.Option) (*machine.Machine, config.System, error) {
	if h.Nodes < 1 || h.CPUs%h.Nodes != 0 {
		return nil, sys, fmt.Errorf("harness: trace has %d CPUs on %d nodes (not evenly divided)", h.CPUs, h.Nodes)
	}
	sys.Geometry = h.Geometry
	sys.Nodes = h.Nodes
	sys.CPUsPerNode = h.CPUs / h.Nodes
	if err := sys.Validate(); err != nil {
		return nil, sys, err
	}
	all := append([]machine.Option{machine.WithHomes(h.HomeFunc()), machine.WithPages(h.SharedPages)}, opts...)
	m, err := machine.New(sys, all...)
	return m, sys, err
}

// RunWorkload runs one built workload through a machine shaped by its
// sizing config: the protocol, cache sizes, threshold, and costs come
// from sys, the shape from cfg, and the page placement and attribution
// from the workload itself. Like ReplayTrace it bypasses the memo cache —
// it is the CLIs' one-shot path for compiled scenarios.
func RunWorkload(w *workloads.Workload, cfg workloads.Config, sys config.System, opts ...machine.Option) (*stats.Run, error) {
	sys.Geometry = cfg.Geometry
	sys.Nodes = cfg.Nodes
	sys.CPUsPerNode = cfg.CPUsPerNode
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	all := make([]machine.Option, 0, len(opts)+3)
	all = append(all, machine.WithHomes(w.Homes), machine.WithPages(w.SharedPages))
	if w.Attribution != nil {
		all = append(all, machine.WithAttribution(w.Attribution))
	}
	all = append(all, opts...)
	m, err := machine.New(sys, all...)
	if err != nil {
		return nil, err
	}
	run, err := m.Run(w.Streams)
	if err != nil {
		return nil, err
	}
	if w.Check != nil {
		if err := w.Check(); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// ReplayTraceFile is ReplayTrace over a trace file on disk.
func ReplayTraceFile(path string, sys config.System, opts ...machine.Option) (*stats.Run, tracefile.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, tracefile.Header{}, fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	run, h, err := ReplayTrace(f, sys, opts...)
	if err != nil {
		return nil, h, fmt.Errorf("%s: %w", path, err)
	}
	return run, h, nil
}
