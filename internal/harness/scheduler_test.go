package harness

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rnuma/internal/config"
)

// TestPlanDedup: figures that share configurations (the ideal baseline,
// the base protocols) contribute each shared job exactly once to a
// combined plan.
func TestPlanDedup(t *testing.T) {
	h := New(0.1)
	p := NewPlan()
	p.Add(h.Figure6Plan([]string{"fft", "lu"}).Jobs()...)
	p.Add(h.Figure7Plan([]string{"fft", "lu"}).Jobs()...)
	// Figure 6: ideal, cc, sc, rn (4 systems). Figure 7 adds cc1k, r32k,
	// r40m and re-declares ideal, cc, rn. Union: 7 systems x 2 apps.
	if got, want := p.Len(), 7*2; got != want {
		t.Errorf("combined plan has %d jobs, want %d (shared configs must dedup)", got, want)
	}
	keys := make(map[string]struct{})
	for _, j := range p.Jobs() {
		if _, dup := keys[j.Key()]; dup {
			t.Errorf("duplicate job key %q in plan", j.Key())
		}
		keys[j.Key()] = struct{}{}
	}
}

// TestPlanAllCoversFigures: the whole-evaluation plan contains every
// figure's jobs.
func TestPlanAllCoversFigures(t *testing.T) {
	h := New(0.1)
	apps := []string{"fft", "lu"}
	all := make(map[string]struct{})
	for _, j := range h.PlanAll(apps).Jobs() {
		all[j.Key()] = struct{}{}
	}
	for _, sub := range []*Plan{
		h.Figure5Plan(apps), h.Table4Plan(apps), h.Figure6Plan(apps),
		h.Figure7Plan(apps), h.Figure8Plan(apps), h.Figure9Plan(apps), h.LuPlan(),
	} {
		for _, j := range sub.Jobs() {
			if _, ok := all[j.Key()]; !ok {
				t.Errorf("PlanAll missing job %q", j.Key())
			}
		}
	}
}

// TestSingleflightRunsEachJobOnce: concurrent requests for the same
// configuration perform exactly one simulation; everyone shares the
// pointer-identical cached result.
func TestSingleflightRunsEachJobOnce(t *testing.T) {
	var buf bytes.Buffer
	h := New(0.05)
	h.Log = &buf
	h.Workers = 8
	sys := config.Base(config.CCNUMA)
	const callers = 16
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, err := h.Run("fft", sys)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = run
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a distinct run; memoization broken", i)
		}
	}
	launches := strings.Count(buf.String(), "running")
	if launches != 1 {
		t.Errorf("%d simulations launched for one key, want 1", launches)
	}
}

// renderFig7 serializes Figure 7 rows for byte-exact comparison.
func renderFig7(rows []Fig7Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s %.9f %.9f %.9f %.9f %.9f\n",
			r.App, r.CC1K, r.CC32K, r.R128p320K, r.R32Kp320K, r.R128p40M)
	}
	return b.String()
}

// renderFig8 serializes Figure 8 rows for byte-exact comparison.
func renderFig8(rows []Fig8Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s", r.App)
		for _, T := range Fig8Thresholds {
			fmt.Fprintf(&b, " T%d=%.9f", T, r.ByT[T])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// TestParallelMatchesSerial: the concurrent scheduler's Figure 7 and
// Figure 8 output is byte-identical to the serial scheduler's on the same
// grid (run under -race in CI; the acceptance criterion for the
// scheduler's determinism).
func TestParallelMatchesSerial(t *testing.T) {
	apps := []string{"fft", "barnes"}
	scale := 0.1

	serial := New(scale)
	serial.Workers = 1
	s7, err := serial.Figure7(apps)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := serial.Figure8(apps)
	if err != nil {
		t.Fatal(err)
	}

	parallel := New(scale)
	parallel.Workers = 8
	p7, err := parallel.Figure7(apps)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := parallel.Figure8(apps)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := renderFig7(p7), renderFig7(s7); got != want {
		t.Errorf("Figure 7 parallel != serial:\nparallel:\n%s\nserial:\n%s", got, want)
	}
	if got, want := renderFig8(p8), renderFig8(s8); got != want {
		t.Errorf("Figure 8 parallel != serial:\nparallel:\n%s\nserial:\n%s", got, want)
	}
}

// TestRunPlanPropagatesError: a plan containing an unknown application
// reports the error from assembly, deterministically, regardless of
// worker count.
func TestRunPlanPropagatesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		h := New(0.05)
		h.Workers = workers
		p := NewPlan().Add(NewJob("doom", config.Base(config.CCNUMA)),
			NewJob("fft", config.Base(config.CCNUMA)))
		if _, err := h.RunPlan(p); err == nil {
			t.Errorf("workers=%d: unknown app accepted", workers)
		}
	}
}

// TestRunPlanResults: RunPlan returns one result per planned job, keyed
// by job key.
func TestRunPlanResults(t *testing.T) {
	h := New(0.05)
	h.Workers = 4
	p := NewPlan().AddRuns([]string{"fft"}, config.Base(config.CCNUMA), config.Base(config.SCOMA))
	res, err := h.RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("RunPlan returned %d results, want 2", len(res))
	}
	for _, j := range p.Jobs() {
		run, ok := res[j.Key()]
		if !ok || run == nil || run.ExecCycles == 0 {
			t.Errorf("missing or empty result for %q", j.Key())
		}
	}
}
