package harness

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"

	"rnuma/internal/spec"
	"rnuma/internal/tracefile"
	"rnuma/internal/traffic"
	"rnuma/internal/workloads"
)

// Source supplies a workload from outside the built-in catalog: a
// declarative spec file or a recorded trace. Registered sources join the
// harness's application namespace, so every figure, plan, and CLI flag
// that takes an application name takes a source name too.
type Source interface {
	// Name is the application name the source registers under.
	Name() string
	// Key identifies the source's *content* for the memo cache: two
	// files with the same name but different bytes must not share
	// simulations, and re-registering identical content is a no-op.
	Key() string
	// Load builds (or opens) the workload for one simulation. It is
	// called once per memoized job, so trace sources may hand out
	// consume-once streams.
	Load(cfg workloads.Config) (*workloads.Workload, error)
}

// Register adds a source to the harness's application namespace.
// Registered names take precedence over the built-in catalog (replaying a
// recorded "barnes" trace shadows the generator of the same name for
// that harness). Re-registering the same content is a no-op; a name
// collision with different content is an error.
func (h *Harness) Register(src Source) error {
	h.srcMu.Lock()
	defer h.srcMu.Unlock()
	if h.sources == nil {
		h.sources = make(map[string]Source)
	}
	if old, ok := h.sources[src.Name()]; ok && old.Key() != src.Key() {
		return fmt.Errorf("harness: source %q already registered with different content", src.Name())
	}
	h.sources[src.Name()] = src
	return nil
}

// source looks up a registered source by application name.
func (h *Harness) source(name string) Source {
	h.srcMu.Lock()
	defer h.srcMu.Unlock()
	return h.sources[name]
}

// Sources lists the registered source names in no particular order.
func (h *Harness) Sources() []string {
	h.srcMu.Lock()
	defer h.srcMu.Unlock()
	out := make([]string, 0, len(h.sources))
	for name := range h.sources {
		out = append(out, name)
	}
	return out
}

// jobKey is the canonical string form of KeyFor (kept for tests and
// log lines; stores index by the same string via JobKey.String).
func (h *Harness) jobKey(j Job) string {
	return h.KeyFor(j).String()
}

// ---------------------------------------------------------------------

// specSource builds workloads from a parsed declarative spec.
type specSource struct {
	s   *spec.Spec
	key string
}

// SpecSource wraps an in-memory spec document (CLI paths that already
// read the bytes, e.g. stdin).
func SpecSource(data []byte) (Source, error) {
	s, err := spec.Parse(data)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	return &specSource{s: s, key: fmt.Sprintf("spec:%s:%x", s.Name, sum[:8])}, nil
}

// SpecFileSource loads a spec file as a workload source; the memo key is
// derived from the file's content hash.
func SpecFileSource(path string) (Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	src, err := SpecSource(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return src, nil
}

func (s *specSource) Name() string { return s.s.Name }
func (s *specSource) Key() string  { return s.key }
func (s *specSource) Load(cfg workloads.Config) (*workloads.Workload, error) {
	return s.s.Build(cfg)
}

// ---------------------------------------------------------------------

// traceSource replays a recorded trace, either from a file (opened per
// Load and streamed, never materialized) or from an in-memory encoding
// (retargeted traces, which exist only as transform output).
// Workload.Check releases the input and surfaces any decode error after
// the run.
type traceSource struct {
	path string // file-backed source ("" when data-backed)
	data []byte // in-memory source (nil when file-backed)
	hdr  tracefile.Header
	key  string
}

// TraceFileSource opens a recorded trace as a workload source. The memo
// key is derived from tracefile.CanonicalHash — the decoded reference
// streams, not the bytes on disk — so a v1 trace, its v2 recompression,
// and a cut+cat recomposition of the same capture all share simulations;
// replay validates that the simulated machine matches the recorded
// geometry and CPU count. Registration fully decodes the file, so a
// truncated or corrupt trace is rejected here rather than mid-run.
func TraceFileSource(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	sum, hdr, err := tracefile.CanonicalHash(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &traceSource{
		path: path,
		hdr:  hdr,
		key:  fmt.Sprintf("trace:%s:%x", hdr.Name, sum[:8]),
	}, nil
}

// TraceSource wraps an in-memory trace encoding as a workload source —
// the transform pipeline's natural endpoint, where a retargeted or
// dilated trace goes straight into the harness without a temp file. The
// memo key follows the canonical content hash, like TraceFileSource.
func TraceSource(data []byte) (Source, error) {
	sum, hdr, err := tracefile.CanonicalHash(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return &traceSource{
		data: data,
		hdr:  hdr,
		key:  fmt.Sprintf("trace:%s:%x", hdr.Name, sum[:8]),
	}, nil
}

// RetargetTrace applies a retarget spec to an in-memory trace encoding
// and wraps the result as a source: one capture becomes one point of a
// machine-shape sweep. The retargeted encoding is materialized once here
// (compressed v2, so a few bytes per hundred references) and re-decoded
// per Load.
func RetargetTrace(data []byte, spec tracefile.RetargetSpec) (Source, error) {
	var buf bytes.Buffer
	if _, err := tracefile.Retarget(&buf, bytes.NewReader(data), spec); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return TraceSource(buf.Bytes())
}

// RetargetedTraceFileSource is RetargetTrace for a trace on disk: it
// reads the file once, retargets it in memory, and registers the result.
// A zero-valued spec (keep every dimension, identity policy) degrades to
// a re-encoded TraceFileSource of the same canonical content.
func RetargetedTraceFileSource(path string, spec tracefile.RetargetSpec) (Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	src, err := RetargetTrace(data, spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return src, nil
}

// ---------------------------------------------------------------------

// TrafficScenarioSource serves a compiled multi-tenant traffic scenario
// (the concrete Source so callers can reach the compiled Scenario). The
// scenario is compiled once at registration (for one machine shape) and
// handed out as fresh streams per Load.
type TrafficScenarioSource struct {
	sc  *traffic.Scenario
	key string
}

// TrafficSource compiles an in-memory traffic spec for the given machine
// configuration and wraps the scenario as a workload source. The memo key
// combines the compiled streams' canonical hash (so two specs compiling
// to the same scenario share simulations, like trace sources) with the
// spec content hash (the attribution split is not part of the encoded
// streams, but it does shape per-client results).
func TrafficSource(data []byte, baseDir string, cfg workloads.Config) (*TrafficScenarioSource, error) {
	s, err := traffic.Parse(data)
	if err != nil {
		return nil, err
	}
	sc, err := traffic.Compile(s, cfg, baseDir)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, _, err := sc.Encode(&buf); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	sum, _, err := tracefile.CanonicalHash(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	specSum := sha256.Sum256(data)
	return &TrafficScenarioSource{
		sc:  sc,
		key: fmt.Sprintf("traffic:%s:%x:%x", sc.Name, sum[:8], specSum[:8]),
	}, nil
}

// TrafficFileSource is TrafficSource for a traffic spec on disk; phase
// paths resolve relative to the spec file's directory.
func TrafficFileSource(path string, cfg workloads.Config) (*TrafficScenarioSource, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	src, err := TrafficSource(data, filepath.Dir(path), cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return src, nil
}

func (t *TrafficScenarioSource) Name() string { return t.sc.Name }
func (t *TrafficScenarioSource) Key() string  { return t.key }

// Scenario exposes the compiled scenario (CLIs reuse the compilation for
// reporting and export).
func (t *TrafficScenarioSource) Scenario() *traffic.Scenario { return t.sc }

func (t *TrafficScenarioSource) Load(cfg workloads.Config) (*workloads.Workload, error) {
	want := t.sc.Cfg
	if cfg.Geometry != want.Geometry || cfg.Nodes != want.Nodes || cfg.CPUsPerNode != want.CPUsPerNode {
		return nil, fmt.Errorf("harness: traffic scenario %q compiled for %dx%d %v, machine wants %dx%d %v",
			t.sc.Name, want.Nodes, want.CPUsPerNode, want.Geometry, cfg.Nodes, cfg.CPUsPerNode, cfg.Geometry)
	}
	return t.sc.Workload(), nil
}

func (t *traceSource) Name() string { return t.hdr.Name }
func (t *traceSource) Key() string  { return t.key }

// Header returns the recorded machine shape (CLIs size the simulated
// machine from it instead of re-parsing the file).
func (t *traceSource) Header() tracefile.Header { return t.hdr }

// what names the source in errors.
func (t *traceSource) what() string {
	if t.path != "" {
		return t.path
	}
	return "(in-memory) " + t.hdr.Name
}

func (t *traceSource) Load(cfg workloads.Config) (*workloads.Workload, error) {
	if cfg.Geometry != t.hdr.Geometry {
		return nil, fmt.Errorf("harness: trace %s recorded with %v, machine uses %v", t.what(), t.hdr.Geometry, cfg.Geometry)
	}
	if cpus := cfg.Nodes * cfg.CPUsPerNode; cpus != t.hdr.CPUs || cfg.Nodes != t.hdr.Nodes {
		return nil, fmt.Errorf("harness: trace %s recorded on %d nodes/%d cpus, machine has %d/%d",
			t.what(), t.hdr.Nodes, t.hdr.CPUs, cfg.Nodes, cpus)
	}
	if t.data != nil {
		d, err := tracefile.NewReader(bytes.NewReader(t.data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.what(), err)
		}
		return d.Workload(), nil
	}
	f, err := os.Open(t.path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	d, err := tracefile.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", t.path, err)
	}
	w := d.Workload()
	w.Check = func() error {
		cerr := d.Err()
		if err := f.Close(); cerr == nil && err != nil {
			cerr = err
		}
		return cerr
	}
	return w, nil
}
