package harness

import (
	"crypto/sha256"
	"fmt"
	"os"

	"rnuma/internal/spec"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

// Source supplies a workload from outside the built-in catalog: a
// declarative spec file or a recorded trace. Registered sources join the
// harness's application namespace, so every figure, plan, and CLI flag
// that takes an application name takes a source name too.
type Source interface {
	// Name is the application name the source registers under.
	Name() string
	// Key identifies the source's *content* for the memo cache: two
	// files with the same name but different bytes must not share
	// simulations, and re-registering identical content is a no-op.
	Key() string
	// Load builds (or opens) the workload for one simulation. It is
	// called once per memoized job, so trace sources may hand out
	// consume-once streams.
	Load(cfg workloads.Config) (*workloads.Workload, error)
}

// Register adds a source to the harness's application namespace.
// Registered names take precedence over the built-in catalog (replaying a
// recorded "barnes" trace shadows the generator of the same name for
// that harness). Re-registering the same content is a no-op; a name
// collision with different content is an error.
func (h *Harness) Register(src Source) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sources == nil {
		h.sources = make(map[string]Source)
	}
	if old, ok := h.sources[src.Name()]; ok && old.Key() != src.Key() {
		return fmt.Errorf("harness: source %q already registered with different content", src.Name())
	}
	h.sources[src.Name()] = src
	return nil
}

// source looks up a registered source by application name.
func (h *Harness) source(name string) Source {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sources[name]
}

// Sources lists the registered source names in no particular order.
func (h *Harness) Sources() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.sources))
	for name := range h.sources {
		out = append(out, name)
	}
	return out
}

// jobKey is the memo-cache identity of a job: Job.Key, with the
// application-name component replaced by the source's content key when
// the name resolves to a registered source (so memoization follows file
// content, not file naming), and the harness seed appended when set (so
// mutating Seed between runs cannot return a stale cached result).
func (h *Harness) jobKey(j Job) string {
	k := j.Key()
	if src := h.source(j.App); src != nil {
		k = src.Key() + "|" + sysKey(j.Sys)
		if j.Tag != "" {
			k += "|" + j.Tag
		}
	}
	if h.Seed != 0 {
		k += fmt.Sprintf("|seed%d", h.Seed)
	}
	return k
}

// ---------------------------------------------------------------------

// specSource builds workloads from a parsed declarative spec.
type specSource struct {
	s   *spec.Spec
	key string
}

// SpecSource wraps an in-memory spec document (CLI paths that already
// read the bytes, e.g. stdin).
func SpecSource(data []byte) (Source, error) {
	s, err := spec.Parse(data)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	return &specSource{s: s, key: fmt.Sprintf("spec:%s:%x", s.Name, sum[:8])}, nil
}

// SpecFileSource loads a spec file as a workload source; the memo key is
// derived from the file's content hash.
func SpecFileSource(path string) (Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	src, err := SpecSource(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return src, nil
}

func (s *specSource) Name() string { return s.s.Name }
func (s *specSource) Key() string  { return s.key }
func (s *specSource) Load(cfg workloads.Config) (*workloads.Workload, error) {
	return s.s.Build(cfg)
}

// ---------------------------------------------------------------------

// traceSource replays a recorded trace file. The file is opened per Load
// and streamed, never materialized; Workload.Check closes it and surfaces
// any decode error after the run.
type traceSource struct {
	path string
	hdr  tracefile.Header
	key  string
}

// TraceFileSource opens a recorded trace as a workload source. The memo
// key is derived from tracefile.CanonicalHash — the decoded reference
// streams, not the bytes on disk — so a v1 trace, its v2 recompression,
// and a cut+cat recomposition of the same capture all share simulations;
// replay validates that the simulated machine matches the recorded
// geometry and CPU count. Registration fully decodes the file, so a
// truncated or corrupt trace is rejected here rather than mid-run.
func TraceFileSource(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	sum, hdr, err := tracefile.CanonicalHash(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &traceSource{
		path: path,
		hdr:  hdr,
		key:  fmt.Sprintf("trace:%s:%x", hdr.Name, sum[:8]),
	}, nil
}

func (t *traceSource) Name() string { return t.hdr.Name }
func (t *traceSource) Key() string  { return t.key }

// Header returns the recorded machine shape (CLIs size the simulated
// machine from it instead of re-parsing the file).
func (t *traceSource) Header() tracefile.Header { return t.hdr }

func (t *traceSource) Load(cfg workloads.Config) (*workloads.Workload, error) {
	if cfg.Geometry != t.hdr.Geometry {
		return nil, fmt.Errorf("harness: trace %s recorded with %v, machine uses %v", t.path, t.hdr.Geometry, cfg.Geometry)
	}
	if cpus := cfg.Nodes * cfg.CPUsPerNode; cpus != t.hdr.CPUs || cfg.Nodes != t.hdr.Nodes {
		return nil, fmt.Errorf("harness: trace %s recorded on %d nodes/%d cpus, machine has %d/%d",
			t.path, t.hdr.Nodes, t.hdr.CPUs, cfg.Nodes, cpus)
	}
	f, err := os.Open(t.path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	d, err := tracefile.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", t.path, err)
	}
	w := d.Workload()
	w.Check = func() error {
		cerr := d.Err()
		if err := f.Close(); cerr == nil && err != nil {
			cerr = err
		}
		return cerr
	}
	return w, nil
}
