package harness

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

const testSpec = `{
  "name": "src-test",
  "regions": [{"name": "a", "pages": 8, "placement": "node"}],
  "phases": [{"iters": 2, "steps": [
    {"op": "sweep", "region": "a", "from": "neighbor:1", "density": 16, "gap": 10},
    {"op": "barrier"}
  ]}]
}`

func TestSpecSourceThroughHarness(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	if err := os.WriteFile(path, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := SpecFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "src-test" {
		t.Fatalf("source name = %q", src.Name())
	}
	if !strings.HasPrefix(src.Key(), "spec:src-test:") {
		t.Fatalf("source key %q not content-derived", src.Key())
	}
	h := New(0.1)
	if err := h.Register(src); err != nil {
		t.Fatal(err)
	}
	run, err := h.Run("src-test", config.Base(config.RNUMA))
	if err != nil {
		t.Fatal(err)
	}
	if run.Refs == 0 {
		t.Error("spec workload simulated zero references")
	}
	// The memo key must follow content, not the (app, sys) name pair.
	if key := h.jobKey(NewJob("src-test", config.Base(config.RNUMA))); !strings.Contains(key, "spec:src-test:") {
		t.Errorf("job key %q not derived from the source key", key)
	}
}

func TestRegisterConflicts(t *testing.T) {
	h := New(0.1)
	a, err := SpecSource([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(a); err != nil {
		t.Fatal(err)
	}
	// Identical content re-registers cleanly.
	b, _ := SpecSource([]byte(testSpec))
	if err := h.Register(b); err != nil {
		t.Errorf("identical re-register: %v", err)
	}
	// Same name, different content: rejected.
	c, _ := SpecSource([]byte(strings.Replace(testSpec, `"gap": 10`, `"gap": 11`, 1)))
	if err := h.Register(c); err == nil {
		t.Error("conflicting register accepted")
	}
	if got := h.Sources(); len(got) != 1 || got[0] != "src-test" {
		t.Errorf("sources = %v", got)
	}
}

func TestTraceSourceShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	cfg := workloads.Config{Nodes: 4, CPUsPerNode: 2, Geometry: workloads.DefaultConfig().Geometry, Scale: 0.05}
	app, _ := workloads.ByName("fft")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tracefile.WriteWorkload(f, app.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()
	src, err := TraceFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	h := New(0.05)
	if err := h.Register(src); err != nil {
		t.Fatal(err)
	}
	// The base system is 8x4; the trace was recorded on 4x2.
	if _, err := h.Run(src.Name(), config.Base(config.RNUMA)); err == nil {
		t.Error("shape mismatch not rejected")
	}
}

// TestRecordReplayIdentity is the round-trip acceptance invariant: for
// every catalog application at test scale, recording the generator's
// streams and replaying the file through the machine produces a stats.Run
// identical to simulating the live generator — the trace path changes the
// input transport, never the simulation.
func TestRecordReplayIdentity(t *testing.T) {
	apps := workloads.Names()
	systems := []config.System{config.Base(config.RNUMA), config.Base(config.SCOMA)}
	if testing.Short() {
		apps = []string{"barnes", "fft", "moldyn"}
		systems = systems[:1]
	}
	const scale = 0.05
	dir := t.TempDir()

	live := New(scale)
	replay := New(scale)
	base := config.Base(config.RNUMA)
	cfg := workloads.Config{
		Nodes:       base.Nodes,
		CPUsPerNode: base.CPUsPerNode,
		Geometry:    base.Geometry,
		Scale:       scale,
	}
	for _, name := range apps {
		app, _ := workloads.ByName(name)
		path := filepath.Join(dir, name+".trace")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := tracefile.WriteWorkload(f, app.Build(cfg), cfg); err != nil {
			t.Fatalf("%s: record: %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		src, err := TraceFileSource(path)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if err := replay.Register(src); err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		for _, sys := range systems {
			want, err := live.Run(name, sys)
			if err != nil {
				t.Fatalf("%s on %s: live: %v", name, sys.Name, err)
			}
			got, err := replay.Run(src.Name(), sys)
			if err != nil {
				t.Fatalf("%s on %s: replay: %v", name, sys.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s on %s: replayed run differs from live run\n live:   %s\n replay: %s",
					name, sys.Name, want.Summary(), got.Summary())
			}
		}
	}
}

// TestDifferentialIdentity is the trace-toolchain acceptance invariant:
// for every catalog application, each transport of the same reference
// streams — the v1 encoding, the default v2-compressed encoding, a
// cut-into-halves-and-concatenated recomposition, and a live run recorded
// through tracefile.Tee — must replay to a stats.Run identical to
// simulating the live generator. The toolchain changes how references
// travel, never what the machine sees.
func TestDifferentialIdentity(t *testing.T) {
	apps := workloads.Names()
	if testing.Short() {
		apps = []string{"em3d", "lu", "radix"}
	}
	const scale = 0.05
	sys := config.Base(config.RNUMA)
	cfg := workloads.Config{
		Nodes:       sys.Nodes,
		CPUsPerNode: sys.CPUsPerNode,
		Geometry:    sys.Geometry,
		Scale:       scale,
	}
	dir := t.TempDir()
	live := New(scale)

	for _, name := range apps {
		app, _ := workloads.ByName(name)
		want, err := live.Run(name, sys)
		if err != nil {
			t.Fatalf("%s: live: %v", name, err)
		}

		// Transport 1+2: v1 and v2 encodings of the recorded generator.
		v1Path := filepath.Join(dir, name+".v1.trace")
		v2Path := filepath.Join(dir, name+".v2.trace")
		writeTraceFile(t, v1Path, app, cfg, tracefile.FormatVersion(tracefile.VersionV1))
		writeTraceFile(t, v2Path, app, cfg)

		// Transport 3: cut the v2 trace into two per-CPU record-range
		// halves and concatenate them back.
		catPath := filepath.Join(dir, name+".cat.trace")
		recomposeHalves(t, v2Path, filepath.Join(dir, name), catPath)

		// Transport 4: a live simulation recorded through Tee; the teed
		// run itself must also match the live run.
		teePath := filepath.Join(dir, name+".tee.trace")
		teeRun := recordLiveRun(t, teePath, app, cfg, sys)
		if !reflect.DeepEqual(teeRun, want) {
			t.Errorf("%s: teed live run differs from plain live run", name)
		}

		keys := make(map[string]string)
		for transport, path := range map[string]string{
			"v1": v1Path, "v2": v2Path, "cut+cat": catPath, "tee": teePath,
		} {
			src, err := TraceFileSource(path)
			if err != nil {
				t.Fatalf("%s/%s: open: %v", name, transport, err)
			}
			keys[transport] = src.Key()
			replay := New(scale)
			if err := replay.Register(src); err != nil {
				t.Fatalf("%s/%s: register: %v", name, transport, err)
			}
			got, err := replay.Run(src.Name(), sys)
			if err != nil {
				t.Fatalf("%s/%s: replay: %v", name, transport, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: replayed run differs from live run\n live:   %s\n replay: %s",
					name, transport, want.Summary(), got.Summary())
			}
		}
		// Every transport carries the same streams, so memoization must
		// treat them as the same workload content.
		for transport, key := range keys {
			if key != keys["v2"] {
				t.Errorf("%s: %s memo key %q differs from v2 key %q — encodings of one capture would not share simulations",
					name, transport, key, keys["v2"])
			}
		}
	}
}

// writeTraceFile records a workload build to path with the given encoding.
func writeTraceFile(t *testing.T, path string, app workloads.App, cfg workloads.Config, opts ...tracefile.WriterOption) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tracefile.WriteWorkload(f, app.Build(cfg), cfg, opts...); err != nil {
		t.Fatalf("record %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// recomposeHalves cuts src into per-CPU record ranges [0,N) and [N,end)
// and concatenates the pieces into dst.
func recomposeHalves(t *testing.T, src, tmpPrefix, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a split point that lands mid-stream for every catalog app at
	// test scale.
	const split = 1000
	var head, tail bytes.Buffer
	if _, err := tracefile.Cut(&head, bytes.NewReader(data), tracefile.CutSpec{To: split}); err != nil {
		t.Fatalf("cut head: %v", err)
	}
	if _, err := tracefile.Cut(&tail, bytes.NewReader(data), tracefile.CutSpec{From: split}); err != nil {
		t.Fatalf("cut tail: %v", err)
	}
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.Cat(out, []io.Reader{&head, &tail}); err != nil {
		t.Fatalf("cat: %v", err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
}

// recordLiveRun simulates the workload on sys with its streams teed into
// a trace file at path, returning the run the teed simulation produced.
func recordLiveRun(t *testing.T, path string, app workloads.App, cfg workloads.Config, sys config.System) *stats.Run {
	t.Helper()
	w := app.Build(cfg)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := tracefile.NewWriter(f, tracefile.WorkloadHeader(w, cfg))
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(sys, machine.WithHomes(w.Homes), machine.WithPages(w.SharedPages))
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(tracefile.Tee(tw, w.Streams))
	if err != nil {
		t.Fatalf("teed run: %v", err)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return run
}

// TestSeedReproducibility pins the -seed contract: the same seed yields
// identical runs, a different seed changes shuffle-sensitive workloads.
func TestSeedReproducibility(t *testing.T) {
	run := func(seed int64) int64 {
		h := New(0.05)
		h.Seed = seed
		r, err := h.Run("em3d", config.Base(config.RNUMA)) // em3d scatters, so it is seed-sensitive
		if err != nil {
			t.Fatal(err)
		}
		return r.ExecCycles
	}
	if a, b := run(7), run(7); a != b {
		t.Errorf("same seed: exec %d vs %d", a, b)
	}
	if a, b := run(0), run(12345); a == b {
		t.Errorf("different seeds produced identical exec time %d (scatter order should differ)", a)
	}
	// Mutating Seed on one harness must not serve stale cached results:
	// the memo key carries the seed.
	h := New(0.05)
	h.Seed = 7
	a, err := h.Run("em3d", config.Base(config.RNUMA))
	if err != nil {
		t.Fatal(err)
	}
	h.Seed = 12345
	b, err := h.Run("em3d", config.Base(config.RNUMA))
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecCycles == b.ExecCycles {
		t.Error("seed change on one harness returned the cached run")
	}
}

const testTrafficScenario = `{
  "name": "mix-test",
  "clients": [
    {"name": "steady", "rate_fraction": 0.7,
     "arrival": {"process": "poisson"},
     "phases": [{"spec": "w.json"}]},
    {"name": "bursty", "rate_fraction": 0.3,
     "arrival": {"process": "gamma", "cv": 3},
     "phases": [{"spec": "w.json"}]}
  ]
}`

// writeTrafficScenario drops a scenario plus its phase spec into a temp
// dir and returns the scenario path.
func writeTrafficScenario(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "w.json"), []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "mix.json")
	if err := os.WriteFile(path, []byte(testTrafficScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrafficSourceThroughHarness(t *testing.T) {
	path := writeTrafficScenario(t)
	cfg := workloads.DefaultConfig()
	cfg.Scale = 0.05
	src, err := TrafficFileSource(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "mix-test" {
		t.Fatalf("source name = %q", src.Name())
	}
	if !strings.HasPrefix(src.Key(), "traffic:mix-test:") {
		t.Fatalf("source key %q not content-derived", src.Key())
	}
	// The key is a pure function of the spec + shape: an independent
	// compilation of the same file must memoize identically.
	src2, err := TrafficFileSource(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Key() != src2.Key() {
		t.Errorf("two compilations of one scenario produced keys %q vs %q", src.Key(), src2.Key())
	}
	// A scenario compiled for one shape refuses to load on another.
	bad := cfg
	bad.Nodes = 4
	if _, err := src.Load(bad); err == nil {
		t.Error("Load accepted a machine shape the scenario was not compiled for")
	}

	h := New(0.05)
	if err := h.Register(src); err != nil {
		t.Fatal(err)
	}
	run, err := h.Run("mix-test", config.Base(config.RNUMA))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Clients) != 2 || run.Clients[0].Name != "steady" {
		t.Fatalf("run carries client rows %+v, want steady+bursty", run.Clients)
	}
	if run.Clients[0].Counters.Refs+run.Clients[1].Counters.Refs != run.Refs {
		t.Error("per-client refs do not sum to the machine total")
	}
}

// TestTrafficParallelMatchesSerial pins the scenario determinism gate:
// the same scenario prefetched across 8 workers must produce runs (and
// timelines, including the per-client interval splits) bit-identical to
// a serial harness.
func TestTrafficParallelMatchesSerial(t *testing.T) {
	path := writeTrafficScenario(t)
	cfg := workloads.DefaultConfig()
	cfg.Scale = 0.05
	systems := []config.System{
		config.Base(config.CCNUMA), config.Base(config.SCOMA),
		config.Base(config.RNUMA), config.Ideal(),
	}
	collect := func(workers int) []*stats.Run {
		src, err := TrafficFileSource(path, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := New(0.05)
		h.Workers = workers
		h.Telemetry = telemetry.Config{Window: 4096}
		if err := h.Register(src); err != nil {
			t.Fatal(err)
		}
		h.Prefetch(NewPlan().AddRuns([]string{src.Name()}, systems...))
		runs := make([]*stats.Run, len(systems))
		for i, sys := range systems {
			if runs[i], err = h.Run(src.Name(), sys); err != nil {
				t.Fatal(err)
			}
		}
		return runs
	}
	serial, parallel := collect(1), collect(8)
	for i := range systems {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("system %s: serial and 8-worker runs differ", systems[i].Name)
		}
		if serial[i].Timeline == nil || len(serial[i].Timeline.Clients) != 2 {
			t.Errorf("system %s: timeline missing per-client capture", systems[i].Name)
		}
	}
}

func TestTrafficSourceErrors(t *testing.T) {
	cfg := workloads.DefaultConfig()
	cfg.Scale = 0.05
	if _, err := TrafficFileSource(filepath.Join(t.TempDir(), "nope.json"), cfg); err == nil {
		t.Error("TrafficFileSource accepted a missing file")
	}
	if _, err := TrafficSource([]byte(`{"name":`), "", cfg); err == nil {
		t.Error("TrafficSource accepted truncated JSON")
	}
	// A parseable scenario whose phase file does not exist fails at
	// compile time, not at simulation time.
	missing := `{"name": "m", "clients": [{"name": "a", "rate_fraction": 1,
		"arrival": {"process": "poisson"}, "phases": [{"spec": "absent.json"}]}]}`
	if _, err := TrafficSource([]byte(missing), t.TempDir(), cfg); err == nil {
		t.Error("TrafficSource accepted a scenario with a missing phase file")
	}
	src, err := TrafficFileSource(writeTrafficScenario(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc := src.Scenario(); sc == nil || sc.Name != src.Name() {
		t.Errorf("Scenario() = %+v, want the compiled scenario named %q", sc, src.Name())
	}
}
