package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

const testSpec = `{
  "name": "src-test",
  "regions": [{"name": "a", "pages": 8, "placement": "node"}],
  "phases": [{"iters": 2, "steps": [
    {"op": "sweep", "region": "a", "from": "neighbor:1", "density": 16, "gap": 10},
    {"op": "barrier"}
  ]}]
}`

func TestSpecSourceThroughHarness(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	if err := os.WriteFile(path, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := SpecFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "src-test" {
		t.Fatalf("source name = %q", src.Name())
	}
	if !strings.HasPrefix(src.Key(), "spec:src-test:") {
		t.Fatalf("source key %q not content-derived", src.Key())
	}
	h := New(0.1)
	if err := h.Register(src); err != nil {
		t.Fatal(err)
	}
	run, err := h.Run("src-test", config.Base(config.RNUMA))
	if err != nil {
		t.Fatal(err)
	}
	if run.Refs == 0 {
		t.Error("spec workload simulated zero references")
	}
	// The memo key must follow content, not the (app, sys) name pair.
	if key := h.jobKey(NewJob("src-test", config.Base(config.RNUMA))); !strings.Contains(key, "spec:src-test:") {
		t.Errorf("job key %q not derived from the source key", key)
	}
}

func TestRegisterConflicts(t *testing.T) {
	h := New(0.1)
	a, err := SpecSource([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(a); err != nil {
		t.Fatal(err)
	}
	// Identical content re-registers cleanly.
	b, _ := SpecSource([]byte(testSpec))
	if err := h.Register(b); err != nil {
		t.Errorf("identical re-register: %v", err)
	}
	// Same name, different content: rejected.
	c, _ := SpecSource([]byte(strings.Replace(testSpec, `"gap": 10`, `"gap": 11`, 1)))
	if err := h.Register(c); err == nil {
		t.Error("conflicting register accepted")
	}
	if got := h.Sources(); len(got) != 1 || got[0] != "src-test" {
		t.Errorf("sources = %v", got)
	}
}

func TestTraceSourceShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	cfg := workloads.Config{Nodes: 4, CPUsPerNode: 2, Geometry: workloads.DefaultConfig().Geometry, Scale: 0.05}
	app, _ := workloads.ByName("fft")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tracefile.WriteWorkload(f, app.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()
	src, err := TraceFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	h := New(0.05)
	if err := h.Register(src); err != nil {
		t.Fatal(err)
	}
	// The base system is 8x4; the trace was recorded on 4x2.
	if _, err := h.Run(src.Name(), config.Base(config.RNUMA)); err == nil {
		t.Error("shape mismatch not rejected")
	}
}

// TestRecordReplayIdentity is the round-trip acceptance invariant: for
// every catalog application at test scale, recording the generator's
// streams and replaying the file through the machine produces a stats.Run
// identical to simulating the live generator — the trace path changes the
// input transport, never the simulation.
func TestRecordReplayIdentity(t *testing.T) {
	apps := workloads.Names()
	systems := []config.System{config.Base(config.RNUMA), config.Base(config.SCOMA)}
	if testing.Short() {
		apps = []string{"barnes", "fft", "moldyn"}
		systems = systems[:1]
	}
	const scale = 0.05
	dir := t.TempDir()

	live := New(scale)
	replay := New(scale)
	base := config.Base(config.RNUMA)
	cfg := workloads.Config{
		Nodes:       base.Nodes,
		CPUsPerNode: base.CPUsPerNode,
		Geometry:    base.Geometry,
		Scale:       scale,
	}
	for _, name := range apps {
		app, _ := workloads.ByName(name)
		path := filepath.Join(dir, name+".trace")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := tracefile.WriteWorkload(f, app.Build(cfg), cfg); err != nil {
			t.Fatalf("%s: record: %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		src, err := TraceFileSource(path)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if err := replay.Register(src); err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		for _, sys := range systems {
			want, err := live.Run(name, sys)
			if err != nil {
				t.Fatalf("%s on %s: live: %v", name, sys.Name, err)
			}
			got, err := replay.Run(src.Name(), sys)
			if err != nil {
				t.Fatalf("%s on %s: replay: %v", name, sys.Name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s on %s: replayed run differs from live run\n live:   %s\n replay: %s",
					name, sys.Name, want.Summary(), got.Summary())
			}
		}
	}
}

// TestSeedReproducibility pins the -seed contract: the same seed yields
// identical runs, a different seed changes shuffle-sensitive workloads.
func TestSeedReproducibility(t *testing.T) {
	run := func(seed int64) int64 {
		h := New(0.05)
		h.Seed = seed
		r, err := h.Run("em3d", config.Base(config.RNUMA)) // em3d scatters, so it is seed-sensitive
		if err != nil {
			t.Fatal(err)
		}
		return r.ExecCycles
	}
	if a, b := run(7), run(7); a != b {
		t.Errorf("same seed: exec %d vs %d", a, b)
	}
	if a, b := run(0), run(12345); a == b {
		t.Errorf("different seeds produced identical exec time %d (scatter order should differ)", a)
	}
	// Mutating Seed on one harness must not serve stale cached results:
	// the memo key carries the seed.
	h := New(0.05)
	h.Seed = 7
	a, err := h.Run("em3d", config.Base(config.RNUMA))
	if err != nil {
		t.Fatal(err)
	}
	h.Seed = 12345
	b, err := h.Run("em3d", config.Base(config.RNUMA))
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecCycles == b.ExecCycles {
		t.Error("seed change on one harness returned the cached run")
	}
}
