package harness

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"rnuma/internal/stats"
)

// This file defines the harness's result store: the singleflight memo
// that used to be a private cache map, factored behind an interface so
// results are shareable across harnesses (the server gives every job its
// own Harness — own Progress and Log writers — over one shared Store)
// and, with DiskStore, across process restarts.

// JobKey is the stable, serializable identity of one simulation. It is
// what the old private jobKey/sysKey strings encoded: the workload
// identity (the source *content* key for registered sources, so
// memoization follows file content rather than file naming; the catalog
// application name otherwise), the full system configuration string, an
// optional ablation tag, plus the harness knobs that change what a
// workload builder produces — seed and scale. Two jobs with equal keys
// are guaranteed to produce identical runs, which is what makes results
// cacheable across requests, across daemon restarts, and across
// processes sharing one store directory at different -scale settings.
type JobKey struct {
	App   string  `json:"app"`
	Sys   string  `json:"sys"`
	Tag   string  `json:"tag,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// String renders the key in the legacy memo-cache format; it is the
// canonical form stores index by.
func (k JobKey) String() string {
	s := k.App + "|" + k.Sys
	if k.Tag != "" {
		s += "|" + k.Tag
	}
	if k.Seed != 0 {
		s += fmt.Sprintf("|seed%d", k.Seed)
	}
	if k.Scale != 0 {
		s += "|x" + strconv.FormatFloat(k.Scale, 'g', -1, 64)
	}
	return s
}

// KeyFor resolves a job's store identity under this harness: the
// application-name component is replaced by the source's content key
// when the name resolves to a registered source, and the harness seed
// and scale ride along (so mutating either between runs — or pointing
// two daemons with different -scale at one store directory — cannot
// surface a result computed under different workload parameters).
func (h *Harness) KeyFor(j Job) JobKey {
	app := j.App
	if src := h.source(j.App); src != nil {
		app = src.Key()
	}
	return JobKey{App: app, Sys: sysKey(j.Sys), Tag: j.Tag, Seed: h.Seed, Scale: h.Scale}
}

// Store is a singleflight result store: exactly one simulation per key
// ever runs, even under concurrent requests from several harnesses.
//
// The contract: StartOrWait either returns a completed result
// (owner=false; run/err are the outcome) or claims the key and makes
// the caller the owner (owner=true), who MUST call Commit exactly once
// with the outcome —
// concurrent callers for the same key block until that Commit. Errors
// are results too: a failed simulation is not retried. Get peeks at
// completed entries without claiming or blocking, and Add inserts a
// pre-computed result if (and only if) the key is unclaimed — the fork
// engine uses it to donate sweep points without ever clobbering a
// result another path produced.
type Store interface {
	StartOrWait(key JobKey) (run *stats.Run, owner bool, err error)
	Commit(key JobKey, run *stats.Run, err error)
	Get(key JobKey) (run *stats.Run, ok bool, err error)
	Add(key JobKey, run *stats.Run) bool
	Stats() StoreStats
}

// StoreStats is a store's observability snapshot (the server reports it
// on /api/v1/store).
type StoreStats struct {
	// Entries is how many keys are resident (completed or in flight).
	Entries int `json:"entries"`
	// Started counts StartOrWait claims that made the caller the owner:
	// simulations actually begun.
	Started int64 `json:"started"`
	// Hits counts StartOrWait calls served by an existing slot, whether
	// already completed or by waiting on an in-flight owner.
	Hits int64 `json:"hits"`
	// DiskHits counts results loaded from a persistent tier (zero for
	// purely in-memory stores).
	DiskHits int64 `json:"diskHits"`
}

// memoEntry is one singleflight slot: the owner runs the simulation and
// closes done; concurrent requesters wait on done and read the shared
// result.
type memoEntry struct {
	done chan struct{}
	run  *stats.Run
	err  error
}

// MemoryStore is the in-process Store: the harness's original private
// memo cache behind the interface. Results are pointer-shared — every
// requester of a key sees the same *stats.Run.
type MemoryStore struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
	stats   StoreStats
}

// NewMemoryStore builds an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{entries: make(map[string]*memoEntry)}
}

func (s *MemoryStore) StartOrWait(key JobKey) (*stats.Run, bool, error) {
	k := key.String()
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.stats.Hits++
		s.mu.Unlock()
		<-e.done
		return e.run, false, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	s.entries[k] = e
	s.stats.Started++
	s.mu.Unlock()
	return nil, true, nil
}

func (s *MemoryStore) Commit(key JobKey, run *stats.Run, err error) {
	k := key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		// Commit without a claim (not the harness's own usage, but legal
		// for warming a store out of band): insert completed.
		e = &memoEntry{done: make(chan struct{})}
		s.entries[k] = e
	}
	// The completed-check and close stay under s.mu so concurrent Commits
	// for one key are idempotent (first result wins) instead of racing to
	// a double close.
	select {
	case <-e.done: // already completed; first result wins
	default:
		e.run, e.err = run, err
		close(e.done)
	}
}

func (s *MemoryStore) Get(key JobKey) (*stats.Run, bool, error) {
	s.mu.Lock()
	e, ok := s.entries[key.String()]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	select {
	case <-e.done:
		return e.run, true, e.err
	default:
		return nil, false, nil
	}
}

func (s *MemoryStore) Add(key JobKey, run *stats.Run) bool {
	k := key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return false
	}
	e := &memoEntry{done: make(chan struct{}), run: run}
	close(e.done)
	s.entries[k] = e
	return true
}

func (s *MemoryStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Entries = len(s.entries)
	return out
}

// ---------------------------------------------------------------------

// storeRecordVersion gates the on-disk encoding; bump it when the
// record layout (or anything reachable from stats.Run) changes shape
// incompatibly, and old files degrade to misses instead of decoding
// garbage.
const storeRecordVersion = 1

// storeRecord is the on-disk form of one completed result.
type storeRecord struct {
	Version int
	Key     string // full JobKey.String(), verified on load
	Run     *stats.Run
}

// DiskStore is a Store whose successful results persist to a directory
// as GOB records, one file per key (named by the SHA-256 of the key
// string). In-flight singleflight coordination stays in memory — only
// completed successes touch disk — so a daemon restarted with the same
// -store-dir re-simulates nothing it already ran, while two daemons
// sharing a directory at worst duplicate work, never corrupt it
// (records land via atomic rename). Errors are cached in memory only:
// a crash-restart retries failed configurations. Unreadable or
// mismatched files degrade to cache misses.
type DiskStore struct {
	dir string
	mem *MemoryStore

	mu       sync.Mutex
	diskHits int64
	badSaves int64
}

// NewDiskStore opens (creating if needed) a persistent store rooted at
// dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: store dir: %w", err)
	}
	return &DiskStore{dir: dir, mem: NewMemoryStore()}, nil
}

// path maps a key to its record file.
func (s *DiskStore) path(key JobKey) string {
	sum := sha256.Sum256([]byte(key.String()))
	return filepath.Join(s.dir, fmt.Sprintf("%x.run.gob", sum[:16]))
}

// load reads one record, returning ok=false on any miss, decode error,
// or key mismatch.
func (s *DiskStore) load(key JobKey) (*stats.Run, bool) {
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var rec storeRecord
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return nil, false
	}
	if rec.Version != storeRecordVersion || rec.Key != key.String() || rec.Run == nil {
		return nil, false
	}
	return rec.Run, true
}

// save writes one record via temp file + rename; failures are counted
// and swallowed (the store is a cache, not the system of record).
func (s *DiskStore) save(key JobKey, run *stats.Run) {
	err := func() error {
		f, err := os.CreateTemp(s.dir, ".tmp-*.gob")
		if err != nil {
			return err
		}
		defer os.Remove(f.Name())
		rec := storeRecord{Version: storeRecordVersion, Key: key.String(), Run: run}
		if err := gob.NewEncoder(f).Encode(&rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(f.Name(), s.path(key))
	}()
	if err != nil {
		s.mu.Lock()
		s.badSaves++
		s.mu.Unlock()
	}
}

func (s *DiskStore) StartOrWait(key JobKey) (*stats.Run, bool, error) {
	run, owner, err := s.mem.StartOrWait(key)
	if !owner {
		return run, false, err
	}
	// Fresh claim: check the persistent tier before making the caller
	// simulate.
	if run, ok := s.load(key); ok {
		s.mem.Commit(key, run, nil)
		s.mu.Lock()
		s.diskHits++
		s.mu.Unlock()
		return run, false, nil
	}
	return nil, true, nil
}

func (s *DiskStore) Commit(key JobKey, run *stats.Run, err error) {
	if err == nil && run != nil {
		s.save(key, run)
	}
	s.mem.Commit(key, run, err)
}

func (s *DiskStore) Get(key JobKey) (*stats.Run, bool, error) {
	if run, ok, err := s.mem.Get(key); ok {
		return run, true, err
	}
	run, ok := s.load(key)
	if !ok {
		return nil, false, nil
	}
	s.mem.Add(key, run)
	s.mu.Lock()
	s.diskHits++
	s.mu.Unlock()
	return run, true, nil
}

func (s *DiskStore) Add(key JobKey, run *stats.Run) bool {
	if s.mem.Add(key, run) {
		s.save(key, run)
		return true
	}
	return false
}

func (s *DiskStore) Stats() StoreStats {
	out := s.mem.Stats()
	s.mu.Lock()
	out.DiskHits = s.diskHits
	s.mu.Unlock()
	return out
}
