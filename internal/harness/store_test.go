package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/stats"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

func testKey(app string) JobKey {
	return JobKey{App: app, Sys: sysKey(config.Base(config.RNUMA))}
}

func testRun(exec int64) *stats.Run {
	r := stats.NewRun()
	r.ExecCycles = exec
	r.Refs = exec * 2
	r.RefetchByPage[stats.PageKey{Node: 1, Page: 7}] = 3
	r.PerNodeReplacements[2] = 5
	return r
}

// TestJobKeyString pins the legacy memo-key format the stores index by
// (DiskStore records carry it verbatim, so it is an on-disk format too).
func TestJobKeyString(t *testing.T) {
	for _, tc := range []struct {
		key  JobKey
		want string
	}{
		{JobKey{App: "fft", Sys: "s"}, "fft|s"},
		{JobKey{App: "fft", Sys: "s", Tag: "noreloc"}, "fft|s|noreloc"},
		{JobKey{App: "fft", Sys: "s", Seed: 7}, "fft|s|seed7"},
		{JobKey{App: "fft", Sys: "s", Tag: "t", Seed: 7}, "fft|s|t|seed7"},
		{JobKey{App: "fft", Sys: "s", Scale: 0.05}, "fft|s|x0.05"},
		{JobKey{App: "fft", Sys: "s", Scale: 1}, "fft|s|x1"},
		{JobKey{App: "fft", Sys: "s", Tag: "t", Seed: 7, Scale: 0.25}, "fft|s|t|seed7|x0.25"},
	} {
		if got := tc.key.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.key, got, tc.want)
		}
	}
}

// TestMemoryStoreSingleflight submits one key from many goroutines:
// exactly one caller becomes the owner, everyone else blocks until the
// commit and reads the same pointer-shared result.
func TestMemoryStoreSingleflight(t *testing.T) {
	s := NewMemoryStore()
	key := testKey("fft")
	want := testRun(100)

	const n = 16
	var owners int
	var mu sync.Mutex
	var wg sync.WaitGroup
	runs := make([]*stats.Run, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, owner, err := s.StartOrWait(key)
			if owner {
				mu.Lock()
				owners++
				mu.Unlock()
				s.Commit(key, want, nil)
				run = want
			}
			if err != nil {
				t.Errorf("StartOrWait: %v", err)
			}
			runs[i] = run
		}(i)
	}
	wg.Wait()
	if owners != 1 {
		t.Fatalf("owners = %d, want exactly 1", owners)
	}
	for i, r := range runs {
		if r != want {
			t.Errorf("caller %d got %p, want the shared %p", i, r, want)
		}
	}
	st := s.Stats()
	if st.Started != 1 || st.Hits != n-1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want started=1 hits=%d entries=1", st, n-1)
	}
}

// TestMemoryStoreCommitIdempotent: the doc permits Commit without a
// claim, so two concurrent Commits for one key must resolve to one
// result (first wins) instead of racing to a double close.
func TestMemoryStoreCommitIdempotent(t *testing.T) {
	s := NewMemoryStore()
	key := testKey("fft")
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Commit(key, testRun(int64(i+1)), nil)
		}(i)
	}
	wg.Wait()
	run, ok, err := s.Get(key)
	if !ok || err != nil || run == nil {
		t.Fatalf("Get after concurrent commits = %v, %v, %v", run, ok, err)
	}
}

// TestScaleSeparatesKeys: Scale changes what a workload builder produces
// (iteration counts), so harnesses at different scales sharing one store
// must not share results.
func TestScaleSeparatesKeys(t *testing.T) {
	store := NewMemoryStore()
	sys := config.Base(config.RNUMA)

	h1 := New(0.05)
	h1.Store = store
	if _, err := h1.Run("fft", sys); err != nil {
		t.Fatal(err)
	}
	h2 := New(0.1)
	h2.Store = store
	if _, err := h2.Run("fft", sys); err != nil {
		t.Fatal(err)
	}
	if got := h2.Simulations(); got != 1 {
		t.Errorf("second harness at a different scale ran %d simulations, want 1 (no cross-scale hit)", got)
	}
	if k1, k2 := h1.KeyFor(NewJob("fft", sys)), h2.KeyFor(NewJob("fft", sys)); k1 == k2 {
		t.Errorf("keys at scales 0.05 and 0.1 collide: %s", k1)
	}
}

// panicSource is a Source whose Load panics, standing in for any bug
// inside a simulation.
type panicSource struct{}

func (panicSource) Name() string { return "panic-src" }
func (panicSource) Key() string  { return "panic-src:deadbeef" }
func (panicSource) Load(workloads.Config) (*workloads.Workload, error) {
	panic("boom in Load")
}

// TestRunJobPanicResolvesClaim: a panic inside a simulation must still
// commit the store claim, so waiters on the same key get an error
// instead of blocking forever, and the panic still reaches the caller.
func TestRunJobPanicResolvesClaim(t *testing.T) {
	h := New(0.05)
	if err := h.Register(panicSource{}); err != nil {
		t.Fatal(err)
	}
	sys := config.Base(config.RNUMA)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of Run")
			}
		}()
		h.Run("panic-src", sys) //nolint:errcheck // must panic
	}()
	// The claim resolved: a retry is served the cached error, not a hang.
	if _, err := h.Run("panic-src", sys); err == nil {
		t.Error("second Run after a panicked owner returned no error")
	}
}

// TestMemoryStoreErrorCached: a failed simulation is a result too — the
// key is not retried.
func TestMemoryStoreErrorCached(t *testing.T) {
	s := NewMemoryStore()
	key := testKey("bad")
	boom := errors.New("boom")
	if _, owner, _ := s.StartOrWait(key); !owner {
		t.Fatal("first StartOrWait should own")
	}
	s.Commit(key, nil, boom)
	run, owner, err := s.StartOrWait(key)
	if owner || run != nil || !errors.Is(err, boom) {
		t.Errorf("after failed commit: run=%v owner=%v err=%v, want cached error", run, owner, err)
	}
}

// TestMemoryStoreAddAndGet: Add inserts only into unclaimed slots (the
// fork engine's donation path must never clobber a result), and Get
// peeks without claiming.
func TestMemoryStoreAddAndGet(t *testing.T) {
	s := NewMemoryStore()
	key := testKey("fft")
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	r1 := testRun(1)
	if !s.Add(key, r1) {
		t.Fatal("Add into empty slot failed")
	}
	if s.Add(key, testRun(2)) {
		t.Fatal("second Add clobbered a completed slot")
	}
	run, ok, err := s.Get(key)
	if !ok || err != nil || run != r1 {
		t.Errorf("Get = %p, %v, %v; want the added run", run, ok, err)
	}
	// An in-flight claim must also block Add.
	key2 := testKey("other")
	if _, owner, _ := s.StartOrWait(key2); !owner {
		t.Fatal("claim failed")
	}
	if s.Add(key2, testRun(3)) {
		t.Error("Add filled a claimed slot")
	}
	if _, ok, _ := s.Get(key2); ok {
		t.Error("Get reported an in-flight entry as complete")
	}
}

// TestDiskStoreRestart is the persistence round trip: a result committed
// through one DiskStore is served — with identical contents — by a fresh
// store on the same directory, without making the caller an owner.
func TestDiskStoreRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("fft")
	want := testRun(42)
	if _, owner, _ := s1.StartOrWait(key); !owner {
		t.Fatal("fresh store should make the caller owner")
	}
	s1.Commit(key, want, nil)

	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	run, owner, err := s2.StartOrWait(key)
	if owner {
		t.Fatal("restarted store re-simulated a persisted key")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, want) {
		t.Errorf("restored run differs:\n got %+v\nwant %+v", run, want)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", st.DiskHits)
	}
	// Get on a third store also falls through to disk.
	s3, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	run, ok, err := s3.Get(key)
	if !ok || err != nil || !reflect.DeepEqual(run, want) {
		t.Errorf("Get from disk = %v, %v, %v", run, ok, err)
	}
}

// TestDiskStoreErrorsNotPersisted: failed simulations stay memory-only,
// so a restart retries them.
func TestDiskStoreErrorsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("bad")
	if _, owner, _ := s1.StartOrWait(key); !owner {
		t.Fatal("claim failed")
	}
	s1.Commit(key, nil, errors.New("boom"))

	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, owner, _ := s2.StartOrWait(key); !owner {
		t.Error("restart did not retry a failed configuration")
	}
}

// TestDiskStoreCorruptRecord: an unreadable record degrades to a miss
// instead of an error or garbage.
func TestDiskStoreCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("fft")
	if _, owner, _ := s1.StartOrWait(key); !owner {
		t.Fatal("claim failed")
	}
	s1.Commit(key, testRun(7), nil)
	files, err := filepath.Glob(filepath.Join(dir, "*.run.gob"))
	if err != nil || len(files) != 1 {
		t.Fatalf("records on disk = %v, %v; want exactly one", files, err)
	}
	if err := os.WriteFile(files[0], []byte("not a gob record"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, owner, _ := s2.StartOrWait(key); !owner {
		t.Error("corrupt record should degrade to a miss (owner=true)")
	}
}

// TestSharedStoreAcrossHarnesses is the server's memoization model in
// miniature: two harnesses over one store, and only the first executes
// the simulation (Simulations counts a harness's own work).
func TestSharedStoreAcrossHarnesses(t *testing.T) {
	store := NewMemoryStore()
	sys := config.Base(config.RNUMA)

	h1 := New(0.05)
	h1.Store = store
	run1, err := h1.Run("fft", sys)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Simulations() == 0 {
		t.Fatal("first harness reported no simulations")
	}

	h2 := New(0.05)
	h2.Store = store
	run2, err := h2.Run("fft", sys)
	if err != nil {
		t.Fatal(err)
	}
	if run2 != run1 {
		t.Error("shared store did not pointer-share the result")
	}
	if got := h2.Simulations(); got != 0 {
		t.Errorf("second harness executed %d simulations, want 0 (store hit)", got)
	}
}

// TestReplayFileAndOptions covers the one-shot file path and the
// machine-option plumbing of the consolidated Replay surface.
func TestReplayFileAndOptions(t *testing.T) {
	app, _ := workloads.ByName("fft")
	cfg := workloads.DefaultConfig()
	cfg.Scale = 0.05
	var buf bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fft.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	sys := config.Base(config.RNUMA)

	res, err := ReplayFile(path, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.ExecCycles == 0 || res.Header.Name != "fft" {
		t.Errorf("replay: exec=%d header=%+v", res.Run.ExecCycles, res.Header)
	}
	if _, err := ReplayFile(filepath.Join(t.TempDir(), "nope.trace"), sys); err == nil {
		t.Error("replaying a missing file succeeded")
	}

	// WithMachineOptions rides along on one-shot replays (the verifier
	// must not change the run)...
	verified, err := Replay(bytes.NewReader(buf.Bytes()), sys, WithMachineOptions(machine.WithVerify()))
	if err != nil {
		t.Fatal(err)
	}
	if verified.Run.ExecCycles != res.Run.ExecCycles {
		t.Errorf("verified replay diverged: %d vs %d", verified.Run.ExecCycles, res.Run.ExecCycles)
	}
	// ...but cannot combine with the fork engine.
	if _, err := Replay(bytes.NewReader(buf.Bytes()), sys,
		WithThresholds(8, 64), WithMachineOptions(machine.WithVerify())); err == nil {
		t.Error("WithThresholds+WithMachineOptions did not error")
	}

	// RunWorkload is the consume-once path; thresholds are trace-only.
	run, err := RunWorkload(app.Build(cfg), cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if run.ExecCycles != res.Run.ExecCycles {
		t.Errorf("RunWorkload diverged from trace replay: %d vs %d", run.ExecCycles, res.Run.ExecCycles)
	}
	if _, err := RunWorkload(app.Build(cfg), cfg, sys, WithThresholds(8)); err == nil {
		t.Error("RunWorkload accepted WithThresholds")
	}

	// SweepFile mirrors Sweep over the on-disk encoding.
	h := New(0.05)
	vals, err := ParseSweepValues(AxisNodes, "4,8")
	if err != nil {
		t.Fatal(err)
	}
	pts, name, err := h.SweepFile(path, AxisNodes, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || name != "fft" {
		t.Errorf("SweepFile: %d points, name %q", len(pts), name)
	}
	if _, _, err := h.SweepFile(filepath.Join(t.TempDir(), "nope.trace"), AxisNodes, vals); err == nil {
		t.Error("sweeping a missing file succeeded")
	}
}

// TestRenamedSource: a rename changes the registration name but not the
// content key, so renamed registrations of one capture share results.
func TestRenamedSource(t *testing.T) {
	app, _ := workloads.ByName("fft")
	cfg := workloads.DefaultConfig()
	cfg.Scale = 0.05
	var buf bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	src, err := TraceSource(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	renamed := RenamedSource(src, "fft@cafe1234")
	if renamed.Name() != "fft@cafe1234" {
		t.Errorf("Name() = %q", renamed.Name())
	}
	if renamed.Key() != src.Key() {
		t.Errorf("rename changed the content key: %q vs %q", renamed.Key(), src.Key())
	}

	h := New(0.05)
	if err := h.Register(src); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(renamed); err != nil {
		t.Fatal(err)
	}
	sys := config.Base(config.RNUMA)
	r1, err := h.Run(src.Name(), sys)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Run(renamed.Name(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("renamed registration did not share the stored result")
	}
}

// TestDiskStoreAdd: the donation path persists like a commit.
func TestDiskStoreAdd(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("fft")
	want := testRun(9)
	if !s1.Add(key, want) {
		t.Fatal("Add into empty disk store failed")
	}
	if s1.Add(key, testRun(10)) {
		t.Fatal("second Add clobbered the slot")
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	run, ok, err := s2.Get(key)
	if !ok || err != nil || !reflect.DeepEqual(run, want) {
		t.Errorf("donated run not persisted: %v, %v, %v", run, ok, err)
	}
}
