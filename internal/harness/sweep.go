package harness

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"rnuma/internal/config"
	"rnuma/internal/tracefile"
)

// This file implements the node-count sweep: one recorded trace
// retargeted across machine sizes and replayed under all three designs.
// It is the transform layer's headline consumer — the paper's per-
// workload robustness claim (R-NUMA within a small constant of the
// better base protocol) gets re-checked at every machine size a single
// capture can be remapped onto.

// SweepPoint is one machine size of a node-count sweep: the three base
// protocols' execution times normalized to the ideal machine (infinite
// block cache) of the same shape.
type SweepPoint struct {
	Nodes       int
	CPUsPerNode int
	CCNUMA      float64
	SCOMA       float64
	RNUMA       float64
}

// RNUMAOverBest reports R-NUMA's time relative to the better base
// protocol at this machine size (the paper's bounded-worst-case ratio).
func (p SweepPoint) RNUMAOverBest() float64 {
	best := p.CCNUMA
	if p.SCOMA < best {
		best = p.SCOMA
	}
	if best == 0 {
		return 0
	}
	return p.RNUMA / best
}

// sweepSystem shapes a base configuration to one sweep point.
func sweepSystem(sys config.System, nodes, cpusPerNode int) config.System {
	sys.Nodes = nodes
	sys.CPUsPerNode = cpusPerNode
	sys.Name = fmt.Sprintf("%s n=%d", sys.Name, nodes)
	return sys
}

// NodeSweep retargets the in-memory trace encoding onto each node count
// (round-robin re-homing, CPU count preserved) and replays every size
// under CC-NUMA, S-COMA, and R-NUMA plus the ideal baseline. The trace's
// CPU count must divide evenly across every requested node count. The
// retargeted sources register under "<name>@<n>n", so repeated sweeps
// and overlapping node lists share simulations through the memo cache.
// Points come back sorted by node count.
func (h *Harness) NodeSweep(data []byte, nodeCounts []int) ([]SweepPoint, string, error) {
	if len(nodeCounts) == 0 {
		return nil, "", fmt.Errorf("harness: node sweep over no node counts")
	}
	// Only the header is needed here (name + CPU count for divisibility);
	// each retargeted source validates and hashes its own full decode.
	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, "", fmt.Errorf("harness: %w", err)
	}
	hdr := d.Header()

	counts := append([]int(nil), nodeCounts...)
	sort.Ints(counts)
	plan := NewPlan()
	type point struct {
		nodes, cpusPer int
		app            string
	}
	pts := make([]point, 0, len(counts))
	for i, n := range counts {
		if i > 0 && counts[i-1] == n {
			continue // duplicate node count
		}
		if n < 1 || hdr.CPUs%n != 0 {
			return nil, "", fmt.Errorf("harness: trace %s has %d CPUs, not divisible across %d nodes", hdr.Name, hdr.CPUs, n)
		}
		cpusPer := hdr.CPUs / n
		name := fmt.Sprintf("%s@%dn", hdr.Name, n)
		src, err := RetargetTrace(data, tracefile.RetargetSpec{
			Nodes:  n,
			Policy: tracefile.RoundRobin(),
			Name:   name,
		})
		if err != nil {
			return nil, "", err
		}
		if err := h.Register(src); err != nil {
			return nil, "", err
		}
		plan.AddRuns([]string{name},
			sweepSystem(config.Ideal(), n, cpusPer),
			sweepSystem(config.Base(config.CCNUMA), n, cpusPer),
			sweepSystem(config.Base(config.SCOMA), n, cpusPer),
			sweepSystem(config.Base(config.RNUMA), n, cpusPer))
		pts = append(pts, point{nodes: n, cpusPer: cpusPer, app: name})
	}

	h.Prefetch(plan)
	out := make([]SweepPoint, 0, len(pts))
	for _, p := range pts {
		base, err := h.Run(p.app, sweepSystem(config.Ideal(), p.nodes, p.cpusPer))
		if err != nil {
			return nil, "", err
		}
		sp := SweepPoint{Nodes: p.nodes, CPUsPerNode: p.cpusPer}
		for _, c := range []struct {
			sys  config.System
			into *float64
		}{
			{config.Base(config.CCNUMA), &sp.CCNUMA},
			{config.Base(config.SCOMA), &sp.SCOMA},
			{config.Base(config.RNUMA), &sp.RNUMA},
		} {
			run, err := h.Run(p.app, sweepSystem(c.sys, p.nodes, p.cpusPer))
			if err != nil {
				return nil, "", err
			}
			*c.into = run.Normalized(base)
		}
		out = append(out, sp)
	}
	return out, hdr.Name, nil
}

// NodeSweepFile is NodeSweep over a trace file on disk.
func (h *Harness) NodeSweepFile(path string, nodeCounts []int) ([]SweepPoint, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("harness: %w", err)
	}
	pts, name, err := h.NodeSweep(data, nodeCounts)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return pts, name, nil
}
