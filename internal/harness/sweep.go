package harness

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rnuma/internal/config"
	"rnuma/internal/tracefile"
)

// This file implements the sensitivity-sweep engine: one recorded trace
// transformed along a single parameter axis and replayed under all three
// designs at every point. The paper's core claim is robustness — R-NUMA
// stays within a small constant of the better base protocol across
// machine and workload parameters — so every axis re-checks that claim
// against a different knob: machine size (shape retarget), processor
// speed (gap dilation), coherence granularity (geometry retarget), page
// size (geometry retarget), and the relocation threshold (a config
// change, no transform needed).

// Axis identifies the parameter a sensitivity sweep varies.
type Axis int

const (
	// AxisNodes sweeps the node count: the capture is re-homed
	// round-robin onto each machine size (the original node-count sweep).
	AxisNodes Axis = iota
	// AxisDilate sweeps a compute-gap scale factor: factors below 1 model
	// faster processors (less compute between references), factors above
	// 1 slower ones.
	AxisDilate
	// AxisBlockSize sweeps the coherence block size via geometry
	// retargeting (values in bytes).
	AxisBlockSize
	// AxisPageSize sweeps the page size via geometry retargeting (values
	// in bytes).
	AxisPageSize
	// AxisThreshold sweeps R-NUMA's relocation threshold T; the trace is
	// replayed unchanged and only the R-NUMA configuration varies.
	AxisThreshold
)

// String names the axis the way the CLI spells it.
func (a Axis) String() string {
	switch a {
	case AxisNodes:
		return "nodes"
	case AxisDilate:
		return "dilate"
	case AxisBlockSize:
		return "block"
	case AxisPageSize:
		return "page"
	case AxisThreshold:
		return "threshold"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// ParseAxis resolves a CLI axis name.
func ParseAxis(name string) (Axis, error) {
	switch name {
	case "nodes":
		return AxisNodes, nil
	case "dilate":
		return AxisDilate, nil
	case "block":
		return AxisBlockSize, nil
	case "page":
		return AxisPageSize, nil
	case "threshold", "T":
		return AxisThreshold, nil
	default:
		return 0, fmt.Errorf("harness: unknown sweep axis %q (want nodes, dilate, block, page, or threshold)", name)
	}
}

// SweepValue is one point's parameter value. Every axis uses integers
// (Den == 1) except dilate, whose factors are rationals.
type SweepValue struct {
	Num, Den int64
}

// IntValue wraps an integer axis value.
func IntValue(n int) SweepValue { return SweepValue{Num: int64(n), Den: 1} }

// Float returns the value as a float for sorting and plotting.
func (v SweepValue) Float() float64 {
	if v.Den == 0 {
		return 0
	}
	return float64(v.Num) / float64(v.Den)
}

// String renders the value as the CLI accepts it ("4", "1/2").
func (v SweepValue) String() string {
	if v.Den == 1 {
		return strconv.FormatInt(v.Num, 10)
	}
	return fmt.Sprintf("%d/%d", v.Num, v.Den)
}

// reduced normalizes the fraction (2/4 and 1/2 are the same point).
func (v SweepValue) reduced() SweepValue {
	a, b := v.Num, v.Den
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return v
	}
	if a < 0 {
		a = -a
	}
	return SweepValue{Num: v.Num / a, Den: v.Den / a}
}

// ParseSweepValues parses a comma-separated value list for an axis:
// plain integers everywhere, N/D rationals on the dilate axis.
func ParseSweepValues(axis Axis, csv string) ([]SweepValue, error) {
	var out []SweepValue
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if axis == AxisDilate {
			num, den, err := tracefile.ParseRatio(s)
			if err != nil {
				return nil, err
			}
			// ParseRatio only checks the syntax; reject non-positive
			// factors here so the bad token is named at parse time rather
			// than failing deep inside the dilate transform.
			if num <= 0 || den <= 0 {
				return nil, fmt.Errorf("harness: bad %s sweep value %q (factor must be positive)", axis, s)
			}
			out = append(out, SweepValue{Num: num, Den: den})
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("harness: bad %s sweep value %q (want an integer)", axis, s)
		}
		out = append(out, IntValue(n))
	}
	return out, nil
}

// AxisPoint is one configuration of a sensitivity sweep: the three base
// protocols' execution times normalized to the ideal machine (infinite
// block cache) of the same shape, geometry, and trace variant.
type AxisPoint struct {
	Axis  Axis
	Value SweepValue
	// Label names the point the way the report prints it ("8n x 4cpu",
	// "x1/2", "b=64B", "T=256").
	Label string
	// Nodes and CPUsPerNode are the simulated machine shape at this point.
	Nodes       int
	CPUsPerNode int
	// Normalized execution times.
	CCNUMA, SCOMA, RNUMA float64
}

// RNUMAOverBest reports R-NUMA's time relative to the better base
// protocol at this point (the paper's bounded-worst-case ratio).
func (p AxisPoint) RNUMAOverBest() float64 {
	best := p.CCNUMA
	if p.SCOMA < best {
		best = p.SCOMA
	}
	if best == 0 {
		return 0
	}
	return p.RNUMA / best
}

// humanBytes renders a byte size compactly for point labels.
func humanBytes(n int) string {
	if n >= 1<<20 && n%(1<<20) == 0 {
		return fmt.Sprintf("%dM", n>>20)
	}
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// sweepSystem shapes a base configuration to one sweep point: the
// machine shape and geometry come from the (possibly transformed) trace
// header, and the label lands in the name for progress logs.
func sweepSystem(sys config.System, hdr tracefile.Header, label string) config.System {
	sys.Nodes = hdr.Nodes
	sys.CPUsPerNode = hdr.CPUs / hdr.Nodes
	sys.Geometry = hdr.Geometry
	sys.Name = fmt.Sprintf("%s %s", sys.Name, label)
	return sys
}

// sweepPoint is one resolved point of a sweep: the registered source
// name plus the four systems to replay it under.
type sweepPoint struct {
	value                SweepValue
	label                string
	app                  string
	nodes, cpusPer       int
	ideal, cc, scoma, rn config.System
}

// variantFor transforms the capture for one axis value and returns the
// registered source name, the variant's header, and the point label.
// The threshold axis returns the capture unchanged.
func variantFor(data []byte, hdr tracefile.Header, axis Axis, v SweepValue) (enc []byte, label string, err error) {
	switch axis {
	case AxisNodes:
		n := int(v.Num)
		if v.Den != 1 || n < 1 {
			return nil, "", fmt.Errorf("harness: node count %s must be a positive integer", v)
		}
		if hdr.CPUs%n != 0 {
			return nil, "", fmt.Errorf("harness: trace %s has %d CPUs, not divisible across %d nodes", hdr.Name, hdr.CPUs, n)
		}
		var buf bytes.Buffer
		_, err := tracefile.Retarget(&buf, bytes.NewReader(data), tracefile.RetargetSpec{
			Nodes:  n,
			Policy: tracefile.RoundRobin(),
			Name:   fmt.Sprintf("%s@%dn", hdr.Name, n),
		})
		return buf.Bytes(), fmt.Sprintf("%dn x %dcpu", n, hdr.CPUs/n), err
	case AxisDilate:
		var buf bytes.Buffer
		_, err := tracefile.Dilate(&buf, bytes.NewReader(data), tracefile.DilateSpec{
			Num: v.Num, Den: v.Den,
			Name: fmt.Sprintf("%s@x%s", hdr.Name, v),
		})
		return buf.Bytes(), "x" + v.String(), err
	case AxisBlockSize, AxisPageSize:
		n := int(v.Num)
		if v.Den != 1 || n < 1 {
			return nil, "", fmt.Errorf("harness: %s size %s must be a positive integer", axis, v)
		}
		spec := tracefile.GeometrySpec{Name: fmt.Sprintf("%s@%s%d", hdr.Name, axis, n)}
		label := "b=" + humanBytes(n)
		if axis == AxisPageSize {
			spec.PageBytes = n
			label = "p=" + humanBytes(n)
		} else {
			spec.BlockBytes = n
		}
		var buf bytes.Buffer
		_, err := tracefile.RetargetGeometry(&buf, bytes.NewReader(data), spec)
		return buf.Bytes(), label, err
	case AxisThreshold:
		T := int(v.Num)
		if v.Den != 1 || T < 1 {
			return nil, "", fmt.Errorf("harness: threshold %s must be a positive integer", v)
		}
		return nil, fmt.Sprintf("T=%d", T), nil
	}
	return nil, "", fmt.Errorf("harness: unknown sweep axis %v", axis)
}

// Sweep transforms the in-memory trace encoding along one axis and
// replays every point under CC-NUMA, S-COMA, and R-NUMA plus the
// same-configuration ideal baseline. Transformed sources register under
// "<name>@<point>", so repeated and overlapping sweeps share simulations
// through the memo cache. Points come back sorted by value; duplicate
// values collapse to one point.
func (h *Harness) Sweep(data []byte, axis Axis, values []SweepValue) ([]AxisPoint, string, error) {
	if len(values) == 0 {
		return nil, "", fmt.Errorf("harness: %s sweep over no values", axis)
	}
	// Only the header is needed here (name + shape for validation); each
	// variant source validates and hashes its own full decode.
	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, "", fmt.Errorf("harness: %w", err)
	}
	hdr := d.Header()

	vals := normalizeSweepValues(values)

	plan := NewPlan()
	pts := make([]sweepPoint, 0, len(vals))
	for _, v := range vals {
		enc, label, err := variantFor(data, hdr, axis, v)
		if err != nil {
			return nil, "", err
		}
		pt := sweepPoint{value: v, label: label}
		vh := hdr
		if enc != nil {
			src, err := TraceSource(enc)
			if err != nil {
				return nil, "", err
			}
			if err := h.Register(src); err != nil {
				return nil, "", err
			}
			pt.app = src.Name()
			vh = src.(*traceSource).Header()
		} else {
			// Config-only axes replay the capture unchanged; register it
			// once under an axis-tagged name so it cannot collide with a
			// same-named catalog generator or an untransformed -traces row.
			src, err := TraceSource(data)
			if err != nil {
				return nil, "", err
			}
			named := &renamedSource{Source: src, name: fmt.Sprintf("%s@%s", hdr.Name, axis)}
			if err := h.Register(named); err != nil {
				return nil, "", err
			}
			pt.app = named.Name()
		}
		pt.nodes, pt.cpusPer = vh.Nodes, vh.CPUs/vh.Nodes
		pt.ideal = sweepSystem(config.Ideal(), vh, label)
		pt.cc = sweepSystem(config.Base(config.CCNUMA), vh, label)
		pt.scoma = sweepSystem(config.Base(config.SCOMA), vh, label)
		pt.rn = sweepSystem(config.Base(config.RNUMA), vh, label)
		if axis == AxisThreshold {
			pt.rn.Threshold = int(v.Num)
		}
		plan.AddRuns([]string{pt.app}, pt.ideal, pt.cc, pt.scoma, pt.rn)
		pts = append(pts, pt)
	}

	// Threshold points replay the identical trace and differ only in T, so
	// they share a prefix: run it once on a trunk machine and fork each
	// point from a snapshot instead of replaying it per point (fork.go).
	if axis == AxisThreshold && len(pts) > 1 {
		if err := h.forkThresholdPoints(data, pts); err != nil {
			return nil, "", err
		}
	}

	h.Prefetch(plan)
	out := make([]AxisPoint, 0, len(pts))
	for _, p := range pts {
		base, err := h.Run(p.app, p.ideal)
		if err != nil {
			return nil, "", err
		}
		ap := AxisPoint{Axis: axis, Value: p.value, Label: p.label, Nodes: p.nodes, CPUsPerNode: p.cpusPer}
		for _, c := range []struct {
			sys  config.System
			into *float64
		}{
			{p.cc, &ap.CCNUMA},
			{p.scoma, &ap.SCOMA},
			{p.rn, &ap.RNUMA},
		} {
			run, err := h.Run(p.app, c.sys)
			if err != nil {
				return nil, "", err
			}
			*c.into = run.Normalized(base)
		}
		out = append(out, ap)
	}
	return out, hdr.Name, nil
}

// SweepFile is Sweep over a trace file on disk.
func (h *Harness) SweepFile(path string, axis Axis, values []SweepValue) ([]AxisPoint, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("harness: %w", err)
	}
	pts, name, err := h.Sweep(data, axis, values)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return pts, name, nil
}

// renamedSource registers an existing source under a different
// application name (the content key is unchanged, so identical content
// still shares simulations).
type renamedSource struct {
	Source
	name string
}

func (r *renamedSource) Name() string { return r.name }

// RenamedSource wraps a source under a different application name. The
// content key is unchanged, so identical content still shares
// simulations through the store; the server uses it to disambiguate
// uploads whose embedded names collide.
func RenamedSource(src Source, name string) Source {
	return &renamedSource{Source: src, name: name}
}
