package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

// recordCatalog encodes a catalog application's streams at the base
// shape and the given scale.
func recordCatalog(t *testing.T, name string, scale float64) []byte {
	t.Helper()
	app, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	cfg := workloads.DefaultConfig()
	cfg.Scale = scale
	var buf bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&buf, app.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRetargetIdentityReplaysIdentically is the transform layer's
// differential acceptance proof: retargeting a catalog trace back onto
// its own machine shape with the identity policy must replay to a
// stats.Run identical to replaying the original capture — the transform
// re-encodes, it never perturbs.
func TestRetargetIdentityReplaysIdentically(t *testing.T) {
	apps := []string{"em3d", "lu"}
	if testing.Short() {
		apps = apps[:1]
	}
	const scale = 0.05
	sys := config.Base(config.RNUMA)
	for _, name := range apps {
		data := recordCatalog(t, name, scale)

		orig, err := TraceSource(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		re, err := RetargetTrace(data, tracefile.RetargetSpec{}) // identity, shape kept
		if err != nil {
			t.Fatalf("%s: retarget: %v", name, err)
		}
		if orig.Key() != re.Key() {
			t.Errorf("%s: identity retarget changed the memo key: %s vs %s", name, orig.Key(), re.Key())
		}

		runs := make([]interface{}, 0, 2)
		for _, src := range []Source{orig, re} {
			h := New(scale)
			if err := h.Register(src); err != nil {
				t.Fatalf("%s: register: %v", name, err)
			}
			run, err := h.Run(src.Name(), sys)
			if err != nil {
				t.Fatalf("%s: run: %v", name, err)
			}
			runs = append(runs, run)
		}
		if !reflect.DeepEqual(runs[0], runs[1]) {
			t.Errorf("%s: identity-retargeted replay differs from the original replay", name)
		}
	}
}

// TestNodeSweep drives a recorded catalog trace across node counts
// through the generalized axis engine and checks the points come back
// shaped and normalized sanely, with the store deduplicating a repeated
// sweep.
func TestNodeSweep(t *testing.T) {
	// The full three-point sweep is 12 simulations; the short suite
	// keeps two points (the sweep mechanics — retarget, register,
	// normalize, sort — are identical per point).
	// fft is the catalog's smallest capture, so the full 12-simulation
	// grid stays cheap even under -race.
	const scale = 0.02
	counts := []int{16, 4, 8}
	shapes := []struct{ nodes, cpusPer int }{{4, 8}, {8, 4}, {16, 2}}
	if testing.Short() {
		counts, shapes = []int{16, 8}, shapes[1:]
	}
	nodeValues := func(counts []int) []SweepValue {
		out := make([]SweepValue, 0, len(counts))
		for _, n := range counts {
			out = append(out, IntValue(n))
		}
		return out
	}
	data := recordCatalog(t, "fft", scale)
	h := New(scale)
	points, name, err := h.Sweep(data, AxisNodes, nodeValues(counts))
	if err != nil {
		t.Fatal(err)
	}
	if name != "fft" {
		t.Errorf("workload name = %q", name)
	}
	if len(points) != len(shapes) {
		t.Fatalf("got %d points, want %d", len(points), len(shapes))
	}
	for i, want := range shapes {
		p := points[i]
		if p.Nodes != want.nodes || p.CPUsPerNode != want.cpusPer {
			t.Errorf("point %d: %dn x %dcpu, want %dn x %d", i, p.Nodes, p.CPUsPerNode, want.nodes, want.cpusPer)
		}
		// Normalized times are relative to the same-shape ideal machine:
		// every real protocol is at least as slow.
		for which, v := range map[string]float64{"ccnuma": p.CCNUMA, "scoma": p.SCOMA, "rnuma": p.RNUMA} {
			if v < 1 {
				t.Errorf("point %d: %s normalized time %.3f < 1", i, which, v)
			}
		}
		if p.RNUMAOverBest() <= 0 {
			t.Errorf("point %d: bad R/best ratio", i)
		}
	}

	// A second sweep over a subset must reuse the registered sources and
	// cached runs (Register would error if the content key changed).
	again, _, err := h.Sweep(data, AxisNodes, nodeValues([]int{8}))
	if err != nil {
		t.Fatal(err)
	}
	var at8 AxisPoint
	for _, p := range points {
		if p.Nodes == 8 {
			at8 = p
		}
	}
	if !reflect.DeepEqual(again[0], at8) {
		t.Errorf("repeated sweep point differs: %+v vs %+v", again[0], at8)
	}

	// Node counts that do not divide the CPU count are rejected.
	if _, _, err := h.Sweep(data, AxisNodes, nodeValues([]int{5})); err == nil {
		t.Error("5-node sweep of a 32-CPU trace accepted")
	}
	if _, _, err := h.Sweep(data, AxisNodes, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

// TestSweepDilate sweeps gap-dilation factors: each point replays the
// dilated capture normalized to the same-dilation ideal machine, so
// every protocol stays at or above 1 and points come back sorted by
// factor with rational labels.
func TestSweepDilate(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	h := New(scale)
	values, err := ParseSweepValues(AxisDilate, "2,1/2")
	if err != nil {
		t.Fatal(err)
	}
	points, name, err := h.Sweep(data, AxisDilate, values)
	if err != nil {
		t.Fatal(err)
	}
	if name != "fft" {
		t.Errorf("workload name = %q", name)
	}
	if len(points) != 2 || points[0].Label != "x1/2" || points[1].Label != "x2" {
		t.Fatalf("points = %+v", points)
	}
	for i, p := range points {
		if p.Nodes != 8 || p.CPUsPerNode != 4 {
			t.Errorf("point %d: shape %dn x %d, want 8x4", i, p.Nodes, p.CPUsPerNode)
		}
		for which, v := range map[string]float64{"ccnuma": p.CCNUMA, "scoma": p.SCOMA, "rnuma": p.RNUMA} {
			if v < 1 {
				t.Errorf("point %d: %s normalized time %.3f < 1", i, which, v)
			}
		}
	}

	// Equivalent fractions collapse to one point.
	dup, _, err := h.Sweep(data, AxisDilate, []SweepValue{{Num: 1, Den: 2}, {Num: 2, Den: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dup) != 1 {
		t.Fatalf("1/2 and 2/4 did not collapse: %d points", len(dup))
	}
	if !reflect.DeepEqual(dup[0], points[0]) {
		t.Errorf("repeated dilate point differs: %+v vs %+v", dup[0], points[0])
	}

	if _, _, err := h.Sweep(data, AxisDilate, []SweepValue{{Num: -1, Den: 2}}); err == nil {
		t.Error("negative dilate factor accepted")
	}
}

// TestSweepThreshold sweeps R-NUMA's relocation threshold: the capture
// replays unchanged, so the CC-NUMA and S-COMA columns are constant
// across points and only R-NUMA responds.
func TestSweepThreshold(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	h := New(scale)
	values, err := ParseSweepValues(AxisThreshold, "16,256")
	if err != nil {
		t.Fatal(err)
	}
	points, _, err := h.Sweep(data, AxisThreshold, values)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Label != "T=16" || points[1].Label != "T=256" {
		t.Fatalf("points = %+v", points)
	}
	if points[0].CCNUMA != points[1].CCNUMA || points[0].SCOMA != points[1].SCOMA {
		t.Errorf("base protocols moved across thresholds: %+v", points)
	}
	if _, _, err := h.Sweep(data, AxisThreshold, []SweepValue{IntValue(0)}); err == nil {
		t.Error("threshold 0 accepted")
	}
}

// TestSweepGeometry sweeps the block size through geometry retargeting:
// each point replays on a machine of the retargeted geometry.
func TestSweepGeometry(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	h := New(scale)
	points, _, err := h.Sweep(data, AxisBlockSize, []SweepValue{IntValue(64), IntValue(16)})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Label != "b=16B" || points[1].Label != "b=64B" {
		t.Fatalf("points = %+v", points)
	}
	for i, p := range points {
		if p.RNUMA < 1 || p.CCNUMA < 1 {
			t.Errorf("point %d: normalized below ideal: %+v", i, p)
		}
	}
	// A non-power-of-two size surfaces the transform's validation.
	if _, _, err := h.Sweep(data, AxisBlockSize, []SweepValue{IntValue(48)}); err == nil {
		t.Error("non-power-of-two block size accepted")
	}
}

// TestParseAxisAndValues covers the CLI-facing parsers.
func TestParseAxisAndValues(t *testing.T) {
	for name, want := range map[string]Axis{
		"nodes": AxisNodes, "dilate": AxisDilate, "block": AxisBlockSize,
		"page": AxisPageSize, "threshold": AxisThreshold,
	} {
		got, err := ParseAxis(name)
		if err != nil || got != want {
			t.Errorf("ParseAxis(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("axis %v renders as %q", want, got.String())
		}
	}
	if _, err := ParseAxis("bogus"); err == nil {
		t.Error("unknown axis accepted")
	}

	vals, err := ParseSweepValues(AxisDilate, "1/2, 2,4")
	if err != nil || len(vals) != 3 || vals[0] != (SweepValue{1, 2}) {
		t.Errorf("dilate values = %v, %v", vals, err)
	}
	if _, err := ParseSweepValues(AxisNodes, "1/2"); err == nil {
		t.Error("rational node count accepted")
	}
	if _, err := ParseSweepValues(AxisNodes, "x"); err == nil {
		t.Error("non-integer accepted")
	}
	if v := (SweepValue{Num: 3, Den: 1}); v.String() != "3" || v.Float() != 3 {
		t.Errorf("SweepValue render: %q %v", v.String(), v.Float())
	}
	if v := (SweepValue{Num: 1, Den: 2}); v.String() != "1/2" || v.Float() != 0.5 {
		t.Errorf("SweepValue render: %q %v", v.String(), v.Float())
	}
}

// TestRetargetedTraceFileSource exercises the file-path entry point: a
// trace on disk retargeted at registration replays on the new shape.
func TestRetargetedTraceFileSource(t *testing.T) {
	data := recordCatalog(t, "fft", 0.02)
	path := filepath.Join(t.TempDir(), "m.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := RetargetedTraceFileSource(path, tracefile.RetargetSpec{
		Nodes:  4,
		Policy: tracefile.RoundRobin(),
		Name:   "fft@4n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "fft@4n" {
		t.Errorf("name = %q", src.Name())
	}
	h := New(0.02)
	if err := h.Register(src); err != nil {
		t.Fatal(err)
	}
	sys := config.Base(config.RNUMA)
	sys.Nodes, sys.CPUsPerNode = 4, 8
	run, err := h.Run(src.Name(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if run.ExecCycles <= 0 {
		t.Error("empty run")
	}
	// The retargeted source carries the new shape, so the base 8-node
	// machine must be rejected at load time.
	if _, err := h.Run(src.Name(), config.Base(config.RNUMA)); err == nil {
		t.Error("8-node replay of a 4-node retarget accepted")
	}

	if _, err := RetargetedTraceFileSource(filepath.Join(t.TempDir(), "absent.trace"), tracefile.RetargetSpec{}); err == nil {
		t.Error("missing file accepted")
	}
}
