package harness

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/telemetry"
	"rnuma/internal/tracefile"
	"rnuma/internal/tracefile/snapfile"
)

// TestTimelineSerialVsParallel: the interval series is defined by global
// reference counts, not wall-clock schedule, so a parallel plan execution
// produces timelines bit-identical to a serial one.
func TestTimelineSerialVsParallel(t *testing.T) {
	const scale = 0.02
	apps := []string{"fft", "em3d"}
	sys := config.Base(config.RNUMA)

	timelines := func(workers int) map[string]*telemetry.Timeline {
		h := New(scale)
		h.Workers = workers
		h.Telemetry = telemetry.Config{Window: 2048}
		h.Prefetch(NewPlan().AddRuns(apps, sys))
		out := make(map[string]*telemetry.Timeline, len(apps))
		for _, app := range apps {
			run, err := h.Run(app, sys)
			if err != nil {
				t.Fatal(err)
			}
			if run.Timeline == nil {
				t.Fatalf("%s: probed harness run carries no timeline", app)
			}
			out[app] = run.Timeline
		}
		return out
	}

	serial, parallel := timelines(1), timelines(4)
	for _, app := range apps {
		if !reflect.DeepEqual(serial[app], parallel[app]) {
			t.Errorf("%s: parallel timeline differs from serial", app)
		}
	}
}

// TestTimelineForkSweepMatchesFullReplay: every point of a probed
// threshold fork sweep carries the timeline an independent full probed
// replay at that threshold produces — including points forked mid-window
// from the trunk (the cursor-carrying snapshot is what makes this exact).
func TestTimelineForkSweepMatchesFullReplay(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "em3d", scale)
	sys := config.Base(config.RNUMA)
	tcfg := telemetry.Config{Window: 3000} // deliberately unaligned with any fork point
	thresholds := []int{4, 16, 1 << 20}

	res, err := Replay(bytes.NewReader(data), sys, WithThresholds(thresholds...), WithTelemetry(tcfg))
	if err != nil {
		t.Fatal(err)
	}
	runs := res.ByThreshold
	var relocated bool
	for _, T := range thresholds {
		s := sys
		s.Threshold = T
		wantRes, err := Replay(bytes.NewReader(data), s, WithTelemetry(tcfg))
		if err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
		want := wantRes.Run
		got := runs[T]
		if !reflect.DeepEqual(want, got) {
			t.Errorf("T=%d: forked run differs from independent probed replay", T)
		}
		if want.Timeline == nil || len(want.Timeline.Intervals) == 0 {
			t.Fatalf("T=%d: full replay captured no intervals", T)
		}
		if want.Relocations > 0 {
			relocated = true
			if len(want.Timeline.Events) == 0 {
				t.Errorf("T=%d: %d relocations but no events", T, want.Relocations)
			}
		}
	}
	if !relocated {
		t.Error("no threshold relocated a page; the identity proves nothing about post-crossing series")
	}
}

// TestTimelineSnapshotResumeContinuity: a probed replay paused mid-window,
// checkpointed through the snapfile encoding, restored into a fresh
// machine, and finished produces the identical timeline — the probe
// cursor survives serialization.
func TestTimelineSnapshotResumeContinuity(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale)
	sys := config.Base(config.RNUMA)
	tcfg := telemetry.Config{Window: 4096}

	fullRes, err := Replay(bytes.NewReader(data), sys, WithTelemetry(tcfg))
	if err != nil {
		t.Fatal(err)
	}
	full, hdr := fullRes.Run, fullRes.Header
	pause := full.Refs/3 + 1 // off any 4096 boundary: the cursor is mid-window
	if pause%tcfg.Window == 0 {
		pause++
	}

	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := NewTraceMachine(d.Header(), sys, machine.WithTelemetry(tcfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(d.Streams()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunUntilRefs(pause); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Probe == nil {
		t.Fatal("probed snapshot carries no cursor")
	}

	// Round-trip the checkpoint through the on-disk encoding.
	path := filepath.Join(t.TempDir(), "pause.rnss")
	if err := snapfile.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	decoded, err := snapfile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Probe == nil {
		t.Fatal("probe cursor lost in snapfile round-trip")
	}

	fork, _, err := NewTraceMachine(hdr, sys, machine.WithTelemetry(tcfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	fd, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.ResumeWith(fd.Streams()); err != nil {
		t.Fatal(err)
	}
	forked, err := fork.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, forked) {
		t.Errorf("resumed run diverged from uninterrupted probed replay:\n full timeline %+v\n fork timeline %+v",
			full.Timeline, forked.Timeline)
	}
}

// TestForkSweepClonedPointsIndependent: when no counter ever reaches the
// watermark, every sweep point is a clone of the trunk's run — the clones
// must not share timeline storage, or mutating one point corrupts the
// others.
func TestForkSweepClonedPointsIndependent(t *testing.T) {
	const scale = 0.02
	data := recordCatalog(t, "fft", scale) // fft never refetches at these thresholds
	sys := config.Base(config.RNUMA)
	tcfg := telemetry.Config{Window: 4096}

	res, err := Replay(bytes.NewReader(data), sys, WithThresholds(1<<19, 1<<20), WithTelemetry(tcfg))
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.ByThreshold[1<<19], res.ByThreshold[1<<20]
	if a == b {
		t.Fatal("duplicate points share one *stats.Run")
	}
	if a.Timeline == nil || len(a.Timeline.Intervals) == 0 {
		t.Fatal("cloned point carries no timeline")
	}
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("cloned points disagree before mutation")
	}
	a.Timeline.Intervals[0].Delta.Refs = -1
	if b.Timeline.Intervals[0].Delta.Refs == -1 {
		t.Error("cloned points share interval storage")
	}
}
