package machine

import (
	"fmt"

	"rnuma/internal/addr"
	"rnuma/internal/blockcache"
	"rnuma/internal/cache"
	"rnuma/internal/node"
	"rnuma/internal/osmodel"
	"rnuma/internal/pagecache"
	"rnuma/internal/trace"
)

// l1Index computes the set index the node's CPUs use for a block: CC-NUMA
// and home-local pages index by global physical address; S-COMA pages by
// their page-cache frame address (the local physical address the CPUs
// actually issue). The scomaMapped fast path skips the per-node
// page-table lookup while no node anywhere has the page S-COMA-mapped —
// the overwhelmingly common case on this per-reference path.
func (m *Machine) l1Index(nd *node.Node, page addr.PageNum, b addr.BlockNum) int {
	if int(page) < len(m.scomaMapped) && m.scomaMapped[page] != 0 {
		if h := m.homeAt(page); h != addr.NoNode && h != nd.ID {
			if mp := nd.PT.Lookup(page); mp.Kind == osmodel.MappedSCOMA {
				key := uint32(mp.Frame*m.bpp + m.g.OffsetOf(b))
				return nd.L1s[0].Index(key)
			}
		}
	}
	return nd.L1s[0].Index(uint32(b))
}

// access processes one memory reference issued by CPU c at time t and
// returns its latency in cycles.
func (m *Machine) access(c *node.CPU, t int64, ref trace.Ref) int64 {
	nd := m.nodes[c.Node]
	m.run.Refs++
	b := m.g.BlockOf(ref.Page, int(ref.Off))
	home := m.HomeOf(ref.Page, nd.ID)
	local := home == nd.ID
	now := t

	if !local {
		if ref.Write {
			m.pageFlags[ref.Page] |= flagWriteShared
		} else {
			m.pageFlags[ref.Page] |= flagReadShared
		}
		if si := int(ref.Page)*m.sys.Nodes + int(nd.ID); !m.seen[si] {
			m.seen[si] = true
			m.run.RemotePages++
		}
		if nd.PT.Lookup(ref.Page).Kind == osmodel.Unmapped {
			now += m.pageFault(nd, now, ref.Page)
		}
	}

	idx := m.l1Index(nd, ref.Page, b)
	l1 := nd.L1s[c.Index]
	st, ver := l1.Lookup(idx, b)

	if !ref.Write {
		if st.Valid() {
			m.run.L1Hits++
			m.checkRead(b, ver, "l1")
			return now - t + m.costs.L1HitCycles
		}
		lat, fillVer, fillState := m.fillMiss(nd, c, now, ref.Page, b, false, local, home)
		// The mapping may have changed under us (R-NUMA relocation), so
		// recompute the index before installing.
		idx = m.l1Index(nd, ref.Page, b)
		m.l1Install(nd, c, idx, b, fillState, fillVer)
		m.checkRead(b, fillVer, "fill")
		return now - t + lat
	}

	// Write.
	if st == cache.Modified {
		m.run.L1Hits++
		l1.SetVersion(idx, b, m.bumpVersion(b))
		return now - t + m.costs.L1HitCycles
	}
	if st.Valid() {
		// Write hit on a Shared/Owned line: the data is here, but write
		// permission may not be; peers must be invalidated on the bus.
		lat := m.upgradePath(nd, c, now, ref.Page, b, idx, local, home)
		nv := m.bumpVersion(b)
		l1.Fill(idx, b, cache.Modified, nv) // in place: same block
		return now - t + lat
	}
	lat, _, _ := m.fillMiss(nd, c, now, ref.Page, b, true, local, home)
	idx = m.l1Index(nd, ref.Page, b)
	nv := m.bumpVersion(b)
	m.l1Install(nd, c, idx, b, cache.Modified, nv)
	return now - t + lat
}

// upgradePath handles a write to a block the CPU already holds read-only:
// invalidate peer copies on the bus and obtain node-level write permission
// from the directory if the node does not already have it.
func (m *Machine) upgradePath(nd *node.Node, c *node.CPU, now int64, page addr.PageNum, b addr.BlockNum, idx int, local bool, home addr.NodeID) int64 {
	start := nd.Bus.Acquire(now, m.costs.BusOccupancy)
	lat := start - now
	m.invalidatePeers(nd, c, idx, b)
	m.run.Upgrades++ // the write is serviced by a permission upgrade

	if local {
		// Home-node write: invalidate any remote copies via the directory.
		inval := m.dir.Upgrade(b, nd.ID)
		lat += m.costs.SRAMAccess
		if len(inval) > 0 {
			lat += m.applyInvalidations(nd, now+lat, page, b, inval)
			m.markWriteShared(page)
		}
		return lat
	}

	mp := nd.PT.Lookup(page)
	switch mp.Kind {
	case osmodel.MappedCC:
		if e, ok := nd.RAD.BlockCache.Lookup(b); ok && e.State == blockcache.ReadWrite {
			// Node already owns the block: a bus-local upgrade.
			lat += m.costs.SRAMAccess
			nd.RAD.BlockCache.Update(b, blockcache.ReadWrite, true, e.Version)
			return lat
		}
		// Node is a sharer (block-cache RO hit or L1-only copy): a
		// directory upgrade, never a refetch (no data transfer).
		lat += m.directoryUpgrade(nd, now+lat, page, b)
		// Restore read-write inclusion in the block cache.
		_, l1ver := nd.L1s[c.Index].Probe(idx, b)
		victim, ev := nd.RAD.BlockCache.Fill(b, blockcache.ReadWrite, true, l1ver)
		if ev {
			m.bcEvict(nd, now+lat, victim)
		}
		return lat
	case osmodel.MappedSCOMA:
		off := m.g.OffsetOf(b)
		pc := nd.RAD.PageCache
		if pc.Tag(mp.Frame, off) == pagecache.TagReadWrite {
			lat += m.costs.SRAMAccess
			return lat
		}
		lat += m.directoryUpgrade(nd, now+lat, page, b)
		pc.SetBlock(mp.Frame, off, pagecache.TagReadWrite, false, pc.Version(mp.Frame, off))
		pc.TouchMiss(mp.Frame, now+lat)
		return lat
	default:
		panic(fmt.Sprintf("machine: upgrade on unmapped remote page %d", page))
	}
}

// directoryUpgrade performs the remote upgrade transaction: request write
// permission from the home, invalidating all other holders.
func (m *Machine) directoryUpgrade(nd *node.Node, now int64, page addr.PageNum, b addr.BlockNum) int64 {
	home := m.homes[page]
	lat := m.networkRequest(nd, m.nodes[home], now, false)
	lat += m.costs.RemoteFetch - m.costs.DRAMAccess // permission only, no data
	inval := m.dir.Upgrade(b, nd.ID)
	if len(inval) > 0 {
		lat += m.applyInvalidations(nd, now+lat, page, b, inval)
	}
	m.markWriteShared(page)
	return lat
}

// invalidatePeers destroys other local CPUs' copies of a block during a
// bus write transaction.
func (m *Machine) invalidatePeers(nd *node.Node, c *node.CPU, idx int, b addr.BlockNum) {
	for i, l1 := range nd.L1s {
		if i == c.Index {
			continue
		}
		l1.Invalidate(idx, b)
	}
}

// fillMiss services an L1 miss: snoop the node bus, then dispatch to the
// home memory, the block cache, or the page cache according to the page's
// mapping. It returns the latency, the version supplied, and the L1 state
// to install.
func (m *Machine) fillMiss(nd *node.Node, c *node.CPU, now int64, page addr.PageNum, b addr.BlockNum, write, local bool, home addr.NodeID) (int64, uint32, cache.State) {
	idx := m.l1Index(nd, page, b)
	start := nd.Bus.Acquire(now, m.costs.BusOccupancy)
	lat := start - now

	// Snoop: an owned (dirty) peer copy supplies cache-to-cache. The
	// MBus-like protocol does not supply clean blocks cache-to-cache, so
	// those misses continue to the RAD or memory even if a peer holds the
	// data read-only (paper Section 4).
	for i, l1 := range nd.L1s {
		if i == c.Index {
			continue
		}
		if st, ver := l1.Probe(idx, b); st.Dirty() {
			m.run.C2CTransfers++
			if write {
				m.invalidatePeers(nd, c, idx, b)
			} else {
				l1.SetState(idx, b, cache.Owned)
			}
			return lat + m.costs.LocalFill, ver, cache.Shared
		}
	}
	if write {
		// The bus transaction invalidates peer clean copies.
		m.invalidatePeers(nd, c, idx, b)
	}

	if local {
		l, v := m.localFill(nd, now+lat, page, b, write)
		return lat + l, v, readState(write)
	}

	mp := nd.PT.Lookup(page)
	switch mp.Kind {
	case osmodel.MappedCC:
		l, v := m.ccFill(nd, now+lat, page, b, write)
		return lat + l, v, readState(write)
	case osmodel.MappedSCOMA:
		l, v := m.scomaFill(nd, now+lat, page, b, mp.Frame, write)
		return lat + l, v, readState(write)
	default:
		panic(fmt.Sprintf("machine: miss on unmapped remote page %d", page))
	}
}

func readState(write bool) cache.State {
	if write {
		return cache.Modified
	}
	return cache.Shared
}

// localFill services a miss to a page homed at this node: home memory
// supplies the data after the directory resolves any remote conflicts.
func (m *Machine) localFill(nd *node.Node, now int64, page addr.PageNum, b addr.BlockNum, write bool) (int64, uint32) {
	res := m.dir.Fetch(b, nd.ID, write)
	var lat int64
	if res.FromOwner != addr.NoNode {
		lat += m.recallFromOwner(nd, now, page, b, res.FromOwner, write)
	}
	if write && len(res.Invalidate) > 0 {
		lat += m.applyInvalidations(nd, now+lat, page, b, res.Invalidate)
		m.markWriteShared(page)
	}
	lat += m.costs.LocalFill
	m.run.LocalFills++
	return lat, m.dir.HomeVersion(b)
}

// ccFill services a miss on a CC-NUMA-mapped remote page: the RAD's block
// cache first, then a remote fetch from the home (paper Figure 2b).
func (m *Machine) ccFill(nd *node.Node, now int64, page addr.PageNum, b addr.BlockNum, write bool) (int64, uint32) {
	ctlStart := nd.RAD.Ctl.Acquire(now, m.costs.RADOccupancy)
	lat := ctlStart - now

	if e, ok := nd.RAD.BlockCache.Lookup(b); ok {
		if !write {
			m.run.BlockCacheHits++
			return lat + m.costs.BlockCacheHit(), e.Version
		}
		if e.State == blockcache.ReadWrite {
			m.run.BlockCacheHits++
			nd.RAD.BlockCache.Update(b, blockcache.ReadWrite, true, e.Version)
			return lat + m.costs.BlockCacheHit(), e.Version
		}
		// Write to a read-only cached block: upgrade (no data transfer,
		// not a refetch), then own it.
		lat += m.costs.BlockCacheHit()
		lat += m.directoryUpgrade(nd, now+lat, page, b)
		nd.RAD.BlockCache.Update(b, blockcache.ReadWrite, true, e.Version)
		m.run.BlockCacheHits++
		return lat, e.Version
	}

	// Block-cache miss: fetch from home.
	lat += m.costs.SRAMAccess
	fl, ver, refetch := m.remoteFetch(nd, now+lat, page, b, write)
	lat += fl

	st := blockcache.ReadOnly
	dirty := false
	if write {
		st, dirty = blockcache.ReadWrite, true
	}
	victim, ev := nd.RAD.BlockCache.Fill(b, st, dirty, ver)
	if ev {
		m.bcEvict(nd, now+lat, victim)
	}

	if refetch {
		m.addRefetch(nd.ID, page)
	}
	if nd.RAD.Reactive() && (refetch || m.naiveCounting) {
		n, crossed := nd.RAD.Counters.Record(page)
		if n > m.counterHigh {
			m.counterHigh = n
		}
		if crossed {
			// Threshold crossed: the OS relocates the page to S-COMA.
			if m.probe != nil {
				m.probe.Relocation(m.run.Refs, nd.ID, page, n)
			}
			lat += m.relocate(nd, now+lat, page)
		}
	}
	return lat, ver
}

// scomaFill services a miss on an S-COMA-mapped page: fine-grain tags
// decide between a page-cache hit, an upgrade, and a remote coherence
// fetch (paper Figure 3b).
func (m *Machine) scomaFill(nd *node.Node, now int64, page addr.PageNum, b addr.BlockNum, frame int, write bool) (int64, uint32) {
	ctlStart := nd.RAD.Ctl.Acquire(now, m.costs.RADOccupancy)
	lat := ctlStart - now
	pc := nd.RAD.PageCache
	off := m.g.OffsetOf(b)
	lat += m.costs.SRAMAccess // fine-grain tag check

	tag := pc.Tag(frame, off)
	if tag != pagecache.TagInvalid && (!write || tag == pagecache.TagReadWrite) {
		pc.RecordHit()
		pc.TouchHit(frame, now+lat)
		m.run.PageCacheHits++
		ver := pc.Version(frame, off)
		if write {
			pc.SetBlock(frame, off, pagecache.TagReadWrite, true, ver)
		}
		return lat + m.costs.LocalFill, ver
	}

	if tag == pagecache.TagReadOnly && write {
		// Upgrade: data is local, permission is not. The page cache
		// services the data, so this counts as a page-cache hit.
		pc.RecordMiss()
		pc.TouchMiss(frame, now+lat)
		m.run.PageCacheHits++
		lat += m.costs.LocalFill
		lat += m.directoryUpgrade(nd, now+lat, page, b)
		ver := pc.Version(frame, off)
		pc.SetBlock(frame, off, pagecache.TagReadWrite, true, ver)
		return lat, ver
	}

	// Invalid tag: inhibit memory, translate LPA to GPA, fetch from home.
	pc.RecordMiss()
	pc.TouchMiss(frame, now+lat)
	coherenceMiss := pc.WasInvalidated(frame, off)
	if coherenceMiss {
		pc.NoteCoherenceMiss(frame)
	}
	lat += m.costs.SRAMAccess // translation table
	fl, ver, refetch := m.remoteFetch(nd, now+lat, page, b, write)
	lat += fl
	t := pagecache.TagReadOnly
	dirty := false
	if write {
		t, dirty = pagecache.TagReadWrite, true
	}
	pc.SetBlock(frame, off, t, dirty, ver)
	if refetch {
		// A page that bounced out of the page cache and back can carry
		// previously-held state; record the refetch for statistics, but
		// S-COMA-mapped pages have nothing further to relocate.
		m.addRefetch(nd.ID, page)
	}
	if !write && coherenceMiss && nd.RAD.Reactive() && m.sys.DemotionThreshold > 0 &&
		pc.FrameAt(frame).MissStreak >= m.sys.DemotionThreshold {
		// Reverse adaptation (extension): the frame has taken a long run
		// of remote misses with no local hit — it is a communication
		// page wasting a frame. Demote it back to CC-NUMA. Write misses
		// are skipped: the freshly dirtied block would be flushed out
		// from under the requesting CPU's exclusive copy.
		lat += m.demote(nd, now+lat, page, frame)
	}
	return lat, ver
}

func (m *Machine) markWriteShared(page addr.PageNum) {
	m.pageFlags[page] |= flagWriteShared
}

// addRefetch records one refetch for the (node, page) pair in the dense
// counter table; finalize materializes it into run.RefetchByPage.
func (m *Machine) addRefetch(n addr.NodeID, p addr.PageNum) {
	m.run.Refetches++
	m.refetch.Add(n, p, 1)
}
