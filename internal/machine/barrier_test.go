package machine

import (
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/trace"
)

func TestBarrierSynchronizes(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// CPU 0 does a long phase then a barrier; CPU 3 a short phase then a
	// barrier, then one more reference. CPU 3's post-barrier reference
	// must start after CPU 0's phase completes.
	long := make([]trace.Ref, 0, 101)
	for i := 0; i < 100; i++ {
		long = append(long, trace.Ref{Page: 0, Off: uint16(i % 8), Gap: 1000})
	}
	long = append(long, trace.BarrierRef())
	short := []trace.Ref{
		{Page: 1, Off: 0},
		trace.BarrierRef(),
		{Page: 1, Off: 1},
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{0: long, 3: short}))
	if err != nil {
		t.Fatal(err)
	}
	// CPU 3 finishes after CPU 0's 100k-cycle phase despite doing almost
	// nothing itself.
	if run.ExecCycles < 100*1000 {
		t.Errorf("exec = %d; barrier did not hold CPU 3 back", run.ExecCycles)
	}
	cpu3 := m.cpus[3]
	if cpu3.Finish < 100*1000 {
		t.Errorf("cpu3 finished at %d, before the long phase ended", cpu3.Finish)
	}
}

func TestBarrierIdleCPUsDoNotDeadlock(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// Only CPU 0 has barriers; the others run out immediately. The run
	// must terminate (done CPUs leave the barrier quorum).
	refs := []trace.Ref{
		{Page: 0, Off: 0},
		trace.BarrierRef(),
		{Page: 0, Off: 1},
		trace.BarrierRef(),
		{Page: 0, Off: 2},
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{0: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Refs != 3 {
		t.Errorf("refs = %d, want 3", run.Refs)
	}
}

func TestBarrierMismatchedCounts(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// CPU 0 has 2 barriers, CPU 1 has 1. After CPU 1 finishes, CPU 0's
	// second barrier releases alone.
	a := []trace.Ref{
		{Page: 0, Off: 0},
		trace.BarrierRef(),
		{Page: 0, Off: 1},
		trace.BarrierRef(),
		{Page: 0, Off: 2},
	}
	b := []trace.Ref{
		{Page: 0, Off: 3},
		trace.BarrierRef(),
		{Page: 0, Off: 4},
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{0: a, 1: b}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Refs != 5 {
		t.Errorf("refs = %d, want 5", run.Refs)
	}
}

func TestBarrierAllWaitersResumeTogether(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// Two CPUs with very different phase lengths; after the barrier both
	// resume at the same time, so their finish times differ only by the
	// final reference latencies.
	a := []trace.Ref{{Page: 0, Off: 0, Gap: 60000}, trace.BarrierRef(), {Page: 0, Off: 1}}
	b := []trace.Ref{{Page: 1, Off: 0}, trace.BarrierRef(), {Page: 1, Off: 1}}
	if _, err := m.Run(streams4(map[int][]trace.Ref{0: a, 1: b})); err != nil {
		t.Fatal(err)
	}
	d := m.cpus[0].Finish - m.cpus[1].Finish
	if d < 0 {
		d = -d
	}
	if d > 10000 {
		t.Errorf("finish skew after barrier = %d cycles, want small", d)
	}
}
