package machine

import (
	"fmt"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/directory"
	"rnuma/internal/node"
	"rnuma/internal/osmodel"
	"rnuma/internal/trace"
)

// This file is the mechanical coherence-invariant checker: instead of
// eyeballing counters after a run, it stops a randomized simulation every
// checkEvery references and asserts the cross-layer protocol invariants
// directly against the directory, the L1s, the block caches, the page
// caches, and the page tables — for CC-NUMA, S-COMA, and R-NUMA alike.
// Directory transactions are atomic at the event instant (package doc),
// so between references the machine must always be in a state where every
// invariant holds exactly.

const checkEvery = 512

// copyState summarizes what one node holds of one block.
type copyState struct {
	valid bool
	dirty bool
	// cleanVersions collects the versions of the node's clean copies (for
	// the staleness check).
	cleanVersions []uint32
}

// nodeCopy probes every level of a node's hierarchy for the block.
func nodeCopy(m *Machine, nd *node.Node, page addr.PageNum, b addr.BlockNum) copyState {
	var cs copyState
	idx := m.l1Index(nd, page, b)
	for _, l1 := range nd.L1s {
		if st, ver := l1.Probe(idx, b); st.Valid() {
			cs.valid = true
			if st.Dirty() {
				cs.dirty = true
			} else {
				cs.cleanVersions = append(cs.cleanVersions, ver)
			}
		}
	}
	if nd.RAD.BlockCache != nil {
		if e, ok := nd.RAD.BlockCache.Lookup(b); ok {
			cs.valid = true
			if e.Dirty {
				cs.dirty = true
			} else {
				cs.cleanVersions = append(cs.cleanVersions, e.Version)
			}
		}
	}
	if nd.RAD.PageCache != nil {
		if mp := nd.PT.Lookup(page); mp.Kind == osmodel.MappedSCOMA {
			off := m.g.OffsetOf(b)
			if nd.RAD.PageCache.Tag(mp.Frame, off) != 0 { // not TagInvalid
				cs.valid = true
				if nd.RAD.PageCache.FrameAt(mp.Frame).Dirty[off] {
					cs.dirty = true
				} else {
					cs.cleanVersions = append(cs.cleanVersions, nd.RAD.PageCache.Version(mp.Frame, off))
				}
			}
		}
	}
	return cs
}

// checkCoherence asserts the instantaneous cross-layer invariants.
func checkCoherence(m *Machine) error {
	// The directory's own internal invariants first.
	if err := m.dir.Check(); err != nil {
		return err
	}
	var firstErr error
	m.dir.Each(func(b addr.BlockNum, e *directory.Entry) {
		if firstErr != nil {
			return
		}
		page := m.g.PageOf(b)
		home := m.homeAt(page)
		for _, nd := range m.nodes {
			cs := nodeCopy(m, nd, page, b)
			// Single-owner: while a node holds the block exclusively, no
			// other node may hold ANY copy (the exclusive grant
			// invalidated them all).
			if e.Owner != addr.NoNode && nd.ID != e.Owner && cs.valid {
				firstErr = fmt.Errorf("block %d owned by node %d, but node %d still holds a copy (dirty=%v)",
					b, e.Owner, nd.ID, cs.dirty)
				return
			}
			// Dirty copies imply directory ownership: a node can only
			// dirty a block through a write that made it the owner, and
			// every ownership-losing path (recall, invalidation,
			// writeback, page flush) cleans or destroys the dirty copy.
			if cs.dirty && e.Owner != nd.ID {
				firstErr = fmt.Errorf("node %d holds a dirty copy of block %d, directory owner is %v",
					nd.ID, b, e.Owner)
				return
			}
			// No stale shared copy after writeback: once a node's
			// voluntary writeback armed the previously-held bit, the data
			// went home — the node must not still be holding a dirty copy
			// it supposedly wrote back.
			if e.PrevHeld&(1<<uint(nd.ID)) != 0 && cs.dirty {
				firstErr = fmt.Errorf("node %d wrote block %d back (prevHeld set) but still holds it dirty",
					nd.ID, b)
				return
			}
			// Staleness: while nobody holds the block exclusively, every
			// clean copy anywhere must match the version at home memory —
			// a clean copy that survived a remote write would be a
			// coherence hole. (The home node itself is exempt only through
			// Owner, handled above.)
			if e.Owner == addr.NoNode {
				for _, v := range cs.cleanVersions {
					if v != e.Version {
						firstErr = fmt.Errorf("node %d holds clean block %d at version %d, home has %d (home node %d)",
							nd.ID, b, v, e.Version, home)
						return
					}
				}
			}
		}
	})
	return firstErr
}

// checkMappings asserts page-table / page-cache consistency per node.
func checkMappings(m *Machine) error {
	for _, nd := range m.nodes {
		for p := 0; p < m.pagesHint(); p++ {
			mp := nd.PT.Lookup(addr.PageNum(p))
			switch mp.Kind {
			case osmodel.MappedSCOMA:
				if nd.RAD.Protocol == config.CCNUMA {
					return fmt.Errorf("node %d: CC-NUMA machine has an S-COMA mapping for page %d", nd.ID, p)
				}
				frame, ok := nd.RAD.PageCache.FrameOf(addr.PageNum(p))
				if !ok || frame != mp.Frame {
					return fmt.Errorf("node %d: page %d maps to frame %d, page cache says (%d, %v)",
						nd.ID, p, mp.Frame, frame, ok)
				}
				if got := nd.RAD.PageCache.FrameAt(mp.Frame).Page; got != addr.PageNum(p) {
					return fmt.Errorf("node %d: frame %d belongs to page %d, page table maps page %d",
						nd.ID, mp.Frame, got, p)
				}
			case osmodel.MappedCC:
				if nd.RAD.Protocol == config.SCOMA {
					return fmt.Errorf("node %d: S-COMA machine has a CC mapping for page %d", nd.ID, p)
				}
			}
		}
	}
	return nil
}

// counterSnapshot captures the monotone counters.
type counterSnapshot struct {
	refs, remote, refetch, faults, allocs, repls, relocs, demos, shoots int64
}

func snapshot(m *Machine) counterSnapshot {
	r := m.run
	return counterSnapshot{
		refs: r.Refs, remote: r.RemoteFetches, refetch: r.Refetches,
		faults: r.PageFaults, allocs: r.Allocations, repls: r.Replacements,
		relocs: r.Relocations, demos: r.Demotions, shoots: r.TLBShootdowns,
	}
}

func (s counterSnapshot) monotoneSince(prev counterSnapshot) error {
	type pair struct {
		name      string
		prev, now int64
	}
	for _, p := range []pair{
		{"refs", prev.refs, s.refs}, {"remote fetches", prev.remote, s.remote},
		{"refetches", prev.refetch, s.refetch}, {"page faults", prev.faults, s.faults},
		{"allocations", prev.allocs, s.allocs}, {"replacements", prev.repls, s.repls},
		{"relocations", prev.relocs, s.relocs}, {"demotions", prev.demos, s.demos},
		{"tlb shootdowns", prev.shoots, s.shoots},
	} {
		if p.now < p.prev {
			return fmt.Errorf("%s went backwards: %d -> %d", p.name, p.prev, p.now)
		}
	}
	return nil
}

// protocolCounters asserts the per-protocol counter constraints that must
// hold at every instant, not just at the end of the run.
func (s counterSnapshot) protocolConstraints(p config.Protocol) error {
	switch p {
	case config.CCNUMA:
		if s.allocs != 0 || s.repls != 0 || s.relocs != 0 || s.demos != 0 {
			return fmt.Errorf("CC-NUMA touched the page machinery: %+v", s)
		}
	case config.SCOMA:
		if s.relocs != 0 || s.demos != 0 {
			return fmt.Errorf("S-COMA relocated or demoted pages: %+v", s)
		}
	case config.RNUMA:
		if s.allocs != 0 {
			return fmt.Errorf("R-NUMA allocated on a fault (frames are claimed by relocation only): %+v", s)
		}
	}
	return nil
}

// TestProtocolInvariantsUnderRandomTraffic drives each protocol with
// adversarial random sharing and stops every checkEvery references to
// assert the full invariant set. The machine's version-truth verification
// (WithVerify) runs alongside, so dynamic read-staleness and static
// structural holes are checked in the same run.
func TestProtocolInvariantsUnderRandomTraffic(t *testing.T) {
	seeds := []int64{2, 9, 41}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for _, seed := range seeds {
				m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify(), WithPages(12))
				if err != nil {
					t.Fatal(err)
				}
				var (
					pulled int64
					prev   counterSnapshot
					failed error
				)
				check := func() {
					if failed != nil {
						return
					}
					now := snapshot(m)
					for _, err := range []error{
						checkCoherence(m),
						checkMappings(m),
						now.monotoneSince(prev),
						now.protocolConstraints(p),
					} {
						if err != nil {
							failed = fmt.Errorf("after %d refs: %w", pulled, err)
							return
						}
					}
					prev = now
				}
				// Wrap each stream so the checker runs between references
				// (the engine pulls a stream only after the previous
				// reference on that CPU completed, and the event loop is
				// serial, so the machine is quiescent here).
				streams := randomStreams(seed, 4, 12, 2500, 0.35)
				for i, s := range streams {
					inner := s
					streams[i] = trace.FuncStream(func() (trace.Ref, bool) {
						pulled++
						if pulled%checkEvery == 0 {
							check()
						}
						return inner.Next()
					})
				}
				if _, err := m.Run(streams); err != nil {
					t.Fatalf("seed %d: run: %v", seed, err)
				}
				check() // final state
				if failed != nil {
					t.Fatalf("seed %d: %v", seed, failed)
				}
			}
		})
	}
}

// TestInvariantCheckerDetectsCorruption guards the checker itself: a
// hand-corrupted directory entry must trip it (a checker that can never
// fail verifies nothing).
func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	m, err := New(tinySys(config.RNUMA), WithHomes(evenOddHomes), WithPages(12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(randomStreams(3, 4, 12, 600, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := checkCoherence(m); err != nil {
		t.Fatalf("healthy machine flagged: %v", err)
	}
	// Forge an owner that holds nothing while another node has copies.
	var victim addr.BlockNum
	found := false
	m.dir.Each(func(b addr.BlockNum, e *directory.Entry) {
		if !found && e.Owner == addr.NoNode && e.Sharers != 0 {
			for _, nd := range m.nodes {
				if cs := nodeCopy(m, nd, m.g.PageOf(b), b); cs.valid && int(nd.ID) != 0 {
					victim, found = b, true
				}
			}
		}
	})
	if !found {
		t.Skip("no suitable block to corrupt at this seed")
	}
	e := m.dir.Entry(victim)
	e.Owner = 0
	e.Sharers = 1 // directory-internally consistent, but caches disagree
	e.PrevHeld = 0
	if err := checkCoherence(m); err == nil {
		t.Fatal("corrupted ownership not detected by the invariant checker")
	}
}
