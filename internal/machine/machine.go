// Package machine is the whole-machine simulator: it assembles the nodes,
// directory, and network model, executes per-CPU reference streams with a
// conservative discrete-event engine, and implements the protocol flows of
// CC-NUMA (paper Figure 2b), S-COMA (Figure 3b), and R-NUMA (Figure 4b).
//
// The engine always advances the CPU with the globally smallest clock, so
// resource contention (bus, network interfaces, protocol controllers) is
// causally consistent at memory-reference granularity. Directory
// transactions are atomic at the event instant with their latencies
// accounted into the reference's completion time.
package machine

import (
	"fmt"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/dense"
	"rnuma/internal/directory"
	"rnuma/internal/event"
	"rnuma/internal/node"
	"rnuma/internal/stats"
	"rnuma/internal/trace"
)

// Machine is one simulated DSM system.
type Machine struct {
	sys   config.System
	g     addr.Geometry
	bpp   int // blocks per page
	costs config.Costs

	nodes []*node.Node
	cpus  []*node.CPU // flattened, indexed by global CPU id
	dir   *directory.Dir

	// Per-page state lives in dense page-indexed slices (sized up front
	// from the workload's page count via WithPages, grown on demand past
	// it): access() consults homes and the sharing flags on every
	// reference, where per-access map hashing dominates the real work.
	homes     []addr.NodeID // page -> home node; NoNode = untouched
	pageFlags []uint8       // page -> sharing-traffic bits (Table 4)
	seen      []bool        // page*nodes+node -> node touched this remote page
	homeFn    func(addr.PageNum) addr.NodeID

	run      *stats.Run
	refetch  *stats.PageCounter // per-(node,page) refetches, materialized at finalize
	perNodeR []int64            // per-node replacement counts, materialized at finalize

	// naiveCounting is an ablation switch: feed the R-NUMA counters on
	// every remote fetch instead of only on refetches, deliberately
	// breaking Section 3.1's capacity-vs-coherence distinction.
	naiveCounting bool

	// Version model for correctness verification: every write gets a
	// globally unique version; with verification on, each read must
	// observe the latest version of its block. truth is a dense
	// block-indexed slice (zero version = never written).
	nextVersion uint32
	verify      bool
	truth       []uint32
	verifyErr   error
}

const (
	flagReadShared  uint8 = 1 << iota // page saw remote read traffic
	flagWriteShared                   // page saw remote write traffic
)

// Option customizes machine construction.
type Option func(*Machine)

// WithHomes supplies an explicit page-placement function, modeling a
// perfectly effective first-touch migration (the workloads know which node
// touches each page first, so this is equivalent to the paper's user
// directive without simulating the migration itself).
func WithHomes(fn func(addr.PageNum) addr.NodeID) Option {
	return func(m *Machine) { m.homeFn = fn }
}

// WithVerify enables the sequential-consistency version check: every read
// must return the version written by the last write to that block. The
// first violation is recorded and retrievable via Err.
func WithVerify() Option {
	return func(m *Machine) {
		m.verify = true
		m.truth = make([]uint32, m.g.BlocksFor(m.pagesHint()))
	}
}

// WithPages pre-sizes the dense per-page state (homes, sharing flags,
// refetch counters, page tables) for a shared segment of n pages. The
// slices still grow on demand, so the hint is an optimization, not a
// bound; workloads know their segment size and should always pass it.
func WithPages(n int) Option {
	return func(m *Machine) {
		if n <= 0 {
			return
		}
		m.growPages(addr.PageNum(n - 1))
		m.refetch = stats.NewPageCounter(m.sys.Nodes, n)
		if m.verify {
			m.truth = dense.Grow(m.truth, m.g.BlocksFor(n))
		}
		for _, nd := range m.nodes {
			nd.PT.Reserve(n)
		}
	}
}

// pagesHint returns the page bound the dense state is currently sized for.
func (m *Machine) pagesHint() int { return len(m.homes) }

// growPages extends every page-indexed slice to cover page p.
func (m *Machine) growPages(p addr.PageNum) {
	if int(p) < len(m.homes) {
		return
	}
	old := len(m.homes)
	m.homes = dense.Grow(m.homes, int(p)+1)
	for i := old; i < len(m.homes); i++ {
		m.homes[i] = addr.NoNode
	}
	m.pageFlags = dense.Grow(m.pageFlags, len(m.homes))
	m.seen = dense.Grow(m.seen, len(m.homes)*m.sys.Nodes)
}

// ensureBlock extends the verification truth table to cover block b.
func (m *Machine) ensureBlock(b addr.BlockNum) {
	m.truth = dense.Grow(m.truth, int(b)+1)
}

// WithNaiveCounting is an ablation of Section 3.1: the reactive counters
// are fed by every remote fetch, coherence misses included, instead of by
// refetches only. Communication pages then cross the threshold and are
// pointlessly relocated, demonstrating why the paper's refetch distinction
// matters.
func WithNaiveCounting() Option {
	return func(m *Machine) { m.naiveCounting = true }
}

// New builds a machine for the given system configuration.
func New(sys config.System, opts ...Option) (*Machine, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		sys:      sys,
		g:        sys.Geometry,
		bpp:      sys.Geometry.BlocksPerPage(),
		costs:    sys.Costs,
		dir:      directory.New(sys.Nodes),
		run:      stats.NewRun(),
		refetch:  stats.NewPageCounter(sys.Nodes, 0),
		perNodeR: make([]int64, sys.Nodes),
	}
	for i := 0; i < sys.Nodes; i++ {
		nd := node.New(sys, addr.NodeID(i))
		m.nodes = append(m.nodes, nd)
		m.cpus = append(m.cpus, nd.CPUs...)
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// System returns the machine's configuration.
func (m *Machine) System() config.System { return m.sys }

// Nodes exposes the node array (tests and diagnostics).
func (m *Machine) Nodes() []*node.Node { return m.nodes }

// Directory exposes the directory (tests and diagnostics).
func (m *Machine) Directory() *directory.Dir { return m.dir }

// Err returns the first verification failure, if verification was enabled.
func (m *Machine) Err() error { return m.verifyErr }

// HomeOf returns (and on first touch, assigns) the page's home node.
func (m *Machine) HomeOf(p addr.PageNum, toucher addr.NodeID) addr.NodeID {
	if int(p) < len(m.homes) {
		if h := m.homes[p]; h != addr.NoNode {
			return h
		}
	} else {
		m.growPages(p)
	}
	var h addr.NodeID
	switch {
	case m.homeFn != nil:
		h = m.homeFn(p)
	case m.sys.FirstTouch:
		h = toucher
	default:
		h = addr.NodeID(uint32(p) % uint32(len(m.nodes)))
	}
	m.homes[p] = h
	return h
}

// homeAt returns the page's assigned home, or NoNode if untouched.
func (m *Machine) homeAt(p addr.PageNum) addr.NodeID {
	if int(p) >= len(m.homes) {
		return addr.NoNode
	}
	return m.homes[p]
}

// Run executes one stream per CPU to completion and returns the collected
// statistics. The number of streams must equal the machine's CPU count.
func (m *Machine) Run(streams []trace.Stream) (*stats.Run, error) {
	if len(streams) != len(m.cpus) {
		return nil, fmt.Errorf("machine: %d streams for %d CPUs", len(streams), len(m.cpus))
	}
	var q event.Queue
	var waiting []*node.CPU // CPUs parked at a barrier
	for i, c := range m.cpus {
		c.Stream = streams[i]
		c.Actor.Clock = 0
		q.Push(&c.Actor)
	}
	active := len(m.cpus)
	release := func() {
		// All still-running CPUs have reached the barrier: everyone
		// resumes at the latest arrival time.
		var maxT int64
		for _, w := range waiting {
			if w.Actor.Clock > maxT {
				maxT = w.Actor.Clock
			}
		}
		for _, w := range waiting {
			w.Actor.Clock = maxT
			q.Push(&w.Actor)
		}
		waiting = waiting[:0]
	}
	for {
		a := q.Pop()
		if a == nil {
			break
		}
		c := m.cpus[a.ID]
		var ref trace.Ref
		if c.HasPending {
			ref, c.HasPending = c.Pending, false
		} else {
			r, ok := c.Stream.Next()
			if !ok {
				c.Done = true
				c.Finish = a.Clock
				active--
				if len(waiting) > 0 && len(waiting) == active {
					release()
				}
				continue
			}
			ref = r
			if ref.Gap > 0 {
				// The compute gap advances this CPU's clock before the
				// reference issues; if another CPU is now globally
				// earlier, defer the reference so events stay causally
				// ordered.
				a.Clock += int64(ref.Gap)
				if top := q.Peek(); top != nil && top.Clock < a.Clock {
					c.Pending, c.HasPending = ref, true
					q.Push(a)
					continue
				}
			}
		}
		if ref.Barrier {
			waiting = append(waiting, c)
			if len(waiting) == active {
				release()
			}
			continue
		}
		lat := m.access(c, a.Clock, ref)
		a.Clock += lat
		c.Refs++
		q.Push(a)
	}
	m.finalize()
	return m.run, m.verifyErr
}

func (m *Machine) finalize() {
	var exec int64
	for _, c := range m.cpus {
		if c.Finish > exec {
			exec = c.Finish
		}
	}
	m.run.ExecCycles = exec
	for _, nd := range m.nodes {
		m.run.BusWaitCycles += nd.Bus.WaitCycles()
		m.run.NIWaitCycles += nd.NI.WaitCycles()
		m.run.RADWaitCycles += nd.RAD.Ctl.WaitCycles()
	}
	// Materialize the dense hot-path counters into the sparse map form
	// the stats consumers read.
	const rw = flagReadShared | flagWriteShared
	m.refetch.Each(func(key stats.PageKey, c int64) {
		m.run.RefetchByPage[key] = c
		if m.pageFlags[key.Page]&rw == rw {
			m.run.RWRefetches += c
		}
	})
	for n, c := range m.perNodeR {
		if c != 0 {
			m.run.PerNodeReplacements[addr.NodeID(n)] = c
		}
	}
	if m.verify && m.verifyErr == nil {
		m.verifyErr = m.dir.Check()
	}
}

// bumpVersion mints a new version for a write to block b.
func (m *Machine) bumpVersion(b addr.BlockNum) uint32 {
	m.nextVersion++
	if m.verify {
		m.ensureBlock(b)
		m.truth[b] = m.nextVersion
	}
	return m.nextVersion
}

// checkRead validates an observed read version against the truth model.
func (m *Machine) checkRead(b addr.BlockNum, got uint32, where string) {
	if !m.verify || m.verifyErr != nil {
		return
	}
	var want uint32
	if int(b) < len(m.truth) {
		want = m.truth[b]
	}
	if got != want {
		m.verifyErr = fmt.Errorf("machine: stale read of block %d from %s: got version %d want %d", b, where, got, want)
	}
}
