// Package machine is the whole-machine simulator: it assembles the nodes,
// directory, and network model, executes per-CPU reference streams with a
// conservative discrete-event engine, and implements the protocol flows of
// CC-NUMA (paper Figure 2b), S-COMA (Figure 3b), and R-NUMA (Figure 4b).
//
// The engine always advances the CPU with the globally smallest clock, so
// resource contention (bus, network interfaces, protocol controllers) is
// causally consistent at memory-reference granularity. Directory
// transactions are atomic at the event instant with their latencies
// accounted into the reference's completion time.
package machine

import (
	"fmt"
	"math"

	"rnuma/internal/addr"
	"rnuma/internal/blockcache"
	"rnuma/internal/cache"
	"rnuma/internal/config"
	"rnuma/internal/dense"
	"rnuma/internal/directory"
	"rnuma/internal/event"
	"rnuma/internal/node"
	"rnuma/internal/pagecache"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/trace"
)

// relocMoved is one offset's merged block state during a relocation.
type relocMoved struct {
	present bool
	tag     pagecache.TagState
	dirty   bool
	ver     uint32
}

// Machine is one simulated DSM system.
type Machine struct {
	sys   config.System
	g     addr.Geometry
	bpp   int // blocks per page
	costs config.Costs

	nodes []*node.Node
	cpus  []*node.CPU // flattened, indexed by global CPU id
	dir   *directory.Dir

	// Per-page state lives in dense page-indexed slices (sized up front
	// from the workload's page count via WithPages, grown on demand past
	// it): access() consults homes and the sharing flags on every
	// reference, where per-access map hashing dominates the real work.
	homes     []addr.NodeID // page -> home node; NoNode = untouched
	pageFlags []uint8       // page -> sharing-traffic bits (Table 4)
	seen      []bool        // page*nodes+node -> node touched this remote page
	homeFn    func(addr.PageNum) addr.NodeID

	// scomaMapped counts, per page, how many nodes hold an S-COMA mapping.
	// l1Index consults it to skip the per-node page-table lookup for the
	// overwhelmingly common case of a page no node has relocated.
	scomaMapped []uint16

	// counterHigh is the high-water refetch count any R-NUMA counter has
	// reached. Runs at different thresholds evolve identical counts until
	// the first crossing, so a sweep's trunk run can pause while
	// counterHigh is still below a lower threshold and snapshot a state
	// every higher-threshold point shares (see RunUntilCounter).
	counterHigh uint32

	// Event-loop state, persistent across paused runs (snapshot/fork).
	q       event.Queue
	waiting []*node.CPU // CPUs parked at a barrier
	active  int
	started bool

	// Per-CPU batch buffers: streams implementing trace.Batcher deliver
	// references in bulk, amortizing the per-Next interface call.
	batch []refBuffer

	// relocate scratch, reused across calls so the relocation path does
	// not allocate: a blocks-per-page offset-indexed merge table plus
	// gather buffers for block-cache and L1 lookups.
	relocMoved []relocMoved
	relocUsed  []int
	bcScratch  []blockcache.Entry
	l1Scratch  []cache.Line

	run      *stats.Run
	refetch  *stats.PageCounter // per-(node,page) refetches, materialized at finalize
	perNodeR []int64            // per-node replacement counts, materialized at finalize

	// Telemetry probe (nil when disabled). probeNext caches the probe's
	// next window boundary — MaxInt64 with no probe — so the per-reference
	// cost of disabled telemetry is one always-false int64 compare.
	probe     *telemetry.Probe
	probeNext int64

	// Per-client attribution (nil for single-tenant runs): the RLE span
	// cursors track which traffic client issued each CPU's next record,
	// and every reference charges its counter deltas to exactly one
	// client, so the per-client totals sum to the machine-level counters
	// by construction.
	attr         *trace.Attribution
	attrCur      []attrCursor
	clientTotals []telemetry.Counters
	attrPrev     telemetry.Counters

	// naiveCounting is an ablation switch: feed the R-NUMA counters on
	// every remote fetch instead of only on refetches, deliberately
	// breaking Section 3.1's capacity-vs-coherence distinction.
	naiveCounting bool

	// Version model for correctness verification: every write gets a
	// globally unique version; with verification on, each read must
	// observe the latest version of its block. truth is a dense
	// block-indexed slice (zero version = never written).
	nextVersion uint32
	verify      bool
	truth       []uint32
	verifyErr   error
}

const (
	flagReadShared  uint8 = 1 << iota // page saw remote read traffic
	flagWriteShared                   // page saw remote write traffic
)

// Option customizes machine construction.
type Option func(*Machine)

// WithHomes supplies an explicit page-placement function, modeling a
// perfectly effective first-touch migration (the workloads know which node
// touches each page first, so this is equivalent to the paper's user
// directive without simulating the migration itself).
func WithHomes(fn func(addr.PageNum) addr.NodeID) Option {
	return func(m *Machine) { m.homeFn = fn }
}

// WithVerify enables the sequential-consistency version check: every read
// must return the version written by the last write to that block. The
// first violation is recorded and retrievable via Err.
func WithVerify() Option {
	return func(m *Machine) {
		m.verify = true
		m.truth = make([]uint32, m.g.BlocksFor(m.pagesHint()))
	}
}

// WithPages pre-sizes the dense per-page state (homes, sharing flags,
// refetch counters, page tables) for a shared segment of n pages. The
// slices still grow on demand, so the hint is an optimization, not a
// bound; workloads know their segment size and should always pass it.
func WithPages(n int) Option {
	return func(m *Machine) {
		if n <= 0 {
			return
		}
		m.growPages(addr.PageNum(n - 1))
		m.refetch = stats.NewPageCounter(m.sys.Nodes, n)
		if m.verify {
			m.truth = dense.Grow(m.truth, m.g.BlocksFor(n))
		}
		for _, nd := range m.nodes {
			nd.PT.Reserve(n)
		}
	}
}

// pagesHint returns the page bound the dense state is currently sized for.
func (m *Machine) pagesHint() int { return len(m.homes) }

// growPages extends every page-indexed slice to cover page p.
func (m *Machine) growPages(p addr.PageNum) {
	if int(p) < len(m.homes) {
		return
	}
	old := len(m.homes)
	m.homes = dense.Grow(m.homes, int(p)+1)
	for i := old; i < len(m.homes); i++ {
		m.homes[i] = addr.NoNode
	}
	m.pageFlags = dense.Grow(m.pageFlags, len(m.homes))
	m.seen = dense.Grow(m.seen, len(m.homes)*m.sys.Nodes)
	m.scomaMapped = dense.Grow(m.scomaMapped, len(m.homes))
}

// markSCOMA/unmarkSCOMA maintain the per-page count of nodes holding an
// S-COMA mapping (the l1Index fast-path flag).
func (m *Machine) markSCOMA(p addr.PageNum) {
	if int(p) >= len(m.scomaMapped) {
		m.scomaMapped = dense.Grow(m.scomaMapped, int(p)+1)
	}
	m.scomaMapped[p]++
}

func (m *Machine) unmarkSCOMA(p addr.PageNum) {
	if int(p) >= len(m.scomaMapped) || m.scomaMapped[p] == 0 {
		panic(fmt.Sprintf("machine: S-COMA unmap of untracked page %d", p))
	}
	m.scomaMapped[p]--
}

// ensureBlock extends the verification truth table to cover block b.
func (m *Machine) ensureBlock(b addr.BlockNum) {
	m.truth = dense.Grow(m.truth, int(b)+1)
}

// WithNaiveCounting is an ablation of Section 3.1: the reactive counters
// are fed by every remote fetch, coherence misses included, instead of by
// refetches only. Communication pages then cross the threshold and are
// pointlessly relocated, demonstrating why the paper's refetch distinction
// matters.
func WithNaiveCounting() Option {
	return func(m *Machine) { m.naiveCounting = true }
}

// WithTelemetry attaches a sampling probe that closes an interval every
// cfg.Window references and records relocation events and per-window
// remote-traffic matrices. The run's stats.Run carries the resulting
// Timeline. A disabled configuration (Window <= 0) is a no-op, so callers
// can thread a zero Config through unconditionally.
func WithTelemetry(cfg telemetry.Config) Option {
	return func(m *Machine) {
		if !cfg.Enabled() {
			return
		}
		m.probe = telemetry.NewProbe(cfg, m.sys.Nodes)
		m.run.Timeline = m.probe.Timeline()
		m.probeNext = m.probe.NextBoundary()
	}
}

// attrCursor walks one CPU's attribution spans record by record.
type attrCursor struct {
	spans []trace.ClientSpan
	idx   int   // next span to load
	left  int64 // records remaining in the loaded span
}

// WithAttribution attaches per-client reference attribution (compiled
// multi-tenant scenarios): every processed record advances its CPU's span
// cursor, and each reference's counter deltas are charged to the client
// that issued it. The resulting per-client totals land in stats.Run.Clients
// and — when a telemetry probe is attached — in each interval's PerClient
// split. A nil attribution is a no-op.
func WithAttribution(a *trace.Attribution) Option {
	return func(m *Machine) {
		if a == nil {
			return
		}
		m.attr = a
		m.clientTotals = make([]telemetry.Counters, len(a.Clients))
		m.attrCur = make([]attrCursor, len(m.cpus))
		for i := range m.attrCur {
			if i < len(a.Spans) {
				m.attrCur[i].spans = a.Spans[i]
			}
		}
	}
}

// attrAdvance consumes one record from the CPU's span cursor and returns
// the client it belongs to. Exhaustion is an internal invariant violation:
// the compiler emits spans covering every record of every stream.
func (m *Machine) attrAdvance(cpu int) int32 {
	cur := &m.attrCur[cpu]
	if cur.left == 0 {
		if cur.idx >= len(cur.spans) {
			panic(fmt.Sprintf("machine: attribution spans for cpu %d exhausted", cpu))
		}
		cur.left = cur.spans[cur.idx].N
		cur.idx++
	}
	cur.left--
	return cur.spans[cur.idx-1].Client
}

// attrCharge charges the counter movement since the previous reference to
// the client that issued the one just processed.
func (m *Machine) attrCharge(cpu int) {
	id := m.attrAdvance(cpu)
	cur := m.counterSample()
	m.clientTotals[id].Add(cur.Sub(m.attrPrev))
	m.attrPrev = cur
}

// New builds a machine for the given system configuration.
func New(sys config.System, opts ...Option) (*Machine, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		sys:       sys,
		g:         sys.Geometry,
		bpp:       sys.Geometry.BlocksPerPage(),
		costs:     sys.Costs,
		dir:       directory.New(sys.Nodes),
		run:       stats.NewRun(),
		refetch:   stats.NewPageCounter(sys.Nodes, 0),
		perNodeR:  make([]int64, sys.Nodes),
		probeNext: math.MaxInt64,
	}
	for i := 0; i < sys.Nodes; i++ {
		nd := node.New(sys, addr.NodeID(i))
		m.nodes = append(m.nodes, nd)
		m.cpus = append(m.cpus, nd.CPUs...)
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// System returns the machine's configuration.
func (m *Machine) System() config.System { return m.sys }

// Nodes exposes the node array (tests and diagnostics).
func (m *Machine) Nodes() []*node.Node { return m.nodes }

// Directory exposes the directory (tests and diagnostics).
func (m *Machine) Directory() *directory.Dir { return m.dir }

// Err returns the first verification failure, if verification was enabled.
func (m *Machine) Err() error { return m.verifyErr }

// HomeOf returns (and on first touch, assigns) the page's home node.
func (m *Machine) HomeOf(p addr.PageNum, toucher addr.NodeID) addr.NodeID {
	if int(p) < len(m.homes) {
		if h := m.homes[p]; h != addr.NoNode {
			return h
		}
	} else {
		m.growPages(p)
	}
	var h addr.NodeID
	switch {
	case m.homeFn != nil:
		h = m.homeFn(p)
	case m.sys.FirstTouch:
		h = toucher
	default:
		h = addr.NodeID(uint32(p) % uint32(len(m.nodes)))
	}
	m.homes[p] = h
	return h
}

// homeAt returns the page's assigned home, or NoNode if untouched.
func (m *Machine) homeAt(p addr.PageNum) addr.NodeID {
	if int(p) >= len(m.homes) {
		return addr.NoNode
	}
	return m.homes[p]
}

// refBuffer is one CPU's batch-delivery state: a view of references
// pulled from a Batcher stream in one call, drained by the event loop
// before the next pull (the view aliases stream-owned storage).
type refBuffer struct {
	src trace.Batcher // nil when the stream only supports Next
	buf []trace.Ref
	pos int
}

// batchSize is the per-CPU bulk-delivery unit. Large enough to amortize
// the interface call and (for trace files) the chunk-decode bookkeeping,
// small enough that the buffers stay cache-resident.
const batchSize = 256

// Run executes one stream per CPU to completion and returns the collected
// statistics. The number of streams must equal the machine's CPU count.
func (m *Machine) Run(streams []trace.Stream) (*stats.Run, error) {
	if err := m.Start(streams); err != nil {
		return nil, err
	}
	return m.Finish()
}

// Start binds one stream per CPU and readies the event loop without
// executing anything. Use it with RunUntilRefs/RunUntilCounter to pause a
// run at a snapshot point; plain Run wraps Start+Finish.
func (m *Machine) Start(streams []trace.Stream) error {
	if m.started {
		return fmt.Errorf("machine: Start on an already-started machine")
	}
	if len(streams) != len(m.cpus) {
		return fmt.Errorf("machine: %d streams for %d CPUs", len(streams), len(m.cpus))
	}
	if m.attr != nil {
		if err := m.attr.Validate(); err != nil {
			return err
		}
		if len(m.attr.Spans) != len(m.cpus) {
			return fmt.Errorf("machine: attribution covers %d CPUs, machine has %d", len(m.attr.Spans), len(m.cpus))
		}
		if m.probe != nil {
			m.probe.EnableClients(m.attr.Clients)
		}
	}
	m.bind(streams)
	for _, c := range m.cpus {
		c.Actor.Clock = 0
		m.q.Push(&c.Actor)
	}
	m.active = len(m.cpus)
	m.started = true
	return nil
}

// bind attaches streams to CPUs and sets up batch delivery for streams
// that support it.
func (m *Machine) bind(streams []trace.Stream) {
	if m.batch == nil {
		m.batch = make([]refBuffer, len(m.cpus))
	}
	for i, c := range m.cpus {
		c.Stream = streams[i]
		rb := &m.batch[i]
		rb.src, _ = streams[i].(trace.Batcher)
		rb.buf = nil
		rb.pos = 0
	}
}

// Finish runs the bound streams to completion and returns the collected
// statistics.
func (m *Machine) Finish() (*stats.Run, error) {
	if !m.started {
		return nil, fmt.Errorf("machine: Finish before Start")
	}
	m.loop(0, 0, false)
	m.finalize()
	return m.run, m.verifyErr
}

// RunUntilRefs executes until the machine has processed at least n
// references (or the run completes), pausing between references. It
// reports whether the run completed.
func (m *Machine) RunUntilRefs(n int64) (done bool, err error) {
	if !m.started {
		return false, fmt.Errorf("machine: run before Start")
	}
	if n <= 0 {
		return m.q.Len() == 0, nil
	}
	return m.loop(n, 0, false), nil
}

// RunUntilCounter executes until some R-NUMA refetch counter has reached
// the watermark w (or the run completes), pausing between references. A
// paused machine's counter state is identical to that of a run under any
// relocation threshold > w, which is what makes threshold-sweep forking
// sound: pause at w = T-1, snapshot, and the snapshot is a valid prefix
// for a threshold-T run. It reports whether the run completed.
func (m *Machine) RunUntilCounter(w uint32) (done bool, err error) {
	if !m.started {
		return false, fmt.Errorf("machine: run before Start")
	}
	return m.loop(0, w, true), nil
}

// nextRef pulls the CPU's next trace record, through the batch buffer
// when the stream supports bulk delivery.
func (m *Machine) nextRef(c *node.CPU) (trace.Ref, bool) {
	rb := &m.batch[c.Global]
	if rb.pos < len(rb.buf) {
		r := rb.buf[rb.pos]
		rb.pos++
		c.Consumed++
		return r, true
	}
	if rb.src != nil {
		rb.buf = rb.src.NextBatch(batchSize)
		if len(rb.buf) > 0 {
			rb.pos = 1
			c.Consumed++
			return rb.buf[0], true
		}
		return trace.Ref{}, false
	}
	r, ok := c.Stream.Next()
	if ok {
		c.Consumed++
	}
	return r, ok
}

// release resumes every barrier-parked CPU at the latest arrival time:
// all still-running CPUs have reached the barrier.
func (m *Machine) release() {
	var maxT int64
	for _, w := range m.waiting {
		if w.Actor.Clock > maxT {
			maxT = w.Actor.Clock
		}
	}
	for _, w := range m.waiting {
		w.Actor.Clock = maxT
		w.AtBarrier = false
		m.q.Push(&w.Actor)
	}
	m.waiting = m.waiting[:0]
}

// loop is the discrete-event engine: always advance the CPU with the
// globally smallest clock. With pauseRefs > 0 it returns (done=false)
// once run.Refs reaches pauseRefs; with pauseCounter set it returns once
// counterHigh reaches pauseAt. Pauses land between references, with all
// machine state consistent, so a Snapshot taken at a pause point is a
// complete prefix of the run. It reports whether the run completed.
func (m *Machine) loop(pauseRefs int64, pauseAt uint32, pauseCounter bool) (done bool) {
	q := &m.q
	for {
		a := q.Peek()
		if a == nil {
			return true
		}
		if pauseRefs > 0 && m.run.Refs >= pauseRefs {
			return false
		}
		if pauseCounter && m.counterHigh >= pauseAt {
			return false
		}
		c := m.cpus[a.ID]
		var ref trace.Ref
		if c.HasPending {
			ref, c.HasPending = c.Pending, false
		} else {
			r, ok := m.nextRef(c)
			if !ok {
				c.Done = true
				c.Finish = a.Clock
				q.Remove(a)
				m.active--
				if len(m.waiting) > 0 && len(m.waiting) == m.active {
					m.release()
				}
				continue
			}
			ref = r
			if ref.Gap > 0 {
				// The compute gap advances this CPU's clock before the
				// reference issues; if another CPU is now strictly
				// earlier, defer the reference so events stay causally
				// ordered. Peeking the runner-up clock directly lets the
				// common (no-deferral) case fold the gap and the access
				// latency into a single heap update.
				a.Clock += int64(ref.Gap)
				if s, ok := q.SecondClock(); ok && s < a.Clock {
					q.Update(a)
					c.Pending, c.HasPending = ref, true
					continue
				}
			}
		}
		if ref.Barrier {
			if m.attr != nil {
				// Barriers advance the span cursor (they are records) but
				// move no windowed counter, so there is nothing to charge.
				m.attrAdvance(c.Global)
			}
			q.Remove(a)
			c.AtBarrier = true
			m.waiting = append(m.waiting, c)
			if len(m.waiting) == m.active {
				m.release()
			}
			continue
		}
		lat := m.access(c, a.Clock, ref)
		a.Clock += lat
		c.Refs++
		q.Update(a)
		if m.attr != nil {
			m.attrCharge(c.Global)
		}
		if m.run.Refs >= m.probeNext {
			m.probeFlush()
		}
	}
}

// probeFlush closes the telemetry window ending at the current reference
// count. Kept out of loop's body so the probe-off hot path stays a single
// compare with no call.
func (m *Machine) probeFlush() {
	if m.attr != nil {
		m.probe.FlushClients(m.counterSample(), m.run.Refs, m.clientTotals)
	} else {
		m.probe.Flush(m.counterSample(), m.run.Refs)
	}
	m.probeNext = m.probe.NextBoundary()
}

// counterSample projects the run's cumulative counters into the windowed
// subset the interval series tracks.
func (m *Machine) counterSample() telemetry.Counters {
	r := m.run
	return telemetry.Counters{
		Refs:           r.Refs,
		L1Hits:         r.L1Hits,
		LocalFills:     r.LocalFills,
		BlockCacheHits: r.BlockCacheHits,
		PageCacheHits:  r.PageCacheHits,
		RemoteFetches:  r.RemoteFetches,
		Refetches:      r.Refetches,
		Upgrades:       r.Upgrades,
		PageFaults:     r.PageFaults,
		Allocations:    r.Allocations,
		Replacements:   r.Replacements,
		Relocations:    r.Relocations,
		Demotions:      r.Demotions,
		InvalsSent:     r.InvalsSent,
		WritebacksHome: r.WritebacksHome,
	}
}

func (m *Machine) finalize() {
	if m.probe != nil {
		// Close the trailing partial window (a no-op if the run ended
		// exactly on a boundary).
		m.probeFlush()
	}
	if m.attr != nil {
		m.run.Clients = make([]stats.ClientStats, len(m.attr.Clients))
		for i, name := range m.attr.Clients {
			m.run.Clients[i] = stats.ClientStats{Name: name, Counters: m.clientTotals[i]}
		}
	}
	var exec int64
	for _, c := range m.cpus {
		if c.Finish > exec {
			exec = c.Finish
		}
	}
	m.run.ExecCycles = exec
	for _, nd := range m.nodes {
		m.run.BusWaitCycles += nd.Bus.WaitCycles()
		m.run.NIWaitCycles += nd.NI.WaitCycles()
		m.run.RADWaitCycles += nd.RAD.Ctl.WaitCycles()
	}
	// Materialize the dense hot-path counters into the sparse map form
	// the stats consumers read.
	const rw = flagReadShared | flagWriteShared
	m.refetch.Each(func(key stats.PageKey, c int64) {
		m.run.RefetchByPage[key] = c
		if m.pageFlags[key.Page]&rw == rw {
			m.run.RWRefetches += c
		}
	})
	for n, c := range m.perNodeR {
		if c != 0 {
			m.run.PerNodeReplacements[addr.NodeID(n)] = c
		}
	}
	if m.verify && m.verifyErr == nil {
		m.verifyErr = m.dir.Check()
	}
}

// bumpVersion mints a new version for a write to block b.
func (m *Machine) bumpVersion(b addr.BlockNum) uint32 {
	m.nextVersion++
	if m.verify {
		m.ensureBlock(b)
		m.truth[b] = m.nextVersion
	}
	return m.nextVersion
}

// checkRead validates an observed read version against the truth model.
func (m *Machine) checkRead(b addr.BlockNum, got uint32, where string) {
	if !m.verify || m.verifyErr != nil {
		return
	}
	var want uint32
	if int(b) < len(m.truth) {
		want = m.truth[b]
	}
	if got != want {
		m.verifyErr = fmt.Errorf("machine: stale read of block %d from %s: got version %d want %d", b, where, got, want)
	}
}
