package machine

import (
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/trace"
)

// tinySys builds a small 2-node, 2-CPU machine with 256-byte pages
// (8 blocks/page) so page machinery is cheap to exercise.
func tinySys(p config.Protocol) config.System {
	s := config.System{
		Name:     "test-" + p.String(),
		Protocol: p,
		Geometry: addr.Geometry{BlockShift: 5, PageShift: 8},
		Costs:    config.BaseCosts(),
		Nodes:    2, CPUsPerNode: 2,
		L1Bytes:   512, // 16 lines
		Threshold: 4,
	}
	switch p {
	case config.CCNUMA:
		s.BlockCacheBytes = 256 // 8 blocks
	case config.SCOMA:
		s.PageCacheBytes = 1024 // 4 frames
	case config.RNUMA:
		s.BlockCacheBytes = 64 // 2 blocks
		s.PageCacheBytes = 1024
	}
	return s
}

// evenOddHomes places even pages on node 0 and odd pages on node 1.
func evenOddHomes(p addr.PageNum) addr.NodeID { return addr.NodeID(p % 2) }

// newTiny builds a verified machine or fails the test.
func newTiny(t *testing.T, p config.Protocol) *Machine {
	t.Helper()
	m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// streams4 builds one stream per CPU of the tiny machine; unspecified CPUs
// idle.
func streams4(perCPU map[int][]trace.Ref) []trace.Stream {
	out := make([]trace.Stream, 4)
	for i := range out {
		if refs, ok := perCPU[i]; ok {
			out[i] = trace.FromSlice(refs)
		} else {
			out[i] = trace.Empty()
		}
	}
	return out
}

func TestLocalAccessesStayLocal(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// CPU 0 (node 0) touches even pages only: all local. The footprint
	// (page 0's 8 blocks, filling distinct lines of the 16-line L1)
	// reuses, so later passes hit in the L1.
	var refs []trace.Ref
	for i := 0; i < 50; i++ {
		refs = append(refs, trace.Ref{Page: 0, Off: uint16(i % 8), Write: i%3 == 0})
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{0: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.RemoteFetches != 0 || run.PageFaults != 0 {
		t.Errorf("local workload went remote: %s", run.Summary())
	}
	if run.LocalFills == 0 {
		t.Error("no local fills recorded")
	}
	if run.L1Hits == 0 {
		t.Error("no L1 hits recorded")
	}
	if run.Refs != 50 {
		t.Errorf("refs = %d, want 50", run.Refs)
	}
}

func TestCCNUMARemoteFlow(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// CPU 2 (node 1) reads a block homed at node 0 three times: first is
	// a page fault + remote fetch, the rest are L1 hits.
	refs := []trace.Ref{
		{Page: 0, Off: 0}, {Page: 0, Off: 0}, {Page: 0, Off: 0},
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.PageFaults != 1 {
		t.Errorf("page faults = %d, want 1", run.PageFaults)
	}
	if run.RemoteFetches != 1 {
		t.Errorf("remote fetches = %d, want 1", run.RemoteFetches)
	}
	if run.L1Hits != 2 {
		t.Errorf("L1 hits = %d, want 2", run.L1Hits)
	}
	if run.Refetches != 0 {
		t.Errorf("refetches = %d, want 0 (cold misses only)", run.Refetches)
	}
	// Execution time covers the trap plus the remote fetch.
	min := m.costs.SoftTrap + m.costs.RemoteFetch
	if run.ExecCycles < min {
		t.Errorf("exec = %d, want >= %d", run.ExecCycles, min)
	}
}

func TestBlockCacheServesAfterL1Eviction(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// Node 1 reads block (1,0)... wait: page 1 is homed at node 1; use
	// page 0 (home node 0). Read block 0, then walk 16 conflicting blocks
	// to evict it from the 16-line L1, then re-read: the block cache
	// (8 blocks, holding block 0) should serve without a remote fetch...
	// but 16 distinct blocks also churn the block cache. Instead, use a
	// block cache-sized working set: read blocks 0..7 of page 0, then
	// conflicting L1 sets via pages 2,4 blocks that map to the same L1
	// lines but different BC frames is impossible with a direct-mapped BC
	// of 8 frames. Keep it simple: refetch detection is the subject of
	// the next test; here just verify a BC hit happens when the same
	// block is re-read by the *other* CPU of the node (cold L1, warm BC,
	// clean data so no cache-to-cache supply).
	refsA := []trace.Ref{{Page: 0, Off: 3}}
	refsB := []trace.Ref{{Page: 0, Off: 3, Gap: 60000}}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refsA, 3: refsB}))
	if err != nil {
		t.Fatal(err)
	}
	if run.RemoteFetches != 1 {
		t.Errorf("remote fetches = %d, want 1", run.RemoteFetches)
	}
	if run.BlockCacheHits != 1 {
		t.Errorf("block cache hits = %d, want 1", run.BlockCacheHits)
	}
}

func TestRefetchDetection(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// Node 1's L1 has 16 lines and its BC 8 frames. Sweeping 32 remote
	// blocks (pages 0,2,4,6 = 8 blocks each) repeatedly forces capacity
	// refetches after the first pass.
	var sweep []trace.Ref
	for pass := 0; pass < 3; pass++ {
		for _, page := range []addr.PageNum{0, 2, 4, 6} {
			for off := 0; off < 8; off++ {
				sweep = append(sweep, trace.Ref{Page: page, Off: uint16(off)})
			}
		}
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: sweep}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Refetches == 0 {
		t.Fatalf("sweep produced no refetches: %s", run.Summary())
	}
	// Passes 2 and 3 are almost all refetches: 64 misses, minus any BC
	// hits. Cold pass: 32 fetches, 0 refetches.
	if run.Refetches < 32 {
		t.Errorf("refetches = %d, want >= 32 (two warm passes)", run.Refetches)
	}
	if got := len(run.RefetchByPage); got != 4 {
		t.Errorf("refetching (node,page) pairs = %d, want 4", got)
	}
}

func TestSCOMAPageCacheHitsAfterCold(t *testing.T) {
	m := newTiny(t, config.SCOMA)
	// Node 1 sweeps 3 remote pages (24 blocks) twice. The 24 blocks
	// conflict in the 16-line L1 (page-cache frames give contiguous local
	// addresses), but the 4-frame page cache holds all 3 pages, so second
	// pass misses are page-cache hits with no remote traffic.
	var refs []trace.Ref
	for pass := 0; pass < 2; pass++ {
		for _, page := range []addr.PageNum{0, 2, 4} {
			for off := 0; off < 8; off++ {
				refs = append(refs, trace.Ref{Page: page, Off: uint16(off)})
			}
		}
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.RemoteFetches != 24 {
		t.Errorf("remote fetches = %d, want 24 (cold only)", run.RemoteFetches)
	}
	if run.Allocations != 3 || run.Replacements != 0 {
		t.Errorf("alloc/repl = %d/%d, want 3/0", run.Allocations, run.Replacements)
	}
	if run.PageCacheHits == 0 {
		t.Error("second pass produced no page cache hits")
	}
}

func TestSCOMAThrashesWhenOverCommitted(t *testing.T) {
	m := newTiny(t, config.SCOMA)
	// 6 remote pages into a 4-frame page cache, swept twice in order:
	// LRM evicts exactly the page about to be needed (sequential thrash).
	var refs []trace.Ref
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < 6; p++ {
			refs = append(refs, trace.Ref{Page: addr.PageNum(2 * p), Off: 0})
		}
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Replacements == 0 {
		t.Fatalf("over-committed page cache did not replace: %s", run.Summary())
	}
	if run.PageFaults < 8 {
		t.Errorf("page faults = %d, want >= 8 (6 cold + thrash)", run.PageFaults)
	}
}

func TestRNUMARelocation(t *testing.T) {
	m := newTiny(t, config.RNUMA)
	// Node 1 sweeps 32 remote blocks (4 pages) repeatedly. The 2-block
	// R-NUMA block cache forces refetches; at threshold 4 each page
	// relocates to the page cache (4 frames hold all 4 pages), after
	// which passes hit locally.
	var refs []trace.Ref
	for pass := 0; pass < 12; pass++ {
		for _, page := range []addr.PageNum{0, 2, 4, 6} {
			for off := 0; off < 8; off++ {
				refs = append(refs, trace.Ref{Page: page, Off: uint16(off)})
			}
		}
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Relocations != 4 {
		t.Errorf("relocations = %d, want 4 (each reuse page)", run.Relocations)
	}
	if run.Replacements != 0 {
		t.Errorf("replacements = %d, want 0 (everything fits)", run.Replacements)
	}
	if run.PageCacheHits == 0 {
		t.Error("relocated pages never hit the page cache")
	}
	// After relocation the steady state is local: remote fetches must be
	// far fewer than references.
	if run.RemoteFetches > run.Refs/2 {
		t.Errorf("remote fetches = %d of %d refs; relocation ineffective", run.RemoteFetches, run.Refs)
	}
}

func TestRNUMABouncesWhenPageCacheTooSmall(t *testing.T) {
	m := newTiny(t, config.RNUMA)
	// 6 reuse pages, 4 frames: relocated pages evict each other and
	// bounce back to CC-NUMA (paper Section 5.2: fmm/radix behavior).
	var refs []trace.Ref
	for pass := 0; pass < 30; pass++ {
		for p := 0; p < 6; p++ {
			for off := 0; off < 8; off++ {
				refs = append(refs, trace.Ref{Page: addr.PageNum(2 * p), Off: uint16(off)})
			}
		}
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Relocations <= 6 {
		t.Errorf("relocations = %d, want > 6 (bouncing)", run.Relocations)
	}
	if run.Replacements == 0 {
		t.Error("no replacements despite over-committed page cache")
	}
	// The counter reset on unmap damps the bounce: replacements happen at
	// most once per T refetches, so refetches dominate relocations.
	if run.Refetches < run.Relocations {
		t.Errorf("refetches (%d) < relocations (%d): threshold damping broken",
			run.Refetches, run.Relocations)
	}
}

func TestCoherenceMissesAreNotRefetches(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.RNUMA} {
		m := newTiny(t, p)
		// Producer (node 0, CPU 0) writes block (0,0); consumer (node 1,
		// CPU 2) reads it. Interleaved by gaps. The consumer's misses are
		// invalidation misses, never refetches.
		var prod, cons []trace.Ref
		for i := 0; i < 20; i++ {
			prod = append(prod, trace.Ref{Page: 0, Off: 0, Write: true, Gap: 5000})
			cons = append(cons, trace.Ref{Page: 0, Off: 0, Gap: 5000})
		}
		run, err := m.Run(streams4(map[int][]trace.Ref{0: prod, 2: cons}))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if run.Refetches != 0 {
			t.Errorf("%v: producer-consumer traffic counted %d refetches", p, run.Refetches)
		}
		if p == config.RNUMA && run.Relocations != 0 {
			t.Errorf("%v: communication page relocated", p)
		}
	}
}

func TestWritePropagatesToReader(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// Node 0 writes; node 1 reads later. Verification (enabled in
	// newTiny) would fail if the reader saw a stale version.
	prod := []trace.Ref{{Page: 0, Off: 1, Write: true}}
	cons := []trace.Ref{{Page: 0, Off: 1, Gap: 50000}}
	run, err := m.Run(streams4(map[int][]trace.Ref{0: prod, 2: cons}))
	if err != nil {
		t.Fatal(err)
	}
	if run.ThreeHopXfers == 0 {
		t.Error("dirty data should have been recalled/forwarded from the writer")
	}
}

func TestIdealMachineNeverRefetches(t *testing.T) {
	sys := tinySys(config.CCNUMA)
	sys.BlockCacheBytes = config.InfiniteBlockCache
	m, err := New(sys, WithHomes(evenOddHomes), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	var refs []trace.Ref
	for pass := 0; pass < 5; pass++ {
		for p := 0; p < 8; p++ {
			for off := 0; off < 8; off++ {
				refs = append(refs, trace.Ref{Page: addr.PageNum(2 * p), Off: uint16(off)})
			}
		}
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Refetches != 0 {
		t.Errorf("ideal machine refetched %d times", run.Refetches)
	}
	// Exactly one remote fetch per distinct block.
	if run.RemoteFetches != 64 {
		t.Errorf("remote fetches = %d, want 64", run.RemoteFetches)
	}
}

func TestUpgradeNotRefetch(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// Node 1 reads a block then writes it: the write is an upgrade (the
	// node still holds the data), not a refetch.
	refs := []trace.Ref{
		{Page: 0, Off: 0},
		{Page: 0, Off: 0, Write: true},
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Refetches != 0 {
		t.Errorf("upgrade counted as refetch")
	}
	if run.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", run.Upgrades)
	}
	if run.RemoteFetches != 1 {
		t.Errorf("remote fetches = %d, want 1 (the initial read)", run.RemoteFetches)
	}
}

func TestFirstTouchHoming(t *testing.T) {
	sys := tinySys(config.CCNUMA)
	sys.FirstTouch = true
	m, err := New(sys, WithVerify()) // no explicit homes
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 touches page 4 first: it becomes home, so a later sweep by
	// node 1 is all local.
	refs := make([]trace.Ref, 0, 16)
	for off := 0; off < 8; off++ {
		refs = append(refs, trace.Ref{Page: 4, Off: uint16(off)})
	}
	refs = append(refs, refs...)
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.RemoteFetches != 0 {
		t.Errorf("first-touch page still fetched remotely %d times", run.RemoteFetches)
	}
	if got := m.HomeOf(4, 0); got != 1 {
		t.Errorf("home of page 4 = node %d, want 1 (first toucher)", got)
	}
}

func TestRunStreamCountMismatch(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	if _, err := m.Run([]trace.Stream{trace.Empty()}); err == nil {
		t.Error("mismatched stream count accepted")
	}
}

func TestExecIsMaxOverCPUs(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// CPU 0 runs a long local loop; CPU 3 a short one. Exec time is
	// dominated by CPU 0.
	long := make([]trace.Ref, 1000)
	for i := range long {
		long[i] = trace.Ref{Page: 0, Off: uint16(i % 8), Gap: 100}
	}
	short := []trace.Ref{{Page: 1, Off: 0}}
	run, err := m.Run(streams4(map[int][]trace.Ref{0: long, 3: short}))
	if err != nil {
		t.Fatal(err)
	}
	if run.ExecCycles < 100*1000 {
		t.Errorf("exec = %d, want >= %d (the long CPU)", run.ExecCycles, 100*1000)
	}
}
