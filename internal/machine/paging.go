package machine

import (
	"fmt"

	"rnuma/internal/addr"
	"rnuma/internal/blockcache"
	"rnuma/internal/cache"
	"rnuma/internal/config"
	"rnuma/internal/node"
	"rnuma/internal/osmodel"
	"rnuma/internal/pagecache"
)

// pageFault maps an unmapped remote page. CC-NUMA and R-NUMA map the page
// CC-NUMA with a soft trap (paper Figures 2b/4b); S-COMA allocates a
// page-cache frame, replacing a victim if none is free (Figure 3b).
func (m *Machine) pageFault(nd *node.Node, now int64, page addr.PageNum) int64 {
	m.run.PageFaults++
	switch nd.RAD.Protocol {
	case config.CCNUMA, config.RNUMA:
		nd.PT.MapCC(page)
		return m.costs.SoftTrap
	case config.SCOMA:
		return m.scomaAllocate(nd, now, page)
	}
	panic("machine: unknown protocol")
}

// scomaAllocate installs an S-COMA mapping for the page, evicting the
// least-recently-missed victim if the page cache is full. The cost follows
// Table 2: trap + TLB shootdown + bookkeeping + per-flushed-block work.
func (m *Machine) scomaAllocate(nd *node.Node, now int64, page addr.PageNum) int64 {
	pc := nd.RAD.PageCache
	flushed := 0
	if pc.FreeFrames() == 0 {
		flushed = m.replaceVictim(nd, now)
	}
	frame := pc.Allocate(page, now)
	nd.PT.MapSCOMA(page, frame)
	m.markSCOMA(page)
	m.run.Allocations++
	m.run.TLBShootdowns++
	m.run.FlushedBlocks += int64(flushed)
	cost := m.costs.PageOpCost(flushed)
	// The flush burst occupies the network interface without blocking
	// progress beyond the page operation itself.
	nd.NI.Hold(now, int64(flushed)*4)
	return cost
}

// replaceVictim evicts the LRM page from the page cache, flushing its
// blocks home, and returns how many blocks were flushed.
func (m *Machine) replaceVictim(nd *node.Node, now int64) int {
	pc := nd.RAD.PageCache
	vidx, ok := pc.PickVictim()
	if !ok {
		panic("machine: page cache full but no victim")
	}
	victim := pc.FrameAt(vidx).Page
	flushed := m.flushSCOMAPage(nd, victim, vidx)
	pc.Evict(vidx)
	nd.PT.Unmap(victim)
	m.unmarkSCOMA(victim)
	if nd.RAD.Reactive() {
		// A future remapping starts with a fresh counter (this is what
		// makes pages "bounce" slowly rather than thrash: a replaced page
		// must earn T new refetches before it relocates again).
		nd.RAD.Counters.Reset(victim)
	}
	m.run.Replacements++
	m.perNodeR[nd.ID]++
	return flushed
}

// flushSCOMAPage writes a page-cache frame's dirty blocks back to the home
// node and invalidates the node's L1 copies (the TLB shootdown destroys
// the local translation). Read-only blocks are dropped silently — the
// protocol is non-notifying, so the directory keeps the node in the sharer
// set and a later fetch counts as a refetch, per Section 3.1. It returns
// the number of blocks written home (the flush cost driver).
func (m *Machine) flushSCOMAPage(nd *node.Node, page addr.PageNum, frame int) int {
	pc := nd.RAD.PageCache
	f := pc.FrameAt(frame)
	flushed := 0
	for off := 0; off < m.bpp; off++ {
		if f.Tags[off] == pagecache.TagInvalid {
			continue
		}
		b := m.g.BlockOf(page, off)
		idx := m.l1Index(nd, page, b)
		newest := f.Versions[off]
		dirty := f.Dirty[off]
		for _, l1 := range nd.L1s {
			if st, ver := l1.Probe(idx, b); st.Valid() {
				if st.Dirty() {
					newest, dirty = ver, true
				}
				l1.Invalidate(idx, b)
			}
		}
		if f.Tags[off] == pagecache.TagReadWrite {
			// The node owned the block: write it back; the directory
			// remembers the voluntary drop for refetch detection.
			m.dir.WritebackVoluntary(b, nd.ID, newest)
			m.run.WritebacksHome++
			flushed++
			_ = dirty
		} else {
			m.dir.DropShared(b, nd.ID)
		}
	}
	return flushed
}

// relocate moves a CC-NUMA page into the S-COMA page cache after its
// refetch counter crossed the threshold (paper Figure 4b): flush the
// node's cached blocks of the page, unmap, allocate a frame (replacing a
// victim if needed), and map S-COMA. Only the blocks the node actually has
// cached are replicated into the frame, which is why relocation is cheap
// (Section 5.1).
func (m *Machine) relocate(nd *node.Node, now int64, page addr.PageNum) int64 {
	pc := nd.RAD.PageCache
	var lat int64
	if pc.FreeFrames() == 0 {
		flushed := m.replaceVictim(nd, now)
		m.run.FlushedBlocks += int64(flushed)
		lat += m.costs.PageOpCost(flushed)
	}

	// Gather the node's cached blocks of this page: block cache entries
	// plus any L1 lines (which may be newer). The merge table and gather
	// buffers are machine-owned scratch so this path stays allocation-free.
	if len(m.relocMoved) < m.bpp {
		m.relocMoved = make([]relocMoved, m.bpp)
	}
	m.relocUsed = m.relocUsed[:0]
	m.bcScratch = nd.RAD.BlockCache.AppendPageEntries(m.g, page, m.bcScratch[:0])
	for _, e := range m.bcScratch {
		t := pagecache.TagReadOnly
		if e.State == blockcache.ReadWrite {
			t = pagecache.TagReadWrite
		}
		off := m.g.OffsetOf(e.Block)
		m.relocMoved[off] = relocMoved{present: true, tag: t, dirty: e.Dirty, ver: e.Version}
		m.relocUsed = append(m.relocUsed, off)
	}
	for _, l1 := range nd.L1s {
		m.l1Scratch = l1.AppendFindPage(m.g, page, m.l1Scratch[:0])
		for _, ln := range m.l1Scratch {
			off := m.g.OffsetOf(ln.Block)
			mv := &m.relocMoved[off]
			if !mv.present {
				// L1-only copy (read-only block whose block-cache entry
				// was evicted silently).
				*mv = relocMoved{present: true, tag: pagecache.TagReadOnly, ver: ln.Version}
				m.relocUsed = append(m.relocUsed, off)
			}
			if ln.State.Dirty() {
				mv.tag, mv.dirty, mv.ver = pagecache.TagReadWrite, true, ln.Version
			}
		}
	}

	frame := pc.Allocate(page, now)
	for _, off := range m.relocUsed {
		mv := &m.relocMoved[off]
		pc.SetBlock(frame, off, mv.tag, mv.dirty, mv.ver)
		mv.present = false
	}
	nd.RAD.BlockCache.InvalidatePage(m.g, page)
	for _, l1 := range nd.L1s {
		l1.InvalidatePage(m.g, page)
	}
	nd.PT.Unmap(page)
	nd.PT.MapSCOMA(page, frame)
	m.markSCOMA(page)
	nd.RAD.Counters.Reset(page)

	m.run.Relocations++
	m.run.TLBShootdowns++
	lat += m.costs.PageOpCost(len(m.relocUsed))
	return lat
}

// demote tears down an S-COMA mapping whose frame shows a pure
// communication pattern (the DemotionThreshold extension): flush the
// frame, free it, and remap the page CC-NUMA with a fresh refetch counter.
func (m *Machine) demote(nd *node.Node, now int64, page addr.PageNum, frame int) int64 {
	pc := nd.RAD.PageCache
	flushed := m.flushSCOMAPage(nd, page, frame)
	pc.Evict(frame)
	nd.PT.Unmap(page)
	m.unmarkSCOMA(page)
	nd.PT.MapCC(page)
	nd.RAD.Counters.Reset(page)
	m.run.Demotions++
	m.run.TLBShootdowns++
	m.run.FlushedBlocks += int64(flushed)
	_ = now
	return m.costs.PageOpCost(flushed)
}

// l1Install fills an L1 line and handles the displaced victim: dirty
// victims write back into the level below (block cache, page cache, or
// home memory); clean victims drop silently.
func (m *Machine) l1Install(nd *node.Node, c *node.CPU, idx int, b addr.BlockNum, st cache.State, ver uint32) {
	victim, ev := nd.L1s[c.Index].Fill(idx, b, st, ver)
	if ev && victim.State.Dirty() {
		m.l1Writeback(nd, victim)
	}
}

// l1Writeback absorbs a dirty L1 eviction into the node's next level.
func (m *Machine) l1Writeback(nd *node.Node, v cache.Line) {
	page := m.g.PageOf(v.Block)
	home := m.homeAt(page)
	if home == addr.NoNode {
		panic(fmt.Sprintf("machine: writeback for untouched page %d", page))
	}
	if home == nd.ID {
		// Home-local data: the memory array absorbs it. The directory's
		// owner state for the home node is unaffected; the home version
		// is now the freshest.
		m.dir.SetHomeVersion(v.Block, v.Version)
		return
	}
	mp := nd.PT.Lookup(page)
	switch mp.Kind {
	case osmodel.MappedCC:
		// Inclusion for read-write blocks guarantees the block cache
		// still holds a frame for this block.
		if !nd.RAD.BlockCache.Update(v.Block, blockcache.ReadWrite, true, v.Version) {
			if m.verify && m.verifyErr == nil {
				m.verifyErr = fmt.Errorf("machine: read-write inclusion violated for block %d", v.Block)
			}
			m.dir.SetHomeVersion(v.Block, v.Version)
			m.run.WritebacksHome++
		}
	case osmodel.MappedSCOMA:
		nd.RAD.PageCache.SetBlock(mp.Frame, m.g.OffsetOf(v.Block), pagecache.TagReadWrite, true, v.Version)
	default:
		// The page was unmapped while this CPU still cached data; the
		// flush should have invalidated the line.
		if m.verify && m.verifyErr == nil {
			m.verifyErr = fmt.Errorf("machine: dirty L1 line for unmapped page %d", page)
		}
		m.dir.SetHomeVersion(v.Block, v.Version)
	}
}

// bcEvict handles a block-cache eviction: read-write victims write back to
// the home (a voluntary writeback, arming refetch detection) and must
// invalidate L1 copies to preserve inclusion; read-only victims drop
// silently and L1 copies survive (no inclusion for read-only blocks).
func (m *Machine) bcEvict(nd *node.Node, now int64, victim blockcache.Entry) {
	if victim.State != blockcache.ReadWrite {
		m.dir.DropShared(victim.Block, nd.ID)
		return
	}
	page := m.g.PageOf(victim.Block)
	idx := m.l1Index(nd, page, victim.Block)
	newest := victim.Version
	for _, l1 := range nd.L1s {
		if st, ver := l1.Probe(idx, victim.Block); st.Valid() {
			if st.Dirty() {
				newest = ver
			}
			l1.Invalidate(idx, victim.Block)
		}
	}
	m.dir.WritebackVoluntary(victim.Block, nd.ID, newest)
	m.run.WritebacksHome++
	nd.NI.Hold(now, m.costs.NIOccupancy)
}
