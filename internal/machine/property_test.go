package machine

import (
	"math/rand"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/stats"
	"rnuma/internal/trace"
)

// randomStreams builds per-CPU random streams over a small shared page
// set, exercising sharing, invalidations, upgrades, evictions, page
// replacement, and relocation all at once.
func randomStreams(seed int64, cpus, pages, refsPerCPU int, writeFrac float64) []trace.Stream {
	out := make([]trace.Stream, cpus)
	for c := 0; c < cpus; c++ {
		rng := rand.New(rand.NewSource(seed + int64(c)*7919))
		refs := make([]trace.Ref, refsPerCPU)
		for i := range refs {
			refs[i] = trace.Ref{
				Page:  addr.PageNum(rng.Intn(pages)),
				Off:   uint16(rng.Intn(8)),
				Write: rng.Float64() < writeFrac,
				Gap:   uint16(rng.Intn(50)),
			}
		}
		out[c] = trace.FromSlice(refs)
	}
	return out
}

// TestSequentialConsistencyUnderRandomTraffic is the heavyweight protocol
// property test: with verification on, every read must observe the version
// of the last write processed before it, across all three protocols and
// the ideal baseline, under adversarial random sharing.
func TestSequentialConsistencyUnderRandomTraffic(t *testing.T) {
	protocols := []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA}
	for _, p := range protocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 12; seed++ {
				m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify())
				if err != nil {
					t.Fatal(err)
				}
				// 10 pages with 8 blocks each, 35% writes: heavy sharing.
				streams := randomStreams(seed, 4, 10, 1500, 0.35)
				if _, err := m.Run(streams); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
	t.Run("ideal", func(t *testing.T) {
		sys := tinySys(config.CCNUMA)
		sys.BlockCacheBytes = config.InfiniteBlockCache
		for seed := int64(1); seed <= 6; seed++ {
			m, err := New(sys, WithHomes(evenOddHomes), WithVerify())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(randomStreams(seed, 4, 10, 1500, 0.35)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	})
}

// TestSequentialConsistencyBaseMachine runs the paper's full 8x4 base
// machine (all three protocols) under random traffic with verification.
func TestSequentialConsistencyBaseMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("full machine property test")
	}
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		sys := config.Base(p)
		m, err := New(sys, WithHomes(func(pg addr.PageNum) addr.NodeID {
			return addr.NodeID(pg % 8)
		}), WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		streams := randomStreams(99, sys.TotalCPUs(), 120, 2000, 0.3)
		if _, err := m.Run(streams); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

// TestDeterminism: identical seeds produce identical executions.
func TestDeterminism(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		var first *stats.Run
		for rep := 0; rep < 2; rep++ {
			m, err := New(tinySys(p), WithHomes(evenOddHomes))
			if err != nil {
				t.Fatal(err)
			}
			run, err := m.Run(randomStreams(77, 4, 8, 2000, 0.3))
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 {
				first = run
				continue
			}
			if run.ExecCycles != first.ExecCycles || run.Summary() != first.Summary() {
				t.Errorf("%v nondeterministic:\n  %s\n  %s", p, first.Summary(), run.Summary())
			}
		}
	}
}

// TestConservationOfReferences: every issued reference is serviced by
// exactly one of the accounting categories.
func TestConservationOfReferences(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		run, err := m.Run(randomStreams(5, 4, 10, 3000, 0.3))
		if err != nil {
			t.Fatal(err)
		}
		serviced := run.L1Hits + run.LocalFills + run.C2CTransfers +
			run.BlockCacheHits + run.PageCacheHits + run.RemoteFetches + run.Upgrades
		if serviced != run.Refs {
			t.Errorf("%v: %d refs but %d servicings (%s)", p, run.Refs, serviced, run.Summary())
		}
	}
}

// TestRefetchesAreSubsetOfRemoteFetches and other cross-counter sanity.
func TestCounterSanity(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		run, err := m.Run(randomStreams(11, 4, 12, 2500, 0.4))
		if err != nil {
			t.Fatal(err)
		}
		if run.Refetches > run.RemoteFetches {
			t.Errorf("%v: refetches (%d) exceed remote fetches (%d)", p, run.Refetches, run.RemoteFetches)
		}
		var sum int64
		for _, c := range run.RefetchByPage {
			sum += c
		}
		if sum != run.Refetches {
			t.Errorf("%v: per-page refetches (%d) != total (%d)", p, sum, run.Refetches)
		}
		if run.RWRefetches > run.Refetches {
			t.Errorf("%v: RW refetches (%d) exceed refetches (%d)", p, run.RWRefetches, run.Refetches)
		}
		switch p {
		case config.CCNUMA:
			if run.Allocations != 0 || run.Replacements != 0 || run.Relocations != 0 {
				t.Errorf("CC-NUMA performed page cache operations: %s", run.Summary())
			}
		case config.SCOMA:
			if run.Relocations != 0 {
				t.Errorf("S-COMA relocated pages: %s", run.Summary())
			}
			if run.BlockCacheHits != 0 {
				t.Errorf("S-COMA hit a block cache: %s", run.Summary())
			}
		case config.RNUMA:
			// R-NUMA maps faulting pages CC-NUMA first (Figure 4b); page
			// cache frames are only ever claimed by relocation, so the
			// S-COMA-style fault-allocation counter stays zero.
			if run.Allocations != 0 {
				t.Errorf("R-NUMA allocated on a fault: %s", run.Summary())
			}
			if run.Replacements > 0 && run.Relocations == 0 {
				t.Errorf("R-NUMA replaced without ever relocating: %s", run.Summary())
			}
		}
		var repl int64
		for _, r := range run.PerNodeReplacements {
			repl += r
		}
		if repl != run.Replacements {
			t.Errorf("%v: per-node replacements (%d) != total (%d)", p, repl, run.Replacements)
		}
	}
}

// TestSingleWriterReadBack: a single CPU writing then reading its own
// blocks always observes its own versions (no sharing involved), across
// page-cache replacement churn.
func TestSingleWriterReadBack(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		var refs []trace.Ref
		// Walk 8 remote pages (more than the 4-frame page cache) writing
		// and reading back.
		for i := 0; i < 4000; i++ {
			page := addr.PageNum(2 * rng.Intn(8))
			off := uint16(rng.Intn(8))
			refs = append(refs,
				trace.Ref{Page: page, Off: off, Write: true},
				trace.Ref{Page: page, Off: off})
		}
		if _, err := m.Run(streams4(map[int][]trace.Ref{2: refs})); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

// TestMigratoryShairing: a block bounces exclusively between nodes; each
// reader-writer must observe the predecessor's version.
func TestMigratorySharing(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		// Node 0 and node 1 alternately read-modify-write the same block,
		// spaced by gaps so ownership migrates.
		var a, b []trace.Ref
		for i := 0; i < 50; i++ {
			a = append(a, trace.Ref{Page: 0, Off: 0, Gap: 9000}, trace.Ref{Page: 0, Off: 0, Write: true})
			b = append(b, trace.Ref{Page: 0, Off: 0, Gap: 9100}, trace.Ref{Page: 0, Off: 0, Write: true})
		}
		if _, err := m.Run(streams4(map[int][]trace.Ref{0: a, 2: b})); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

// TestHighContentionAllWrite: worst-case invalidation storm.
func TestHighContentionAllWrite(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		m, err := New(tinySys(p), WithHomes(evenOddHomes), WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(randomStreams(21, 4, 3, 2000, 1.0)); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}
