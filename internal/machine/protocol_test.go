package machine

import (
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/trace"
)

// TestRelocationPreservesData: a node writes blocks of a remote page,
// triggers relocation, and reads them back; the relocated page cache must
// supply the written versions (verification would fail otherwise), and the
// reads must be local (no remote fetches after relocation).
func TestRelocationPreservesData(t *testing.T) {
	m := newTiny(t, config.RNUMA)
	var refs []trace.Ref
	// Writes so the blocks are dirty, then enough conflict sweeps over
	// pages 0,2,4,6 (32 blocks vs 2-block block cache) to cross T=4.
	for off := 0; off < 8; off++ {
		refs = append(refs, trace.Ref{Page: 0, Off: uint16(off), Write: true})
	}
	for pass := 0; pass < 6; pass++ {
		for _, page := range []addr.PageNum{0, 2, 4, 6} {
			for off := 0; off < 8; off++ {
				refs = append(refs, trace.Ref{Page: page, Off: uint16(off)})
			}
		}
	}
	// Final read-back of the written page.
	for off := 0; off < 8; off++ {
		refs = append(refs, trace.Ref{Page: 0, Off: uint16(off)})
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err) // verification would catch lost writes
	}
	if run.Relocations == 0 {
		t.Fatal("no relocation happened; test premise broken")
	}
	if run.PageCacheHits == 0 {
		t.Error("relocated page never hit the page cache")
	}
}

// TestSCOMAFrameIndexingAvoidsConflicts: the paper says S-COMA's page
// cache is fully associative because pages map anywhere in it. Two pages
// whose global addresses conflict in the direct-mapped L1 stop conflicting
// once S-COMA maps them to adjacent frames — the CPU indexes its cache
// with local physical addresses.
func TestSCOMAFrameIndexingAvoidsConflicts(t *testing.T) {
	// tiny L1: 16 lines; pages 0 and 2 have blocks 0..7 and 16..23, whose
	// global addresses collide in the L1 (16+k & 15 == k).
	ccRefs := func() []trace.Ref {
		var refs []trace.Ref
		for pass := 0; pass < 10; pass++ {
			for _, page := range []addr.PageNum{0, 2} {
				for off := 0; off < 8; off++ {
					refs = append(refs, trace.Ref{Page: page, Off: uint16(off)})
				}
			}
		}
		return refs
	}

	mCC := newTiny(t, config.CCNUMA)
	ccRun, err := mCC.Run(streams4(map[int][]trace.Ref{2: ccRefs()}))
	if err != nil {
		t.Fatal(err)
	}
	mSC := newTiny(t, config.SCOMA)
	scRun, err := mSC.Run(streams4(map[int][]trace.Ref{2: ccRefs()}))
	if err != nil {
		t.Fatal(err)
	}
	// Under CC-NUMA the two pages' blocks alias in the L1, so later
	// passes keep missing; under S-COMA they land in distinct frames and
	// the L1 holds both pages: almost everything L1-hits after the first
	// pass.
	if scRun.L1Hits <= ccRun.L1Hits {
		t.Errorf("S-COMA L1 hits (%d) should exceed CC-NUMA's (%d): frame indexing removes the alias",
			scRun.L1Hits, ccRun.L1Hits)
	}
}

// TestBlockCacheInclusionRW: evicting a read-write block from the block
// cache must invalidate processor-cache copies; a subsequent access goes
// remote (and is a refetch), never serving stale L1 data.
func TestBlockCacheInclusionRW(t *testing.T) {
	m := newTiny(t, config.RNUMA) // 2-frame block cache forces eviction
	refs := []trace.Ref{
		{Page: 0, Off: 0, Write: true}, // RW block in BC frame 0 (block 0)
		{Page: 0, Off: 2, Write: true}, // frame 0 conflict (block 2 & 1 = 0)
		{Page: 0, Off: 0},              // must refetch: L1 copy was invalidated
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.WritebacksHome == 0 {
		t.Error("RW eviction did not write back home")
	}
	if run.Refetches == 0 {
		t.Error("re-access after RW eviction was not a refetch")
	}
	if run.L1Hits != 0 {
		t.Error("stale L1 data served after inclusion eviction")
	}
}

// TestBlockCacheNoInclusionRO: read-only blocks are dropped from the block
// cache silently; processor-cache copies survive and keep hitting.
func TestBlockCacheNoInclusionRO(t *testing.T) {
	m := newTiny(t, config.RNUMA)
	refs := []trace.Ref{
		{Page: 0, Off: 0}, // RO block 0 -> BC frame 0
		{Page: 0, Off: 2}, // conflicts in BC; evicts block 0 silently
		{Page: 0, Off: 0}, // L1 still holds block 0: hit
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.L1Hits != 1 {
		t.Errorf("L1 hits = %d, want 1: RO eviction must not invalidate the L1", run.L1Hits)
	}
	if run.WritebacksHome != 0 {
		t.Error("clean RO eviction wrote back")
	}
}

// TestSoftCostsSlowPageMachinery: the SOFT variant (Figure 9) must slow
// page-fault-heavy runs and leave block-level costs alone.
func TestSoftCostsSlowPageMachinery(t *testing.T) {
	build := func(costs config.Costs) *stats_runtime {
		sys := tinySys(config.SCOMA)
		sys.Costs = costs
		m, err := New(sys, WithHomes(evenOddHomes), WithVerify())
		if err != nil {
			t.Fatal(err)
		}
		var refs []trace.Ref
		// Thrash the 4-frame page cache: 6 pages touched round-robin.
		for pass := 0; pass < 10; pass++ {
			for p := 0; p < 6; p++ {
				refs = append(refs, trace.Ref{Page: addr.PageNum(2 * p), Off: 0})
			}
		}
		run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
		if err != nil {
			t.Fatal(err)
		}
		return &stats_runtime{run.ExecCycles, run.Replacements}
	}
	base := build(config.BaseCosts())
	soft := build(config.SoftCosts())
	if soft.repl != base.repl {
		t.Fatalf("replacements differ (%d vs %d); cost change must not alter behavior", soft.repl, base.repl)
	}
	if soft.exec <= base.exec {
		t.Errorf("SOFT run not slower: %d vs %d", soft.exec, base.exec)
	}
}

type stats_runtime struct {
	exec int64
	repl int64
}

// TestNaiveCountingRelocatesCommunicationPages: the ablation switch makes
// coherence misses feed the counters, so a pure producer-consumer page
// relocates (pointlessly); with the paper's refetch-only policy it never
// does.
func TestNaiveCountingRelocatesCommunicationPages(t *testing.T) {
	build := func(opts ...Option) int64 {
		sys := tinySys(config.RNUMA) // T=4
		opts = append(opts, WithHomes(evenOddHomes), WithVerify())
		m, err := New(sys, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var prod, cons []trace.Ref
		for i := 0; i < 20; i++ {
			prod = append(prod, trace.Ref{Page: 0, Off: 0, Write: true, Gap: 5000})
			cons = append(cons, trace.Ref{Page: 0, Off: 0, Gap: 5000})
		}
		run, err := m.Run(streams4(map[int][]trace.Ref{0: prod, 2: cons}))
		if err != nil {
			t.Fatal(err)
		}
		return run.Relocations
	}
	if n := build(); n != 0 {
		t.Errorf("refetch-only counting relocated %d communication pages", n)
	}
	if n := build(WithNaiveCounting()); n == 0 {
		t.Error("naive counting failed to relocate the communication page")
	}
}

// TestThreeHopTransfer: a read of a block another node holds dirty must
// forward from the owner and leave both nodes sharers.
func TestThreeHopTransfer(t *testing.T) {
	m := newTiny(t, config.CCNUMA)
	// Node 1 (cpu 2) writes block (0,0) homed at node 0; later node 0
	// (cpu 0) reads it: a dirty recall. Then node 1 reads it again —
	// still valid in its caches, no traffic.
	writer := []trace.Ref{{Page: 0, Off: 0, Write: true}}
	reader := []trace.Ref{{Page: 0, Off: 0, Gap: 50000}}
	run, err := m.Run(streams4(map[int][]trace.Ref{0: reader, 2: writer}))
	if err != nil {
		t.Fatal(err)
	}
	if run.ThreeHopXfers == 0 {
		t.Error("no owner forward/recall recorded")
	}
}

// TestBounceDamping: when relocated pages are evicted (page cache too
// small), the refetch counter restarts from zero, so replacements are
// bounded by refetches/T rather than tracking S-COMA's per-touch fault
// rate — the mechanism behind Table 4's tiny replacement percentages.
func TestBounceDamping(t *testing.T) {
	m := newTiny(t, config.RNUMA) // 4 frames, T=4
	var refs []trace.Ref
	for pass := 0; pass < 40; pass++ {
		for p := 0; p < 8; p++ { // 8 reuse pages, 4 frames
			for off := 0; off < 8; off++ {
				refs = append(refs, trace.Ref{Page: addr.PageNum(2 * p), Off: uint16(off)})
			}
		}
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: refs}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Replacements == 0 || run.Relocations == 0 {
		t.Fatalf("no bouncing: %s", run.Summary())
	}
	T := int64(m.sys.Threshold)
	bound := run.Refetches/T + int64(run.RemotePages)
	if run.Relocations > bound {
		t.Errorf("relocations (%d) exceed refetches/T + pages (%d): counter reset broken",
			run.Relocations, bound)
	}
}
