package machine

import (
	"rnuma/internal/addr"
	"rnuma/internal/cache"
	"rnuma/internal/node"
	"rnuma/internal/osmodel"
	"rnuma/internal/pagecache"
)

// networkRequest models sending a request message from nd to the home node
// and the home controller picking it up: local NI queueing, the constant
// network latency folded into RemoteFetch by the cost model, and home
// controller queueing. It returns only the *added* queueing delay; the
// base end-to-end time lives in Costs.RemoteFetch.
func (m *Machine) networkRequest(nd, home *node.Node, now int64, dataService bool) int64 {
	niStart := nd.NI.Acquire(now, m.costs.NIOccupancy)
	wait := niStart - now
	arrive := niStart + m.costs.NIOccupancy + m.costs.NetLatency
	occ := m.costs.RADOccupancy
	if dataService {
		occ += m.costs.DRAMAccess // home memory access holds the controller
	}
	ctlStart := home.RAD.Ctl.Acquire(arrive, occ)
	wait += ctlStart - arrive
	return wait
}

// remoteFetch performs the directory transaction for a block fetch from a
// remote home: three-hop forwarding from a dirty owner, invalidation of
// sharers on exclusive requests, refetch detection, and contention at the
// network interfaces and controllers. It returns the added latency, the
// version supplied, and whether the directory classified the request as a
// capacity/conflict refetch.
func (m *Machine) remoteFetch(nd *node.Node, now int64, page addr.PageNum, b addr.BlockNum, write bool) (int64, uint32, bool) {
	home := m.homes[page]
	lat := m.networkRequest(nd, m.nodes[home], now, true)
	lat += m.costs.RemoteFetch

	res := m.dir.Fetch(b, nd.ID, write)
	ver := m.dir.HomeVersion(b)

	if res.FromOwner != addr.NoNode {
		owner := m.nodes[res.FromOwner]
		newest, ok := m.newestAt(owner, page, b)
		if !ok {
			newest = ver
		}
		if write {
			m.invalidateNodeCopies(owner, page, b)
		} else {
			m.downgradeNodeCopies(owner, page, b, newest)
			m.dir.SetHomeVersion(b, newest)
		}
		owner.RAD.Ctl.Hold(now+lat, m.costs.RADOccupancy)
		owner.NI.Hold(now+lat, m.costs.NIOccupancy)
		lat += m.costs.ThreeHopExtra
		m.run.ThreeHopXfers++
		ver = newest
	}

	if write {
		if len(res.Invalidate) > 0 {
			lat += m.applyInvalidations(nd, now+lat, page, b, res.Invalidate)
		}
		m.markWriteShared(page)
	}

	m.run.RemoteFetches++
	if m.probe != nil {
		m.probe.AddTraffic(nd.ID, home)
	}
	return lat, ver, res.Refetch
}

// recallFromOwner pulls the freshest copy of a home-local block back from
// a remote exclusive owner (a two-hop recall): the owner's dirty data is
// written home; on a read the owner downgrades, on a write it is
// invalidated. The latency is a full remote round trip.
func (m *Machine) recallFromOwner(nd *node.Node, now int64, page addr.PageNum, b addr.BlockNum, owner addr.NodeID, write bool) int64 {
	on := m.nodes[owner]
	newest, ok := m.newestAt(on, page, b)
	if !ok {
		newest = m.dir.HomeVersion(b)
	}
	if write {
		m.invalidateNodeCopies(on, page, b)
	} else {
		m.downgradeNodeCopies(on, page, b, newest)
	}
	m.dir.SetHomeVersion(b, newest)
	on.RAD.Ctl.Hold(now, m.costs.RADOccupancy)
	on.NI.Hold(now, m.costs.NIOccupancy)
	m.run.ThreeHopXfers++
	return m.costs.RemoteFetch
}

// applyInvalidations destroys the listed nodes' copies of a block and
// models the ack-collection latency and the occupancy the invalidations
// impose on each target's controller and network interface.
func (m *Machine) applyInvalidations(requester *node.Node, now int64, page addr.PageNum, b addr.BlockNum, targets []addr.NodeID) int64 {
	for _, t := range targets {
		tn := m.nodes[t]
		m.invalidateNodeCopies(tn, page, b)
		tn.RAD.Ctl.Hold(now, m.costs.RADOccupancy)
		tn.NI.Hold(now, m.costs.NIOccupancy)
		m.run.InvalsSent++
	}
	return m.costs.InvalExtra
}

// newestAt returns the freshest version of a block held anywhere in a
// node's hierarchy.
func (m *Machine) newestAt(nd *node.Node, page addr.PageNum, b addr.BlockNum) (uint32, bool) {
	idx := m.l1Index(nd, page, b)
	frame, off := -1, 0
	if mp := nd.PT.Lookup(page); mp.Kind == osmodel.MappedSCOMA {
		frame, off = mp.Frame, m.g.OffsetOf(b)
	}
	return nd.NewestVersion(idx, b, frame, off)
}

// invalidateNodeCopies removes every copy of the block a node holds: all
// L1s, the block cache, and the page-cache tag.
func (m *Machine) invalidateNodeCopies(nd *node.Node, page addr.PageNum, b addr.BlockNum) {
	idx := m.l1Index(nd, page, b)
	for _, l1 := range nd.L1s {
		l1.Invalidate(idx, b)
	}
	if nd.RAD.BlockCache != nil {
		nd.RAD.BlockCache.Invalidate(b)
	}
	if nd.RAD.PageCache != nil {
		if mp := nd.PT.Lookup(page); mp.Kind == osmodel.MappedSCOMA {
			nd.RAD.PageCache.InvalidateBlock(mp.Frame, m.g.OffsetOf(b))
		}
	}
}

// downgradeNodeCopies demotes a node's exclusive copy to read-only after
// its dirty data was pulled home on an inter-node read. Every surviving
// copy is refreshed to the written-back version, since the freshest data
// may have lived in one L1 while the block/page cache held an older copy.
func (m *Machine) downgradeNodeCopies(nd *node.Node, page addr.PageNum, b addr.BlockNum, newest uint32) {
	idx := m.l1Index(nd, page, b)
	for _, l1 := range nd.L1s {
		if st, _ := l1.Probe(idx, b); st.Valid() {
			l1.SetState(idx, b, cache.Shared)
			l1.SetVersion(idx, b, newest)
		}
	}
	if nd.RAD.BlockCache != nil {
		nd.RAD.BlockCache.Downgrade(b, newest)
	}
	if nd.RAD.PageCache != nil {
		if mp := nd.PT.Lookup(page); mp.Kind == osmodel.MappedSCOMA {
			off := m.g.OffsetOf(b)
			if nd.RAD.PageCache.Tag(mp.Frame, off) != pagecache.TagInvalid {
				nd.RAD.PageCache.SetBlock(mp.Frame, off, pagecache.TagReadOnly, false, newest)
			}
		}
	}
}
