package machine

import (
	"bytes"
	"fmt"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/trace"
	"rnuma/internal/tracefile"
)

// TestRetargetedTracePassesInvariants is the transform layer's protocol
// acceptance check: a trace captured on an 8-node machine, retargeted to
// 16 nodes with round-robin re-homing, must drive all three designs
// without tripping the cross-layer invariant checker or the
// version-truth verifier — a retarget produces a trace as coherent as a
// native capture, not merely one that decodes.
func TestRetargetedTracePassesInvariants(t *testing.T) {
	const (
		srcNodes = 8
		dstNodes = 16
		cpus     = 16
		pages    = 16
		perCPU   = 2000
	)
	g := addr.Geometry{BlockShift: 5, PageShift: 8}
	homes := make([]addr.NodeID, pages)
	for p := range homes {
		homes[p] = addr.NodeID(p % srcNodes)
	}
	hdr := tracefile.Header{
		Name:        "retarget-invariants",
		Geometry:    g,
		CPUs:        cpus,
		Nodes:       srcNodes,
		SharedPages: pages,
		Homes:       homes,
	}
	var src bytes.Buffer
	tw, err := tracefile.NewWriter(&src, hdr)
	if err != nil {
		t.Fatal(err)
	}
	streams := randomStreams(27, cpus, pages, perCPU, 0.35)
	for i := 0; i < perCPU; i++ {
		for c, s := range streams {
			r, ok := s.Next()
			if !ok {
				t.Fatalf("cpu %d ended early", c)
			}
			if err := tw.Append(c, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var dst bytes.Buffer
	if _, err := tracefile.Retarget(&dst, bytes.NewReader(src.Bytes()),
		tracefile.RetargetSpec{Nodes: dstNodes, Policy: tracefile.RoundRobin()}); err != nil {
		t.Fatal(err)
	}

	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			replayTraceWithInvariantChecks(t, dst.Bytes(), p, dstNodes, cpus)
		})
	}
}

// replayTraceWithInvariantChecks replays an encoded trace on a tinySys
// machine of the trace's recorded geometry and the given shape, stopping
// every checkEvery references to assert the cross-layer invariants.
func replayTraceWithInvariantChecks(t *testing.T, data []byte, p config.Protocol, wantNodes, wantCPUs int) {
	t.Helper()
	d, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rh := d.Header()
	if rh.Nodes != wantNodes || rh.CPUs != wantCPUs {
		t.Fatalf("retargeted shape %d nodes/%d cpus", rh.Nodes, rh.CPUs)
	}
	sys := tinySys(p)
	sys.Geometry = rh.Geometry
	sys.Nodes, sys.CPUsPerNode = rh.Nodes, rh.CPUs/rh.Nodes
	m, err := New(sys, WithHomes(rh.HomeFunc()), WithVerify(), WithPages(rh.SharedPages))
	if err != nil {
		t.Fatal(err)
	}
	var (
		pulled int64
		prev   counterSnapshot
		failed error
	)
	check := func() {
		if failed != nil {
			return
		}
		now := snapshot(m)
		for _, err := range []error{
			checkCoherence(m),
			checkMappings(m),
			now.monotoneSince(prev),
			now.protocolConstraints(p),
		} {
			if err != nil {
				failed = fmt.Errorf("after %d refs: %w", pulled, err)
				return
			}
		}
		prev = now
	}
	replay := d.Streams()
	for i, s := range replay {
		inner := s
		replay[i] = trace.FuncStream(func() (trace.Ref, bool) {
			pulled++
			if pulled%checkEvery == 0 {
				check()
			}
			return inner.Next()
		})
	}
	if _, err := m.Run(replay); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	check()
	if failed != nil {
		t.Fatal(failed)
	}
}

// TestGeometryRetargetedTracePassesInvariants is the geometry
// transform's protocol acceptance check: a capture re-split onto a
// halved block size must drive all three designs through the invariant
// checker and the version-truth verifier, exactly like a native capture
// of that geometry would.
func TestGeometryRetargetedTracePassesInvariants(t *testing.T) {
	const (
		nodes  = 4
		cpus   = 8
		pages  = 16
		perCPU = 1500
	)
	g := addr.Geometry{BlockShift: 5, PageShift: 8}
	homes := make([]addr.NodeID, pages)
	for p := range homes {
		homes[p] = addr.NodeID(p % nodes)
	}
	hdr := tracefile.Header{
		Name:        "geometry-invariants",
		Geometry:    g,
		CPUs:        cpus,
		Nodes:       nodes,
		SharedPages: pages,
		Homes:       homes,
	}
	var src bytes.Buffer
	tw, err := tracefile.NewWriter(&src, hdr)
	if err != nil {
		t.Fatal(err)
	}
	streams := randomStreams(41, cpus, pages, perCPU, 0.3)
	for i := 0; i < perCPU; i++ {
		for c, s := range streams {
			r, ok := s.Next()
			if !ok {
				t.Fatalf("cpu %d ended early", c)
			}
			if err := tw.Append(c, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var dst bytes.Buffer
	if _, err := tracefile.RetargetGeometry(&dst, bytes.NewReader(src.Bytes()),
		tracefile.GeometrySpec{BlockBytes: 16}); err != nil {
		t.Fatal(err)
	}
	rh, err := tracefile.NewReader(bytes.NewReader(dst.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := rh.Header().Geometry.BlockBytes(); got != 16 {
		t.Fatalf("retargeted block size = %d, want 16", got)
	}

	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			replayTraceWithInvariantChecks(t, dst.Bytes(), p, nodes, cpus)
		})
	}
}
