package machine

import (
	"fmt"

	"rnuma/internal/addr"
	"rnuma/internal/blockcache"
	"rnuma/internal/cache"
	"rnuma/internal/config"
	"rnuma/internal/directory"
	"rnuma/internal/event"
	"rnuma/internal/osmodel"
	"rnuma/internal/pagecache"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/trace"
)

// Snapshot is a machine's complete simulation state at a pause point: a
// run paused with RunUntilRefs/RunUntilCounter can be captured, the
// capture restored into a freshly built machine (possibly under a
// different R-NUMA threshold — see RunUntilCounter for when that is
// sound), and the restored machine resumed with ResumeWith against
// streams seeked to each CPU's Consumed cursor. Every field is exported
// so the tracefile package can serialize snapshots without reaching into
// machine internals.
//
// A snapshot does not capture the reference streams themselves (the
// trace file or generator is the caller's to reopen), nor a WithHomes
// placement function: a fork must be constructed with the same homes
// function as the original, though pages already touched are pinned by
// the captured home map regardless.
type Snapshot struct {
	// Sys is the configuration the snapshot was taken under. Restore
	// accepts it into a machine whose configuration matches up to Name
	// and Threshold.
	Sys           config.System
	NaiveCounting bool

	NextVersion uint32
	CounterHigh uint32

	// Dense per-page machine state. Seen is page-major with a stride of
	// Sys.Nodes.
	Homes       []addr.NodeID
	PageFlags   []uint8
	Seen        []bool
	SCOMAMapped []uint16

	// Directory entry table in creation order (parallel slices).
	DirBlocks  []addr.BlockNum
	DirEntries []directory.Entry

	Nodes []NodeState
	CPUs  []CPUState

	// Run is the pre-finalize statistics accumulator; the dense refetch
	// table and per-node replacement counts are carried separately and
	// materialized into the run when the resumed machine finishes.
	Run           *stats.Run
	RefetchNodes  int
	RefetchCounts []int64
	PerNodeRepl   []int64

	// Probe is the telemetry probe's cursor, present exactly when the
	// machine ran with telemetry. The timeline itself rides on Run; the
	// cursor is what lets a restored machine continue its interval series
	// bit-identically even when the snapshot point falls mid-window (as
	// threshold-sweep fork points generally do).
	Probe *telemetry.ProbeState
}

// NodeState is one node's captured state.
type NodeState struct {
	L1s          []L1State
	Bus, NI, Ctl event.ResourceState

	// Optional RAD components; present exactly when the protocol has them.
	BlockCache *BlockCacheState
	PageCache  *pagecache.State
	Counters   *CountersState

	PT PTState
}

// L1State is one processor cache's captured lines and statistics.
type L1State struct {
	Lines        []cache.Line
	Hits, Misses int64
}

// BlockCacheState is a RAD block cache's captured contents.
type BlockCacheState struct {
	Entries      []blockcache.Entry
	Hits, Misses int64
}

// CountersState is an R-NUMA counter set's captured contents. The
// relocation threshold is deliberately absent: counters evolve
// identically under every threshold until the first crossing, and a fork
// restores the counts into a machine configured with its own threshold.
type CountersState struct {
	Counts           []uint32
	Crossings, Total int64
}

// PTState is one node's captured page table.
type PTState struct {
	Entries []osmodel.Mapping
	Faults  int64
}

// CPUState is one processor's captured engine state. Done/AtBarrier
// encode the CPU's event-queue membership (Done CPUs have left the
// queue, AtBarrier CPUs are parked awaiting release, everything else is
// runnable); Consumed is the stream cursor a forked replay seeks to.
type CPUState struct {
	Clock    int64
	Refs     int64
	Consumed int64
	Finish   int64

	Done       bool
	AtBarrier  bool
	HasPending bool
	Pending    trace.Ref
}

// Snapshot captures the machine's complete state. The machine must be
// started (snapshots are taken at pause points between references) and
// must not have verification enabled (the version-truth table is not
// captured).
func (m *Machine) Snapshot() (*Snapshot, error) {
	if !m.started {
		return nil, fmt.Errorf("machine: Snapshot before Start")
	}
	if m.verify {
		return nil, fmt.Errorf("machine: Snapshot with verification enabled is unsupported")
	}
	if m.attr != nil {
		return nil, fmt.Errorf("machine: Snapshot of an attributed (multi-tenant) run is unsupported")
	}
	s := &Snapshot{
		Sys:           m.sys,
		NaiveCounting: m.naiveCounting,
		NextVersion:   m.nextVersion,
		CounterHigh:   m.counterHigh,
		Homes:         append([]addr.NodeID(nil), m.homes...),
		PageFlags:     append([]uint8(nil), m.pageFlags...),
		Seen:          append([]bool(nil), m.seen...),
		SCOMAMapped:   append([]uint16(nil), m.scomaMapped...),
		Run:           m.run.Clone(),
		PerNodeRepl:   append([]int64(nil), m.perNodeR...),
	}
	s.DirBlocks, s.DirEntries = m.dir.State()
	s.RefetchNodes, s.RefetchCounts = m.refetch.State()
	if m.probe != nil {
		st := m.probe.State()
		s.Probe = &st
	}
	s.Nodes = make([]NodeState, len(m.nodes))
	for i, nd := range m.nodes {
		ns := &s.Nodes[i]
		ns.L1s = make([]L1State, len(nd.L1s))
		for j, l1 := range nd.L1s {
			ns.L1s[j].Lines, ns.L1s[j].Hits, ns.L1s[j].Misses = l1.Snapshot()
		}
		ns.Bus = nd.Bus.State()
		ns.NI = nd.NI.State()
		ns.Ctl = nd.RAD.Ctl.State()
		if bc := nd.RAD.BlockCache; bc != nil {
			st := &BlockCacheState{}
			st.Entries, st.Hits, st.Misses = bc.State()
			ns.BlockCache = st
		}
		if pc := nd.RAD.PageCache; pc != nil {
			st := pc.State()
			ns.PageCache = &st
		}
		if ct := nd.RAD.Counters; ct != nil {
			st := &CountersState{}
			st.Counts, st.Crossings, st.Total = ct.State()
			ns.Counters = st
		}
		ns.PT.Entries, ns.PT.Faults = nd.PT.State()
	}
	s.CPUs = make([]CPUState, len(m.cpus))
	for i, c := range m.cpus {
		s.CPUs[i] = CPUState{
			Clock:      c.Actor.Clock,
			Refs:       c.Refs,
			Consumed:   c.Consumed,
			Finish:     c.Finish,
			Done:       c.Done,
			AtBarrier:  c.AtBarrier,
			HasPending: c.HasPending,
			Pending:    c.Pending,
		}
	}
	return s, nil
}

// compatible reports whether the snapshot's configuration matches the
// machine's. Name is informational and Threshold is the one knob a fork
// legitimately changes (the point of threshold-sweep forking), so both
// are normalized out of the comparison.
func (m *Machine) compatible(s *Snapshot) error {
	a, b := m.sys, s.Sys
	a.Name, b.Name = "", ""
	a.Threshold, b.Threshold = 0, 0
	if a != b {
		return fmt.Errorf("machine: snapshot configuration %q is incompatible with this machine (%q)", s.Sys.Name, m.sys.Name)
	}
	if s.NaiveCounting != m.naiveCounting {
		return fmt.Errorf("machine: snapshot naive-counting mode (%v) differs from this machine's (%v)", s.NaiveCounting, m.naiveCounting)
	}
	if (s.Probe != nil) != (m.probe != nil) {
		return fmt.Errorf("machine: snapshot telemetry presence (%v) differs from this machine's (%v)", s.Probe != nil, m.probe != nil)
	}
	return nil
}

// Restore loads a snapshot into a freshly built, not-yet-started machine
// whose configuration matches the snapshot's up to Name and Threshold.
// Component restores validate the snapshot's shape, so a corrupted
// snapshot is rejected rather than installed. After Restore, resume the
// run with ResumeWith.
func (m *Machine) Restore(s *Snapshot) error {
	if m.started {
		return fmt.Errorf("machine: Restore into an already-started machine")
	}
	if m.verify {
		return fmt.Errorf("machine: Restore into a machine with verification enabled is unsupported")
	}
	if err := m.compatible(s); err != nil {
		return err
	}
	pages := len(s.Homes)
	if len(s.PageFlags) != pages || len(s.SCOMAMapped) != pages || len(s.Seen) != pages*m.sys.Nodes {
		return fmt.Errorf("machine: snapshot per-page state inconsistent: %d homes, %d flags, %d scoma, %d seen",
			pages, len(s.PageFlags), len(s.SCOMAMapped), len(s.Seen))
	}
	if len(s.Nodes) != len(m.nodes) {
		return fmt.Errorf("machine: snapshot has %d nodes, machine has %d", len(s.Nodes), len(m.nodes))
	}
	if len(s.CPUs) != len(m.cpus) {
		return fmt.Errorf("machine: snapshot has %d CPUs, machine has %d", len(s.CPUs), len(m.cpus))
	}
	if len(s.PerNodeRepl) != len(m.nodes) {
		return fmt.Errorf("machine: snapshot has %d per-node replacement counts, machine has %d nodes", len(s.PerNodeRepl), len(m.nodes))
	}
	if s.Run == nil {
		return fmt.Errorf("machine: snapshot carries no run statistics")
	}
	refetch, err := stats.PageCounterFromState(s.RefetchNodes, s.RefetchCounts)
	if err != nil {
		return err
	}
	if s.RefetchNodes != m.sys.Nodes {
		return fmt.Errorf("machine: snapshot refetch table built for %d nodes, machine has %d", s.RefetchNodes, m.sys.Nodes)
	}
	if err := m.dir.SetState(s.DirBlocks, s.DirEntries); err != nil {
		return err
	}
	for i, nd := range m.nodes {
		ns := &s.Nodes[i]
		if len(ns.L1s) != len(nd.L1s) {
			return fmt.Errorf("machine: snapshot node %d has %d L1s, machine has %d", i, len(ns.L1s), len(nd.L1s))
		}
		for j, l1 := range nd.L1s {
			if err := l1.SetSnapshot(ns.L1s[j].Lines, ns.L1s[j].Hits, ns.L1s[j].Misses); err != nil {
				return err
			}
		}
		nd.Bus.SetState(ns.Bus)
		nd.NI.SetState(ns.NI)
		nd.RAD.Ctl.SetState(ns.Ctl)
		if (ns.BlockCache != nil) != (nd.RAD.BlockCache != nil) {
			return fmt.Errorf("machine: snapshot node %d block-cache presence differs from the protocol's", i)
		}
		if ns.BlockCache != nil {
			if err := nd.RAD.BlockCache.SetState(ns.BlockCache.Entries, ns.BlockCache.Hits, ns.BlockCache.Misses); err != nil {
				return err
			}
		}
		if (ns.PageCache != nil) != (nd.RAD.PageCache != nil) {
			return fmt.Errorf("machine: snapshot node %d page-cache presence differs from the protocol's", i)
		}
		if ns.PageCache != nil {
			if err := nd.RAD.PageCache.SetState(*ns.PageCache); err != nil {
				return err
			}
		}
		if (ns.Counters != nil) != (nd.RAD.Counters != nil) {
			return fmt.Errorf("machine: snapshot node %d counter presence differs from the protocol's", i)
		}
		if ns.Counters != nil {
			nd.RAD.Counters.SetState(ns.Counters.Counts, ns.Counters.Crossings, ns.Counters.Total)
		}
		nd.PT.SetState(ns.PT.Entries, ns.PT.Faults)
	}
	if pages > 0 {
		m.growPages(addr.PageNum(pages - 1))
	}
	copy(m.homes, s.Homes)
	copy(m.pageFlags, s.PageFlags)
	copy(m.seen, s.Seen)
	copy(m.scomaMapped, s.SCOMAMapped)
	for i, c := range m.cpus {
		cs := &s.CPUs[i]
		c.Actor.Clock = cs.Clock
		c.Refs = cs.Refs
		c.Consumed = cs.Consumed
		c.Finish = cs.Finish
		c.Done = cs.Done
		c.AtBarrier = cs.AtBarrier
		c.HasPending = cs.HasPending
		c.Pending = cs.Pending
	}
	m.run = s.Run.Clone()
	m.refetch = refetch
	m.perNodeR = append(m.perNodeR[:0], s.PerNodeRepl...)
	m.nextVersion = s.NextVersion
	m.counterHigh = s.CounterHigh
	if m.probe != nil {
		// Re-attach the probe to the restored run's timeline and install
		// the captured cursor so the next flush continues the series.
		if err := m.probe.Restore(*s.Probe, m.run.Timeline); err != nil {
			return err
		}
		m.probeNext = m.probe.NextBoundary()
	}
	return nil
}

// ResumeWith binds streams to a restored machine and rebuilds the event
// loop at the captured instant, seeking each stream to its CPU's
// Consumed cursor. Streams for CPUs that had consumed any records must
// implement trace.Seeker; the streams must be fresh (not shared with the
// machine the snapshot was taken from). After ResumeWith, drive the run
// with Finish/RunUntilRefs/RunUntilCounter as usual.
func (m *Machine) ResumeWith(streams []trace.Stream) error {
	if m.started {
		return fmt.Errorf("machine: ResumeWith on an already-started machine")
	}
	if len(streams) != len(m.cpus) {
		return fmt.Errorf("machine: %d streams for %d CPUs", len(streams), len(m.cpus))
	}
	for i, c := range m.cpus {
		if c.Consumed == 0 {
			continue
		}
		sk, ok := streams[i].(trace.Seeker)
		if !ok {
			return fmt.Errorf("machine: stream for CPU %d does not support seeking (%d records consumed)", i, c.Consumed)
		}
		if err := sk.SeekRecord(c.Consumed); err != nil {
			return fmt.Errorf("machine: seeking stream for CPU %d: %w", i, err)
		}
	}
	m.bind(streams)
	m.waiting = m.waiting[:0]
	m.active = 0
	for _, c := range m.cpus {
		if c.Done {
			continue
		}
		m.active++
		if c.AtBarrier {
			m.waiting = append(m.waiting, c)
		} else {
			m.q.Push(&c.Actor)
		}
	}
	if m.active > 0 && len(m.waiting) == m.active {
		return fmt.Errorf("machine: snapshot has every active CPU parked at a barrier")
	}
	m.started = true
	return nil
}
