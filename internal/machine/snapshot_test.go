package machine

import (
	"reflect"
	"testing"

	"rnuma/internal/config"
	"rnuma/internal/trace"
)

// snapStreams builds the deterministic traffic the snapshot tests fork:
// heavy sharing over a few pages so every protocol exercises caches,
// invalidations, replacements, and (for R-NUMA) relocations.
func snapStreams(seed int64) []trace.Stream {
	return randomStreams(seed, 4, 10, 1200, 0.35)
}

// forkAt replays the streams to completion on one machine while pausing a
// twin at k refs, snapshotting, restoring into a third machine, and
// resuming it over fresh streams. Returns (uninterrupted, forked) runs.
func forkAt(t *testing.T, sys config.System, seed int64, k int64) (full, forked interface{}) {
	t.Helper()
	base, err := New(sys, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	fullRun, err := base.Run(snapStreams(seed))
	if err != nil {
		t.Fatal(err)
	}

	trunk, err := New(sys, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if err := trunk.Start(snapStreams(seed)); err != nil {
		t.Fatal(err)
	}
	if _, err := trunk.RunUntilRefs(k); err != nil {
		t.Fatal(err)
	}
	snap, err := trunk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fork, err := New(sys, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := fork.ResumeWith(snapStreams(seed)); err != nil {
		t.Fatal(err)
	}
	forkRun, err := fork.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return fullRun, forkRun
}

// TestSnapshotForkIdentity: a run forked from a mid-run snapshot finishes
// with statistics identical to the uninterrupted run, under every
// protocol and at fork points from the very start to past the end.
func TestSnapshotForkIdentity(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		t.Run(p.String(), func(t *testing.T) {
			for _, k := range []int64{0, 1, 700, 2400, 1 << 30} {
				full, forked := forkAt(t, tinySys(p), 7, k)
				if !reflect.DeepEqual(full, forked) {
					t.Errorf("fork at %d refs diverged:\n full %+v\n fork %+v", k, full, forked)
				}
			}
		})
	}
}

// TestSnapshotRestoreInvariants: a restored machine satisfies the
// directory's structural invariants before a single reference runs.
func TestSnapshotRestoreInvariants(t *testing.T) {
	sys := tinySys(config.RNUMA)
	m, err := New(sys, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(snapStreams(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunUntilRefs(900); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(sys, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := r.Directory().Check(); err != nil {
		t.Errorf("restored directory violates invariants: %v", err)
	}
}

// TestSnapshotThresholdFork: restoring into a machine with a different
// relocation threshold is allowed (the fork-sweep use case), and the
// forked run matches a from-scratch run at the fork's threshold when the
// snapshot predates any counter crossing.
func TestSnapshotThresholdFork(t *testing.T) {
	sysHi := tinySys(config.RNUMA)
	sysHi.Threshold = 64
	sysLo := sysHi
	sysLo.Threshold = 8

	base, err := New(sysLo, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(snapStreams(11))
	if err != nil {
		t.Fatal(err)
	}

	trunk, err := New(sysHi, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if err := trunk.Start(snapStreams(11)); err != nil {
		t.Fatal(err)
	}
	// Pause just before any per-page counter could reach the fork's
	// threshold: the trunk's state is identical to a threshold-8 run here.
	if _, err := trunk.RunUntilCounter(uint32(sysLo.Threshold - 1)); err != nil {
		t.Fatal(err)
	}
	snap, err := trunk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := New(sysLo, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := fork.ResumeWith(snapStreams(11)); err != nil {
		t.Fatal(err)
	}
	got, err := fork.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("threshold fork diverged:\n want %+v\n got  %+v", want, got)
	}
}

// TestSnapshotErrors covers the guarded misuse paths: snapshotting an
// unstarted or verifying machine, restoring into started/verifying/
// mismatched machines, and resuming with unusable streams.
func TestSnapshotErrors(t *testing.T) {
	sys := tinySys(config.RNUMA)
	m, err := New(sys, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err == nil {
		t.Error("Snapshot before Start accepted")
	}

	v, err := New(sys, WithHomes(evenOddHomes), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Start(snapStreams(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Snapshot(); err == nil {
		t.Error("Snapshot with verification accepted")
	}

	if err := m.Start(snapStreams(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunUntilRefs(500); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a started machine.
	if err := m.Restore(snap); err == nil {
		t.Error("Restore into a started machine accepted")
	}
	// Restore into a verifying machine.
	v2, err := New(sys, WithHomes(evenOddHomes), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.Restore(snap); err == nil {
		t.Error("Restore into a verifying machine accepted")
	}
	// Restore into an incompatible configuration (different protocol).
	other, err := New(tinySys(config.SCOMA), WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Error("Restore across protocols accepted")
	}
	// Mangled shape: chop the per-page state.
	bad := *snap
	bad.PageFlags = bad.PageFlags[:len(bad.PageFlags)-1]
	fresh := func() *Machine {
		fm, err := New(sys, WithHomes(evenOddHomes))
		if err != nil {
			t.Fatal(err)
		}
		return fm
	}
	if err := fresh().Restore(&bad); err == nil {
		t.Error("snapshot with inconsistent per-page state accepted")
	}
	bad = *snap
	bad.Run = nil
	if err := fresh().Restore(&bad); err == nil {
		t.Error("snapshot without run statistics accepted")
	}

	// ResumeWith: wrong stream count, unseekable streams, unrestored use.
	r := fresh()
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := r.ResumeWith(snapStreams(5)[:2]); err == nil {
		t.Error("ResumeWith with a short stream list accepted")
	}
	funcs := make([]trace.Stream, 4)
	for i := range funcs {
		funcs[i] = trace.FuncStream(func() (trace.Ref, bool) { return trace.Ref{}, false })
	}
	if err := r.ResumeWith(funcs); err == nil {
		t.Error("ResumeWith over unseekable streams accepted")
	}
	if err := r.ResumeWith(snapStreams(5)); err != nil {
		t.Fatal(err)
	}
	if err := r.ResumeWith(snapStreams(5)); err == nil {
		t.Error("double ResumeWith accepted")
	}
}

// TestMachineAccessors pins the diagnostic accessors the fork and
// checkpoint tooling relies on.
func TestMachineAccessors(t *testing.T) {
	sys := tinySys(config.RNUMA)
	m, err := New(sys, WithHomes(evenOddHomes))
	if err != nil {
		t.Fatal(err)
	}
	got := m.System()
	if got.Protocol != sys.Protocol || got.Nodes != sys.Nodes || got.Threshold != sys.Threshold {
		t.Errorf("System() = %+v, want the construction config", got)
	}
	if len(m.Nodes()) != sys.Nodes {
		t.Errorf("Nodes() has %d entries, want %d", len(m.Nodes()), sys.Nodes)
	}
	if err := m.Err(); err != nil {
		t.Errorf("Err() on a fresh machine: %v", err)
	}
}
