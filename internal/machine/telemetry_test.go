package machine

import (
	"math"
	"reflect"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
	"rnuma/internal/trace"
)

// relocRefs is the TestRNUMARelocation traffic: node 1 sweeps four remote
// pages repeatedly, so every page refetches past the threshold and
// relocates — the pattern that exercises every probe hook.
func relocRefs() []trace.Ref {
	var refs []trace.Ref
	for pass := 0; pass < 12; pass++ {
		for _, page := range []addr.PageNum{0, 2, 4, 6} {
			for off := 0; off < 8; off++ {
				refs = append(refs, trace.Ref{Page: page, Off: uint16(off)})
			}
		}
	}
	return refs
}

// TestTelemetryIntervalInvariants pins the probe's accounting against the
// run it windows: contiguous intervals whose deltas sum to the run's
// totals, traffic matrices that sum to the window's remote fetches, and
// one event per relocation at exactly the threshold count.
func TestTelemetryIntervalInvariants(t *testing.T) {
	const window = 100 // not a divisor of the 384-ref trace: last window is partial
	sys := tinySys(config.RNUMA)
	m, err := New(sys, WithHomes(evenOddHomes), WithVerify(),
		WithTelemetry(telemetry.Config{Window: window}))
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: relocRefs()}))
	if err != nil {
		t.Fatal(err)
	}

	tl := run.Timeline
	if tl == nil {
		t.Fatal("probed run carries no timeline")
	}
	if tl.Window != window || tl.Nodes != sys.Nodes {
		t.Fatalf("timeline shape window=%d nodes=%d, want %d/%d", tl.Window, tl.Nodes, window, sys.Nodes)
	}
	if len(tl.Intervals) != int((run.Refs+window-1)/window) {
		t.Fatalf("%d intervals for %d refs at window %d", len(tl.Intervals), run.Refs, window)
	}

	var sum telemetry.Counters
	for i, iv := range tl.Intervals {
		if iv.Index != int64(i) {
			t.Errorf("interval %d has index %d", i, iv.Index)
		}
		if iv.StartRef != int64(i)*window {
			t.Errorf("interval %d starts at %d, want %d", i, iv.StartRef, int64(i)*window)
		}
		wantEnd := (int64(i) + 1) * window
		if i == len(tl.Intervals)-1 {
			wantEnd = run.Refs
		}
		if iv.EndRef != wantEnd {
			t.Errorf("interval %d ends at %d, want %d", i, iv.EndRef, wantEnd)
		}
		var traffic int64
		for _, v := range iv.Traffic {
			traffic += v
		}
		if traffic != iv.Delta.RemoteFetches {
			t.Errorf("interval %d traffic sums to %d, delta says %d remote fetches", i, traffic, iv.Delta.RemoteFetches)
		}
		if iv.Delta.RemoteFetches == 0 && iv.Traffic != nil {
			t.Errorf("interval %d is quiet but stores a traffic matrix", i)
		}
		sum = sum.Sub(telemetry.Counters{}.Sub(iv.Delta)) // sum += delta (a - (0 - b))
	}
	want := telemetry.Counters{
		Refs: run.Refs, L1Hits: run.L1Hits, LocalFills: run.LocalFills,
		BlockCacheHits: run.BlockCacheHits, PageCacheHits: run.PageCacheHits,
		RemoteFetches: run.RemoteFetches, Refetches: run.Refetches,
		Upgrades: run.Upgrades, PageFaults: run.PageFaults,
		Allocations: run.Allocations, Replacements: run.Replacements,
		Relocations: run.Relocations, Demotions: run.Demotions,
		InvalsSent: run.InvalsSent, WritebacksHome: run.WritebacksHome,
	}
	if sum != want {
		t.Errorf("interval deltas sum to %+v,\nrun totals are  %+v", sum, want)
	}

	if int64(len(tl.Events)) != run.Relocations {
		t.Fatalf("%d events for %d relocations", len(tl.Events), run.Relocations)
	}
	prev := int64(0)
	for i, e := range tl.Events {
		if e.Count != uint32(sys.Threshold) {
			t.Errorf("event %d crossed at count %d, want threshold %d", i, e.Count, sys.Threshold)
		}
		if e.Ref < prev || e.Ref > run.Refs {
			t.Errorf("event %d at ref %d out of order or range (prev %d, total %d)", i, e.Ref, prev, run.Refs)
		}
		prev = e.Ref
		if e.Window != (e.Ref-1)/window {
			t.Errorf("event %d window %d, want %d", i, e.Window, (e.Ref-1)/window)
		}
	}

	var total int64
	for _, v := range tl.TotalTraffic() {
		total += v
	}
	if total != run.RemoteFetches {
		t.Errorf("total traffic %d, run saw %d remote fetches", total, run.RemoteFetches)
	}
}

// TestTelemetryObservationDoesNotPerturb: a probed run's counters are
// bit-identical to the unprobed run's — the probe only reads.
func TestTelemetryObservationDoesNotPerturb(t *testing.T) {
	for _, p := range []config.Protocol{config.CCNUMA, config.SCOMA, config.RNUMA} {
		sys := tinySys(p)
		plain, err := New(sys, WithHomes(evenOddHomes))
		if err != nil {
			t.Fatal(err)
		}
		a, err := plain.Run(snapStreams(11))
		if err != nil {
			t.Fatal(err)
		}
		probed, err := New(sys, WithHomes(evenOddHomes), WithTelemetry(telemetry.Config{Window: 64}))
		if err != nil {
			t.Fatal(err)
		}
		b, err := probed.Run(snapStreams(11))
		if err != nil {
			t.Fatal(err)
		}
		if d := stats.Diff(a, b); !d.Identical() {
			t.Errorf("%v: probe perturbed %d counters", p, d.Differing)
		}
	}
}

// TestTelemetryDisabledZeroCost: a disabled configuration is a strict
// no-op — no probe, the sentinel boundary, no timeline, and exactly the
// allocation profile of a machine that never heard of telemetry.
func TestTelemetryDisabledZeroCost(t *testing.T) {
	m, err := New(tinySys(config.RNUMA), WithHomes(evenOddHomes), WithTelemetry(telemetry.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if m.probe != nil || m.probeNext != math.MaxInt64 {
		t.Fatalf("disabled telemetry left probe=%v probeNext=%d", m.probe, m.probeNext)
	}
	run, err := m.Run(streams4(map[int][]trace.Ref{2: relocRefs()}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Timeline != nil {
		t.Error("disabled telemetry produced a timeline")
	}

	// Both measurements pass the same number of pre-built options, so the
	// only possible difference is what the disabled option itself does.
	measure := func(extra Option) float64 {
		return testing.AllocsPerRun(5, func() {
			m, err := New(tinySys(config.RNUMA), WithHomes(evenOddHomes), extra)
			if err != nil {
				panic(err)
			}
			if _, err := m.Run(streams4(map[int][]trace.Ref{2: relocRefs()})); err != nil {
				panic(err)
			}
		})
	}
	off, disabled := measure(WithHomes(evenOddHomes)), measure(WithTelemetry(telemetry.Config{}))
	if disabled != off {
		t.Errorf("disabled telemetry allocates %.0f per run, baseline %.0f", disabled, off)
	}
}

// TestTelemetrySnapshotCompatibility: a checkpoint remembers whether its
// machine was probed, and restores only into a matching machine; a
// matching restore continues the series exactly (mid-window fork).
func TestTelemetrySnapshotCompatibility(t *testing.T) {
	sys := tinySys(config.RNUMA)
	tcfg := telemetry.Config{Window: 130} // mid-window at the 300-ref pause

	probed := func(opts ...Option) *Machine {
		t.Helper()
		m, err := New(sys, append([]Option{WithHomes(evenOddHomes)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	full, err := probed(WithTelemetry(tcfg)).Run(streams4(map[int][]trace.Ref{2: relocRefs()}))
	if err != nil {
		t.Fatal(err)
	}

	trunk := probed(WithTelemetry(tcfg))
	if err := trunk.Start(streams4(map[int][]trace.Ref{2: relocRefs()})); err != nil {
		t.Fatal(err)
	}
	if _, err := trunk.RunUntilRefs(300); err != nil {
		t.Fatal(err)
	}
	snap, err := trunk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Probe == nil {
		t.Fatal("probed machine's snapshot carries no probe cursor")
	}

	// Presence mismatch both ways.
	if err := probed().Restore(snap); err == nil {
		t.Error("probed checkpoint restored into an unprobed machine")
	}
	plainTrunk := probed()
	if err := plainTrunk.Start(streams4(map[int][]trace.Ref{2: relocRefs()})); err != nil {
		t.Fatal(err)
	}
	if _, err := plainTrunk.RunUntilRefs(300); err != nil {
		t.Fatal(err)
	}
	plainSnap, err := plainTrunk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := probed(WithTelemetry(tcfg)).Restore(plainSnap); err == nil {
		t.Error("unprobed checkpoint restored into a probed machine")
	}

	// The matching restore continues the series bit-identically.
	fork := probed(WithTelemetry(tcfg))
	if err := fork.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := fork.ResumeWith(streams4(map[int][]trace.Ref{2: relocRefs()})); err != nil {
		t.Fatal(err)
	}
	forked, err := fork.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, forked) {
		t.Errorf("mid-window fork diverged:\n full %+v\n fork %+v", full.Timeline, forked.Timeline)
	}
}
