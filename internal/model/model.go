// Package model implements the paper's analytical worst-case performance
// model (Section 3.2, Table 1, Equations 1-3).
//
// The model compares the per-page overheads of CC-NUMA, S-COMA, and R-NUMA
// against an ideal CC-NUMA machine with an infinite block cache, for the
// adversarial reference pattern in which a page is relocated and never
// referenced again before replacement.
package model

import (
	"errors"
	"math"
)

// Params are the Table-1 parameters of the analytical model.
type Params struct {
	Crefetch  float64 // cost of refetching a remote block
	Callocate float64 // cost of allocating and later replacing a page
	Crelocate float64 // cost of relocating a page from CC-NUMA to S-COMA
	T         float64 // relocation threshold (refetches before relocation)
}

// Validate rejects non-physical parameter values.
func (p Params) Validate() error {
	if p.Crefetch <= 0 || p.Callocate <= 0 || p.Crelocate < 0 {
		return errors.New("model: costs must be positive (Crelocate may be zero)")
	}
	if p.T <= 0 {
		return errors.New("model: threshold must be positive")
	}
	return nil
}

// OverheadCCNUMA returns the worst-case per-page overhead of CC-NUMA over
// the ideal machine: T refetches before the (never-taken) relocation point.
func (p Params) OverheadCCNUMA() float64 { return p.T * p.Crefetch }

// OverheadSCOMA returns the worst-case per-page overhead of S-COMA: one
// allocation/replacement.
func (p Params) OverheadSCOMA() float64 { return p.Callocate }

// OverheadRNUMA returns R-NUMA's overhead on the adversarial page: T
// refetches, a relocation, and an allocation/replacement that buys nothing.
func (p Params) OverheadRNUMA() float64 {
	return p.T*p.Crefetch + p.Crelocate + p.Callocate
}

// RatioVsCCNUMA is Equation 1: how much worse R-NUMA can be than CC-NUMA.
func (p Params) RatioVsCCNUMA() float64 {
	return p.OverheadRNUMA() / p.OverheadCCNUMA()
}

// RatioVsSCOMA is Equation 2: how much worse R-NUMA can be than S-COMA.
func (p Params) RatioVsSCOMA() float64 {
	return p.OverheadRNUMA() / p.OverheadSCOMA()
}

// WorstCase returns the larger of the two competitive ratios at this T.
func (p Params) WorstCase() float64 {
	return math.Max(p.RatioVsCCNUMA(), p.RatioVsSCOMA())
}

// OptimalThreshold returns the T at which Equations 1 and 2 intersect:
// T* = Callocate / Crefetch (Equation 3's threshold). At T*, both ratios
// equal 2 + Crelocate/Callocate.
func (p Params) OptimalThreshold() float64 { return p.Callocate / p.Crefetch }

// BoundAtOptimum returns Equation 3's worst-case bound at the optimal
// threshold: 2 + Crelocate/Callocate. With fast relocation the bound
// approaches 2; with relocation as expensive as allocation it approaches 3.
func (p Params) BoundAtOptimum() float64 { return 2 + p.Crelocate/p.Callocate }

// AtOptimum returns a copy of the parameters with T set to the optimal
// threshold.
func (p Params) AtOptimum() Params {
	p.T = p.OptimalThreshold()
	return p
}

// SweepPoint is one (T, ratio) sample of a threshold sweep.
type SweepPoint struct {
	T        float64
	VsCCNUMA float64
	VsSCOMA  float64
	Worst    float64
}

// SweepThreshold evaluates the competitive ratios across a geometric range
// of thresholds, for plotting the intersection of Equations 1 and 2.
func (p Params) SweepThreshold(tMin, tMax float64, points int) []SweepPoint {
	if points < 2 || tMin <= 0 || tMax <= tMin {
		return nil
	}
	out := make([]SweepPoint, 0, points)
	ratio := math.Pow(tMax/tMin, 1/float64(points-1))
	t := tMin
	for i := 0; i < points; i++ {
		q := p
		q.T = t
		out = append(out, SweepPoint{T: t, VsCCNUMA: q.RatioVsCCNUMA(), VsSCOMA: q.RatioVsSCOMA(), Worst: q.WorstCase()})
		t *= ratio
	}
	return out
}

// FromCosts builds model parameters from concrete per-operation cycle
// costs: a remote fetch, an average page allocation/replacement, and an
// average relocation.
func FromCosts(remoteFetch, pageAlloc, pageReloc float64, threshold int) Params {
	return Params{
		Crefetch:  remoteFetch,
		Callocate: pageAlloc,
		Crelocate: pageReloc,
		T:         float64(threshold),
	}
}
