package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func paperParams() Params {
	// Concrete Table-2 instantiation: remote fetch 376 cycles, mid-range
	// page allocation ~5000, relocation ~5000.
	return Params{Crefetch: 376, Callocate: 5000, Crelocate: 5000, T: 64}
}

func TestEquation1(t *testing.T) {
	p := paperParams()
	want := (p.T*p.Crefetch + p.Crelocate + p.Callocate) / (p.T * p.Crefetch)
	if got := p.RatioVsCCNUMA(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EQ1 = %v, want %v", got, want)
	}
}

func TestEquation2(t *testing.T) {
	p := paperParams()
	want := (p.T*p.Crefetch + p.Crelocate + p.Callocate) / p.Callocate
	if got := p.RatioVsSCOMA(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EQ2 = %v, want %v", got, want)
	}
}

// TestEquation3 verifies that at T* = Callocate/Crefetch both ratios equal
// 2 + Crelocate/Callocate.
func TestEquation3(t *testing.T) {
	p := paperParams().AtOptimum()
	want := 2 + p.Crelocate/p.Callocate
	if got := p.RatioVsCCNUMA(); math.Abs(got-want) > 1e-9 {
		t.Errorf("EQ1 at T* = %v, want %v", got, want)
	}
	if got := p.RatioVsSCOMA(); math.Abs(got-want) > 1e-9 {
		t.Errorf("EQ2 at T* = %v, want %v", got, want)
	}
	if got := p.BoundAtOptimum(); math.Abs(got-want) > 1e-12 {
		t.Errorf("BoundAtOptimum = %v, want %v", got, want)
	}
}

// TestBoundBetween2And3: the paper's headline — with relocation no more
// expensive than allocation, the worst case is between 2x and 3x.
func TestBoundBetween2And3(t *testing.T) {
	f := func(seedCref, seedCalloc, seedCreloc uint32) bool {
		cref := 1 + float64(seedCref%10000)
		calloc := 1 + float64(seedCalloc%100000)
		creloc := float64(seedCreloc%100000) / 100000 * calloc // <= Callocate
		p := Params{Crefetch: cref, Callocate: calloc, Crelocate: creloc}.AtOptimum()
		b := p.BoundAtOptimum()
		return b >= 2 && b <= 3+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOptimalThresholdMinimizesWorstCase: T* is the minimizer of the
// max of the two competitive ratios (they are monotone in opposite
// directions, so the intersection is the optimum).
func TestOptimalThresholdMinimizesWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := Params{
			Crefetch:  1 + rng.Float64()*999,
			Callocate: 1 + rng.Float64()*9999,
			Crelocate: rng.Float64() * 10000,
		}
		opt := p.AtOptimum()
		best := opt.WorstCase()
		for _, factor := range []float64{0.25, 0.5, 0.9, 1.1, 2, 4} {
			q := p
			q.T = opt.T * factor
			if q.WorstCase() < best-1e-9 {
				t.Fatalf("T=%v beats T*=%v: %v < %v (params %+v)",
					q.T, opt.T, q.WorstCase(), best, p)
			}
		}
	}
}

// TestRatiosMonotone: EQ1 decreases with T, EQ2 increases with T.
func TestRatiosMonotone(t *testing.T) {
	p := paperParams()
	prev1, prev2 := math.Inf(1), 0.0
	for T := 1.0; T <= 4096; T *= 2 {
		q := p
		q.T = T
		if r1 := q.RatioVsCCNUMA(); r1 > prev1+1e-12 {
			t.Errorf("EQ1 not non-increasing at T=%v", T)
		} else {
			prev1 = r1
		}
		if r2 := q.RatioVsSCOMA(); r2 < prev2-1e-12 {
			t.Errorf("EQ2 not non-decreasing at T=%v", T)
		} else {
			prev2 = r2
		}
	}
}

func TestPaperThresholdExample(t *testing.T) {
	// With the paper's costs — remote fetch 376 and page operations in
	// 3000~11500 — the optimal threshold lands in the small tens,
	// consistent with the paper's default of 64.
	low := FromCosts(376, 3000, 3000, 64)
	high := FromCosts(376, 11500, 11500, 64)
	if tl := low.OptimalThreshold(); tl < 4 || tl > 16 {
		t.Errorf("T* at low page cost = %v, want single digits to 16", tl)
	}
	if th := high.OptimalThreshold(); th < 16 || th > 64 {
		t.Errorf("T* at high page cost = %v, want tens", th)
	}
}

func TestValidate(t *testing.T) {
	good := paperParams()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Crefetch: 0, Callocate: 1, Crelocate: 0, T: 1},
		{Crefetch: 1, Callocate: 0, Crelocate: 0, T: 1},
		{Crefetch: 1, Callocate: 1, Crelocate: -1, T: 1},
		{Crefetch: 1, Callocate: 1, Crelocate: 0, T: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSweepThreshold(t *testing.T) {
	p := paperParams()
	pts := p.SweepThreshold(1, 1024, 50)
	if len(pts) != 50 {
		t.Fatalf("sweep returned %d points, want 50", len(pts))
	}
	if pts[0].T != 1 {
		t.Errorf("sweep starts at %v, want 1", pts[0].T)
	}
	if math.Abs(pts[len(pts)-1].T-1024) > 1 {
		t.Errorf("sweep ends at %v, want ~1024", pts[len(pts)-1].T)
	}
	// The worst-case envelope should dip near T* and rise at the ends.
	minWorst := math.Inf(1)
	for _, pt := range pts {
		if pt.Worst < minWorst {
			minWorst = pt.Worst
		}
	}
	bound := p.BoundAtOptimum()
	if minWorst > bound*1.1 {
		t.Errorf("sweep minimum %v far above analytic bound %v", minWorst, bound)
	}
	if p.SweepThreshold(10, 5, 10) != nil || p.SweepThreshold(1, 10, 1) != nil {
		t.Error("degenerate sweeps should return nil")
	}
}
