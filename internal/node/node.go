// Package node assembles one SMP node of the DSM machine (paper Figure 1):
// four processors with private direct-mapped data caches, a shared
// split-transaction memory bus with snooping, a network interface, the
// remote access device, and the node's page table.
package node

import (
	"rnuma/internal/addr"
	"rnuma/internal/cache"
	"rnuma/internal/config"
	"rnuma/internal/event"
	"rnuma/internal/osmodel"
	"rnuma/internal/rad"
	"rnuma/internal/trace"
)

// CPU is one processor of a node.
type CPU struct {
	Node   addr.NodeID
	Index  int // index within the node
	Global int // index within the machine

	Stream trace.Stream
	Finish int64
	Done   bool

	// Pending holds a reference whose compute gap pushed this CPU's clock
	// past another CPU's: the engine re-queues the CPU and processes the
	// reference when it is globally next (causal ordering).
	Pending    trace.Ref
	HasPending bool

	// AtBarrier marks a CPU parked at a barrier awaiting release (part of
	// the engine state a machine snapshot must capture).
	AtBarrier bool

	// Consumed counts trace records pulled from Stream so far, barriers
	// included and a Pending reference included: it is the stream cursor a
	// forked replay seeks to before resuming.
	Consumed int64

	Actor event.Actor

	// Per-CPU counters.
	Refs int64
}

// Node is one SMP node.
type Node struct {
	ID   addr.NodeID
	CPUs []*CPU
	L1s  []*cache.L1

	Bus event.Resource // split-transaction memory bus
	NI  event.Resource // network interface

	RAD *rad.RAD
	PT  *osmodel.PageTable
}

// New builds a node per the system configuration.
func New(sys config.System, id addr.NodeID) *Node {
	n := &Node{
		ID:  id,
		RAD: rad.New(sys),
		PT:  osmodel.NewPageTable(),
	}
	for i := 0; i < sys.CPUsPerNode; i++ {
		global := int(id)*sys.CPUsPerNode + i
		c := &CPU{Node: id, Index: i, Global: global}
		c.Actor.ID = global
		n.CPUs = append(n.CPUs, c)
		n.L1s = append(n.L1s, cache.New(sys.L1Bytes, sys.Geometry.BlockBytes()))
	}
	return n
}

// NewestVersion scans the node's storage hierarchy for the freshest copy
// of a block: a Modified/Owned L1 line wins, then the block cache, then
// the page cache. Returns ok=false if the node holds no copy at all.
//
// idx is the node's L1 index for the block (all L1s share the mapping);
// frame/off locate the block in the page cache when the page is
// S-COMA-mapped (frame < 0 means not S-COMA-mapped).
func (n *Node) NewestVersion(idx int, b addr.BlockNum, frame, off int) (uint32, bool) {
	var best uint32
	found := false
	for _, l1 := range n.L1s {
		if st, ver := l1.Probe(idx, b); st.Dirty() {
			return ver, true // dirty L1 data is always the freshest
		} else if st.Valid() {
			best, found = ver, true
		}
	}
	if n.RAD.BlockCache != nil {
		if e, ok := n.RAD.BlockCache.Lookup(b); ok {
			if e.Dirty {
				return e.Version, true
			}
			if !found {
				best, found = e.Version, true
			}
		}
	}
	if frame >= 0 && n.RAD.PageCache != nil {
		if n.RAD.PageCache.Tag(frame, off) != 0 { // not TagInvalid
			ver := n.RAD.PageCache.Version(frame, off)
			if n.RAD.PageCache.FrameAt(frame).Dirty[off] {
				return ver, true
			}
			if !found {
				best, found = ver, true
			}
		}
	}
	return best, found
}
