package node

import (
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/cache"
	"rnuma/internal/config"
	"rnuma/internal/pagecache"
)

func newNode(t *testing.T, p config.Protocol) *Node {
	t.Helper()
	sys := config.Base(p)
	return New(sys, 3)
}

func TestAssembly(t *testing.T) {
	n := newNode(t, config.RNUMA)
	if n.ID != 3 {
		t.Errorf("id = %d", n.ID)
	}
	if len(n.CPUs) != 4 || len(n.L1s) != 4 {
		t.Fatalf("cpus=%d l1s=%d, want 4 each", len(n.CPUs), len(n.L1s))
	}
	for i, c := range n.CPUs {
		if c.Index != i || c.Node != 3 {
			t.Errorf("cpu %d: index=%d node=%d", i, c.Index, c.Node)
		}
		if c.Global != 3*4+i {
			t.Errorf("cpu %d: global=%d, want %d", i, c.Global, 3*4+i)
		}
		if c.Actor.ID != c.Global {
			t.Errorf("cpu %d: actor id %d != global %d", i, c.Actor.ID, c.Global)
		}
	}
	if n.RAD == nil || n.PT == nil {
		t.Fatal("missing RAD or page table")
	}
	if !n.RAD.HasBlockCache() || !n.RAD.HasPageCache() || !n.RAD.Reactive() {
		t.Error("R-NUMA node should have every device")
	}
}

func TestProtocolDevices(t *testing.T) {
	cc := newNode(t, config.CCNUMA)
	if !cc.RAD.HasBlockCache() || cc.RAD.HasPageCache() || cc.RAD.Reactive() {
		t.Error("CC-NUMA node devices wrong")
	}
	sc := newNode(t, config.SCOMA)
	if sc.RAD.HasBlockCache() || !sc.RAD.HasPageCache() || sc.RAD.Reactive() {
		t.Error("S-COMA node devices wrong")
	}
}

func TestNewestVersionPrefersDirtyL1(t *testing.T) {
	n := newNode(t, config.RNUMA)
	b := addr.BlockNum(100)
	idx := n.L1s[0].Index(uint32(b))
	// Stale copy in the block cache, newer dirty copy in CPU 2's L1.
	n.RAD.BlockCache.Fill(b, 2 /*ReadWrite*/, true, 5)
	n.L1s[2].Fill(idx, b, cache.Modified, 9)
	ver, ok := n.NewestVersion(idx, b, -1, 0)
	if !ok || ver != 9 {
		t.Errorf("newest = %d,%v, want 9 (dirty L1 wins)", ver, ok)
	}
}

func TestNewestVersionFromBlockCache(t *testing.T) {
	n := newNode(t, config.CCNUMA)
	b := addr.BlockNum(7)
	idx := n.L1s[0].Index(uint32(b))
	n.RAD.BlockCache.Fill(b, 2, true, 4)
	ver, ok := n.NewestVersion(idx, b, -1, 0)
	if !ok || ver != 4 {
		t.Errorf("newest = %d,%v, want 4", ver, ok)
	}
}

func TestNewestVersionFromPageCache(t *testing.T) {
	n := newNode(t, config.SCOMA)
	frame := n.RAD.PageCache.Allocate(addr.PageNum(0), 0)
	n.RAD.PageCache.SetBlock(frame, 3, pagecache.TagReadWrite, true, 6)
	b := addr.BlockNum(3)
	idx := n.L1s[0].Index(uint32(b))
	ver, ok := n.NewestVersion(idx, b, frame, 3)
	if !ok || ver != 6 {
		t.Errorf("newest = %d,%v, want 6", ver, ok)
	}
}

func TestNewestVersionAbsent(t *testing.T) {
	n := newNode(t, config.RNUMA)
	if _, ok := n.NewestVersion(0, addr.BlockNum(55), -1, 0); ok {
		t.Error("absent block reported present")
	}
}

func TestCleanL1CopyIsFallback(t *testing.T) {
	n := newNode(t, config.CCNUMA)
	b := addr.BlockNum(8)
	idx := n.L1s[0].Index(uint32(b))
	n.L1s[1].Fill(idx, b, cache.Shared, 3)
	ver, ok := n.NewestVersion(idx, b, -1, 0)
	if !ok || ver != 3 {
		t.Errorf("newest = %d,%v, want clean copy 3", ver, ok)
	}
}
