// Package osmodel models the per-node operating system state the paper's
// protocols rely on: a per-node page table with independent allocation
// decisions (Section 2), and the mapping kinds a remote page can be in.
//
// The actual costs of the OS operations (soft traps, TLB shootdowns, page
// allocation/replacement/relocation) come from the config package; the
// machine charges them when it invokes these transitions.
package osmodel

import (
	"fmt"

	"rnuma/internal/addr"
	"rnuma/internal/dense"
)

// Kind is how a node currently maps a remote page.
type Kind uint8

const (
	// Unmapped: the node has never touched the page, or its mapping was
	// torn down (page-cache replacement). The next reference faults.
	Unmapped Kind = iota
	// MappedCC: references go directly to the home's global physical
	// address; the block cache may intercept them.
	MappedCC
	// MappedSCOMA: references go to a local page-cache frame guarded by
	// fine-grain tags.
	MappedSCOMA
)

// String names the mapping kind.
func (k Kind) String() string {
	switch k {
	case Unmapped:
		return "unmapped"
	case MappedCC:
		return "cc"
	case MappedSCOMA:
		return "scoma"
	}
	return "?"
}

// Mapping is a page-table entry for a remote page.
type Mapping struct {
	Kind  Kind
	Frame int // page-cache frame when Kind == MappedSCOMA
}

// PageTable is one node's (remote-segment) page table. Entries live in a
// dense page-indexed slice: Lookup sits on the simulator's per-reference
// path, where a map hash per access dominates the table's real work.
type PageTable struct {
	entries []Mapping // indexed by PageNum; zero value = Unmapped
	mapped  int

	faults int64
}

// NewPageTable builds an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{}
}

// Reserve pre-sizes the table for a shared segment of n pages. The table
// still grows on demand; the hint avoids repeated growth during warmup.
func (t *PageTable) Reserve(n int) {
	t.entries = dense.Grow(t.entries, n)
}

func (t *PageTable) grow(p addr.PageNum) {
	t.entries = dense.Grow(t.entries, int(p)+1)
}

// Lookup returns the page's mapping (zero value = Unmapped).
func (t *PageTable) Lookup(p addr.PageNum) Mapping {
	if int(p) >= len(t.entries) {
		return Mapping{}
	}
	return t.entries[p]
}

// MapCC installs a CC-NUMA mapping. The page must be unmapped.
func (t *PageTable) MapCC(p addr.PageNum) {
	if int(p) >= len(t.entries) {
		t.grow(p)
	}
	if t.entries[p].Kind != Unmapped {
		panic(fmt.Sprintf("osmodel: MapCC over existing mapping for page %d", p))
	}
	t.entries[p] = Mapping{Kind: MappedCC}
	t.mapped++
	t.faults++
}

// MapSCOMA installs an S-COMA mapping to a page-cache frame. Remapping
// from CC (relocation) is allowed; the caller must have flushed first.
func (t *PageTable) MapSCOMA(p addr.PageNum, frame int) {
	if int(p) >= len(t.entries) {
		t.grow(p)
	}
	if t.entries[p].Kind == Unmapped {
		t.mapped++
	}
	t.entries[p] = Mapping{Kind: MappedSCOMA, Frame: frame}
	t.faults++
}

// Unmap tears the mapping down (page-cache replacement, or the unmap step
// of a relocation).
func (t *PageTable) Unmap(p addr.PageNum) {
	if int(p) >= len(t.entries) || t.entries[p].Kind == Unmapped {
		return
	}
	t.entries[p] = Mapping{}
	t.mapped--
}

// Mapped reports how many remote pages are currently mapped.
func (t *PageTable) Mapped() int { return t.mapped }

// Faults reports how many mapping installs occurred.
func (t *PageTable) Faults() int64 { return t.faults }

// State returns a deep copy of the table's state (snapshot support): the
// dense entry table trimmed of trailing unmapped pages, plus the fault
// tally.
func (t *PageTable) State() (entries []Mapping, faults int64) {
	n := len(t.entries)
	for n > 0 && t.entries[n-1].Kind == Unmapped {
		n--
	}
	entries = make([]Mapping, n)
	copy(entries, t.entries[:n])
	return entries, t.faults
}

// SetState replaces the table's state (snapshot restore). The mapped
// count is recomputed from the entries.
func (t *PageTable) SetState(entries []Mapping, faults int64) {
	t.entries = append(t.entries[:0], entries...)
	t.mapped = 0
	for _, e := range t.entries {
		if e.Kind != Unmapped {
			t.mapped++
		}
	}
	t.faults = faults
}
