// Package osmodel models the per-node operating system state the paper's
// protocols rely on: a per-node page table with independent allocation
// decisions (Section 2), and the mapping kinds a remote page can be in.
//
// The actual costs of the OS operations (soft traps, TLB shootdowns, page
// allocation/replacement/relocation) come from the config package; the
// machine charges them when it invokes these transitions.
package osmodel

import (
	"fmt"

	"rnuma/internal/addr"
)

// Kind is how a node currently maps a remote page.
type Kind uint8

const (
	// Unmapped: the node has never touched the page, or its mapping was
	// torn down (page-cache replacement). The next reference faults.
	Unmapped Kind = iota
	// MappedCC: references go directly to the home's global physical
	// address; the block cache may intercept them.
	MappedCC
	// MappedSCOMA: references go to a local page-cache frame guarded by
	// fine-grain tags.
	MappedSCOMA
)

// String names the mapping kind.
func (k Kind) String() string {
	switch k {
	case Unmapped:
		return "unmapped"
	case MappedCC:
		return "cc"
	case MappedSCOMA:
		return "scoma"
	}
	return "?"
}

// Mapping is a page-table entry for a remote page.
type Mapping struct {
	Kind  Kind
	Frame int // page-cache frame when Kind == MappedSCOMA
}

// PageTable is one node's (remote-segment) page table.
type PageTable struct {
	m map[addr.PageNum]Mapping

	faults int64
}

// NewPageTable builds an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{m: make(map[addr.PageNum]Mapping)}
}

// Lookup returns the page's mapping (zero value = Unmapped).
func (t *PageTable) Lookup(p addr.PageNum) Mapping { return t.m[p] }

// MapCC installs a CC-NUMA mapping. The page must be unmapped.
func (t *PageTable) MapCC(p addr.PageNum) {
	if t.m[p].Kind != Unmapped {
		panic(fmt.Sprintf("osmodel: MapCC over existing mapping for page %d", p))
	}
	t.m[p] = Mapping{Kind: MappedCC}
	t.faults++
}

// MapSCOMA installs an S-COMA mapping to a page-cache frame. Remapping
// from CC (relocation) is allowed; the caller must have flushed first.
func (t *PageTable) MapSCOMA(p addr.PageNum, frame int) {
	t.m[p] = Mapping{Kind: MappedSCOMA, Frame: frame}
	t.faults++
}

// Unmap tears the mapping down (page-cache replacement, or the unmap step
// of a relocation).
func (t *PageTable) Unmap(p addr.PageNum) {
	delete(t.m, p)
}

// Mapped reports how many remote pages are currently mapped.
func (t *PageTable) Mapped() int { return len(t.m) }

// Faults reports how many mapping installs occurred.
func (t *PageTable) Faults() int64 { return t.faults }
