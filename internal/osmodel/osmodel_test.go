package osmodel

import (
	"testing"

	"rnuma/internal/addr"
)

func TestLifecycle(t *testing.T) {
	pt := NewPageTable()
	p := addr.PageNum(4)
	if pt.Lookup(p).Kind != Unmapped {
		t.Fatal("fresh table should be unmapped")
	}
	pt.MapCC(p)
	if pt.Lookup(p).Kind != MappedCC {
		t.Error("MapCC did not take")
	}
	// Relocation: CC -> S-COMA.
	pt.MapSCOMA(p, 5)
	mp := pt.Lookup(p)
	if mp.Kind != MappedSCOMA || mp.Frame != 5 {
		t.Errorf("after relocation: %+v", mp)
	}
	pt.Unmap(p)
	if pt.Lookup(p).Kind != Unmapped {
		t.Error("unmap did not take")
	}
	if pt.Faults() != 2 {
		t.Errorf("faults = %d, want 2", pt.Faults())
	}
}

func TestMapCCOverExistingPanics(t *testing.T) {
	pt := NewPageTable()
	pt.MapCC(1)
	defer func() {
		if recover() == nil {
			t.Error("double MapCC should panic")
		}
	}()
	pt.MapCC(1)
}

func TestBounceCycle(t *testing.T) {
	// The R-NUMA bounce: CC -> S-COMA -> (replacement) unmapped -> CC.
	pt := NewPageTable()
	p := addr.PageNum(1)
	pt.MapCC(p)
	pt.MapSCOMA(p, 0)
	pt.Unmap(p)
	pt.MapCC(p) // must not panic: the mapping was torn down
	if pt.Lookup(p).Kind != MappedCC {
		t.Error("bounce remap failed")
	}
}

func TestMappedCount(t *testing.T) {
	pt := NewPageTable()
	pt.MapCC(1)
	pt.MapSCOMA(2, 0)
	if pt.Mapped() != 2 {
		t.Errorf("mapped = %d, want 2", pt.Mapped())
	}
	pt.Unmap(1)
	if pt.Mapped() != 1 {
		t.Errorf("mapped = %d, want 1", pt.Mapped())
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Unmapped, MappedCC, MappedSCOMA} {
		if k.String() == "?" {
			t.Errorf("kind %d lacks a name", k)
		}
	}
}
