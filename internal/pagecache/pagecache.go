// Package pagecache implements the S-COMA page cache (paper Section 2.2):
// a region of main memory that caches remote pages at page granularity,
// with two-bit fine-grain access-control tags per block, an auxiliary
// translation table mapping local frames to global pages, and the paper's
// Least Recently Missed (LRM) replacement policy — the frame list is
// reordered only on remote misses, not on every reference.
package pagecache

import (
	"fmt"

	"rnuma/internal/addr"
)

// TagState is the fine-grain access-control state of one block in a frame
// (the paper's two bits per block).
type TagState uint8

const (
	// TagInvalid: access must be intercepted and fetched from home.
	TagInvalid TagState = iota
	// TagReadOnly: reads hit locally; writes need an upgrade.
	TagReadOnly
	// TagReadWrite: reads and writes hit locally.
	TagReadWrite
)

// String names the tag state.
func (t TagState) String() string {
	switch t {
	case TagInvalid:
		return "inv"
	case TagReadOnly:
		return "ro"
	case TagReadWrite:
		return "rw"
	}
	return "?"
}

// Policy selects the replacement policy.
type Policy int

const (
	// LRM is the paper's Least Recently Missed policy: the frame list is
	// reordered only on remote misses, approximating hardware miss
	// counters the OS samples at fault time (Section 4).
	LRM Policy = iota
	// LRU reorders on every access (hits included) — a conventional
	// policy requiring per-reference bookkeeping the paper's hardware
	// avoids; provided for the replacement-policy ablation.
	LRU
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRM:
		return "LRM"
	case LRU:
		return "LRU"
	}
	return "?"
}

// Frame is one page-cache frame: a page's worth of blocks plus tags.
type Frame struct {
	Page     addr.PageNum
	InUse    bool
	LastMiss int64 // LRM ordering key: time of the frame's last remote miss
	Tags     []TagState
	Dirty    []bool
	Versions []uint32
	// wasValid marks blocks that held data in this frame and were then
	// invalidated by coherence: a re-miss on such a block is a coherence
	// miss, not a cold fill.
	wasValid []bool
	valid    int
	dirty    int

	// MissStreak counts consecutive remote *coherence* misses with no
	// intervening local hit since the frame was (re)used — the demotion
	// extension's communication-page detector. Cold fills never count, so
	// a freshly relocated reuse page is not mistaken for a communication
	// page.
	MissStreak int
}

// ValidBlocks returns how many blocks currently hold data.
func (f *Frame) ValidBlocks() int { return f.valid }

// DirtyBlocks returns how many blocks must be flushed home on eviction.
func (f *Frame) DirtyBlocks() int { return f.dirty }

// DirtyList enumerates the offsets and versions of dirty blocks.
func (f *Frame) DirtyList() []BlockVersion {
	out := make([]BlockVersion, 0, f.dirty)
	for off, d := range f.Dirty {
		if d {
			out = append(out, BlockVersion{Off: off, Version: f.Versions[off]})
		}
	}
	return out
}

// BlockVersion pairs a block offset with the version held.
type BlockVersion struct {
	Off     int
	Version uint32
}

// Cache is the page cache plus its frame/page translation tables.
type Cache struct {
	frames        []Frame
	byPage        map[addr.PageNum]int
	free          []int
	blocksPerPage int
	policy        Policy

	hits         int64
	misses       int64
	allocations  int64
	replacements int64
}

// New builds a page cache with the given number of page frames and the
// paper's LRM replacement policy.
func New(frames, blocksPerPage int) *Cache {
	return NewWithPolicy(frames, blocksPerPage, LRM)
}

// NewWithPolicy builds a page cache with an explicit replacement policy.
// Every frame's tag/dirty/version arrays are carved out of flat backing
// slices up front, so Allocate never allocates: frame turnover sits on the
// simulator's page-operation path.
func NewWithPolicy(frames, blocksPerPage int, p Policy) *Cache {
	c := &Cache{
		frames:        make([]Frame, frames),
		byPage:        make(map[addr.PageNum]int, frames),
		free:          make([]int, 0, frames),
		blocksPerPage: blocksPerPage,
		policy:        p,
	}
	tags := make([]TagState, frames*blocksPerPage)
	dirty := make([]bool, frames*blocksPerPage)
	versions := make([]uint32, frames*blocksPerPage)
	wasValid := make([]bool, frames*blocksPerPage)
	for i := range c.frames {
		f := &c.frames[i]
		lo, hi := i*blocksPerPage, (i+1)*blocksPerPage
		f.Tags = tags[lo:hi:hi]
		f.Dirty = dirty[lo:hi:hi]
		f.Versions = versions[lo:hi:hi]
		f.wasValid = wasValid[lo:hi:hi]
	}
	for i := frames - 1; i >= 0; i-- {
		c.free = append(c.free, i)
	}
	return c
}

// Policy reports the replacement policy in force.
func (c *Cache) Policy() Policy { return c.policy }

// Frames returns the frame count.
func (c *Cache) Frames() int { return len(c.frames) }

// FreeFrames returns how many frames are unallocated.
func (c *Cache) FreeFrames() int { return len(c.free) }

// InUse returns how many frames hold pages.
func (c *Cache) InUse() int { return len(c.frames) - len(c.free) }

// FrameOf looks up the frame index holding a page (the reverse translation
// the node's page table would hold).
func (c *Cache) FrameOf(p addr.PageNum) (int, bool) {
	idx, ok := c.byPage[p]
	return idx, ok
}

// FrameAt returns the frame at an index for inspection.
func (c *Cache) FrameAt(idx int) *Frame { return &c.frames[idx] }

// PickVictim returns the least-recently-missed in-use frame. It does not
// evict; the caller flushes the victim's dirty blocks first and then calls
// Evict. Returns false if every frame is free.
func (c *Cache) PickVictim() (int, bool) {
	best, found := -1, false
	var bestMiss int64
	for i := range c.frames {
		f := &c.frames[i]
		if !f.InUse {
			continue
		}
		if !found || f.LastMiss < bestMiss || (f.LastMiss == bestMiss && i < best) {
			best, bestMiss, found = i, f.LastMiss, true
		}
	}
	return best, found
}

// Evict releases a frame, returning the page it held. The caller must have
// flushed dirty blocks already.
func (c *Cache) Evict(idx int) addr.PageNum {
	f := &c.frames[idx]
	if !f.InUse {
		panic("pagecache: evicting free frame")
	}
	p := f.Page
	delete(c.byPage, p)
	f.InUse = false
	f.valid, f.dirty = 0, 0
	c.free = append(c.free, idx)
	c.replacements++
	return p
}

// Allocate assigns a free frame to the page (the caller must ensure one is
// free, evicting first if necessary) and initializes all tags to invalid.
func (c *Cache) Allocate(p addr.PageNum, now int64) int {
	if len(c.free) == 0 {
		panic("pagecache: allocate with no free frames")
	}
	if _, dup := c.byPage[p]; dup {
		panic("pagecache: page already mapped")
	}
	idx := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	f := &c.frames[idx]
	for i := 0; i < c.blocksPerPage; i++ {
		f.Tags[i] = TagInvalid
		f.Dirty[i] = false
		f.Versions[i] = 0
		f.wasValid[i] = false
	}
	f.Page = p
	f.InUse = true
	f.LastMiss = now
	f.MissStreak = 0
	f.valid, f.dirty = 0, 0
	c.byPage[p] = idx
	c.allocations++
	return idx
}

// Tag returns the fine-grain tag for a block offset in a frame.
func (c *Cache) Tag(idx, off int) TagState { return c.frames[idx].Tags[off] }

// Version returns the version held for a block offset.
func (c *Cache) Version(idx, off int) uint32 { return c.frames[idx].Versions[off] }

// SetBlock installs or updates a block's tag, dirtiness, and version.
func (c *Cache) SetBlock(idx, off int, t TagState, dirty bool, ver uint32) {
	f := &c.frames[idx]
	old := f.Tags[off]
	if old == TagInvalid && t != TagInvalid {
		f.valid++
	}
	if old != TagInvalid && t == TagInvalid {
		f.valid--
	}
	wasDirty := f.Dirty[off]
	if !wasDirty && dirty {
		f.dirty++
	}
	if wasDirty && !dirty {
		f.dirty--
	}
	f.Tags[off] = t
	f.Dirty[off] = dirty
	f.Versions[off] = ver
}

// InvalidateBlock clears one block's tag (a coherence invalidation),
// returning whether it was dirty and its version.
func (c *Cache) InvalidateBlock(idx, off int) (wasDirty bool, ver uint32) {
	f := &c.frames[idx]
	if f.Tags[off] == TagInvalid {
		return false, 0
	}
	wasDirty, ver = f.Dirty[off], f.Versions[off]
	c.SetBlock(idx, off, TagInvalid, false, 0)
	f.wasValid[off] = true
	return wasDirty, ver
}

// TouchMiss records a remote miss on the frame, refreshing its LRM
// position.
func (c *Cache) TouchMiss(idx int, now int64) {
	c.frames[idx].LastMiss = now
}

// WasInvalidated reports whether the block previously held data in this
// frame and lost it to a coherence invalidation.
func (c *Cache) WasInvalidated(idx, off int) bool { return c.frames[idx].wasValid[off] }

// NoteCoherenceMiss grows the frame's communication-detector streak; the
// machine calls it for misses to previously-invalidated blocks only.
func (c *Cache) NoteCoherenceMiss(idx int) { c.frames[idx].MissStreak++ }

// TouchHit records a local hit. Under the paper's LRM policy this
// deliberately leaves the replacement ordering alone; under LRU it
// refreshes the frame. Either way it breaks the frame's miss streak (the
// page is demonstrably being reused locally).
func (c *Cache) TouchHit(idx int, now int64) {
	if c.policy == LRU {
		c.frames[idx].LastMiss = now
	}
	c.frames[idx].MissStreak = 0
}

// RecordHit and RecordMiss maintain access statistics.
func (c *Cache) RecordHit()  { c.hits++ }
func (c *Cache) RecordMiss() { c.misses++ }

// Hits, Misses, Allocations, Replacements expose statistics.
func (c *Cache) Hits() int64         { return c.hits }
func (c *Cache) Misses() int64       { return c.misses }
func (c *Cache) Allocations() int64  { return c.allocations }
func (c *Cache) Replacements() int64 { return c.replacements }

// FrameState is one frame's complete state in exported form (snapshot
// support). Free frames carry nil block slices: their contents are reset
// on the next Allocate, so only the free-stack position matters.
type FrameState struct {
	Page       addr.PageNum
	InUse      bool
	LastMiss   int64
	MissStreak int
	Tags       []TagState
	Dirty      []bool
	Versions   []uint32
	WasValid   []bool
}

// State is the page cache's complete state in exported form. Free lists
// frame indices in stack order; its order decides which frame the next
// Allocate picks, so restores must preserve it exactly.
type State struct {
	Frames []FrameState
	Free   []int

	Hits, Misses, Allocations, Replacements int64
}

// State returns a deep copy of the cache's state (snapshot support).
func (c *Cache) State() State {
	s := State{
		Frames:       make([]FrameState, len(c.frames)),
		Free:         append([]int(nil), c.free...),
		Hits:         c.hits,
		Misses:       c.misses,
		Allocations:  c.allocations,
		Replacements: c.replacements,
	}
	for i := range c.frames {
		f := &c.frames[i]
		fs := &s.Frames[i]
		fs.Page, fs.InUse, fs.LastMiss, fs.MissStreak = f.Page, f.InUse, f.LastMiss, f.MissStreak
		if f.InUse {
			fs.Tags = append([]TagState(nil), f.Tags...)
			fs.Dirty = append([]bool(nil), f.Dirty...)
			fs.Versions = append([]uint32(nil), f.Versions...)
			fs.WasValid = append([]bool(nil), f.wasValid...)
		}
	}
	return s
}

// SetState replaces the cache's state (snapshot restore), validating the
// snapshot's shape against this cache's frame count and page size. The
// per-frame valid/dirty tallies are recomputed from the restored tags.
func (c *Cache) SetState(s State) error {
	if len(s.Frames) != len(c.frames) {
		return fmt.Errorf("pagecache: snapshot has %d frames, cache has %d", len(s.Frames), len(c.frames))
	}
	if len(s.Free) > len(c.frames) {
		return fmt.Errorf("pagecache: snapshot frees %d of %d frames", len(s.Free), len(c.frames))
	}
	onFree := make([]bool, len(c.frames))
	for _, idx := range s.Free {
		if idx < 0 || idx >= len(c.frames) {
			return fmt.Errorf("pagecache: free index %d out of range", idx)
		}
		if onFree[idx] {
			return fmt.Errorf("pagecache: frame %d freed twice", idx)
		}
		if s.Frames[idx].InUse {
			return fmt.Errorf("pagecache: frame %d both free and in use", idx)
		}
		onFree[idx] = true
	}
	byPage := make(map[addr.PageNum]int, len(c.frames))
	for i := range s.Frames {
		fs := &s.Frames[i]
		if !fs.InUse {
			if !onFree[i] {
				return fmt.Errorf("pagecache: frame %d neither free nor in use", i)
			}
			continue
		}
		if len(fs.Tags) != c.blocksPerPage || len(fs.Dirty) != c.blocksPerPage ||
			len(fs.Versions) != c.blocksPerPage || len(fs.WasValid) != c.blocksPerPage {
			return fmt.Errorf("pagecache: frame %d snapshot sized for %d blocks/page, cache has %d",
				i, len(fs.Tags), c.blocksPerPage)
		}
		if _, dup := byPage[fs.Page]; dup {
			return fmt.Errorf("pagecache: page %d mapped to two frames", fs.Page)
		}
		byPage[fs.Page] = i
	}
	for i := range c.frames {
		f := &c.frames[i]
		fs := &s.Frames[i]
		f.Page, f.InUse, f.LastMiss, f.MissStreak = fs.Page, fs.InUse, fs.LastMiss, fs.MissStreak
		f.valid, f.dirty = 0, 0
		if !fs.InUse {
			continue
		}
		copy(f.Tags, fs.Tags)
		copy(f.Dirty, fs.Dirty)
		copy(f.Versions, fs.Versions)
		copy(f.wasValid, fs.WasValid)
		for off := 0; off < c.blocksPerPage; off++ {
			if f.Tags[off] != TagInvalid {
				f.valid++
			}
			if f.Dirty[off] {
				f.dirty++
			}
		}
	}
	c.free = append(c.free[:0], s.Free...)
	c.byPage = byPage
	c.hits, c.misses, c.allocations, c.replacements = s.Hits, s.Misses, s.Allocations, s.Replacements
	return nil
}
