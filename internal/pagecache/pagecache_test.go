package pagecache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnuma/internal/addr"
)

func TestAllocateLookup(t *testing.T) {
	c := New(4, 128)
	if c.Frames() != 4 || c.FreeFrames() != 4 || c.InUse() != 0 {
		t.Fatalf("fresh cache: frames=%d free=%d inuse=%d", c.Frames(), c.FreeFrames(), c.InUse())
	}
	idx := c.Allocate(addr.PageNum(7), 100)
	if got, ok := c.FrameOf(7); !ok || got != idx {
		t.Errorf("FrameOf(7) = %d,%v", got, ok)
	}
	if c.FreeFrames() != 3 || c.InUse() != 1 {
		t.Errorf("after alloc: free=%d inuse=%d", c.FreeFrames(), c.InUse())
	}
	f := c.FrameAt(idx)
	if f.Page != 7 || !f.InUse || f.LastMiss != 100 {
		t.Errorf("frame = %+v", f)
	}
	for off := 0; off < 128; off++ {
		if c.Tag(idx, off) != TagInvalid {
			t.Fatal("fresh frame has valid tags")
		}
	}
}

func TestSetBlockCounts(t *testing.T) {
	c := New(2, 128)
	idx := c.Allocate(1, 0)
	c.SetBlock(idx, 0, TagReadOnly, false, 5)
	c.SetBlock(idx, 1, TagReadWrite, true, 6)
	f := c.FrameAt(idx)
	if f.ValidBlocks() != 2 || f.DirtyBlocks() != 1 {
		t.Errorf("valid=%d dirty=%d, want 2/1", f.ValidBlocks(), f.DirtyBlocks())
	}
	// Upgrading in place must not double count.
	c.SetBlock(idx, 0, TagReadWrite, true, 7)
	if f.ValidBlocks() != 2 || f.DirtyBlocks() != 2 {
		t.Errorf("after upgrade: valid=%d dirty=%d, want 2/2", f.ValidBlocks(), f.DirtyBlocks())
	}
	if c.Version(idx, 0) != 7 {
		t.Errorf("version = %d, want 7", c.Version(idx, 0))
	}
	dl := f.DirtyList()
	if len(dl) != 2 || dl[0].Off != 0 || dl[1].Off != 1 {
		t.Errorf("dirty list = %+v", dl)
	}
}

func TestInvalidateBlock(t *testing.T) {
	c := New(2, 128)
	idx := c.Allocate(1, 0)
	c.SetBlock(idx, 3, TagReadWrite, true, 9)
	wasDirty, ver := c.InvalidateBlock(idx, 3)
	if !wasDirty || ver != 9 {
		t.Errorf("invalidate = %v,%d", wasDirty, ver)
	}
	if c.Tag(idx, 3) != TagInvalid {
		t.Error("tag still valid")
	}
	if f := c.FrameAt(idx); f.ValidBlocks() != 0 || f.DirtyBlocks() != 0 {
		t.Error("counts not decremented")
	}
	if wasDirty, _ := c.InvalidateBlock(idx, 3); wasDirty {
		t.Error("double invalidate reported dirty")
	}
}

// TestLRMPolicy verifies Least Recently Missed: the victim is the frame
// with the oldest last-miss time, and hits do not refresh it.
func TestLRMPolicy(t *testing.T) {
	c := New(3, 128)
	a := c.Allocate(10, 100)
	b := c.Allocate(20, 200)
	d := c.Allocate(30, 300)
	_ = b
	_ = d
	// Page 10 missed longest ago; "hits" (which never call TouchMiss)
	// must not save it.
	vidx, ok := c.PickVictim()
	if !ok || vidx != a {
		t.Fatalf("victim = frame %d, want %d (page 10)", vidx, a)
	}
	// A remote miss on page 10 refreshes it; page 20 becomes the victim.
	c.TouchMiss(a, 400)
	vidx, _ = c.PickVictim()
	if c.FrameAt(vidx).Page != 20 {
		t.Errorf("victim after touch = page %d, want 20", c.FrameAt(vidx).Page)
	}
}

func TestEvictFreesFrame(t *testing.T) {
	c := New(2, 128)
	idx := c.Allocate(5, 1)
	c.SetBlock(idx, 0, TagReadWrite, true, 1)
	page := c.Evict(idx)
	if page != 5 {
		t.Errorf("evicted page = %d, want 5", page)
	}
	if _, ok := c.FrameOf(5); ok {
		t.Error("evicted page still mapped")
	}
	if c.FreeFrames() != 2 {
		t.Errorf("free = %d, want 2", c.FreeFrames())
	}
	// The freed frame must come back clean.
	idx2 := c.Allocate(6, 2)
	for off := 0; off < 128; off++ {
		if c.Tag(idx2, off) != TagInvalid {
			t.Fatal("recycled frame not cleaned")
		}
	}
	if c.Replacements() != 1 || c.Allocations() != 2 {
		t.Errorf("repl=%d alloc=%d", c.Replacements(), c.Allocations())
	}
}

func TestAllocatePanics(t *testing.T) {
	c := New(1, 128)
	c.Allocate(1, 0)
	t.Run("no free frames", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Allocate(2, 0)
	})
	t.Run("duplicate page", func(t *testing.T) {
		c := New(2, 128)
		c.Allocate(1, 0)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Allocate(1, 0)
	})
	t.Run("evict free frame", func(t *testing.T) {
		c := New(2, 128)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Evict(0)
	})
}

func TestPickVictimEmpty(t *testing.T) {
	c := New(2, 128)
	if _, ok := c.PickVictim(); ok {
		t.Error("empty cache offered a victim")
	}
}

// TestLRMVictimProperty: across random allocate/touch sequences, the
// picked victim always has the minimum LastMiss among in-use frames.
func TestLRMVictimProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(8, 16)
		now := int64(0)
		next := addr.PageNum(0)
		for op := 0; op < 300; op++ {
			now += int64(rng.Intn(10) + 1)
			if c.FreeFrames() > 0 && rng.Intn(2) == 0 {
				c.Allocate(next, now)
				next++
				continue
			}
			if c.InUse() == 0 {
				continue
			}
			if rng.Intn(2) == 0 {
				// Touch a random in-use frame.
				for {
					i := rng.Intn(8)
					if c.FrameAt(i).InUse {
						c.TouchMiss(i, now)
						break
					}
				}
				continue
			}
			vidx, ok := c.PickVictim()
			if !ok {
				return false
			}
			vm := c.FrameAt(vidx).LastMiss
			for i := 0; i < 8; i++ {
				f := c.FrameAt(i)
				if f.InUse && f.LastMiss < vm {
					return false
				}
			}
			c.Evict(vidx)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTagStrings(t *testing.T) {
	for _, s := range []TagState{TagInvalid, TagReadOnly, TagReadWrite} {
		if s.String() == "?" {
			t.Errorf("tag %d lacks a name", s)
		}
	}
}

func TestHitMissStats(t *testing.T) {
	c := New(1, 16)
	c.RecordHit()
	c.RecordMiss()
	c.RecordMiss()
	if c.Hits() != 1 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestLRUPolicyRefreshesOnHit(t *testing.T) {
	c := NewWithPolicy(2, 16, LRU)
	if c.Policy() != LRU {
		t.Fatal("policy not stored")
	}
	a := c.Allocate(1, 100)
	c.Allocate(2, 200)
	// A hit on the older frame refreshes it under LRU...
	c.TouchHit(a, 300)
	if v, _ := c.PickVictim(); c.FrameAt(v).Page != 2 {
		t.Errorf("LRU victim = page %d, want 2 (page 1 was hit)", c.FrameAt(v).Page)
	}
	// ...but not under the paper's LRM.
	lrm := New(2, 16)
	a = lrm.Allocate(1, 100)
	lrm.Allocate(2, 200)
	lrm.TouchHit(a, 300)
	if v, _ := lrm.PickVictim(); lrm.FrameAt(v).Page != 1 {
		t.Errorf("LRM victim = page %d, want 1 (hits do not refresh)", lrm.FrameAt(v).Page)
	}
}

func TestMissStreak(t *testing.T) {
	c := New(2, 16)
	idx := c.Allocate(1, 0)
	if c.FrameAt(idx).MissStreak != 0 {
		t.Fatal("fresh frame has a streak")
	}
	// Cold fills never grow the streak (TouchMiss alone is LRM ordering).
	c.TouchMiss(idx, 1)
	if c.FrameAt(idx).MissStreak != 0 {
		t.Error("cold miss grew the streak")
	}
	// A coherence-invalidated block's re-miss does.
	c.SetBlock(idx, 3, TagReadOnly, false, 1)
	if c.WasInvalidated(idx, 3) {
		t.Error("valid block reported as invalidated")
	}
	c.InvalidateBlock(idx, 3)
	if !c.WasInvalidated(idx, 3) {
		t.Fatal("invalidation not remembered")
	}
	c.NoteCoherenceMiss(idx)
	c.NoteCoherenceMiss(idx)
	if c.FrameAt(idx).MissStreak != 2 {
		t.Errorf("streak = %d, want 2", c.FrameAt(idx).MissStreak)
	}
	c.TouchHit(idx, 3)
	if c.FrameAt(idx).MissStreak != 0 {
		t.Error("hit did not break the streak")
	}
	// Reallocation starts clean.
	c.NoteCoherenceMiss(idx)
	c.Evict(idx)
	idx2 := c.Allocate(2, 5)
	if c.FrameAt(idx2).MissStreak != 0 || c.WasInvalidated(idx2, 3) {
		t.Error("recycled frame kept streak or invalidation history")
	}
}

func TestPolicyStrings(t *testing.T) {
	if LRM.String() != "LRM" || LRU.String() != "LRU" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "?" {
		t.Error("unknown policy should render ?")
	}
}

// TestLRMAllocationFree pins the replacement hot path: with the cache
// full, a pick-victim/evict/allocate cycle (the LRM replacement S-COMA
// performs on every page-cache miss) never allocates.
func TestLRMAllocationFree(t *testing.T) {
	c := New(4, 8)
	for p := 0; p < 4; p++ {
		c.Allocate(addr.PageNum(p), int64(p))
	}
	now := int64(100)
	next := addr.PageNum(10)
	if n := testing.AllocsPerRun(500, func() {
		idx, ok := c.PickVictim()
		if !ok {
			t.Fatal("full cache has no victim")
		}
		c.Evict(idx)
		c.Allocate(next, now)
		c.SetBlock(idx, 3, TagReadWrite, true, uint32(now))
		next = (next + 1) % 16
		now++
	}); n != 0 {
		t.Errorf("steady-state LRM replacement allocates %.1f times", n)
	}
}
