// Package profiling is the CLIs' shared pprof plumbing: one call starts
// the requested profiles, the returned stop function flushes them. The
// bench gate tells us *that* a hot path regressed; these profiles are how
// a regression gets diagnosed.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile and/or arranges a heap profile according to
// the (possibly empty) file paths. The returned stop function stops the
// CPU profile and writes the heap profile; call it exactly once, after
// the workload under measurement has finished. Start(_, "") with both
// paths empty returns a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// An explicit collection first, so the profile reflects live
			// objects rather than whatever the last automatic GC left.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
