package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Something to sample, however briefly.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("%s: missing or empty (err=%v)", filepath.Base(p), err)
		}
	}
}

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop errored: %v", err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Error("unwritable CPU path accepted")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("unwritable heap path flushed without error")
	}
}
