// Package rad assembles the per-node Remote Access Device for each of the
// three designs (paper Figures 2a, 3a, 4a):
//
//   - CC-NUMA: protocol FSM + directory + SRAM block cache.
//   - S-COMA: protocol FSM + directory + fine-grain tags + translation
//     table + main-memory page cache.
//   - R-NUMA: all of the above plus the reactive per-page refetch
//     counters.
//
// The RAD's protocol controller is a contended resource: every remote
// transaction the node originates or services occupies it.
package rad

import (
	"rnuma/internal/blockcache"
	"rnuma/internal/config"
	"rnuma/internal/core"
	"rnuma/internal/event"
	"rnuma/internal/pagecache"
)

// RAD is one node's remote access device.
type RAD struct {
	Protocol config.Protocol

	// BlockCache is present for CC-NUMA and R-NUMA.
	BlockCache *blockcache.Cache

	// PageCache (with its fine-grain tags and translation table) is
	// present for S-COMA and R-NUMA.
	PageCache *pagecache.Cache

	// Counters are R-NUMA's reactive per-page refetch counters.
	Counters *core.Counters

	// Ctl is the protocol controller occupancy (contention point).
	Ctl event.Resource
}

// New builds the RAD dictated by the system configuration.
func New(sys config.System) *RAD {
	r := &RAD{Protocol: sys.Protocol}
	switch sys.Protocol {
	case config.CCNUMA:
		r.BlockCache = blockcache.New(sys.BlockCacheBlocks())
	case config.SCOMA:
		r.PageCache = pagecache.NewWithPolicy(sys.PageCacheFrames(), sys.Geometry.BlocksPerPage(), sys.PageReplacement)
	case config.RNUMA:
		r.BlockCache = blockcache.New(sys.BlockCacheBlocks())
		r.PageCache = pagecache.NewWithPolicy(sys.PageCacheFrames(), sys.Geometry.BlocksPerPage(), sys.PageReplacement)
		r.Counters = core.NewCounters(sys.Threshold)
	}
	return r
}

// HasBlockCache reports whether this design caches remote blocks in SRAM.
func (r *RAD) HasBlockCache() bool { return r.BlockCache != nil }

// HasPageCache reports whether this design caches remote pages in memory.
func (r *RAD) HasPageCache() bool { return r.PageCache != nil }

// Reactive reports whether this design relocates pages reactively.
func (r *RAD) Reactive() bool { return r.Counters != nil }
