package rad

import (
	"testing"

	"rnuma/internal/config"
)

func TestCCNUMADevices(t *testing.T) {
	r := New(config.Base(config.CCNUMA))
	if !r.HasBlockCache() {
		t.Error("CC-NUMA RAD lacks a block cache")
	}
	if r.HasPageCache() || r.Reactive() {
		t.Error("CC-NUMA RAD has S-COMA/R-NUMA hardware")
	}
	if r.BlockCache.Frames() != 1024 {
		t.Errorf("block cache frames = %d, want 1024 (32 KB / 32 B)", r.BlockCache.Frames())
	}
}

func TestSCOMADevices(t *testing.T) {
	r := New(config.Base(config.SCOMA))
	if r.HasBlockCache() || r.Reactive() {
		t.Error("S-COMA RAD has CC-NUMA/R-NUMA hardware")
	}
	if !r.HasPageCache() {
		t.Fatal("S-COMA RAD lacks a page cache")
	}
	if r.PageCache.Frames() != 80 {
		t.Errorf("page cache frames = %d, want 80 (320 KB / 4 KB)", r.PageCache.Frames())
	}
}

func TestRNUMADevices(t *testing.T) {
	r := New(config.Base(config.RNUMA))
	if !r.HasBlockCache() || !r.HasPageCache() || !r.Reactive() {
		t.Fatal("R-NUMA RAD must combine all devices (paper Figure 4a)")
	}
	if r.BlockCache.Frames() != 4 {
		t.Errorf("block cache frames = %d, want 4 (128 B)", r.BlockCache.Frames())
	}
	if r.Counters.Threshold() != 64 {
		t.Errorf("threshold = %d, want 64", r.Counters.Threshold())
	}
}

func TestIdealDevices(t *testing.T) {
	r := New(config.Ideal())
	if !r.BlockCache.Infinite() {
		t.Error("ideal machine should have an infinite block cache")
	}
}

func TestControllerIsAResource(t *testing.T) {
	r := New(config.Base(config.RNUMA))
	start := r.Ctl.Acquire(100, 26)
	if start != 100 {
		t.Errorf("idle controller acquired at %d", start)
	}
	if s := r.Ctl.Acquire(100, 26); s != 126 {
		t.Errorf("busy controller acquired at %d, want 126", s)
	}
}
