package report

import (
	"fmt"
	"io"
	"strings"

	"rnuma/internal/harness"
)

// This file renders two-axis grid sweeps: a glyph heat map of the
// per-cell R-NUMA/best ratio for shape-at-a-glance reading, the exact
// numbers underneath, and the knee conclusions (harness.FindKnee) per
// row and column so the report states where R-NUMA stops tracking the
// better base protocol instead of leaving the table to the reader.

// gridRamp is the fixed glyph ramp for heat-map cells: each entry is
// the glyph for ratios at or below its bound, and ratios beyond the
// last bound render as '@'. Fixed (not data-scaled) so two heat maps
// are comparable at a glance and CI diffs are stable.
var gridRamp = []struct {
	bound float64
	glyph byte
}{
	{1.01, '.'},
	{1.05, ':'},
	{1.10, '-'},
	{1.25, '+'},
	{1.50, '*'},
	{2.00, '#'},
}

// gridGlyph maps one cell's R-NUMA/best ratio onto the ramp.
func gridGlyph(ratio float64) byte {
	for _, r := range gridRamp {
		if ratio <= r.bound {
			return r.glyph
		}
	}
	return '@'
}

// Grid renders a two-axis grid sweep: heat map, exact table, and knee
// summaries. bound is the knee bound (<= 0 selects the harness
// default).
func Grid(w io.Writer, g *harness.Grid, bound float64) {
	if bound <= 0 {
		bound = harness.DefaultKneeBound
	}
	fmt.Fprintf(w, "GRID — %s: %s (x) x %s (y), %dx%d cells\n", g.Workload, g.AxisX, g.AxisY, len(g.XValues), len(g.YValues))
	fmt.Fprintf(w, "(per-cell R-NUMA over the better base protocol; the %s transform applies before %s)\n", g.AxisX, g.AxisY)
	fmt.Fprintln(w)

	yw := 0
	for _, l := range g.YLabels {
		yw = max(yw, len(l))
	}

	fmt.Fprint(w, "heat map (R-NUMA/best):")
	for _, r := range gridRamp {
		fmt.Fprintf(w, "  %c <=%.2f", r.glyph, r.bound)
	}
	fmt.Fprintln(w, "  @ beyond")
	for i := range g.Cells {
		fmt.Fprintf(w, "  %*s  ", yw, g.YLabels[i])
		for j := range g.Cells[i] {
			if j > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%c", gridGlyph(g.Cells[i][j].RNUMAOverBest()))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %*s  columns (x): %s\n", yw, "", strings.Join(g.XLabels, ", "))
	fmt.Fprintln(w)

	// Exact numbers: one row per Y value, one column per X value.
	cw := make([]int, len(g.XLabels))
	for j, l := range g.XLabels {
		cw[j] = max(6, len(l))
	}
	fmt.Fprintf(w, "R-NUMA/best per cell:\n")
	fmt.Fprintf(w, "  %*s", yw, "")
	for j, l := range g.XLabels {
		fmt.Fprintf(w, "  %*s", cw[j], l)
	}
	fmt.Fprintln(w)
	for i := range g.Cells {
		fmt.Fprintf(w, "  %*s", yw, g.YLabels[i])
		for j := range g.Cells[i] {
			fmt.Fprintf(w, "  %*.2f", cw[j], g.Cells[i][j].RNUMAOverBest())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "knees (R-NUMA/best bound %.2f):\n", bound)
	for i := range g.Cells {
		k := harness.FindKnee(g.Row(i), bound)
		fmt.Fprintf(w, "  row %*s (%s axis): %s\n", yw, g.YLabels[i], g.AxisX, k)
	}
	xw := 0
	for _, l := range g.XLabels {
		xw = max(xw, len(l))
	}
	for j := range g.XLabels {
		k := harness.FindKnee(g.Col(j), bound)
		fmt.Fprintf(w, "  col %*s (%s axis): %s\n", xw, g.XLabels[j], g.AxisY, k)
	}

	worst, wi, wj := 0.0, 0, 0
	for i := range g.Cells {
		for j := range g.Cells[i] {
			if r := g.Cells[i][j].RNUMAOverBest(); r > worst {
				worst, wi, wj = r, i, j
			}
		}
	}
	fmt.Fprintf(w, "worst cell: %.2fx at (%s, %s)\n", worst, g.XLabels[wj], g.YLabels[wi])
}
