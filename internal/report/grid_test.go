package report

import (
	"strings"
	"testing"

	"rnuma/internal/harness"
)

// testGrid builds a 2x2 block x threshold grid whose bottom-right cell
// breaks the default bound (ratio 1.50).
func testGrid() *harness.Grid {
	return &harness.Grid{
		Workload: "fft",
		AxisX:    harness.AxisBlockSize,
		AxisY:    harness.AxisThreshold,
		XValues:  []harness.SweepValue{harness.IntValue(32), harness.IntValue(64)},
		XLabels:  []string{"b=32B", "b=64B"},
		YValues:  []harness.SweepValue{harness.IntValue(16), harness.IntValue(64)},
		YLabels:  []string{"T=16", "T=64"},
		Cells: [][]harness.GridCell{
			{
				{Nodes: 8, CPUsPerNode: 4, CCNUMA: 1.2, SCOMA: 1.5, RNUMA: 1.2},
				{Nodes: 8, CPUsPerNode: 4, CCNUMA: 1.2, SCOMA: 1.5, RNUMA: 1.25},
			},
			{
				{Nodes: 8, CPUsPerNode: 4, CCNUMA: 1.2, SCOMA: 1.5, RNUMA: 1.26},
				{Nodes: 8, CPUsPerNode: 4, CCNUMA: 1.0, SCOMA: 1.5, RNUMA: 1.5},
			},
		},
	}
}

func TestGridRendering(t *testing.T) {
	var b strings.Builder
	Grid(&b, testGrid(), 0)
	out := b.String()
	for _, want := range []string{
		"GRID — fft: block (x) x threshold (y), 2x2 cells",
		"heat map (R-NUMA/best):",
		"columns (x): b=32B, b=64B",
		"R-NUMA/best per cell:",
		"knees (R-NUMA/best bound 1.10):",
		"row T=16 (block axis): within 1.10x everywhere (max 1.04x at b=64B)",
		"col b=64B (threshold axis): exceeds 1.10x at T=64 (1.50x), worst 1.50x at T=64",
		"worst cell: 1.50x at (b=64B, T=64)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q (output:\n%s)", want, out)
		}
	}
	// The heat-map rows carry the ramp glyphs: 1.00 -> '.', 1.50 -> '*'.
	if !strings.Contains(out, "T=16  . :") || !strings.Contains(out, "T=64  : *") {
		t.Errorf("heat-map glyph rows wrong:\n%s", out)
	}
}

func TestNewGridDoc(t *testing.T) {
	doc := NewGridDoc(testGrid(), 0)
	if doc.Workload != "fft" || doc.AxisX != "block" || doc.AxisY != "threshold" {
		t.Fatalf("doc identity = %+v", doc)
	}
	if doc.Bound != harness.DefaultKneeBound {
		t.Errorf("bound = %v, want default", doc.Bound)
	}
	if len(doc.Cells) != 2 || len(doc.Cells[0]) != 2 {
		t.Fatalf("cells = %+v", doc.Cells)
	}
	if doc.Cells[1][1].RNUMAOverBest != 1.5 || doc.WorstRNUMAOverBest != 1.5 {
		t.Errorf("worst ratio = %v / %v, want 1.5", doc.Cells[1][1].RNUMAOverBest, doc.WorstRNUMAOverBest)
	}
	// Two rows + two columns of knees; the breaking column carries the
	// crossing point, a clean row does not.
	if len(doc.Knees) != 4 {
		t.Fatalf("knees = %+v", doc.Knees)
	}
	byLine := map[string]KneeDoc{}
	for _, k := range doc.Knees {
		byLine[k.Line] = k
	}
	if k := byLine["row T=16"]; k.Index != -1 || k.Label != "" || k.MaxLabel != "b=64B" {
		t.Errorf("row T=16 knee = %+v", k)
	}
	if k := byLine["col b=64B"]; k.Index != 1 || k.Label != "T=64" || k.Value != "64" || k.Ratio != 1.5 {
		t.Errorf("col b=64B knee = %+v", k)
	}
}

// TestSensitivityLongLabels pins the data-sized label column: variant
// labels longer than the old fixed 16-character pad must not shear the
// numeric columns out of alignment.
func TestSensitivityLongLabels(t *testing.T) {
	long := "b=128B, T=1024 (composed)" // 25 chars, overflows a fixed %-16s
	var b strings.Builder
	Sensitivity(&b, "em3d", harness.AxisBlockSize, []harness.AxisPoint{
		{Axis: harness.AxisBlockSize, Label: "b=16B", CCNUMA: 1.2, SCOMA: 1.5, RNUMA: 1.25},
		{Axis: harness.AxisBlockSize, Label: long, CCNUMA: 1.1, SCOMA: 1.3, RNUMA: 1.15},
	})
	var table []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, "CC-NUMA") || strings.HasPrefix(line, "---") || strings.Contains(line, "b=1") {
			table = append(table, line)
		}
	}
	if len(table) != 4 {
		t.Fatalf("table lines = %q", table)
	}
	for _, line := range table[1:] {
		if len(line) != len(table[0]) {
			t.Errorf("misaligned table line (%d vs %d chars):\n%q\n%q", len(line), len(table[0]), table[0], line)
		}
	}
	if !strings.Contains(b.String(), long+" ") {
		t.Errorf("long label truncated:\n%s", b.String())
	}
}
