package report

import (
	"rnuma/internal/harness"
	"rnuma/internal/stats"
)

// This file is the report package's machine-readable surface: the same
// results the text renderers print, as JSON document types. The serve
// daemon returns these from /jobs/{id}/report?format=json; the text
// renderers remain the human format. stats.Run marshals wholesale
// (PageKey is text-marshalable), so the docs embed runs directly.

// RunDoc is one run's counters plus context (the JSON form of
// RunSummary).
type RunDoc struct {
	Name   string     `json:"name"`
	System string     `json:"system"`
	Run    *stats.Run `json:"run"`
	// Normalized is execution time relative to the ideal baseline; zero
	// when no baseline was computed.
	Normalized float64 `json:"normalized,omitempty"`
}

// NewRunDoc builds a RunDoc; baseline may be nil.
func NewRunDoc(name, system string, r, baseline *stats.Run) RunDoc {
	d := RunDoc{Name: name, System: system, Run: r}
	if baseline != nil {
		d.Normalized = r.Normalized(baseline)
	}
	return d
}

// PointDoc is one sweep point's result (the JSON form of a Sensitivity
// table row).
type PointDoc struct {
	Label       string  `json:"label"`
	Value       string  `json:"value"`
	Nodes       int     `json:"nodes,omitempty"`
	CPUsPerNode int     `json:"cpusPerNode,omitempty"`
	CCNUMA      float64 `json:"ccnuma"`
	SCOMA       float64 `json:"scoma"`
	RNUMA       float64 `json:"rnuma"`
	// RNUMAOverBest is R-NUMA's time over the better base protocol at
	// this point (the paper's bounded-worst-case ratio).
	RNUMAOverBest float64 `json:"rnumaOverBest"`
}

// SensitivityDoc is a one-axis sweep's results (the JSON form of
// Sensitivity).
type SensitivityDoc struct {
	Workload string     `json:"workload"`
	Axis     string     `json:"axis"`
	Points   []PointDoc `json:"points"`
	// WorstRNUMAOverBest is the headline bound: the worst R-NUMA-vs-best
	// ratio across the axis.
	WorstRNUMAOverBest float64 `json:"worstRnumaOverBest"`
}

// NewSensitivityDoc builds a SensitivityDoc from sweep points.
func NewSensitivityDoc(workload string, axis harness.Axis, points []harness.AxisPoint) SensitivityDoc {
	d := SensitivityDoc{Workload: workload, Axis: axis.String(), Points: make([]PointDoc, 0, len(points))}
	for _, p := range points {
		d.Points = append(d.Points, PointDoc{
			Label:         p.Label,
			Value:         p.Value.String(),
			Nodes:         p.Nodes,
			CPUsPerNode:   p.CPUsPerNode,
			CCNUMA:        p.CCNUMA,
			SCOMA:         p.SCOMA,
			RNUMA:         p.RNUMA,
			RNUMAOverBest: p.RNUMAOverBest(),
		})
		if v := p.RNUMAOverBest(); v > d.WorstRNUMAOverBest {
			d.WorstRNUMAOverBest = v
		}
	}
	return d
}

// DeltaDoc is a two-run comparison (the JSON form of DeltaTable).
type DeltaDoc struct {
	A         string `json:"a"`
	B         string `json:"b"`
	Identical bool   `json:"identical"`
	Differing int    `json:"differing"`
	// Counters lists only counters whose values differ; the full table
	// is reconstructable from the two RunDocs.
	Counters              []stats.CounterDelta `json:"counters,omitempty"`
	RefetchDigestA        string               `json:"refetchDigestA"`
	RefetchDigestB        string               `json:"refetchDigestB"`
	RefetchPagesDiffering int                  `json:"refetchPagesDiffering,omitempty"`
}

// NewDeltaDoc builds a DeltaDoc from a stats.Diff result.
func NewDeltaDoc(nameA, nameB string, d *stats.RunDelta) DeltaDoc {
	doc := DeltaDoc{
		A:                     nameA,
		B:                     nameB,
		Identical:             d.Identical(),
		Differing:             d.Differing,
		RefetchDigestA:        d.RefetchDigestA,
		RefetchDigestB:        d.RefetchDigestB,
		RefetchPagesDiffering: d.RefetchPagesDiffering,
	}
	for _, c := range d.Counters {
		if c.Delta != 0 {
			doc.Counters = append(doc.Counters, c)
		}
	}
	return doc
}

// FigureDoc is one paper figure or table's rows. Rows is the harness's
// own row type for the figure (Fig5Curve, Fig6Row, ... — all plainly
// marshalable), so the JSON mirrors what the text renderer consumed.
type FigureDoc struct {
	Figure string `json:"figure"`
	Rows   any    `json:"rows"`
}
