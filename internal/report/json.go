package report

import (
	"rnuma/internal/harness"
	"rnuma/internal/stats"
)

// This file is the report package's machine-readable surface: the same
// results the text renderers print, as JSON document types. The serve
// daemon returns these from /jobs/{id}/report?format=json; the text
// renderers remain the human format. stats.Run marshals wholesale
// (PageKey is text-marshalable), so the docs embed runs directly.

// RunDoc is one run's counters plus context (the JSON form of
// RunSummary).
type RunDoc struct {
	Name   string     `json:"name"`
	System string     `json:"system"`
	Run    *stats.Run `json:"run"`
	// Normalized is execution time relative to the ideal baseline; zero
	// when no baseline was computed.
	Normalized float64 `json:"normalized,omitempty"`
}

// NewRunDoc builds a RunDoc; baseline may be nil.
func NewRunDoc(name, system string, r, baseline *stats.Run) RunDoc {
	d := RunDoc{Name: name, System: system, Run: r}
	if baseline != nil {
		d.Normalized = r.Normalized(baseline)
	}
	return d
}

// PointDoc is one sweep point's result (the JSON form of a Sensitivity
// table row).
type PointDoc struct {
	Label       string  `json:"label"`
	Value       string  `json:"value"`
	Nodes       int     `json:"nodes,omitempty"`
	CPUsPerNode int     `json:"cpusPerNode,omitempty"`
	CCNUMA      float64 `json:"ccnuma"`
	SCOMA       float64 `json:"scoma"`
	RNUMA       float64 `json:"rnuma"`
	// RNUMAOverBest is R-NUMA's time over the better base protocol at
	// this point (the paper's bounded-worst-case ratio).
	RNUMAOverBest float64 `json:"rnumaOverBest"`
}

// SensitivityDoc is a one-axis sweep's results (the JSON form of
// Sensitivity).
type SensitivityDoc struct {
	Workload string     `json:"workload"`
	Axis     string     `json:"axis"`
	Points   []PointDoc `json:"points"`
	// WorstRNUMAOverBest is the headline bound: the worst R-NUMA-vs-best
	// ratio across the axis.
	WorstRNUMAOverBest float64 `json:"worstRnumaOverBest"`
}

// NewSensitivityDoc builds a SensitivityDoc from sweep points.
func NewSensitivityDoc(workload string, axis harness.Axis, points []harness.AxisPoint) SensitivityDoc {
	d := SensitivityDoc{Workload: workload, Axis: axis.String(), Points: make([]PointDoc, 0, len(points))}
	for _, p := range points {
		d.Points = append(d.Points, PointDoc{
			Label:         p.Label,
			Value:         p.Value.String(),
			Nodes:         p.Nodes,
			CPUsPerNode:   p.CPUsPerNode,
			CCNUMA:        p.CCNUMA,
			SCOMA:         p.SCOMA,
			RNUMA:         p.RNUMA,
			RNUMAOverBest: p.RNUMAOverBest(),
		})
		if v := p.RNUMAOverBest(); v > d.WorstRNUMAOverBest {
			d.WorstRNUMAOverBest = v
		}
	}
	return d
}

// GridCellDoc is one grid cell's result (the JSON form of a heat-map
// cell plus its exact numbers).
type GridCellDoc struct {
	Nodes         int     `json:"nodes,omitempty"`
	CPUsPerNode   int     `json:"cpusPerNode,omitempty"`
	CCNUMA        float64 `json:"ccnuma"`
	SCOMA         float64 `json:"scoma"`
	RNUMA         float64 `json:"rnuma"`
	RNUMAOverBest float64 `json:"rnumaOverBest"`
}

// KneeDoc is one grid line's knee conclusion (the JSON form of a
// harness.Knee): where the line first exceeds the bound, and its worst
// point.
type KneeDoc struct {
	// Line names the grid line: "row <ylabel>" or "col <xlabel>".
	Line  string  `json:"line"`
	Bound float64 `json:"bound"`
	// Index is the first point exceeding Bound, -1 when the line stays
	// within it; Label/Value/Ratio describe that point when Index >= 0.
	Index int     `json:"index"`
	Label string  `json:"label,omitempty"`
	Value string  `json:"value,omitempty"`
	Ratio float64 `json:"ratio,omitempty"`
	// MaxLabel/MaxRatio are the line's worst point (saturation plateau).
	MaxLabel string  `json:"maxLabel"`
	MaxRatio float64 `json:"maxRatio"`
	// Summary is the rendered one-line conclusion.
	Summary string `json:"summary"`
}

// newKneeDoc converts a harness.Knee for one named line.
func newKneeDoc(line string, k harness.Knee) KneeDoc {
	d := KneeDoc{
		Line:     line,
		Bound:    k.Bound,
		Index:    k.Index,
		MaxLabel: k.MaxLabel,
		MaxRatio: k.MaxRatio,
		Summary:  k.String(),
	}
	if k.Index >= 0 {
		d.Label, d.Value, d.Ratio = k.Label, k.Value.String(), k.Ratio
	}
	return d
}

// GridDoc is a two-axis grid sweep's results (the JSON form of Grid):
// Cells[i][j] is the cell at (XValues[j], YValues[i]).
type GridDoc struct {
	Workload string          `json:"workload"`
	AxisX    string          `json:"axisX"`
	AxisY    string          `json:"axisY"`
	XValues  []string        `json:"xValues"`
	XLabels  []string        `json:"xLabels"`
	YValues  []string        `json:"yValues"`
	YLabels  []string        `json:"yLabels"`
	Cells    [][]GridCellDoc `json:"cells"`
	// Bound is the knee bound the Knees entries were computed against.
	Bound float64   `json:"bound"`
	Knees []KneeDoc `json:"knees"`
	// WorstRNUMAOverBest is the headline bound: the worst R-NUMA-vs-best
	// ratio across every cell.
	WorstRNUMAOverBest float64 `json:"worstRnumaOverBest"`
}

// NewGridDoc builds a GridDoc from a grid sweep; bound <= 0 selects the
// harness default knee bound.
func NewGridDoc(g *harness.Grid, bound float64) GridDoc {
	if bound <= 0 {
		bound = harness.DefaultKneeBound
	}
	d := GridDoc{
		Workload: g.Workload,
		AxisX:    g.AxisX.String(),
		AxisY:    g.AxisY.String(),
		XLabels:  g.XLabels,
		YLabels:  g.YLabels,
		Bound:    bound,
		Cells:    make([][]GridCellDoc, len(g.Cells)),
	}
	for _, v := range g.XValues {
		d.XValues = append(d.XValues, v.String())
	}
	for _, v := range g.YValues {
		d.YValues = append(d.YValues, v.String())
	}
	for i := range g.Cells {
		d.Cells[i] = make([]GridCellDoc, len(g.Cells[i]))
		for j, c := range g.Cells[i] {
			d.Cells[i][j] = GridCellDoc{
				Nodes:         c.Nodes,
				CPUsPerNode:   c.CPUsPerNode,
				CCNUMA:        c.CCNUMA,
				SCOMA:         c.SCOMA,
				RNUMA:         c.RNUMA,
				RNUMAOverBest: c.RNUMAOverBest(),
			}
			if r := c.RNUMAOverBest(); r > d.WorstRNUMAOverBest {
				d.WorstRNUMAOverBest = r
			}
		}
	}
	for i := range g.Cells {
		d.Knees = append(d.Knees, newKneeDoc("row "+g.YLabels[i], harness.FindKnee(g.Row(i), bound)))
	}
	for j := range g.XLabels {
		d.Knees = append(d.Knees, newKneeDoc("col "+g.XLabels[j], harness.FindKnee(g.Col(j), bound)))
	}
	return d
}

// DeltaDoc is a two-run comparison (the JSON form of DeltaTable).
type DeltaDoc struct {
	A         string `json:"a"`
	B         string `json:"b"`
	Identical bool   `json:"identical"`
	Differing int    `json:"differing"`
	// Counters lists only counters whose values differ; the full table
	// is reconstructable from the two RunDocs.
	Counters              []stats.CounterDelta `json:"counters,omitempty"`
	RefetchDigestA        string               `json:"refetchDigestA"`
	RefetchDigestB        string               `json:"refetchDigestB"`
	RefetchPagesDiffering int                  `json:"refetchPagesDiffering,omitempty"`
}

// NewDeltaDoc builds a DeltaDoc from a stats.Diff result.
func NewDeltaDoc(nameA, nameB string, d *stats.RunDelta) DeltaDoc {
	doc := DeltaDoc{
		A:                     nameA,
		B:                     nameB,
		Identical:             d.Identical(),
		Differing:             d.Differing,
		RefetchDigestA:        d.RefetchDigestA,
		RefetchDigestB:        d.RefetchDigestB,
		RefetchPagesDiffering: d.RefetchPagesDiffering,
	}
	for _, c := range d.Counters {
		if c.Delta != 0 {
			doc.Counters = append(doc.Counters, c)
		}
	}
	return doc
}

// FigureDoc is one paper figure or table's rows. Rows is the harness's
// own row type for the figure (Fig5Curve, Fig6Row, ... — all plainly
// marshalable), so the JSON mirrors what the text renderer consumed.
type FigureDoc struct {
	Figure string `json:"figure"`
	Rows   any    `json:"rows"`
}
