// Package report renders the harness's experiment results as the paper
// presents them: fixed-width text tables and ASCII bar charts, one per
// table/figure of the evaluation section.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rnuma/internal/harness"
	"rnuma/internal/model"
	"rnuma/internal/stats"
)

// bar renders a horizontal bar scaled to `width` columns at `max` value.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// Figure5 renders the refetch CDF curves (paper Figure 5).
func Figure5(w io.Writer, curves []harness.Fig5Curve) {
	fmt.Fprintln(w, "FIGURE 5 — Cumulative distribution of refetches vs fraction of remote pages")
	fmt.Fprintln(w, "(CC-NUMA, 32-KB block cache; fft omitted when it has no refetches)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %14s %14s\n", "app", "refetch@10%pg", "refetch@30%pg")
	for _, c := range curves {
		if len(c.Points) == 0 {
			fmt.Fprintf(w, "%-10s %14s %14s\n", c.App, "(none)", "(none)")
			continue
		}
		fmt.Fprintf(w, "%-10s %13.1f%% %13.1f%%\n", c.App, c.At10, c.At30)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "curves (x: % of remote pages, y: % of refetches covered):")
	for _, c := range curves {
		if len(c.Points) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s", c.App)
		for _, x := range []float64{5, 10, 20, 30, 50, 70, 100} {
			fmt.Fprintf(w, " %3.0f%%@%-3.0f", stats.CDFAt(c.Points, x), x)
		}
		fmt.Fprintln(w)
	}
}

// Table4 renders the block refetch / page replacement characterization
// (paper Table 4).
func Table4(w io.Writer, rows []harness.Table4Row) {
	fmt.Fprintln(w, "TABLE 4 — Characterizing block refetches and page replacements")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s | %-18s | %-22s %-22s\n", "", "CC-NUMA", "R-NUMA", "")
	fmt.Fprintf(w, "%-10s | %-18s | %-22s %-22s\n", "app", "RW-page refetches", "refetches (% CC-NUMA)", "replacements (% S-COMA)")
	fmt.Fprintln(w, strings.Repeat("-", 80))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %17.0f%% | %21.0f%% %21.0f%%\n",
			r.App, r.RWPagePct, r.RefetchPct, r.ReplacementPct)
	}
}

// Figure6 renders the base-system execution time comparison (Figure 6).
func Figure6(w io.Writer, rows []harness.Fig6Row) {
	fmt.Fprintln(w, "FIGURE 6 — Execution time normalized to CC-NUMA with an infinite block cache")
	fmt.Fprintln(w, "(CC-NUMA 32-KB block cache; S-COMA 320-KB page cache; R-NUMA 128-B + 320-KB, T=64)")
	fmt.Fprintln(w)
	max := 0.0
	for _, r := range rows {
		for _, v := range []float64{r.CCNUMA, r.SCOMA, r.RNUMA} {
			if v > max {
				max = v
			}
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s CC-NUMA %5.2f %s\n", r.App, r.CCNUMA, bar(r.CCNUMA, max, 40))
		fmt.Fprintf(w, "%-10s S-COMA  %5.2f %s\n", "", r.SCOMA, bar(r.SCOMA, max, 40))
		fmt.Fprintf(w, "%-10s R-NUMA  %5.2f %s\n", "", r.RNUMA, bar(r.RNUMA, max, 40))
	}
	fmt.Fprintln(w)
	worst, best := 0.0, 1e18
	for _, r := range rows {
		if v := r.RNUMAOverBest; v > worst {
			worst = v
		}
		if v := r.RNUMAOverBest; v < best {
			best = v
		}
	}
	fmt.Fprintf(w, "R-NUMA vs best(CC-NUMA, S-COMA): best case %.0f%% faster, worst case %.0f%% slower\n",
		(1-best)*100, (worst-1)*100)
}

// Figure7 renders the cache-size sensitivity study (Figure 7).
func Figure7(w io.Writer, rows []harness.Fig7Row) {
	fmt.Fprintln(w, "FIGURE 7 — Cache-size sensitivity (normalized to infinite block cache)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %12s %12s %16s %16s %16s\n",
		"app", "CC b=1K", "CC b=32K", "R b=128,p=320K", "R b=32K,p=320K", "R b=128,p=40M")
	fmt.Fprintln(w, strings.Repeat("-", 88))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.2f %12.2f %16.2f %16.2f %16.2f\n",
			r.App, r.CC1K, r.CC32K, r.R128p320K, r.R32Kp320K, r.R128p40M)
	}
}

// Figure8 renders the threshold sensitivity study (Figure 8).
func Figure8(w io.Writer, rows []harness.Fig8Row) {
	fmt.Fprintln(w, "FIGURE 8 — Relocation threshold sensitivity (normalized to T=64)")
	fmt.Fprintln(w)
	ts := harness.Fig8Thresholds
	fmt.Fprintf(w, "%-10s", "app")
	for _, T := range ts {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("T=%d", T))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 10+9*len(ts)))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.App)
		keys := make([]int, 0, len(r.ByT))
		for k := range r.ByT {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, T := range keys {
			fmt.Fprintf(w, " %8.2f", r.ByT[T])
		}
		fmt.Fprintln(w)
	}
}

// Figure9 renders the page-fault/TLB overhead sensitivity study (Figure 9).
func Figure9(w io.Writer, rows []harness.Fig9Row) {
	fmt.Fprintln(w, "FIGURE 9 — Page-fault and TLB invalidation overhead sensitivity")
	fmt.Fprintln(w, "(SOFT: 10-µs traps, 5-µs software shootdowns; normalized to infinite block cache)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %10s %14s %10s %14s %14s %14s\n",
		"app", "S-COMA", "S-COMA-SOFT", "R-NUMA", "R-NUMA-SOFT", "SC slowdown", "RN slowdown")
	fmt.Fprintln(w, strings.Repeat("-", 94))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.2f %14.2f %10.2f %14.2f %13.0f%% %13.0f%%\n",
			r.App, r.SCOMA, r.SCOMASoft, r.RNUMA, r.RNUMASoft,
			(r.SCOMASoft/r.SCOMA-1)*100, (r.RNUMASoft/r.RNUMA-1)*100)
	}
}

// Sensitivity renders a generalized one-axis sensitivity sweep: one
// recorded workload transformed along the axis and replayed under the
// three base designs at every point.
func Sensitivity(w io.Writer, name string, axis harness.Axis, points []harness.AxisPoint) {
	fmt.Fprintf(w, "SENSITIVITY — %s swept over %s (one capture, transformed per point)\n", name, axis)
	switch axis {
	case harness.AxisNodes:
		fmt.Fprintln(w, "(normalized to the same-shape ideal machine; pages re-homed round-robin)")
	case harness.AxisDilate:
		fmt.Fprintln(w, "(compute gaps scaled per point: x<1 models faster processors, x>1 slower;")
		fmt.Fprintln(w, " normalized to the same-dilation ideal machine)")
	case harness.AxisBlockSize, harness.AxisPageSize:
		fmt.Fprintln(w, "(geometry retargeted per point; normalized to the same-geometry ideal machine)")
	case harness.AxisThreshold:
		fmt.Fprintln(w, "(capture replayed unchanged; R-NUMA relocation threshold varied per point)")
	}
	fmt.Fprintln(w)
	// The label column sizes to the data: composed grid-variant labels
	// ("b=64B, T=256") and geometry points overflow a fixed pad.
	lw := max(16, len(axis.String()))
	for _, p := range points {
		lw = max(lw, len(p.Label))
	}
	fmt.Fprintf(w, "%-*s %10s %10s %10s %10s\n", lw, axis, "CC-NUMA", "S-COMA", "R-NUMA", "R/best")
	fmt.Fprintln(w, strings.Repeat("-", lw+44))
	for _, p := range points {
		fmt.Fprintf(w, "%-*s %10.2f %10.2f %10.2f %10.2f\n",
			lw, p.Label, p.CCNUMA, p.SCOMA, p.RNUMA, p.RNUMAOverBest())
	}
	fmt.Fprintln(w)
	worst := 0.0
	for _, p := range points {
		if v := p.RNUMAOverBest(); v > worst {
			worst = v
		}
	}
	fmt.Fprintf(w, "worst R-NUMA-vs-best ratio across the %s axis: %.2f\n", axis, worst)
}

// DeltaTable renders a stats.Diff per-counter comparison: every counter
// of the two runs side by side with absolute and relative deltas, then
// the refetch-distribution digest comparison. Unchanged counters print
// only under verbose.
func DeltaTable(w io.Writer, nameA, nameB string, d *stats.RunDelta, verbose bool) {
	fmt.Fprintf(w, "DELTA — %s vs %s (B-A per counter)\n", nameA, nameB)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s %14s %14s %14s %9s\n", "counter", "A", "B", "delta", "rel")
	fmt.Fprintln(w, strings.Repeat("-", 76))
	for _, c := range d.Counters {
		if c.Delta == 0 && !verbose {
			continue
		}
		rel := "-"
		if pct, ok := c.RelPct(); ok {
			rel = fmt.Sprintf("%+.1f%%", pct)
		} else if c.Delta != 0 {
			rel = "new"
		}
		fmt.Fprintf(w, "%-20s %14d %14d %+14d %9s\n", c.Name, c.A, c.B, c.Delta, rel)
	}
	if d.Differing == 0 {
		fmt.Fprintln(w, "(all counters identical)")
	}
	fmt.Fprintln(w)
	refetch := "identical"
	if d.RefetchDigestA != d.RefetchDigestB {
		refetch = fmt.Sprintf("differ (%d pages changed)", d.RefetchPagesDiffering)
	}
	fmt.Fprintf(w, "refetch map: %s vs %s — %s\n", d.RefetchDigestA, d.RefetchDigestB, refetch)
	if d.Identical() {
		fmt.Fprintln(w, "runs are identical")
	} else {
		fmt.Fprintf(w, "runs differ: %d counters changed\n", d.Differing)
	}
}

// Model renders the analytical worst-case model (Table 1, EQ 1-3).
func Model(w io.Writer, p model.Params) {
	fmt.Fprintln(w, "ANALYTICAL MODEL — worst-case competitive ratios (Section 3.2)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "parameters: Crefetch=%.0f Callocate=%.0f Crelocate=%.0f T=%.0f\n",
		p.Crefetch, p.Callocate, p.Crelocate, p.T)
	fmt.Fprintf(w, "EQ1  R-NUMA/CC-NUMA overhead ratio: %.3f\n", p.RatioVsCCNUMA())
	fmt.Fprintf(w, "EQ2  R-NUMA/S-COMA  overhead ratio: %.3f\n", p.RatioVsSCOMA())
	opt := p.AtOptimum()
	fmt.Fprintf(w, "EQ3  optimal threshold T* = Callocate/Crefetch = %.1f\n", opt.T)
	fmt.Fprintf(w, "     worst-case bound at T* = 2 + Crelocate/Callocate = %.3f\n", opt.BoundAtOptimum())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "threshold sweep (worst-case ratio):")
	for _, pt := range p.SweepThreshold(1, 1024, 11) {
		fmt.Fprintf(w, "  T=%7.1f  vsCC=%7.2f  vsSC=%7.2f  worst=%7.2f %s\n",
			pt.T, pt.VsCCNUMA, pt.VsSCOMA, pt.Worst, bar(pt.Worst, 20, 30))
	}
}

// ClientTable renders the per-tenant counter split of a multi-tenant run
// (a no-op for runs without attribution). The rows sum exactly to the
// machine-level counters, since attribution charges every reference to
// exactly one client.
func ClientTable(w io.Writer, r *stats.Run) {
	if len(r.Clients) == 0 {
		return
	}
	fmt.Fprintln(w, "CLIENTS — per-tenant counter split (rows sum to the machine totals)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %12s %11s %10s %10s %8s %8s %11s\n",
		"client", "refs", "l1hit", "remote", "refetch", "reloc", "repl", "remote/ref")
	fmt.Fprintln(w, strings.Repeat("-", 88))
	for _, c := range r.Clients {
		ct := c.Counters
		fmt.Fprintf(w, "%-12s %12d %11d %10d %10d %8d %8d %10.2f%%\n",
			c.Name, ct.Refs, ct.L1Hits, ct.RemoteFetches, ct.Refetches,
			ct.Relocations, ct.Replacements, 100*stats.Ratio(ct.RemoteFetches, ct.Refs))
	}
}

// RunSummary renders one run's counters (the rnuma-sim tool output).
func RunSummary(w io.Writer, name string, r *stats.Run) {
	fmt.Fprintf(w, "run: %s\n", name)
	fmt.Fprintf(w, "  execution time:        %d cycles\n", r.ExecCycles)
	fmt.Fprintf(w, "  references:            %d\n", r.Refs)
	fmt.Fprintf(w, "  L1 hits:               %d (%.1f%%)\n", r.L1Hits, 100*stats.Ratio(r.L1Hits, r.Refs))
	fmt.Fprintf(w, "  cache-to-cache:        %d\n", r.C2CTransfers)
	fmt.Fprintf(w, "  local fills:           %d\n", r.LocalFills)
	fmt.Fprintf(w, "  block cache hits:      %d\n", r.BlockCacheHits)
	fmt.Fprintf(w, "  page cache hits:       %d\n", r.PageCacheHits)
	fmt.Fprintf(w, "  remote fetches:        %d (%.2f%% of refs)\n", r.RemoteFetches, 100*r.RemoteMissRatio())
	fmt.Fprintf(w, "  refetches:             %d (%.1f%% of remote)\n", r.Refetches, 100*stats.Ratio(r.Refetches, r.RemoteFetches))
	fmt.Fprintf(w, "  upgrades:              %d\n", r.Upgrades)
	fmt.Fprintf(w, "  page faults:           %d\n", r.PageFaults)
	fmt.Fprintf(w, "  page allocations:      %d\n", r.Allocations)
	fmt.Fprintf(w, "  page replacements:     %d\n", r.Replacements)
	fmt.Fprintf(w, "  page relocations:      %d\n", r.Relocations)
	if r.Demotions > 0 {
		fmt.Fprintf(w, "  page demotions:        %d\n", r.Demotions)
	}
	fmt.Fprintf(w, "  blocks flushed:        %d\n", r.FlushedBlocks)
	fmt.Fprintf(w, "  invalidations sent:    %d\n", r.InvalsSent)
	fmt.Fprintf(w, "  three-hop transfers:   %d\n", r.ThreeHopXfers)
	fmt.Fprintf(w, "  writebacks to home:    %d\n", r.WritebacksHome)
	fmt.Fprintf(w, "  distinct remote pages: %d\n", r.RemotePages)
	fmt.Fprintf(w, "  bus wait cycles:       %d\n", r.BusWaitCycles)
	fmt.Fprintf(w, "  NI wait cycles:        %d\n", r.NIWaitCycles)
	fmt.Fprintf(w, "  RAD wait cycles:       %d\n", r.RADWaitCycles)
}
