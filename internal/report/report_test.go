package report

import (
	"strings"
	"testing"

	"rnuma/internal/harness"
	"rnuma/internal/model"
	"rnuma/internal/stats"
)

func TestFigure5Rendering(t *testing.T) {
	var b strings.Builder
	curves := []harness.Fig5Curve{
		{App: "barnes", Points: []stats.CDFPoint{{PctPages: 0, PctRefetches: 0}, {PctPages: 10, PctRefetches: 85}, {PctPages: 100, PctRefetches: 100}}, At10: 85, At30: 95},
		{App: "fft"}, // no refetches
	}
	Figure5(&b, curves)
	out := b.String()
	for _, want := range []string{"FIGURE 5", "barnes", "85.0%", "fft", "(none)"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 5 output missing %q", want)
		}
	}
}

func TestTable4Rendering(t *testing.T) {
	var b strings.Builder
	Table4(&b, []harness.Table4Row{{App: "lu", RWPagePct: 82, RefetchPct: 21, ReplacementPct: 70}})
	out := b.String()
	for _, want := range []string{"TABLE 4", "lu", "82%", "21%", "70%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 output missing %q", want)
		}
	}
}

func TestFigure6Rendering(t *testing.T) {
	var b strings.Builder
	Figure6(&b, []harness.Fig6Row{
		{App: "radix", CCNUMA: 1.31, SCOMA: 5.42, RNUMA: 2.05, BestOfBase: 1.31, RNUMAOverBest: 1.57},
		{App: "barnes", CCNUMA: 1.8, SCOMA: 1.6, RNUMA: 1.1, BestOfBase: 1.6, RNUMAOverBest: 0.69},
	})
	out := b.String()
	for _, want := range []string{"FIGURE 6", "radix", "5.42", "R-NUMA", "57% slower", "31% faster"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 6 output missing %q (output:\n%s)", want, out)
		}
	}
	// The biggest value should have the longest bar.
	lines := strings.Split(out, "\n")
	maxHashes, maxLine := 0, ""
	for _, l := range lines {
		if n := strings.Count(l, "#"); n > maxHashes {
			maxHashes, maxLine = n, l
		}
	}
	if !strings.Contains(maxLine, "5.42") {
		t.Errorf("longest bar is not the 5.42 entry: %q", maxLine)
	}
}

func TestFigure7Rendering(t *testing.T) {
	var b strings.Builder
	Figure7(&b, []harness.Fig7Row{{App: "ocean", CC1K: 7.19, CC32K: 2.6, R128p320K: 2.0, R32Kp320K: 2.0, R128p40M: 1.4}})
	out := b.String()
	for _, want := range []string{"FIGURE 7", "ocean", "7.19", "b=1K", "p=40M"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 7 output missing %q", want)
		}
	}
}

func TestFigure8Rendering(t *testing.T) {
	var b strings.Builder
	Figure8(&b, []harness.Fig8Row{{App: "lu", ByT: map[int]float64{16: 0.75, 64: 1, 256: 1.3, 1024: 1.8}}})
	out := b.String()
	for _, want := range []string{"FIGURE 8", "lu", "T=16", "0.75", "1.80"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 8 output missing %q", want)
		}
	}
}

func TestFigure9Rendering(t *testing.T) {
	var b strings.Builder
	Figure9(&b, []harness.Fig9Row{{App: "em3d", SCOMA: 1.5, SCOMASoft: 2.5, RNUMA: 1.06, RNUMASoft: 1.11}})
	out := b.String()
	for _, want := range []string{"FIGURE 9", "em3d", "S-COMA-SOFT", "67%", "5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 9 output missing %q (output:\n%s)", want, out)
		}
	}
}

func TestModelRendering(t *testing.T) {
	var b strings.Builder
	Model(&b, model.Params{Crefetch: 376, Callocate: 5000, Crelocate: 5000, T: 64})
	out := b.String()
	for _, want := range []string{"EQ1", "EQ2", "EQ3", "3.000", "13.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("model output missing %q", want)
		}
	}
}

func TestRunSummaryRendering(t *testing.T) {
	var b strings.Builder
	r := stats.NewRun()
	r.ExecCycles = 12345
	r.Refs = 100
	r.Relocations = 7
	RunSummary(&b, "test", r)
	out := b.String()
	for _, want := range []string{"12345", "relocations:      7", "references:            100"} {
		if !strings.Contains(out, want) {
			t.Errorf("run summary missing %q (output:\n%s)", want, out)
		}
	}
}

func TestBarClamping(t *testing.T) {
	if bar(10, 5, 20) != strings.Repeat("#", 20) {
		t.Error("bar should clamp to width")
	}
	if bar(-1, 5, 20) != "" {
		t.Error("negative value should render empty")
	}
	if bar(1, 0, 20) != "" {
		t.Error("zero max should render empty")
	}
}

func TestSensitivityRendering(t *testing.T) {
	var b strings.Builder
	Sensitivity(&b, "fft", harness.AxisDilate, []harness.AxisPoint{
		{Axis: harness.AxisDilate, Label: "x1/2", Nodes: 8, CPUsPerNode: 4, CCNUMA: 1.2, SCOMA: 1.5, RNUMA: 1.25},
		{Axis: harness.AxisDilate, Label: "x2", Nodes: 8, CPUsPerNode: 4, CCNUMA: 1.1, SCOMA: 1.3, RNUMA: 1.15},
	})
	out := b.String()
	for _, want := range []string{"SENSITIVITY — fft swept over dilate", "x1/2", "x2", "faster processors", "worst R-NUMA-vs-best ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("sensitivity output missing %q (output:\n%s)", want, out)
		}
	}
}

func TestDeltaTableRendering(t *testing.T) {
	a, b := stats.NewRun(), stats.NewRun()
	a.ExecCycles, b.ExecCycles = 1000, 1100
	a.Refs, b.Refs = 50, 50
	d := stats.Diff(a, b)

	var buf strings.Builder
	DeltaTable(&buf, "old", "new", d, false)
	out := buf.String()
	for _, want := range []string{"DELTA — old vs new", "ExecCycles", "+10.0%", "runs differ: 1 counters changed"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q (output:\n%s)", want, out)
		}
	}
	if strings.Contains(out, "Refs ") {
		t.Errorf("unchanged counter rendered without verbose:\n%s", out)
	}

	// Verbose lists unchanged counters; identical runs say so.
	buf.Reset()
	DeltaTable(&buf, "a", "b", stats.Diff(a, a), true)
	out = buf.String()
	for _, want := range []string{"Refs", "(all counters identical)", "runs are identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose identical table missing %q (output:\n%s)", want, out)
		}
	}
}
