package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
)

// timelineMaxRows bounds the interval table: longer series elide their
// middle (the elision is announced, never silent) while the sparklines
// still cover every window.
const timelineMaxRows = 64

// sparkRamp maps a per-window value, scaled against the series maximum,
// to one ASCII column of increasing ink.
const sparkRamp = " .:-=+*#%@"

// spark renders vals as an ASCII sparkline of at most width columns,
// bucketing (by sum) when the series is longer than the width.
func spark(vals []int64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	cols := vals
	if len(vals) > width {
		cols = make([]int64, width)
		for i, v := range vals {
			cols[i*width/len(vals)] += v
		}
	}
	var max int64
	for _, v := range cols {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cols {
		if max == 0 {
			b.WriteByte(sparkRamp[0])
			continue
		}
		i := int(v * int64(len(sparkRamp)-1) / max)
		b.WriteByte(sparkRamp[i])
	}
	return b.String()
}

// Timeline renders a run's telemetry capture: the interval table,
// per-window sparklines of the reactive activity, a relocation-burst
// summary, and the whole-run traffic matrix.
func Timeline(w io.Writer, name string, tl *telemetry.Timeline) {
	if tl == nil {
		fmt.Fprintf(w, "TIMELINE — %s: no telemetry captured (probe disabled)\n", name)
		return
	}
	fmt.Fprintf(w, "TIMELINE — %s (window %d refs, %d nodes, %d intervals, %d relocation events)\n",
		name, tl.Window, tl.Nodes, len(tl.Intervals), len(tl.Events))
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%6s %12s %9s %9s %9s %9s %9s %9s %9s\n",
		"win", "endRef", "remote", "refetch", "reloc", "repl", "alloc", "bchit", "pchit")
	fmt.Fprintln(w, strings.Repeat("-", 92))
	row := func(iv telemetry.Interval) {
		d := iv.Delta
		fmt.Fprintf(w, "%6d %12d %9d %9d %9d %9d %9d %9d %9d\n",
			iv.Index, iv.EndRef, d.RemoteFetches, d.Refetches, d.Relocations,
			d.Replacements, d.Allocations, d.BlockCacheHits, d.PageCacheHits)
	}
	if n := len(tl.Intervals); n <= timelineMaxRows {
		for _, iv := range tl.Intervals {
			row(iv)
		}
	} else {
		head, tail := timelineMaxRows*3/4, timelineMaxRows/4
		for _, iv := range tl.Intervals[:head] {
			row(iv)
		}
		fmt.Fprintf(w, "%6s %12s (%d intervals elided)\n", "...", "...", n-head-tail)
		for _, iv := range tl.Intervals[n-tail:] {
			row(iv)
		}
	}

	fmt.Fprintln(w)
	series := func(pick func(telemetry.Counters) int64) []int64 {
		vals := make([]int64, len(tl.Intervals))
		for i, iv := range tl.Intervals {
			vals[i] = pick(iv.Delta)
		}
		return vals
	}
	const sparkWidth = 72
	fmt.Fprintf(w, "remote  |%s|\n", spark(series(func(c telemetry.Counters) int64 { return c.RemoteFetches }), sparkWidth))
	fmt.Fprintf(w, "refetch |%s|\n", spark(series(func(c telemetry.Counters) int64 { return c.Refetches }), sparkWidth))
	fmt.Fprintf(w, "reloc   |%s|\n", spark(series(func(c telemetry.Counters) int64 { return c.Relocations }), sparkWidth))

	if len(tl.Clients) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "per-client remote fetches:")
		for ci, name := range tl.Clients {
			vals := make([]int64, len(tl.Intervals))
			for i, iv := range tl.Intervals {
				if ci < len(iv.PerClient) {
					vals[i] = iv.PerClient[ci].RemoteFetches
				}
			}
			fmt.Fprintf(w, "  %-10s |%s|\n", name, spark(vals, sparkWidth))
		}
	}

	relocationBursts(w, tl)
	trafficMatrix(w, tl)
}

// relocationBursts summarizes the event log by window: the busiest
// windows, each with its relocation count, distinct pages, and nodes.
func relocationBursts(w io.Writer, tl *telemetry.Timeline) {
	fmt.Fprintln(w)
	if len(tl.Events) == 0 {
		fmt.Fprintln(w, "relocation bursts: none (no page crossed the threshold)")
		return
	}
	type burst struct {
		window int64
		count  int
		pages  map[addrPage]struct{}
		nodes  map[int]struct{}
	}
	byWin := make(map[int64]*burst)
	for _, e := range tl.Events {
		b := byWin[e.Window]
		if b == nil {
			b = &burst{window: e.Window, pages: make(map[addrPage]struct{}), nodes: make(map[int]struct{})}
			byWin[e.Window] = b
		}
		b.count++
		b.pages[addrPage(e.Page)] = struct{}{}
		b.nodes[int(e.Node)] = struct{}{}
	}
	bursts := make([]*burst, 0, len(byWin))
	for _, b := range byWin {
		bursts = append(bursts, b)
	}
	sort.Slice(bursts, func(i, j int) bool {
		if bursts[i].count != bursts[j].count {
			return bursts[i].count > bursts[j].count
		}
		return bursts[i].window < bursts[j].window
	})
	fmt.Fprintf(w, "relocation bursts: %d events across %d of %d windows; busiest:\n",
		len(tl.Events), len(bursts), len(tl.Intervals))
	for i, b := range bursts {
		if i == 3 {
			break
		}
		fmt.Fprintf(w, "  window %-5d refs (%d, %d]: %d relocations, %d pages, %d nodes\n",
			b.window, b.window*tl.Window, (b.window+1)*tl.Window, b.count, len(b.pages), len(b.nodes))
	}
	first := tl.Events[0]
	fmt.Fprintf(w, "  first crossing: page %d on node %d at ref %d (count %d)\n",
		first.Page, first.Node, first.Ref, first.Count)
}

// addrPage keys the burst page sets without importing addr just for a map
// key type.
type addrPage uint64

// trafficMatrix renders the whole-run requester×home remote-fetch matrix
// (small machines only; bigger shapes print a per-node total line).
func trafficMatrix(w io.Writer, tl *telemetry.Timeline) {
	total := tl.TotalTraffic()
	var sum int64
	for _, v := range total {
		sum += v
	}
	fmt.Fprintln(w)
	if sum == 0 {
		fmt.Fprintln(w, "traffic matrix: no remote fetches")
		return
	}
	if tl.Nodes > 16 {
		fmt.Fprintf(w, "traffic per requester node (%d remote fetches total):\n ", sum)
		for src := 0; src < tl.Nodes; src++ {
			var rowSum int64
			for dst := 0; dst < tl.Nodes; dst++ {
				rowSum += total[src*tl.Nodes+dst]
			}
			fmt.Fprintf(w, " n%d=%d", src, rowSum)
		}
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "traffic matrix (remote fetches, requester row × home column; %d total):\n", sum)
	fmt.Fprintf(w, "%8s", "")
	for dst := 0; dst < tl.Nodes; dst++ {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("h%d", dst))
	}
	fmt.Fprintln(w)
	for src := 0; src < tl.Nodes; src++ {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("n%d", src))
		for dst := 0; dst < tl.Nodes; dst++ {
			fmt.Fprintf(w, " %8d", total[src*tl.Nodes+dst])
		}
		fmt.Fprintln(w)
	}
}

// ToleranceSummary renders a tolerance-mode classification under a
// DeltaTable: which counter changes are structural (fail), which timing
// changes exceeded the band (fail), and which stayed within it (warn).
func ToleranceSummary(w io.Writer, r *stats.ToleranceResult) {
	fmt.Fprintf(w, "tolerance ±%.3g%% on timing counters (%s):\n", r.Pct, "ExecCycles, BusWaitCycles, NIWaitCycles, RADWaitCycles")
	for _, c := range r.Structural {
		fmt.Fprintf(w, "  FAIL %-20s %+d (structural counter)\n", c.Name, c.Delta)
	}
	if r.RefetchDiffers {
		fmt.Fprintln(w, "  FAIL refetch distribution differs (structural)")
	}
	for _, c := range r.OutOfBand {
		rel := "new"
		if pct, ok := c.RelPct(); ok {
			rel = fmt.Sprintf("%+.2f%%", pct)
		}
		fmt.Fprintf(w, "  FAIL %-20s %s exceeds the band\n", c.Name, rel)
	}
	for _, c := range r.WithinBand {
		pct, _ := c.RelPct()
		fmt.Fprintf(w, "  warn %-20s %+.2f%% within the band\n", c.Name, pct)
	}
	if r.OK() {
		if len(r.WithinBand) == 0 {
			fmt.Fprintln(w, "  ok: runs identical")
		} else {
			fmt.Fprintln(w, "  ok: only timing counters moved, all within the band")
		}
	}
}
