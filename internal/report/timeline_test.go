package report

import (
	"strings"
	"testing"

	"rnuma/internal/stats"
	"rnuma/internal/telemetry"
)

// burstTimeline builds a small capture with activity in every branch the
// renderer has: a quiet window, a busy window with traffic, and events.
func burstTimeline() *telemetry.Timeline {
	return &telemetry.Timeline{
		Window: 100,
		Nodes:  2,
		Intervals: []telemetry.Interval{
			{Index: 0, StartRef: 0, EndRef: 100},
			{
				Index: 1, StartRef: 100, EndRef: 180,
				Delta:   telemetry.Counters{Refs: 80, RemoteFetches: 7, Refetches: 5, Relocations: 2},
				Traffic: []int64{0, 3, 4, 0},
			},
		},
		Events: []telemetry.Event{
			{Ref: 150, Window: 1, Node: 1, Page: 42, Count: 8},
			{Ref: 160, Window: 1, Node: 0, Page: 43, Count: 8},
		},
	}
}

func TestTimelineRendering(t *testing.T) {
	var b strings.Builder
	Timeline(&b, "em3d", burstTimeline())
	out := b.String()
	for _, want := range []string{
		"TIMELINE — em3d (window 100 refs, 2 nodes, 2 intervals, 2 relocation events)",
		"remote", "refetch", "reloc",
		"remote  |", // sparklines
		"relocation bursts: 2 events across 1 of 2 windows",
		"refs (100, 200]: 2 relocations, 2 pages, 2 nodes",
		"first crossing: page 42 on node 1 at ref 150 (count 8)",
		"traffic matrix (remote fetches, requester row × home column; 7 total)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q in:\n%s", want, out)
		}
	}
}

func TestTimelineNilAndQuiet(t *testing.T) {
	var b strings.Builder
	Timeline(&b, "fft", nil)
	if !strings.Contains(b.String(), "no telemetry captured (probe disabled)") {
		t.Errorf("nil timeline rendered %q", b.String())
	}

	b.Reset()
	quiet := &telemetry.Timeline{Window: 10, Nodes: 2,
		Intervals: []telemetry.Interval{{Index: 0, EndRef: 10, Delta: telemetry.Counters{Refs: 10}}}}
	Timeline(&b, "quiet", quiet)
	out := b.String()
	if !strings.Contains(out, "relocation bursts: none") {
		t.Errorf("quiet timeline missing the no-events line:\n%s", out)
	}
	if !strings.Contains(out, "traffic matrix: no remote fetches") {
		t.Errorf("quiet timeline missing the no-traffic line:\n%s", out)
	}
}

// TestTimelineElidesLongSeries: past timelineMaxRows the table keeps head
// and tail and announces what it dropped; the sparkline still spans every
// window (bucketed to the fixed width).
func TestTimelineElidesLongSeries(t *testing.T) {
	const n = 200
	tl := &telemetry.Timeline{Window: 10, Nodes: 2}
	for i := 0; i < n; i++ {
		tl.Intervals = append(tl.Intervals, telemetry.Interval{
			Index: int64(i), StartRef: int64(i) * 10, EndRef: int64(i+1) * 10,
			Delta: telemetry.Counters{Refs: 10, RemoteFetches: int64(i % 3)},
		})
	}
	var b strings.Builder
	Timeline(&b, "long", tl)
	out := b.String()
	elided := n - timelineMaxRows*3/4 - timelineMaxRows/4 // 200 - 48 head - 16 tail
	if !strings.Contains(out, "(136 intervals elided)") || elided != 136 {
		t.Errorf("long timeline elision wrong (want %d elided):\n%s", elided, out)
	}
	// The table shows head+tail+marker rows, not all 200.
	if rows := strings.Count(out, "\n"); rows > 100 {
		t.Errorf("elided table still prints %d lines", rows)
	}
}

// TestTimelineWideMachineTraffic: machines past 16 nodes get per-node
// totals instead of an n×n matrix.
func TestTimelineWideMachineTraffic(t *testing.T) {
	const nodes = 32
	tl := &telemetry.Timeline{Window: 10, Nodes: nodes,
		Intervals: []telemetry.Interval{{Index: 0, EndRef: 10,
			Delta: telemetry.Counters{RemoteFetches: 5}, Traffic: make([]int64, nodes*nodes)}}}
	tl.Intervals[0].Traffic[0*nodes+1] = 5
	var b strings.Builder
	Timeline(&b, "wide", tl)
	out := b.String()
	if !strings.Contains(out, "traffic per requester node (5 remote fetches total):") {
		t.Errorf("wide machine did not fall back to per-node totals:\n%s", out)
	}
	if !strings.Contains(out, "n0=5") || !strings.Contains(out, "n1=0") {
		t.Errorf("per-node totals wrong:\n%s", out)
	}
}

func TestSpark(t *testing.T) {
	if s := spark(nil, 10); s != "" {
		t.Errorf("empty series sparks %q", s)
	}
	if s := spark([]int64{0, 0}, 10); s != "  " {
		t.Errorf("all-zero series sparks %q", s)
	}
	s := spark([]int64{0, 5, 10}, 10)
	if len(s) != 3 || s[0] != ' ' || s[2] != '@' {
		t.Errorf("short series sparks %q", s)
	}
	// Longer than the width: bucketed by sum, still exactly width columns.
	long := make([]int64, 100)
	long[99] = 7
	s = spark(long, 10)
	if len(s) != 10 || s[9] != '@' || s[0] != ' ' {
		t.Errorf("bucketed series sparks %q", s)
	}
}

func TestToleranceSummaryRendering(t *testing.T) {
	var b strings.Builder
	ToleranceSummary(&b, &stats.ToleranceResult{Pct: 5,
		Structural:     []stats.CounterDelta{{Name: "RemoteFetches", Delta: 3}},
		OutOfBand:      []stats.CounterDelta{{Name: "NIWaitCycles", A: 0, B: 5, Delta: 5}},
		WithinBand:     []stats.CounterDelta{{Name: "ExecCycles", A: 1000, B: 1009, Delta: 9}},
		RefetchDiffers: true,
	})
	out := b.String()
	for _, want := range []string{
		"tolerance ±5% on timing counters",
		"FAIL RemoteFetches        +3 (structural counter)",
		"FAIL refetch distribution differs",
		"FAIL NIWaitCycles         new exceeds the band",
		"warn ExecCycles           +0.90% within the band",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tolerance summary missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ok:") {
		t.Error("failing summary printed an ok line")
	}

	b.Reset()
	ToleranceSummary(&b, &stats.ToleranceResult{Pct: 5})
	if !strings.Contains(b.String(), "ok: runs identical") {
		t.Errorf("identical summary rendered %q", b.String())
	}

	b.Reset()
	ToleranceSummary(&b, &stats.ToleranceResult{Pct: 5,
		WithinBand: []stats.CounterDelta{{Name: "ExecCycles", A: 1000, B: 1009, Delta: 9}}})
	if !strings.Contains(b.String(), "ok: only timing counters moved, all within the band") {
		t.Errorf("within-band summary rendered %q", b.String())
	}
}
