package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"rnuma/internal/spec"
	"rnuma/internal/tracefile"
	"rnuma/internal/traffic"
)

// Artifact kinds.
const (
	KindTrace   = "trace"   // a recorded tracefile encoding
	KindSpec    = "spec"    // a declarative workload spec (JSON)
	KindTraffic = "traffic" // a multi-tenant traffic scenario (JSON)
)

// maxUpload bounds one artifact upload (traces compress well; 256 MB is
// far past any capture the harness produces).
const maxUpload = 256 << 20

// Artifact is one uploaded input, content-addressed: the ID is the
// SHA-256 of the uploaded bytes, so re-uploading identical content
// returns the existing artifact and two artifacts with equal IDs are
// byte-identical. The harness's own source keys (trace canonical hash,
// spec content hash) additionally make *simulations* follow content, so
// even artifacts uploaded under different names share results when their
// decoded streams agree.
type Artifact struct {
	ID   string `json:"id"`   // sha256(bytes), hex
	Kind string `json:"kind"` // trace | spec | traffic
	Name string `json:"name"` // the embedded workload/scenario name
	Size int    `json:"size"` // uploaded bytes

	// Nodes/CPUs are the recorded machine shape (traces only).
	Nodes int `json:"nodes,omitempty"`
	CPUs  int `json:"cpus,omitempty"`

	data []byte
	hdr  tracefile.Header // valid when Kind == KindTrace
}

// AddArtifact validates and registers one artifact; uploading identical
// bytes again returns the existing entry with created=false. Kind ""
// sniffs: tracefile encodings are tried first (they have a magic
// header), then traffic (distinguished by its top-level "clients" key),
// then spec. The created flag is decided under the registry lock, so
// concurrent uploads of the same bytes report exactly one creation.
func (s *Server) AddArtifact(kind string, data []byte) (a *Artifact, created bool, err error) {
	a = &Artifact{
		ID:   fmt.Sprintf("%x", sha256.Sum256(data)),
		Kind: kind,
		Size: len(data),
		data: data,
	}
	if a.Kind == "" {
		a.Kind = sniffKind(data)
	}
	switch a.Kind {
	case KindTrace:
		d, err := tracefile.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, false, fmt.Errorf("serve: bad trace: %w", err)
		}
		a.hdr = d.Header()
		a.Name = a.hdr.Name
		a.Nodes, a.CPUs = a.hdr.Nodes, a.hdr.CPUs
	case KindSpec:
		sp, err := spec.Parse(data)
		if err != nil {
			return nil, false, fmt.Errorf("serve: bad spec: %w", err)
		}
		a.Name = sp.Name
	case KindTraffic:
		tr, err := traffic.Parse(data)
		if err != nil {
			return nil, false, fmt.Errorf("serve: bad traffic scenario: %w", err)
		}
		a.Name = tr.Name
	default:
		return nil, false, fmt.Errorf("serve: unknown artifact kind %q (want trace, spec, or traffic)", kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.artifacts[a.ID]; ok {
		return old, false, nil
	}
	s.artifacts[a.ID] = a
	s.logf("artifact %s: %s %q (%d bytes)", a.ID[:12], a.Kind, a.Name, a.Size)
	return a, true, nil
}

// sniffKind guesses an upload's kind: tracefiles are non-JSON binary
// encodings, and of the two JSON kinds only traffic scenarios have a
// top-level "clients" key — checked by decoding the object, because a
// substring test would mis-sniff any spec that merely mentions clients
// in a name or value.
func sniffKind(data []byte) string {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return KindTrace
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(trimmed, &top); err == nil {
		if _, ok := top["clients"]; ok {
			return KindTraffic
		}
	}
	return KindSpec
}

// artifact resolves an ID, unique ID prefix, or unique name.
func (s *Server) artifact(ref string) (*Artifact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.artifacts[ref]; ok {
		return a, nil
	}
	var found *Artifact
	for id, a := range s.artifacts {
		if (len(ref) >= 8 && len(ref) < len(id) && id[:len(ref)] == ref) || a.Name == ref {
			if found != nil {
				return nil, fmt.Errorf("serve: artifact ref %q is ambiguous", ref)
			}
			found = a
		}
	}
	if found == nil {
		return nil, fmt.Errorf("serve: no artifact %q", ref)
	}
	return found, nil
}

// handleUpload accepts one artifact as the raw request body; the kind
// comes from ?kind= (omit to sniff). Responds 200 with the existing
// entry when the content was already uploaded, 201 on first upload.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "serve: read body: %v", err)
		return
	}
	if len(data) > maxUpload {
		writeError(w, http.StatusRequestEntityTooLarge, "serve: artifact exceeds %d bytes", maxUpload)
		return
	}
	if len(data) == 0 {
		writeError(w, http.StatusBadRequest, "serve: empty artifact")
		return
	}
	a, created, err := s.AddArtifact(r.URL.Query().Get("kind"), data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, a)
}
