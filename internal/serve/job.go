package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// JobRequest is one job submission. Type selects the experiment; the
// remaining fields apply per type (see the field comments).
type JobRequest struct {
	// Type is "replay", "sweep", "grid", "diffstats", or "experiments".
	Type string `json:"type"`

	// Artifact references the input (ID, unique ID prefix, or unique
	// name) for replay, sweep, and diffstats.
	Artifact string `json:"artifact,omitempty"`
	// System names the simulated design: ccnuma, scoma, rnuma, or ideal
	// (default rnuma). Replay and diffstats.
	System string `json:"system,omitempty"`
	// Threshold overrides R-NUMA's relocation threshold when > 0.
	Threshold int `json:"threshold,omitempty"`
	// Normalize also runs the same-shape ideal machine and reports
	// execution time relative to it (replay only).
	Normalize bool `json:"normalize,omitempty"`

	// Axis and Values define a sweep: axis nodes|dilate|block|page|threshold
	// and a comma-separated value list ("4,8,16"; rationals on dilate).
	// Grid jobs use them as the X axis (its transform applies first).
	Axis   string `json:"axis,omitempty"`
	Values string `json:"values,omitempty"`

	// AxisB and ValuesB are a grid job's Y axis; KneeBound overrides the
	// knee detector's R-NUMA/best bound when > 0 (default 1.10).
	AxisB     string  `json:"axisB,omitempty"`
	ValuesB   string  `json:"valuesB,omitempty"`
	KneeBound float64 `json:"kneeBound,omitempty"`

	// ArtifactB and SystemB are diffstats' second run (SystemB defaults
	// to System).
	ArtifactB string `json:"artifactB,omitempty"`
	SystemB   string `json:"systemB,omitempty"`

	// Figures selects paper figures for experiments jobs: "5", "6", "7",
	// "8", "9", "table4" (default "6"). Apps restricts the application
	// list (default: the full catalog).
	Figures []string `json:"figures,omitempty"`
	Apps    []string `json:"apps,omitempty"`
}

// Job statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// JobInfo is a job's externally visible state.
type JobInfo struct {
	ID       string     `json:"id"`
	Request  JobRequest `json:"request"`
	Status   string     `json:"status"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Simulations counts simulations this job executed itself; results
	// its harness got from the shared store (earlier jobs, concurrent
	// jobs, or disk) are not included. A warm resubmission reports 0.
	Simulations int64 `json:"simulations"`
}

// jobState is one job's internal state.
type jobState struct {
	id       string
	req      JobRequest
	created  time.Time
	progress *progressBuffer

	mu       sync.Mutex
	status   string
	err      error
	started  time.Time
	finished time.Time
	sims     int64
	text     string // rendered text report (valid when done)
	doc      any    // JSON report document (valid when done)
}

func (js *jobState) info() JobInfo {
	js.mu.Lock()
	defer js.mu.Unlock()
	info := JobInfo{
		ID:          js.id,
		Request:     js.req,
		Status:      js.status,
		Created:     js.created,
		Simulations: js.sims,
	}
	if js.err != nil {
		info.Error = js.err.Error()
	}
	if !js.started.IsZero() {
		t := js.started
		info.Started = &t
	}
	if !js.finished.IsZero() {
		t := js.finished
		info.Finished = &t
	}
	return info
}

func (js *jobState) simulations() int64 {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.sims
}

// progressBuffer accumulates a job's progress stream (the harness's
// Progress/Log lines) for polling and streaming reads; done closes when
// the job finishes.
type progressBuffer struct {
	mu   sync.Mutex
	buf  []byte
	done chan struct{}
}

func newProgressBuffer() *progressBuffer {
	return &progressBuffer{done: make(chan struct{})}
}

func (b *progressBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.buf = append(b.buf, p...)
	b.mu.Unlock()
	return len(p), nil
}

// from returns the bytes at and after offset, plus the next offset.
func (b *progressBuffer) from(off int) ([]byte, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 {
		off = 0
	}
	if off > len(b.buf) {
		off = len(b.buf)
	}
	out := append([]byte(nil), b.buf[off:]...)
	return out, off + len(out)
}

func (b *progressBuffer) finish() { close(b.done) }

// Submit validates a request, assigns it an ID, and schedules it; the
// job runs asynchronously (bounded by Options.MaxJobs).
func (s *Server) Submit(req JobRequest) (*jobState, error) {
	if err := s.validate(req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.jobSeq++
	js := &jobState{
		id:       fmt.Sprintf("j%d", s.jobSeq),
		req:      req,
		created:  time.Now(),
		progress: newProgressBuffer(),
		status:   StatusQueued,
	}
	s.jobs[js.id] = js
	s.mu.Unlock()
	s.logf("job %s: submitted %s", js.id, req.Type)
	go s.run(js)
	return js, nil
}

// valueError marks a request whose axis/values fields are present but
// unparseable: the submission is well-formed JSON with the right fields,
// just semantically invalid values, so the API answers 422 (naming the
// offending token) rather than a generic 400.
type valueError struct{ err error }

func (e *valueError) Error() string { return e.err.Error() }
func (e *valueError) Unwrap() error { return e.err }

// validate rejects malformed requests before they occupy a job slot;
// artifact references must already resolve at submission time, and
// sweep/grid axis values must already parse (422 when they don't).
func (s *Server) validate(req JobRequest) error {
	switch req.Type {
	case "replay":
		_, err := s.artifact(req.Artifact)
		return err
	case "sweep":
		if _, err := s.artifact(req.Artifact); err != nil {
			return err
		}
		if req.Axis == "" || req.Values == "" {
			return fmt.Errorf("serve: sweep needs axis and values")
		}
		_, _, err := parseAxisValues(req.Axis, req.Values)
		return err
	case "grid":
		if _, err := s.artifact(req.Artifact); err != nil {
			return err
		}
		if req.Axis == "" || req.Values == "" || req.AxisB == "" || req.ValuesB == "" {
			return fmt.Errorf("serve: grid needs axis, values, axisB, and valuesB")
		}
		axisX, _, err := parseAxisValues(req.Axis, req.Values)
		if err != nil {
			return err
		}
		axisY, _, err := parseAxisValues(req.AxisB, req.ValuesB)
		if err != nil {
			return err
		}
		if axisX == axisY {
			return &valueError{fmt.Errorf("serve: grid axes must differ (both %s)", axisX)}
		}
		if req.KneeBound < 0 {
			return &valueError{fmt.Errorf("serve: bad kneeBound %v (must be >= 0)", req.KneeBound)}
		}
		return nil
	case "diffstats":
		if _, err := s.artifact(req.Artifact); err != nil {
			return err
		}
		_, err := s.artifact(req.ArtifactB)
		return err
	case "experiments":
		return nil
	default:
		return fmt.Errorf("serve: unknown job type %q (want replay, sweep, grid, diffstats, or experiments)", req.Type)
	}
}

// run executes one job through a slot of the job semaphore.
func (s *Server) run(js *jobState) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	js.mu.Lock()
	js.status = StatusRunning
	js.started = time.Now()
	js.mu.Unlock()

	var (
		text string
		doc  any
		sims int64
		err  error
	)
	func() {
		// A panicking job must fail like any other error: without the
		// recover it would permanently consume this semaphore slot, leave
		// the job "running" forever, and never finish the progress stream.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: job %s panicked: %v", js.id, r)
			}
		}()
		text, doc, sims, err = s.execute(js)
	}()

	js.mu.Lock()
	js.finished = time.Now()
	js.sims = sims
	if err != nil {
		js.status = StatusFailed
		js.err = err
	} else {
		js.status = StatusDone
		js.text, js.doc = text, doc
	}
	js.mu.Unlock()
	js.progress.finish()
	if err != nil {
		s.logf("job %s: failed: %v", js.id, err)
	} else {
		s.logf("job %s: done (%d new simulations)", js.id, sims)
	}
}

// job resolves a job ID.
func (s *Server) job(id string) (*jobState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: no job %q", id)
	}
	return js, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "serve: bad job request: %v", err)
		return
	}
	js, err := s.Submit(req)
	if err != nil {
		code := http.StatusBadRequest
		var ve *valueError
		if errors.As(err, &ve) {
			code = http.StatusUnprocessableEntity
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, js.info())
}

// handleProgress serves a job's progress stream. Plain GET returns the
// bytes from ?offset= with X-Next-Offset and X-Job-Status headers;
// ?follow=1 streams (chunked, flushed) until the job finishes.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	js, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	off, _ := strconv.Atoi(r.URL.Query().Get("offset"))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.URL.Query().Get("follow") == "" {
		data, next := js.progress.from(off)
		w.Header().Set("X-Next-Offset", strconv.Itoa(next))
		w.Header().Set("X-Job-Status", js.info().Status)
		w.Write(data) //nolint:errcheck // client went away; nothing to do
		return
	}
	flusher, _ := w.(http.Flusher)
	for {
		data, next := js.progress.from(off)
		if len(data) > 0 {
			if _, err := w.Write(data); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			off = next
		}
		select {
		case <-js.progress.done:
			// Drain whatever landed between the read and the close.
			if data, _ := js.progress.from(off); len(data) > 0 {
				w.Write(data) //nolint:errcheck // final drain on a closing stream
			}
			return
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// handleReport serves a finished job's rendered report: ?format=text
// (default) or ?format=json. 409 while the job is still queued/running.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	js, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	js.mu.Lock()
	status, jerr, text, doc := js.status, js.err, js.text, js.doc
	js.mu.Unlock()
	switch status {
	case StatusQueued, StatusRunning:
		writeError(w, http.StatusConflict, "serve: job %s is %s", js.id, status)
		return
	case StatusFailed:
		writeError(w, http.StatusUnprocessableEntity, "serve: job %s failed: %v", js.id, jerr)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	case "json":
		writeJSON(w, http.StatusOK, doc)
	default:
		writeError(w, http.StatusBadRequest, "serve: unknown report format %q (want text or json)", format)
	}
}
