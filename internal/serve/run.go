package serve

import (
	"bytes"
	"fmt"
	"io"

	"rnuma/internal/config"
	"rnuma/internal/harness"
	"rnuma/internal/report"
	"rnuma/internal/stats"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

// This file executes jobs. Every job gets a fresh Harness wired to the
// server's shared store: the harness carries the job's own Progress/Log
// writers and Simulations counter, while the store makes results — and
// in-flight singleflight claims — common property of all jobs.

// execute runs one job to completion, returning the rendered text
// report, the JSON document, and how many simulations the job executed
// itself (0 for a fully warm resubmission).
func (s *Server) execute(js *jobState) (text string, doc any, sims int64, err error) {
	h := harness.New(s.opts.Scale)
	h.Seed = s.opts.Seed
	h.Workers = s.opts.Workers
	h.Store = s.store
	h.Progress = js.progress
	h.Log = js.progress

	var buf bytes.Buffer
	switch js.req.Type {
	case "replay":
		doc, err = s.runReplay(h, &buf, js.req)
	case "sweep":
		doc, err = s.runSweep(h, &buf, js.req)
	case "grid":
		doc, err = s.runGrid(h, &buf, js.req)
	case "diffstats":
		doc, err = s.runDiffstats(h, &buf, js.req)
	case "experiments":
		doc, err = s.runExperiments(h, &buf, js.req)
	default:
		err = fmt.Errorf("serve: unknown job type %q", js.req.Type)
	}
	return buf.String(), doc, h.Simulations(), err
}

// systemFor resolves a request's system name (default rnuma) and
// threshold override.
func systemFor(name string, threshold int) (config.System, error) {
	if name == "" {
		name = "rnuma"
	}
	sys, err := config.SystemByName(name)
	if err != nil {
		return sys, err
	}
	if threshold > 0 {
		sys.Threshold = threshold
	}
	return sys, nil
}

// shapeToTrace sizes a system to a recorded trace's machine shape, the
// same merge Replay's NewTraceMachine performs.
func shapeToTrace(sys config.System, hdr tracefile.Header) (config.System, error) {
	if hdr.Nodes < 1 || hdr.CPUs%hdr.Nodes != 0 {
		return sys, fmt.Errorf("serve: trace has %d CPUs on %d nodes (not evenly divided)", hdr.CPUs, hdr.Nodes)
	}
	sys.Nodes = hdr.Nodes
	sys.CPUsPerNode = hdr.CPUs / hdr.Nodes
	sys.Geometry = hdr.Geometry
	return sys, nil
}

// registerTrace wraps a trace artifact as a harness source under a
// content-qualified name (the embedded workload name alone could collide
// with a differing second upload, e.g. in a diffstats job).
func registerTrace(h *harness.Harness, a *Artifact) (app string, err error) {
	src, err := harness.TraceSource(a.data)
	if err != nil {
		return "", err
	}
	named := harness.RenamedSource(src, fmt.Sprintf("%s@%s", a.Name, a.ID[:8]))
	if err := h.Register(named); err != nil {
		return "", err
	}
	return named.Name(), nil
}

// normalizedLine appends the ideal-baseline normalization (the exact
// line the offline replay CLI prints, so reports gate against it).
func normalizedLine(h *harness.Harness, w io.Writer, app string, sys config.System, run *stats.Run) (*stats.Run, error) {
	if sys.BlockCacheBytes == config.InfiniteBlockCache {
		return nil, nil
	}
	ideal := config.Ideal()
	ideal.Nodes, ideal.CPUsPerNode, ideal.Geometry = sys.Nodes, sys.CPUsPerNode, sys.Geometry
	base, err := h.Run(app, ideal)
	if err != nil {
		return nil, err
	}
	if base.ExecCycles > 0 {
		fmt.Fprintf(w, "  normalized exec time:  %.3f (vs infinite block cache)\n", run.Normalized(base))
	}
	return base, nil
}

func (s *Server) runReplay(h *harness.Harness, w io.Writer, req JobRequest) (any, error) {
	a, err := s.artifact(req.Artifact)
	if err != nil {
		return nil, err
	}
	sys, err := systemFor(req.System, req.Threshold)
	if err != nil {
		return nil, err
	}
	var app string
	switch a.Kind {
	case KindTrace:
		if sys, err = shapeToTrace(sys, a.hdr); err != nil {
			return nil, err
		}
		if app, err = registerTrace(h, a); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "trace: %s (workload %s, %d nodes x %d CPUs)\n", a.ID[:12], a.hdr.Name, sys.Nodes, sys.CPUsPerNode)
	case KindSpec:
		src, err := harness.SpecSource(a.data)
		if err != nil {
			return nil, err
		}
		if err := h.Register(src); err != nil {
			return nil, err
		}
		app = src.Name()
		fmt.Fprintf(w, "spec: %s (%d nodes x %d CPUs)\n", app, sys.Nodes, sys.CPUsPerNode)
	case KindTraffic:
		cfg := workloads.Config{
			Nodes:       sys.Nodes,
			CPUsPerNode: sys.CPUsPerNode,
			Geometry:    sys.Geometry,
			Scale:       s.opts.Scale,
			Seed:        s.opts.Seed,
		}
		src, err := harness.TrafficSource(a.data, "", cfg)
		if err != nil {
			return nil, err
		}
		if err := h.Register(src); err != nil {
			return nil, err
		}
		app = src.Name()
		fmt.Fprintf(w, "traffic: %s (%d clients, %d nodes x %d CPUs)\n",
			app, len(src.Scenario().Clients), sys.Nodes, sys.CPUsPerNode)
	default:
		return nil, fmt.Errorf("serve: artifact %s has unknown kind %q", a.ID[:12], a.Kind)
	}
	run, err := h.Run(app, sys)
	if err != nil {
		return nil, err
	}
	report.RunSummary(w, sys.Name, run)
	if len(run.Clients) > 0 {
		fmt.Fprintln(w)
		report.ClientTable(w, run)
	}
	var base *stats.Run
	if req.Normalize {
		if base, err = normalizedLine(h, w, app, sys, run); err != nil {
			return nil, err
		}
	}
	doc := report.NewRunDoc(app, sys.Name, run, base)
	return doc, nil
}

// parseAxisValues resolves an axis name and its comma-separated value
// list, marking failures as value errors (HTTP 422 at submission) that
// name the offending token.
func parseAxisValues(axisName, values string) (harness.Axis, []harness.SweepValue, error) {
	axis, err := harness.ParseAxis(axisName)
	if err != nil {
		return 0, nil, &valueError{err}
	}
	vals, err := harness.ParseSweepValues(axis, values)
	if err != nil {
		return 0, nil, &valueError{err}
	}
	if len(vals) == 0 {
		return 0, nil, &valueError{fmt.Errorf("serve: %s values %q name no points", axis, values)}
	}
	return axis, vals, nil
}

func (s *Server) runSweep(h *harness.Harness, w io.Writer, req JobRequest) (any, error) {
	a, err := s.artifact(req.Artifact)
	if err != nil {
		return nil, err
	}
	if a.Kind != KindTrace {
		return nil, fmt.Errorf("serve: sweep needs a trace artifact, %s is a %s", a.ID[:12], a.Kind)
	}
	axis, vals, err := parseAxisValues(req.Axis, req.Values)
	if err != nil {
		return nil, err
	}
	pts, name, err := h.Sweep(a.data, axis, vals)
	if err != nil {
		return nil, err
	}
	report.Sensitivity(w, name, axis, pts)
	return report.NewSensitivityDoc(name, axis, pts), nil
}

func (s *Server) runGrid(h *harness.Harness, w io.Writer, req JobRequest) (any, error) {
	a, err := s.artifact(req.Artifact)
	if err != nil {
		return nil, err
	}
	if a.Kind != KindTrace {
		return nil, fmt.Errorf("serve: grid needs a trace artifact, %s is a %s", a.ID[:12], a.Kind)
	}
	axisX, xs, err := parseAxisValues(req.Axis, req.Values)
	if err != nil {
		return nil, err
	}
	axisY, ys, err := parseAxisValues(req.AxisB, req.ValuesB)
	if err != nil {
		return nil, err
	}
	g, err := h.SweepGrid(a.data, axisX, xs, axisY, ys)
	if err != nil {
		return nil, err
	}
	report.Grid(w, g, req.KneeBound)
	return report.NewGridDoc(g, req.KneeBound), nil
}

func (s *Server) runDiffstats(h *harness.Harness, w io.Writer, req JobRequest) (any, error) {
	a, err := s.artifact(req.Artifact)
	if err != nil {
		return nil, err
	}
	b, err := s.artifact(req.ArtifactB)
	if err != nil {
		return nil, err
	}
	for _, art := range []*Artifact{a, b} {
		if art.Kind != KindTrace {
			return nil, fmt.Errorf("serve: diffstats needs trace artifacts, %s is a %s", art.ID[:12], art.Kind)
		}
	}
	sysA, err := systemFor(req.System, req.Threshold)
	if err != nil {
		return nil, err
	}
	sysB := sysA
	if req.SystemB != "" {
		if sysB, err = systemFor(req.SystemB, req.Threshold); err != nil {
			return nil, err
		}
	}
	if sysA, err = shapeToTrace(sysA, a.hdr); err != nil {
		return nil, err
	}
	if sysB, err = shapeToTrace(sysB, b.hdr); err != nil {
		return nil, err
	}
	appA, err := registerTrace(h, a)
	if err != nil {
		return nil, err
	}
	appB, err := registerTrace(h, b)
	if err != nil {
		return nil, err
	}
	runA, err := h.Run(appA, sysA)
	if err != nil {
		return nil, err
	}
	runB, err := h.Run(appB, sysB)
	if err != nil {
		return nil, err
	}
	d := stats.Diff(runA, runB)
	report.DeltaTable(w, appA, appB, d, false)
	return report.NewDeltaDoc(appA, appB, d), nil
}

func (s *Server) runExperiments(h *harness.Harness, w io.Writer, req JobRequest) (any, error) {
	apps := req.Apps
	if len(apps) == 0 {
		apps = harness.AllApps()
	}
	figures := req.Figures
	if len(figures) == 0 {
		figures = []string{"6"}
	}
	docs := make([]report.FigureDoc, 0, len(figures))
	for i, f := range figures {
		if i > 0 {
			fmt.Fprintln(w)
		}
		switch f {
		case "5":
			curves, err := h.Figure5(apps)
			if err != nil {
				return nil, err
			}
			report.Figure5(w, curves)
			docs = append(docs, report.FigureDoc{Figure: "figure5", Rows: curves})
		case "6":
			rows, err := h.Figure6(apps)
			if err != nil {
				return nil, err
			}
			report.Figure6(w, rows)
			docs = append(docs, report.FigureDoc{Figure: "figure6", Rows: rows})
		case "7":
			rows, err := h.Figure7(apps)
			if err != nil {
				return nil, err
			}
			report.Figure7(w, rows)
			docs = append(docs, report.FigureDoc{Figure: "figure7", Rows: rows})
		case "8":
			rows, err := h.Figure8(apps)
			if err != nil {
				return nil, err
			}
			report.Figure8(w, rows)
			docs = append(docs, report.FigureDoc{Figure: "figure8", Rows: rows})
		case "9":
			rows, err := h.Figure9(apps)
			if err != nil {
				return nil, err
			}
			report.Figure9(w, rows)
			docs = append(docs, report.FigureDoc{Figure: "figure9", Rows: rows})
		case "table4":
			rows, err := h.Table4(apps)
			if err != nil {
				return nil, err
			}
			report.Table4(w, rows)
			docs = append(docs, report.FigureDoc{Figure: "table4", Rows: rows})
		default:
			return nil, fmt.Errorf("serve: unknown figure %q (want 5, 6, 7, 8, 9, or table4)", f)
		}
	}
	return docs, nil
}
