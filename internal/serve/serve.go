// Package serve implements the experiment daemon behind cmd/rnuma-serve:
// an HTTP/JSON surface over the harness. Clients upload artifacts
// (recorded traces, workload specs, traffic scenarios — content-addressed,
// so re-uploading identical bytes is a no-op), submit jobs (replay, axis
// sweeps, run diffs, paper figures), poll or stream progress, and fetch
// rendered reports as text or JSON.
//
// Every job runs on its own Harness — its own Progress and Log writers,
// its own Simulations counter — over one shared harness.Store, so repeated
// and overlapping submissions are free: two concurrent identical sweeps
// run each point exactly once (singleflight), and with a DiskStore a
// restarted daemon re-simulates nothing it already ran.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"rnuma/internal/harness"
)

// Options configures a Server.
type Options struct {
	// Scale multiplies workload iteration counts (harness.Harness.Scale);
	// 0 means 1.0.
	Scale float64
	// Seed perturbs workload RNGs (harness.Harness.Seed).
	Seed int64
	// Workers bounds each job's simulation fan-out (harness.Harness.Workers;
	// 0 means GOMAXPROCS).
	Workers int
	// MaxJobs bounds how many jobs execute concurrently; further
	// submissions queue. 0 means 2.
	MaxJobs int
	// Store is the shared result store. nil means a fresh in-memory store;
	// pass a harness.DiskStore to persist results across restarts.
	Store harness.Store
	// Log, if non-nil, receives one line per server-level event (job
	// submitted/finished, artifact uploaded).
	Log io.Writer
}

// Server is the daemon's state: the shared store, the artifact registry,
// and the job table.
type Server struct {
	opts  Options
	store harness.Store
	sem   chan struct{} // job-concurrency semaphore

	mu        sync.Mutex
	artifacts map[string]*Artifact // by content ID
	jobs      map[string]*jobState // by job ID
	jobSeq    int
	logMu     sync.Mutex
}

// New builds a server.
func New(opts Options) *Server {
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 2
	}
	st := opts.Store
	if st == nil {
		st = harness.NewMemoryStore()
	}
	return &Server{
		opts:      opts,
		store:     st,
		sem:       make(chan struct{}, opts.MaxJobs),
		artifacts: make(map[string]*Artifact),
		jobs:      make(map[string]*jobState),
	}
}

// Store returns the server's shared result store.
func (s *Server) Store() harness.Store { return s.store }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log == nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.opts.Log, format+"\n", args...)
	s.logMu.Unlock()
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /api/v1/store", s.handleStore)
	mux.HandleFunc("POST /api/v1/artifacts", s.handleUpload)
	mux.HandleFunc("GET /api/v1/artifacts", s.handleArtifacts)
	mux.HandleFunc("GET /api/v1/artifacts/{id}", s.handleArtifact)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.handleReport)
	return mux
}

// apiError is the JSON error body every failing endpoint returns.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStore reports the shared store's observability snapshot plus the
// server's own counters: total simulations actually executed versus jobs
// served (the warm-vs-cold story in one place).
func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	njobs := len(s.jobs)
	var sims int64
	for _, js := range s.jobs {
		sims += js.simulations()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Store       harness.StoreStats `json:"store"`
		Jobs        int                `json:"jobs"`
		Simulations int64              `json:"simulations"`
	}{s.store.Stats(), njobs, sims})
}

func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*Artifact, 0, len(s.artifacts))
	for _, a := range s.artifacts {
		out = append(out, a)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	a, err := s.artifact(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, a)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, js := range s.jobs {
		out = append(out, js.info())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	js, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, js.info())
}
