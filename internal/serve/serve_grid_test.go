package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"rnuma/internal/report"
)

// TestGridJob drives a grid job end to end: cold submission simulates,
// the report carries the heat map and knee conclusions in text and the
// GridDoc in JSON, and a warm resubmission reports 0 simulations with a
// byte-identical report.
func TestGridJob(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	a := upload(t, ts, KindTrace, recordTraceScaled(t, "fft", 0.02))

	req := JobRequest{
		Type:     "grid",
		Artifact: a.ID,
		Axis:     "block",
		Values:   "16,32",
		AxisB:    "threshold",
		ValuesB:  "16,64",
	}
	info := waitJob(t, ts, submit(t, ts, req).ID)
	if info.Status != StatusDone {
		t.Fatalf("grid job: %s (%s)", info.Status, info.Error)
	}
	if info.Simulations == 0 {
		t.Error("cold grid job reported 0 simulations")
	}

	code, text := fetchReport(t, ts, info.ID, "")
	if code != http.StatusOK {
		t.Fatalf("report: %d: %s", code, text)
	}
	for _, want := range []string{"GRID — fft: block (x) x threshold (y)", "heat map (R-NUMA/best):", "knees (R-NUMA/best bound 1.10):", "worst cell:"} {
		if !strings.Contains(text, want) {
			t.Errorf("grid report missing %q (report:\n%s)", want, text)
		}
	}

	code, body := fetchReport(t, ts, info.ID, "json")
	if code != http.StatusOK {
		t.Fatalf("json report: %d: %s", code, body)
	}
	var doc report.GridDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("decode GridDoc: %v", err)
	}
	if doc.Workload != "fft" || doc.AxisX != "block" || doc.AxisY != "threshold" {
		t.Errorf("doc identity = %q %s x %s", doc.Workload, doc.AxisX, doc.AxisY)
	}
	if len(doc.Cells) != 2 || len(doc.Cells[0]) != 2 || len(doc.Knees) != 4 {
		t.Errorf("doc shape: %dx%d cells, %d knees", len(doc.Cells), len(doc.Cells[0]), len(doc.Knees))
	}
	if doc.WorstRNUMAOverBest <= 0 {
		t.Errorf("worst ratio = %v", doc.WorstRNUMAOverBest)
	}

	// Warm resubmission: every cell is already in the shared store.
	warm := waitJob(t, ts, submit(t, ts, req).ID)
	if warm.Status != StatusDone {
		t.Fatalf("warm grid job: %s (%s)", warm.Status, warm.Error)
	}
	if warm.Simulations != 0 {
		t.Errorf("warm grid job ran %d simulations, want 0", warm.Simulations)
	}
	if _, warmText := fetchReport(t, ts, warm.ID, ""); warmText != text {
		t.Error("warm grid report differs from the cold report")
	}
}

// TestSubmitValueErrors pins the 422 surface: requests whose axis/value
// fields are present but unparseable answer 422 naming the offending
// token, while structurally incomplete requests stay 400.
func TestSubmitValueErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	a := upload(t, ts, KindTrace, recordTraceScaled(t, "fft", 0.02))

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var msg struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&msg) //nolint:errcheck // error bodies only
		return resp.StatusCode, msg.Error
	}

	for _, tc := range []struct {
		name, body string
		code       int
		token      string
	}{
		{"sweep bad value", fmt.Sprintf(`{"type":"sweep","artifact":"%s","axis":"nodes","values":"4,x"}`, a.ID), 422, `"x"`},
		{"sweep bad axis", fmt.Sprintf(`{"type":"sweep","artifact":"%s","axis":"warp","values":"4"}`, a.ID), 422, `"warp"`},
		{"sweep empty values", fmt.Sprintf(`{"type":"sweep","artifact":"%s","axis":"nodes","values":","}`, a.ID), 422, `","`},
		{"grid bad valuesB", fmt.Sprintf(`{"type":"grid","artifact":"%s","axis":"block","values":"16,32","axisB":"threshold","valuesB":"16,zap"}`, a.ID), 422, `"zap"`},
		{"grid bad dilate ratio", fmt.Sprintf(`{"type":"grid","artifact":"%s","axis":"dilate","values":"1/0","axisB":"threshold","valuesB":"16"}`, a.ID), 422, `"1/0"`},
		{"grid equal axes", fmt.Sprintf(`{"type":"grid","artifact":"%s","axis":"block","values":"16","axisB":"block","valuesB":"32"}`, a.ID), 422, "differ"},
		{"grid bad bound", fmt.Sprintf(`{"type":"grid","artifact":"%s","axis":"block","values":"16","axisB":"threshold","valuesB":"32","kneeBound":-1}`, a.ID), 422, "kneeBound"},
		{"grid missing axisB", fmt.Sprintf(`{"type":"grid","artifact":"%s","axis":"block","values":"16"}`, a.ID), 400, "grid needs"},
		{"grid unknown artifact", `{"type":"grid","artifact":"nope","axis":"block","values":"16","axisB":"threshold","valuesB":"32"}`, 400, `"nope"`},
	} {
		code, msg := post(tc.body)
		if code != tc.code {
			t.Errorf("%s: %d (%s), want %d", tc.name, code, msg, tc.code)
		}
		if !strings.Contains(msg, tc.token) {
			t.Errorf("%s: error %q does not name %s", tc.name, msg, tc.token)
		}
	}
}
