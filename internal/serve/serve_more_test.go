package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

// TestListingAndStoreEndpoints drives the read-only surface: artifact
// and job listings, single-artifact lookup by prefix, the store
// counters, and the server event log.
func TestListingAndStoreEndpoints(t *testing.T) {
	var log bytes.Buffer
	s, ts := newTestServer(t, Options{Log: &log})

	trace := upload(t, ts, "", recordTrace(t, "fft"))
	specData, err := os.ReadFile("../../examples/specs/halo.json")
	if err != nil {
		t.Fatal(err)
	}
	spec := upload(t, ts, "", specData)
	if spec.Kind != KindSpec {
		t.Errorf("spec sniffed as %s", spec.Kind)
	}
	scenario, err := os.ReadFile("../../examples/scenarios/steady-mix.json")
	if err != nil {
		t.Fatal(err)
	}
	traffic := upload(t, ts, "", scenario)
	if traffic.Kind != KindTraffic {
		t.Errorf("scenario sniffed as %s", traffic.Kind)
	}

	info := submit(t, ts, JobRequest{Type: "replay", Artifact: trace.ID})
	waitJob(t, ts, info.ID)

	resp, err := http.Get(ts.URL + "/api/v1/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	var arts []Artifact
	if err := json.NewDecoder(resp.Body).Decode(&arts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(arts) != 3 {
		t.Errorf("artifact list has %d entries, want 3", len(arts))
	}

	resp, err = http.Get(ts.URL + "/api/v1/artifacts/" + trace.ID[:12])
	if err != nil {
		t.Fatal(err)
	}
	var got Artifact
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ID != trace.ID {
		t.Errorf("prefix lookup returned %s, want %s", got.ID, trace.ID)
	}
	resp, err = http.Get(ts.URL + "/api/v1/artifacts/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact: %s, want 404", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 1 || jobs[0].ID != info.ID {
		t.Errorf("job list = %+v, want exactly %s", jobs, info.ID)
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s, want 404", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/api/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Store       harnessStats `json:"store"`
		Jobs        int          `json:"jobs"`
		Simulations int64        `json:"simulations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Jobs != 1 || st.Simulations == 0 || st.Store.Entries == 0 {
		t.Errorf("store snapshot = %+v, want 1 job with work done", st)
	}

	for _, want := range []string{"artifact", "job j1: submitted replay", "job j1: done"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("server log missing %q:\n%s", want, log.String())
		}
	}
	_ = s
}

// harnessStats mirrors harness.StoreStats for decoding without the import.
type harnessStats struct {
	Entries  int   `json:"entries"`
	Started  int64 `json:"started"`
	Hits     int64 `json:"hits"`
	DiskHits int64 `json:"diskHits"`
}

// TestSniffKind pins the artifact sniffer: binary → trace, JSON with a
// top-level "clients" key → traffic, and any other JSON object → spec,
// even when "clients" appears in a name or value.
func TestSniffKind(t *testing.T) {
	for _, tc := range []struct {
		data string
		want string
	}{
		{"\x00binary", KindTrace},
		{"  {\"clients\": []}", KindTraffic},
		{`{"name": "clients", "note": "drives many clients"}`, KindSpec},
		{`{"name": "halo"}`, KindSpec},
	} {
		if got := sniffKind([]byte(tc.data)); got != tc.want {
			t.Errorf("sniffKind(%q) = %s, want %s", tc.data, got, tc.want)
		}
	}
}

// TestArtifactResolution pins the ref rules: exact ID, unique >=8-char
// prefix, unique name — and ambiguity as an error, never a guess.
func TestArtifactResolution(t *testing.T) {
	s := New(Options{Scale: testScale})
	trace1 := recordTrace(t, "fft")
	a1, created, err := s.AddArtifact(KindTrace, trace1)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first upload not reported as created")
	}
	if _, created, err := s.AddArtifact(KindTrace, trace1); err != nil || created {
		t.Errorf("duplicate upload: created=%v err=%v, want existing entry", created, err)
	}
	// A second capture of the same workload: same name, different bytes.
	a2, _, err := s.AddArtifact(KindTrace, recordTraceScaled(t, "fft", 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID == a2.ID {
		t.Fatal("distinct captures share an ID")
	}
	if got, err := s.artifact(a1.ID); err != nil || got.ID != a1.ID {
		t.Errorf("exact ID lookup: %v, %v", got, err)
	}
	if got, err := s.artifact(a2.ID[:8]); err != nil || got.ID != a2.ID {
		t.Errorf("8-char prefix lookup: %v, %v", got, err)
	}
	if _, err := s.artifact(a1.ID[:7]); err == nil {
		t.Error("7-char prefix resolved; prefixes must be >= 8 chars")
	}
	if _, err := s.artifact("fft"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("duplicate-name ref: err = %v, want ambiguous", err)
	}
	if _, err := s.artifact("nope"); err == nil {
		t.Error("unknown ref resolved")
	}

	spec, _, err := s.AddArtifact("", mustRead(t, "../../examples/specs/halo.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.artifact(spec.Name); err != nil || got.ID != spec.ID {
		t.Errorf("unique-name lookup: %v, %v", got, err)
	}
}

// recordTraceScaled is recordTrace at an explicit scale (distinct
// bytes, same embedded workload name).
func recordTraceScaled(t *testing.T, app string, scale float64) []byte {
	t.Helper()
	a, ok := workloads.ByName(app)
	if !ok {
		t.Fatalf("unknown app %q", app)
	}
	cfg := workloads.DefaultConfig()
	cfg.Scale = scale
	var buf bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&buf, a.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSpecAndTrafficReplay covers the two non-trace replay paths: a
// workload spec and a multi-tenant traffic scenario (per-client table).
func TestSpecAndTrafficReplay(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := upload(t, ts, "", mustRead(t, "../../examples/specs/halo.json"))
	info := submit(t, ts, JobRequest{Type: "replay", Artifact: spec.ID, System: "ccnuma"})
	if got := waitJob(t, ts, info.ID); got.Status != StatusDone {
		t.Fatalf("spec replay failed: %s", got.Error)
	}
	_, text := fetchReport(t, ts, info.ID, "")
	if !strings.Contains(text, "spec: halo") || !strings.Contains(text, "run: CC-NUMA") {
		t.Errorf("spec replay report:\n%s", text)
	}

	// A scenario referencing its spec by absolute path (uploaded
	// scenarios resolve phase paths against the daemon's cwd).
	dir := t.TempDir()
	specPath := filepath.Join(dir, "halo.json")
	if err := os.WriteFile(specPath, mustRead(t, "../../examples/specs/halo.json"), 0o644); err != nil {
		t.Fatal(err)
	}
	scenario := fmt.Sprintf(`{
  "name": "solo-mix",
  "clients": [
    {"name": "only", "rate_fraction": 1.0,
     "arrival": {"process": "poisson"},
     "phases": [{"spec": %q}]}
  ]
}`, specPath)
	art := upload(t, ts, "", []byte(scenario))
	if art.Kind != KindTraffic {
		t.Fatalf("scenario sniffed as %s", art.Kind)
	}
	info = submit(t, ts, JobRequest{Type: "replay", Artifact: art.ID})
	if got := waitJob(t, ts, info.ID); got.Status != StatusDone {
		t.Fatalf("traffic replay failed: %s", got.Error)
	}
	_, text = fetchReport(t, ts, info.ID, "")
	if !strings.Contains(text, "traffic: ") || !strings.Contains(text, "CLIENTS") {
		t.Errorf("traffic replay report missing per-client table:\n%s", text)
	}
}

// TestExperimentsJobs drives the figure job type: explicit figures,
// the figure-6 default, and the unknown-figure error path.
func TestExperimentsJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	info := submit(t, ts, JobRequest{Type: "experiments", Figures: []string{"table4", "5"}, Apps: []string{"fft"}})
	if got := waitJob(t, ts, info.ID); got.Status != StatusDone {
		t.Fatalf("experiments job failed: %s", got.Error)
	}
	_, text := fetchReport(t, ts, info.ID, "")
	if !strings.Contains(text, "refetch@10%pg") {
		t.Errorf("report missing Table 4:\n%s", text)
	}
	var docs []json.RawMessage
	if err := json.Unmarshal([]byte(second(fetchReport(t, ts, info.ID, "json"))), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Errorf("json report has %d figure docs, want 2", len(docs))
	}

	info = submit(t, ts, JobRequest{Type: "experiments", Apps: []string{"fft"}})
	if got := waitJob(t, ts, info.ID); got.Status != StatusDone {
		t.Fatalf("default experiments job failed: %s", got.Error)
	}

	info = submit(t, ts, JobRequest{Type: "experiments", Figures: []string{"12"}})
	if got := waitJob(t, ts, info.ID); got.Status != StatusFailed || !strings.Contains(got.Error, "unknown figure") {
		t.Errorf("unknown figure: %+v", got)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + info.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("failed job report: %s, want 422", resp.Status)
	}
}

// TestProgressFollowAndOffsets covers the streaming mode and the
// offset-window reads of the plain poll mode.
func TestProgressFollowAndOffsets(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	a := upload(t, ts, "", recordTrace(t, "fft"))
	info := submit(t, ts, JobRequest{Type: "replay", Artifact: a.ID})

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + info.ID + "/progress?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := io.ReadAll(resp.Body) // closes when the job finishes
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, ts, info.ID); got.Status != StatusDone {
		t.Fatalf("job failed: %s", got.Error)
	}
	if !strings.Contains(string(streamed), "running") {
		t.Errorf("streamed progress missing run lines:\n%s", streamed)
	}

	// The whole buffer from offset 0, then nothing past the end.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + info.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	full, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	next := resp.Header.Get("X-Next-Offset")
	if len(full) == 0 || next == "0" {
		t.Fatalf("plain progress empty (next=%s)", next)
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + info.ID + "/progress?offset=" + next)
	if err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(rest) != 0 {
		t.Errorf("read past end returned %d bytes", len(rest))
	}
	if resp.Header.Get("X-Job-Status") != StatusDone {
		t.Errorf("X-Job-Status = %s", resp.Header.Get("X-Job-Status"))
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs/j999/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job progress: %s, want 404", resp.Status)
	}
}

// TestUploadEdgeCases: empty bodies are rejected, explicit kinds are
// honored, and a spec uploaded as a trace fails validation.
func TestUploadEdgeCases(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/api/v1/artifacts", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty upload: %s, want 400", resp.Status)
	}

	spec := mustRead(t, "../../examples/specs/halo.json")
	resp, err = http.Post(ts.URL+"/api/v1/artifacts?kind=trace", "application/octet-stream", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("spec-as-trace upload: %s (%s), want 400", resp.Status, body)
	}

	resp, err = http.Post(ts.URL+"/api/v1/artifacts?kind=bogus", "application/octet-stream", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus kind: %s, want 400", resp.Status)
	}
}

func second(_ int, body string) string { return body }
