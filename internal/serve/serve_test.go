package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rnuma/internal/harness"
	"rnuma/internal/tracefile"
	"rnuma/internal/workloads"
)

const testScale = 0.05

// recordTrace encodes a catalog application's streams at the base shape.
func recordTrace(t *testing.T, app string) []byte {
	t.Helper()
	a, ok := workloads.ByName(app)
	if !ok {
		t.Fatalf("unknown app %q", app)
	}
	cfg := workloads.DefaultConfig()
	cfg.Scale = testScale
	var buf bytes.Buffer
	if _, _, err := tracefile.WriteWorkload(&buf, a.Build(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer starts a server over httptest; opts.Scale defaults to
// the test scale.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Scale == 0 {
		opts.Scale = testScale
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func upload(t *testing.T, ts *httptest.Server, kind string, data []byte) Artifact {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/artifacts?kind="+kind, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: %s: %s", resp.Status, body)
	}
	var a Artifact
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	return a
}

func submit(t *testing.T, ts *httptest.Server, req JobRequest) JobInfo {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitJob polls until the job leaves queued/running.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.Status == StatusDone || info.Status == StatusFailed {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobInfo{}
}

func fetchReport(t *testing.T, ts *httptest.Server, id, format string) (int, string) {
	t.Helper()
	url := ts.URL + "/api/v1/jobs/" + id + "/report"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestUploadDedup: artifacts are content-addressed — a re-upload returns
// the existing entry, and sniffing classifies a binary trace without an
// explicit kind.
func TestUploadDedup(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	data := recordTrace(t, "fft")

	a1 := upload(t, ts, KindTrace, data)
	if a1.Kind != KindTrace || a1.Name != "fft" || a1.Nodes != 8 {
		t.Fatalf("artifact = %+v", a1)
	}
	a2 := upload(t, ts, "", data) // sniffed
	if a2.ID != a1.ID || a2.Kind != KindTrace {
		t.Errorf("re-upload: got %s/%s, want same artifact %s", a2.ID, a2.Kind, a1.ID)
	}

	resp, err := http.Post(ts.URL+"/api/v1/artifacts?kind=trace", "application/octet-stream",
		strings.NewReader("definitely not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad trace upload: %s, want 400", resp.Status)
	}
}

// TestReplayMemoization is the warm-resubmission acceptance check: the
// second identical replay job executes zero new simulations and returns
// a byte-identical report.
func TestReplayMemoization(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	a := upload(t, ts, KindTrace, recordTrace(t, "fft"))

	req := JobRequest{Type: "replay", Artifact: a.ID, System: "rnuma", Normalize: true}
	j1 := waitJob(t, ts, submit(t, ts, req).ID)
	if j1.Status != StatusDone {
		t.Fatalf("job 1: %+v", j1)
	}
	if j1.Simulations == 0 {
		t.Fatal("cold replay reported zero simulations")
	}
	code, r1 := fetchReport(t, ts, j1.ID, "text")
	if code != http.StatusOK {
		t.Fatalf("report: %d: %s", code, r1)
	}
	if !strings.Contains(r1, "run: R-NUMA") || !strings.Contains(r1, "normalized exec time:") {
		t.Errorf("report missing expected sections:\n%s", r1)
	}

	j2 := waitJob(t, ts, submit(t, ts, req).ID)
	if j2.Status != StatusDone {
		t.Fatalf("job 2: %+v", j2)
	}
	if j2.Simulations != 0 {
		t.Errorf("warm replay executed %d simulations, want 0", j2.Simulations)
	}
	if _, r2 := fetchReport(t, ts, j2.ID, "text"); r2 != r1 {
		t.Errorf("warm report differs from cold report:\n--- cold\n%s\n--- warm\n%s", r1, r2)
	}

	// Progress of the cold job carried the harness's log lines.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j1.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Job-Status") != StatusDone {
		t.Errorf("X-Job-Status = %q", resp.Header.Get("X-Job-Status"))
	}
	if !strings.Contains(string(body), "running") {
		t.Errorf("progress stream missing log lines: %q", body)
	}
}

// TestConcurrentSweepsSingleflight is the tentpole acceptance check: N
// concurrent identical sweep submissions run each point's simulations
// exactly once between them, and every report — plus a later serial
// resubmission — is byte-identical.
func TestConcurrentSweepsSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxJobs: 8})
	a := upload(t, ts, KindTrace, recordTrace(t, "fft"))
	req := JobRequest{Type: "sweep", Artifact: a.ID, Axis: "nodes", Values: "4,8"}

	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, ts, req).ID
		}(i)
	}
	wg.Wait()

	// 2 points x 4 systems (ideal baseline + CC-NUMA + S-COMA + R-NUMA).
	const wantSims = 8
	var total int64
	reports := make([]string, n)
	for i, id := range ids {
		info := waitJob(t, ts, id)
		if info.Status != StatusDone {
			t.Fatalf("job %s: %+v", id, info)
		}
		total += info.Simulations
		_, reports[i] = fetchReport(t, ts, id, "text")
	}
	if total != wantSims {
		t.Errorf("total simulations across %d concurrent identical sweeps = %d, want %d", n, total, wantSims)
	}
	if st := s.Store().Stats(); st.Started != wantSims {
		t.Errorf("store started %d simulations, want %d", st.Started, wantSims)
	}
	for i := 1; i < n; i++ {
		if reports[i] != reports[0] {
			t.Errorf("concurrent report %d differs:\n--- 0\n%s\n--- %d\n%s", i, reports[0], i, reports[i])
		}
	}

	// A serial resubmission is fully warm and byte-identical.
	j := waitJob(t, ts, submit(t, ts, req).ID)
	if j.Simulations != 0 {
		t.Errorf("serial resubmission executed %d simulations, want 0", j.Simulations)
	}
	if _, r := fetchReport(t, ts, j.ID, "text"); r != reports[0] {
		t.Errorf("serial report differs from concurrent reports:\n%s", r)
	}
}

// TestDiskStoreRestartAcrossServers: a second server over the same
// -store-dir re-simulates nothing and reproduces the report byte for
// byte.
func TestDiskStoreRestartAcrossServers(t *testing.T) {
	dir := t.TempDir()
	data := recordTrace(t, "fft")
	req := func(id string) JobRequest {
		return JobRequest{Type: "replay", Artifact: id, System: "rnuma", Normalize: true}
	}

	ds1, err := harness.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Options{Store: ds1})
	a1 := upload(t, ts1, KindTrace, data)
	j1 := waitJob(t, ts1, submit(t, ts1, req(a1.ID)).ID)
	if j1.Status != StatusDone || j1.Simulations == 0 {
		t.Fatalf("cold job: %+v", j1)
	}
	_, r1 := fetchReport(t, ts1, j1.ID, "text")

	ds2, err := harness.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Options{Store: ds2})
	a2 := upload(t, ts2, KindTrace, data)
	j2 := waitJob(t, ts2, submit(t, ts2, req(a2.ID)).ID)
	if j2.Status != StatusDone {
		t.Fatalf("warm job: %+v", j2)
	}
	if j2.Simulations != 0 {
		t.Errorf("restarted server executed %d simulations, want 0 (disk hits)", j2.Simulations)
	}
	if _, r2 := fetchReport(t, ts2, j2.ID, "text"); r2 != r1 {
		t.Errorf("report across restart differs:\n--- before\n%s\n--- after\n%s", r1, r2)
	}
	if st := ds2.Stats(); st.DiskHits == 0 {
		t.Error("restarted store reported no disk hits")
	}
}

// TestDiffstatsIdentical: diffing an artifact against itself under one
// system reports identity.
func TestDiffstatsIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	a := upload(t, ts, KindTrace, recordTrace(t, "fft"))
	j := waitJob(t, ts, submit(t, ts, JobRequest{
		Type: "diffstats", Artifact: a.ID, ArtifactB: a.ID, System: "rnuma",
	}).ID)
	if j.Status != StatusDone {
		t.Fatalf("job: %+v", j)
	}
	_, r := fetchReport(t, ts, j.ID, "text")
	if !strings.Contains(r, "runs are identical") {
		t.Errorf("self-diff not identical:\n%s", r)
	}

	// Different systems must differ.
	j2 := waitJob(t, ts, submit(t, ts, JobRequest{
		Type: "diffstats", Artifact: a.ID, ArtifactB: a.ID, System: "ccnuma", SystemB: "scoma",
	}).ID)
	_, r2 := fetchReport(t, ts, j2.ID, "text")
	if !strings.Contains(r2, "runs differ") {
		t.Errorf("cross-system diff reported identical:\n%s", r2)
	}
}

// TestJSONReports: the JSON report documents decode and carry the same
// results the text renderers print.
func TestJSONReports(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	a := upload(t, ts, KindTrace, recordTrace(t, "fft"))

	jr := waitJob(t, ts, submit(t, ts, JobRequest{Type: "replay", Artifact: a.ID, System: "rnuma"}).ID)
	code, body := fetchReport(t, ts, jr.ID, "json")
	if code != http.StatusOK {
		t.Fatalf("json report: %d: %s", code, body)
	}
	var runDoc struct {
		Name   string `json:"name"`
		System string `json:"system"`
		Run    struct {
			ExecCycles int64 `json:"ExecCycles"`
			Refs       int64 `json:"Refs"`
		} `json:"run"`
	}
	if err := json.Unmarshal([]byte(body), &runDoc); err != nil {
		t.Fatalf("decode run doc: %v\n%s", err, body)
	}
	if runDoc.System != "R-NUMA" || runDoc.Run.ExecCycles <= 0 || runDoc.Run.Refs <= 0 {
		t.Errorf("run doc = %+v", runDoc)
	}

	js := waitJob(t, ts, submit(t, ts, JobRequest{Type: "sweep", Artifact: a.ID, Axis: "nodes", Values: "4,8"}).ID)
	_, body = fetchReport(t, ts, js.ID, "json")
	var sweepDoc struct {
		Workload string `json:"workload"`
		Axis     string `json:"axis"`
		Points   []struct {
			Label string  `json:"label"`
			RNUMA float64 `json:"rnuma"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &sweepDoc); err != nil {
		t.Fatalf("decode sweep doc: %v\n%s", err, body)
	}
	if sweepDoc.Axis != "nodes" || len(sweepDoc.Points) != 2 {
		t.Errorf("sweep doc = %+v", sweepDoc)
	}
	for _, p := range sweepDoc.Points {
		if p.RNUMA <= 0 {
			t.Errorf("point %q has non-positive R-NUMA time", p.Label)
		}
	}
}

// TestAPIErrors covers the failure surface: bad submissions, unknown
// jobs, early report fetches, bad formats.
func TestAPIErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"type":"warp"}`); code != http.StatusBadRequest {
		t.Errorf("unknown type: %d, want 400", code)
	}
	if code := post(`{"type":"replay","artifact":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown artifact: %d, want 400", code)
	}
	a := upload(t, ts, KindTrace, recordTrace(t, "fft"))
	if code := post(fmt.Sprintf(`{"type":"sweep","artifact":"%s"}`, a.ID)); code != http.StatusBadRequest {
		t.Errorf("sweep without axis: %d, want 400", code)
	}

	if code, _ := fetchReport(t, ts, "j999", ""); code != http.StatusNotFound {
		t.Errorf("report of unknown job: %d, want 404", code)
	}
	j := waitJob(t, ts, submit(t, ts, JobRequest{Type: "replay", Artifact: a.ID}).ID)
	if code, _ := fetchReport(t, ts, j.ID, "yaml"); code != http.StatusBadRequest {
		t.Errorf("bad format: %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}
