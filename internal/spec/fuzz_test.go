package spec

import (
	"encoding/json"
	"testing"
)

// FuzzSpec asserts the JSON spec parser's contract on untrusted input
// (mirroring internal/tracefile's FuzzReader): malformed documents must
// surface as errors — never panics — and anything Parse accepts must be
// internally consistent: it validates, re-marshals, and re-parses to an
// equally valid spec. CI runs this for a short smoke window
// (`go test -fuzz=FuzzSpec -fuzztime=10s`); the unit-test mode replays
// the seed corpus on every `go test`.
func FuzzSpec(f *testing.F) {
	// Seed corpus: the documented example, a spec touching every op and
	// the new knobs (node subsets, zipf/explicit popularity), and a few
	// near-miss documents so the fuzzer starts at the validation edges.
	f.Add([]byte(`{
	  "name": "halo",
	  "regions": [
	    {"name": "frames", "pages": 60, "placement": "node"},
	    {"name": "table",  "pages": 8,  "placement": "global"}
	  ],
	  "phases": [
	    {"iters": 4, "scaled": true, "steps": [
	      {"op": "rewrite", "region": "frames", "density": 8, "gap": 6},
	      {"op": "sweep",   "region": "frames", "from": "neighbor:1", "density": 6, "gap": 30},
	      {"op": "shared",  "region": "table", "repeats": 2, "gap": 12},
	      {"op": "compute", "refs": 1500, "gap": 250},
	      {"op": "barrier"}
	    ]}
	  ]
	}`))
	f.Add([]byte(`{
	  "name": "all-ops",
	  "seed": 9,
	  "regions": [
	    {"name": "a", "pages": 4, "placement": "node"},
	    {"name": "g", "pages": 6, "placement": "global"}
	  ],
	  "phases": [
	    {"nodes": [0, 2], "steps": [
	      {"op": "scatter", "region": "a", "from": "all-remote", "density": 2},
	      {"op": "stride", "region": "g", "stride": 32, "count": 4},
	      {"op": "windowed", "region": "g", "window": 3, "sweeps": 2},
	      {"op": "popular", "region": "g", "dist": "zipf", "theta": 1.5, "picks": 10},
	      {"op": "popular", "region": "g", "dist": "explicit", "weights": [3, 1], "picks": 5},
	      {"op": "sweep", "region": "a", "from": "all", "hot": 2, "shuffle": true, "write": true},
	      {"op": "barrier"}
	    ]}
	  ]
	}`))
	f.Add([]byte(`{"name": "x", "regions": [{"name": "a", "pages": 1, "placement": "node"}], "phases": [{"steps": [{"op": "barrier"}]}]}`))
	f.Add([]byte(`{"name": "x", "regions": [{"name": "a", "pages": 1, "placement": "node"}], "phases": [{"nodes": [-1], "steps": [{"op": "barrier"}]}]}`))
	f.Add([]byte(`{"name": "x", "regions": [], "phases": []}`))
	f.Add([]byte(`{"name":`))
	f.Add([]byte(`[1, 2, 3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Parse includes validation; an accepted spec must agree.
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a spec Validate rejects: %v", err)
		}
		// Round-trip: re-marshaling an accepted spec must produce a
		// document Parse accepts again (the struct carries no state the
		// JSON form cannot represent).
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal of accepted spec failed: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("re-parse of marshaled spec failed: %v\ndoc: %s", err, out)
		}
	})
}
