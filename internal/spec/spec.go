// Package spec builds workloads from declarative JSON descriptions, so a
// new memory-system scenario needs a file rather than a code change.
//
// A spec names memory regions (per-node or globally interleaved page
// ranges) and a sequence of phases; each phase repeats a list of steps
// that apply the same access-pattern primitives the built-in Table 3
// generators use (sweep, shared sweep, scatter, strided, windowed,
// rewrite, weighted-popularity draws, local compute, barrier). A phase
// may restrict its steps to a subset of nodes ("nodes": [0, 1]), and the
// "popular" op draws pages under a zipf or explicit-weight popularity
// distribution — the skewed reuse sets of Figure 5. The result is a
// regular workloads.Workload: it runs on the simulated machine, records
// to a trace file, and schedules through the experiment harness exactly
// like a catalog application.
//
// Example (a producer-consumer halo exchange with a hot shared table):
//
//	{
//	  "name": "halo",
//	  "regions": [
//	    {"name": "frames", "pages": 60, "placement": "node"},
//	    {"name": "table",  "pages": 8,  "placement": "global"}
//	  ],
//	  "phases": [
//	    {"iters": 4, "scaled": true, "steps": [
//	      {"op": "rewrite", "region": "frames", "density": 8, "gap": 6},
//	      {"op": "sweep",   "region": "frames", "from": "neighbor:1", "density": 6, "gap": 30},
//	      {"op": "shared",  "region": "table", "repeats": 2, "gap": 12},
//	      {"op": "compute", "refs": 1500, "gap": 250},
//	      {"op": "barrier"}
//	    ]}
//	  ]
//	}
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"rnuma/internal/addr"
	"rnuma/internal/workloads"
)

// specSeed is the builder's built-in RNG seed for spec workloads; the
// spec's own Seed and the config's Seed are XORed in (all default to 0,
// so spec builds are bit-reproducible by default).
const specSeed = 0x5EC0DE

// Spec is a declarative workload description.
type Spec struct {
	// Name identifies the workload (harness registry, reports, traces).
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Seed perturbs the builder RNG (shuffle/scatter orders). 0 keeps the
	// package default, so identical specs build identical traces.
	Seed int64 `json:"seed,omitempty"`

	Regions []Region `json:"regions"`
	Phases  []Phase  `json:"phases"`
}

// Region is a named range of shared pages.
type Region struct {
	Name string `json:"name"`
	// Pages is the region size: pages per node for "node" placement,
	// total pages for "global" placement.
	Pages int `json:"pages"`
	// Placement is "node" (each node owns a contiguous slice, homed
	// there) or "global" (one slice with round-robin homes).
	Placement string `json:"placement"`
}

// Phase repeats its steps Iters times (each iteration ends where the
// steps say — typically with an explicit barrier step).
type Phase struct {
	// Iters is the repeat count (default 1). With Scaled, it multiplies
	// by the run's workload scale like the built-in generators' iteration
	// counts (minimum 2), so tests and full runs share one spec.
	Iters  int    `json:"iters,omitempty"`
	Scaled bool   `json:"scaled,omitempty"`
	Steps  []Step `json:"steps"`

	// Nodes restricts the phase's steps to a subset of nodes (empty =
	// all): producer-only phases, straggler studies, the lu-style load
	// imbalance of Section 5.5. Barrier steps remain global — every CPU
	// in the machine rendezvouses — so subset phases stay aligned with
	// the rest of the run. Node ids must exist on the simulated machine
	// (checked at build time against the config).
	Nodes []int `json:"nodes,omitempty"`
}

// Step is one access-pattern primitive applied by every node (except
// "barrier", which is global, and "compute", which is node-local).
type Step struct {
	// Op selects the primitive: sweep, shared, scatter, stride, windowed,
	// rewrite, compute, barrier.
	Op string `json:"op"`

	// Region names the target region (all ops except compute/barrier).
	Region string `json:"region,omitempty"`

	// From selects which node's slice of a "node" region each node
	// targets: "own" (default), "neighbor:<d>" (ring distance d),
	// "all-remote" (every other node's slice), or "all". "global"
	// regions target the whole region ("all", the default) or the node's
	// round-robin share ("share" — e.g. pre-sharing init writes that keep
	// pages classified read-only).
	From string `json:"from,omitempty"`

	// Hot restricts the selection to its first Hot pages (0 = all): the
	// skewed-popularity knob (Figure 5's hot reuse sets).
	Hot int `json:"hot,omitempty"`

	// Shuffle randomizes the page visit order per node per iteration
	// (irregular access, defeats sequential thrash).
	Shuffle bool `json:"shuffle,omitempty"`

	// Density is the blocks touched per page (default: the full page).
	// For rewrite it is the number of blocks dirtied.
	Density int `json:"density,omitempty"`

	// Repeats re-walks the selection (sweep/shared; default 1).
	Repeats int `json:"repeats,omitempty"`

	// Write makes the references stores.
	Write bool `json:"write,omitempty"`

	// Gap is the compute time (cycles) before each reference.
	Gap int `json:"gap,omitempty"`

	// Stride and Count shape the "stride" op: Count blocks per page at
	// the given block stride (FFT-style transpose reads).
	Stride int `json:"stride,omitempty"`
	Count  int `json:"count,omitempty"`

	// Window and Sweeps shape the "windowed" op: march through the
	// selection Window pages at a time, every CPU sweeping each window
	// Sweeps times (radix/fmm-style marching working sets).
	Window int `json:"window,omitempty"`
	Sweeps int `json:"sweeps,omitempty"`

	// Refs is the per-CPU reference count of the "compute" op.
	Refs int `json:"refs,omitempty"`

	// Dist, Picks, Theta, and Weights shape the "popular" op: each CPU
	// draws Picks pages from the selection under a weighted popularity
	// distribution and touches Density blocks of each draw. Dist is
	// "zipf" (rank-weighted 1/(rank+1)^Theta, Theta > 1; the first page
	// of the selection is the hottest) or "explicit" (relative Weights,
	// cycled over the selection when it is longer than the vector).
	Dist    string    `json:"dist,omitempty"`
	Picks   int       `json:"picks,omitempty"`
	Theta   float64   `json:"theta,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
}

// Parse decodes and validates a spec. Unknown fields are errors, so typos
// in workload files fail loudly instead of silently changing the scenario.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the JSON document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

var validOps = map[string]bool{
	"sweep": true, "shared": true, "scatter": true, "stride": true,
	"windowed": true, "rewrite": true, "compute": true, "barrier": true,
	"popular": true,
}

// stepFields lists the knobs each op consumes. Any other field set on a
// step is a misplaced or typo'd knob: it would silently change nothing,
// so validation rejects it (the same contract DisallowUnknownFields
// enforces for unknown names).
var stepFields = map[string]map[string]bool{
	"barrier":  {},
	"compute":  fields("refs", "gap"),
	"sweep":    fields("region", "from", "hot", "shuffle", "density", "repeats", "write", "gap"),
	"shared":   fields("region", "from", "hot", "shuffle", "density", "repeats", "write", "gap"),
	"scatter":  fields("region", "from", "hot", "shuffle", "density", "write", "gap"),
	"stride":   fields("region", "from", "hot", "shuffle", "stride", "count", "write", "gap"),
	"windowed": fields("region", "from", "hot", "shuffle", "density", "window", "sweeps", "write", "gap"),
	"rewrite":  fields("region", "from", "hot", "shuffle", "density", "gap"),
	"popular":  fields("region", "from", "hot", "shuffle", "density", "dist", "picks", "theta", "weights", "write", "gap"),
}

func fields(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// checkStepFields rejects knobs the step's op does not consume.
func checkStepFields(st Step) error {
	allowed := stepFields[st.Op]
	for _, f := range []struct {
		name string
		set  bool
	}{
		{"region", st.Region != ""}, {"from", st.From != ""},
		{"hot", st.Hot != 0}, {"shuffle", st.Shuffle},
		{"density", st.Density != 0}, {"repeats", st.Repeats != 0},
		{"write", st.Write}, {"gap", st.Gap != 0},
		{"stride", st.Stride != 0}, {"count", st.Count != 0},
		{"window", st.Window != 0}, {"sweeps", st.Sweeps != 0},
		{"refs", st.Refs != 0}, {"dist", st.Dist != ""},
		{"picks", st.Picks != 0}, {"theta", st.Theta != 0},
		{"weights", len(st.Weights) != 0},
	} {
		if f.set && !allowed[f.name] {
			return fmt.Errorf("field %q is not used by op %q", f.name, st.Op)
		}
	}
	return nil
}

// Validate checks structural consistency (machine-independent; sizing
// against a concrete geometry happens in Build).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: missing name")
	}
	if len(s.Regions) == 0 {
		return fmt.Errorf("spec %q: no regions", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("spec %q: no phases", s.Name)
	}
	regions := make(map[string]Region, len(s.Regions))
	for _, r := range s.Regions {
		if r.Name == "" {
			return fmt.Errorf("spec %q: region with no name", s.Name)
		}
		if _, dup := regions[r.Name]; dup {
			return fmt.Errorf("spec %q: duplicate region %q", s.Name, r.Name)
		}
		if r.Pages < 1 {
			return fmt.Errorf("spec %q: region %q needs at least 1 page", s.Name, r.Name)
		}
		if r.Placement != "node" && r.Placement != "global" {
			return fmt.Errorf("spec %q: region %q placement %q (want node or global)", s.Name, r.Name, r.Placement)
		}
		regions[r.Name] = r
	}
	for pi, ph := range s.Phases {
		if ph.Iters < 0 {
			return fmt.Errorf("spec %q: phase %d has negative iters", s.Name, pi)
		}
		if len(ph.Steps) == 0 {
			return fmt.Errorf("spec %q: phase %d has no steps", s.Name, pi)
		}
		seenNodes := make(map[int]bool, len(ph.Nodes))
		for _, n := range ph.Nodes {
			if n < 0 {
				return fmt.Errorf("spec %q: phase %d names negative node %d", s.Name, pi, n)
			}
			if seenNodes[n] {
				return fmt.Errorf("spec %q: phase %d names node %d twice", s.Name, pi, n)
			}
			seenNodes[n] = true
		}
		for si, st := range ph.Steps {
			where := fmt.Sprintf("spec %q: phase %d step %d (%s)", s.Name, pi, si, st.Op)
			if !validOps[st.Op] {
				return fmt.Errorf("spec %q: phase %d step %d: unknown op %q", s.Name, pi, si, st.Op)
			}
			if err := checkStepFields(st); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
			switch st.Op {
			case "barrier":
				continue
			case "compute":
				if st.Refs < 1 {
					return fmt.Errorf("%s: needs refs >= 1", where)
				}
				continue
			}
			r, ok := regions[st.Region]
			if !ok {
				return fmt.Errorf("%s: unknown region %q", where, st.Region)
			}
			if _, err := parseFrom(st.From, r); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
			if st.Hot < 0 || st.Density < 0 || st.Repeats < 0 || st.Gap < 0 {
				return fmt.Errorf("%s: negative field", where)
			}
			if n := staticSelectable(st, r); n > 0 && st.Hot > n {
				return fmt.Errorf("%s: hot %d exceeds the %d selectable pages of region %q", where, st.Hot, n, r.Name)
			}
			if st.Gap > 0xFFFF {
				return fmt.Errorf("%s: gap %d overflows 16 bits", where, st.Gap)
			}
			if st.Op == "stride" && (st.Stride < 1 || st.Count < 1) {
				return fmt.Errorf("%s: needs stride >= 1 and count >= 1", where)
			}
			if st.Op == "windowed" && st.Window < 1 {
				return fmt.Errorf("%s: needs window >= 1", where)
			}
			if st.Op == "popular" {
				if err := validatePopular(st); err != nil {
					return fmt.Errorf("%s: %w", where, err)
				}
			}
		}
	}
	return nil
}

// validatePopular checks the "popular" op's distribution fields.
func validatePopular(st Step) error {
	if st.Picks < 1 {
		return fmt.Errorf("needs picks >= 1")
	}
	switch st.Dist {
	case "zipf":
		if !(st.Theta > 1) {
			return fmt.Errorf("zipf needs theta > 1, got %v", st.Theta)
		}
		if len(st.Weights) != 0 {
			return fmt.Errorf("zipf takes theta, not weights")
		}
	case "explicit":
		if st.Theta != 0 {
			return fmt.Errorf("explicit takes weights, not theta")
		}
		if len(st.Weights) == 0 {
			return fmt.Errorf("explicit needs at least one weight")
		}
		for i, w := range st.Weights {
			if !(w > 0) || math.IsInf(w, 0) {
				return fmt.Errorf("weight %d is %v (want finite > 0)", i, w)
			}
		}
	default:
		return fmt.Errorf("unknown dist %q (want zipf or explicit)", st.Dist)
	}
	return nil
}

// staticSelectable returns the step's selection size when it is knowable
// without a machine config: a global region targeted whole, or a node
// region targeted at a single node's slice (own/neighbor). Selections
// whose size depends on the node count (all/all-remote on node regions,
// share on global ones) return 0 and are sized at build time instead.
func staticSelectable(st Step, r Region) int {
	if r.Placement == "global" {
		if st.From == "" || st.From == "all" {
			return r.Pages
		}
		return 0
	}
	if st.From == "" || st.From == "own" || strings.HasPrefix(st.From, "neighbor:") {
		return r.Pages
	}
	return 0
}

// fromSel is a parsed From selector.
type fromSel struct {
	kind string // own, neighbor, all-remote, all
	dist int    // neighbor distance
}

func parseFrom(from string, r Region) (fromSel, error) {
	if r.Placement == "global" {
		switch from {
		case "", "all":
			return fromSel{kind: "all"}, nil
		case "share":
			return fromSel{kind: "share"}, nil
		}
		return fromSel{}, fmt.Errorf("global region %q only supports from=all or from=share, got %q", r.Name, from)
	}
	switch {
	case from == "" || from == "own":
		return fromSel{kind: "own"}, nil
	case from == "all-remote":
		return fromSel{kind: "all-remote"}, nil
	case from == "all":
		return fromSel{kind: "all"}, nil
	case strings.HasPrefix(from, "neighbor:"):
		d, err := strconv.Atoi(strings.TrimPrefix(from, "neighbor:"))
		if err != nil || d < 1 {
			return fromSel{}, fmt.Errorf("bad neighbor distance in %q", from)
		}
		return fromSel{kind: "neighbor", dist: d}, nil
	default:
		return fromSel{}, fmt.Errorf("bad from %q (want own, neighbor:<d>, all-remote, or all)", from)
	}
}

// builtRegion is a region materialized against a machine config.
type builtRegion struct {
	r       Region
	global  []addr.PageNum   // placement "global"
	perNode [][]addr.PageNum // placement "node"
}

// Build generates the workload for a machine configuration.
func (s *Spec) Build(cfg workloads.Config) (*workloads.Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := workloads.NewBuilder(cfg, specSeed^s.Seed)
	regions := make(map[string]*builtRegion, len(s.Regions))
	for _, r := range s.Regions {
		br := &builtRegion{r: r}
		if r.Placement == "global" {
			br.global = b.AllocGlobal(r.Pages)
		} else {
			br.perNode = make([][]addr.PageNum, cfg.Nodes)
			for n := 0; n < cfg.Nodes; n++ {
				br.perNode[n] = b.Alloc(addr.NodeID(n), r.Pages)
			}
		}
		regions[r.Name] = br
	}
	for pi, ph := range s.Phases {
		nodes, err := phaseNodes(ph, cfg)
		if err != nil {
			return nil, fmt.Errorf("spec %q: phase %d: %w", s.Name, pi, err)
		}
		iters := ph.Iters
		if iters == 0 {
			iters = 1
		}
		if ph.Scaled {
			iters = cfg.Iters(iters)
		}
		for it := 0; it < iters; it++ {
			for _, st := range ph.Steps {
				if err := applyStep(b, cfg, regions, st, nodes); err != nil {
					return nil, fmt.Errorf("spec %q: %w", s.Name, err)
				}
			}
		}
	}
	desc := s.Description
	if desc == "" {
		desc = "declarative spec workload"
	}
	return b.Finish(s.Name, desc, "(spec)"), nil
}

// selection resolves the pages a node targets for a step. A hot count
// exceeding the selection is an error, not a silent no-op: the knob names
// a working-set size, and a typo'd one must not quietly mean "all pages".
func selection(b *workloads.Builder, cfg workloads.Config, br *builtRegion, sel fromSel, st Step, n addr.NodeID) ([]addr.PageNum, error) {
	var pages []addr.PageNum
	switch sel.kind {
	case "all":
		if br.r.Placement == "global" {
			pages = br.global
		} else {
			for d := 0; d < cfg.Nodes; d++ {
				pages = append(pages, br.perNode[b.Neighbor(n, d)]...)
			}
		}
	case "share":
		pages = workloads.Share(br.global, int(n), cfg.Nodes)
	case "own":
		pages = br.perNode[n]
	case "neighbor":
		pages = br.perNode[b.Neighbor(n, sel.dist%cfg.Nodes)]
	case "all-remote":
		for d := 1; d < cfg.Nodes; d++ {
			pages = append(pages, br.perNode[b.Neighbor(n, d)]...)
		}
	}
	if st.Hot > 0 {
		if st.Hot > len(pages) {
			return nil, fmt.Errorf("step %q on region %q: hot %d exceeds the %d selected pages", st.Op, st.Region, st.Hot, len(pages))
		}
		pages = pages[:st.Hot]
	}
	if st.Shuffle {
		shuffled := append([]addr.PageNum(nil), pages...)
		b.Rand().Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		pages = shuffled
	}
	return pages, nil
}

// phaseNodes resolves a phase's node subset against the machine config
// (empty = every node).
func phaseNodes(ph Phase, cfg workloads.Config) ([]addr.NodeID, error) {
	if len(ph.Nodes) == 0 {
		all := make([]addr.NodeID, cfg.Nodes)
		for n := range all {
			all[n] = addr.NodeID(n)
		}
		return all, nil
	}
	out := make([]addr.NodeID, 0, len(ph.Nodes))
	for _, n := range ph.Nodes {
		if n >= cfg.Nodes {
			return nil, fmt.Errorf("names node %d, machine has %d nodes", n, cfg.Nodes)
		}
		out = append(out, addr.NodeID(n))
	}
	return out, nil
}

// applyStep emits one step's references for every node in the phase's
// subset (barriers stay global).
func applyStep(b *workloads.Builder, cfg workloads.Config, regions map[string]*builtRegion, st Step, nodes []addr.NodeID) error {
	switch st.Op {
	case "barrier":
		b.Barrier()
		return nil
	case "compute":
		for _, n := range nodes {
			b.LocalCompute(n, st.Refs, st.Gap)
		}
		return nil
	}
	br := regions[st.Region]
	sel, err := parseFrom(st.From, br.r)
	if err != nil {
		return err
	}
	density := st.Density
	if density == 0 || density > b.BlocksPerPage() {
		density = b.BlocksPerPage()
	}
	repeats := st.Repeats
	if repeats == 0 {
		repeats = 1
	}
	sweeps := st.Sweeps
	if sweeps == 0 {
		sweeps = 1
	}
	for _, n := range nodes {
		pages, err := selection(b, cfg, br, sel, st, n)
		if err != nil {
			return err
		}
		switch st.Op {
		case "sweep":
			b.Sweep(n, pages, density, repeats, st.Write, st.Gap)
		case "shared":
			b.SweepShared(n, pages, density, repeats, st.Write, st.Gap)
		case "scatter":
			b.Scatter(n, pages, density, st.Write, st.Gap)
		case "stride":
			stride, count, bpp := st.Stride, st.Count, b.BlocksPerPage()
			offs := func(p addr.PageNum) []int {
				base := int(uint32(p)*37) & (bpp - 1)
				out := make([]int, 0, count)
				for k := 0; k < count; k++ {
					out = append(out, (base+k*stride)&(bpp-1))
				}
				return out
			}
			b.SweepOffsets(n, pages, offs, st.Write, st.Gap)
		case "windowed":
			b.Windowed(n, pages, func(p addr.PageNum) []int { return b.RotContig(p, density) },
				st.Window, sweeps, st.Write, st.Gap)
		case "rewrite":
			b.Rewrite(n, pages, density, st.Gap)
		case "popular":
			var sample func() int
			if st.Dist == "zipf" {
				sample = b.ZipfSampler(st.Theta, len(pages))
			} else {
				sample = b.WeightedSampler(st.Weights, len(pages))
			}
			b.Popular(n, pages, sample, st.Picks, density, st.Write, st.Gap)
		}
	}
	return nil
}
