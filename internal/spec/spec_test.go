package spec

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"rnuma/internal/trace"
	"rnuma/internal/workloads"
)

const minimal = `{
  "name": "mini",
  "regions": [
    {"name": "a", "pages": 4, "placement": "node"},
    {"name": "g", "pages": 6, "placement": "global"}
  ],
  "phases": [
    {"iters": 2, "steps": [
      {"op": "sweep", "region": "a", "from": "neighbor:1", "density": 4, "gap": 10},
      {"op": "scatter", "region": "a", "from": "all-remote", "density": 2},
      {"op": "stride", "region": "g", "stride": 32, "count": 4},
      {"op": "windowed", "region": "g", "window": 3, "sweeps": 2, "density": 8},
      {"op": "shared", "region": "g", "repeats": 2, "write": true},
      {"op": "rewrite", "region": "a", "density": 2, "gap": 5},
      {"op": "compute", "refs": 20, "gap": 100},
      {"op": "barrier"}
    ]}
  ]
}`

func testCfg() workloads.Config {
	cfg := workloads.DefaultConfig()
	cfg.Nodes, cfg.CPUsPerNode, cfg.Scale = 4, 2, 0.1
	return cfg
}

func drain(w *workloads.Workload) [][]trace.Ref {
	out := make([][]trace.Ref, len(w.Streams))
	for i, s := range w.Streams {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			out[i] = append(out[i], r)
		}
	}
	return out
}

func TestParseAndBuild(t *testing.T) {
	s, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cfg := testCfg()
	w, err := s.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if w.Name != "mini" {
		t.Errorf("name = %q", w.Name)
	}
	if got, want := len(w.Streams), cfg.Nodes*cfg.CPUsPerNode; got != want {
		t.Fatalf("streams = %d, want %d", got, want)
	}
	// 2 local pages per CPU + 4 pages x 4 nodes + 6 global.
	if want := 2*cfg.Nodes*cfg.CPUsPerNode + 4*cfg.Nodes + 6; w.SharedPages != want {
		t.Errorf("shared pages = %d, want %d", w.SharedPages, want)
	}
	refs := drain(w)
	bpp := cfg.Geometry.BlocksPerPage()
	for c, rs := range refs {
		if len(rs) == 0 {
			t.Fatalf("cpu %d: empty stream", c)
		}
		barriers := 0
		for _, r := range rs {
			if r.Barrier {
				barriers++
				continue
			}
			if int(r.Page) >= w.SharedPages {
				t.Fatalf("cpu %d: page %d outside %d-page segment", c, r.Page, w.SharedPages)
			}
			if int(r.Off) >= bpp {
				t.Fatalf("cpu %d: offset %d outside page", c, r.Off)
			}
		}
		if barriers != 2 {
			t.Errorf("cpu %d: %d barriers, want 2", c, barriers)
		}
	}
}

func TestBuildDeterminismAndSeed(t *testing.T) {
	s, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	a, err := s.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := drain(a), drain(b)
	for c := range ra {
		if len(ra[c]) != len(rb[c]) {
			t.Fatalf("cpu %d: lengths differ across identical builds", c)
		}
		for i := range ra[c] {
			if ra[c][i] != rb[c][i] {
				t.Fatalf("cpu %d ref %d differs across identical builds", c, i)
			}
		}
	}
	// A different config seed must change the scatter order somewhere.
	cfg2 := cfg
	cfg2.Seed = 12345
	c2, err := s.Build(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rc := drain(c2)
	same := true
	for c := range ra {
		for i := range ra[c] {
			if ra[c][i] != rc[c][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seed produced identical streams (scatter order should change)")
	}
}

func TestScaledIters(t *testing.T) {
	tpl := `{"name":"s","regions":[{"name":"a","pages":2,"placement":"node"}],
	         "phases":[{"iters":10,"scaled":%v,"steps":[{"op":"barrier"}]}]}`
	count := func(scaled bool, scale float64) int {
		s, err := Parse([]byte(fmt.Sprintf(tpl, scaled)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := testCfg()
		cfg.Scale = scale
		w, err := s.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range drain(w)[0] {
			if r.Barrier {
				n++
			}
		}
		return n
	}
	if got := count(false, 0.1); got != 10 {
		t.Errorf("unscaled: %d iters, want 10", got)
	}
	if got := count(true, 0.5); got != 5 {
		t.Errorf("scaled 0.5: %d iters, want 5", got)
	}
	if got := count(true, 0.01); got != 2 {
		t.Errorf("scaled floor: %d iters, want 2", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"missing name", `{"regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "missing name"},
		{"no regions", `{"name":"x","phases":[{"steps":[{"op":"barrier"}]}]}`, "no regions"},
		{"no phases", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}]}`, "no phases"},
		{"dup region", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"},{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "duplicate region"},
		{"bad placement", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"left"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "placement"},
		{"zero pages", `{"name":"x","regions":[{"name":"a","pages":0,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "at least 1 page"},
		{"unknown op", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"jog"}]}]}`, "unknown op"},
		{"unknown region", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"b"}]}]}`, "unknown region"},
		{"bad from", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","from":"sideways"}]}]}`, "bad from"},
		{"neighbor zero", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","from":"neighbor:0"}]}]}`, "neighbor"},
		{"global from own", `{"name":"x","regions":[{"name":"g","pages":1,"placement":"global"}],"phases":[{"steps":[{"op":"sweep","region":"g","from":"own"}]}]}`, "global region"},
		{"gap overflow", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","gap":70000}]}]}`, "overflows"},
		{"stride missing", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"stride","region":"a"}]}]}`, "stride"},
		{"windowed missing", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"windowed","region":"a"}]}]}`, "window"},
		{"compute missing refs", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"compute"}]}]}`, "refs"},
		{"empty phase", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[]}]}`, "no steps"},
		{"unknown field", `{"name":"x","regionz":[],"regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "unknown field"},
		{"not json", `{"name":`, ""},
		{"negative node", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"nodes":[-1],"steps":[{"op":"barrier"}]}]}`, "negative node"},
		{"dup node", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"nodes":[1,1],"steps":[{"op":"barrier"}]}]}`, "twice"},
		{"popular no picks", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"popular","region":"a","dist":"zipf","theta":1.5}]}]}`, "picks"},
		{"popular bad dist", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"popular","region":"a","dist":"flat","picks":5}]}]}`, "unknown dist"},
		{"zipf low theta", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"popular","region":"a","dist":"zipf","theta":1.0,"picks":5}]}]}`, "theta"},
		{"zipf with weights", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"popular","region":"a","dist":"zipf","theta":1.5,"picks":5,"weights":[1]}]}]}`, "not weights"},
		{"explicit no weights", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"popular","region":"a","dist":"explicit","picks":5}]}]}`, "weight"},
		{"explicit bad weight", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"popular","region":"a","dist":"explicit","picks":5,"weights":[1,-2]}]}]}`, "weight 1"},
		{"dist on sweep", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","dist":"zipf"}]}]}`, "not used"},
		{"window on sweep", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","window":3}]}]}`, "not used"},
		{"repeats on scatter", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"scatter","region":"a","repeats":2}]}]}`, "not used"},
		{"region on compute", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"compute","refs":5,"region":"a"}]}]}`, "not used"},
		{"gap on barrier", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"barrier","gap":5}]}]}`, "not used"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestPhaseNodeSubset pins the per-phase node-subset semantics: only the
// named nodes' CPUs issue the phase's references, and barriers remain
// global so every CPU still rendezvouses.
func TestPhaseNodeSubset(t *testing.T) {
	src := `{
	  "name": "subset",
	  "regions": [{"name": "a", "pages": 4, "placement": "node"}],
	  "phases": [
	    {"nodes": [0, 2], "steps": [
	      {"op": "sweep", "region": "a", "density": 2},
	      {"op": "compute", "refs": 10},
	      {"op": "barrier"}
	    ]}
	  ]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg() // 4 nodes x 2 CPUs
	w, err := s.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := drain(w)
	for c, rs := range refs {
		node := c / cfg.CPUsPerNode
		var work, barriers int
		for _, r := range rs {
			if r.Barrier {
				barriers++
			} else {
				work++
			}
		}
		if barriers != 1 {
			t.Errorf("cpu %d: %d barriers, want 1 (barriers are global)", c, barriers)
		}
		inSubset := node == 0 || node == 2
		if inSubset && work == 0 {
			t.Errorf("cpu %d (node %d): in subset but issued no references", c, node)
		}
		if !inSubset && work != 0 {
			t.Errorf("cpu %d (node %d): outside subset but issued %d references", c, node, work)
		}
	}

	// Node ids beyond the machine are a build-time error.
	bad, err := Parse([]byte(strings.Replace(src, `"nodes": [0, 2]`, `"nodes": [0, 9]`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Build(cfg); err == nil || !strings.Contains(err.Error(), "node 9") {
		t.Errorf("out-of-range phase node not rejected at build: %v", err)
	}
}

// TestPopularDistributions checks the weighted-draw op: zipf draws skew
// heavily toward the head of the selection, explicit weights shape the
// draw mix, and builds stay deterministic.
func TestPopularDistributions(t *testing.T) {
	build := func(body string) map[int]int {
		src := fmt.Sprintf(`{
		  "name": "pop",
		  "regions": [{"name": "g", "pages": 16, "placement": "global"}],
		  "phases": [{"steps": [%s]}]
		}`, body)
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		w, err := s.Build(testCfg())
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[int]int)
		for _, rs := range drain(w) {
			for _, r := range rs {
				counts[int(r.Page)]++
			}
		}
		return counts
	}

	// The global region's pages are allocated after the builder's local
	// pages (2 per CPU), so the selection starts at 2*nodes*cpus.
	base := 2 * testCfg().Nodes * testCfg().CPUsPerNode

	zipf := build(`{"op": "popular", "region": "g", "dist": "zipf", "theta": 2.0, "picks": 400, "density": 1}`)
	head, total := zipf[base], 0
	for _, c := range zipf {
		total += c
	}
	if total == 0 {
		t.Fatal("zipf draws produced no references")
	}
	if frac := float64(head) / float64(total); frac < 0.4 {
		t.Errorf("zipf theta=2 head page drew %.0f%% of references, want heavily skewed (>= 40%%)", 100*frac)
	}

	// Explicit weights: page 1 of the selection is 9x page 0, the rest ~0.
	expl := build(`{"op": "popular", "region": "g", "dist": "explicit", "weights": [1, 9, 0.0001], "picks": 600, "density": 1}`)
	if expl[base+1] < 4*expl[base] {
		t.Errorf("explicit weights [1,9,...]: page0=%d page1=%d, want page1 >> page0", expl[base], expl[base+1])
	}

	// Identical builds are bit-identical (the sampler draws from the
	// builder's seeded RNG).
	again := build(`{"op": "popular", "region": "g", "dist": "zipf", "theta": 2.0, "picks": 400, "density": 1}`)
	for p, c := range zipf {
		if again[p] != c {
			t.Fatalf("page %d drew %d then %d references across identical builds", p, c, again[p])
		}
	}
}

// TestExampleSpecs keeps the checked-in example files building against
// the default machine shape.
func TestExampleSpecs(t *testing.T) {
	paths, err := filepath.Glob("../../examples/specs/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			s, err := Load(p)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			cfg := workloads.DefaultConfig()
			cfg.Scale = 0.05
			w, err := s.Build(cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			total := 0
			for _, rs := range drain(w) {
				total += len(rs)
				for _, r := range rs {
					if !r.Barrier && int(r.Page) >= w.SharedPages {
						t.Fatalf("page %d outside segment", r.Page)
					}
				}
			}
			if total == 0 {
				t.Fatal("example spec generates no references")
			}
		})
	}
}

// specForFrom builds a one-step sweep spec with the given from selector.
func specForFrom(from string, hot int) string {
	st := fmt.Sprintf(`{"op": "sweep", "region": "a", "from": %q, "density": 4}`, from)
	if from == "" {
		st = `{"op": "sweep", "region": "a", "density": 4}`
	}
	if hot > 0 {
		st = st[:len(st)-1] + fmt.Sprintf(`, "hot": %d}`, hot)
	}
	return fmt.Sprintf(`{
	  "name": "fromtest",
	  "regions": [{"name": "a", "pages": 4, "placement": "node"}],
	  "phases": [{"steps": [%s]}]
	}`, st)
}

// TestNeighborWraparound pins the ring semantics of from "neighbor:<d>"
// when d reaches or exceeds the node count: distances wrap modulo the
// ring, and a distance that is a multiple of the node count degenerates
// to the CPU's own node.
func TestNeighborWraparound(t *testing.T) {
	cfg := testCfg() // 4 nodes
	build := func(from string) [][]trace.Ref {
		t.Helper()
		s, err := Parse([]byte(specForFrom(from, 0)))
		if err != nil {
			t.Fatalf("from %q: %v", from, err)
		}
		w, err := s.Build(cfg)
		if err != nil {
			t.Fatalf("from %q: %v", from, err)
		}
		return drain(w)
	}
	same := func(a, b [][]trace.Ref) bool {
		for c := range a {
			if len(a[c]) != len(b[c]) {
				return false
			}
			for i := range a[c] {
				if a[c][i] != b[c][i] {
					return false
				}
			}
		}
		return true
	}
	if !same(build("neighbor:5"), build("neighbor:1")) {
		t.Error("neighbor:5 on 4 nodes should equal neighbor:1 (ring wrap)")
	}
	if !same(build("neighbor:4"), build("own")) {
		t.Error("neighbor:4 on 4 nodes should equal own (full loop)")
	}
	if !same(build("neighbor:8"), build("own")) {
		t.Error("neighbor:8 on 4 nodes should equal own (two full loops)")
	}
	if same(build("neighbor:1"), build("own")) {
		t.Error("neighbor:1 should differ from own (sanity)")
	}
}

// TestHotExceedsSelection pins the hot-set sizing contract: a hot set
// larger than the step's selectable pages is an error, never a silent
// "all pages" degrade — statically in Validate when the selection size is
// machine-independent, otherwise at Build.
func TestHotExceedsSelection(t *testing.T) {
	cfg := testCfg() // 4 nodes

	// Static: own-node sweep over a 4-page region selects 4 pages.
	s, err := Parse([]byte(specForFrom("own", 5)))
	if err == nil {
		err = fmt.Errorf("Parse accepted it")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("hot 5 on a 4-page own selection: got %v, want a hot-exceeds error from Validate", err)
	}
	// hot == selection size is the boundary and must pass.
	s, err = Parse([]byte(specForFrom("own", 4)))
	if err != nil {
		t.Fatalf("hot 4 on a 4-page selection must validate: %v", err)
	}
	if _, err := s.Build(cfg); err != nil {
		t.Errorf("hot 4 on a 4-page selection must build: %v", err)
	}

	// Machine-dependent: from "all" on a node region selects pages×nodes,
	// so Validate cannot size it — Build must reject the oversized hot set.
	s, err = Parse([]byte(specForFrom("all", 17)))
	if err != nil {
		t.Fatalf("hot 17 over from=all is machine-dependent and must pass Validate: %v", err)
	}
	if _, err := s.Build(cfg); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("hot 17 over 16 selected pages: Build returned %v, want a hot-exceeds error", err)
	}
	s, err = Parse([]byte(specForFrom("all", 16)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Build(cfg); err != nil {
		t.Errorf("hot 16 over 16 selected pages must build: %v", err)
	}
}
