package spec

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"rnuma/internal/trace"
	"rnuma/internal/workloads"
)

const minimal = `{
  "name": "mini",
  "regions": [
    {"name": "a", "pages": 4, "placement": "node"},
    {"name": "g", "pages": 6, "placement": "global"}
  ],
  "phases": [
    {"iters": 2, "steps": [
      {"op": "sweep", "region": "a", "from": "neighbor:1", "density": 4, "gap": 10},
      {"op": "scatter", "region": "a", "from": "all-remote", "density": 2},
      {"op": "stride", "region": "g", "stride": 32, "count": 4},
      {"op": "windowed", "region": "g", "window": 3, "sweeps": 2, "density": 8},
      {"op": "shared", "region": "g", "repeats": 2, "write": true},
      {"op": "rewrite", "region": "a", "density": 2, "gap": 5},
      {"op": "compute", "refs": 20, "gap": 100},
      {"op": "barrier"}
    ]}
  ]
}`

func testCfg() workloads.Config {
	cfg := workloads.DefaultConfig()
	cfg.Nodes, cfg.CPUsPerNode, cfg.Scale = 4, 2, 0.1
	return cfg
}

func drain(w *workloads.Workload) [][]trace.Ref {
	out := make([][]trace.Ref, len(w.Streams))
	for i, s := range w.Streams {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			out[i] = append(out[i], r)
		}
	}
	return out
}

func TestParseAndBuild(t *testing.T) {
	s, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cfg := testCfg()
	w, err := s.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if w.Name != "mini" {
		t.Errorf("name = %q", w.Name)
	}
	if got, want := len(w.Streams), cfg.Nodes*cfg.CPUsPerNode; got != want {
		t.Fatalf("streams = %d, want %d", got, want)
	}
	// 2 local pages per CPU + 4 pages x 4 nodes + 6 global.
	if want := 2*cfg.Nodes*cfg.CPUsPerNode + 4*cfg.Nodes + 6; w.SharedPages != want {
		t.Errorf("shared pages = %d, want %d", w.SharedPages, want)
	}
	refs := drain(w)
	bpp := cfg.Geometry.BlocksPerPage()
	for c, rs := range refs {
		if len(rs) == 0 {
			t.Fatalf("cpu %d: empty stream", c)
		}
		barriers := 0
		for _, r := range rs {
			if r.Barrier {
				barriers++
				continue
			}
			if int(r.Page) >= w.SharedPages {
				t.Fatalf("cpu %d: page %d outside %d-page segment", c, r.Page, w.SharedPages)
			}
			if int(r.Off) >= bpp {
				t.Fatalf("cpu %d: offset %d outside page", c, r.Off)
			}
		}
		if barriers != 2 {
			t.Errorf("cpu %d: %d barriers, want 2", c, barriers)
		}
	}
}

func TestBuildDeterminismAndSeed(t *testing.T) {
	s, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	a, err := s.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := drain(a), drain(b)
	for c := range ra {
		if len(ra[c]) != len(rb[c]) {
			t.Fatalf("cpu %d: lengths differ across identical builds", c)
		}
		for i := range ra[c] {
			if ra[c][i] != rb[c][i] {
				t.Fatalf("cpu %d ref %d differs across identical builds", c, i)
			}
		}
	}
	// A different config seed must change the scatter order somewhere.
	cfg2 := cfg
	cfg2.Seed = 12345
	c2, err := s.Build(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rc := drain(c2)
	same := true
	for c := range ra {
		for i := range ra[c] {
			if ra[c][i] != rc[c][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seed produced identical streams (scatter order should change)")
	}
}

func TestScaledIters(t *testing.T) {
	tpl := `{"name":"s","regions":[{"name":"a","pages":2,"placement":"node"}],
	         "phases":[{"iters":10,"scaled":%v,"steps":[{"op":"barrier"}]}]}`
	count := func(scaled bool, scale float64) int {
		s, err := Parse([]byte(fmt.Sprintf(tpl, scaled)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := testCfg()
		cfg.Scale = scale
		w, err := s.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range drain(w)[0] {
			if r.Barrier {
				n++
			}
		}
		return n
	}
	if got := count(false, 0.1); got != 10 {
		t.Errorf("unscaled: %d iters, want 10", got)
	}
	if got := count(true, 0.5); got != 5 {
		t.Errorf("scaled 0.5: %d iters, want 5", got)
	}
	if got := count(true, 0.01); got != 2 {
		t.Errorf("scaled floor: %d iters, want 2", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"missing name", `{"regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "missing name"},
		{"no regions", `{"name":"x","phases":[{"steps":[{"op":"barrier"}]}]}`, "no regions"},
		{"no phases", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}]}`, "no phases"},
		{"dup region", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"},{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "duplicate region"},
		{"bad placement", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"left"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "placement"},
		{"zero pages", `{"name":"x","regions":[{"name":"a","pages":0,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "at least 1 page"},
		{"unknown op", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"jog"}]}]}`, "unknown op"},
		{"unknown region", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"b"}]}]}`, "unknown region"},
		{"bad from", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","from":"sideways"}]}]}`, "bad from"},
		{"neighbor zero", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","from":"neighbor:0"}]}]}`, "neighbor"},
		{"global from own", `{"name":"x","regions":[{"name":"g","pages":1,"placement":"global"}],"phases":[{"steps":[{"op":"sweep","region":"g","from":"own"}]}]}`, "global region"},
		{"gap overflow", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"sweep","region":"a","gap":70000}]}]}`, "overflows"},
		{"stride missing", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"stride","region":"a"}]}]}`, "stride"},
		{"windowed missing", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"windowed","region":"a"}]}]}`, "window"},
		{"compute missing refs", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"compute"}]}]}`, "refs"},
		{"empty phase", `{"name":"x","regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[]}]}`, "no steps"},
		{"unknown field", `{"name":"x","regionz":[],"regions":[{"name":"a","pages":1,"placement":"node"}],"phases":[{"steps":[{"op":"barrier"}]}]}`, "unknown field"},
		{"not json", `{"name":`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExampleSpecs keeps the checked-in example files building against
// the default machine shape.
func TestExampleSpecs(t *testing.T) {
	paths, err := filepath.Glob("../../examples/specs/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			s, err := Load(p)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			cfg := workloads.DefaultConfig()
			cfg.Scale = 0.05
			w, err := s.Build(cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			total := 0
			for _, rs := range drain(w) {
				total += len(rs)
				for _, r := range rs {
					if !r.Barrier && int(r.Page) >= w.SharedPages {
						t.Fatalf("page %d outside segment", r.Page)
					}
				}
			}
			if total == 0 {
				t.Fatal("example spec generates no references")
			}
		})
	}
}
