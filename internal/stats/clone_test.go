package stats

import (
	"reflect"
	"testing"

	"rnuma/internal/telemetry"
)

// TestRunCloneIndependence: a clone shares nothing mutable with the
// original — counter maps and the telemetry timeline are deep copies.
func TestRunCloneIndependence(t *testing.T) {
	r := sampleRun()
	r.PerNodeReplacements[3] = 7
	r.Timeline = &telemetry.Timeline{
		Window:    64,
		Nodes:     2,
		Intervals: []telemetry.Interval{{Index: 0, EndRef: 64, Traffic: []int64{0, 1, 2, 0}}},
		Events:    []telemetry.Event{{Ref: 10, Node: 1, Page: 5, Count: 8}},
	}

	c := r.Clone()
	if !reflect.DeepEqual(r, c) {
		t.Fatal("clone differs from original before mutation")
	}
	c.AddRefetch(9, 9)
	c.PerNodeReplacements[3]++
	c.Timeline.Intervals[0].Traffic[0] = 99
	c.Timeline.Events[0].Count = 1
	if _, ok := r.RefetchByPage[PageKey{Node: 9, Page: 9}]; ok {
		t.Error("clone shares the refetch map")
	}
	if r.PerNodeReplacements[3] != 7 {
		t.Error("clone shares the replacement map")
	}
	if r.Timeline.Intervals[0].Traffic[0] != 0 || r.Timeline.Events[0].Count != 8 {
		t.Error("clone shares timeline storage")
	}

	// A nil timeline stays nil (the common unprobed case).
	plain := sampleRun()
	if c := plain.Clone(); c.Timeline != nil {
		t.Error("cloning an unprobed run invented a timeline")
	}
}

// TestPageCounterStateRoundTrip: State/PageCounterFromState is the
// snapshot path — the rebuilt table matches, the slices don't alias,
// and malformed raw forms are rejected.
func TestPageCounterStateRoundTrip(t *testing.T) {
	c := NewPageCounter(2, 4)
	c.Add(1, 3, 5)
	c.Add(0, 0, 2)

	nodes, counts := c.State()
	counts[0] = 99 // State copies; the table must not see this
	if c.Get(0, 0) != 2 {
		t.Error("State aliases the live count slice")
	}
	counts[0] = 2

	r, err := PageCounterFromState(nodes, counts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Get(1, 3) != 5 || r.Get(0, 0) != 2 || r.Total() != c.Total() {
		t.Error("rebuilt table disagrees with the original")
	}
	counts[0] = 99
	if r.Get(0, 0) != 2 {
		t.Error("rebuilt table aliases the raw slice")
	}

	if _, err := PageCounterFromState(0, nil); err == nil {
		t.Error("zero-node raw form accepted")
	}
	if _, err := PageCounterFromState(2, make([]int64, 3)); err == nil {
		t.Error("ragged raw form accepted")
	}
}
