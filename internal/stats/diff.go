package stats

import (
	"crypto/sha256"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// This file implements run-level diffing: the per-counter delta table
// that turns "did this change regress anything?" into one comparison.
// Trace diffs (tracefile.Diff) explain where two captures' streams
// diverge; a run diff explains how two *replays* differ — every counter
// side by side with absolute and relative deltas, plus a digest
// comparison of the per-page refetch distribution, the NUMAscope-style
// delta analysis over this simulator's counter set.

// CounterDelta is one counter's comparison between two runs.
type CounterDelta struct {
	// Name is the stats.Run field name (ExecCycles, Refetches, ...).
	Name string
	// A and B are the two runs' values.
	A, B int64
	// Delta is B - A.
	Delta int64
}

// RelPct returns the relative change in percent (B vs A). When A is zero
// the ratio is undefined; it reports +100 per unit appearing from nothing
// only as ±Inf would mislead, so callers render it as "new".
func (c CounterDelta) RelPct() (pct float64, defined bool) {
	if c.A == 0 {
		return 0, c.Delta == 0
	}
	return 100 * float64(c.Delta) / float64(c.A), true
}

// RunDelta is a full per-counter comparison of two runs.
type RunDelta struct {
	// Counters holds every int64 counter of stats.Run in declaration
	// order (future counters join automatically — the walk is by
	// reflection, not a hand-kept list).
	Counters []CounterDelta
	// Differing counts entries with a nonzero delta.
	Differing int
	// RefetchDigestA/B digest each run's per-(node,page) refetch map
	// (sorted key/count pairs); equal digests mean the full Figure-5
	// distribution matches, not just the refetch total.
	RefetchDigestA, RefetchDigestB string
	// RefetchPagesDiffering counts (node, page) keys whose refetch
	// counts differ between the two maps (keys missing from one side
	// count as differing).
	RefetchPagesDiffering int
}

// Identical reports whether the two runs matched on every counter and on
// the full refetch distribution.
func (d *RunDelta) Identical() bool {
	return d.Differing == 0 && d.RefetchPagesDiffering == 0 &&
		d.RefetchDigestA == d.RefetchDigestB
}

// TimingCounter reports whether a counter name measures timing or
// contention (cycle totals) rather than structure (event counts). The
// distinction drives diffstats' tolerance mode: a change that shifts only
// cycle totals is a performance delta a CI gate may accept within a band,
// while any structural counter change means the two replays took
// different protocol actions and must always fail.
func TimingCounter(name string) bool {
	switch name {
	case "ExecCycles", "BusWaitCycles", "NIWaitCycles", "RADWaitCycles":
		return true
	}
	return false
}

// ToleranceResult classifies a RunDelta under a ±pct band on timing
// counters: structural differences always fail; timing counters fail only
// beyond the band.
type ToleranceResult struct {
	// Structural holds differing non-timing counters (always failures).
	Structural []CounterDelta
	// OutOfBand holds timing counters whose relative change exceeds the
	// band (or appeared from zero), also failures.
	OutOfBand []CounterDelta
	// WithinBand holds timing counters that differ inside the band —
	// reported as warnings, not failures.
	WithinBand []CounterDelta
	// RefetchDiffers reports a per-page refetch distribution change,
	// which is structural regardless of the refetch totals.
	RefetchDiffers bool
	// Pct is the band the classification used.
	Pct float64
}

// OK reports whether the delta passes under the tolerance: nothing
// structural changed and every timing change stayed within the band.
func (r *ToleranceResult) OK() bool {
	return len(r.Structural) == 0 && len(r.OutOfBand) == 0 && !r.RefetchDiffers
}

// Tolerance classifies the delta under a ±pct band on timing counters.
func (d *RunDelta) Tolerance(pct float64) ToleranceResult {
	r := ToleranceResult{Pct: pct}
	for _, c := range d.Counters {
		if c.Delta == 0 {
			continue
		}
		if !TimingCounter(c.Name) {
			r.Structural = append(r.Structural, c)
			continue
		}
		// A timing counter appearing from zero has no defined relative
		// change; treat it as out of band rather than silently passing.
		if rel, ok := c.RelPct(); ok && math.Abs(rel) <= pct {
			r.WithinBand = append(r.WithinBand, c)
		} else {
			r.OutOfBand = append(r.OutOfBand, c)
		}
	}
	r.RefetchDiffers = d.RefetchDigestA != d.RefetchDigestB
	return r
}

// RefetchDigest hashes the run's sorted (node, page, count) refetch list
// into a short hex digest — the same pinning the golden-stats fixtures
// use, exposed so delta tables and CI artifacts can compare
// distributions without materializing them.
func (r *Run) RefetchDigest() string {
	keys := make([]PageKey, 0, len(r.RefetchByPage))
	for k := range r.RefetchByPage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Page < keys[j].Page
	})
	hash := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(hash, "%d/%d:%d\n", k.Node, k.Page, r.RefetchByPage[k])
	}
	return fmt.Sprintf("%x", hash.Sum(nil)[:12])
}

// Diff compares two runs counter by counter. Every exported int64 field
// of stats.Run participates, in declaration order; the per-page refetch
// maps are compared by digest and by per-key count.
func Diff(a, b *Run) *RunDelta {
	d := &RunDelta{
		RefetchDigestA: a.RefetchDigest(),
		RefetchDigestB: b.RefetchDigest(),
	}
	va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).Type.Kind() != reflect.Int64 {
			continue
		}
		c := CounterDelta{
			Name: t.Field(i).Name,
			A:    va.Field(i).Int(),
			B:    vb.Field(i).Int(),
		}
		c.Delta = c.B - c.A
		if c.Delta != 0 {
			d.Differing++
		}
		d.Counters = append(d.Counters, c)
	}
	for k, ca := range a.RefetchByPage {
		if b.RefetchByPage[k] != ca {
			d.RefetchPagesDiffering++
		}
	}
	for k := range b.RefetchByPage {
		if _, ok := a.RefetchByPage[k]; !ok {
			d.RefetchPagesDiffering++
		}
	}
	return d
}
