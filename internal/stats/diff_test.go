package stats

import (
	"reflect"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/telemetry"
)

// sampleRun builds a run with a few counters and refetch entries set.
func sampleRun() *Run {
	r := NewRun()
	r.ExecCycles = 1000
	r.Refs = 500
	r.L1Hits = 400
	r.RemoteFetches = 50
	r.AddRefetch(1, 7)
	r.AddRefetch(1, 7)
	r.AddRefetch(2, 9)
	return r
}

func TestDiffIdenticalRuns(t *testing.T) {
	a, b := sampleRun(), sampleRun()
	d := Diff(a, b)
	if !d.Identical() {
		t.Fatalf("identical runs diff as different: %+v", d)
	}
	if d.Differing != 0 || d.RefetchPagesDiffering != 0 {
		t.Fatalf("differing counts nonzero: %+v", d)
	}
	if d.RefetchDigestA != d.RefetchDigestB {
		t.Fatal("identical refetch maps digest differently")
	}
}

// TestDiffCoversEveryCounter: the reflective walk must include every
// int64 field of Run — a counter added later joins automatically, and
// the declaration order is preserved.
func TestDiffCoversEveryCounter(t *testing.T) {
	d := Diff(NewRun(), NewRun())
	var want []string
	rt := reflect.TypeOf(Run{})
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type.Kind() == reflect.Int64 {
			want = append(want, rt.Field(i).Name)
		}
	}
	var got []string
	for _, c := range d.Counters {
		got = append(got, c.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("counters %v, want %v", got, want)
	}
	if len(got) < 20 {
		t.Fatalf("only %d counters walked — Run should have far more", len(got))
	}
}

func TestDiffPinpointsCounterChange(t *testing.T) {
	a, b := sampleRun(), sampleRun()
	b.RemoteFetches += 5
	b.ExecCycles -= 100
	d := Diff(a, b)
	if d.Identical() {
		t.Fatal("changed runs diff as identical")
	}
	if d.Differing != 2 {
		t.Fatalf("differing = %d, want 2", d.Differing)
	}
	byName := map[string]CounterDelta{}
	for _, c := range d.Counters {
		byName[c.Name] = c
	}
	if c := byName["RemoteFetches"]; c.Delta != 5 || c.A != 50 || c.B != 55 {
		t.Fatalf("RemoteFetches delta: %+v", c)
	}
	if c := byName["ExecCycles"]; c.Delta != -100 {
		t.Fatalf("ExecCycles delta: %+v", c)
	}
	if pct, ok := byName["RemoteFetches"].RelPct(); !ok || pct != 10 {
		t.Fatalf("RemoteFetches rel = %v, %v, want +10%%", pct, ok)
	}
}

func TestDiffRefetchMap(t *testing.T) {
	a, b := sampleRun(), sampleRun()
	b.AddRefetch(3, 11) // new key on B (also bumps the Refetches counter)
	d := Diff(a, b)
	if d.RefetchDigestA == d.RefetchDigestB {
		t.Fatal("different refetch maps share a digest")
	}
	if d.RefetchPagesDiffering != 1 {
		t.Fatalf("refetch pages differing = %d, want 1", d.RefetchPagesDiffering)
	}

	// A key missing from B counts too.
	c := sampleRun()
	delete(c.RefetchByPage, PageKey{Node: addr.NodeID(2), Page: addr.PageNum(9)})
	d = Diff(sampleRun(), c)
	if d.RefetchPagesDiffering != 1 {
		t.Fatalf("missing-key differing = %d, want 1", d.RefetchPagesDiffering)
	}
	if d.Identical() {
		t.Fatal("map-only change reported identical")
	}
}

func TestCounterDeltaRelPct(t *testing.T) {
	if pct, ok := (CounterDelta{A: 0, B: 0}).RelPct(); !ok || pct != 0 {
		t.Fatalf("0->0 rel = %v, %v", pct, ok)
	}
	if _, ok := (CounterDelta{A: 0, B: 5, Delta: 5}).RelPct(); ok {
		t.Fatal("0->5 rel should be undefined")
	}
	if pct, ok := (CounterDelta{A: 200, B: 100, Delta: -100}).RelPct(); !ok || pct != -50 {
		t.Fatalf("200->100 rel = %v, %v", pct, ok)
	}
}

// TestTimingCounterSet pins which counters the tolerance mode treats as
// timing: exactly the cycle totals, nothing structural.
func TestTimingCounterSet(t *testing.T) {
	for _, name := range []string{"ExecCycles", "BusWaitCycles", "NIWaitCycles", "RADWaitCycles"} {
		if !TimingCounter(name) {
			t.Errorf("%s should be a timing counter", name)
		}
	}
	for _, name := range []string{"Refs", "RemoteFetches", "Refetches", "Relocations", "Replacements", ""} {
		if TimingCounter(name) {
			t.Errorf("%s should be structural", name)
		}
	}
}

// TestToleranceClassification: timing counters pass inside the band and
// fail outside it; any structural counter change fails regardless of the
// band; refetch-distribution changes are structural.
func TestToleranceClassification(t *testing.T) {
	a, b := sampleRun(), sampleRun()
	b.ExecCycles = 1009 // +0.9% on 1000

	res := Diff(a, b).Tolerance(1)
	if !res.OK() {
		t.Fatalf("0.9%% timing drift fails a 1%% band: %+v", res)
	}
	if len(res.WithinBand) != 1 || res.WithinBand[0].Name != "ExecCycles" {
		t.Fatalf("WithinBand = %+v, want just ExecCycles", res.WithinBand)
	}

	res = Diff(a, b).Tolerance(0.5)
	if res.OK() || len(res.OutOfBand) != 1 {
		t.Fatalf("0.9%% timing drift passes a 0.5%% band: %+v", res)
	}

	// A negative drift uses the band symmetrically.
	b.ExecCycles = 991
	if res := Diff(a, b).Tolerance(1); !res.OK() {
		t.Fatalf("-0.9%% timing drift fails a 1%% band: %+v", res)
	}

	// Structural counters fail no matter how wide the band.
	b = sampleRun()
	b.RemoteFetches++
	res = Diff(a, b).Tolerance(100)
	if res.OK() || len(res.Structural) != 1 || res.Structural[0].Name != "RemoteFetches" {
		t.Fatalf("structural change slipped through: %+v", res)
	}

	// A timing counter appearing from zero has no relative change and
	// must not silently pass.
	b = sampleRun()
	b.NIWaitCycles = 5
	if res := Diff(a, b).Tolerance(50); res.OK() || len(res.OutOfBand) != 1 {
		t.Fatalf("timing counter from zero passed the band: %+v", res)
	}

	// Refetch distribution changes are structural even when the totals
	// (and hence every counter) agree.
	b = sampleRun()
	delete(b.RefetchByPage, PageKey{Node: 1, Page: 7})
	b.AddRefetch(3, 11)
	b.AddRefetch(3, 11)
	b.Refetches = a.Refetches // keep the counter itself equal
	if res := Diff(a, b).Tolerance(100); res.OK() || !res.RefetchDiffers {
		t.Fatalf("refetch redistribution passed: %+v", res)
	}
}

// TestDiffIgnoresTimeline: the timeline rides on Run as a pointer, so the
// reflective int64 walk never sees it — two runs equal on counters are
// identical no matter what they captured.
func TestDiffIgnoresTimeline(t *testing.T) {
	a, b := sampleRun(), sampleRun()
	b.Timeline = &telemetry.Timeline{Window: 64, Nodes: 2}
	if d := Diff(a, b); !d.Identical() {
		t.Fatalf("timeline presence made runs differ: %+v", d)
	}
}
