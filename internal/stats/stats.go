// Package stats collects the measurements the paper's evaluation reports:
// execution time, block refetches (per node and page), page-cache
// replacements, relocations, remote fetches, and the cumulative refetch
// distribution of Figure 5.
package stats

import (
	"fmt"
	"sort"

	"rnuma/internal/addr"
	"rnuma/internal/dense"
	"rnuma/internal/telemetry"
)

// PageKey identifies a (node, page) pair: refetch counting in the paper is
// per-node, per-page.
type PageKey struct {
	Node addr.NodeID
	Page addr.PageNum
}

// MarshalText renders the key as "node/page", which is what lets a
// map[PageKey]int64 — and therefore a whole Run — marshal to JSON
// (encoding/json requires text-marshalable map keys).
func (k PageKey) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%d/%d", k.Node, k.Page)), nil
}

// UnmarshalText parses the "node/page" form.
func (k *PageKey) UnmarshalText(text []byte) error {
	var node int32
	var page uint32
	if _, err := fmt.Sscanf(string(text), "%d/%d", &node, &page); err != nil {
		return fmt.Errorf("stats: bad page key %q: %w", text, err)
	}
	k.Node, k.Page = addr.NodeID(node), addr.PageNum(page)
	return nil
}

// Run accumulates every counter a single simulation produces.
type Run struct {
	// ExecCycles is the parallel execution time: the maximum completion
	// time over all processors.
	ExecCycles int64

	// References processed, split by kind of service.
	Refs           int64 // total references issued
	L1Hits         int64
	LocalFills     int64 // fills from node memory (home-local data)
	C2CTransfers   int64 // intra-node cache-to-cache supplies (owned blocks)
	BlockCacheHits int64
	PageCacheHits  int64
	RemoteFetches  int64 // block fetches that crossed the network
	Upgrades       int64 // writes serviced by a permission upgrade (data already held)

	// Refetches are remote fetches for blocks the node previously held and
	// lost to capacity/conflict eviction (never to an invalidation).
	Refetches int64

	// Paging activity.
	PageFaults     int64 // mapping faults (first touch of an unmapped page)
	Allocations    int64 // S-COMA page-cache frame allocations
	Replacements   int64 // S-COMA page-cache victim replacements
	Relocations    int64 // R-NUMA CC->S-COMA page relocations
	Demotions      int64 // S-COMA->CC demotions (reverse-adaptation extension)
	FlushedBlocks  int64 // blocks written back during page ops
	TLBShootdowns  int64
	RemotePages    int64 // distinct (node, page) remote pairs touched
	InvalsSent     int64 // directory-initiated invalidations
	ThreeHopXfers  int64 // dirty blocks forwarded from third-party owners
	WritebacksHome int64 // dirty block writebacks that reached the home

	// Contention.
	BusWaitCycles int64
	NIWaitCycles  int64
	RADWaitCycles int64

	// RefetchByPage maps (node, page) to its refetch count, feeding
	// Figure 5 and Table 4.
	RefetchByPage map[PageKey]int64

	// RWRefetches counts refetches attributed to pages that saw both read
	// and write sharing traffic (Table 4, column 2 numerator).
	RWRefetches int64

	// PerNodeReplacements records which nodes performed page replacements
	// (Section 5.5 attributes lu's sensitivity to two overloaded nodes).
	PerNodeReplacements map[addr.NodeID]int64

	// Timeline is the run's time-resolved telemetry capture (interval
	// series, relocation event log, per-window traffic matrices), nil
	// unless the machine ran with a probe attached. It rides on the Run
	// so memoization, snapshots, and fork sweeps carry it alongside the
	// counters it windows; Diff ignores it (non-int64 field).
	Timeline *telemetry.Timeline

	// Clients splits the run's windowed counters per traffic client, in
	// scenario order; nil unless the workload carried attribution. The
	// per-client Counters sum exactly to the machine-level fields they
	// mirror (attribution charges every reference to exactly one client).
	// Diff ignores it (non-int64 field).
	Clients []ClientStats
}

// ClientStats is one traffic client's share of a multi-tenant run.
type ClientStats struct {
	Name     string
	Counters telemetry.Counters
}

// NewRun returns an empty, ready-to-accumulate Run.
func NewRun() *Run {
	return &Run{
		RefetchByPage:       make(map[PageKey]int64),
		PerNodeReplacements: make(map[addr.NodeID]int64),
	}
}

// Clone returns a deep copy of the run (snapshot support): the counter
// maps are copied, so the clone and the original accumulate independently.
func (r *Run) Clone() *Run {
	c := *r
	c.RefetchByPage = make(map[PageKey]int64, len(r.RefetchByPage))
	for k, v := range r.RefetchByPage {
		c.RefetchByPage[k] = v
	}
	c.PerNodeReplacements = make(map[addr.NodeID]int64, len(r.PerNodeReplacements))
	for k, v := range r.PerNodeReplacements {
		c.PerNodeReplacements[k] = v
	}
	c.Timeline = r.Timeline.Clone()
	if r.Clients != nil {
		c.Clients = append([]ClientStats(nil), r.Clients...)
	}
	return &c
}

// AddRefetch records one refetch for the (node, page) pair.
func (r *Run) AddRefetch(n addr.NodeID, p addr.PageNum) {
	r.Refetches++
	r.RefetchByPage[PageKey{n, p}]++
}

// PageCounter is a dense per-(node, page) counter table for hot-path
// accumulation. The simulator knows its node count and page bound up
// front, so indexed increments replace the per-event map hashing that
// RefetchByPage-style accumulation would cost; Materialize converts the
// table into the sparse map form the reports consume.
type PageCounter struct {
	nodes  int
	counts []int64 // page-major: counts[int(page)*nodes + int(node)]
}

// NewPageCounter builds a counter table for `nodes` nodes, pre-sized for
// `pagesHint` pages. The table grows on demand past the hint.
func NewPageCounter(nodes, pagesHint int) *PageCounter {
	if nodes < 1 {
		nodes = 1
	}
	if pagesHint < 0 {
		pagesHint = 0
	}
	return &PageCounter{nodes: nodes, counts: make([]int64, nodes*pagesHint)}
}

// ensure grows the table to cover page p. The length stays a multiple of
// nodes (it starts as one, and dense.Grow doubles or jumps to the need,
// itself a multiple), which Each's index decode relies on.
func (c *PageCounter) ensure(p addr.PageNum) {
	c.counts = dense.Grow(c.counts, (int(p)+1)*c.nodes)
}

// Add accumulates delta for the (node, page) pair.
func (c *PageCounter) Add(n addr.NodeID, p addr.PageNum, delta int64) {
	c.ensure(p)
	c.counts[int(p)*c.nodes+int(n)] += delta
}

// Get returns the pair's current count.
func (c *PageCounter) Get(n addr.NodeID, p addr.PageNum) int64 {
	i := int(p)*c.nodes + int(n)
	if i >= len(c.counts) {
		return 0
	}
	return c.counts[i]
}

// Each calls fn for every pair with a nonzero count, in page-major order.
func (c *PageCounter) Each(fn func(PageKey, int64)) {
	for i, v := range c.counts {
		if v != 0 {
			fn(PageKey{Node: addr.NodeID(i % c.nodes), Page: addr.PageNum(i / c.nodes)}, v)
		}
	}
}

// Total sums every count in the table.
func (c *PageCounter) Total() int64 {
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Materialize copies the nonzero entries into the sparse map form.
func (c *PageCounter) Materialize(into map[PageKey]int64) {
	c.Each(func(k PageKey, v int64) { into[k] = v })
}

// State returns the counter table's raw form (snapshot support): the
// node stride and a copy of the dense page-major count slice.
func (c *PageCounter) State() (nodes int, counts []int64) {
	return c.nodes, append([]int64(nil), c.counts...)
}

// PageCounterFromState rebuilds a counter table from its raw form
// (snapshot restore). The count slice is copied.
func PageCounterFromState(nodes int, counts []int64) (*PageCounter, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("stats: page counter with %d nodes", nodes)
	}
	if len(counts)%nodes != 0 {
		return nil, fmt.Errorf("stats: %d counts not a multiple of %d nodes", len(counts), nodes)
	}
	return &PageCounter{nodes: nodes, counts: append([]int64(nil), counts...)}, nil
}

// TotalPageOps returns allocations+replacements+relocations, the page
// machinery activity R-NUMA's competitive analysis bounds.
func (r *Run) TotalPageOps() int64 { return r.Allocations + r.Replacements + r.Relocations }

// RemoteMissRatio returns remote fetches per reference.
func (r *Run) RemoteMissRatio() float64 {
	if r.Refs == 0 {
		return 0
	}
	return float64(r.RemoteFetches) / float64(r.Refs)
}

// CDFPoint is one point of Figure 5: after including the top PctPages
// percent of remote pages (by refetch count), PctRefetches percent of all
// refetches are covered.
type CDFPoint struct {
	PctPages     float64
	PctRefetches float64
}

// RefetchCDF computes the Figure-5 curve: remote pages sorted by
// descending refetch count, cumulative share of refetches. Pages with zero
// refetches still count toward the page axis, exactly as the paper's
// "percentage of remote pages" axis does; totalRemotePages supplies the
// denominator (pass 0 to use only pages that appear in the refetch map).
func (r *Run) RefetchCDF(totalRemotePages int) []CDFPoint {
	counts := make([]int64, 0, len(r.RefetchByPage))
	var total int64
	for _, c := range r.RefetchByPage {
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return nil
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	denom := len(counts)
	if totalRemotePages > denom {
		denom = totalRemotePages
	}
	pts := make([]CDFPoint, 0, len(counts)+1)
	pts = append(pts, CDFPoint{0, 0})
	var cum int64
	for i, c := range counts {
		cum += c
		pts = append(pts, CDFPoint{
			PctPages:     100 * float64(i+1) / float64(denom),
			PctRefetches: 100 * float64(cum) / float64(total),
		})
	}
	if denom > len(counts) {
		pts = append(pts, CDFPoint{100, 100})
	}
	return pts
}

// CDFAt linearly interpolates the refetch coverage at pctPages percent of
// remote pages. It returns 0 if the curve is empty.
func CDFAt(pts []CDFPoint, pctPages float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PctPages >= pctPages {
			p0, p1 := pts[i-1], pts[i]
			if p1.PctPages == p0.PctPages {
				return p1.PctRefetches
			}
			f := (pctPages - p0.PctPages) / (p1.PctPages - p0.PctPages)
			return p0.PctRefetches + f*(p1.PctRefetches-p0.PctRefetches)
		}
	}
	return pts[len(pts)-1].PctRefetches
}

// Normalized returns this run's execution time relative to a baseline.
func (r *Run) Normalized(baseline *Run) float64 {
	if baseline == nil || baseline.ExecCycles == 0 {
		return 0
	}
	return float64(r.ExecCycles) / float64(baseline.ExecCycles)
}

// Summary renders the headline counters in a compact single line.
func (r *Run) Summary() string {
	return fmt.Sprintf(
		"exec=%d refs=%d l1hit=%d bc=%d pc=%d remote=%d refetch=%d faults=%d alloc=%d repl=%d reloc=%d",
		r.ExecCycles, r.Refs, r.L1Hits, r.BlockCacheHits, r.PageCacheHits,
		r.RemoteFetches, r.Refetches, r.PageFaults, r.Allocations, r.Replacements, r.Relocations)
}

// Ratio safely divides two counters, returning 0 when the denominator is 0.
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
