package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rnuma/internal/addr"
)

func TestAddRefetch(t *testing.T) {
	r := NewRun()
	r.AddRefetch(1, 10)
	r.AddRefetch(1, 10)
	r.AddRefetch(2, 10)
	if r.Refetches != 3 {
		t.Errorf("refetches = %d, want 3", r.Refetches)
	}
	if r.RefetchByPage[PageKey{1, 10}] != 2 {
		t.Errorf("per-page count = %d, want 2", r.RefetchByPage[PageKey{1, 10}])
	}
	if len(r.RefetchByPage) != 2 {
		t.Errorf("distinct (node,page) pairs = %d, want 2", len(r.RefetchByPage))
	}
}

func TestPageCounter(t *testing.T) {
	c := NewPageCounter(4, 2)
	c.Add(1, 0, 2)
	c.Add(3, 0, 1)
	c.Add(0, 100, 5) // beyond the hint: grows on demand
	if got := c.Get(1, 0); got != 2 {
		t.Errorf("Get(1,0) = %d, want 2", got)
	}
	if got := c.Get(2, 50); got != 0 {
		t.Errorf("Get on untouched pair = %d, want 0", got)
	}
	if got := c.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
	m := make(map[PageKey]int64)
	c.Materialize(m)
	want := map[PageKey]int64{
		{Node: 1, Page: 0}:   2,
		{Node: 3, Page: 0}:   1,
		{Node: 0, Page: 100}: 5,
	}
	if len(m) != len(want) {
		t.Fatalf("materialized %d entries, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("materialized[%v] = %d, want %d", k, m[k], v)
		}
	}
}

// TestPageCounterMatchesMap: dense accumulation materializes to exactly
// what per-event map accumulation produces.
func TestPageCounterMatchesMap(t *testing.T) {
	f := func(events []uint16) bool {
		run := NewRun()
		pc := NewPageCounter(8, 4)
		for _, e := range events {
			n := addr.NodeID(e % 8)
			p := addr.PageNum(e / 8 % 64)
			run.AddRefetch(n, p)
			pc.Add(n, p, 1)
		}
		m := make(map[PageKey]int64)
		pc.Materialize(m)
		if len(m) != len(run.RefetchByPage) || pc.Total() != run.Refetches {
			return false
		}
		for k, v := range run.RefetchByPage {
			if m[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefetchCDFSkewed(t *testing.T) {
	r := NewRun()
	// One page with 90 refetches, nine pages with 1 or 2.
	for i := 0; i < 90; i++ {
		r.AddRefetch(0, 0)
	}
	for p := addr.PageNum(1); p <= 9; p++ {
		r.AddRefetch(0, p)
	}
	pts := r.RefetchCDF(10)
	// The top 10% of pages (1 of 10) covers 90/99 of refetches.
	got := CDFAt(pts, 10)
	want := 100 * 90.0 / 99.0
	if math.Abs(got-want) > 1 {
		t.Errorf("CDF at 10%% = %.1f, want %.1f", got, want)
	}
	if end := CDFAt(pts, 100); math.Abs(end-100) > 0.01 {
		t.Errorf("CDF at 100%% = %.1f, want 100", end)
	}
}

func TestRefetchCDFUniform(t *testing.T) {
	r := NewRun()
	for p := addr.PageNum(0); p < 50; p++ {
		r.AddRefetch(0, p)
		r.AddRefetch(0, p)
	}
	pts := r.RefetchCDF(0)
	// Uniform counts: the curve is the diagonal.
	for _, x := range []float64{20, 40, 60, 80} {
		if got := CDFAt(pts, x); math.Abs(got-x) > 3 {
			t.Errorf("uniform CDF at %.0f%% = %.1f, want ~%.0f", x, got, x)
		}
	}
}

func TestRefetchCDFWithZeroPages(t *testing.T) {
	r := NewRun()
	r.AddRefetch(0, 0)
	// 1 refetching page out of 100 remote pages: the curve jumps to 100%
	// at 1% of pages.
	pts := r.RefetchCDF(100)
	if got := CDFAt(pts, 1); math.Abs(got-100) > 0.01 {
		t.Errorf("CDF at 1%% = %.1f, want 100", got)
	}
	if got := CDFAt(pts, 50); math.Abs(got-100) > 0.01 {
		t.Errorf("CDF at 50%% = %.1f, want 100 (flat tail)", got)
	}
}

func TestRefetchCDFEmpty(t *testing.T) {
	r := NewRun()
	if pts := r.RefetchCDF(10); pts != nil {
		t.Error("no refetches should produce an empty curve")
	}
	if CDFAt(nil, 50) != 0 {
		t.Error("CDFAt on empty curve should be 0")
	}
}

// TestCDFMonotonic: the CDF is non-decreasing in both axes for arbitrary
// refetch count multisets.
func TestCDFMonotonic(t *testing.T) {
	f := func(counts []uint8) bool {
		r := NewRun()
		for i, c := range counts {
			for j := 0; j < int(c); j++ {
				r.AddRefetch(0, addr.PageNum(i))
			}
		}
		pts := r.RefetchCDF(len(counts))
		lastP, lastR := -1.0, -1.0
		for _, pt := range pts {
			if pt.PctPages < lastP || pt.PctRefetches < lastR-1e-9 {
				return false
			}
			lastP, lastR = pt.PctPages, pt.PctRefetches
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalized(t *testing.T) {
	a, b := NewRun(), NewRun()
	a.ExecCycles, b.ExecCycles = 300, 200
	if got := a.Normalized(b); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("normalized = %v, want 1.5", got)
	}
	if a.Normalized(nil) != 0 || a.Normalized(NewRun()) != 0 {
		t.Error("degenerate baselines should yield 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("divide by zero should yield 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("ratio wrong")
	}
}

func TestTotalsAndSummary(t *testing.T) {
	r := NewRun()
	r.Allocations, r.Replacements, r.Relocations = 2, 3, 4
	if r.TotalPageOps() != 9 {
		t.Errorf("page ops = %d, want 9", r.TotalPageOps())
	}
	r.Refs, r.RemoteFetches = 100, 25
	if r.RemoteMissRatio() != 0.25 {
		t.Errorf("remote miss ratio = %v", r.RemoteMissRatio())
	}
	s := r.Summary()
	for _, frag := range []string{"refs=100", "remote=25", "reloc=4"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary %q missing %q", s, frag)
		}
	}
	empty := NewRun()
	if empty.RemoteMissRatio() != 0 {
		t.Error("zero refs should give 0 miss ratio")
	}
}
