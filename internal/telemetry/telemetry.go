// Package telemetry is the time-resolved observability layer: a sampling
// probe the machine drives every N references, materializing windowed
// counter deltas (the interval series), a relocation event log, and a
// per-node remote-traffic matrix from the counters the simulator already
// maintains.
//
// The probe is pull-based: the machine checks one int64 against its
// reference count per reference and calls into the probe only at window
// boundaries, so a disabled probe (nil) costs a single always-false
// compare and zero allocations on the hot path. Window boundaries are
// defined purely by the global reference count — which the single-threaded
// event engine advances exactly once per reference — so the series is
// bit-identical across serial, parallel-scheduled, fork-sweep, and
// snapshot/resume replays of the same trace.
package telemetry

import (
	"fmt"

	"rnuma/internal/addr"
)

// DefaultWindow is the interval width CLIs use when telemetry is requested
// without an explicit window: 64k references keeps the series short enough
// to render while bounding replay overhead to a few percent.
const DefaultWindow = 64 << 10

// Config selects the probe's sampling behavior. The zero value disables
// telemetry entirely.
type Config struct {
	// Window is the interval width in references. <= 0 disables the probe.
	Window int64 `json:"window"`
}

// Enabled reports whether the configuration asks for a probe at all.
func (c Config) Enabled() bool { return c.Window > 0 }

// Counters is the windowed subset of stats.Run the interval series tracks:
// the protocol-activity counters whose temporal shape the reactive story
// is about. Timing/contention counters are excluded — they are not
// meaningful as per-window deltas under the conservative event engine.
type Counters struct {
	Refs           int64 `json:"refs"`
	L1Hits         int64 `json:"l1Hits"`
	LocalFills     int64 `json:"localFills"`
	BlockCacheHits int64 `json:"blockCacheHits"`
	PageCacheHits  int64 `json:"pageCacheHits"`
	RemoteFetches  int64 `json:"remoteFetches"`
	Refetches      int64 `json:"refetches"`
	Upgrades       int64 `json:"upgrades"`
	PageFaults     int64 `json:"pageFaults"`
	Allocations    int64 `json:"allocations"`
	Replacements   int64 `json:"replacements"`
	Relocations    int64 `json:"relocations"`
	Demotions      int64 `json:"demotions"`
	InvalsSent     int64 `json:"invalsSent"`
	WritebacksHome int64 `json:"writebacksHome"`
}

// Sub returns the component-wise difference c - prev: the delta a window
// contributed given cumulative samples at its two boundaries.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Refs:           c.Refs - prev.Refs,
		L1Hits:         c.L1Hits - prev.L1Hits,
		LocalFills:     c.LocalFills - prev.LocalFills,
		BlockCacheHits: c.BlockCacheHits - prev.BlockCacheHits,
		PageCacheHits:  c.PageCacheHits - prev.PageCacheHits,
		RemoteFetches:  c.RemoteFetches - prev.RemoteFetches,
		Refetches:      c.Refetches - prev.Refetches,
		Upgrades:       c.Upgrades - prev.Upgrades,
		PageFaults:     c.PageFaults - prev.PageFaults,
		Allocations:    c.Allocations - prev.Allocations,
		Replacements:   c.Replacements - prev.Replacements,
		Relocations:    c.Relocations - prev.Relocations,
		Demotions:      c.Demotions - prev.Demotions,
		InvalsSent:     c.InvalsSent - prev.InvalsSent,
		WritebacksHome: c.WritebacksHome - prev.WritebacksHome,
	}
}

// Add accumulates the component-wise sum c + d in place (per-client
// attribution accumulates window deltas into per-tenant totals).
func (c *Counters) Add(d Counters) {
	c.Refs += d.Refs
	c.L1Hits += d.L1Hits
	c.LocalFills += d.LocalFills
	c.BlockCacheHits += d.BlockCacheHits
	c.PageCacheHits += d.PageCacheHits
	c.RemoteFetches += d.RemoteFetches
	c.Refetches += d.Refetches
	c.Upgrades += d.Upgrades
	c.PageFaults += d.PageFaults
	c.Allocations += d.Allocations
	c.Replacements += d.Replacements
	c.Relocations += d.Relocations
	c.Demotions += d.Demotions
	c.InvalsSent += d.InvalsSent
	c.WritebacksHome += d.WritebacksHome
}

// Interval is one window of the series: the counter deltas accumulated
// over references (StartRef, EndRef], plus the window's remote-traffic
// matrix when any remote fetch occurred.
type Interval struct {
	// Index is the interval's ordinal in the series (0-based). Every
	// interval but the last covers exactly Window references, so Index
	// also equals StartRef/Window.
	Index int64 `json:"index"`

	// StartRef/EndRef bound the window: it covers the references numbered
	// StartRef+1 through EndRef (1-based global reference indices).
	StartRef int64 `json:"startRef"`
	EndRef   int64 `json:"endRef"`

	// Delta holds the counter increments this window contributed.
	Delta Counters `json:"delta"`

	// Traffic is the window's remote-fetch matrix, flattened
	// requester-major (Traffic[src*nodes+dst] = fetches node src issued
	// to home dst). Nil when the window saw no remote fetch, so that
	// quiet windows cost nothing to store or compare.
	Traffic []int64 `json:"traffic,omitempty"`

	// PerClient splits Delta by traffic client, indexed like
	// Timeline.Clients. Nil unless the run carried attribution (the
	// single-tenant series is unchanged by the multi-tenant extension).
	PerClient []Counters `json:"perClient,omitempty"`
}

// TrafficAt returns the window's remote-fetch count from requester src to
// home dst, handling the nil (quiet-window) representation.
func (iv *Interval) TrafficAt(src, dst addr.NodeID, nodes int) int64 {
	if iv.Traffic == nil {
		return 0
	}
	return iv.Traffic[int(src)*nodes+int(dst)]
}

// Event records one page crossing the relocation threshold: which page,
// on which node, at which global reference, and the refetch count that
// triggered it (== the run's threshold).
type Event struct {
	// Ref is the 1-based global reference index of the access that
	// crossed the threshold.
	Ref int64 `json:"ref"`

	// Window is the ordinal of the interval containing Ref.
	Window int64 `json:"window"`

	Node  addr.NodeID  `json:"node"`
	Page  addr.PageNum `json:"page"`
	Count uint32       `json:"count"`
}

// Timeline is a run's complete telemetry capture. It rides on stats.Run,
// so memoization, snapshots, and fork sweeps carry it alongside the
// counters it windows.
type Timeline struct {
	Window    int64      `json:"window"`
	Nodes     int        `json:"nodes"`
	Intervals []Interval `json:"intervals"`
	Events    []Event    `json:"events"`

	// Clients names the traffic clients the intervals' PerClient slices
	// index; nil for single-tenant runs.
	Clients []string `json:"clients,omitempty"`
}

// Clone returns a deep copy: the interval slice, each interval's traffic
// matrix, and the event log are all copied.
func (t *Timeline) Clone() *Timeline {
	if t == nil {
		return nil
	}
	c := &Timeline{Window: t.Window, Nodes: t.Nodes}
	if t.Clients != nil {
		c.Clients = append([]string(nil), t.Clients...)
	}
	if t.Intervals != nil {
		c.Intervals = make([]Interval, len(t.Intervals))
		for i, iv := range t.Intervals {
			c.Intervals[i] = iv
			if iv.Traffic != nil {
				c.Intervals[i].Traffic = append([]int64(nil), iv.Traffic...)
			}
			if iv.PerClient != nil {
				c.Intervals[i].PerClient = append([]Counters(nil), iv.PerClient...)
			}
		}
	}
	if t.Events != nil {
		c.Events = append([]Event(nil), t.Events...)
	}
	return c
}

// TotalTraffic sums the per-window traffic matrices into one nodes×nodes
// requester-major matrix for the whole run.
func (t *Timeline) TotalTraffic() []int64 {
	total := make([]int64, t.Nodes*t.Nodes)
	for _, iv := range t.Intervals {
		for i, v := range iv.Traffic {
			total[i] += v
		}
	}
	return total
}

// Probe is the machine-side sampler. The machine calls AddTraffic and
// Relocation from its protocol paths (only when the probe is non-nil) and
// Flush at each window boundary and at end of run; everything else is
// internal cursor state.
type Probe struct {
	window int64
	nodes  int
	tl     *Timeline

	// Cursor: cumulative counters and reference count at the last flushed
	// boundary, the partially accumulated traffic matrix for the current
	// window, and the reference count that ends it.
	last         Counters
	lastRef      int64
	next         int64
	traffic      []int64
	trafficDirty bool

	// Per-client cursor (multi-tenant runs): cumulative per-client
	// samples at the last flushed boundary. Nil unless EnableClients ran.
	lastClients []Counters
}

// NewProbe builds a probe for a machine with the given node count. The
// configuration must be enabled (Window > 0); a disabled configuration is
// represented by not constructing a probe at all.
func NewProbe(cfg Config, nodes int) *Probe {
	if !cfg.Enabled() {
		panic("telemetry: NewProbe with disabled config")
	}
	return &Probe{
		window:  cfg.Window,
		nodes:   nodes,
		tl:      &Timeline{Window: cfg.Window, Nodes: nodes},
		next:    cfg.Window,
		traffic: make([]int64, nodes*nodes),
	}
}

// Timeline returns the capture the probe appends to.
func (p *Probe) Timeline() *Timeline { return p.tl }

// NextBoundary returns the global reference count that ends the current
// window — the machine caches it and compares per reference.
func (p *Probe) NextBoundary() int64 { return p.next }

// AddTraffic accumulates one remote fetch from requester src to home dst
// into the current window's matrix.
func (p *Probe) AddTraffic(src, dst addr.NodeID) {
	p.traffic[int(src)*p.nodes+int(dst)]++
	p.trafficDirty = true
}

// Relocation appends a threshold-crossing event. ref is the 1-based global
// reference index of the triggering access; the containing window ordinal
// is derived arithmetically so it is stable across snapshot/resume.
func (p *Probe) Relocation(ref int64, n addr.NodeID, pg addr.PageNum, count uint32) {
	p.tl.Events = append(p.tl.Events, Event{
		Ref:    ref,
		Window: (ref - 1) / p.window,
		Node:   n,
		Page:   pg,
		Count:  count,
	})
}

// Flush closes the current window at endRef given the machine's cumulative
// counter sample, appending one interval and advancing the cursor. A flush
// at the current boundary (endRef == lastRef — the run ended exactly on a
// window edge) is a no-op, so the machine's end-of-run flush is safe to
// call unconditionally.
func (p *Probe) Flush(cur Counters, endRef int64) {
	if endRef <= p.lastRef {
		return
	}
	iv := Interval{
		Index:    int64(len(p.tl.Intervals)),
		StartRef: p.lastRef,
		EndRef:   endRef,
		Delta:    cur.Sub(p.last),
	}
	if p.trafficDirty {
		iv.Traffic = append([]int64(nil), p.traffic...)
		for i := range p.traffic {
			p.traffic[i] = 0
		}
		p.trafficDirty = false
	}
	p.tl.Intervals = append(p.tl.Intervals, iv)
	p.last = cur
	p.lastRef = endRef
	p.next = endRef + p.window
}

// EnableClients switches the probe to multi-tenant mode: the timeline
// names the clients and every subsequent flush must go through
// FlushClients so each interval carries its per-client split.
func (p *Probe) EnableClients(names []string) {
	p.tl.Clients = append([]string(nil), names...)
	p.lastClients = make([]Counters, len(names))
}

// FlushClients is Flush for attributed runs: clients holds the machine's
// cumulative per-client counter samples (indexed like the names passed to
// EnableClients), and the appended interval's PerClient slice gets the
// per-client window deltas. Like Flush, a flush at the current boundary
// is a no-op.
func (p *Probe) FlushClients(cur Counters, endRef int64, clients []Counters) {
	n := len(p.tl.Intervals)
	p.Flush(cur, endRef)
	if len(p.tl.Intervals) == n {
		return
	}
	iv := &p.tl.Intervals[n]
	iv.PerClient = make([]Counters, len(clients))
	for i := range clients {
		iv.PerClient[i] = clients[i].Sub(p.lastClients[i])
	}
	copy(p.lastClients, clients)
}

// ProbeState is the probe's serializable cursor, carried in machine
// snapshots so a restored run continues its series bit-identically — even
// when the snapshot point falls mid-window. The timeline itself rides on
// the snapshot's stats.Run; the cursor carries only what the next flush
// needs.
type ProbeState struct {
	Window  int64
	Nodes   int
	Last    Counters
	LastRef int64
	Next    int64
	// Traffic is the partial current-window matrix, nil when clean.
	Traffic []int64
}

// State captures the probe's cursor.
func (p *Probe) State() ProbeState {
	st := ProbeState{
		Window:  p.window,
		Nodes:   p.nodes,
		Last:    p.last,
		LastRef: p.lastRef,
		Next:    p.next,
	}
	if p.trafficDirty {
		st.Traffic = append([]int64(nil), p.traffic...)
	}
	return st
}

// Restore installs a captured cursor and re-attaches the probe to tl (the
// restored run's timeline, which the next flush appends to).
func (p *Probe) Restore(st ProbeState, tl *Timeline) error {
	if tl == nil {
		return fmt.Errorf("telemetry: restore without a timeline")
	}
	if st.Window != p.window || st.Nodes != p.nodes {
		return fmt.Errorf("telemetry: cursor for window=%d nodes=%d, probe has window=%d nodes=%d",
			st.Window, st.Nodes, p.window, p.nodes)
	}
	if st.Traffic != nil && len(st.Traffic) != p.nodes*p.nodes {
		return fmt.Errorf("telemetry: cursor traffic matrix has %d cells, want %d", len(st.Traffic), p.nodes*p.nodes)
	}
	p.tl = tl
	p.last = st.Last
	p.lastRef = st.LastRef
	p.next = st.Next
	for i := range p.traffic {
		p.traffic[i] = 0
	}
	p.trafficDirty = false
	if st.Traffic != nil {
		copy(p.traffic, st.Traffic)
		p.trafficDirty = true
	}
	return nil
}
