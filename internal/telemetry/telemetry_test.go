package telemetry

import (
	"reflect"
	"testing"

	"rnuma/internal/addr"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if (Config{Window: -1}).Enabled() {
		t.Fatal("negative window must be disabled")
	}
	if !(Config{Window: 1}).Enabled() {
		t.Fatal("positive window must be enabled")
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{Refs: 10, Refetches: 4, Relocations: 1}
	b := Counters{Refs: 25, Refetches: 9, Relocations: 1}
	d := b.Sub(a)
	want := Counters{Refs: 15, Refetches: 5}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
}

func TestProbeFlushSeries(t *testing.T) {
	p := NewProbe(Config{Window: 100}, 2)
	if p.NextBoundary() != 100 {
		t.Fatalf("first boundary = %d, want 100", p.NextBoundary())
	}

	p.AddTraffic(addr.NodeID(0), addr.NodeID(1))
	p.AddTraffic(addr.NodeID(0), addr.NodeID(1))
	p.Flush(Counters{Refs: 100, RemoteFetches: 2}, 100)
	if p.NextBoundary() != 200 {
		t.Fatalf("second boundary = %d, want 200", p.NextBoundary())
	}

	// Quiet window: no traffic matrix should be materialized.
	p.Flush(Counters{Refs: 200, RemoteFetches: 2}, 200)

	// Trailing partial window.
	p.AddTraffic(addr.NodeID(1), addr.NodeID(0))
	p.Flush(Counters{Refs: 250, RemoteFetches: 3, Refetches: 1}, 250)
	// End-of-run flush at the same ref must be a no-op.
	p.Flush(Counters{Refs: 250, RemoteFetches: 3, Refetches: 1}, 250)

	tl := p.Timeline()
	if len(tl.Intervals) != 3 {
		t.Fatalf("got %d intervals, want 3", len(tl.Intervals))
	}
	iv0, iv1, iv2 := tl.Intervals[0], tl.Intervals[1], tl.Intervals[2]
	if iv0.Index != 0 || iv0.StartRef != 0 || iv0.EndRef != 100 {
		t.Fatalf("interval 0 bounds: %+v", iv0)
	}
	if iv0.Delta.RemoteFetches != 2 || iv0.TrafficAt(0, 1, 2) != 2 {
		t.Fatalf("interval 0 traffic: %+v", iv0)
	}
	if iv1.Traffic != nil || iv1.Delta.RemoteFetches != 0 {
		t.Fatalf("quiet interval materialized traffic: %+v", iv1)
	}
	if iv2.StartRef != 200 || iv2.EndRef != 250 || iv2.Delta.Refs != 50 {
		t.Fatalf("partial interval bounds: %+v", iv2)
	}
	if iv2.TrafficAt(1, 0, 2) != 1 {
		t.Fatalf("partial interval traffic: %+v", iv2)
	}

	total := tl.TotalTraffic()
	if want := []int64{0, 2, 1, 0}; !reflect.DeepEqual(total, want) {
		t.Fatalf("TotalTraffic = %v, want %v", total, want)
	}
}

func TestRelocationWindowOrdinal(t *testing.T) {
	p := NewProbe(Config{Window: 100}, 1)
	p.Relocation(1, 0, 7, 64)   // first ref of window 0
	p.Relocation(100, 0, 8, 64) // last ref of window 0
	p.Relocation(101, 0, 9, 64) // first ref of window 1
	ev := p.Timeline().Events
	if ev[0].Window != 0 || ev[1].Window != 0 || ev[2].Window != 1 {
		t.Fatalf("event windows = %d,%d,%d, want 0,0,1", ev[0].Window, ev[1].Window, ev[2].Window)
	}
}

func TestTimelineClone(t *testing.T) {
	p := NewProbe(Config{Window: 10}, 2)
	p.AddTraffic(0, 1)
	p.Flush(Counters{Refs: 10, RemoteFetches: 1}, 10)
	p.Relocation(5, 0, 3, 16)
	tl := p.Timeline()

	c := tl.Clone()
	if !reflect.DeepEqual(tl, c) {
		t.Fatal("clone differs from original")
	}
	c.Intervals[0].Traffic[0] = 99
	c.Events[0].Page = 42
	if tl.Intervals[0].Traffic[0] == 99 || tl.Events[0].Page == 42 {
		t.Fatal("clone shares storage with original")
	}
	if (*Timeline)(nil).Clone() != nil {
		t.Fatal("nil clone must stay nil")
	}
}

func TestProbeStateRoundTrip(t *testing.T) {
	p := NewProbe(Config{Window: 100}, 2)
	p.Flush(Counters{Refs: 100, Refetches: 3}, 100)
	p.AddTraffic(1, 0) // mid-window traffic: the cursor must carry it
	st := p.State()
	if st.Traffic == nil {
		t.Fatal("dirty cursor must carry the partial traffic matrix")
	}

	// A fresh probe (as machine restore builds) continues the series.
	q := NewProbe(Config{Window: 100}, 2)
	tl := p.Timeline().Clone()
	if err := q.Restore(st, tl); err != nil {
		t.Fatal(err)
	}
	q.AddTraffic(1, 0)
	q.Flush(Counters{Refs: 200, Refetches: 3}, 200)
	if q.NextBoundary() != 300 {
		t.Fatalf("boundary after restore+flush = %d, want 300", q.NextBoundary())
	}
	iv := tl.Intervals[1]
	if iv.StartRef != 100 || iv.EndRef != 200 || iv.TrafficAt(1, 0, 2) != 2 {
		t.Fatalf("restored interval: %+v", iv)
	}

	// Mismatched geometry must be rejected.
	if err := NewProbe(Config{Window: 50}, 2).Restore(st, tl); err == nil {
		t.Fatal("window mismatch accepted")
	}
	if err := NewProbe(Config{Window: 100}, 4).Restore(st, tl); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	if err := q.Restore(st, nil); err == nil {
		t.Fatal("nil timeline accepted")
	}
	bad := st
	bad.Traffic = []int64{1}
	if err := q.Restore(bad, tl); err == nil {
		t.Fatal("short traffic matrix accepted")
	}
}

func TestNewProbeDisabledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewProbe with disabled config must panic")
		}
	}()
	NewProbe(Config{}, 1)
}
