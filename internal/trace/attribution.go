package trace

import "fmt"

// ClientSpan is a run of consecutive records on one CPU attributed to a
// single traffic client. Spans run-length encode the per-record client
// identity of a compiled multi-tenant stream: the merge that interleaves
// client lanes by arrival time emits long same-client runs, so the RLE
// form costs a few entries per window instead of one per reference.
type ClientSpan struct {
	// Client indexes Attribution.Clients.
	Client int32
	// N is the span's record count (barriers included, matching the
	// stream's record numbering).
	N int64
}

// Attribution maps every record of a multi-stream workload back to the
// traffic client that issued it. The machine consumes it at replay time
// to split the run's counters per tenant; it travels on the Workload, not
// in the trace file (the encoded trace stays replayable by tools that
// know nothing about clients).
type Attribution struct {
	// Clients names the tenants, in the order spans reference them.
	Clients []string
	// Spans holds one RLE sequence per CPU covering that CPU's records
	// in order (the per-CPU span lengths sum to the stream's record
	// count, barriers included).
	Spans [][]ClientSpan
}

// Validate checks internal consistency: at least one client, every span
// referencing a named client with a positive length.
func (a *Attribution) Validate() error {
	if len(a.Clients) == 0 {
		return fmt.Errorf("trace: attribution with no clients")
	}
	for cpu, spans := range a.Spans {
		for i, s := range spans {
			if s.Client < 0 || int(s.Client) >= len(a.Clients) {
				return fmt.Errorf("trace: cpu %d span %d names client %d of %d", cpu, i, s.Client, len(a.Clients))
			}
			if s.N < 1 {
				return fmt.Errorf("trace: cpu %d span %d has length %d", cpu, i, s.N)
			}
		}
	}
	return nil
}

// Records returns the total record count the CPU's spans cover.
func (a *Attribution) Records(cpu int) int64 {
	var n int64
	for _, s := range a.Spans[cpu] {
		n += s.N
	}
	return n
}
