// Package trace defines the memory-reference streams the simulated
// processors execute. Workloads produce one stream per CPU; the machine
// pulls references lazily, so streams can be generated on the fly without
// materializing full traces.
package trace

import (
	"fmt"

	"rnuma/internal/addr"
)

// Ref is one data memory reference, or a barrier marker.
type Ref struct {
	// Page and Off name the referenced block in the global shared segment.
	Page addr.PageNum
	Off  uint16
	// Write distinguishes stores from loads.
	Write bool
	// Gap is the compute time (cycles) the CPU spends before issuing this
	// reference — the non-memory instructions between references.
	Gap uint16
	// Barrier marks a global synchronization point instead of a memory
	// access: the CPU waits until every other active CPU reaches its next
	// barrier (the bulk-synchronous structure of the SPLASH-2 workloads).
	Barrier bool
}

// BarrierRef returns a barrier marker.
func BarrierRef() Ref { return Ref{Barrier: true} }

// Stream produces a CPU's references in program order.
type Stream interface {
	// Next returns the next reference, or ok=false at end of program.
	Next() (Ref, bool)
}

// Batcher is an optional Stream extension for bulk delivery: NextBatch
// returns a view of up to max consecutive references (empty at end of
// program). The view aliases stream-owned storage and is valid only
// until the next call on the stream — the machine's event loop drains it
// before pulling again, amortizing the per-Next interface call (and, for
// decoded trace files, the per-record decode) across the batch with no
// copying.
type Batcher interface {
	Stream
	NextBatch(max int) []Ref
}

// Seeker is an optional Stream extension for forked replay: Seek
// positions the stream so the next record returned is record number n
// (records consumed so far), counting barriers. The tracefile Reader
// implements it with chunk-index skipping so a fork does not re-decode
// the shared prefix; in-memory streams implement it by moving a cursor.
type Seeker interface {
	Stream
	SeekRecord(n int64) error
}

// SliceStream replays a pre-built reference slice.
type SliceStream struct {
	refs []Ref
	pos  int
}

// FromSlice wraps a slice of references as a Stream.
func FromSlice(refs []Ref) *SliceStream { return &SliceStream{refs: refs} }

// Next implements Stream.
func (s *SliceStream) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

// NextBatch implements Batcher.
func (s *SliceStream) NextBatch(max int) []Ref {
	n := len(s.refs) - s.pos
	if n > max {
		n = max
	}
	out := s.refs[s.pos : s.pos+n]
	s.pos += n
	return out
}

// Seek implements Seeker.
func (s *SliceStream) SeekRecord(n int64) error {
	if n < 0 || n > int64(len(s.refs)) {
		return fmt.Errorf("trace: seek to record %d of %d", n, len(s.refs))
	}
	s.pos = int(n)
	return nil
}

// Len returns the total number of references in the slice.
func (s *SliceStream) Len() int { return len(s.refs) }

// FuncStream adapts a generator function to a Stream.
type FuncStream func() (Ref, bool)

// Next implements Stream.
func (f FuncStream) Next() (Ref, bool) { return f() }

// Concat chains streams back to back. Nil entries are skipped, so
// callers can assemble the list conditionally without guarding each slot.
func Concat(streams ...Stream) Stream {
	i := 0
	return FuncStream(func() (Ref, bool) {
		for i < len(streams) {
			if s := streams[i]; s != nil {
				if r, ok := s.Next(); ok {
					return r, true
				}
			}
			i++
		}
		return Ref{}, false
	})
}

// Repeat replays the slice n times (phases/iterations). n <= 0 and an
// empty slice both yield an immediately-exhausted stream. The slice is
// aliased, not copied: mutating it between pulls changes what replays.
func Repeat(refs []Ref, n int) Stream {
	if n <= 0 || len(refs) == 0 {
		return Empty()
	}
	iter, pos := 0, 0
	return FuncStream(func() (Ref, bool) {
		if iter >= n {
			return Ref{}, false
		}
		r := refs[pos]
		pos++
		if pos == len(refs) {
			iter++
			pos = 0
		}
		return r, true
	})
}

// Empty is a stream with no references (an idle CPU).
func Empty() Stream { return FromSlice(nil) }

// Count drains a stream and returns its length (testing helper).
func Count(s Stream) int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}
