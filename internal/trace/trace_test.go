package trace

import (
	"testing"

	"rnuma/internal/addr"
)

func refs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = Ref{Page: addr.PageNum(i), Off: uint16(i % 128)}
	}
	return out
}

func TestSliceStream(t *testing.T) {
	s := FromSlice(refs(3))
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < 3; i++ {
		r, ok := s.Next()
		if !ok || r.Page != addr.PageNum(i) {
			t.Fatalf("ref %d = %+v, ok=%v", i, r, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream did not end")
	}
	if _, ok := s.Next(); ok {
		t.Error("ended stream restarted")
	}
}

func TestConcat(t *testing.T) {
	s := Concat(FromSlice(refs(2)), Empty(), FromSlice(refs(3)))
	if got := Count(s); got != 5 {
		t.Errorf("concat length = %d, want 5", got)
	}
}

func TestRepeat(t *testing.T) {
	base := refs(4)
	s := Repeat(base, 3)
	var seen []addr.PageNum
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		seen = append(seen, r.Page)
	}
	if len(seen) != 12 {
		t.Fatalf("repeat emitted %d refs, want 12", len(seen))
	}
	for i, p := range seen {
		if p != addr.PageNum(i%4) {
			t.Fatalf("ref %d = page %d, want %d", i, p, i%4)
		}
	}
	if got := Count(Repeat(base, 0)); got != 0 {
		t.Errorf("repeat 0 emitted %d refs", got)
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Ref, bool) {
		if n >= 2 {
			return Ref{}, false
		}
		n++
		return Ref{Page: addr.PageNum(n)}, true
	})
	if got := Count(s); got != 2 {
		t.Errorf("func stream length = %d, want 2", got)
	}
}

func TestEmpty(t *testing.T) {
	if got := Count(Empty()); got != 0 {
		t.Errorf("empty stream emitted %d refs", got)
	}
}
