package trace

import (
	"testing"

	"rnuma/internal/addr"
)

func refs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = Ref{Page: addr.PageNum(i), Off: uint16(i % 128)}
	}
	return out
}

func TestSliceStream(t *testing.T) {
	s := FromSlice(refs(3))
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < 3; i++ {
		r, ok := s.Next()
		if !ok || r.Page != addr.PageNum(i) {
			t.Fatalf("ref %d = %+v, ok=%v", i, r, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream did not end")
	}
	if _, ok := s.Next(); ok {
		t.Error("ended stream restarted")
	}
}

func TestConcat(t *testing.T) {
	cases := []struct {
		name    string
		streams []Stream
		want    int
	}{
		{"three streams", []Stream{FromSlice(refs(2)), Empty(), FromSlice(refs(3))}, 5},
		{"no streams", nil, 0},
		{"all empty", []Stream{Empty(), Empty()}, 0},
		{"leading empties", []Stream{Empty(), Empty(), FromSlice(refs(4))}, 4},
		{"trailing empty", []Stream{FromSlice(refs(1)), Empty()}, 1},
		{"nil stream skipped", []Stream{FromSlice(refs(2)), nil, FromSlice(refs(1))}, 3},
		{"only nils", []Stream{nil, nil}, 0},
		{"nested concat", []Stream{Concat(FromSlice(refs(2)), FromSlice(refs(2))), FromSlice(refs(1))}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Concat(tc.streams...)
			if got := Count(s); got != tc.want {
				t.Errorf("concat length = %d, want %d", got, tc.want)
			}
			if _, ok := s.Next(); ok {
				t.Error("exhausted concat restarted")
			}
		})
	}
}

func TestRepeat(t *testing.T) {
	cases := []struct {
		name string
		refs []Ref
		n    int
		want int
	}{
		{"three times", refs(4), 3, 12},
		{"once", refs(4), 1, 4},
		{"zero times", refs(4), 0, 0},
		{"negative times", refs(4), -2, 0},
		{"empty slice", nil, 3, 0},
		{"empty slice zero times", nil, 0, 0},
		{"single ref many times", refs(1), 5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Repeat(tc.refs, tc.n)
			var seen []addr.PageNum
			for {
				r, ok := s.Next()
				if !ok {
					break
				}
				seen = append(seen, r.Page)
			}
			if len(seen) != tc.want {
				t.Fatalf("repeat emitted %d refs, want %d", len(seen), tc.want)
			}
			for i, p := range seen {
				if p != addr.PageNum(i%len(tc.refs)) {
					t.Fatalf("ref %d = page %d, want %d", i, p, i%len(tc.refs))
				}
			}
			if _, ok := s.Next(); ok {
				t.Error("exhausted repeat restarted")
			}
		})
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Ref, bool) {
		if n >= 2 {
			return Ref{}, false
		}
		n++
		return Ref{Page: addr.PageNum(n)}, true
	})
	if got := Count(s); got != 2 {
		t.Errorf("func stream length = %d, want 2", got)
	}
}

func TestEmpty(t *testing.T) {
	if got := Count(Empty()); got != 0 {
		t.Errorf("empty stream emitted %d refs", got)
	}
}
