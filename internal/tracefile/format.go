// Package tracefile implements a compact streaming binary format for
// memory-reference traces: the capture/replay substrate that lets the
// simulator ingest recorded traffic instead of (only) the built-in
// synthetic generators.
//
// # Format
//
// A trace file is a header followed by per-CPU record chunks and a
// terminating end marker. All integers are unsigned varints
// (encoding/binary) unless stated otherwise. Two on-disk versions exist;
// the Reader handles both transparently, and the Writer emits version 2
// unless asked otherwise.
//
//	header:
//	  magic      [4]byte  "RNTR"
//	  version    byte     1 or 2
//	  blockShift byte     log2(block bytes)
//	  pageShift  byte     log2(page bytes)
//	  cpus       uvarint  number of per-CPU streams
//	  nodes      uvarint  SMP nodes (home-map domain)
//	  pages      uvarint  shared-segment page count
//	  nameLen    uvarint  + name bytes (workload name, UTF-8)
//	  homeRuns   uvarint  + homeRuns x (uvarint runLen, uvarint node)
//	             run-length-encoded page->home map; run lengths sum to
//	             pages
//	chunk (version 1):
//	  cpu        uvarint  stream index, < cpus
//	  count      uvarint  records in this chunk, >= 1
//	  byteLen    uvarint  encoded payload size that follows
//	  payload    count records (see below), exactly byteLen bytes
//	chunk (version 2):
//	  cpu        uvarint  stream index, < cpus
//	  count      uvarint  records in this chunk, >= 1
//	  flags      byte     bit 0: payload is DEFLATE-compressed
//	                      bit 1: a page seed follows (see below)
//	  rawLen     uvarint  decoded payload size (present only when bit 0 set)
//	  seed       varint   the CPU's page-delta accumulator value at chunk
//	             start (present only when bit 1 set); makes the chunk
//	             independently decodable, so a seeking reader can skip
//	             whole prefix chunks without decoding them
//	  byteLen    uvarint  stored payload size that follows
//	  payload    byteLen bytes; after optional DEFLATE decompression,
//	             exactly count records spanning rawLen (or byteLen) bytes
//	end marker:
//	  cpus       uvarint  (the cpu field equal to the CPU count)
//	  total      uvarint  total records across all chunks (checksum)
//	  <EOF>      trailing bytes are an error
//
// Version 2's per-chunk DEFLATE is what makes bulk capture cheap: record
// payloads are highly repetitive (flags bytes and small deltas), so the
// catalog traces compress to well under 60% of their version-1 size. The
// Writer stores a chunk raw (flags bit 0 clear) whenever compression
// would not shrink it, so pathological inputs never grow.
//
// Each record is a flags byte followed by optional varint fields:
//
//	bit 0  Write
//	bit 1  Barrier
//	bit 2  a Gap uvarint follows
//	bit 3  an Off uvarint follows
//	bit 4  a signed page delta varint follows
//
// Page numbers are delta-encoded per CPU (zigzag signed varints against
// the previous record's page on the same stream, starting from 0);
// omitted fields decode as "gap 0", "offset 0", and "same page as the
// previous record". Sequential sweeps — the common case — therefore cost
// 2-4 bytes per reference against 12 bytes of in-memory trace.Ref.
//
// The chunked layout keeps both ends streaming: the Writer flushes a
// CPU's chunk whenever chunkRecords accumulate, and the Reader demuxes
// chunks into per-CPU queues on demand, so neither side materializes the
// full trace.
package tracefile

import (
	"fmt"

	"rnuma/internal/addr"
)

const (
	magic = "RNTR"

	// VersionV1 is the original uncompressed chunk format; VersionV2 adds
	// the per-chunk flags byte and optional DEFLATE payload compression.
	// Writers default to VersionV2; Readers accept both.
	VersionV1 = 1
	VersionV2 = 2

	// chunkRecords is the Writer's per-CPU flush threshold. Small enough
	// that the Reader's demux buffers stay modest when replay pulls
	// streams unevenly, large enough to amortize chunk headers (and, in
	// version 2, to give DEFLATE a useful compression window).
	chunkRecords = 4096

	// Sanity bounds for decoding untrusted input. They comfortably exceed
	// anything config.System.Validate accepts (32 nodes x 16 CPUs, and
	// full-scale workload segments of a few thousand pages), so real
	// traces never hit them — while a crafted header cannot demand
	// absurd allocations. The page bound matters beyond this package:
	// replay sizes the machine's dense per-page state (homes, sharing
	// flags, per-(node,page) counters) from the header's page count, so
	// pages and pages*nodes must stay small enough that a ~50-byte
	// malicious file cannot OOM the simulator before a record is read.
	maxCPUs    = 1 << 12
	maxNodes   = 1 << 10
	maxPages   = 1 << 20
	maxNameLen = 1 << 12

	// maxChunkLen bounds both a chunk's stored payload and (for version-2
	// compressed chunks) its declared decompressed size, which the Reader
	// buffers in full. The Writer flushes at chunkRecords records of at
	// most ~31 encoded bytes each (~128 KB), so 4 MB is far beyond any
	// real chunk while keeping a crafted chunk's decompression allocation
	// small.
	maxChunkLen = 1 << 22

	// maxPageNodeProduct bounds SharedPages*Nodes, the size of the dense
	// per-(node,page) tables replay allocates (16M entries ~= 128 MB of
	// int64 counters worst case).
	maxPageNodeProduct = 1 << 24
)

// Record flag bits.
const (
	flagWrite   = 1 << 0
	flagBarrier = 1 << 1
	flagGap     = 1 << 2
	flagOff     = 1 << 3
	flagDelta   = 1 << 4

	flagsKnown = flagWrite | flagBarrier | flagGap | flagOff | flagDelta
)

// Version-2 chunk flag bits.
const (
	chunkDeflate = 1 << 0
	// chunkSeed marks a chunk carrying its page-delta seed, making it
	// decodable without the chunks before it (the Seek fast path). The
	// Writer sets it on every version-2 chunk; files without it (written
	// before the flag existed) still decode and seek, just without
	// whole-chunk skipping.
	chunkSeed = 1 << 1

	chunkFlagsKnown = chunkDeflate | chunkSeed
)

// Header describes the recorded machine shape and page placement; it is
// everything replay needs beyond the reference streams themselves.
type Header struct {
	// Name is the recorded workload's name (informational).
	Name string
	// Geometry is the block/page geometry the trace's page numbers and
	// block offsets are expressed in. Replay must use the same geometry.
	Geometry addr.Geometry
	// CPUs is the number of per-CPU reference streams.
	CPUs int
	// Nodes is the node count the home map is expressed against.
	Nodes int
	// SharedPages is the shared-segment size in pages; every record's
	// page number is below it.
	SharedPages int
	// Homes maps each page of the shared segment to its home node
	// (len == SharedPages).
	Homes []addr.NodeID
}

// Validate reports whether the header is internally consistent.
func (h Header) Validate() error {
	if err := h.Geometry.Validate(); err != nil {
		return err
	}
	if h.CPUs < 1 || h.CPUs > maxCPUs {
		return fmt.Errorf("tracefile: cpu count %d out of range [1,%d]", h.CPUs, maxCPUs)
	}
	if h.Nodes < 1 || h.Nodes > maxNodes {
		return fmt.Errorf("tracefile: node count %d out of range [1,%d]", h.Nodes, maxNodes)
	}
	if h.SharedPages < 0 || h.SharedPages > maxPages {
		return fmt.Errorf("tracefile: shared page count %d out of range [0,%d]", h.SharedPages, maxPages)
	}
	if h.SharedPages*h.Nodes > maxPageNodeProduct {
		return fmt.Errorf("tracefile: %d pages x %d nodes exceeds the %d-entry dense-state bound",
			h.SharedPages, h.Nodes, maxPageNodeProduct)
	}
	if len(h.Name) > maxNameLen {
		return fmt.Errorf("tracefile: name length %d exceeds %d", len(h.Name), maxNameLen)
	}
	if len(h.Homes) != h.SharedPages {
		return fmt.Errorf("tracefile: home map covers %d pages, segment has %d", len(h.Homes), h.SharedPages)
	}
	for p, n := range h.Homes {
		if n < 0 || int(n) >= h.Nodes {
			return fmt.Errorf("tracefile: page %d homed at node %d, machine has %d nodes", p, n, h.Nodes)
		}
	}
	return nil
}

// HomeFunc returns the header's home map as the function form the machine
// consumes. Pages beyond the recorded segment (which a well-formed trace
// never references) fall back to round-robin.
func (h Header) HomeFunc() func(addr.PageNum) addr.NodeID {
	homes := h.Homes
	nodes := addr.NodeID(h.Nodes)
	return func(p addr.PageNum) addr.NodeID {
		if int(p) < len(homes) {
			return homes[p]
		}
		return addr.NodeID(p) % nodes
	}
}
