package tracefile

import (
	"bytes"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/trace"
)

// FuzzReader asserts the decoder's contract on untrusted input: malformed
// headers, corrupt chunks, and truncated files must surface as errors —
// never as panics, hangs, or unbounded allocations. CI runs this for a
// short smoke window (`go test -fuzz=FuzzReader -fuzztime=10s`); the
// unit-test mode replays the seed corpus on every `go test`.
func FuzzReader(f *testing.F) {
	// Seed corpus: a small valid trace (kept small so each fuzz exec is
	// cheap), its truncations, and single-byte corruptions — enough
	// structure that the fuzzer starts from deep inside the format.
	h := Header{
		Name:        "fuzz",
		Geometry:    addr.Default,
		CPUs:        2,
		Nodes:       2,
		SharedPages: 8,
		Homes:       []addr.NodeID{0, 0, 0, 0, 1, 1, 1, 1},
	}
	var valid []byte
	for _, opts := range [][]WriterOption{
		nil, // v2, compressed chunks
		{Compression(false)},
		{FormatVersion(VersionV1)},
	} {
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, h, opts...)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			r := trace.Ref{Page: addr.PageNum(i % 8), Off: uint16(i % 128), Write: i%3 == 0, Gap: uint16(i * 7 % 300)}
			if i%17 == 0 {
				r = trace.BarrierRef()
			}
			if err := tw.Append(i%2, r); err != nil {
				f.Fatal(err)
			}
		}
		if err := tw.Close(); err != nil {
			f.Fatal(err)
		}
		valid = buf.Bytes()
		f.Add(valid)
		for _, cut := range []int{0, 3, 4, 7, len(valid) / 2, len(valid) - 1} {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
		for _, i := range []int{0, 4, 5, 8, len(valid) / 2} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0xA5
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Drain everything; decode work and queue growth are bounded by
		// the input length times DEFLATE's maximum expansion (~1032:1 —
		// each decoded record consumes >= 1 byte of decompressed payload,
		// and every decompressed byte comes from a stored chunk byte).
		counts, err := d.Drain()
		if err != nil {
			return
		}
		var total int64
		for _, c := range counts {
			total += c
		}
		if total > 1032*int64(len(data)) {
			t.Fatalf("decoded %d records from %d bytes: exceeds the deflate expansion bound", total, len(data))
		}
	})
}
