package tracefile

import (
	"fmt"
	"io"

	"rnuma/internal/addr"
	"rnuma/internal/trace"
)

// This file implements geometry retargeting: rewriting a trace onto a
// different block/page geometry. Shape retargets (transform.go) keep the
// geometry fixed because changing it re-splits every address; this
// transform does exactly that re-splitting, so one capture can drive
// block-size and page-size sensitivity studies the way shape retargets
// drive node-count sweeps.
//
// The mapping works at the byte level: a record names the block starting
// at byte address (page << pageShift) + (off << blockShift) of the shared
// segment, and the rewritten record names the target-geometry block
// containing that same byte. Growing the block size folds neighboring
// source blocks together (coarser coherence granularity); shrinking it
// maps each source block to its first target sub-block (the reference
// address is preserved; a trace records block touches, not byte spans).
// Page homes carry over by byte address too: a target page is homed where
// the source page containing its first byte was homed, so placement
// survives page-size changes at the granularity the source expressed it.

// GeometrySpec describes the target of a geometry retarget. Zero-valued
// shift fields keep the source's value, so a spec selects only the
// dimension it changes.
type GeometrySpec struct {
	// BlockBytes and PageBytes are the target sizes; 0 keeps the source
	// geometry's value. Both must be powers of two within the ranges
	// addr.Geometry.Validate accepts.
	BlockBytes, PageBytes int
	// Name renames the retargeted workload; "" keeps the source name.
	Name string
}

// log2 returns the exponent of a power of two, or an error.
func log2(what string, v int) (uint, error) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, fmt.Errorf("tracefile: %s %d is not a power of two", what, v)
	}
	var s uint
	for 1<<s != v {
		s++
	}
	return s, nil
}

// resolve fills the spec's zero fields from the source geometry and
// validates the result.
func (s GeometrySpec) resolve(src addr.Geometry) (addr.Geometry, error) {
	if s.BlockBytes < 0 || s.PageBytes < 0 {
		return addr.Geometry{}, fmt.Errorf("tracefile: geometry retarget to %d-byte blocks/%d-byte pages (negative)", s.BlockBytes, s.PageBytes)
	}
	g := src
	if s.BlockBytes != 0 {
		shift, err := log2("block size", s.BlockBytes)
		if err != nil {
			return addr.Geometry{}, err
		}
		g.BlockShift = shift
	}
	if s.PageBytes != 0 {
		shift, err := log2("page size", s.PageBytes)
		if err != nil {
			return addr.Geometry{}, err
		}
		g.PageShift = shift
	}
	if err := g.Validate(); err != nil {
		return addr.Geometry{}, err
	}
	// trace.Ref carries block offsets in 16 bits; a geometry whose pages
	// hold more blocks than that cannot express every offset.
	if g.BlocksPerPage() > 1<<16 {
		return addr.Geometry{}, fmt.Errorf("tracefile: target geometry has %d blocks/page, offsets overflow the 16-bit record field", g.BlocksPerPage())
	}
	return g, nil
}

// RetargetGeometry rewrites src onto the spec's block/page geometry:
// every record's (page, offset) pair is re-split against the target
// sizes, the shared segment is re-sized to cover the same byte range, and
// the page-home map carries over by byte address. CPU attribution, gaps,
// and flags are untouched. Retargeting onto the source's own geometry
// reproduces the trace exactly (the canonical hash is preserved). Returns
// the record count written.
func RetargetGeometry(dst io.Writer, src io.Reader, spec GeometrySpec, opts ...WriterOption) (int64, error) {
	d, err := NewReader(src)
	if err != nil {
		return 0, err
	}
	h := d.Header()
	sg := h.Geometry
	tg, err := spec.resolve(sg)
	if err != nil {
		return 0, err
	}

	// The segment keeps its byte size: target pages = ceil(source bytes /
	// target page bytes).
	srcBytes := uint64(h.SharedPages) << sg.PageShift
	pages := int((srcBytes + uint64(tg.PageBytes()) - 1) >> tg.PageShift)
	homes := make([]addr.NodeID, pages)
	for q := range homes {
		sp := (uint64(q) << tg.PageShift) >> sg.PageShift
		if sp < uint64(len(h.Homes)) {
			homes[q] = h.Homes[sp]
		} else {
			homes[q] = addr.NodeID(q % h.Nodes)
		}
	}
	nh := Header{
		Name:        h.Name,
		Geometry:    tg,
		CPUs:        h.CPUs,
		Nodes:       h.Nodes,
		SharedPages: pages,
		Homes:       homes,
	}
	if spec.Name != "" {
		nh.Name = spec.Name
	}
	tw, err := NewWriter(dst, nh, opts...)
	if err != nil {
		return 0, err
	}
	blocksPerPage := uint64(tg.BlocksPerPage())
	err = eachRecord(d, func(cpu int, r trace.Ref) error {
		if !r.Barrier {
			a := (uint64(r.Page) << sg.PageShift) | (uint64(r.Off) << sg.BlockShift)
			r.Page = addr.PageNum(a >> tg.PageShift)
			r.Off = uint16((a >> tg.BlockShift) & (blocksPerPage - 1))
		}
		return tw.Append(cpu, r)
	})
	if err != nil {
		return tw.Refs(), err
	}
	if err := tw.Close(); err != nil {
		return tw.Refs(), err
	}
	return tw.Refs(), nil
}
