package tracefile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/trace"
)

// geometryBytes runs RetargetGeometry over an in-memory encoding.
func geometryBytes(t *testing.T, data []byte, spec GeometrySpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := RetargetGeometry(&buf, bytes.NewReader(data), spec); err != nil {
		t.Fatalf("RetargetGeometry: %v", err)
	}
	return buf.Bytes()
}

// TestGeometryIdentityPreservesHash: retargeting onto the source's own
// geometry must reproduce the canonical content exactly — the engine's
// address arithmetic is the identity when nothing changes.
func TestGeometryIdentityPreservesHash(t *testing.T) {
	h := testHeader()
	refs := randRefs(h, 600, 3)
	data := encode(t, h, refs)
	for _, spec := range []GeometrySpec{
		{}, // keep both
		{BlockBytes: h.Geometry.BlockBytes()},
		{PageBytes: h.Geometry.PageBytes()},
		{BlockBytes: h.Geometry.BlockBytes(), PageBytes: h.Geometry.PageBytes()},
	} {
		out := geometryBytes(t, data, spec)
		gotH, gotRefs := decode(t, out)
		if !reflect.DeepEqual(gotH, h) {
			t.Fatalf("spec %+v: header changed: %+v vs %+v", spec, gotH, h)
		}
		for c := range refs {
			if !reflect.DeepEqual(gotRefs[c], refs[c]) {
				t.Fatalf("spec %+v: cpu %d records changed", spec, c)
			}
		}
		if hashOf(t, data) != hashOf(t, out) {
			t.Fatalf("spec %+v: identity geometry retarget changed the canonical hash", spec)
		}
	}
}

// byteAddr computes the block-start byte address a record names under a
// geometry — the invariant every geometry retarget must preserve.
func byteAddr(g addr.Geometry, r trace.Ref) uint64 {
	return uint64(r.Page)<<g.PageShift | uint64(r.Off)<<g.BlockShift
}

// TestGeometryPreservesAddresses: under block-size and page-size changes
// each record must keep naming the target block containing the source
// block's first byte, with gaps, flags, and CPU attribution untouched.
func TestGeometryPreservesAddresses(t *testing.T) {
	h := testHeader() // block 32B, page 4K
	refs := randRefs(h, 400, 9)
	data := encode(t, h, refs)

	cases := []struct {
		name string
		spec GeometrySpec
	}{
		{"block-halved", GeometrySpec{BlockBytes: 16}},
		{"block-doubled", GeometrySpec{BlockBytes: 64}},
		{"page-halved", GeometrySpec{PageBytes: 2048}},
		{"page-doubled", GeometrySpec{PageBytes: 8192}},
		{"both", GeometrySpec{BlockBytes: 64, PageBytes: 2048}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := geometryBytes(t, data, tc.spec)
			gotH, gotRefs := decode(t, out)
			tg := gotH.Geometry

			// The segment keeps its byte size.
			srcBytes := h.SharedPages * h.Geometry.PageBytes()
			if got := gotH.SharedPages * tg.PageBytes(); got < srcBytes || got-srcBytes >= tg.PageBytes() {
				t.Fatalf("segment resized to %d bytes, source was %d", got, srcBytes)
			}
			// Homes carry over by byte address.
			for q, n := range gotH.Homes {
				sp := (q * tg.PageBytes()) / h.Geometry.PageBytes()
				if sp < len(h.Homes) && n != h.Homes[sp] {
					t.Fatalf("page %d homed at %d, source page %d was at %d", q, n, sp, h.Homes[sp])
				}
			}
			for c := range refs {
				if len(gotRefs[c]) != len(refs[c]) {
					t.Fatalf("cpu %d: %d records, want %d", c, len(gotRefs[c]), len(refs[c]))
				}
				for i, r := range refs[c] {
					g := gotRefs[c][i]
					if r.Barrier {
						if !g.Barrier || g.Gap != r.Gap {
							t.Fatalf("cpu %d rec %d: barrier perturbed", c, i)
						}
						continue
					}
					if g.Write != r.Write || g.Gap != r.Gap || g.Barrier {
						t.Fatalf("cpu %d rec %d: flags/gap perturbed: %+v vs %+v", c, i, g, r)
					}
					src := byteAddr(h.Geometry, r)
					dst := byteAddr(tg, g)
					// The rewritten record names the target block containing
					// the source block's start byte.
					if want := src &^ uint64(tg.BlockBytes()-1); dst != want {
						t.Fatalf("cpu %d rec %d: byte addr %#x, want %#x (src %#x)", c, i, dst, want, src)
					}
				}
			}
		})
	}
}

// TestGeometryBlockHalvedRoundTrips: halving the block size and doubling
// it back reproduces the original trace exactly (no source block ever
// straddles the restored geometry's blocks).
func TestGeometryBlockHalvedRoundTrips(t *testing.T) {
	h := testHeader()
	refs := randRefs(h, 500, 21)
	data := encode(t, h, refs)
	half := geometryBytes(t, data, GeometrySpec{BlockBytes: 16})
	back := geometryBytes(t, half, GeometrySpec{BlockBytes: 32})
	if hashOf(t, data) != hashOf(t, back) {
		t.Fatal("halve+double block size did not round-trip")
	}
}

// TestGeometryErrors covers the rejection paths: non-power-of-two sizes,
// shifts outside the validated ranges, offset-field overflow, and
// negative sizes.
func TestGeometryErrors(t *testing.T) {
	h := testHeader()
	data := encode(t, h, randRefs(h, 20, 1))
	cases := []struct {
		name string
		spec GeometrySpec
		want string
	}{
		{"block-not-pow2", GeometrySpec{BlockBytes: 48}, "not a power of two"},
		{"page-not-pow2", GeometrySpec{PageBytes: 5000}, "not a power of two"},
		{"negative", GeometrySpec{BlockBytes: -32}, "negative"},
		{"block-too-small", GeometrySpec{BlockBytes: 2}, "out of range"},
		{"page-below-block", GeometrySpec{PageBytes: 16}, "must be in"},
		{"offset-overflow", GeometrySpec{BlockBytes: 4, PageBytes: 1 << 24}, "16-bit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			_, err := RetargetGeometry(&buf, bytes.NewReader(data), tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestGeometryRename: the spec's Name lands in the output header.
func TestGeometryRename(t *testing.T) {
	h := testHeader()
	data := encode(t, h, randRefs(h, 20, 2))
	out := geometryBytes(t, data, GeometrySpec{BlockBytes: 16, Name: "unit@b16"})
	gotH, _ := decode(t, out)
	if gotH.Name != "unit@b16" {
		t.Fatalf("name = %q", gotH.Name)
	}
}

// TestCPUFoldInterleave: the interleave policy folds contiguous source
// CPU groups onto each target CPU, against modulo's strided fold.
func TestCPUFoldInterleave(t *testing.T) {
	h := testHeader() // 4 CPUs
	refs := randRefs(h, 30, 13)
	data := encode(t, h, refs)

	out := retargetBytes(t, data, RetargetSpec{CPUs: 2, Nodes: 2, CPUFold: FoldInterleave})
	gotH, gotRefs := decode(t, out)
	if gotH.CPUs != 2 {
		t.Fatalf("CPUs = %d, want 2", gotH.CPUs)
	}
	// Interleave: source CPUs 0,1 -> target 0; 2,3 -> target 1, drained
	// in the canonical round-robin order.
	want := make([][]trace.Ref, 2)
	for i := 0; i < 30; i++ {
		for c := 0; c < 4; c++ {
			want[c/2] = append(want[c/2], refs[c][i])
		}
	}
	for c := range want {
		if !reflect.DeepEqual(gotRefs[c], want[c]) {
			t.Fatalf("cpu %d: interleave-folded stream differs", c)
		}
	}

	// Non-divisible folds use weighted contiguous groups: 4 -> 3 puts
	// source CPUs 0,1 on target 0 and CPUs 2,3 on targets 1,2.
	odd := retargetBytes(t, data, RetargetSpec{CPUs: 3, Nodes: 3, CPUFold: FoldInterleave})
	oddH, oddRefs := decode(t, odd)
	if oddH.CPUs != 3 {
		t.Fatalf("CPUs = %d, want 3", oddH.CPUs)
	}
	group := []int{0, 0, 1, 2} // weighted groups 2,1,1
	wantOdd := make([][]trace.Ref, 3)
	for i := 0; i < 30; i++ {
		for c := 0; c < 4; c++ {
			wantOdd[group[c]] = append(wantOdd[group[c]], refs[c][i])
		}
	}
	for c := range wantOdd {
		if !reflect.DeepEqual(oddRefs[c], wantOdd[c]) {
			t.Fatalf("cpu %d: weighted interleave-folded stream differs", c)
		}
	}

	// Growing and equal counts degrade to the modulo behavior.
	grow := retargetBytes(t, data, RetargetSpec{CPUs: 8, CPUFold: FoldInterleave})
	growH, growRefs := decode(t, grow)
	if growH.CPUs != 8 {
		t.Fatalf("CPUs = %d, want 8", growH.CPUs)
	}
	for c := 0; c < 4; c++ {
		if !reflect.DeepEqual(growRefs[c], refs[c]) {
			t.Fatalf("cpu %d: records changed on interleave expansion", c)
		}
	}

	if _, err := CPUFoldByName("nope"); err == nil {
		t.Fatal("unknown fold name accepted")
	}
	for name, want := range map[string]CPUFoldPolicy{"": FoldModulo, "modulo": FoldModulo, "interleave": FoldInterleave} {
		got, err := CPUFoldByName(name)
		if err != nil || got != want {
			t.Fatalf("CPUFoldByName(%q) = %v, %v", name, got, err)
		}
	}
}

// TestDilateRename: DilateSpec.Name renames the output workload.
func TestDilateRename(t *testing.T) {
	h := testHeader()
	data := encode(t, h, randRefs(h, 20, 4))
	var buf bytes.Buffer
	if _, err := Dilate(&buf, bytes.NewReader(data), DilateSpec{Num: 2, Den: 1, Name: "unit@x2"}); err != nil {
		t.Fatal(err)
	}
	gotH, _ := decode(t, buf.Bytes())
	if gotH.Name != "unit@x2" {
		t.Fatalf("name = %q", gotH.Name)
	}
}
