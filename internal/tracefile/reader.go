package tracefile

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rnuma/internal/addr"
	"rnuma/internal/trace"
	"rnuma/internal/workloads"
)

// Reader decodes a trace file into one lazy trace.Stream per CPU. Chunks
// are read from the underlying reader on demand: when a CPU's stream is
// pulled and its queue is empty, the reader consumes chunks (buffering
// records that belong to other CPUs) until one arrives for that CPU or
// the file ends. Because the Writer interleaves chunks in near-replay
// order, the demux queues stay small — the full trace is never
// materialized.
//
// trace.Stream cannot carry an error, so a malformed or truncated file
// makes the affected streams end early and records a sticky error; check
// Err after the run (Workload wires this into workloads.Workload.Check).
type Reader struct {
	br      *bufio.Reader
	h       Header
	version int
	err     error

	queues   [][]trace.Ref // decoded records awaiting delivery, per CPU
	heads    []int         // pop position within each queue
	lastPage []int64       // per-CPU delta-decoding state
	skip     []int64       // per-CPU records still to discard (Seek)
	needSeed []bool        // per-CPU: skipped a chunk wholesale, delta state stale
	total    uint64        // records decoded across all chunks
	done     bool          // end marker consumed
	streams  []trace.Stream

	chunkBuf []byte       // stored-payload staging buffer
	rawBuf   bytes.Buffer // v2 decompressed-payload staging buffer
	fr       io.ReadCloser
}

// NewReader parses the header and prepares per-CPU streams. Chunk data is
// read lazily as the streams are pulled.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	d := &Reader{br: br}
	if err := d.readHeader(); err != nil {
		return nil, err
	}
	d.queues = make([][]trace.Ref, d.h.CPUs)
	d.heads = make([]int, d.h.CPUs)
	d.lastPage = make([]int64, d.h.CPUs)
	d.skip = make([]int64, d.h.CPUs)
	d.needSeed = make([]bool, d.h.CPUs)
	d.streams = make([]trace.Stream, d.h.CPUs)
	for i := range d.streams {
		d.streams[i] = &readerStream{d: d, cpu: i}
	}
	return d, nil
}

func (d *Reader) readHeader() error {
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return fmt.Errorf("tracefile: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return fmt.Errorf("tracefile: bad magic %q", m[:])
	}
	var fixed [3]byte
	if _, err := io.ReadFull(d.br, fixed[:]); err != nil {
		return fmt.Errorf("tracefile: reading version/geometry: %w", err)
	}
	if fixed[0] != VersionV1 && fixed[0] != VersionV2 {
		return fmt.Errorf("tracefile: unsupported version %d (want %d or %d)", fixed[0], VersionV1, VersionV2)
	}
	d.version = int(fixed[0])
	d.h.Geometry = addr.Geometry{BlockShift: uint(fixed[1]), PageShift: uint(fixed[2])}
	cpus, err := d.uvarint("cpu count", maxCPUs)
	if err != nil {
		return err
	}
	nodes, err := d.uvarint("node count", maxNodes)
	if err != nil {
		return err
	}
	pages, err := d.uvarint("page count", maxPages)
	if err != nil {
		return err
	}
	nameLen, err := d.uvarint("name length", maxNameLen)
	if err != nil {
		return err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return fmt.Errorf("tracefile: reading name: %w", eofIsUnexpected(err))
	}
	d.h.CPUs, d.h.Nodes, d.h.SharedPages, d.h.Name = int(cpus), int(nodes), int(pages), string(name)

	runs, err := d.uvarint("home run count", maxPages)
	if err != nil {
		return err
	}
	d.h.Homes = make([]addr.NodeID, 0, pages)
	for i := uint64(0); i < runs; i++ {
		runLen, err := d.uvarint("home run length", maxPages)
		if err != nil {
			return err
		}
		node, err := d.uvarint("home node", uint64(nodes))
		if err != nil {
			return err
		}
		if uint64(len(d.h.Homes))+runLen > pages {
			return fmt.Errorf("tracefile: home runs cover more than %d pages", pages)
		}
		for j := uint64(0); j < runLen; j++ {
			d.h.Homes = append(d.h.Homes, addr.NodeID(node))
		}
	}
	return d.h.Validate()
}

// uvarint reads one header varint and bounds-checks it (limit is
// inclusive for counts whose domain is [0,limit], exclusive only where
// the caller passes the exclusive bound, e.g. node < nodes is enforced by
// Header.Validate afterwards).
func (d *Reader) uvarint(what string, limit uint64) (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("tracefile: reading %s: %w", what, eofIsUnexpected(err))
	}
	if v > limit {
		return 0, fmt.Errorf("tracefile: %s %d exceeds limit %d", what, v, limit)
	}
	return v, nil
}

// eofIsUnexpected maps a bare EOF mid-structure to ErrUnexpectedEOF so
// truncation always reports as an error, never as clean end-of-input.
func eofIsUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Header returns the parsed file header.
func (d *Reader) Header() Header { return d.h }

// Version returns the file's on-disk format version (VersionV1 or
// VersionV2).
func (d *Reader) Version() int { return d.version }

// Streams returns the per-CPU replay streams. Each stream may be pulled
// independently; pulling triggers chunk reads as needed.
func (d *Reader) Streams() []trace.Stream { return d.streams }

// Err returns the sticky decode error, or nil. A truncated or corrupt
// file ends the streams early and parks the error here.
func (d *Reader) Err() error { return d.err }

// readerStream is one CPU's view of the demuxed trace. It implements
// trace.Stream, trace.Batcher (bulk delivery straight out of the demux
// queue), and trace.Seeker (forward seek with whole-chunk skipping).
type readerStream struct {
	d         *Reader
	cpu       int
	delivered int64 // records delivered or skipped so far
}

// fill ensures the CPU's queue has at least one deliverable record,
// reading chunks as needed. It reports false at end of stream or on a
// decode error.
func (s *readerStream) fill() bool {
	d := s.d
	for d.heads[s.cpu] >= len(d.queues[s.cpu]) {
		d.queues[s.cpu] = d.queues[s.cpu][:0]
		d.heads[s.cpu] = 0
		if d.done || d.err != nil {
			return false
		}
		d.readChunk()
	}
	return true
}

// Next implements trace.Stream.
func (s *readerStream) Next() (trace.Ref, bool) {
	if !s.fill() {
		return trace.Ref{}, false
	}
	d := s.d
	r := d.queues[s.cpu][d.heads[s.cpu]]
	d.heads[s.cpu]++
	s.delivered++
	return r, true
}

// NextBatch implements trace.Batcher: it returns a view of up to max
// queued records straight out of the demux queue (no copy), reading
// chunks to refill an empty queue. The view is valid until the next call
// on this stream.
func (s *readerStream) NextBatch(max int) []trace.Ref {
	if !s.fill() {
		return nil
	}
	d := s.d
	q := d.queues[s.cpu]
	head := d.heads[s.cpu]
	n := len(q) - head
	if n > max {
		n = max
	}
	d.heads[s.cpu] = head + n
	s.delivered += int64(n)
	return q[head : head+n]
}

// Seek implements trace.Seeker: it positions the stream so the next
// record delivered is record n. Seeks are forward-only (the underlying
// reader is streaming). The skip is recorded lazily and satisfied as
// chunks are read; chunks that carry a page seed and fall entirely
// inside the skipped prefix are discarded without decoding — seek all
// streams before pulling any of them so whole-chunk skipping sees every
// CPU's cursor.
func (s *readerStream) SeekRecord(n int64) error {
	d := s.d
	if d.err != nil {
		return d.err
	}
	rel := n - s.delivered
	if rel < 0 {
		return fmt.Errorf("tracefile: backward seek to record %d (already at %d)", n, s.delivered)
	}
	// Drop already-decoded queued records first.
	if avail := int64(len(d.queues[s.cpu]) - d.heads[s.cpu]); avail > 0 && rel > 0 {
		take := avail
		if rel < take {
			take = rel
		}
		d.heads[s.cpu] += int(take)
		rel -= take
	}
	d.skip[s.cpu] += rel
	s.delivered = n
	return nil
}

// readChunk consumes one chunk (or the end marker) from the file,
// appending its records to the owning CPU's queue — except records still
// owed to a pending Seek, which are discarded, wholesale when the chunk
// carries a seed and lies entirely inside the skipped prefix.
func (d *Reader) readChunk() {
	fail := func(err error) { d.err = err }

	cpu, err := binary.ReadUvarint(d.br)
	if err != nil {
		// EOF here means the end marker is missing: the file was cut off
		// at a chunk boundary.
		fail(fmt.Errorf("tracefile: reading chunk header: %w", eofIsUnexpected(err)))
		return
	}
	if cpu == uint64(d.h.CPUs) {
		// End marker: verify the record-count checksum and clean EOF.
		total, err := binary.ReadUvarint(d.br)
		if err != nil {
			fail(fmt.Errorf("tracefile: reading end marker: %w", eofIsUnexpected(err)))
			return
		}
		if total != d.total {
			fail(fmt.Errorf("tracefile: end marker counts %d records, decoded %d", total, d.total))
			return
		}
		if _, err := d.br.ReadByte(); err != io.EOF {
			fail(fmt.Errorf("tracefile: trailing data after end marker"))
			return
		}
		d.done = true
		return
	}
	if cpu > uint64(d.h.CPUs) {
		fail(fmt.Errorf("tracefile: chunk for cpu %d, trace has %d cpus", cpu, d.h.CPUs))
		return
	}
	count, err := binary.ReadUvarint(d.br)
	if err != nil {
		fail(fmt.Errorf("tracefile: reading chunk count: %w", eofIsUnexpected(err)))
		return
	}

	var payload []byte
	if d.version >= VersionV2 {
		var skipped bool
		payload, skipped, err = d.chunkPayload(int(cpu), count)
		if err != nil {
			fail(err)
			return
		}
		if skipped {
			d.skip[cpu] -= int64(count)
			d.total += count
			return
		}
	} else {
		byteLen, err := binary.ReadUvarint(d.br)
		if err != nil {
			fail(fmt.Errorf("tracefile: reading chunk length: %w", eofIsUnexpected(err)))
			return
		}
		if byteLen > maxChunkLen {
			fail(fmt.Errorf("tracefile: chunk length %d exceeds limit %d", byteLen, maxChunkLen))
			return
		}
		if cap(d.chunkBuf) < int(byteLen) {
			d.chunkBuf = make([]byte, byteLen)
		}
		payload = d.chunkBuf[:byteLen]
		if _, err := io.ReadFull(d.br, payload); err != nil {
			fail(fmt.Errorf("tracefile: reading chunk payload: %w", eofIsUnexpected(err)))
			return
		}
	}
	// Every record is at least one byte, so count > len(payload) cannot
	// be satisfied; reject before decoding anything.
	if count == 0 || count > uint64(len(payload)) {
		fail(fmt.Errorf("tracefile: chunk count %d inconsistent with %d payload bytes", count, len(payload)))
		return
	}
	if d.needSeed[cpu] {
		// A previous chunk for this CPU was skipped without decoding, so
		// the delta accumulator is stale; only a seeded chunk (which
		// chunkPayload reseeded above) may follow.
		fail(fmt.Errorf("tracefile: unseeded chunk for cpu %d after a skipped chunk", cpu))
		return
	}

	// Batch-decode the payload in one tight loop with the per-CPU decode
	// state held in locals. The skipped prefix (records owed to a pending
	// Seek) is decoded for its delta side effects but not queued.
	q := d.queues[cpu]
	skip := d.skip[cpu]
	last := d.lastPage[cpu]
	maxPage := int64(d.h.SharedPages)
	maxOff := uint64(d.h.Geometry.BlocksPerPage())
	pos := 0
	var decErr error
	decoded := uint64(0)
	for ; decoded < count; decoded++ {
		if pos >= len(payload) {
			decErr = fmt.Errorf("tracefile: record truncated at payload byte %d", pos)
			break
		}
		flags := payload[pos]
		pos++
		if flags&^byte(flagsKnown) != 0 {
			decErr = fmt.Errorf("tracefile: unknown record flags %#x", flags)
			break
		}
		var r trace.Ref
		r.Write = flags&flagWrite != 0
		r.Barrier = flags&flagBarrier != 0
		if flags&flagDelta != 0 {
			delta, n := binary.Varint(payload[pos:])
			if n <= 0 {
				decErr = fmt.Errorf("tracefile: reading page delta: %w", io.ErrUnexpectedEOF)
				break
			}
			pos += n
			last += delta
			// Keep the running page inside a sane window even across
			// barrier records (whose pages are never dereferenced), so
			// repeated deltas cannot overflow the accumulator.
			if last < -(1<<40) || last > 1<<40 {
				decErr = fmt.Errorf("tracefile: page delta walked to %d, out of range", last)
				break
			}
		}
		if !r.Barrier {
			if last < 0 || last >= maxPage {
				decErr = fmt.Errorf("tracefile: page %d outside the %d-page segment", last, maxPage)
				break
			}
			r.Page = addr.PageNum(last)
		}
		if flags&flagOff != 0 {
			off, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				decErr = fmt.Errorf("tracefile: reading block offset: %w", io.ErrUnexpectedEOF)
				break
			}
			pos += n
			if off >= maxOff {
				decErr = fmt.Errorf("tracefile: block offset %d outside the %d-block page", off, maxOff)
				break
			}
			r.Off = uint16(off)
		}
		if flags&flagGap != 0 {
			gap, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				decErr = fmt.Errorf("tracefile: reading gap: %w", io.ErrUnexpectedEOF)
				break
			}
			pos += n
			if gap > 0xFFFF {
				decErr = fmt.Errorf("tracefile: gap %d overflows 16 bits", gap)
				break
			}
			r.Gap = uint16(gap)
		}
		if skip > 0 {
			skip--
		} else {
			q = append(q, r)
		}
	}
	d.queues[cpu] = q
	d.skip[cpu] = skip
	d.lastPage[cpu] = last
	d.total += decoded
	if decErr != nil {
		fail(decErr)
		return
	}
	if pos != len(payload) {
		fail(fmt.Errorf("tracefile: chunk decoded %d bytes, header declared %d", pos, len(payload)))
	}
}

// chunkPayload reads a version-2 chunk's flags and payload, decompressing
// if needed, and returns the decoded record bytes. When the chunk carries
// a page seed and every record falls inside the CPU's pending skip, the
// payload is discarded unread and skipped=true is returned — the Seek
// fast path that makes forking from a snapshot cheap.
func (d *Reader) chunkPayload(cpu int, count uint64) (payload []byte, skipped bool, err error) {
	flags, err := d.br.ReadByte()
	if err != nil {
		return nil, false, fmt.Errorf("tracefile: reading chunk flags: %w", eofIsUnexpected(err))
	}
	if flags&^byte(chunkFlagsKnown) != 0 {
		return nil, false, fmt.Errorf("tracefile: unknown chunk flags %#x", flags)
	}
	rawLen := uint64(0)
	if flags&chunkDeflate != 0 {
		rawLen, err = binary.ReadUvarint(d.br)
		if err != nil {
			return nil, false, fmt.Errorf("tracefile: reading chunk raw length: %w", eofIsUnexpected(err))
		}
		if rawLen > maxChunkLen {
			return nil, false, fmt.Errorf("tracefile: chunk raw length %d exceeds limit %d", rawLen, maxChunkLen)
		}
	}
	if flags&chunkSeed != 0 {
		seed, err := binary.ReadVarint(d.br)
		if err != nil {
			return nil, false, fmt.Errorf("tracefile: reading chunk seed: %w", eofIsUnexpected(err))
		}
		if seed < -(1<<40) || seed > 1<<40 {
			return nil, false, fmt.Errorf("tracefile: chunk seed %d out of range", seed)
		}
		d.lastPage[cpu] = seed
		d.needSeed[cpu] = false
	}
	byteLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, false, fmt.Errorf("tracefile: reading chunk length: %w", eofIsUnexpected(err))
	}
	if byteLen > maxChunkLen {
		return nil, false, fmt.Errorf("tracefile: chunk length %d exceeds limit %d", byteLen, maxChunkLen)
	}
	if flags&chunkSeed != 0 && count > 0 && d.skip[cpu] >= int64(count) {
		// The whole chunk precedes the seek target: skip the stored bytes
		// without inflating or decoding. The next chunk for this CPU
		// reseeds the delta chain.
		if _, err := d.br.Discard(int(byteLen)); err != nil {
			return nil, false, fmt.Errorf("tracefile: skipping chunk payload: %w", eofIsUnexpected(err))
		}
		d.needSeed[cpu] = true
		return nil, true, nil
	}
	if cap(d.chunkBuf) < int(byteLen) {
		d.chunkBuf = make([]byte, byteLen)
	}
	stored := d.chunkBuf[:byteLen]
	if _, err := io.ReadFull(d.br, stored); err != nil {
		return nil, false, fmt.Errorf("tracefile: reading chunk payload: %w", eofIsUnexpected(err))
	}
	if flags&chunkDeflate == 0 {
		return stored, false, nil
	}

	if d.fr == nil {
		d.fr = flate.NewReader(bytes.NewReader(stored))
	} else if err := d.fr.(flate.Resetter).Reset(bytes.NewReader(stored), nil); err != nil {
		return nil, false, fmt.Errorf("tracefile: resetting inflate: %w", err)
	}
	d.rawBuf.Reset()
	// Cap the copy one past the declared size so an over-long stream is
	// detected without unbounded buffering.
	n, err := io.Copy(&d.rawBuf, io.LimitReader(d.fr, int64(rawLen)+1))
	if err != nil {
		return nil, false, fmt.Errorf("tracefile: inflating chunk: %w", eofIsUnexpected(err))
	}
	if uint64(n) != rawLen {
		return nil, false, fmt.Errorf("tracefile: chunk inflated to %d bytes, header declared %d", n, rawLen)
	}
	return d.rawBuf.Bytes(), false, nil
}

// Drain decodes the remaining records without delivering them, returning
// the per-CPU counts (the info command and tests). It consumes the
// streams through eachRecord's bounded round-robin pull.
func (d *Reader) Drain() ([]int64, error) {
	counts := make([]int64, d.h.CPUs)
	err := eachRecord(d, func(cpu int, _ trace.Ref) error {
		counts[cpu]++
		return nil
	})
	return counts, err
}

// Workload wraps the reader's streams and header as a replayable
// workload: home placement and segment size come from the header, and
// Check surfaces any decode error after the run.
func (d *Reader) Workload() *workloads.Workload {
	return &workloads.Workload{
		Name:        d.h.Name,
		Description: fmt.Sprintf("recorded trace (%d cpus, %d pages)", d.h.CPUs, d.h.SharedPages),
		PaperInput:  "(recorded trace)",
		Streams:     d.streams,
		Homes:       d.h.HomeFunc(),
		SharedPages: d.h.SharedPages,
		Check:       d.Err,
	}
}
