package tracefile

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rnuma/internal/addr"
	"rnuma/internal/trace"
	"rnuma/internal/workloads"
)

// Reader decodes a trace file into one lazy trace.Stream per CPU. Chunks
// are read from the underlying reader on demand: when a CPU's stream is
// pulled and its queue is empty, the reader consumes chunks (buffering
// records that belong to other CPUs) until one arrives for that CPU or
// the file ends. Because the Writer interleaves chunks in near-replay
// order, the demux queues stay small — the full trace is never
// materialized.
//
// trace.Stream cannot carry an error, so a malformed or truncated file
// makes the affected streams end early and records a sticky error; check
// Err after the run (Workload wires this into workloads.Workload.Check).
type Reader struct {
	br      *bufio.Reader
	h       Header
	version int
	err     error

	queues   [][]trace.Ref // decoded records awaiting delivery, per CPU
	heads    []int         // pop position within each queue
	lastPage []int64       // per-CPU delta-decoding state
	total    uint64        // records decoded across all chunks
	done     bool          // end marker consumed
	streams  []trace.Stream

	chunkBuf []byte       // v2 stored-payload staging buffer
	rawBuf   bytes.Buffer // v2 decompressed-payload staging buffer
	fr       io.ReadCloser
}

// NewReader parses the header and prepares per-CPU streams. Chunk data is
// read lazily as the streams are pulled.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	d := &Reader{br: br}
	if err := d.readHeader(); err != nil {
		return nil, err
	}
	d.queues = make([][]trace.Ref, d.h.CPUs)
	d.heads = make([]int, d.h.CPUs)
	d.lastPage = make([]int64, d.h.CPUs)
	d.streams = make([]trace.Stream, d.h.CPUs)
	for i := range d.streams {
		cpu := i
		d.streams[i] = trace.FuncStream(func() (trace.Ref, bool) { return d.next(cpu) })
	}
	return d, nil
}

func (d *Reader) readHeader() error {
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return fmt.Errorf("tracefile: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return fmt.Errorf("tracefile: bad magic %q", m[:])
	}
	var fixed [3]byte
	if _, err := io.ReadFull(d.br, fixed[:]); err != nil {
		return fmt.Errorf("tracefile: reading version/geometry: %w", err)
	}
	if fixed[0] != VersionV1 && fixed[0] != VersionV2 {
		return fmt.Errorf("tracefile: unsupported version %d (want %d or %d)", fixed[0], VersionV1, VersionV2)
	}
	d.version = int(fixed[0])
	d.h.Geometry = addr.Geometry{BlockShift: uint(fixed[1]), PageShift: uint(fixed[2])}
	cpus, err := d.uvarint("cpu count", maxCPUs)
	if err != nil {
		return err
	}
	nodes, err := d.uvarint("node count", maxNodes)
	if err != nil {
		return err
	}
	pages, err := d.uvarint("page count", maxPages)
	if err != nil {
		return err
	}
	nameLen, err := d.uvarint("name length", maxNameLen)
	if err != nil {
		return err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return fmt.Errorf("tracefile: reading name: %w", eofIsUnexpected(err))
	}
	d.h.CPUs, d.h.Nodes, d.h.SharedPages, d.h.Name = int(cpus), int(nodes), int(pages), string(name)

	runs, err := d.uvarint("home run count", maxPages)
	if err != nil {
		return err
	}
	d.h.Homes = make([]addr.NodeID, 0, pages)
	for i := uint64(0); i < runs; i++ {
		runLen, err := d.uvarint("home run length", maxPages)
		if err != nil {
			return err
		}
		node, err := d.uvarint("home node", uint64(nodes))
		if err != nil {
			return err
		}
		if uint64(len(d.h.Homes))+runLen > pages {
			return fmt.Errorf("tracefile: home runs cover more than %d pages", pages)
		}
		for j := uint64(0); j < runLen; j++ {
			d.h.Homes = append(d.h.Homes, addr.NodeID(node))
		}
	}
	return d.h.Validate()
}

// uvarint reads one header varint and bounds-checks it (limit is
// inclusive for counts whose domain is [0,limit], exclusive only where
// the caller passes the exclusive bound, e.g. node < nodes is enforced by
// Header.Validate afterwards).
func (d *Reader) uvarint(what string, limit uint64) (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("tracefile: reading %s: %w", what, eofIsUnexpected(err))
	}
	if v > limit {
		return 0, fmt.Errorf("tracefile: %s %d exceeds limit %d", what, v, limit)
	}
	return v, nil
}

// eofIsUnexpected maps a bare EOF mid-structure to ErrUnexpectedEOF so
// truncation always reports as an error, never as clean end-of-input.
func eofIsUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Header returns the parsed file header.
func (d *Reader) Header() Header { return d.h }

// Version returns the file's on-disk format version (VersionV1 or
// VersionV2).
func (d *Reader) Version() int { return d.version }

// Streams returns the per-CPU replay streams. Each stream may be pulled
// independently; pulling triggers chunk reads as needed.
func (d *Reader) Streams() []trace.Stream { return d.streams }

// Err returns the sticky decode error, or nil. A truncated or corrupt
// file ends the streams early and parks the error here.
func (d *Reader) Err() error { return d.err }

// next delivers the CPU's next record, demuxing chunks on demand.
func (d *Reader) next(cpu int) (trace.Ref, bool) {
	for d.heads[cpu] >= len(d.queues[cpu]) {
		d.queues[cpu] = d.queues[cpu][:0]
		d.heads[cpu] = 0
		if d.done || d.err != nil {
			return trace.Ref{}, false
		}
		d.readChunk()
	}
	r := d.queues[cpu][d.heads[cpu]]
	d.heads[cpu]++
	return r, true
}

// readChunk consumes one chunk (or the end marker) from the file,
// appending its records to the owning CPU's queue.
func (d *Reader) readChunk() {
	fail := func(err error) { d.err = err }

	cpu, err := binary.ReadUvarint(d.br)
	if err != nil {
		// EOF here means the end marker is missing: the file was cut off
		// at a chunk boundary.
		fail(fmt.Errorf("tracefile: reading chunk header: %w", eofIsUnexpected(err)))
		return
	}
	if cpu == uint64(d.h.CPUs) {
		// End marker: verify the record-count checksum and clean EOF.
		total, err := binary.ReadUvarint(d.br)
		if err != nil {
			fail(fmt.Errorf("tracefile: reading end marker: %w", eofIsUnexpected(err)))
			return
		}
		if total != d.total {
			fail(fmt.Errorf("tracefile: end marker counts %d records, decoded %d", total, d.total))
			return
		}
		if _, err := d.br.ReadByte(); err != io.EOF {
			fail(fmt.Errorf("tracefile: trailing data after end marker"))
			return
		}
		d.done = true
		return
	}
	if cpu > uint64(d.h.CPUs) {
		fail(fmt.Errorf("tracefile: chunk for cpu %d, trace has %d cpus", cpu, d.h.CPUs))
		return
	}
	count, err := binary.ReadUvarint(d.br)
	if err != nil {
		fail(fmt.Errorf("tracefile: reading chunk count: %w", eofIsUnexpected(err)))
		return
	}

	var src io.ByteReader = d.br
	rawLen := uint64(0) // decoded payload size the records must span
	if d.version >= VersionV2 {
		payload, n, err := d.chunkPayload()
		if err != nil {
			fail(err)
			return
		}
		src, rawLen = payload, n
	} else {
		byteLen, err := binary.ReadUvarint(d.br)
		if err != nil {
			fail(fmt.Errorf("tracefile: reading chunk length: %w", eofIsUnexpected(err)))
			return
		}
		if byteLen > maxChunkLen {
			fail(fmt.Errorf("tracefile: chunk length %d exceeds limit %d", byteLen, maxChunkLen))
			return
		}
		rawLen = byteLen
	}
	// Every record is at least one byte, so count > rawLen cannot be
	// satisfied by the payload; reject before buffering anything.
	if count == 0 || count > rawLen {
		fail(fmt.Errorf("tracefile: chunk count %d inconsistent with %d payload bytes", count, rawLen))
		return
	}
	cr := &byteCounter{r: src}
	for i := uint64(0); i < count; i++ {
		r, err := d.decodeRecord(cr, int(cpu))
		if err != nil {
			fail(err)
			return
		}
		d.queues[cpu] = append(d.queues[cpu], r)
		d.total++
	}
	if cr.n != int64(rawLen) {
		fail(fmt.Errorf("tracefile: chunk decoded %d bytes, header declared %d", cr.n, rawLen))
	}
}

// chunkPayload reads a version-2 chunk's flags and payload, decompressing
// if needed, and returns a reader over the decoded record bytes plus
// their length.
func (d *Reader) chunkPayload() (*bytes.Reader, uint64, error) {
	flags, err := d.br.ReadByte()
	if err != nil {
		return nil, 0, fmt.Errorf("tracefile: reading chunk flags: %w", eofIsUnexpected(err))
	}
	if flags&^byte(chunkFlagsKnown) != 0 {
		return nil, 0, fmt.Errorf("tracefile: unknown chunk flags %#x", flags)
	}
	rawLen := uint64(0)
	if flags&chunkDeflate != 0 {
		rawLen, err = binary.ReadUvarint(d.br)
		if err != nil {
			return nil, 0, fmt.Errorf("tracefile: reading chunk raw length: %w", eofIsUnexpected(err))
		}
		if rawLen > maxChunkLen {
			return nil, 0, fmt.Errorf("tracefile: chunk raw length %d exceeds limit %d", rawLen, maxChunkLen)
		}
	}
	byteLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("tracefile: reading chunk length: %w", eofIsUnexpected(err))
	}
	if byteLen > maxChunkLen {
		return nil, 0, fmt.Errorf("tracefile: chunk length %d exceeds limit %d", byteLen, maxChunkLen)
	}
	if cap(d.chunkBuf) < int(byteLen) {
		d.chunkBuf = make([]byte, byteLen)
	}
	stored := d.chunkBuf[:byteLen]
	if _, err := io.ReadFull(d.br, stored); err != nil {
		return nil, 0, fmt.Errorf("tracefile: reading chunk payload: %w", eofIsUnexpected(err))
	}
	if flags&chunkDeflate == 0 {
		return bytes.NewReader(stored), byteLen, nil
	}

	if d.fr == nil {
		d.fr = flate.NewReader(bytes.NewReader(stored))
	} else if err := d.fr.(flate.Resetter).Reset(bytes.NewReader(stored), nil); err != nil {
		return nil, 0, fmt.Errorf("tracefile: resetting inflate: %w", err)
	}
	d.rawBuf.Reset()
	// Cap the copy one past the declared size so an over-long stream is
	// detected without unbounded buffering.
	n, err := io.Copy(&d.rawBuf, io.LimitReader(d.fr, int64(rawLen)+1))
	if err != nil {
		return nil, 0, fmt.Errorf("tracefile: inflating chunk: %w", eofIsUnexpected(err))
	}
	if uint64(n) != rawLen {
		return nil, 0, fmt.Errorf("tracefile: chunk inflated to %d bytes, header declared %d", n, rawLen)
	}
	return bytes.NewReader(d.rawBuf.Bytes()), rawLen, nil
}

// decodeRecord decodes one record, updating the CPU's page-delta state.
func (d *Reader) decodeRecord(cr *byteCounter, cpu int) (trace.Ref, error) {
	flags, err := cr.ReadByte()
	if err != nil {
		return trace.Ref{}, fmt.Errorf("tracefile: reading record flags: %w", eofIsUnexpected(err))
	}
	if flags&^byte(flagsKnown) != 0 {
		return trace.Ref{}, fmt.Errorf("tracefile: unknown record flags %#x", flags)
	}
	var r trace.Ref
	r.Write = flags&flagWrite != 0
	r.Barrier = flags&flagBarrier != 0
	if flags&flagDelta != 0 {
		delta, err := binary.ReadVarint(cr)
		if err != nil {
			return trace.Ref{}, fmt.Errorf("tracefile: reading page delta: %w", eofIsUnexpected(err))
		}
		d.lastPage[cpu] += delta
		// Keep the running page inside a sane window even across barrier
		// records (whose pages are never dereferenced), so repeated
		// deltas cannot overflow the accumulator.
		if d.lastPage[cpu] < -(1<<40) || d.lastPage[cpu] > 1<<40 {
			return trace.Ref{}, fmt.Errorf("tracefile: page delta walked to %d, out of range", d.lastPage[cpu])
		}
	}
	p := d.lastPage[cpu]
	if !r.Barrier {
		if p < 0 || p >= int64(d.h.SharedPages) {
			return trace.Ref{}, fmt.Errorf("tracefile: page %d outside the %d-page segment", p, d.h.SharedPages)
		}
		r.Page = addr.PageNum(p)
	}
	if flags&flagOff != 0 {
		off, err := binary.ReadUvarint(cr)
		if err != nil {
			return trace.Ref{}, fmt.Errorf("tracefile: reading block offset: %w", eofIsUnexpected(err))
		}
		if off >= uint64(d.h.Geometry.BlocksPerPage()) {
			return trace.Ref{}, fmt.Errorf("tracefile: block offset %d outside the %d-block page", off, d.h.Geometry.BlocksPerPage())
		}
		r.Off = uint16(off)
	}
	if flags&flagGap != 0 {
		gap, err := binary.ReadUvarint(cr)
		if err != nil {
			return trace.Ref{}, fmt.Errorf("tracefile: reading gap: %w", eofIsUnexpected(err))
		}
		if gap > 0xFFFF {
			return trace.Ref{}, fmt.Errorf("tracefile: gap %d overflows 16 bits", gap)
		}
		r.Gap = uint16(gap)
	}
	return r, nil
}

// Drain decodes the remaining records without delivering them, returning
// the per-CPU counts (the info command and tests). It consumes the
// streams through eachRecord's bounded round-robin pull.
func (d *Reader) Drain() ([]int64, error) {
	counts := make([]int64, d.h.CPUs)
	err := eachRecord(d, func(cpu int, _ trace.Ref) error {
		counts[cpu]++
		return nil
	})
	return counts, err
}

// Workload wraps the reader's streams and header as a replayable
// workload: home placement and segment size come from the header, and
// Check surfaces any decode error after the run.
func (d *Reader) Workload() *workloads.Workload {
	return &workloads.Workload{
		Name:        d.h.Name,
		Description: fmt.Sprintf("recorded trace (%d cpus, %d pages)", d.h.CPUs, d.h.SharedPages),
		PaperInput:  "(recorded trace)",
		Streams:     d.streams,
		Homes:       d.h.HomeFunc(),
		SharedPages: d.h.SharedPages,
		Check:       d.Err,
	}
}
