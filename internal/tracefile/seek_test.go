package tracefile

import (
	"bytes"
	"reflect"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/trace"
)

// drainStream pulls a stream dry.
func drainStream(s trace.Stream) []trace.Ref {
	var out []trace.Ref
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// TestReaderSeekRecord: seeking every reader stream forward delivers
// exactly the record suffix, at cursors inside the first chunk, on chunk
// boundaries (chunks hold 4096 records), deep in later chunks — where
// whole prefix chunks are discarded without decoding — and at the very
// end of the stream.
func TestReaderSeekRecord(t *testing.T) {
	h := testHeader()
	const perCPU = 10000 // three chunks per CPU
	refs := randRefs(h, perCPU, 21)
	data := encode(t, h, refs)

	for _, k := range []int64{0, 1, 100, 4095, 4096, 4097, 9000, perCPU} {
		d, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		streams := d.Streams()
		// Seek every stream before pulling any, the pattern ResumeWith
		// uses, so whole-chunk skipping sees all cursors.
		for c, s := range streams {
			if err := s.(trace.Seeker).SeekRecord(k); err != nil {
				t.Fatalf("seek cpu %d to %d: %v", c, k, err)
			}
		}
		for c, s := range streams {
			got := drainStream(s)
			want := append([]trace.Ref(nil), refs[c][k:]...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cpu %d after seek to %d: got %d records, want %d (first diff near start)", c, k, len(got), len(want))
			}
		}
		if err := d.Err(); err != nil {
			t.Fatalf("seek to %d: %v", k, err)
		}
	}
}

// TestReaderSeekAfterConsume: a seek that lands past already-delivered
// records discards the queued middle; a seek behind the cursor is a
// backward seek and fails.
func TestReaderSeekAfterConsume(t *testing.T) {
	h := testHeader()
	refs := randRefs(h, 200, 9)
	data := encode(t, h, refs)
	d, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Streams()[2].(trace.Seeker)
	for i := 0; i < 30; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("short stream")
		}
	}
	if err := s.SeekRecord(150); err != nil {
		t.Fatal(err)
	}
	got := drainStream(s)
	if want := refs[2][150:]; !reflect.DeepEqual(got, want) {
		t.Fatalf("after consume+seek: %d records, want %d", len(got), len(want))
	}
	if err := s.SeekRecord(10); err == nil {
		t.Error("backward seek accepted")
	}
	// Seeking to the current cursor is a no-op, never an error.
	if err := s.SeekRecord(200); err != nil {
		t.Errorf("seek to current end: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSliceStreamSeekRecord covers the in-memory seeker used by machine
// tests and generated workloads.
func TestSliceStreamSeekRecord(t *testing.T) {
	refs := randRefs(testHeader(), 50, 3)[0]
	s := trace.FromSlice(refs)
	if err := s.SeekRecord(20); err != nil {
		t.Fatal(err)
	}
	got := drainStream(s)
	if !reflect.DeepEqual(got, refs[20:]) {
		t.Fatal("slice seek suffix differs")
	}
	if err := s.SeekRecord(int64(len(refs)) + 1); err == nil {
		t.Error("seek past the end accepted")
	}
	if err := s.SeekRecord(-1); err == nil {
		t.Error("negative seek accepted")
	}
	// SliceStream seeks are random-access: backward is fine.
	if err := s.SeekRecord(0); err != nil {
		t.Errorf("backward slice seek: %v", err)
	}
}

// TestReaderNextBatch: the zero-copy batch path delivers exactly the
// records one-at-a-time Next would, in windows bounded by max, and the
// two delivery styles interleave on one stream.
func TestReaderNextBatch(t *testing.T) {
	h := testHeader()
	const perCPU = 5000 // crosses a chunk boundary
	refs := randRefs(h, perCPU, 17)
	d, err := NewReader(bytes.NewReader(encode(t, h, refs)))
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range d.Streams() {
		b, ok := s.(trace.Batcher)
		if !ok {
			t.Fatalf("cpu %d: reader stream is not a trace.Batcher", c)
		}
		var got []trace.Ref
		for {
			batch := b.NextBatch(97)
			if len(batch) == 0 {
				break
			}
			if len(batch) > 97 {
				t.Fatalf("cpu %d: batch of %d exceeds max 97", c, len(batch))
			}
			got = append(got, batch...)
			if r, ok := s.Next(); ok { // interleave the scalar path
				got = append(got, r)
			}
		}
		if !reflect.DeepEqual(got, refs[c]) {
			t.Fatalf("cpu %d: batch drain got %d records, want %d", c, len(got), len(refs[c]))
		}
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderWorkload: the reader wraps its header and streams as a
// replayable workload whose Check surfaces decode state.
func TestReaderWorkload(t *testing.T) {
	h := testHeader()
	refs := randRefs(h, 50, 5)
	d, err := NewReader(bytes.NewReader(encode(t, h, refs)))
	if err != nil {
		t.Fatal(err)
	}
	w := d.Workload()
	if w.Name != h.Name || w.SharedPages != h.SharedPages || len(w.Streams) != h.CPUs {
		t.Fatalf("workload header mismatch: %q/%d pages/%d streams", w.Name, w.SharedPages, len(w.Streams))
	}
	home := h.HomeFunc()
	for p := 0; p < h.SharedPages; p++ {
		if w.Homes(addr.PageNum(p)) != home(addr.PageNum(p)) {
			t.Fatalf("workload home for page %d differs from the header map", p)
		}
	}
	for _, s := range w.Streams {
		drainStream(s)
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
}
