// Package snapfile stores machine snapshots on disk: the checkpoint
// format that lets a long trace replay pause, persist its complete
// simulator state, and resume (or fork) in another process. It is a
// sibling of the tracefile trace format rather than part of it because
// it imports the machine package, which the machine tests' tracefile
// dependency would otherwise turn into an import cycle.
package snapfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"rnuma/internal/machine"
)

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: every read here
// is mid-structure, so a clean EOF still means a truncated snapshot.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Machine snapshots get their own on-disk format so a long trace replay
// can checkpoint at a pause point and resume (or fork) in another
// process:
//
//	magic      [4]byte  "RNSS"
//	version    byte     1
//	payloadLen uvarint  gob-encoded machine.Snapshot size
//	payload    payloadLen bytes
//	crc        [4]byte  little-endian CRC-32C (Castagnoli) of the payload
//	<EOF>      trailing bytes are an error
//
// The payload is a gob stream of the machine.Snapshot structure: every
// semantic constraint (cache shapes, directory consistency, free-list
// sanity) is re-validated by machine.Restore on load, so the envelope
// only needs to guarantee integrity — which the length and checksum do,
// rejecting truncated or bit-flipped files before any state is
// installed.
const (
	snapshotMagic   = "RNSS"
	snapshotVersion = 1

	// maxSnapshotLen bounds the payload allocation when reading untrusted
	// input. Real snapshots are a few MB (dominated by the dense per-page
	// tables and cache contents); 256 MB is far beyond any valid machine
	// while keeping a crafted header's allocation survivable.
	maxSnapshotLen = 1 << 28
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// Write serializes a machine snapshot to w in the RNSS format.
func Write(w io.Writer, s *machine.Snapshot) error {
	if s == nil {
		return fmt.Errorf("snapfile: nil snapshot")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return fmt.Errorf("snapfile: encoding snapshot: %w", err)
	}
	hdr := append([]byte(snapshotMagic), snapshotVersion)
	hdr = binary.AppendUvarint(hdr, uint64(payload.Len()))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), snapshotCRC))
	_, err := w.Write(crc[:])
	return err
}

// Read reads and validates an RNSS-format snapshot from r. The
// reader must be positioned at the magic and must end after the
// checksum; truncation, trailing bytes, and checksum mismatches are all
// errors, reported before any snapshot data is returned.
func Read(r io.Reader) (*machine.Snapshot, error) {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if !ok {
		br = bufio.NewReader(r)
	}
	var head [5]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("snapfile: reading snapshot header: %w", noEOF(err))
	}
	if string(head[:4]) != snapshotMagic {
		return nil, fmt.Errorf("snapfile: bad snapshot magic %q", head[:4])
	}
	if head[4] != snapshotVersion {
		return nil, fmt.Errorf("snapfile: unsupported snapshot version %d", head[4])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("snapfile: reading snapshot length: %w", noEOF(err))
	}
	if n > maxSnapshotLen {
		return nil, fmt.Errorf("snapfile: snapshot payload %d bytes exceeds the %d-byte bound", n, maxSnapshotLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("snapfile: snapshot truncated: %w", noEOF(err))
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("snapfile: snapshot truncated: %w", noEOF(err))
	}
	if got, want := crc32.Checksum(payload, snapshotCRC), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("snapfile: snapshot checksum mismatch (payload %08x, trailer %08x)", got, want)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("snapfile: trailing bytes after snapshot")
	}
	s := new(machine.Snapshot)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(s); err != nil {
		return nil, fmt.Errorf("snapfile: decoding snapshot: %w", err)
	}
	return s, nil
}

// WriteFile writes a snapshot to a file on disk.
func WriteFile(path string, s *machine.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a snapshot from a file on disk.
func ReadFile(path string) (*machine.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
