package snapfile

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rnuma/internal/addr"
	"rnuma/internal/config"
	"rnuma/internal/machine"
	"rnuma/internal/trace"
)

// testSnapshot builds a real mid-run snapshot: a small R-NUMA machine
// paused partway through adversarial random traffic, so every component
// state (caches, directory, counters, page tables) is populated.
func testSnapshot(t *testing.T) *machine.Snapshot {
	t.Helper()
	sys := config.Base(config.RNUMA)
	sys.Nodes, sys.CPUsPerNode = 2, 2
	sys.BlockCacheBytes = 1 << 10
	sys.PageCacheBytes = 4 * int(sys.Geometry.PageBytes())
	sys.Threshold = 8
	m, err := machine.New(sys, machine.WithHomes(func(p addr.PageNum) addr.NodeID {
		return addr.NodeID(p % 2)
	}))
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]trace.Stream, 4)
	for c := range streams {
		rng := rand.New(rand.NewSource(int64(c) + 1))
		refs := make([]trace.Ref, 800)
		for i := range refs {
			refs[i] = trace.Ref{
				Page:  addr.PageNum(rng.Intn(10)),
				Off:   uint16(rng.Intn(8)),
				Write: rng.Intn(3) == 0,
				Gap:   uint16(rng.Intn(30)),
			}
		}
		streams[c] = trace.FromSlice(refs)
	}
	if err := m.Start(streams); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunUntilRefs(1500); err != nil {
		t.Fatal(err)
	}
	s, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// encodeSnap serializes a snapshot to bytes.
func encodeSnap(t *testing.T, s *machine.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTrip: write → read → write reproduces the exact bytes, and
// the decoded snapshot restores into a compatible machine.
func TestRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	enc := encodeSnap(t, snap)

	got, err := Read(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	// Gob canonicalizes empty-vs-nil containers, so compare re-encodings
	// rather than the structures.
	if !bytes.Equal(encodeSnap(t, got), enc) {
		t.Error("re-encoded snapshot differs from the original encoding")
	}
	if got.Sys != snap.Sys || got.CounterHigh != snap.CounterHigh || !reflect.DeepEqual(got.CPUs, snap.CPUs) {
		t.Error("decoded snapshot differs from the captured one")
	}

	// A machine of the same configuration accepts the decoded snapshot.
	m, err := machine.New(snap.Sys, machine.WithHomes(func(p addr.PageNum) addr.NodeID {
		return addr.NodeID(p % 2)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(got); err != nil {
		t.Errorf("restoring a round-tripped snapshot: %v", err)
	}

	// The plain-io.Reader path (no ByteReader) decodes identically.
	plain, err := Read(struct{ io.Reader }{bytes.NewReader(enc)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSnap(t, plain), enc) {
		t.Error("plain-reader decode differs")
	}
}

// TestFileRoundTrip covers the path-based helpers.
func TestFileRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "pause.rnss")
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSnap(t, got), encodeSnap(t, snap)) {
		t.Error("file round trip changed the snapshot")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.rnss")); err == nil {
		t.Error("missing file accepted")
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir.rnss"), snap); err == nil {
		t.Error("unwritable path accepted")
	}
}

// TestRejectsCorruption: every single-bit flip in the envelope or
// payload, every truncation, and trailing garbage are all rejected.
func TestRejectsCorruption(t *testing.T) {
	enc := encodeSnap(t, testSnapshot(t))

	// Truncations at every boundary region (and a sweep of early cuts).
	cuts := []int{0, 1, 4, 5, len(enc) / 2, len(enc) - 4, len(enc) - 1}
	for _, n := range cuts {
		if _, err := Read(bytes.NewReader(enc[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}

	// Trailing bytes.
	if _, err := Read(bytes.NewReader(append(append([]byte(nil), enc...), 0))); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte: err = %v", err)
	}

	// Bit flips: magic, version, length, payload, and checksum regions.
	for _, pos := range []int{0, 3, 4, 5, 16, len(enc) / 2, len(enc) - 2} {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x40
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at byte %d accepted", pos)
		}
	}

	// A huge declared length is bounded before allocation.
	huge := append([]byte("RNSS\x01"), 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := Read(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("oversized payload length: err = %v", err)
	}

	if err := Write(io.Discard, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
